package sassi

import (
	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/experiments"
	"sassi/internal/faults"
	"sassi/internal/handlers"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	isassi "sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/trace"
	"sassi/internal/uvm"
	"sassi/internal/workloads"
)

// Compilation pipeline.

// Builder authors kernels at the PTX (virtual ISA) level.
type Builder = ptx.Builder

// Module is a set of PTX kernels compiled together.
type Module = ptx.Module

// Value is a typed virtual register in builder code.
type Value = ptx.Value

// NewKernel starts building a kernel.
func NewKernel(name string) *Builder { return ptx.NewKernel(name) }

// NewModule returns an empty PTX module.
func NewModule() *Module { return ptx.NewModule() }

// CmpOp is a comparison operator for Builder.Setp.
type CmpOp = sass.CmpOp

// Comparison operators.
const (
	CmpLT = sass.CmpLT
	CmpLE = sass.CmpLE
	CmpGT = sass.CmpGT
	CmpGE = sass.CmpGE
	CmpEQ = sass.CmpEQ
	CmpNE = sass.CmpNE
)

// CompileOptions configures the backend compiler (ptxas analog).
type CompileOptions = ptxas.Options

// Program is compiled SASS machine code, the unit SASSI instruments and
// the simulator executes.
type Program = sass.Program

// Compile lowers a PTX module to SASS.
func Compile(m *Module, opts CompileOptions) (*Program, error) {
	return ptxas.Compile(m, opts)
}

// CompileModule builds one finished kernel builder into a program with
// default options.
func CompileModule(bs ...*Builder) (*Program, error) {
	m := ptx.NewModule()
	for _, b := range bs {
		f, err := b.Done()
		if err != nil {
			return nil, err
		}
		m.Add(f)
	}
	return ptxas.Compile(m, ptxas.Options{})
}

// Instrumentation (the paper's contribution).

// InstrumentOptions selects where to inject and what to pass (§3.1-3.2).
type InstrumentOptions = isassi.Options

// Where selects instrumentation sites.
type Where = isassi.Where

// Site-selection flags.
const (
	BeforeAll          = isassi.BeforeAll
	BeforeMem          = isassi.BeforeMem
	BeforeCondBranches = isassi.BeforeCondBranches
	BeforeControlXfer  = isassi.BeforeControlXfer
	BeforeCalls        = isassi.BeforeCalls
	BeforeRegWrites    = isassi.BeforeRegWrites
	BeforeRegReads     = isassi.BeforeRegReads
	AfterAll           = isassi.AfterAll
	AfterRegWrites     = isassi.AfterRegWrites
	AfterMem           = isassi.AfterMem
	KernelEntry        = isassi.KernelEntry
	KernelExit         = isassi.KernelExit
	BBHeaders          = isassi.BBHeaders
)

// What selects the extra parameter object.
type What = isassi.What

// Extra-info flags.
const (
	PassNone           = isassi.PassNone
	PassMemoryInfo     = isassi.PassMemoryInfo
	PassCondBranchInfo = isassi.PassCondBranchInfo
	PassRegisterInfo   = isassi.PassRegisterInfo
)

// Instrument rewrites the program's kernels in place, injecting
// ABI-compliant handler calls at the selected sites.
func Instrument(prog *Program, opts InstrumentOptions) error {
	return isassi.Instrument(prog, opts)
}

// Handlers.

// ThreadCtx is the per-thread device context handlers execute with.
type ThreadCtx = device.Ctx

// HandlerArgs carries the decoded parameter objects into a handler.
type HandlerArgs = isassi.HandlerArgs

// Handler binds a JCAL symbol to a Go handler function.
type Handler = isassi.Handler

// HandlerFunc is a per-thread instrumentation handler body.
type HandlerFunc = isassi.HandlerFunc

// BeforeParams, MemoryParams, CondBranchParams and RegisterParams mirror
// the paper's SASSI*Params classes.
type (
	BeforeParams     = isassi.BeforeParams
	MemoryParams     = isassi.MemoryParams
	CondBranchParams = isassi.CondBranchParams
	RegisterParams   = isassi.RegisterParams
)

// Runtime links handlers to an instrumented program and dispatches calls.
type Runtime = isassi.Runtime

// NewRuntime creates a runtime for one instrumented program.
func NewRuntime(prog *Program) *Runtime { return isassi.NewRuntime(prog) }

// Warp intrinsic helpers usable inside handlers.
var (
	// Popc is CUDA __popc.
	Popc = device.Popc
	// Ffs is CUDA __ffs (1-based, 0 when empty).
	Ffs = device.Ffs
)

// Execution substrate.

// Config describes the simulated GPU.
type Config = sim.Config

// Device configurations approximating the paper's testbeds.
var (
	KeplerK10 = sim.KeplerK10
	KeplerK20 = sim.KeplerK20
	KeplerK40 = sim.KeplerK40
	MiniGPU   = sim.MiniGPU
)

// Context is the host-side runtime (CUDA analog): memory management,
// copies, launches, per-launch callbacks.
type Context = cuda.Context

// DevPtr is a device memory address.
type DevPtr = cuda.DevPtr

// LaunchParams configures one kernel launch.
type LaunchParams = sim.LaunchParams

// Dim3 is a CUDA-style 3D extent; D1/D2 are shorthand constructors.
type Dim3 = sim.Dim3

// D1 returns a 1-D extent.
func D1(x int) Dim3 { return sim.D1(x) }

// D2 returns a 2-D extent.
func D2(x, y int) Dim3 { return sim.D2(x, y) }

// KernelStats reports what one launch executed and cost.
type KernelStats = sim.KernelStats

// NewContext creates a host context on a fresh simulated device.
func NewContext(cfg Config) *Context { return cuda.NewContext(cfg) }

// Case-study profilers (the paper's handler library).

// BranchProfiler is Case Study I: per-branch divergence statistics.
type BranchProfiler = handlers.BranchProfiler

// NewBranchProfiler allocates the profiler's device state on a context.
func NewBranchProfiler(ctx *Context) *BranchProfiler { return handlers.NewBranchProfiler(ctx) }

// MemDivProfiler is Case Study II: warp memory address divergence.
type MemDivProfiler = handlers.MemDivProfiler

// NewMemDivProfiler allocates the profiler's device state on a context.
func NewMemDivProfiler(ctx *Context) *MemDivProfiler { return handlers.NewMemDivProfiler(ctx) }

// ValueProfiler is Case Study III: constant-bit and scalar-value profiling.
type ValueProfiler = handlers.ValueProfiler

// NewValueProfiler allocates the profiler's device state on a context.
func NewValueProfiler(ctx *Context) *ValueProfiler { return handlers.NewValueProfiler(ctx) }

// OpCounter is the paper's Figure 3 instruction categorizer.
type OpCounter = handlers.OpCounter

// NewOpCounter allocates the counter bank on a context.
func NewOpCounter(ctx *Context) *OpCounter { return handlers.NewOpCounter(ctx) }

// Fault injection (Case Study IV).

// Campaign configures an error-injection study.
type Campaign = faults.Campaign

// CampaignResult aggregates a campaign's outcome distribution.
type CampaignResult = faults.Result

// Outcome classifies one injection run.
type Outcome = faults.Outcome

// Injection outcomes.
const (
	Masked         = faults.Masked
	Crash          = faults.Crash
	Hang           = faults.Hang
	FailureSymptom = faults.FailureSymptom
	StdoutOnlyDiff = faults.StdoutOnlyDiff
	OutputDiff     = faults.OutputDiff
)

// Workload suite.

// Workload describes one benchmark of the suite.
type Workload = workloads.Spec

// WorkloadResult is a workload run's outputs.
type WorkloadResult = workloads.Result

// Workloads lists the registered benchmark names.
func Workloads() []string { return workloads.Names() }

// GetWorkload returns a registered benchmark.
func GetWorkload(name string) (*Workload, bool) { return workloads.Get(name) }

// Trace export (§9.4: driving other simulators).

// MemTracer records the coalesced global-memory transactions of a run.
type MemTracer = trace.MemTracer

// TraceEvent is one warp-level transaction set.
type TraceEvent = trace.Event

// ReplayCache drives a standalone cache model with a recorded trace.
var ReplayCache = trace.ReplayCache

// ReadTrace deserializes a trace written with MemTracer.Write.
var ReadTrace = trace.Read

// Heterogeneous CPU+GPU tracing (§9.4's Unified Virtual Memory prototype).

// UVMManager correlates CPU- and GPU-side touches of managed memory into
// page migration and sharing statistics.
type UVMManager = uvm.Manager

// UVMEvent is one touch of managed memory by either processor.
type UVMEvent = uvm.Event

// Processors in the unified trace.
const (
	UVMCPU = uvm.CPU
	UVMGPU = uvm.GPU
)

// NewUVMManager creates a UVM manager over a context.
func NewUVMManager(ctx *Context) *UVMManager { return uvm.NewManager(ctx) }

// Evaluation harness.

// ExperimentEnv configures the table/figure regeneration harness.
type ExperimentEnv = experiments.Env

// DefaultEnv returns the standard experiment environment.
func DefaultEnv() ExperimentEnv { return experiments.Default() }
