package sassi_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"sassi/internal/cuda"
	"sassi/internal/faults"
	"sassi/internal/obs/pcsamp"
	"sassi/internal/ptxas"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// The parallel-execution benchmarks measure the three concurrency layers of
// the engine: concurrent SMs inside one launch, campaign worker pools
// across fault-injection runs, and the compile cache that lets the fan-out
// share one compile. Results are recorded in BENCH_parallel.json (see
// TestWriteBenchParallelJSON); both paths produce bit-equal results, so
// these measure host wall time only.

// parallelBenchLaunch runs one sgemm(medium) end to end on a fresh device.
func parallelBenchLaunch(tb testing.TB, sequential bool) {
	parallelBenchEngine(tb, sequential, sim.EngineConcurrent)
}

// parallelBenchEngine runs sgemm(medium) on the given execution engine.
// The interpreter-vs-predecoded ratio is the headline number for the
// predecoded engine: unlike the SM/campaign rows it does not depend on
// host cores, so it holds on a single-core machine too.
func parallelBenchEngine(tb testing.TB, sequential bool, engine sim.Engine) {
	spec, ok := workloads.Get("parboil.sgemm")
	if !ok {
		tb.Fatal("sgemm not registered")
	}
	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := sim.KeplerK10()
	cfg.SequentialSMs = sequential
	cfg.Engine = engine
	ctx := cuda.NewContext(cfg)
	res, err := spec.Run(ctx, prog, "medium")
	if err != nil {
		tb.Fatal(err)
	}
	if res.VerifyErr != nil {
		tb.Fatal(res.VerifyErr)
	}
}

// parallelBenchSched runs sgemm(medium) compiled with or without the
// post-RA list scheduler. Scheduling shrinks simulated cycles, and since
// the interpreter's wall time tracks issued cycles, the delta shows up as
// host throughput too — recorded so sched gains stay separable from
// engine noise when re-baselining.
func parallelBenchSched(tb testing.TB, schedule bool) {
	spec, ok := workloads.Get("parboil.sgemm")
	if !ok {
		tb.Fatal("sgemm not registered")
	}
	prog, err := spec.Compile(ptxas.Options{Schedule: schedule})
	if err != nil {
		tb.Fatal(err)
	}
	ctx := cuda.NewContext(sim.KeplerK10())
	res, err := spec.Run(ctx, prog, "medium")
	if err != nil {
		tb.Fatal(err)
	}
	if res.VerifyErr != nil {
		tb.Fatal(res.VerifyErr)
	}
}

// parallelBenchSampled runs sgemm(medium) with the PC sampler attached at
// the given period (0 = sampling off). Recorded so the pcsamp overhead at
// the default cadence stays visible next to the engine baselines.
func parallelBenchSampled(tb testing.TB, period uint64) {
	spec, ok := workloads.Get("parboil.sgemm")
	if !ok {
		tb.Fatal("sgemm not registered")
	}
	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	ctx := cuda.NewContext(sim.KeplerK10())
	if period > 0 {
		ctx.Device().PCSamp = pcsamp.New(period)
	}
	res, err := spec.Run(ctx, prog, "medium")
	if err != nil {
		tb.Fatal(err)
	}
	if res.VerifyErr != nil {
		tb.Fatal(res.VerifyErr)
	}
}

// parallelBenchCampaign runs a small vecadd fault campaign at the given
// worker count.
func parallelBenchCampaign(tb testing.TB, workers int) {
	spec, ok := workloads.Get("demo.vecadd")
	if !ok {
		tb.Fatal("vecadd not registered")
	}
	c := &faults.Campaign{
		Spec: spec, Dataset: "small",
		Injections: 24, Seed: 7, Config: sim.MiniGPU(),
		Workers: workers,
	}
	if _, err := c.Run(); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkParallelSpeedup compares sequential-SM vs concurrent-SM launch
// execution and 1-worker vs NumCPU-worker campaigns. On a single-core host
// the ratios collapse to ~1x; the speedup materializes with cores.
func BenchmarkParallelSpeedup(b *testing.B) {
	b.Run("sms=sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchLaunch(b, true)
		}
	})
	b.Run("sms=parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchLaunch(b, false)
		}
	})
	b.Run("engine=interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchEngine(b, true, sim.EngineConcurrent)
		}
	})
	b.Run("engine=predecoded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchEngine(b, true, sim.EnginePredecoded)
		}
	})
	b.Run("sched=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchSched(b, false)
		}
	})
	b.Run("sched=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchSched(b, true)
		}
	})
	b.Run("pcsamp=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchSampled(b, 0)
		}
	})
	b.Run("pcsamp=on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchSampled(b, pcsamp.DefaultPeriod)
		}
	})
	b.Run("campaign-workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchCampaign(b, 1)
		}
	})
	b.Run("campaign-workers=ncpu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			parallelBenchCampaign(b, runtime.NumCPU())
		}
	})
}

// benchParallelReport is the BENCH_parallel.json schema.
type benchParallelReport struct {
	Host struct {
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
		GOOS       string `json:"goos"`
		GOARCH     string `json:"goarch"`
	} `json:"host"`
	Note    string             `json:"note"`
	Seconds map[string]float64 `json:"seconds"`
	Speedup map[string]float64 `json:"speedup"`
}

// TestWriteBenchParallelJSON regenerates BENCH_parallel.json. It is opt-in
// (set SASSI_WRITE_BENCH=1) so regular test runs stay fast and the checked-
// in numbers change only deliberately.
func TestWriteBenchParallelJSON(t *testing.T) {
	if os.Getenv("SASSI_WRITE_BENCH") == "" {
		t.Skip("set SASSI_WRITE_BENCH=1 to rewrite BENCH_parallel.json")
	}
	timeIt := func(f func()) float64 {
		const reps = 3
		best := time.Duration(1 << 62)
		for i := 0; i < reps; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best.Seconds()
	}

	var r benchParallelReport
	r.Host.NumCPU = runtime.NumCPU()
	r.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	r.Host.GoVersion = runtime.Version()
	r.Host.GOOS = runtime.GOOS
	r.Host.GOARCH = runtime.GOARCH
	r.Seconds = map[string]float64{
		"launch_sms_sequential":     timeIt(func() { parallelBenchLaunch(t, true) }),
		"launch_sms_parallel":       timeIt(func() { parallelBenchLaunch(t, false) }),
		"launch_engine_interpreter": timeIt(func() { parallelBenchEngine(t, true, sim.EngineConcurrent) }),
		"launch_engine_predecoded":  timeIt(func() { parallelBenchEngine(t, true, sim.EnginePredecoded) }),
		"launch_sched_off":          timeIt(func() { parallelBenchSched(t, false) }),
		"launch_sched_on":           timeIt(func() { parallelBenchSched(t, true) }),
		"launch_pcsamp_off":         timeIt(func() { parallelBenchSampled(t, 0) }),
		"launch_pcsamp_on":          timeIt(func() { parallelBenchSampled(t, pcsamp.DefaultPeriod) }),
		"campaign_workers_1":        timeIt(func() { parallelBenchCampaign(t, 1) }),
		"campaign_workers_ncpu":     timeIt(func() { parallelBenchCampaign(t, runtime.NumCPU()) }),
	}
	r.Speedup = map[string]float64{
		"sms":      r.Seconds["launch_sms_sequential"] / r.Seconds["launch_sms_parallel"],
		"campaign": r.Seconds["campaign_workers_1"] / r.Seconds["campaign_workers_ncpu"],
		"sched":    r.Seconds["launch_sched_off"] / r.Seconds["launch_sched_on"],
		// Predecoded engine vs the reference interpreter, both on
		// sequential SM dispatch — a pure single-thread efficiency ratio.
		"predecoded": r.Seconds["launch_engine_interpreter"] / r.Seconds["launch_engine_predecoded"],
		// Overhead ratio, not a speedup: >1 means sampling costs time.
		"pcsamp_overhead": r.Seconds["launch_pcsamp_on"] / r.Seconds["launch_pcsamp_off"],
	}
	if r.Host.NumCPU <= 1 {
		r.Note = "single-core host: concurrent paths run but cannot speed up; " +
			"re-run with SASSI_WRITE_BENCH=1 on a multi-core machine for the speedup numbers"
	} else {
		r.Note = "best of 3 wall-clock runs per configuration"
	}

	out, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_parallel.json: %s", out)
}
