// Command sassi-sched autotunes SASS instruction schedules with the
// simulator in the loop: each workload is compiled under N tie-break
// seeds of the post-RA list scheduler, every candidate is certified by
// the static `schedule` verifier check and gated on bit-equal output
// against the unscheduled build, and the candidate with the fewest
// simulated cycles wins. With -disasm it prints the winning schedule's
// SASS next to the baseline for inspection.
//
// Usage:
//
//	sassi-sched                                  # default app list
//	sassi-sched -apps parboil.sgemm -candidates 32
//	sassi-sched -apps parboil.bfs -workers 8 -seed 7
//	sassi-sched -apps parboil.sgemm -disasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sassi/internal/experiments"
	"sassi/internal/ptxas"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

func main() {
	apps := flag.String("apps", "", "comma list of workloads (default: the sched experiment set: "+
		strings.Join(experiments.SchedApps(), ",")+")")
	candidates := flag.Int("candidates", 8, "schedules evaluated per app (seed 0 heuristic + jittered tie-breaks)")
	seed := flag.Uint64("seed", 2015, "sweep seed; candidate i uses splitmix64(seed, i)")
	workers := flag.Int("workers", 0, "concurrent candidate evaluations (0 = GOMAXPROCS); results are identical at any value")
	gpu := flag.String("gpu", "k10", "device model: k10, k20, k40, mini")
	disasm := flag.Bool("disasm", false, "also print baseline vs winning-schedule disassembly per app")
	flag.Parse()

	var cfg sim.Config
	switch *gpu {
	case "k10":
		cfg = sim.KeplerK10()
	case "k20":
		cfg = sim.KeplerK20()
	case "k40":
		cfg = sim.KeplerK40()
	case "mini":
		cfg = sim.MiniGPU()
	default:
		fmt.Fprintf(os.Stderr, "unknown gpu %q\n", *gpu)
		os.Exit(2)
	}
	env := experiments.Default()
	env.Config = cfg
	env.Workers = *workers

	var appList []string
	if *apps != "" {
		appList = strings.Split(*apps, ",")
	}
	rows, err := experiments.SchedTable(env, appList, *candidates, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(experiments.FormatSchedTable(rows))

	if *disasm {
		for _, r := range rows {
			if err := printDisasm(r); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// printDisasm shows the unscheduled and winning-schedule SASS side by
// side (sequentially — kernels are long; a textual diff tool does the
// rest).
func printDisasm(r experiments.SchedRow) error {
	spec, ok := workloads.Get(r.App)
	if !ok {
		return fmt.Errorf("unknown workload %q", r.App)
	}
	base, err := spec.Compile(ptxas.Options{})
	if err != nil {
		return err
	}
	sched, err := spec.Compile(ptxas.Options{Schedule: true, SchedSeed: r.BestSeed})
	if err != nil {
		return err
	}
	fmt.Printf("==== %s: baseline ====\n", r.App)
	for _, k := range base.Kernels {
		fmt.Println(k.Disassemble())
	}
	fmt.Printf("==== %s: scheduled (seed %#x) ====\n", r.App, r.BestSeed)
	for _, k := range sched.Kernels {
		fmt.Println(k.Disassemble())
	}
	return nil
}
