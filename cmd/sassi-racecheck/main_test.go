package main

import (
	"bytes"
	"strings"
	"testing"

	"sassi/internal/workloads"
)

// TestRacecheckMutants: every seed-buggy mutant must be rejected with both
// a static prediction and a dynamic confirmation in the output.
func TestRacecheckMutants(t *testing.T) {
	for _, name := range workloads.MutantNames() {
		if strings.HasPrefix(name, "mutant.cfi-") {
			continue // control-flow mutants; sassi-cfi owns their rejection
		}
		t.Run(name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{name}, &out, &errb); code != 1 {
				t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
			}
			if !strings.Contains(out.String(), "static: ") {
				t.Errorf("no static report:\n%s", out.String())
			}
			if !strings.Contains(out.String(), "dynamic: ") {
				t.Errorf("no dynamic report:\n%s", out.String())
			}
		})
	}
}

// TestRacecheckCleanWorkload: a properly-barriered built-in passes both
// phases silently.
func TestRacecheckCleanWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dataset", "small", "parboil.sgemm"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("missing clean verdict:\n%s", out.String())
	}
}

// TestRacecheckUsage: unknown workloads and missing arguments are usage
// errors, and -list names every mutant.
func TestRacecheckUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"no.such.workload"}, &out, &errb); code != 2 {
		t.Errorf("unknown workload: exit %d, want 2", code)
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Errorf("-list: exit %d, want 0", code)
	}
	for _, name := range workloads.MutantNames() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
