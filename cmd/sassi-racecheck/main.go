// Command sassi-racecheck runs the shared-memory race tooling over one
// workload (or seed-buggy mutant): the static race pass from
// internal/analysis/concurrency, the dynamic SASSI race handler from
// internal/handlers, or both — the static pass predicts, the handler
// confirms on a concrete execution.
//
// Usage:
//
//	sassi-racecheck mutant.bfs-frontier
//	sassi-racecheck -dataset medium parboil.sgemm
//	sassi-racecheck -static=false mutant.stencil-halo   # dynamic only
//	sassi-racecheck -list
//
// The exit status is 1 when any race is reported (statically or
// dynamically), 0 when the workload is clean, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sassi/internal/analysis"
	"sassi/internal/analysis/concurrency"
	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, checks, prints, and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sassi-racecheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	static := fs.Bool("static", true, "run the static race pass")
	dynamic := fs.Bool("dynamic", true, "run the workload under the SASSI race handler")
	dataset := fs.String("dataset", "", "dataset to run (default: the workload's default)")
	list := fs.Bool("list", false, "list checkable workloads and mutants")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, n := range workloads.Names() {
			fmt.Fprintln(stdout, n)
		}
		for _, n := range workloads.MutantNames() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: sassi-racecheck [-static=bool] [-dynamic=bool] [-dataset name] <workload|mutant>")
		return 2
	}
	name := fs.Arg(0)
	spec, ok := workloads.Get(name)
	if !ok {
		spec, ok = workloads.GetMutant(name)
	}
	if !ok {
		fmt.Fprintf(stderr, "sassi-racecheck: unknown workload %q (try -list)\n", name)
		return 2
	}
	ds := *dataset
	if ds == "" {
		ds = spec.DefaultDataset()
	}

	prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
	if err != nil {
		fmt.Fprintf(stderr, "sassi-racecheck: compile %s: %v\n", name, err)
		return 2
	}

	racy := false
	if *static {
		for _, k := range prog.Kernels {
			cfg, err := sass.BuildCFG(k)
			if err != nil {
				fmt.Fprintf(stderr, "sassi-racecheck: %s/%s: cfg: %v\n", name, k.Name, err)
				return 2
			}
			for _, p := range concurrency.SharedRacePairs(cfg, analysis.AnalyzeValues(cfg)) {
				racy = true
				fmt.Fprintf(stdout, "static: %s: %s@%04x <-> %s@%04x may race in the same barrier interval\n",
					k.Name, k.Instrs[p[0]].Op, sass.InsOffset(p[0]), k.Instrs[p[1]].Op, sass.InsOffset(p[1]))
			}
		}
	}

	if *dynamic {
		// Dynamic sites index the *original* kernels; snapshot the opcodes
		// before Instrument rewrites the program in place.
		siteOp := map[int]sass.Opcode{}
		for _, k := range prog.Kernels {
			for i := range k.Instrs {
				if _, seen := siteOp[i]; !seen {
					siteOp[i] = k.Instrs[i].Op
				}
			}
		}
		cfg := sim.MiniGPU()
		// One CTA at a time: the shadow state tracks same-CTA conflicts and
		// the handler serializes anyway.
		cfg.SequentialSMs = true
		ctx := cuda.NewContext(cfg)
		checker := handlers.NewRaceChecker()
		if err := sassi.Instrument(prog, checker.Options()); err != nil {
			fmt.Fprintf(stderr, "sassi-racecheck: instrument %s: %v\n", name, err)
			return 2
		}
		rt := sassi.NewRuntime(prog)
		rt.MustRegister(checker.Handler())
		rt.Attach(ctx.Device())
		res, err := spec.Run(ctx, prog, ds)
		if err != nil {
			fmt.Fprintf(stderr, "sassi-racecheck: run %s: %v\n", name, err)
			return 2
		}
		// A racy workload is expected to corrupt its own output: report,
		// don't fail on it.
		if res != nil && res.VerifyErr != nil {
			fmt.Fprintf(stdout, "output: %v\n", res.VerifyErr)
		}
		for _, p := range checker.Races() {
			racy = true
			fmt.Fprintf(stdout, "dynamic: %s@%04x <-> %s@%04x raced (same CTA, same barrier interval, distinct threads)\n",
				siteOp[p.A], sass.InsOffset(p.A), siteOp[p.B], sass.InsOffset(p.B))
		}
	}

	if racy {
		fmt.Fprintf(stderr, "sassi-racecheck: %s: races reported\n", name)
		return 1
	}
	fmt.Fprintf(stdout, "sassi-racecheck: %s: clean\n", name)
	return 0
}
