// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1,fig7 -gpu k10
//	experiments -run fig10 -injections 1000
//
// Output is the text rendering of each table/figure; EXPERIMENTS.md records
// a reference run next to the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sassi/internal/experiments"
	"sassi/internal/obs"
	"sassi/internal/obscli"
	"sassi/internal/sim"
)

func main() {
	runList := flag.String("run", "all", "comma list of experiments: table1,fig5,fig7,fig8,table2,fig10,cfi,table3,overhead,sched,pcsamp")
	gpu := flag.String("gpu", "k10", "device model: k10, k20, k40, mini")
	injections := flag.Int("injections", 100, "fault injections per app for fig10 and cfi (paper: 1000)")
	seed := flag.Uint64("seed", 2015, "campaign seed for fig10 and cfi")
	faithful := flag.Bool("faithful-handlers", false, "use the collective (goroutine-per-lane) handlers instead of the fast sequential ones")
	apps := flag.String("apps", "", "comma list restricting table2/table3/fig10 to specific workloads")
	workers := flag.Int("workers", 0, "concurrent fig10 injection / sched candidate runs (0 = GOMAXPROCS); results are identical at any value")
	candidates := flag.Int("candidates", 8, "schedule candidates per app for sched (seed 0 heuristic + jittered tie-breaks)")
	pcsampTop5 := flag.Float64("assert-pcsamp-top5", 0, "fail unless every pcsamp app's top-5 agreement at the default period meets this bound (0 = no gate)")
	obsFlags := obscli.Register()
	flag.Parse()

	var cfg sim.Config
	switch *gpu {
	case "k10":
		cfg = sim.KeplerK10()
	case "k20":
		cfg = sim.KeplerK20()
	case "k40":
		cfg = sim.KeplerK40()
	case "mini":
		cfg = sim.MiniGPU()
	default:
		fmt.Fprintf(os.Stderr, "unknown gpu %q\n", *gpu)
		os.Exit(2)
	}
	env := experiments.Default()
	env.Config = cfg
	env.Fast = !*faithful
	env.Workers = *workers
	var reg *obs.Registry
	reg, tr, samp := obsFlags.Setup(func() *obs.Stats {
		s := obs.NewStats(reg)
		s.GPU = *gpu
		return s
	})
	env.Cache.Metrics = reg
	env.Cache.Trace = tr
	env.Metrics = reg
	env.Trace = tr
	env.PCSamp = samp

	var appList []string
	if *apps != "" {
		appList = strings.Split(*apps, ",")
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	step := func(name string, f func() (string, error)) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%s) ====\n%s\n", name, time.Since(start).Round(time.Millisecond), out)
	}

	step("table1", func() (string, error) {
		rows, err := experiments.Table1(env)
		if err != nil {
			return "", err
		}
		return experiments.FormatTable1(rows), nil
	})
	step("fig5", func() (string, error) {
		data, err := experiments.Figure5(env)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure5(data), nil
	})
	step("fig7", func() (string, error) {
		rows, err := experiments.Figure7(env)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure7(rows), nil
	})
	step("fig8", func() (string, error) {
		r, err := experiments.Figure8(env)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure8(r), nil
	})
	step("table2", func() (string, error) {
		rows, err := experiments.Table2(env, appList)
		if err != nil {
			return "", err
		}
		return experiments.FormatTable2(rows), nil
	})
	step("fig10", func() (string, error) {
		rows, err := experiments.Figure10(env, appList, *injections, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatFigure10(rows), nil
	})
	step("cfi", func() (string, error) {
		rows, err := experiments.CFICoverage(env, appList, *injections, *seed)
		if err != nil {
			return "", err
		}
		return experiments.FormatCFICoverage(rows), nil
	})
	step("table3", func() (string, error) {
		rows, err := experiments.Table3(env, appList)
		if err != nil {
			return "", err
		}
		return experiments.FormatTable3(rows), nil
	})
	// Not part of "all": the schedule autotuner is an on-demand report
	// (it compiles candidate-count variants of every app).
	if want["sched"] {
		step("sched", func() (string, error) {
			rows, err := experiments.SchedTable(env, appList, *candidates, *seed)
			if err != nil {
				return "", err
			}
			return experiments.FormatSchedTable(rows), nil
		})
	}
	// Not part of "all": the PC-sampling accuracy sweep is an on-demand
	// report (it runs each app four extra times, once per sweep period).
	if want["pcsamp"] {
		step("pcsamp", func() (string, error) {
			rows, err := experiments.PCSampReport(env, appList)
			if err != nil {
				return "", err
			}
			if *pcsampTop5 > 0 {
				if err := experiments.AssertPCSampTop5(rows, *pcsampTop5); err != nil {
					return "", err
				}
			}
			return experiments.FormatPCSampReport(rows), nil
		})
	}
	// Not part of "all": the overhead breakdown is an on-demand report.
	if want["overhead"] {
		step("overhead", func() (string, error) {
			rows, err := experiments.OverheadReport(env, appList, nil)
			if err != nil {
				return "", err
			}
			return experiments.FormatOverheadReport(rows), nil
		})
	}
	stats := obs.NewStats(reg)
	stats.GPU = *gpu
	if err := obsFlags.Finish(tr, stats, samp); err != nil {
		fmt.Fprintf(os.Stderr, "obs output: %v\n", err)
		os.Exit(1)
	}
}
