// Command sassi-cfi runs the control-flow-integrity tooling over one
// workload (or seed-buggy mutant): the static legal-target pass from
// internal/analysis/cfi, the dynamic SASSI shadow-stack checker from
// internal/handlers, or a control-state corruption campaign from
// internal/faults that measures the checker's detection coverage.
//
// Usage:
//
//	sassi-cfi demo.calltree
//	sassi-cfi mutant.cfi-ret-nocall
//	sassi-cfi -static=false parboil.bfs            # dynamic only
//	sassi-cfi -campaign 100 demo.calltree          # corruption campaign
//	sassi-cfi -campaign 100 -assert-detect 0.95 demo.calltree
//	sassi-cfi -list
//
// The exit status is 1 when any CFI violation is reported (statically or
// dynamically) or a campaign assertion fails, 0 when clean, 2 on usage or
// execution errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sassi/internal/analysis"
	"sassi/internal/analysis/cfi"
	"sassi/internal/cuda"
	"sassi/internal/faults"
	"sassi/internal/handlers"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, checks, prints, and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sassi-cfi", flag.ContinueOnError)
	fs.SetOutput(stderr)
	static := fs.Bool("static", true, "run the static CFI pass")
	dynamic := fs.Bool("dynamic", true, "run the workload under the SASSI CFI checker")
	campaign := fs.Int("campaign", 0, "run a control-state corruption campaign with this many injections (disables the other modes)")
	assertDetect := fs.Float64("assert-detect", 0, "campaign mode: fail unless return-address detection meets this rate and the run has no false positives")
	seed := fs.Uint64("seed", 2015, "campaign seed")
	dataset := fs.String("dataset", "", "dataset to run (default: the workload's default)")
	list := fs.Bool("list", false, "list checkable workloads and mutants")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, n := range workloads.Names() {
			fmt.Fprintln(stdout, n)
		}
		for _, n := range workloads.MutantNames() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: sassi-cfi [-static=bool] [-dynamic=bool] [-campaign N] [-dataset name] <workload|mutant>")
		return 2
	}
	name := fs.Arg(0)
	spec, ok := workloads.Get(name)
	if !ok {
		spec, ok = workloads.GetMutant(name)
	}
	if !ok {
		fmt.Fprintf(stderr, "sassi-cfi: unknown workload %q (try -list)\n", name)
		return 2
	}
	ds := *dataset
	if ds == "" {
		ds = spec.DefaultDataset()
	}

	if *campaign > 0 {
		return runCampaign(spec, ds, *campaign, *seed, *assertDetect, stdout, stderr)
	}

	prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
	if err != nil {
		fmt.Fprintf(stderr, "sassi-cfi: compile %s: %v\n", name, err)
		return 2
	}

	violated := false
	if *static {
		for _, k := range prog.Kernels {
			cfg, err := sass.BuildCFG(k)
			if err != nil {
				fmt.Fprintf(stderr, "sassi-cfi: %s/%s: cfg: %v\n", name, k.Name, err)
				return 2
			}
			for _, d := range cfi.Check(cfg) {
				if d.Sev == analysis.Error {
					violated = true
				}
				fmt.Fprintf(stdout, "static: %s@%04x: %s: %s\n",
					k.Name, sass.InsOffset(d.Instr), d.Sev, d.Msg)
			}
		}
	}

	if *dynamic {
		checker := handlers.NewCFIChecker()
		opts := checker.Options()
		// Mutants are corrupt by construction; the CFI pass itself is the
		// gate, not the instrumentor's verifier.
		opts.Verify = analysis.VerifyOff
		if err := sassi.Instrument(prog, opts); err != nil {
			fmt.Fprintf(stderr, "sassi-cfi: instrument %s: %v\n", name, err)
			return 2
		}
		if err := checker.Prepare(prog); err != nil {
			fmt.Fprintf(stderr, "sassi-cfi: prepare %s: %v\n", name, err)
			return 2
		}
		cfg := sim.MiniGPU()
		cfg.SequentialSMs = true
		// Corrupted control state loves to spin; keep hangs quick.
		cfg.WatchdogWarpInstrs = 1_000_000
		ctx := cuda.NewContext(cfg)
		rt := sassi.NewRuntime(prog)
		rt.MustRegister(checker.Handler())
		rt.Attach(ctx.Device())
		res, err := spec.Run(ctx, prog, ds)
		// A corrupt workload is expected to fault or mis-verify: report,
		// don't fail on it — the violation log is the verdict.
		if err != nil {
			fmt.Fprintf(stdout, "run: %v\n", err)
		} else if res != nil && res.VerifyErr != nil {
			fmt.Fprintf(stdout, "output: %v\n", res.VerifyErr)
		}
		for _, v := range checker.Violations() {
			violated = true
			fmt.Fprintf(stdout, "dynamic: %v\n", v)
		}
		if checker.Dropped > 0 {
			fmt.Fprintf(stdout, "dynamic: (%d further violations dropped)\n", checker.Dropped)
		}
	}

	if violated {
		fmt.Fprintf(stderr, "sassi-cfi: %s: CFI violations reported\n", name)
		return 1
	}
	fmt.Fprintf(stdout, "sassi-cfi: %s: clean\n", name)
	return 0
}

// runCampaign executes a control-state corruption campaign and prints the
// per-class detection coverage.
func runCampaign(spec *workloads.Spec, ds string, injections int, seed uint64, assertDetect float64, stdout, stderr io.Writer) int {
	cfg := sim.MiniGPU()
	cfg.SequentialSMs = true
	c := &faults.ControlCampaign{
		Spec: spec, Dataset: ds,
		Injections: injections, Seed: seed, Config: cfg,
	}
	res, err := c.Run()
	if err != nil {
		fmt.Fprintf(stderr, "sassi-cfi: campaign %s: %v\n", spec.Name, err)
		return 2
	}
	fmt.Fprintf(stdout, "%-12s %6s %5s %9s %8s %6s %7s %7s\n",
		"class", "sites", "runs", "detected", "crashed", "hung", "silent", "masked")
	for cl := 0; cl < int(handlers.NumCtrlClasses); cl++ {
		class := handlers.CtrlClass(cl)
		if res.Sites[cl] == 0 {
			fmt.Fprintf(stdout, "%-12s %6d %5s %9s\n", class, 0, "-", "n/a")
			continue
		}
		fmt.Fprintf(stdout, "%-12s %6d %5d %8.1f%% %7.1f%% %5.1f%% %6.1f%% %6.1f%%\n",
			class, res.Sites[cl], res.ClassTotals[cl],
			100*res.Fraction(class, faults.CtrlDetected),
			100*res.Fraction(class, faults.CtrlCrash),
			100*res.Fraction(class, faults.CtrlHang),
			100*res.Fraction(class, faults.CtrlSilent),
			100*res.Fraction(class, faults.CtrlMasked))
	}
	fmt.Fprintf(stdout, "false positives on the uncorrupted run: %d\n", res.FalsePositives)
	if assertDetect > 0 {
		if res.FalsePositives != 0 {
			fmt.Fprintf(stderr, "sassi-cfi: %s: %d false positives on the uncorrupted run\n",
				spec.Name, res.FalsePositives)
			return 1
		}
		if n := res.ClassTotals[handlers.CtrlRetBitFlip]; n == 0 {
			fmt.Fprintf(stderr, "sassi-cfi: %s: no return-address injections drawn\n", spec.Name)
			return 1
		}
		if rate := res.DetectionRate(handlers.CtrlRetBitFlip); rate < assertDetect {
			fmt.Fprintf(stderr, "sassi-cfi: %s: return-address detection %.1f%% below the %.1f%% floor\n",
				spec.Name, 100*rate, 100*assertDetect)
			return 1
		}
	}
	return 0
}
