package main

import (
	"bytes"
	"strings"
	"testing"

	"sassi/internal/workloads"
)

// TestCFIMutantsRejected: every CFI seed mutant must be rejected with both
// a static error and a dynamic (load-time or runtime) violation.
func TestCFIMutantsRejected(t *testing.T) {
	for _, name := range workloads.MutantNames() {
		if !strings.HasPrefix(name, "mutant.cfi-") {
			continue // shared-race mutants; sassi-racecheck owns their rejection
		}
		t.Run(name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run([]string{name}, &out, &errb); code != 1 {
				t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
			}
			if !strings.Contains(out.String(), "static: ") {
				t.Errorf("no static report:\n%s", out.String())
			}
			if !strings.Contains(out.String(), "dynamic: ") {
				t.Errorf("no dynamic report:\n%s", out.String())
			}
		})
	}
}

// TestCFICleanWorkloads: the call-tree demo and a compiled built-in pass
// both phases silently.
func TestCFICleanWorkloads(t *testing.T) {
	for _, name := range []string{"demo.calltree", "demo.vecadd"} {
		var out, errb bytes.Buffer
		if code := run([]string{name}, &out, &errb); code != 0 {
			t.Fatalf("%s: exit %d, want 0\nstdout: %s\nstderr: %s",
				name, code, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "clean") {
			t.Errorf("%s: missing clean verdict:\n%s", name, out.String())
		}
	}
}

// TestCFICampaign: a small campaign on the call-tree demo meets the
// detection floor with zero false positives.
func TestCFICampaign(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-campaign", "25", "-assert-detect", "0.95", "demo.calltree"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "false positives on the uncorrupted run: 0") {
		t.Errorf("missing false-positive line:\n%s", out.String())
	}
}

// TestCFIUsage: unknown workloads and missing arguments are usage errors,
// and -list names the CFI mutants.
func TestCFIUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"no.such.workload"}, &out, &errb); code != 2 {
		t.Errorf("unknown workload: exit %d, want 2", code)
	}
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Errorf("-list: exit %d, want 0", code)
	}
	for _, name := range []string{"demo.calltree", "mutant.cfi-ret-nocall", "mutant.cfi-cal-midblock", "mutant.cfi-ssy-skew"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s", name)
		}
	}
}
