package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestLintMutantsGolden pins the lint output over the seed-buggy mutants:
// the concurrency checks must flag every mutant, in a deterministic order,
// with the exact rendered diagnostics the golden file records.
func TestLintMutantsGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "barrier-divergence,shared-race", "-mutants"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d (races are warnings; stderr: %s)", code, errb.String())
	}
	if out.Len() == 0 {
		t.Fatal("no diagnostics printed for the seed-buggy mutants")
	}

	golden := filepath.Join("testdata", "mutants.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./cmd/sassi-lint` to create it)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("lint output changed.\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}
}

// TestLintUniformityGolden pins the uniformity dump on parboil.sgemm: the
// exact set of instructions the affine value lattice proves warp-uniform.
// The predecoded engine's fast-path coverage follows these bits, so a
// lattice regression surfaces here as a golden diff before it surfaces as
// a missed speedup.
func TestLintUniformityGolden(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-uniformity", "-workload", "parboil.sgemm"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "instructions fully uniform") {
		t.Fatalf("no uniformity summary printed:\n%s", out.String())
	}

	golden := filepath.Join("testdata", "uniformity_sgemm.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./cmd/sassi-lint` to create it)", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("uniformity dump changed.\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}
}

// TestLintWerror: -Werror turns the mutants' race warnings into a failing
// exit status, and the clean built-in suite stays green under the same
// gate — the exact command CI runs.
func TestLintWerror(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-Werror", "-checks", "shared-race", "-mutants"}, &out, &errb); code != 1 {
		t.Errorf("-Werror over mutants: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-Werror", "-checks", "barrier-divergence,shared-race", "-workloads"}, &out, &errb); code != 0 {
		t.Errorf("-Werror over built-ins: exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestLintUsage: no inputs is a usage error.
func TestLintUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no-arg run: exit %d, want 2", code)
	}
}

// TestLintChecksValidation pins the -checks contract: unknown check names
// are usage errors naming the known set, -list-checks enumerates it (cfi
// included), and the CFI mutants fail the lint under the cfi check.
func TestLintChecksValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "no-such-check", "-workloads"}, &out, &errb); code != 2 {
		t.Errorf("unknown check: exit %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "cfi") {
		t.Errorf("unknown-check error does not name the known checks:\n%s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-list-checks"}, &out, &errb); code != 0 {
		t.Errorf("-list-checks: exit %d, want 0", code)
	}
	for _, c := range []string{"cfi", "barrier-divergence", "shared-race"} {
		if !strings.Contains(out.String(), c) {
			t.Errorf("-list-checks output missing %q:\n%s", c, out.String())
		}
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-checks", "cfi", "-mutants"}, &out, &errb); code != 1 {
		t.Errorf("cfi check over mutants: exit %d, want 1\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "cfi") {
		t.Errorf("no cfi diagnostics over the CFI mutants:\n%s", out.String())
	}

	// The clean built-in suite stays green under the cfi gate — the exact
	// command CI runs.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-Werror", "-checks", "cfi", "-workloads"}, &out, &errb); code != 0 {
		t.Errorf("-Werror -checks cfi over built-ins: exit %d, want 0\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
}
