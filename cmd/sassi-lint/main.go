// Command sassi-lint runs the static verifier (internal/analysis) over
// kernels without executing them: the compile pipeline's post-pass, usable
// standalone and from CI.
//
// Inputs are PTX-like assembly files (compiled through ptxas first) or
// serialized kernels written by MarshalBinary; -workloads lints every
// built-in benchmark instead. With -instrument, each compiled program is
// additionally instrumented with a representative configuration and the
// instrumentation-safety checks run over the result.
//
// Usage:
//
//	sassi-lint examples/ptxasm/squares.sptx
//	sassi-lint -workloads -instrument
//
// Diagnostics print one per line; the exit status is 1 if any
// error-severity finding was reported, 2 on usage or input errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"sassi/internal/analysis"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/workloads"
)

func main() {
	lintWorkloads := flag.Bool("workloads", false, "lint every built-in workload")
	instrument := flag.Bool("instrument", false, "also instrument each program and check the result")
	flag.Parse()

	if !*lintWorkloads && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: sassi-lint [-instrument] [-workloads] [file.sptx|file.sasskrn ...]")
		os.Exit(2)
	}

	l := &linter{instrument: *instrument}
	if *lintWorkloads {
		for _, name := range workloads.Names() {
			spec, _ := workloads.Get(name)
			prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
			if err != nil {
				l.fail("workload %s: %v", name, err)
				continue
			}
			l.lintProgram("workload:"+name, prog)
		}
	}
	for _, path := range flag.Args() {
		l.lintFile(path)
	}

	if l.errors > 0 {
		fmt.Fprintf(os.Stderr, "sassi-lint: %d error(s), %d warning(s)\n", l.errors, l.warnings)
		os.Exit(1)
	}
	if l.warnings > 0 {
		fmt.Fprintf(os.Stderr, "sassi-lint: %d warning(s)\n", l.warnings)
	}
}

type linter struct {
	instrument bool
	errors     int
	warnings   int
}

func (l *linter) fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sassi-lint: "+format+"\n", args...)
	l.errors++
}

func (l *linter) report(file string, diags []analysis.Diagnostic) {
	for _, d := range diags {
		d.File = file
		fmt.Println(d)
		if d.Sev == analysis.Error {
			l.errors++
		} else {
			l.warnings++
		}
	}
}

func (l *linter) lintFile(path string) {
	switch {
	case strings.HasSuffix(path, ".sasskrn"):
		data, err := os.ReadFile(path)
		if err != nil {
			l.fail("%v", err)
			return
		}
		k := &sass.Kernel{}
		if err := k.UnmarshalBinary(data); err != nil {
			l.fail("%s: %v", path, err)
			return
		}
		l.report(path, analysis.VerifyKernel(k))
	default: // PTX-like assembly
		src, err := os.ReadFile(path)
		if err != nil {
			l.fail("%v", err)
			return
		}
		m, err := ptx.ParseModule(string(src))
		if err != nil {
			l.fail("%s: %v", path, err)
			return
		}
		// Compile without the verify post-pass: the lint reports the
		// diagnostics itself instead of dying on the first error.
		prog, err := ptxas.Compile(m, ptxas.Options{Verify: analysis.VerifyOff})
		if err != nil {
			l.fail("%s: %v", path, err)
			return
		}
		l.lintProgram(path, prog)
	}
}

func (l *linter) lintProgram(file string, prog *sass.Program) {
	l.report(file, analysis.Verify(prog))
	if !l.instrument {
		return
	}
	// Instrument with a configuration that exercises every injection shape:
	// before-sites everywhere, after-sites on memory ops, the memory extra
	// object. Instrument's own verify post-pass diffs the result against
	// the original; recover its diagnostics for positioned output.
	err := sassi.Instrument(prog, sassi.Options{
		Where:         sassi.BeforeAll | sassi.AfterMem,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "lint_before",
		AfterHandler:  "lint_after",
		Verify:        analysis.VerifyOn,
	})
	if err == nil {
		return
	}
	var ve *analysis.VerifyError
	if errors.As(err, &ve) {
		l.report(file+" [instrumented]", ve.Diags)
		return
	}
	l.fail("%s: instrument: %v", file, err)
}
