// Command sassi-lint runs the static verifier (internal/analysis) over
// kernels without executing them: the compile pipeline's post-pass, usable
// standalone and from CI.
//
// Inputs are PTX-like assembly files (compiled through ptxas first) or
// serialized kernels written by MarshalBinary; -workloads lints every
// built-in benchmark and -mutants every seed-buggy mutant instead. With
// -instrument, each compiled program is additionally instrumented with a
// representative configuration and the instrumentation-safety checks run
// over the result. -checks restricts reporting to a comma-separated list
// of check classes (unknown names are usage errors; -list-checks prints
// the known set); -Werror makes warnings fail the run, which is how CI
// gates the concurrency checks (warnings by design, so compiles still
// succeed) over the built-in suite.
//
// -uniformity switches from checking to dumping: instead of diagnostics,
// each kernel prints its affine-value-lattice uniformity facts, one line
// per instruction (G = guard provably warp-uniform, S = every source
// provably warp-uniform; GS together mark the instructions the predecoded
// engine's uniform-warp fast path may execute once per warp). -workload
// selects a single built-in by name, which is how the golden test pins
// the lattice's coverage on parboil.sgemm.
//
// Usage:
//
//	sassi-lint examples/ptxasm/squares.sptx
//	sassi-lint -workloads -instrument
//	sassi-lint -Werror -checks barrier-divergence,shared-race,cfi -workloads
//	sassi-lint -uniformity -workload parboil.sgemm
//	sassi-lint -list-checks
//
// Diagnostics print one per line in a deterministic order; the exit
// status is 1 if any error-severity finding was reported (or any finding
// at all under -Werror), 2 on usage or input errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sassi/internal/analysis"
	_ "sassi/internal/analysis/cfi"         // register the cfi check
	_ "sassi/internal/analysis/concurrency" // register barrier-divergence and shared-race
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, lints, prints, and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sassi-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lintWorkloads := fs.Bool("workloads", false, "lint every built-in workload")
	oneWorkload := fs.String("workload", "", "lint a single built-in workload by name")
	lintMutants := fs.Bool("mutants", false, "lint every seed-buggy mutant workload")
	uniformity := fs.Bool("uniformity", false, "dump per-instruction lattice uniformity facts instead of running checks")
	instrument := fs.Bool("instrument", false, "also instrument each program and check the result")
	werror := fs.Bool("Werror", false, "treat warnings as errors for the exit status")
	checks := fs.String("checks", "", "comma-separated check classes to report (default: all)")
	listChecks := fs.Bool("list-checks", false, "list the known check classes and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listChecks {
		for _, c := range analysis.KnownChecks() {
			fmt.Fprintln(stdout, c)
		}
		return 0
	}

	if !*lintWorkloads && !*lintMutants && *oneWorkload == "" && fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: sassi-lint [-Werror] [-checks list] [-list-checks] [-instrument] [-uniformity] [-workloads] [-workload name] [-mutants] [file.sptx|file.sasskrn ...]")
		return 2
	}

	l := &linter{instrument: *instrument, uniformity: *uniformity, stdout: stdout, stderr: stderr}
	if *checks != "" {
		known := map[string]bool{}
		for _, c := range analysis.KnownChecks() {
			known[c] = true
		}
		l.filter = map[string]bool{}
		for _, c := range strings.Split(*checks, ",") {
			c = strings.TrimSpace(c)
			if !known[c] {
				fmt.Fprintf(stderr, "sassi-lint: unknown check %q (known: %s)\n",
					c, strings.Join(analysis.KnownChecks(), ", "))
				return 2
			}
			l.filter[c] = true
		}
	}
	if *lintWorkloads {
		for _, name := range workloads.Names() {
			spec, _ := workloads.Get(name)
			l.lintSpec("workload:"+name, spec)
		}
	}
	if *oneWorkload != "" {
		spec, ok := workloads.Get(*oneWorkload)
		if !ok {
			fmt.Fprintf(stderr, "sassi-lint: unknown workload %q\n", *oneWorkload)
			return 2
		}
		l.lintSpec("workload:"+*oneWorkload, spec)
	}
	if *lintMutants {
		for _, name := range workloads.MutantNames() {
			spec, _ := workloads.GetMutant(name)
			l.lintSpec("mutant:"+name, spec)
		}
	}
	for _, path := range fs.Args() {
		l.lintFile(path)
	}

	if l.errors > 0 {
		fmt.Fprintf(stderr, "sassi-lint: %d error(s), %d warning(s)\n", l.errors, l.warnings)
		return 1
	}
	if l.warnings > 0 {
		fmt.Fprintf(stderr, "sassi-lint: %d warning(s)\n", l.warnings)
		if *werror {
			fmt.Fprintln(stderr, "sassi-lint: warnings treated as errors (-Werror)")
			return 1
		}
	}
	return 0
}

type linter struct {
	instrument bool
	uniformity bool
	filter     map[string]bool // nil: report every check class
	stdout     io.Writer
	stderr     io.Writer
	errors     int
	warnings   int
}

func (l *linter) fail(format string, args ...any) {
	fmt.Fprintf(l.stderr, "sassi-lint: "+format+"\n", args...)
	l.errors++
}

func (l *linter) report(file string, diags []analysis.Diagnostic) {
	if l.filter != nil {
		kept := diags[:0]
		for _, d := range diags {
			if l.filter[d.Check] {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	// Verify sorts per program, but instrument results arrive separately:
	// re-sort so each batch prints deterministically.
	analysis.SortDiagnostics(diags)
	for _, d := range diags {
		d.File = file
		fmt.Fprintln(l.stdout, d)
		if d.Sev == analysis.Error {
			l.errors++
		} else {
			l.warnings++
		}
	}
}

func (l *linter) lintSpec(label string, spec *workloads.Spec) {
	prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
	if err != nil {
		l.fail("%s: %v", label, err)
		return
	}
	l.lintProgram(label, prog)
}

func (l *linter) lintFile(path string) {
	switch {
	case strings.HasSuffix(path, ".sasskrn"):
		data, err := os.ReadFile(path)
		if err != nil {
			l.fail("%v", err)
			return
		}
		k := &sass.Kernel{}
		if err := k.UnmarshalBinary(data); err != nil {
			l.fail("%s: %v", path, err)
			return
		}
		if l.uniformity {
			prog := sass.NewProgram()
			prog.AddKernel(k)
			l.dumpUniformity(path, prog)
			return
		}
		l.report(path, analysis.VerifyKernel(k))
	default: // PTX-like assembly
		src, err := os.ReadFile(path)
		if err != nil {
			l.fail("%v", err)
			return
		}
		m, err := ptx.ParseModule(string(src))
		if err != nil {
			l.fail("%s: %v", path, err)
			return
		}
		// Compile without the verify post-pass: the lint reports the
		// diagnostics itself instead of dying on the first error.
		prog, err := ptxas.Compile(m, ptxas.Options{Verify: analysis.VerifyOff})
		if err != nil {
			l.fail("%s: %v", path, err)
			return
		}
		l.lintProgram(path, prog)
	}
}

// dumpUniformity prints the lattice's per-instruction uniformity facts for
// every kernel: a summary line with the fully-uniform count, then one line
// per instruction with G/S markers. The predecoded engine keys its
// uniform-warp fast path off the same bits, so this dump is the engine's
// fast-path coverage made inspectable.
func (l *linter) dumpUniformity(file string, prog *sass.Program) {
	for _, k := range prog.Kernels {
		uni, err := analysis.KernelUniformity(k)
		if err != nil {
			l.fail("%s: %s: %v", file, k.Name, err)
			continue
		}
		full := 0
		for _, u := range uni {
			if u.Uniform() {
				full++
			}
		}
		fmt.Fprintf(l.stdout, "%s kernel %s: %d/%d instructions fully uniform\n",
			file, k.Name, full, len(k.Instrs))
		for i := range k.Instrs {
			g, s := byte('-'), byte('-')
			if uni[i].GuardUniform {
				g = 'G'
			}
			if uni[i].SrcsUniform {
				s = 'S'
			}
			fmt.Fprintf(l.stdout, "%5d %c%c  %s\n", i, g, s, k.Instrs[i].String())
		}
	}
}

func (l *linter) lintProgram(file string, prog *sass.Program) {
	if l.uniformity {
		l.dumpUniformity(file, prog)
		return
	}
	l.report(file, analysis.Verify(prog))
	if !l.instrument {
		return
	}
	// Instrument with a configuration that exercises every injection shape:
	// before-sites everywhere, after-sites on memory ops, the memory extra
	// object. Instrument's own verify post-pass diffs the result against
	// the original; recover its diagnostics for positioned output.
	err := sassi.Instrument(prog, sassi.Options{
		Where:         sassi.BeforeAll | sassi.AfterMem,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "lint_before",
		AfterHandler:  "lint_after",
		Verify:        analysis.VerifyOn,
	})
	if err == nil {
		return
	}
	var ve *analysis.VerifyError
	if errors.As(err, &ve) {
		l.report(file+" [instrumented]", ve.Diags)
		return
	}
	l.fail("%s: instrument: %v", file, err)
}
