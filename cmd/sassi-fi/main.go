// Command sassi-fi runs a Case Study IV error-injection campaign against
// one workload: profile the injection space, stochastically select sites,
// flip single bits of architectural state, and classify each run's outcome
// against a golden execution.
//
// Usage:
//
//	sassi-fi -workload rodinia.kmeans -n 1000
//	sassi-fi -workload parboil.bfs -dataset UT -n 200 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sassi/internal/faults"
	"sassi/internal/obs"
	"sassi/internal/obscli"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

func main() {
	workload := flag.String("workload", "rodinia.kmeans", "workload to inject into")
	dataset := flag.String("dataset", "", "dataset (default: workload's first)")
	n := flag.Int("n", 100, "number of injection runs (paper: 1000)")
	seed := flag.Uint64("seed", 2015, "site-selection seed")
	gpu := flag.String("gpu", "k20", "device model: k10, k20, k40, mini")
	workers := flag.Int("workers", 0, "concurrent injection runs (0 = GOMAXPROCS); results are identical at any value")
	obsFlags := obscli.Register()
	flag.Parse()

	spec, ok := workloads.Get(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	ds := *dataset
	if ds == "" {
		ds = spec.DefaultDataset()
	}
	var cfg sim.Config
	switch *gpu {
	case "k10":
		cfg = sim.KeplerK10()
	case "k20":
		cfg = sim.KeplerK20()
	case "k40":
		cfg = sim.KeplerK40()
	case "mini":
		cfg = sim.MiniGPU()
	default:
		fmt.Fprintf(os.Stderr, "unknown gpu %q\n", *gpu)
		os.Exit(2)
	}

	c := &faults.Campaign{
		Spec: spec, Dataset: ds,
		Injections: *n, Seed: *seed, Config: cfg,
		Workers: *workers,
	}
	var reg *obs.Registry
	campaignStats := func() *obs.Stats {
		s := obs.NewStats(reg)
		s.Workload = *workload
		s.Dataset = ds
		s.GPU = *gpu
		s.Tool = "errorinj"
		return s
	}
	reg, tr, samp := obsFlags.Setup(campaignStats)
	c.Metrics = reg
	c.Trace = tr
	c.PCSamp = samp
	start := time.Now()
	res, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("campaign: %s (%s), %d injections over %d candidate sites, %s\n",
		res.Workload, res.Dataset, res.Total, res.SitesTotal, time.Since(start).Round(time.Millisecond))
	for o := 0; o < faults.NumOutcomes; o++ {
		oc := faults.Outcome(o)
		fmt.Printf("  %-18s %5d (%5.1f%%)\n", oc.String()+":", res.Counts[o], 100*res.Fraction(oc))
	}
	if err := obsFlags.Finish(tr, campaignStats(), samp); err != nil {
		fmt.Fprintf(os.Stderr, "obs output: %v\n", err)
		os.Exit(1)
	}
}
