// Command sassi-difftest runs a differential-testing campaign: generate
// random kernels from a seed, execute each one uninstrumented and under
// every selected SASSI handler tool, on both the parallel and sequential
// SM engines, and compare final architectural state. Any divergence is
// minimized by the shrinker and written out as a standalone .ptx repro.
//
// Usage:
//
//	sassi-difftest -seed 1 -n 200
//	sassi-difftest -seed 7 -n 1000 -handlers branch,memdiv -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sassi/internal/difftest"
	"sassi/internal/sim"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed; run i uses splitmix64(seed, i)")
	n := flag.Int("n", 200, "number of generated kernels")
	workers := flag.Int("workers", 0, "concurrent oracle runs (0 = GOMAXPROCS); results are identical at any value")
	handlers := flag.String("handlers", "all", "comma-separated handler tools to check (all: "+strings.Join(difftest.ToolNames(), ",")+")")
	gpu := flag.String("gpu", "mini", "device model: k10, k20, k40, mini")
	outDir := flag.String("out", ".", "directory for minimized .ptx repros of failures")
	noShrink := flag.Bool("no-shrink", false, "report raw failing kernels without minimizing")
	flag.Parse()

	tools, err := difftest.SelectTools(*handlers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cfg sim.Config
	switch *gpu {
	case "k10":
		cfg = sim.KeplerK10()
	case "k20":
		cfg = sim.KeplerK20()
	case "k40":
		cfg = sim.KeplerK40()
	case "mini":
		cfg = sim.MiniGPU()
	default:
		fmt.Fprintf(os.Stderr, "unknown gpu %q\n", *gpu)
		os.Exit(2)
	}

	c := &difftest.Campaign{
		Seed: *seed, Runs: *n, Workers: *workers,
		Size: difftest.DefaultSize(), Tools: tools, Cfg: cfg,
		Log: os.Stderr, Shrink: !*noShrink,
	}
	start := time.Now()
	res, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	hitRate := 0.0
	if res.CacheHits+res.CacheMisses > 0 {
		hitRate = 100 * float64(res.CacheHits) / float64(res.CacheHits+res.CacheMisses)
	}
	fmt.Printf("difftest: %d kernels, %d launches, %d tool(s), %s (compile cache: %d hits / %d misses, %.0f%%)\n",
		res.Runs, res.Launches, len(tools), time.Since(start).Round(time.Millisecond),
		res.CacheHits, res.CacheMisses, hitRate)

	for _, e := range res.Errors {
		fmt.Fprintf(os.Stderr, "harness error: %v\n", e)
	}
	for i := range res.Failures {
		cf := &res.Failures[i]
		name := fmt.Sprintf("difftest-fail-seed%#x.ptx", cf.Seed)
		path := filepath.Join(*outDir, name)
		if err := difftest.WriteRepro(path, cf.Prog, cf.Note()); err != nil {
			fmt.Fprintf(os.Stderr, "write repro: %v\n", err)
		} else {
			fmt.Printf("  repro: %s\n", path)
		}
		for _, f := range cf.Failures {
			fmt.Printf("  %s\n", f)
		}
	}
	if len(res.Failures) > 0 || len(res.Errors) > 0 {
		fmt.Printf("FAIL: %d diverging kernel(s), %d harness error(s)\n",
			len(res.Failures), len(res.Errors))
		os.Exit(1)
	}
	fmt.Println("PASS: all kernels bit-identical across engines and instrumentation")
}
