package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/obs"
	"sassi/internal/ptxas"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// statsRun performs the in-process equivalent of
//
//	sassi -workload demo.vecadd -tool branch -gpu mini -stats-json -
//
// and returns the serialized stats bytes.
func statsRun(t *testing.T) []byte {
	t.Helper()
	spec, ok := workloads.Get("demo.vecadd")
	if !ok {
		t.Fatal("demo.vecadd not registered")
	}
	reg := obs.NewRegistry()
	ctx := cuda.NewContext(sim.MiniGPU())
	ctx.Device().Metrics = reg

	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p := handlers.NewBranchProfiler(ctx)
	opts := p.Options()
	opts.Metrics = reg
	if err := sassi.Instrument(prog, opts); err != nil {
		t.Fatalf("instrument: %v", err)
	}
	rt := sassi.NewRuntime(prog)
	rt.Metrics = reg
	rt.MustRegister(p.SequentialHandler())
	rt.Attach(ctx.Device())

	res, err := spec.Run(ctx, prog, spec.DefaultDataset())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.VerifyErr != nil {
		t.Fatalf("verification: %v", res.VerifyErr)
	}
	s := runStats(reg, ctx, "demo.vecadd", spec.DefaultDataset(), "mini", "branch", true)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("write stats: %v", err)
	}
	return buf.Bytes()
}

// TestStatsJSONGolden pins the -stats-json byte format — field order, sorted
// metric keys, and the metric values of a fixed deterministic run — against
// testdata/stats_golden.json. Regenerate with `go test ./cmd/sassi -update`
// after an intentional schema change (and bump obs.StatsSchema).
func TestStatsJSONGolden(t *testing.T) {
	got := statsRun(t)
	golden := filepath.Join("testdata", "stats_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stats JSON differs from golden file\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestStatsJSONDeterministic asserts two identical runs serialize to
// identical bytes — the property the golden file depends on.
func TestStatsJSONDeterministic(t *testing.T) {
	a := statsRun(t)
	b := statsRun(t)
	if !bytes.Equal(a, b) {
		t.Errorf("two identical runs produced different stats bytes\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestStatsJSONShape decodes the golden run output and checks the invariants
// scripts rely on: schema tag, top-level key order, and presence of the core
// metric families.
func TestStatsJSONShape(t *testing.T) {
	raw := statsRun(t)
	var s obs.Stats
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s.Schema != obs.StatsSchema {
		t.Errorf("schema = %q, want %q", s.Schema, obs.StatsSchema)
	}
	if !s.Verified || s.Launches == 0 || s.WarpInstrs == 0 || s.HandlerCalls == 0 {
		t.Errorf("core counters missing: %+v", s)
	}
	for _, name := range []string{
		obs.MSimWarpInstrs,
		obs.MSimWarpInstrs + ".sm0",
		obs.MSassiSites,
		obs.MSassiInjectedInstrs,
		obs.MSassiSaveRestoreInstrs,
		obs.MHandlerDispatchPrefix + "sassi_branch_handler",
	} {
		if _, ok := s.Metrics[name]; !ok {
			t.Errorf("metrics missing %q", name)
		}
	}
	// Raw key order must be sorted: decode into a raw message keyed walk.
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["metrics"]; !ok {
		t.Error("missing metrics object")
	}
}
