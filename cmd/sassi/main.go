// Command sassi compiles a benchmark from the built-in suite, optionally
// instruments it with one of the case-study tools, runs it on the
// simulated GPU, and reports statistics — the workflow of the paper's
// Figure 1, driven from the command line like the real ptxas integration.
//
// Usage:
//
//	sassi -list
//	sassi -workload parboil.bfs -dataset NY -tool branch
//	sassi -workload demo.vecadd -disas
//	sassi -workload minife.csr -tool memdiv -gpu k40
//
// Kernels can also come from a PTX-like assembly file instead of the
// built-in suite; pointer parameters get zero-filled device buffers and
// scalar parameters come from -args:
//
//	sassi -ptx kernel.sptx -disas
//	sassi -ptx kernel.sptx -tool opcount -args 256
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/obs"
	"sassi/internal/obscli"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list available workloads and exit")
	workload := flag.String("workload", "demo.vecadd", "workload to run")
	dataset := flag.String("dataset", "", "dataset (default: workload's first)")
	tool := flag.String("tool", "none", "instrumentation: none, opcount, branch, memdiv, valueprof")
	gpu := flag.String("gpu", "k10", "device model: k10, k20, k40, mini")
	engine := flag.String("engine", "concurrent", "execution engine: concurrent, sequential, predecoded (all bit-equal; predecoded is fastest)")
	disas := flag.Bool("disas", false, "print the compiled (and instrumented) SASS")
	faithful := flag.Bool("faithful-handlers", false, "use the collective handlers")
	ptxFile := flag.String("ptx", "", "compile kernels from a PTX-like assembly file instead of a workload")
	args := flag.String("args", "", "comma list of scalar kernel arguments for -ptx kernels")
	grid := flag.Int("grid", 1, "grid size (CTAs) for -ptx kernels")
	block := flag.Int("block", 128, "block size (threads) for -ptx kernels")
	bufWords := flag.Int("bufwords", 1024, "words allocated per pointer parameter for -ptx kernels")
	obsFlags := obscli.Register()
	flag.Parse()

	if *list {
		for _, name := range workloads.Names() {
			s, _ := workloads.Get(name)
			fmt.Printf("%-24s datasets: %v\n", name, s.Datasets)
		}
		return
	}
	var spec *workloads.Spec
	var ds string
	if *ptxFile == "" {
		var ok bool
		spec, ok = workloads.Get(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *workload)
			os.Exit(2)
		}
		ds = *dataset
		if ds == "" {
			ds = spec.DefaultDataset()
		}
		if !spec.HasDataset(ds) {
			fmt.Fprintf(os.Stderr, "workload %s has no dataset %q (have %v)\n", *workload, ds, spec.Datasets)
			os.Exit(2)
		}
	} else {
		spec = ptxFileSpec(*ptxFile, *args, *grid, *block, *bufWords)
		ds = spec.DefaultDataset()
	}
	var cfg sim.Config
	switch *gpu {
	case "k10":
		cfg = sim.KeplerK10()
	case "k20":
		cfg = sim.KeplerK20()
	case "k40":
		cfg = sim.KeplerK40()
	case "mini":
		cfg = sim.MiniGPU()
	default:
		fmt.Fprintf(os.Stderr, "unknown gpu %q\n", *gpu)
		os.Exit(2)
	}
	eng, engErr := sim.ParseEngine(*engine)
	if engErr != nil {
		fmt.Fprintln(os.Stderr, engErr)
		os.Exit(2)
	}
	cfg.Engine = eng

	ctx := cuda.NewContext(cfg)
	var reg *obs.Registry
	verified := false
	reg, tr, samp := obsFlags.Setup(func() *obs.Stats {
		return runStats(reg, ctx, *workload, ds, *gpu, *tool, verified)
	})
	ctx.Device().Metrics = reg
	ctx.Device().Trace = tr
	ctx.Device().PCSamp = samp

	var prog *sass.Program
	var err error
	tr.HostSpan(obs.TidHostCompile, "compile:"+spec.Name, func() {
		prog, err = spec.Compile(ptxas.Options{})
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Wire up the selected tool.
	var report func()
	switch *tool {
	case "none":
	case "opcount":
		p := handlers.NewOpCounter(ctx)
		mustInstrument(prog, p.Options(), reg, tr)
		registerHandler(prog, ctx, p.Handler(!*faithful), reg)
		report = func() {
			t := p.Totals()
			fmt.Printf("opcount: mem=%d wide=%d ctrl=%d sync=%d numeric=%d texture=%d total=%d\n",
				t[handlers.OcMem], t[handlers.OcMemWide], t[handlers.OcControl],
				t[handlers.OcSync], t[handlers.OcNumeric], t[handlers.OcTexture], t[handlers.OcTotal])
		}
	case "branch":
		p := handlers.NewBranchProfiler(ctx)
		mustInstrument(prog, p.Options(), reg, tr)
		registerHandler(prog, ctx, pick(p.Handler(), p.SequentialHandler(), *faithful), reg)
		report = func() {
			rows, err := p.Results()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			s, _ := p.Summarize()
			fmt.Printf("branches: static=%d divergent=%d (%.1f%%); dynamic=%d divergent=%d (%.1f%%)\n",
				s.StaticBranches, s.StaticDivergent, s.StaticDivergentPc,
				s.DynamicBranches, s.DynamicDivergent, s.DynDivergentPc)
			for _, r := range rows {
				fmt.Printf("  branch 0x%08x: executed=%d active=%d taken=%d fall=%d divergent=%d\n",
					uint32(r.InsAddr), r.Total, r.Active, r.Taken, r.NotTaken, r.Divergent)
			}
		}
	case "memdiv":
		p := handlers.NewMemDivProfiler(ctx)
		mustInstrument(prog, p.Options(), reg, tr)
		registerHandler(prog, ctx, pick(p.Handler(), p.SequentialHandler(), *faithful), reg)
		report = func() {
			m, err := p.Matrix()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			pmf := m.UniqueLinePMF()
			fmt.Printf("memory divergence over %d warp accesses (32B lines):\n", m.TotalAccesses())
			for u, f := range pmf {
				if f > 0.005 {
					fmt.Printf("  %2d unique lines: %5.1f%%\n", u+1, 100*f)
				}
			}
		}
	case "valueprof":
		p := handlers.NewValueProfiler(ctx)
		mustInstrument(prog, p.Options(), reg, tr)
		registerHandler(prog, ctx, pick(p.Handler(), p.SequentialHandler(), *faithful), reg)
		report = func() {
			s, err := p.Summarize()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Printf("value profile: dynamic const bits %.0f%%, scalar %.0f%%; static const bits %.0f%%, scalar %.0f%%\n",
				s.DynConstBitsPc, s.DynScalarPc, s.StatConstBitsPc, s.StatScalarPc)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown tool %q\n", *tool)
		os.Exit(2)
	}

	if *disas {
		for _, k := range prog.Kernels {
			fmt.Println(k.Disassemble())
		}
	}

	start := time.Now()
	var res *workloads.Result
	tr.HostSpan(obs.TidHostMain, "run:"+spec.Name, func() {
		res, err = spec.Run(ctx, prog, ds)
	})
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Stdout)
	if res.VerifyErr != nil {
		fmt.Printf("VERIFICATION FAILED: %v\n", res.VerifyErr)
	} else {
		verified = true
		fmt.Println("verification: PASSED")
	}
	fmt.Printf("launches=%d kernel-cycles=%d warp-instrs=%d handler-calls=%d wall=%s\n",
		ctx.Launches(), ctx.TotalKernelCycles, ctx.TotalWarpInstrs, ctx.TotalHandlerCalls,
		wall.Round(time.Millisecond))
	if report != nil {
		report()
	}
	if err := obsFlags.Finish(tr, runStats(reg, ctx, *workload, ds, *gpu, *tool, verified), samp); err != nil {
		fmt.Fprintf(os.Stderr, "obs output: %v\n", err)
		os.Exit(1)
	}
}

// runStats assembles the -stats-json / HTTP stats object from the live
// context and registry.
func runStats(reg *obs.Registry, ctx *cuda.Context, workload, dataset, gpu, tool string, verified bool) *obs.Stats {
	s := obs.NewStats(reg)
	s.Workload = workload
	s.Dataset = dataset
	s.GPU = gpu
	s.Tool = tool
	s.Launches = ctx.Launches()
	s.KernelCycles = ctx.TotalKernelCycles
	s.WarpInstrs = ctx.TotalWarpInstrs
	s.HandlerCalls = ctx.TotalHandlerCalls
	s.ScoreboardStalls = ctx.TotalScoreboardStalls
	s.Verified = verified
	return s
}

func mustInstrument(prog *sass.Program, opts sassi.Options, reg *obs.Registry, tr *obs.Tracer) {
	opts.Metrics = reg
	opts.Trace = tr
	if err := sassi.Instrument(prog, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func registerHandler(prog *sass.Program, ctx *cuda.Context, h *sassi.Handler, reg *obs.Registry) {
	rt := sassi.NewRuntime(prog)
	rt.Metrics = reg
	rt.MustRegister(h)
	rt.Attach(ctx.Device())
}

func pick(parallel, sequential *sassi.Handler, faithful bool) *sassi.Handler {
	if faithful {
		return parallel
	}
	return sequential
}

// ptxFileSpec wraps a PTX-like assembly file as an ad-hoc workload: pointer
// parameters get zero-filled device buffers of bufWords words each, scalar
// parameters take values from the comma-separated args list, and the first
// pointer buffer is dumped as the result.
func ptxFileSpec(path, argList string, grid, block, bufWords int) *workloads.Spec {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var scalars []uint64
	if argList != "" {
		for _, tok := range strings.Split(argList, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(tok), 0, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -args entry %q: %v\n", tok, err)
				os.Exit(2)
			}
			scalars = append(scalars, v)
		}
	}
	return &workloads.Spec{
		Name:     path,
		Datasets: []string{"file"},
		Build: func() (*ptx.Module, error) {
			return ptx.ParseModule(string(src))
		},
		Run: func(ctx *cuda.Context, prog *sass.Program, dataset string) (*workloads.Result, error) {
			res := &workloads.Result{}
			for _, k := range prog.Kernels {
				var launchArgs []uint64
				var firstBuf cuda.DevPtr
				var firstBufSize int
				si := 0
				for _, p := range k.Params {
					if p.Size == 8 {
						buf := ctx.Malloc(uint64(4*bufWords), p.Name)
						if firstBuf == 0 {
							firstBuf, firstBufSize = buf, 4*bufWords
						}
						launchArgs = append(launchArgs, uint64(buf))
						continue
					}
					v := uint64(0)
					if si < len(scalars) {
						v = scalars[si]
						si++
					}
					launchArgs = append(launchArgs, v)
				}
				if _, err := ctx.LaunchKernel(prog, k.Name, sim.LaunchParams{
					Grid: sim.D1(grid), Block: sim.D1(block), Args: launchArgs,
				}); err != nil {
					return nil, err
				}
				if firstBuf != 0 {
					out := make([]byte, firstBufSize)
					if err := ctx.MemcpyDtoH(out, firstBuf); err != nil {
						return nil, err
					}
					res.Output = append(res.Output, out...)
					res.Stdout += fmt.Sprintf("%s: first buffer (%d words):", k.Name, min(8, bufWords))
					vals, _ := ctx.ReadU32(firstBuf, min(8, bufWords))
					for _, v := range vals {
						res.Stdout += fmt.Sprintf(" %#x", v)
					}
					res.Stdout += "\n"
				}
			}
			return res, nil
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
