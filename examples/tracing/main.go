// §9.4 extension: collect a low-level memory trace from an execution and
// use it to drive a separate memory-hierarchy simulator — here, replaying
// the same trace through caches of different sizes to find the footprint
// knee, entirely offline from the original run.
//
//	go run ./examples/tracing
package main

import (
	"bytes"
	"fmt"
	"log"

	"sassi"
)

func main() {
	spec, ok := sassi.GetWorkload("parboil.spmv")
	if !ok {
		log.Fatal("workload not registered")
	}
	prog, err := spec.Compile(sassi.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := sassi.NewContext(sassi.KeplerK10())

	// Attach the tracer to the device's coalescer watch point and run.
	tracer := &sassi.MemTracer{}
	tracer.Attach(ctx.Device())
	res, err := spec.Run(ctx, prog, "medium")
	if err != nil {
		log.Fatal(err)
	}
	if res.VerifyErr != nil {
		log.Fatal(res.VerifyErr)
	}
	fmt.Printf("captured %d warp-level memory transactions from spmv\n", len(tracer.Events))

	// Serialize and re-load the trace (the file-based handoff to another
	// tool), then drive a standalone cache simulator at several sizes.
	var buf bytes.Buffer
	if err := tracer.Write(&buf); err != nil {
		log.Fatal(err)
	}
	reloaded, err := sassi.ReadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replaying the trace through a standalone cache simulator:")
	for _, kb := range []uint64{16, 64, 256, 1024} {
		r := sassi.ReplayCache(reloaded, kb<<10, 128, 8)
		fmt.Printf("  %5d KiB cache: %6.2f%% hit rate (%d accesses)\n",
			kb, 100*r.HitRate(), r.Accesses)
	}
}
