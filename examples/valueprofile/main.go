// Case Study III (paper §7): value profiling. SASSI instruments after
// every register-writing instruction; the handler tracks which bits of
// each produced value are constant over the whole run and which
// instructions are scalar (warp-invariant) — insight for register-file
// compression and scalarization studies.
//
//	go run ./examples/valueprofile
package main

import (
	"fmt"
	"log"

	"sassi"
)

func main() {
	for _, workload := range []string{"parboil.sgemm", "rodinia.b+tree", "parboil.bfs"} {
		spec, ok := sassi.GetWorkload(workload)
		if !ok {
			log.Fatalf("%s not registered", workload)
		}
		prog, err := spec.Compile(sassi.CompileOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ctx := sassi.NewContext(sassi.KeplerK10())
		prof := sassi.NewValueProfiler(ctx)
		if err := sassi.Instrument(prog, prof.Options()); err != nil {
			log.Fatal(err)
		}
		rt := sassi.NewRuntime(prog)
		rt.MustRegister(prof.Handler())
		rt.Attach(ctx.Device())

		res, err := spec.Run(ctx, prog, spec.DefaultDataset())
		if err != nil {
			log.Fatal(err)
		}
		if res.VerifyErr != nil {
			log.Fatalf("%s failed verification: %v", workload, res.VerifyErr)
		}
		s, err := prof.Summarize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s dynamic: %2.0f%% const bits, %2.0f%% scalar | static: %2.0f%% const bits, %2.0f%% scalar\n",
			workload, s.DynConstBitsPc, s.DynScalarPc, s.StatConstBitsPc, s.StatScalarPc)

		// Per-instruction detail for the most-executed instruction, in the
		// paper's TLD/R12/R13 output style.
		rows, err := prof.Results()
		if err != nil {
			log.Fatal(err)
		}
		hot := -1
		for i, r := range rows {
			// Predicate-only writers (ISETP) carry no GPR profile; pick
			// the hottest instruction that produced register values.
			if len(r.Dsts) > 0 && (hot < 0 || r.Weight > rows[hot].Weight) {
				hot = i
			}
		}
		if hot >= 0 {
			r := rows[hot]
			fmt.Printf("  hottest write @0x%08x (executed %d):\n", uint32(r.InsAddr), r.Weight)
			for _, d := range r.Dsts {
				mask := ""
				for bit := 31; bit >= 0; bit-- {
					switch {
					case d.ConstantOnes&(1<<bit) != 0:
						mask += "1"
					case d.ConstantZero&(1<<bit) != 0:
						mask += "0"
					default:
						mask += "T"
					}
				}
				star := " "
				if d.IsScalar {
					star = "*"
				}
				fmt.Printf("    R%d%s <- [%s]\n", d.RegNum, star, mask)
			}
		}
	}
}
