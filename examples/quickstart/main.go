// Quickstart: author a kernel, instrument it before every instruction with
// the paper's Figure 3 categorizing handler, run it on the simulated GPU,
// and read back the device-resident counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"sassi"
)

func main() {
	// 1. Author a kernel against the PTX builder (the front-end analog):
	//    out[i] = a[i] + b[i] for i < n.
	b := sassi.NewKernel("vecadd")
	aPtr := b.ParamU64("a")
	bPtr := b.ParamU64("b")
	outPtr := b.ParamU64("out")
	n := b.ParamU32("n")
	i := b.GlobalTidX()
	b.If(b.Setp(sassi.CmpLT, i, n), func() {
		av := b.LdGlobalF32(b.Index(aPtr, i, 2), 0)
		bv := b.LdGlobalF32(b.Index(bPtr, i, 2), 0)
		b.StGlobalF32(b.Index(outPtr, i, 2), 0, b.Add(av, bv))
	})

	// 2. Compile to SASS (backend + register allocation), then let SASSI
	//    inject a call before every machine instruction.
	prog, err := sassi.CompileModule(b)
	if err != nil {
		log.Fatal(err)
	}
	if err := sassi.Instrument(prog, sassi.InstrumentOptions{
		Where:         sassi.BeforeAll,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "sassi_before_handler",
	}); err != nil {
		log.Fatal(err)
	}

	// 3. Set up the device, device-resident counters, and the handler —
	//    a direct translation of the paper's Figure 3.
	ctx := sassi.NewContext(sassi.KeplerK10())
	counters := ctx.Malloc(7*8, "dynamic_instr_counts")

	rt := sassi.NewRuntime(prog)
	rt.MustRegister(&sassi.Handler{
		Name: "sassi_before_handler",
		What: sassi.PassMemoryInfo,
		Fn: func(c *sassi.ThreadCtx, args sassi.HandlerArgs) {
			bp := args.BP
			if bp.IsMem() {
				c.AtomicAdd64(uint64(counters)+0*8, 1)
				if args.MP != nil && args.MP.Width() > 4 {
					c.AtomicAdd64(uint64(counters)+1*8, 1)
				}
			}
			if bp.IsControlXfer() {
				c.AtomicAdd64(uint64(counters)+2*8, 1)
			}
			if bp.IsSync() {
				c.AtomicAdd64(uint64(counters)+3*8, 1)
			}
			if bp.IsNumeric() {
				c.AtomicAdd64(uint64(counters)+4*8, 1)
			}
			if bp.IsTexture() {
				c.AtomicAdd64(uint64(counters)+5*8, 1)
			}
			c.AtomicAdd64(uint64(counters)+6*8, 1)
		},
	})
	rt.Attach(ctx.Device())

	// 4. Host code: allocate, upload, launch, download — CUDA style.
	const N = 1 << 12
	host := make([]float32, N)
	for i := range host {
		host[i] = float32(i)
	}
	da := ctx.AllocF32("a", host)
	db := ctx.AllocF32("b", host)
	dout := ctx.Malloc(4*N, "out")
	stats, err := ctx.LaunchKernel(prog, "vecadd", sassi.LaunchParams{
		Grid: sassi.D1((N + 255) / 256), Block: sassi.D1(256),
		Args: []uint64{uint64(da), uint64(db), uint64(dout), N},
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := ctx.ReadF32(dout, N)
	if err != nil {
		log.Fatal(err)
	}
	for i := range out {
		if math.Abs(float64(out[i]-2*host[i])) > 1e-6 {
			log.Fatalf("out[%d] = %f, want %f", i, out[i], 2*host[i])
		}
	}

	// 5. Collect the counters (CUPTI-style).
	vals, err := ctx.ReadU64(counters, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("vecadd verified on the simulated GPU")
	fmt.Printf("dynamic instruction profile (N=%d threads):\n", N)
	names := []string{"memory", "wide memory", "control xfer", "sync", "numeric", "texture", "total"}
	for i, v := range vals {
		fmt.Printf("  %-14s %8d\n", names[i], v)
	}
	fmt.Printf("kernel stats: warp instrs=%d (injected %d), handler calls=%d, modeled cycles=%d\n",
		stats.WarpInstrs, stats.InjectedWarpInstrs, stats.HandlerCalls, stats.Cycles)
}
