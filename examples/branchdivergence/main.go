// Case Study I (paper §5): per-branch SIMT control-flow profiling of a BFS
// kernel across graph datasets, using the paper-faithful collective handler
// (ballot/popc/ffs across the warp).
//
//	go run ./examples/branchdivergence
package main

import (
	"fmt"
	"log"

	"sassi"
)

func main() {
	spec, ok := sassi.GetWorkload("parboil.bfs")
	if !ok {
		log.Fatal("parboil.bfs not registered")
	}
	for _, dataset := range []string{"1M", "NY", "SF", "UT"} {
		prog, err := spec.Compile(sassi.CompileOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ctx := sassi.NewContext(sassi.KeplerK10())

		// Wire the Figure 4 handler: SASSI inserts a call before every
		// conditional branch, passing branch-direction info.
		prof := sassi.NewBranchProfiler(ctx)
		if err := sassi.Instrument(prog, prof.Options()); err != nil {
			log.Fatal(err)
		}
		rt := sassi.NewRuntime(prog)
		rt.MustRegister(prof.Handler())
		rt.Attach(ctx.Device())

		res, err := spec.Run(ctx, prog, dataset)
		if err != nil {
			log.Fatal(err)
		}
		if res.VerifyErr != nil {
			log.Fatalf("%s: instrumented run failed verification: %v", dataset, res.VerifyErr)
		}
		s, err := prof.Summarize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bfs(%-2s): static branches=%d divergent=%d (%.0f%%) | dynamic=%d divergent=%d (%.1f%%)\n",
			dataset, s.StaticBranches, s.StaticDivergent, s.StaticDivergentPc,
			s.DynamicBranches, s.DynamicDivergent, s.DynDivergentPc)
		rows, err := prof.Results()
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("    branch 0x%08x: executed %6d, divergent %6d\n",
				uint32(r.InsAddr), r.Total, r.Divergent)
		}
	}
}
