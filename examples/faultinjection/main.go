// Case Study IV (paper §8): transient-error injection. The campaign
// profiles the injection space with one SASSI handler, randomly selects
// (kernel, invocation, thread, instruction) tuples, flips one bit of
// architectural state per run, and classifies the outcomes.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"sassi"
)

func main() {
	spec, ok := sassi.GetWorkload("rodinia.kmeans")
	if !ok {
		log.Fatal("workload not registered")
	}
	c := &sassi.Campaign{
		Spec:       spec,
		Dataset:    spec.DefaultDataset(),
		Injections: 50, // the paper uses 1000 per application
		Seed:       2015,
		Config:     sassi.KeplerK20(), // the paper's error study ran on a K20
	}
	res, err := c.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %d single-bit errors into %s (site space: %d dynamic instructions)\n",
		res.Total, res.Workload, res.SitesTotal)
	for _, o := range []sassi.Outcome{
		sassi.Masked, sassi.Crash, sassi.Hang,
		sassi.FailureSymptom, sassi.StdoutOnlyDiff, sassi.OutputDiff,
	} {
		bar := ""
		for i := 0; i < int(res.Fraction(o)*50+0.5); i++ {
			bar += "#"
		}
		fmt.Printf("  %-18s %5.1f%% %s\n", o, 100*res.Fraction(o), bar)
	}
	fmt.Println("\nMasked injections dominate, crashes and hangs are a minority, and a")
	fmt.Println("small fraction silently corrupts output — the paper's Figure 10 shape.")
}
