// Case Study II (paper §6): memory address divergence of the same sparse
// solve in CSR versus ELL format — the paper's Figure 7/8 comparison. The
// handler (Figure 6) peels unique cache lines off the warp's addresses
// with iterative leader election.
//
//	go run ./examples/memdivergence
package main

import (
	"fmt"
	"log"

	"sassi"
)

func profile(workload string) {
	spec, ok := sassi.GetWorkload(workload)
	if !ok {
		log.Fatalf("%s not registered", workload)
	}
	prog, err := spec.Compile(sassi.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := sassi.NewContext(sassi.KeplerK10())
	prof := sassi.NewMemDivProfiler(ctx)
	if err := sassi.Instrument(prog, prof.Options()); err != nil {
		log.Fatal(err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(prof.Handler())
	rt.Attach(ctx.Device())

	res, err := spec.Run(ctx, prog, spec.DefaultDataset())
	if err != nil {
		log.Fatal(err)
	}
	if res.VerifyErr != nil {
		log.Fatalf("%s failed verification: %v", workload, res.VerifyErr)
	}
	m, err := prof.Matrix()
	if err != nil {
		log.Fatal(err)
	}
	pmf := m.UniqueLinePMF()
	mean := 0.0
	for u, f := range pmf {
		mean += float64(u+1) * f
	}
	fmt.Printf("%s: %d warp-level global accesses, mean %.2f unique 32B lines per access\n",
		workload, m.TotalAccesses(), mean)
	fmt.Printf("  unique-line distribution (thread-weighted):\n")
	for u, f := range pmf {
		if f >= 0.01 {
			bar := ""
			for i := 0; i < int(f*60+0.5); i++ {
				bar += "#"
			}
			fmt.Printf("  %2d | %-60s %4.1f%%\n", u+1, bar, 100*f)
		}
	}
}

func main() {
	profile("minife.csr")
	profile("minife.ell")
	fmt.Println("\nThe ELL layout turns the CSR gather into near-contiguous warp accesses —")
	fmt.Println("the optimization the paper's miniFE comparison motivates.")
}
