// §9.4 extension: heterogeneous (CPU+GPU) instrumentation. A SASSI handler
// traces the addresses the GPU touches while the host runtime traces CPU
// accesses; a host-side correlator derives Unified-Virtual-Memory page
// migration and sharing behavior — the prototype the paper describes.
//
//	go run ./examples/uvmtracing
package main

import (
	"fmt"
	"log"

	"sassi"
)

func main() {
	// Kernel: data[i] = data[i] * 2 + 1.
	b := sassi.NewKernel("update")
	data := b.ParamU64("data")
	n := b.ParamU32("n")
	i := b.GlobalTidX()
	b.If(b.Setp(sassi.CmpLT, i, n), func() {
		v := b.LdGlobalU32(b.Index(data, i, 2), 0)
		b.StGlobalU32(b.Index(data, i, 2), 0, b.AddI(b.MulI(v, 2), 1))
	})
	prog, err := sassi.CompileModule(b)
	if err != nil {
		log.Fatal(err)
	}

	ctx := sassi.NewContext(sassi.KeplerK10())
	mgr := sassi.NewUVMManager(ctx)
	if err := sassi.Instrument(prog, mgr.Options()); err != nil {
		log.Fatal(err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(mgr.Handler())
	rt.Attach(ctx.Device())

	const N = 4096
	buf := mgr.AllocManaged(4*N, "data")

	// Phase 1: CPU initializes (pages CPU-resident).
	host := make([]uint32, N)
	for i := range host {
		host[i] = uint32(i)
	}
	if err := mgr.HostWriteU32(buf, host); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after CPU init:     ", mgr.Report())

	// Phase 2: GPU kernel (pages migrate host->device on first touch).
	launch := sassi.LaunchParams{
		Grid: sassi.D1((N + 255) / 256), Block: sassi.D1(256),
		Args: []uint64{uint64(buf), N},
	}
	if _, err := ctx.LaunchKernel(prog, "update", launch); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after GPU kernel:   ", mgr.Report())

	// Phase 3: CPU validates a slice (those pages migrate back)...
	head, err := mgr.HostReadU32(buf, 64)
	if err != nil {
		log.Fatal(err)
	}
	if head[3] != 2*3+1 {
		log.Fatalf("unexpected value %d", head[3])
	}
	fmt.Println("after CPU readback: ", mgr.Report())

	// Phase 4: ...and the GPU runs again — the shared pages ping-pong.
	if _, err := ctx.LaunchKernel(prog, "update", launch); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after second kernel:", mgr.Report())

	fmt.Printf("\nunified trace holds %d events; first GPU event: %+v\n",
		len(mgr.Events), firstGPU(mgr))
	fmt.Println("ping-ponging pages are the tuning signal this tool surfaces:")
	for _, p := range mgr.SharedPages() {
		fmt.Printf("  shared page 0x%x\n", p)
	}
}

func firstGPU(m *sassi.UVMManager) sassi.UVMEvent {
	for _, e := range m.Events {
		if e.Who == sassi.UVMGPU {
			return e
		}
	}
	return sassi.UVMEvent{}
}
