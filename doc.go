// Package sassi is a Go reproduction of "Flexible Software Profiling of
// GPU Architectures" (ISCA 2015): the SASSI selective instrumentation
// framework, rebuilt on a self-contained GPU stack.
//
// The package is a facade over the full system:
//
//   - a PTX-like virtual ISA and kernel-authoring Builder (internal/ptx),
//   - a backend compiler with liveness-driven register allocation
//     (internal/ptxas),
//   - a SASS-like machine ISA (internal/sass),
//   - a SIMT functional + cycle-approximate simulator with a coalescing
//     memory hierarchy (internal/sim, internal/mem),
//   - the SASSI instrumentor itself: a final compiler pass that injects
//     ABI-compliant calls to user handlers before/after selected machine
//     instructions (internal/sassi),
//   - a device-side handler runtime with warp collectives
//     (internal/device), CUDA-like host runtime (internal/cuda), and a
//     CUPTI-like callback layer (internal/cupti),
//   - the paper's case-study handler library (internal/handlers), fault
//     injection campaigns (internal/faults), a Parboil/Rodinia/miniFE-like
//     workload suite (internal/workloads), and the evaluation harness that
//     regenerates every table and figure (internal/experiments).
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	b := sassi.NewKernel("vecadd")
//	... author the kernel with the builder ...
//	prog, _ := sassi.CompileModule(b)
//	_ = sassi.Instrument(prog, sassi.InstrumentOptions{
//	    Where:         sassi.BeforeAll,
//	    BeforeHandler: "my_handler",
//	})
//	ctx := sassi.NewContext(sassi.KeplerK10())
//	rt := sassi.NewRuntime(prog)
//	rt.MustRegister(&sassi.Handler{Name: "my_handler", Fn: func(c *sassi.ThreadCtx, a sassi.HandlerArgs) {
//	    ...
//	}})
//	rt.Attach(ctx.Device())
//	ctx.LaunchKernel(prog, "vecadd", sassi.LaunchParams{...})
package sassi
