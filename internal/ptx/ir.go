// Package ptx defines a virtual-ISA intermediate representation modeled on
// NVIDIA's PTX: typed virtual registers, an unbounded register file, and
// explicit memory spaces. Kernels are authored against the Builder API (the
// front-end-compiler analog) and lowered to SASS by internal/ptxas (the
// backend-compiler analog). SASSI runs after that lowering, exactly as the
// paper places it: the final pass of the backend, after all optimization.
package ptx

import (
	"fmt"

	"sassi/internal/sass"
)

// Type is a PTX value type.
type Type uint8

// Value types.
const (
	TInvalid Type = iota
	TU32          // .u32
	TS32          // .s32
	TF32          // .f32
	TU64          // .u64 (pointers)
	TPred         // .pred
)

var typeNames = [...]string{"invalid", "u32", "s32", "f32", "u64", "pred"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Size returns the type's size in bytes.
func (t Type) Size() int {
	switch t {
	case TU64:
		return 8
	case TPred:
		return 0
	default:
		return 4
	}
}

// Value identifies a virtual register. The zero Value means "none".
type Value struct{ id int32 }

// Valid reports whether the value refers to a register.
func (v Value) Valid() bool { return v.id != 0 }

// ID returns the value's dense identifier (used by the register allocator).
func (v Value) ID() int32 { return v.id }

func (v Value) String() string {
	if !v.Valid() {
		return "_"
	}
	return fmt.Sprintf("%%v%d", v.id)
}

// Op is a PTX-level operation.
type Op uint8

// Operations.
const (
	OpNop     Op = iota
	OpMov        // dst = a (or Imm if a invalid)
	OpAdd        // dst = a + b
	OpSub        // dst = a - b
	OpMul        // dst = a * b (low 32 for ints)
	OpMad        // dst = a*b + c
	OpMin        // dst = min(a,b)
	OpMax        // dst = max(a,b)
	OpAnd        // dst = a & b
	OpOr         // dst = a | b
	OpXor        // dst = a ^ b
	OpNot        // dst = ^a
	OpShl        // dst = a << b
	OpShr        // dst = a >> b (type: arithmetic for S32)
	OpSetp       // dst(pred) = a cmp b
	OpPAnd       // dst(pred) = a && b
	OpPOr        // dst(pred) = a || b
	OpPNot       // dst(pred) = !a
	OpSel        // dst = c(pred) ? a : b
	OpCvt        // dst = convert(a) from SrcType to Type
	OpFma        // dst = a*b + c (float)
	OpMufu       // dst = special-function(a)
	OpSreg       // dst = special register
	OpLdParam    // dst = kernel parameter (Param name)
	OpLd         // dst = [a + Imm] in Space, Width bytes
	OpSt         // [a + Imm] = b in Space, Width bytes
	OpAtom       // dst(optional) = atomic(Atom) at [a + Imm] with b (and c for CAS)
	OpBar        // CTA barrier
	OpVote       // dst = ballot(a) / all / any per VoteMode
	OpShfl       // dst = shuffle of a from lane b
	OpBra        // branch to Label (guard makes it conditional)
	OpLabel      // label definition (no code)
	OpSSY        // push reconvergence point Label
	OpSync       // pop divergence stack
	OpExit       // thread exit
	OpTrap       // force a memory fault (device-side assert failure)
)

var opNames = [...]string{
	"nop", "mov", "add", "sub", "mul", "mad", "min", "max", "and", "or",
	"xor", "not", "shl", "shr", "setp", "pand", "por", "pnot", "sel", "cvt",
	"fma", "mufu", "sreg", "ldparam", "ld", "st", "atom", "bar", "vote",
	"shfl", "bra", "label", "ssy", "sync", "exit", "trap",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Space is a PTX state space for memory operations.
type Space uint8

// Memory spaces for Ld/St.
const (
	SpGeneric Space = iota
	SpGlobal
	SpShared
	SpLocal
)

var spaceNames = [...]string{"generic", "global", "shared", "local"}

func (s Space) String() string {
	if int(s) < len(spaceNames) {
		return spaceNames[s]
	}
	return fmt.Sprintf("space(%d)", uint8(s))
}

// Instr is one PTX instruction.
type Instr struct {
	Op      Op
	Type    Type // result/operation type
	SrcType Type // for Cvt
	Dst     Value
	A, B, C Value
	Imm     int64 // immediate operand / address offset
	HasImm  bool  // B is the immediate rather than a register

	Cmp   sass.CmpOp
	Atom  sass.AtomOp
	Mufu  sass.MufuFunc
	Vote  sass.VoteMode
	SR    sass.SpecialReg
	Space Space
	Width int // bytes for Ld/St/Atom

	Label string // Bra/Label/SSY targets
	Param string // LdParam name

	Guard    Value // predicate guard; invalid = unconditional
	GuardNeg bool
}

func (in *Instr) String() string {
	s := ""
	if in.Guard.Valid() {
		n := ""
		if in.GuardNeg {
			n = "!"
		}
		s = fmt.Sprintf("@%s%s ", n, in.Guard)
	}
	s += in.Op.String()
	if in.Type != TInvalid {
		s += "." + in.Type.String()
	}
	if in.Label != "" {
		s += " " + in.Label
	}
	if in.Dst.Valid() {
		s += " " + in.Dst.String()
	}
	for _, v := range []Value{in.A, in.B, in.C} {
		if v.Valid() {
			s += ", " + v.String()
		}
	}
	if in.HasImm {
		s += fmt.Sprintf(", #%d", in.Imm)
	}
	return s
}

// Param is one kernel parameter declaration.
type Param struct {
	Name string
	Size int // 4 or 8 bytes
}

// Func is one PTX kernel.
type Func struct {
	Name        string
	Params      []Param
	Instrs      []Instr
	SharedBytes int

	// ReqBlock is an optional launch-shape declaration (cf. PTX
	// .reqntid): the CTA dimensions the kernel is written for. Zero
	// means unspecified. ptxas forwards it to sass.Kernel.BlockDim for
	// analyses that need tid bounds.
	ReqBlock [3]int

	nextID int32
	types  map[int32]Type
}

// NewFunc creates an empty kernel.
func NewFunc(name string) *Func {
	return &Func{Name: name, types: make(map[int32]Type)}
}

// NewValue allocates a fresh virtual register of type t.
func (f *Func) NewValue(t Type) Value {
	f.nextID++
	v := Value{id: f.nextID}
	f.types[v.id] = t
	return v
}

// TypeOf returns a value's declared type.
func (f *Func) TypeOf(v Value) Type {
	if !v.Valid() {
		return TInvalid
	}
	return f.types[v.id]
}

// NumValues returns the number of virtual registers allocated.
func (f *Func) NumValues() int { return int(f.nextID) }

// AddParam declares a kernel parameter.
func (f *Func) AddParam(name string, size int) {
	f.Params = append(f.Params, Param{Name: name, Size: size})
}

// AllocShared reserves bytes of CTA shared memory (16-byte aligned) and
// returns the byte offset.
func (f *Func) AllocShared(bytes int) int {
	off := (f.SharedBytes + 15) &^ 15
	f.SharedBytes = off + bytes
	return off
}

// Emit appends an instruction.
func (f *Func) Emit(in Instr) { f.Instrs = append(f.Instrs, in) }

// Verify checks structural invariants: types of operands, labels defined,
// exactly matched SSY/Sync use, and terminating Exit.
func (f *Func) Verify() error {
	labels := map[string]bool{}
	for i := range f.Instrs {
		if f.Instrs[i].Op == OpLabel {
			if labels[f.Instrs[i].Label] {
				return fmt.Errorf("%s: duplicate label %q", f.Name, f.Instrs[i].Label)
			}
			labels[f.Instrs[i].Label] = true
		}
	}
	sawExit := false
	for i := range f.Instrs {
		in := &f.Instrs[i]
		switch in.Op {
		case OpBra, OpSSY:
			if !labels[in.Label] {
				return fmt.Errorf("%s@%d: undefined label %q", f.Name, i, in.Label)
			}
		case OpExit:
			sawExit = true
		case OpLdParam:
			found := false
			for _, p := range f.Params {
				if p.Name == in.Param {
					found = true
					if p.Size == 8 && f.TypeOf(in.Dst) != TU64 {
						return fmt.Errorf("%s@%d: 8-byte param %q loaded into %s", f.Name, i, in.Param, f.TypeOf(in.Dst))
					}
				}
			}
			if !found {
				return fmt.Errorf("%s@%d: unknown param %q", f.Name, i, in.Param)
			}
		}
		if in.Guard.Valid() && f.TypeOf(in.Guard) != TPred {
			return fmt.Errorf("%s@%d: guard %s is not a predicate", f.Name, i, in.Guard)
		}
	}
	if !sawExit {
		return fmt.Errorf("%s: missing exit", f.Name)
	}
	return nil
}

// Dump renders the function as text (debugging aid).
func (f *Func) Dump() string {
	s := fmt.Sprintf(".entry %s\n", f.Name)
	for _, p := range f.Params {
		s += fmt.Sprintf(".param %s %d\n", p.Name, p.Size)
	}
	for i := range f.Instrs {
		if f.Instrs[i].Op == OpLabel {
			s += f.Instrs[i].Label + ":\n"
			continue
		}
		s += "    " + f.Instrs[i].String() + "\n"
	}
	return s
}

// Module is a set of PTX kernels compiled together.
type Module struct {
	Funcs []*Func
}

// NewModule returns an empty module.
func NewModule() *Module { return &Module{} }

// Add appends a kernel to the module.
func (m *Module) Add(f *Func) { m.Funcs = append(m.Funcs, f) }

// Verify checks every kernel.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}
