package ptx_test

import (
	"math"
	"strings"
	"testing"

	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sim"
)

const saxpySrc = `
# saxpy: y[i] = a*x[i] + y[i] for i < n
.entry saxpy
.param ptr x
.param ptr y
.param u32 n
.param f32 a
%i = gtid.x
%p = setp.lt.u32 %i %n
ssy Ldone
@!%p bra Lsync
%xa = index %x %i 2
%v = ld.global.f32 %xa 0
%ya = index %y %i 2
%w = ld.global.f32 %ya 0
%r = fma.f32 %a %v %w
st.global.f32 %ya 0 %r
Lsync:
sync
Ldone:
exit
`

func TestParseAndRunSaxpy(t *testing.T) {
	f, err := ptx.Parse(saxpySrc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "saxpy" || len(f.Params) != 4 {
		t.Fatalf("parsed header wrong: %s %v", f.Name, f.Params)
	}
	m := ptx.NewModule()
	m.Add(f)
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev := sim.NewDevice(sim.MiniGPU())
	const n = 100
	dx := dev.Alloc(4*n, "x")
	dy := dev.Alloc(4*n, "y")
	for i := 0; i < n; i++ {
		dev.Global.Write32(dx+uint64(4*i), math.Float32bits(float32(i)))
		dev.Global.Write32(dy+uint64(4*i), math.Float32bits(1))
	}
	a := float32(0.5)
	if _, err := dev.Launch(prog, "saxpy", sim.LaunchParams{
		Grid: sim.D1(4), Block: sim.D1(32),
		Args: []uint64{dx, dy, n, uint64(math.Float32bits(a))},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		bits, _ := dev.Global.Read32(dy + uint64(4*i))
		got := math.Float32frombits(bits)
		want := a*float32(i) + 1
		if got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

const loopSrc = `
.entry count
.param ptr out
%i = gtid.x
%acc = mov.u32 0
%j = mov.u32 0
ssy Ldone
Lhead:
%p = setp.ge.u32 %j %i
@%p bra Lsync
%acc = add.u32 %acc %j
%j = add.u32 %j 1
bra Lhead
Lsync:
sync
Ldone:
%oa = index %out %i 2
st.global.u32 %oa 0 %acc
exit
`

// TestParseLoopWithMutableRegs: redefinition of %acc/%j forms a loop.
func TestParseLoopWithMutableRegs(t *testing.T) {
	f, err := ptx.Parse(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := ptx.NewModule()
	m.Add(f)
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev := sim.NewDevice(sim.MiniGPU())
	out := dev.Alloc(4*32, "out")
	if _, err := dev.Launch(prog, "count", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{out},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		v, _ := dev.Global.Read32(out + uint64(4*i))
		want := uint32(i * (i - 1) / 2) // sum 0..i-1
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

const atomSrc = `
.entry histo
.param ptr hist
%i = gtid.x
%b = and.u32 %i 3
%ba = index %hist %b 2
%one = mov.u32 1
atom.add.global %ba 0 %one
exit
`

func TestParseAtomics(t *testing.T) {
	f, err := ptx.Parse(atomSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := ptx.NewModule()
	m.Add(f)
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev := sim.NewDevice(sim.MiniGPU())
	hist := dev.Alloc(16, "hist")
	if _, err := dev.Launch(prog, "histo", sim.LaunchParams{
		Grid: sim.D1(2), Block: sim.D1(32), Args: []uint64{hist},
	}); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		v, _ := dev.Global.Read32(hist + uint64(4*b))
		if v != 16 {
			t.Fatalf("hist[%d] = %d, want 16", b, v)
		}
	}
}

func TestParseModuleMultipleKernels(t *testing.T) {
	m, err := ptx.ParseModule(saxpySrc + "\n" + atomSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("kernels = %d", len(m.Funcs))
	}
	if m.Funcs[0].Name != "saxpy" || m.Funcs[1].Name != "histo" {
		t.Errorf("names: %s, %s", m.Funcs[0].Name, m.Funcs[1].Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no entry", "%i = gtid.x", "before .entry"},
		{"bad param", ".entry k\n.param blob x", "unknown param type"},
		{"undefined reg", ".entry k\n%a = add.u32 %ghost 1", "undefined register"},
		{"bad op", ".entry k\n%a = frobnicate %b", "unknown opcode"},
		{"bad guard", ".entry k\n@%ghost bra L", "undefined guard"},
		{"dangling label", ".entry k\nbra Lnowhere\nexit", "undefined label"},
		{"retype", ".entry k\n%a = mov.u32 1\n%a = mov.f32 1.0", "different type"},
		{"imm in a-slot", ".entry k\n%a = add.u32 1 %a", "not allowed"},
	}
	for _, c := range cases {
		_, err := ptx.Parse(c.src)
		if err == nil {
			t.Errorf("%s: parse accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.wantSub)
		}
	}
}
