package ptx

import (
	"strings"
	"testing"

	"sassi/internal/sass"
)

func TestBuilderTypeChecks(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic on type error", name)
			}
		}()
		f()
	}
	b := NewKernel("k")
	u32 := b.ImmU32(1)
	f32 := b.ImmF32(1)
	u64 := b.ImmU64(1)
	pred := b.SetpI(sass.CmpEQ, u32, 0)

	expectPanic("mixed add", func() { b.Add(u32, f32) })
	expectPanic("sel non-pred", func() { b.Sel(u32, u32, u32) })
	expectPanic("index non-u64 base", func() { b.Index(u32, u32, 2) })
	expectPanic("index pred idx", func() { b.Index(u64, pred, 2) })
	expectPanic("ld.global u32 addr", func() { b.LdGlobalU32(u32, 0) })
	expectPanic("ld.shared u64 addr", func() { b.LdSharedU32(u64, 0) })
	expectPanic("cvt.u64 from u64", func() { b.CvtU64(u64) })
	expectPanic("mufu int", func() { b.Rcp(u32) })
	expectPanic("assign mismatch", func() { b.Assign(b.Var(u32), f32) })
	expectPanic("while non-pred", func() {
		b.While(func() Value { return u32 }, func() {})
	})
}

func TestVerifyCatchesErrors(t *testing.T) {
	// Undefined branch label.
	f := NewFunc("k")
	f.Emit(Instr{Op: OpBra, Label: "nowhere"})
	f.Emit(Instr{Op: OpExit})
	if err := f.Verify(); err == nil {
		t.Error("undefined label accepted")
	}
	// Duplicate labels.
	f2 := NewFunc("k")
	f2.Emit(Instr{Op: OpLabel, Label: "a"})
	f2.Emit(Instr{Op: OpLabel, Label: "a"})
	f2.Emit(Instr{Op: OpExit})
	if err := f2.Verify(); err == nil {
		t.Error("duplicate label accepted")
	}
	// Missing exit.
	f3 := NewFunc("k")
	f3.Emit(Instr{Op: OpNop})
	if err := f3.Verify(); err == nil {
		t.Error("missing exit accepted")
	}
	// Unknown parameter.
	f4 := NewFunc("k")
	f4.Emit(Instr{Op: OpLdParam, Param: "ghost", Dst: f4.NewValue(TU32)})
	f4.Emit(Instr{Op: OpExit})
	if err := f4.Verify(); err == nil {
		t.Error("unknown param accepted")
	}
	// 8-byte param into a 32-bit value.
	f5 := NewFunc("k")
	f5.AddParam("p", 8)
	f5.Emit(Instr{Op: OpLdParam, Param: "p", Type: TU32, Dst: f5.NewValue(TU32)})
	f5.Emit(Instr{Op: OpExit})
	if err := f5.Verify(); err == nil {
		t.Error("narrow load of wide param accepted")
	}
}

func TestBuilderAutoExit(t *testing.T) {
	b := NewKernel("k")
	b.ImmU32(1)
	f, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if f.Instrs[len(f.Instrs)-1].Op != OpExit {
		t.Error("Done did not append exit")
	}
}

func TestAllocSharedAlignment(t *testing.T) {
	f := NewFunc("k")
	a := f.AllocShared(3)
	b := f.AllocShared(10)
	if a != 0 || b != 16 {
		t.Errorf("shared offsets = %d, %d", a, b)
	}
	if f.SharedBytes != 26 {
		t.Errorf("total shared = %d", f.SharedBytes)
	}
}

func TestTypeSizes(t *testing.T) {
	if TU32.Size() != 4 || TS32.Size() != 4 || TF32.Size() != 4 {
		t.Error("32-bit sizes wrong")
	}
	if TU64.Size() != 8 || TPred.Size() != 0 {
		t.Error("u64/pred sizes wrong")
	}
}

func TestDumpReadable(t *testing.T) {
	b := NewKernel("k")
	p := b.ParamU64("data")
	i := b.GlobalTidX()
	b.If(b.SetpI(sass.CmpLT, i, 8), func() {
		b.StGlobalU32(b.Index(p, i, 2), 0, i)
	})
	f := b.MustDone()
	dump := f.Dump()
	for _, want := range []string{".entry k", ".param data", "bra", "ssy", "exit"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestForRangeCount(t *testing.T) {
	// Structural check: ForRange emits a loop with head label and backedge.
	b := NewKernel("k")
	b.ForRange(b.ImmU32(0), b.ImmU32(4), func(i Value) {})
	f := b.MustDone()
	branches, labels := 0, 0
	for _, in := range f.Instrs {
		switch in.Op {
		case OpBra:
			branches++
		case OpLabel:
			labels++
		}
	}
	if branches < 2 || labels < 3 {
		t.Errorf("loop structure: %d branches, %d labels", branches, labels)
	}
}

func TestValueIdentity(t *testing.T) {
	f := NewFunc("k")
	a := f.NewValue(TU32)
	b := f.NewValue(TF32)
	if a.ID() == b.ID() {
		t.Error("value ids collide")
	}
	if f.TypeOf(a) != TU32 || f.TypeOf(b) != TF32 {
		t.Error("types lost")
	}
	var zero Value
	if zero.Valid() || f.TypeOf(zero) != TInvalid {
		t.Error("zero value not invalid")
	}
	if f.NumValues() != 2 {
		t.Errorf("NumValues = %d", f.NumValues())
	}
}
