package ptx

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"sassi/internal/sass"
)

// Parse reads a kernel in the textual PTX-like assembly format, the
// front-end path for tools that want to feed the compiler without using
// the Go builder API. The format is line-oriented:
//
//	.entry saxpy
//	.param ptr x
//	.param ptr y
//	.param u32 n
//	.shared 1024
//	%i = gtid.x
//	%p = setp.lt.u32 %i %n
//	ssy Ldone
//	@!%p bra Lsync
//	%xa = index %x %i 2
//	%v = ld.global.f32 %xa 0
//	%ya = index %y %i 2
//	%w = ld.global.f32 %ya 0
//	%s = add.f32 %v %w
//	st.global.f32 %ya 0 %s
//	Lsync:
//	sync
//	Ldone:
//	exit
//
// Comments start with '#' or '//'. Guards prefix an instruction with
// @%p or @!%p. Immediate operands are decimal or 0x hex integers for
// integer-typed ops and decimal literals (with '.' or exponent) for .f32.
func Parse(src string) (*Func, error) {
	p := &parser{vals: map[string]Value{}}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("ptx: line %d: %w (in %q)", lineNo+1, err, strings.TrimSpace(raw))
		}
	}
	if p.f == nil {
		return nil, fmt.Errorf("ptx: no .entry directive")
	}
	if n := len(p.f.Instrs); n == 0 || p.f.Instrs[n-1].Op != OpExit {
		p.f.Emit(Instr{Op: OpExit})
	}
	if err := p.f.Verify(); err != nil {
		return nil, err
	}
	return p.f, nil
}

// ParseModule parses a source containing one or more .entry kernels.
func ParseModule(src string) (*Module, error) {
	m := NewModule()
	var chunk []string
	flush := func() error {
		hasEntry := false
		for _, l := range chunk {
			if strings.HasPrefix(strings.TrimSpace(stripComment(l)), ".entry") {
				hasEntry = true
				break
			}
		}
		if !hasEntry {
			// Leading comments/blank lines before the first kernel.
			chunk = nil
			return nil
		}
		f, err := Parse(strings.Join(chunk, "\n"))
		if err != nil {
			return err
		}
		m.Add(f)
		chunk = nil
		return nil
	}
	for _, raw := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(stripComment(raw)), ".entry") {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		chunk = append(chunk, raw)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(m.Funcs) == 0 {
		return nil, fmt.Errorf("ptx: no kernels in module")
	}
	return m, nil
}

func stripComment(s string) string {
	if i := strings.Index(s, "#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

type parser struct {
	f    *Func
	vals map[string]Value
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, ".entry"):
		name := strings.TrimSpace(strings.TrimPrefix(line, ".entry"))
		if name == "" {
			return fmt.Errorf("missing kernel name")
		}
		p.f = NewFunc(name)
		return nil
	case p.f == nil:
		return fmt.Errorf("directive before .entry")
	case strings.HasPrefix(line, ".param"):
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf(".param wants <type> <name>")
		}
		size := 4
		var t Type
		switch fields[1] {
		case "ptr", "u64":
			size, t = 8, TU64
		case "u32":
			t = TU32
		case "s32":
			t = TS32
		case "f32":
			t = TF32
		default:
			return fmt.Errorf("unknown param type %q", fields[1])
		}
		p.f.AddParam(fields[2], size)
		d := p.f.NewValue(t)
		p.vals["%"+fields[2]] = d
		p.f.Emit(Instr{Op: OpLdParam, Type: t, Dst: d, Param: fields[2]})
		return nil
	case strings.HasPrefix(line, ".shared"):
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".shared")))
		if err != nil {
			return fmt.Errorf("bad .shared size: %v", err)
		}
		p.f.AllocShared(n)
		return nil
	case strings.HasSuffix(line, ":"):
		p.f.Emit(Instr{Op: OpLabel, Label: strings.TrimSuffix(line, ":")})
		return nil
	}
	return p.instr(line)
}

// instr parses "[@[!]%p] [%dst =] op[.mods] operands...".
func (p *parser) instr(line string) error {
	var in Instr
	fields := strings.Fields(line)
	// Guard.
	if strings.HasPrefix(fields[0], "@") {
		g := strings.TrimPrefix(fields[0], "@")
		if strings.HasPrefix(g, "!") {
			in.GuardNeg = true
			g = g[1:]
		}
		gv, ok := p.vals[g]
		if !ok {
			return fmt.Errorf("undefined guard %q", g)
		}
		in.Guard = gv
		fields = fields[1:]
	}
	// Destination.
	var dstName string
	if len(fields) >= 2 && fields[1] == "=" {
		dstName = fields[0]
		if !strings.HasPrefix(dstName, "%") {
			return fmt.Errorf("destination %q must be a %%register", dstName)
		}
		fields = fields[2:]
	}
	if len(fields) == 0 {
		return fmt.Errorf("missing opcode")
	}
	op := fields[0]
	args := fields[1:]
	return p.emitOp(&in, op, dstName, args)
}

// typeBySuffix maps type suffixes.
func typeBySuffix(s string) (Type, bool) {
	switch s {
	case "u32":
		return TU32, true
	case "s32":
		return TS32, true
	case "f32":
		return TF32, true
	case "u64":
		return TU64, true
	}
	return TInvalid, false
}

var srByName = map[string]sass.SpecialReg{
	"tid.x": sass.SRTidX, "tid.y": sass.SRTidY, "tid.z": sass.SRTidZ,
	"ctaid.x": sass.SRCtaidX, "ctaid.y": sass.SRCtaidY, "ctaid.z": sass.SRCtaidZ,
	"ntid.x": sass.SRNTidX, "ntid.y": sass.SRNTidY,
	"nctaid.x": sass.SRNCtaidX, "laneid": sass.SRLaneID,
}

var binOps = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "min": OpMin, "max": OpMax,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "shl": OpShl, "shr": OpShr,
}

var mufuOps = map[string]sass.MufuFunc{
	"rcp": sass.MufuRCP, "sqrt": sass.MufuSQRT, "rsq": sass.MufuRSQ,
	"sin": sass.MufuSIN, "cos": sass.MufuCOS, "ex2": sass.MufuEX2,
	"lg2": sass.MufuLG2,
}

var spaceByName = map[string]Space{
	"global": SpGlobal, "shared": SpShared, "local": SpLocal, "generic": SpGeneric,
}

var atomOps = map[string]sass.AtomOp{
	"add": sass.AtomADD, "min": sass.AtomMIN, "max": sass.AtomMAX,
	"and": sass.AtomAND, "or": sass.AtomOR, "xor": sass.AtomXOR,
	"exch": sass.AtomEXCH,
}

// defDst allocates the destination value.
func (p *parser) defDst(in *Instr, name string, t Type) error {
	if name == "" {
		return fmt.Errorf("op needs a destination")
	}
	if old, exists := p.vals[name]; exists {
		// Redefinition (mutable variable): reuse the value if the type
		// agrees.
		if p.f.TypeOf(old) != t {
			return fmt.Errorf("%s redefined with different type", name)
		}
		in.Dst = old
		return nil
	}
	d := p.f.NewValue(t)
	p.vals[name] = d
	in.Dst = d
	return nil
}

// operand resolves a register reference or an immediate of type t.
func (p *parser) operand(in *Instr, tok string, t Type, slot *Value) error {
	if strings.HasPrefix(tok, "%") {
		v, ok := p.vals[tok]
		if !ok {
			return fmt.Errorf("undefined register %q", tok)
		}
		*slot = v
		return nil
	}
	// Immediate: only legal in the B slot.
	if slot != &in.B {
		return fmt.Errorf("immediate %q not allowed here", tok)
	}
	if t == TF32 {
		f, err := strconv.ParseFloat(tok, 32)
		if err != nil {
			return fmt.Errorf("bad float %q", tok)
		}
		in.Imm = int64(int32(math.Float32bits(float32(f))))
	} else {
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			return fmt.Errorf("bad integer %q", tok)
		}
		in.Imm = v
	}
	in.HasImm = true
	return nil
}

func (p *parser) emitOp(in *Instr, op, dst string, args []string) error {
	parts := strings.Split(op, ".")
	head := parts[0]

	emit := func() { p.f.Emit(*in) }

	switch head {
	case "exit":
		in.Op = OpExit
		emit()
		return nil
	case "bar":
		in.Op = OpBar
		emit()
		return nil
	case "sync":
		in.Op = OpSync
		emit()
		return nil
	case "bra", "ssy":
		if len(args) != 1 {
			return fmt.Errorf("%s wants a label", head)
		}
		in.Op = OpBra
		if head == "ssy" {
			in.Op = OpSSY
		}
		in.Label = args[0]
		emit()
		return nil
	case "gtid":
		// %d = gtid.x : blockIdx.x*blockDim.x + threadIdx.x, expanded.
		ct := p.f.NewValue(TU32)
		nt := p.f.NewValue(TU32)
		td := p.f.NewValue(TU32)
		p.f.Emit(Instr{Op: OpSreg, Type: TU32, Dst: ct, SR: sass.SRCtaidX})
		p.f.Emit(Instr{Op: OpSreg, Type: TU32, Dst: nt, SR: sass.SRNTidX})
		p.f.Emit(Instr{Op: OpSreg, Type: TU32, Dst: td, SR: sass.SRTidX})
		if err := p.defDst(in, dst, TU32); err != nil {
			return err
		}
		in.Op = OpMad
		in.Type = TU32
		in.A, in.B, in.C = ct, nt, td
		emit()
		return nil
	case "sreg":
		if len(args) != 1 {
			return fmt.Errorf("sreg wants a name")
		}
		sr, ok := srByName[args[0]]
		if !ok {
			return fmt.Errorf("unknown special register %q", args[0])
		}
		if err := p.defDst(in, dst, TU32); err != nil {
			return err
		}
		in.Op = OpSreg
		in.Type = TU32
		in.SR = sr
		emit()
		return nil
	case "index":
		// %a = index %base %idx shift
		if len(args) != 3 {
			return fmt.Errorf("index wants base, idx, shift")
		}
		base, ok := p.vals[args[0]]
		if !ok {
			return fmt.Errorf("undefined base %q", args[0])
		}
		idx, ok := p.vals[args[1]]
		if !ok {
			return fmt.Errorf("undefined index %q", args[1])
		}
		shift, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad shift %q", args[2])
		}
		// scaled = idx << shift (u32); wide = zext scaled; dst = base+wide
		scaled := idx
		if shift > 0 {
			s := p.f.NewValue(TU32)
			p.f.Emit(Instr{Op: OpShl, Type: TU32, Dst: s, A: idx, Imm: int64(shift), HasImm: true, Guard: in.Guard, GuardNeg: in.GuardNeg})
			scaled = s
		}
		wide := p.f.NewValue(TU64)
		p.f.Emit(Instr{Op: OpCvt, Type: TU64, SrcType: TU32, Dst: wide, A: scaled, Guard: in.Guard, GuardNeg: in.GuardNeg})
		if err := p.defDst(in, dst, TU64); err != nil {
			return err
		}
		in.Op = OpAdd
		in.Type = TU64
		in.A, in.B = base, wide
		emit()
		return nil
	case "mov":
		if len(parts) != 2 {
			return fmt.Errorf("mov wants a type suffix")
		}
		t, ok := typeBySuffix(parts[1])
		if !ok {
			return fmt.Errorf("bad type %q", parts[1])
		}
		if err := p.defDst(in, dst, t); err != nil {
			return err
		}
		in.Op = OpMov
		in.Type = t
		if len(args) != 1 {
			return fmt.Errorf("mov wants one operand")
		}
		if strings.HasPrefix(args[0], "%") {
			return p.operandEmit(in, args[0], t, &in.A)
		}
		if err := p.operand(in, args[0], t, &in.B); err != nil {
			return err
		}
		// Immediate mov uses Imm directly.
		in.B = Value{}
		emit()
		return nil
	case "setp":
		// setp.<cmp>.<t> a b
		if len(parts) != 3 {
			return fmt.Errorf("setp wants setp.<cmp>.<type>")
		}
		cmp, ok := sass.CmpByName(strings.ToUpper(parts[1]))
		if !ok {
			return fmt.Errorf("bad comparison %q", parts[1])
		}
		t, ok := typeBySuffix(parts[2])
		if !ok {
			return fmt.Errorf("bad type %q", parts[2])
		}
		if err := p.defDst(in, dst, TPred); err != nil {
			return err
		}
		in.Op = OpSetp
		in.Type = t
		in.Cmp = cmp
		if len(args) != 2 {
			return fmt.Errorf("setp wants two operands")
		}
		if err := p.operand(in, args[0], t, &in.A); err != nil {
			return err
		}
		if err := p.operand(in, args[1], t, &in.B); err != nil {
			return err
		}
		emit()
		return nil
	case "sel":
		if len(parts) != 2 {
			return fmt.Errorf("sel wants a type suffix")
		}
		t, ok := typeBySuffix(parts[1])
		if !ok {
			return fmt.Errorf("bad type %q", parts[1])
		}
		if len(args) != 3 {
			return fmt.Errorf("sel wants a, b, pred")
		}
		if err := p.defDst(in, dst, t); err != nil {
			return err
		}
		in.Op = OpSel
		in.Type = t
		if err := p.operand(in, args[0], t, &in.A); err != nil {
			return err
		}
		if err := p.operand(in, args[1], t, &in.B); err != nil {
			return err
		}
		c, ok := p.vals[args[2]]
		if !ok {
			return fmt.Errorf("undefined predicate %q", args[2])
		}
		in.C = c
		emit()
		return nil
	case "fma", "mad":
		if len(parts) != 2 {
			return fmt.Errorf("%s wants a type suffix", head)
		}
		t, ok := typeBySuffix(parts[1])
		if !ok {
			return fmt.Errorf("bad type %q", parts[1])
		}
		if len(args) != 3 {
			return fmt.Errorf("%s wants three operands", head)
		}
		if err := p.defDst(in, dst, t); err != nil {
			return err
		}
		in.Op = OpMad
		if head == "fma" {
			in.Op = OpFma
		}
		in.Type = t
		for i, slot := range []*Value{&in.A, &in.B, &in.C} {
			v, ok := p.vals[args[i]]
			if !ok {
				return fmt.Errorf("undefined register %q", args[i])
			}
			*slot = v
		}
		emit()
		return nil
	case "cvt":
		// cvt.<to>.<from>
		if len(parts) != 3 {
			return fmt.Errorf("cvt wants cvt.<to>.<from>")
		}
		to, ok1 := typeBySuffix(parts[1])
		from, ok2 := typeBySuffix(parts[2])
		if !ok1 || !ok2 {
			return fmt.Errorf("bad cvt types")
		}
		if len(args) != 1 {
			return fmt.Errorf("cvt wants one operand")
		}
		if err := p.defDst(in, dst, to); err != nil {
			return err
		}
		in.Op = OpCvt
		in.Type = to
		in.SrcType = from
		return p.operandEmit(in, args[0], from, &in.A)
	case "ld", "st":
		// ld.<space>.<t|u8> addr offset [src for st]
		if len(parts) != 3 {
			return fmt.Errorf("%s wants %s.<space>.<type>", head, head)
		}
		space, ok := spaceByName[parts[1]]
		if !ok {
			return fmt.Errorf("bad space %q", parts[1])
		}
		width := 4
		t := TU32
		if parts[2] == "u8" {
			width = 1
		} else if tt, ok := typeBySuffix(parts[2]); ok {
			t = tt
			if t == TU64 {
				width = 8
			}
		} else {
			return fmt.Errorf("bad type %q", parts[2])
		}
		wantArgs := 2
		if head == "st" {
			wantArgs = 3
		}
		if len(args) != wantArgs {
			return fmt.Errorf("%s wants %d operands", head, wantArgs)
		}
		addr, ok := p.vals[args[0]]
		if !ok {
			return fmt.Errorf("undefined address %q", args[0])
		}
		off, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad offset %q", args[1])
		}
		in.Space = space
		in.Width = width
		in.A = addr
		in.Imm = off
		in.Type = t
		if head == "ld" {
			if err := p.defDst(in, dst, t); err != nil {
				return err
			}
			in.Op = OpLd
		} else {
			v, ok := p.vals[args[2]]
			if !ok {
				return fmt.Errorf("undefined store value %q", args[2])
			}
			in.Op = OpSt
			in.B = v
		}
		emit()
		return nil
	case "atom":
		// atom.<op>.<space> addr off val
		if len(parts) != 3 {
			return fmt.Errorf("atom wants atom.<op>.<space>")
		}
		aop, ok := atomOps[parts[1]]
		if !ok {
			return fmt.Errorf("bad atomic op %q", parts[1])
		}
		space, ok := spaceByName[parts[2]]
		if !ok {
			return fmt.Errorf("bad space %q", parts[2])
		}
		if len(args) != 3 {
			return fmt.Errorf("atom wants addr, offset, value")
		}
		addr, ok := p.vals[args[0]]
		if !ok {
			return fmt.Errorf("undefined address %q", args[0])
		}
		off, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad offset %q", args[1])
		}
		v, ok := p.vals[args[2]]
		if !ok {
			return fmt.Errorf("undefined value %q", args[2])
		}
		in.Op = OpAtom
		in.Atom = aop
		in.Space = space
		in.Width = 4
		in.Type = TU32
		in.A = addr
		in.Imm = off
		in.B = v
		if dst != "" {
			if err := p.defDst(in, dst, TU32); err != nil {
				return err
			}
		}
		emit()
		return nil
	}
	// Binary arithmetic with a type suffix.
	if bop, ok := binOps[head]; ok {
		if len(parts) != 2 {
			return fmt.Errorf("%s wants a type suffix", head)
		}
		t, ok := typeBySuffix(parts[1])
		if !ok {
			return fmt.Errorf("bad type %q", parts[1])
		}
		if len(args) != 2 {
			return fmt.Errorf("%s wants two operands", head)
		}
		if err := p.defDst(in, dst, t); err != nil {
			return err
		}
		in.Op = bop
		in.Type = t
		if err := p.operand(in, args[0], t, &in.A); err != nil {
			return err
		}
		if err := p.operand(in, args[1], t, &in.B); err != nil {
			return err
		}
		emit()
		return nil
	}
	// MUFU family.
	if mf, ok := mufuOps[head]; ok {
		if len(args) != 1 {
			return fmt.Errorf("%s wants one operand", head)
		}
		if err := p.defDst(in, dst, TF32); err != nil {
			return err
		}
		in.Op = OpMufu
		in.Mufu = mf
		in.Type = TF32
		return p.operandEmit(in, args[0], TF32, &in.A)
	}
	return fmt.Errorf("unknown opcode %q", head)
}

// operandEmit resolves a register operand then emits.
func (p *parser) operandEmit(in *Instr, tok string, t Type, slot *Value) error {
	v, ok := p.vals[tok]
	if !ok {
		return fmt.Errorf("undefined register %q", tok)
	}
	*slot = v
	p.f.Emit(*in)
	return nil
}
