package ptx

import (
	"fmt"
	"math"

	"sassi/internal/sass"
)

// Builder is the kernel-authoring API: the front-end-compiler analog. It
// provides typed value construction and structured control flow (If, While)
// that lowers to the SSY/SYNC divergence idioms the hardware expects.
//
// Builder methods panic on type errors; kernel construction is programmer
// code, not input handling.
type Builder struct {
	F      *Func
	labelN int
}

// NewKernel starts building a kernel.
func NewKernel(name string) *Builder {
	return &Builder{F: NewFunc(name)}
}

// ReqBlock declares the CTA shape the kernel is written for (cf. PTX
// .reqntid), giving static analyses exact tid bounds. Advisory: launches
// are not checked against it.
func (b *Builder) ReqBlock(x, y, z int) {
	b.F.ReqBlock = [3]int{x, y, z}
}

func (b *Builder) label(prefix string) string {
	b.labelN++
	return fmt.Sprintf(".%s_%d", prefix, b.labelN)
}

func (b *Builder) typeOf(v Value) Type { return b.F.TypeOf(v) }

func (b *Builder) want(v Value, what string, types ...Type) {
	t := b.typeOf(v)
	for _, ok := range types {
		if t == ok {
			return
		}
	}
	panic(fmt.Sprintf("ptx: %s: operand %s has type %s, want one of %v", what, v, t, types))
}

func (b *Builder) sameInt(a, c Value, what string) Type {
	ta, tc := b.typeOf(a), b.typeOf(c)
	if ta != tc {
		panic(fmt.Sprintf("ptx: %s: mixed types %s and %s", what, ta, tc))
	}
	if ta != TU32 && ta != TS32 && ta != TU64 {
		panic(fmt.Sprintf("ptx: %s: want integer type, got %s", what, ta))
	}
	return ta
}

// Parameters and constants.

// ParamU64 declares a 64-bit (pointer) kernel parameter and loads it.
func (b *Builder) ParamU64(name string) Value {
	b.F.AddParam(name, 8)
	d := b.F.NewValue(TU64)
	b.F.Emit(Instr{Op: OpLdParam, Type: TU64, Dst: d, Param: name})
	return d
}

// ParamU32 declares a 32-bit kernel parameter and loads it.
func (b *Builder) ParamU32(name string) Value {
	b.F.AddParam(name, 4)
	d := b.F.NewValue(TU32)
	b.F.Emit(Instr{Op: OpLdParam, Type: TU32, Dst: d, Param: name})
	return d
}

// ParamS32 declares a signed 32-bit kernel parameter and loads it.
func (b *Builder) ParamS32(name string) Value {
	b.F.AddParam(name, 4)
	d := b.F.NewValue(TS32)
	b.F.Emit(Instr{Op: OpLdParam, Type: TS32, Dst: d, Param: name})
	return d
}

// ParamF32 declares a float kernel parameter and loads it.
func (b *Builder) ParamF32(name string) Value {
	b.F.AddParam(name, 4)
	d := b.F.NewValue(TF32)
	b.F.Emit(Instr{Op: OpLdParam, Type: TF32, Dst: d, Param: name})
	return d
}

func (b *Builder) imm(t Type, v int64) Value {
	d := b.F.NewValue(t)
	b.F.Emit(Instr{Op: OpMov, Type: t, Dst: d, Imm: v, HasImm: true})
	return d
}

// ImmU32 materializes an unsigned 32-bit constant.
func (b *Builder) ImmU32(v uint32) Value { return b.imm(TU32, int64(v)) }

// ImmS32 materializes a signed 32-bit constant.
func (b *Builder) ImmS32(v int32) Value { return b.imm(TS32, int64(v)) }

// ImmU64 materializes a 64-bit constant.
func (b *Builder) ImmU64(v uint64) Value { return b.imm(TU64, int64(v)) }

// ImmF32 materializes a float constant.
func (b *Builder) ImmF32(v float32) Value {
	return b.imm(TF32, int64(int32(math.Float32bits(v))))
}

// Special registers.

func (b *Builder) sreg(sr sass.SpecialReg) Value {
	d := b.F.NewValue(TU32)
	b.F.Emit(Instr{Op: OpSreg, Type: TU32, Dst: d, SR: sr})
	return d
}

// TidX returns threadIdx.x.
func (b *Builder) TidX() Value { return b.sreg(sass.SRTidX) }

// TidY returns threadIdx.y.
func (b *Builder) TidY() Value { return b.sreg(sass.SRTidY) }

// CtaX returns blockIdx.x.
func (b *Builder) CtaX() Value { return b.sreg(sass.SRCtaidX) }

// CtaY returns blockIdx.y.
func (b *Builder) CtaY() Value { return b.sreg(sass.SRCtaidY) }

// NTidX returns blockDim.x.
func (b *Builder) NTidX() Value { return b.sreg(sass.SRNTidX) }

// NCtaX returns gridDim.x.
func (b *Builder) NCtaX() Value { return b.sreg(sass.SRNCtaidX) }

// LaneID returns the lane index within the warp.
func (b *Builder) LaneID() Value { return b.sreg(sass.SRLaneID) }

// GlobalTidX computes blockIdx.x*blockDim.x + threadIdx.x.
func (b *Builder) GlobalTidX() Value {
	return b.Mad(b.CtaX(), b.NTidX(), b.TidX())
}

// Variables and assignment (non-SSA mutation for loop counters).

// Var allocates a mutable value initialized from init.
func (b *Builder) Var(init Value) Value {
	t := b.typeOf(init)
	d := b.F.NewValue(t)
	b.F.Emit(Instr{Op: OpMov, Type: t, Dst: d, A: init})
	return d
}

// Assign overwrites dst with src (same type).
func (b *Builder) Assign(dst, src Value) {
	if b.typeOf(dst) != b.typeOf(src) {
		panic(fmt.Sprintf("ptx: assign: %s <- %s type mismatch", b.typeOf(dst), b.typeOf(src)))
	}
	b.F.Emit(Instr{Op: OpMov, Type: b.typeOf(dst), Dst: dst, A: src})
}

// Arithmetic. Result type follows the first operand.

func (b *Builder) bin(op Op, a, c Value) Value {
	t := b.typeOf(a)
	if tc := b.typeOf(c); tc != t {
		panic(fmt.Sprintf("ptx: %s: mixed operand types %s and %s", op, t, tc))
	}
	d := b.F.NewValue(t)
	b.F.Emit(Instr{Op: op, Type: t, Dst: d, A: a, B: c})
	return d
}

func (b *Builder) binI(op Op, a Value, imm int64) Value {
	t := b.typeOf(a)
	d := b.F.NewValue(t)
	b.F.Emit(Instr{Op: op, Type: t, Dst: d, A: a, Imm: imm, HasImm: true})
	return d
}

// Add returns a+c.
func (b *Builder) Add(a, c Value) Value { return b.bin(OpAdd, a, c) }

// AddI returns a+imm.
func (b *Builder) AddI(a Value, imm int64) Value { return b.binI(OpAdd, a, imm) }

// Sub returns a-c.
func (b *Builder) Sub(a, c Value) Value { return b.bin(OpSub, a, c) }

// SubI returns a-imm.
func (b *Builder) SubI(a Value, imm int64) Value { return b.binI(OpAdd, a, -imm) }

// Mul returns a*c (low 32 bits for integers).
func (b *Builder) Mul(a, c Value) Value { return b.bin(OpMul, a, c) }

// MulI returns a*imm.
func (b *Builder) MulI(a Value, imm int64) Value { return b.binI(OpMul, a, imm) }

// Mad returns a*c+d.
func (b *Builder) Mad(a, c, d Value) Value {
	t := b.typeOf(a)
	if b.typeOf(c) != t || b.typeOf(d) != t {
		panic(fmt.Sprintf("ptx: mad: mixed operand types %s, %s, %s", t, b.typeOf(c), b.typeOf(d)))
	}
	r := b.F.NewValue(t)
	b.F.Emit(Instr{Op: OpMad, Type: t, Dst: r, A: a, B: c, C: d})
	return r
}

// Min returns min(a,c) honoring signedness.
func (b *Builder) Min(a, c Value) Value { return b.bin(OpMin, a, c) }

// Max returns max(a,c) honoring signedness.
func (b *Builder) Max(a, c Value) Value { return b.bin(OpMax, a, c) }

// And returns a&c.
func (b *Builder) And(a, c Value) Value { return b.bin(OpAnd, a, c) }

// AndI returns a&imm.
func (b *Builder) AndI(a Value, imm int64) Value { return b.binI(OpAnd, a, imm) }

// Or returns a|c.
func (b *Builder) Or(a, c Value) Value { return b.bin(OpOr, a, c) }

// Xor returns a^c.
func (b *Builder) Xor(a, c Value) Value { return b.bin(OpXor, a, c) }

// XorI returns a^imm.
func (b *Builder) XorI(a Value, imm int64) Value { return b.binI(OpXor, a, imm) }

// Not returns ^a.
func (b *Builder) Not(a Value) Value {
	t := b.typeOf(a)
	d := b.F.NewValue(t)
	b.F.Emit(Instr{Op: OpNot, Type: t, Dst: d, A: a})
	return d
}

// Shl returns a<<c.
func (b *Builder) Shl(a, c Value) Value { return b.bin(OpShl, a, c) }

// ShlI returns a<<imm.
func (b *Builder) ShlI(a Value, imm int64) Value { return b.binI(OpShl, a, imm) }

// Shr returns a>>c (arithmetic when a is signed).
func (b *Builder) Shr(a, c Value) Value { return b.bin(OpShr, a, c) }

// ShrI returns a>>imm.
func (b *Builder) ShrI(a Value, imm int64) Value { return b.binI(OpShr, a, imm) }

// Predicates.

// Setp compares a and c, returning a predicate.
func (b *Builder) Setp(cmp sass.CmpOp, a, c Value) Value {
	d := b.F.NewValue(TPred)
	b.F.Emit(Instr{Op: OpSetp, Type: b.typeOf(a), Cmp: cmp, Dst: d, A: a, B: c})
	return d
}

// SetpI compares a against an immediate.
func (b *Builder) SetpI(cmp sass.CmpOp, a Value, imm int64) Value {
	d := b.F.NewValue(TPred)
	b.F.Emit(Instr{Op: OpSetp, Type: b.typeOf(a), Cmp: cmp, Dst: d, A: a, Imm: imm, HasImm: true})
	return d
}

// PAnd returns a&&c for predicates.
func (b *Builder) PAnd(a, c Value) Value {
	d := b.F.NewValue(TPred)
	b.F.Emit(Instr{Op: OpPAnd, Type: TPred, Dst: d, A: a, B: c})
	return d
}

// POr returns a||c for predicates.
func (b *Builder) POr(a, c Value) Value {
	d := b.F.NewValue(TPred)
	b.F.Emit(Instr{Op: OpPOr, Type: TPred, Dst: d, A: a, B: c})
	return d
}

// PNot returns !a for a predicate.
func (b *Builder) PNot(a Value) Value {
	d := b.F.NewValue(TPred)
	b.F.Emit(Instr{Op: OpPNot, Type: TPred, Dst: d, A: a})
	return d
}

// Sel returns pred ? a : c.
func (b *Builder) Sel(pred, a, c Value) Value {
	b.want(pred, "sel", TPred)
	t := b.typeOf(a)
	d := b.F.NewValue(t)
	b.F.Emit(Instr{Op: OpSel, Type: t, Dst: d, A: a, B: c, C: pred})
	return d
}

// Conversions.

// CvtU64 widens a 32-bit value to 64 bits (zero extension).
func (b *Builder) CvtU64(a Value) Value {
	b.want(a, "cvt.u64", TU32, TS32)
	d := b.F.NewValue(TU64)
	b.F.Emit(Instr{Op: OpCvt, Type: TU64, SrcType: b.typeOf(a), Dst: d, A: a})
	return d
}

// CvtF32 converts an integer to float.
func (b *Builder) CvtF32(a Value) Value {
	b.want(a, "cvt.f32", TU32, TS32)
	d := b.F.NewValue(TF32)
	b.F.Emit(Instr{Op: OpCvt, Type: TF32, SrcType: b.typeOf(a), Dst: d, A: a})
	return d
}

// CvtS32 truncates a float to a signed integer.
func (b *Builder) CvtS32(a Value) Value {
	b.want(a, "cvt.s32", TF32)
	d := b.F.NewValue(TS32)
	b.F.Emit(Instr{Op: OpCvt, Type: TS32, SrcType: TF32, Dst: d, A: a})
	return d
}

// AsU32 reinterprets a value as unsigned (no code emitted at SASS level).
func (b *Builder) AsU32(a Value) Value {
	d := b.F.NewValue(TU32)
	b.F.Emit(Instr{Op: OpMov, Type: TU32, Dst: d, A: a})
	return d
}

// AsS32 reinterprets a value as signed.
func (b *Builder) AsS32(a Value) Value {
	d := b.F.NewValue(TS32)
	b.F.Emit(Instr{Op: OpMov, Type: TS32, Dst: d, A: a})
	return d
}

// Float special functions.

func (b *Builder) mufu(f sass.MufuFunc, a Value) Value {
	b.want(a, "mufu", TF32)
	d := b.F.NewValue(TF32)
	b.F.Emit(Instr{Op: OpMufu, Type: TF32, Mufu: f, Dst: d, A: a})
	return d
}

// Rcp returns 1/a.
func (b *Builder) Rcp(a Value) Value { return b.mufu(sass.MufuRCP, a) }

// Sqrt returns sqrt(a).
func (b *Builder) Sqrt(a Value) Value { return b.mufu(sass.MufuSQRT, a) }

// Rsq returns 1/sqrt(a).
func (b *Builder) Rsq(a Value) Value { return b.mufu(sass.MufuRSQ, a) }

// Sin returns sin(a).
func (b *Builder) Sin(a Value) Value { return b.mufu(sass.MufuSIN, a) }

// Cos returns cos(a).
func (b *Builder) Cos(a Value) Value { return b.mufu(sass.MufuCOS, a) }

// Ex2 returns 2**a.
func (b *Builder) Ex2(a Value) Value { return b.mufu(sass.MufuEX2, a) }

// Lg2 returns log2(a).
func (b *Builder) Lg2(a Value) Value { return b.mufu(sass.MufuLG2, a) }

// Fma returns a*c+d for floats.
func (b *Builder) Fma(a, c, d Value) Value {
	b.want(a, "fma", TF32)
	r := b.F.NewValue(TF32)
	b.F.Emit(Instr{Op: OpFma, Type: TF32, Dst: r, A: a, B: c, C: d})
	return r
}

// Memory.

// Index computes base + (idx << elemShift) as a 64-bit address.
func (b *Builder) Index(base, idx Value, elemShift uint) Value {
	b.want(base, "index base", TU64)
	b.want(idx, "index", TU32, TS32)
	scaled := idx
	if elemShift > 0 {
		scaled = b.ShlI(b.AsU32(idx), int64(elemShift))
	} else {
		scaled = b.AsU32(idx)
	}
	return b.Add(base, b.CvtU64(scaled))
}

func (b *Builder) ld(space Space, t Type, width int, addr Value, off int64) Value {
	d := b.F.NewValue(t)
	b.F.Emit(Instr{Op: OpLd, Type: t, Space: space, Width: width, Dst: d, A: addr, Imm: off})
	return d
}

func (b *Builder) st(space Space, t Type, width int, addr Value, off int64, v Value) {
	b.F.Emit(Instr{Op: OpSt, Type: t, Space: space, Width: width, A: addr, B: v, Imm: off})
}

// LdGlobalU32 loads a u32 from global memory at addr+off.
func (b *Builder) LdGlobalU32(addr Value, off int64) Value {
	b.want(addr, "ld.global", TU64)
	return b.ld(SpGlobal, TU32, 4, addr, off)
}

// LdGlobalS32 loads an s32 from global memory.
func (b *Builder) LdGlobalS32(addr Value, off int64) Value {
	b.want(addr, "ld.global", TU64)
	return b.ld(SpGlobal, TS32, 4, addr, off)
}

// LdGlobalF32 loads an f32 from global memory.
func (b *Builder) LdGlobalF32(addr Value, off int64) Value {
	b.want(addr, "ld.global", TU64)
	return b.ld(SpGlobal, TF32, 4, addr, off)
}

// LdGlobalU8 loads a byte (zero-extended).
func (b *Builder) LdGlobalU8(addr Value, off int64) Value {
	b.want(addr, "ld.global.u8", TU64)
	return b.ld(SpGlobal, TU32, 1, addr, off)
}

// StGlobalU32 stores a u32 to global memory.
func (b *Builder) StGlobalU32(addr Value, off int64, v Value) {
	b.want(addr, "st.global", TU64)
	b.st(SpGlobal, TU32, 4, addr, off, v)
}

// StGlobalF32 stores an f32 to global memory.
func (b *Builder) StGlobalF32(addr Value, off int64, v Value) {
	b.want(addr, "st.global", TU64)
	b.st(SpGlobal, TF32, 4, addr, off, v)
}

// StGlobalU8 stores the low byte of v.
func (b *Builder) StGlobalU8(addr Value, off int64, v Value) {
	b.want(addr, "st.global.u8", TU64)
	b.st(SpGlobal, TU32, 1, addr, off, v)
}

// LdSharedU32 loads a u32 from CTA shared memory at byte offset addr+off.
func (b *Builder) LdSharedU32(addr Value, off int64) Value {
	b.want(addr, "ld.shared", TU32, TS32)
	return b.ld(SpShared, TU32, 4, addr, off)
}

// LdSharedF32 loads an f32 from CTA shared memory.
func (b *Builder) LdSharedF32(addr Value, off int64) Value {
	b.want(addr, "ld.shared", TU32, TS32)
	return b.ld(SpShared, TF32, 4, addr, off)
}

// StSharedU32 stores a u32 to CTA shared memory.
func (b *Builder) StSharedU32(addr Value, off int64, v Value) {
	b.want(addr, "st.shared", TU32, TS32)
	b.st(SpShared, TU32, 4, addr, off, v)
}

// StSharedF32 stores an f32 to CTA shared memory.
func (b *Builder) StSharedF32(addr Value, off int64, v Value) {
	b.want(addr, "st.shared", TU32, TS32)
	b.st(SpShared, TF32, 4, addr, off, v)
}

// AtomAddGlobal atomically adds v at addr+off, returning the old value.
func (b *Builder) AtomAddGlobal(addr Value, off int64, v Value) Value {
	b.want(addr, "atom.global", TU64)
	d := b.F.NewValue(b.typeOf(v))
	b.F.Emit(Instr{Op: OpAtom, Type: b.typeOf(v), Atom: sass.AtomADD, Width: 4,
		Space: SpGlobal, Dst: d, A: addr, B: v, Imm: off})
	return d
}

// AtomMaxGlobal atomically takes the max.
func (b *Builder) AtomMaxGlobal(addr Value, off int64, v Value) Value {
	b.want(addr, "atom.global", TU64)
	d := b.F.NewValue(b.typeOf(v))
	b.F.Emit(Instr{Op: OpAtom, Type: b.typeOf(v), Atom: sass.AtomMAX, Width: 4,
		Space: SpGlobal, Dst: d, A: addr, B: v, Imm: off})
	return d
}

// AtomAddShared atomically adds v at shared byte offset addr+off.
func (b *Builder) AtomAddShared(addr Value, off int64, v Value) Value {
	b.want(addr, "atom.shared", TU32, TS32)
	d := b.F.NewValue(b.typeOf(v))
	b.F.Emit(Instr{Op: OpAtom, Type: b.typeOf(v), Atom: sass.AtomADD, Width: 4,
		Space: SpShared, Dst: d, A: addr, B: v, Imm: off})
	return d
}

// ExchGlobal atomically exchanges v at addr+off.
func (b *Builder) ExchGlobal(addr Value, off int64, v Value) Value {
	b.want(addr, "atom.exch", TU64)
	d := b.F.NewValue(b.typeOf(v))
	b.F.Emit(Instr{Op: OpAtom, Type: b.typeOf(v), Atom: sass.AtomEXCH, Width: 4,
		Space: SpGlobal, Dst: d, A: addr, B: v, Imm: off})
	return d
}

// LdLocalU32 loads a u32 from per-thread local memory at byte offset
// addr+off (space-relative, like ld.local).
func (b *Builder) LdLocalU32(addr Value, off int64) Value {
	b.want(addr, "ld.local", TU32, TS32)
	return b.ld(SpLocal, TU32, 4, addr, off)
}

// LdLocalF32 loads an f32 from per-thread local memory.
func (b *Builder) LdLocalF32(addr Value, off int64) Value {
	b.want(addr, "ld.local", TU32, TS32)
	return b.ld(SpLocal, TF32, 4, addr, off)
}

// StLocalU32 stores a u32 to per-thread local memory.
func (b *Builder) StLocalU32(addr Value, off int64, v Value) {
	b.want(addr, "st.local", TU32, TS32)
	b.st(SpLocal, TU32, 4, addr, off, v)
}

// StLocalF32 stores an f32 to per-thread local memory.
func (b *Builder) StLocalF32(addr Value, off int64, v Value) {
	b.want(addr, "st.local", TU32, TS32)
	b.st(SpLocal, TF32, 4, addr, off, v)
}

// Warp collectives.

// Ballot returns the 32-bit mask of active lanes where pred holds
// (vote.ballot.b32).
func (b *Builder) Ballot(pred Value) Value {
	b.want(pred, "vote.ballot", TPred)
	d := b.F.NewValue(TU32)
	b.F.Emit(Instr{Op: OpVote, Type: TU32, Vote: sass.VoteBALLOT, Dst: d, A: pred})
	return d
}

// VoteAll returns a predicate: pred holds on every active lane.
func (b *Builder) VoteAll(pred Value) Value {
	b.want(pred, "vote.all", TPred)
	d := b.F.NewValue(TPred)
	b.F.Emit(Instr{Op: OpVote, Type: TPred, Vote: sass.VoteALL, Dst: d, A: pred})
	return d
}

// VoteAny returns a predicate: pred holds on some active lane.
func (b *Builder) VoteAny(pred Value) Value {
	b.want(pred, "vote.any", TPred)
	d := b.F.NewValue(TPred)
	b.F.Emit(Instr{Op: OpVote, Type: TPred, Vote: sass.VoteANY, Dst: d, A: pred})
	return d
}

// Shfl reads v from the lane selected by lane&31 (shfl.idx). Inactive
// source lanes yield the reading lane's own value.
func (b *Builder) Shfl(v, lane Value) Value {
	t := b.typeOf(v)
	if t != TU32 && t != TS32 && t != TF32 {
		panic(fmt.Sprintf("ptx: shfl of %s (want a 32-bit type)", t))
	}
	b.want(lane, "shfl lane", TU32, TS32)
	d := b.F.NewValue(t)
	b.F.Emit(Instr{Op: OpShfl, Type: t, Dst: d, A: v, B: lane})
	return d
}

// ShflI is Shfl with an immediate source lane.
func (b *Builder) ShflI(v Value, lane int64) Value {
	t := b.typeOf(v)
	if t != TU32 && t != TS32 && t != TF32 {
		panic(fmt.Sprintf("ptx: shfl of %s (want a 32-bit type)", t))
	}
	d := b.F.NewValue(t)
	b.F.Emit(Instr{Op: OpShfl, Type: t, Dst: d, A: v, Imm: lane, HasImm: true})
	return d
}

// Control flow.

// Bar emits a CTA-wide barrier.
func (b *Builder) Bar() { b.F.Emit(Instr{Op: OpBar}) }

// Exit terminates the thread.
func (b *Builder) Exit() { b.F.Emit(Instr{Op: OpExit}) }

// Trap raises a device-side fault (assertion failure analog).
func (b *Builder) Trap() { b.F.Emit(Instr{Op: OpTrap}) }

// If runs then() for lanes where cond holds, reconverging afterwards.
func (b *Builder) If(cond Value, then func()) {
	b.want(cond, "if", TPred)
	reconv := b.label("reconv")
	sync := b.label("sync")
	b.F.Emit(Instr{Op: OpSSY, Label: reconv})
	b.F.Emit(Instr{Op: OpBra, Label: sync, Guard: cond, GuardNeg: true})
	then()
	b.F.Emit(Instr{Op: OpLabel, Label: sync})
	b.F.Emit(Instr{Op: OpSync})
	b.F.Emit(Instr{Op: OpLabel, Label: reconv})
}

// IfElse runs then() where cond holds and els() elsewhere.
func (b *Builder) IfElse(cond Value, then, els func()) {
	b.want(cond, "ifelse", TPred)
	reconv := b.label("reconv")
	elseL := b.label("else")
	b.F.Emit(Instr{Op: OpSSY, Label: reconv})
	b.F.Emit(Instr{Op: OpBra, Label: elseL, Guard: cond, GuardNeg: true})
	then()
	b.F.Emit(Instr{Op: OpSync})
	b.F.Emit(Instr{Op: OpLabel, Label: elseL})
	els()
	b.F.Emit(Instr{Op: OpSync})
	b.F.Emit(Instr{Op: OpLabel, Label: reconv})
}

// While loops while cond() yields true, with per-lane divergence handled
// by the reconvergence stack.
func (b *Builder) While(cond func() Value, body func()) {
	exit := b.label("exit")
	head := b.label("head")
	sync := b.label("wsync")
	b.F.Emit(Instr{Op: OpSSY, Label: exit})
	b.F.Emit(Instr{Op: OpLabel, Label: head})
	c := cond()
	b.want(c, "while", TPred)
	b.F.Emit(Instr{Op: OpBra, Label: sync, Guard: c, GuardNeg: true})
	body()
	b.F.Emit(Instr{Op: OpBra, Label: head})
	b.F.Emit(Instr{Op: OpLabel, Label: sync})
	b.F.Emit(Instr{Op: OpSync})
	b.F.Emit(Instr{Op: OpLabel, Label: exit})
}

// ForRange runs body(i) for i in [start, end) with unit stride.
func (b *Builder) ForRange(start, end Value, body func(i Value)) {
	i := b.Var(start)
	b.While(func() Value {
		return b.Setp(sass.CmpLT, i, end)
	}, func() {
		body(i)
		b.Assign(i, b.AddI(i, 1))
	})
}

// Done verifies and returns the finished function.
func (b *Builder) Done() (*Func, error) {
	// Ensure termination.
	if n := len(b.F.Instrs); n == 0 || b.F.Instrs[n-1].Op != OpExit {
		b.Exit()
	}
	if err := b.F.Verify(); err != nil {
		return nil, err
	}
	return b.F, nil
}

// MustDone is Done, panicking on verification failure.
func (b *Builder) MustDone() *Func {
	f, err := b.Done()
	if err != nil {
		panic(err)
	}
	return f
}
