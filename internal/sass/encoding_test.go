package sass

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeSummaryFields(t *testing.T) {
	st := New(OpSTG, nil, []Operand{Mem(4, 0), R(0)})
	st.Mods.Width = W64
	st.Guard = PredGuard{Reg: 3, Neg: true}
	w := EncodeSummary(&st)
	if SummaryOpcode(w) != OpSTG {
		t.Errorf("opcode = %v", SummaryOpcode(w))
	}
	if !SummaryIsMem(w) || !SummaryIsMemWrite(w) || SummaryIsMemRead(w) {
		t.Error("store classification wrong")
	}
	if SummaryWidth(w) != 8 {
		t.Errorf("width = %d, want 8", SummaryWidth(w))
	}
	if !SummaryIsGuarded(w) {
		t.Error("guard bit missing")
	}
	if SummaryIsAtomic(w) || SummaryIsTexture(w) || SummaryIsNumeric(w) {
		t.Error("spurious class bits")
	}

	atom := New(OpATOM, []Operand{R(0)}, []Operand{Mem(4, 0), R(2)})
	atom.Mods.Atom = AtomADD
	w2 := EncodeSummary(&atom)
	if !SummaryIsAtomic(w2) || !SummaryIsMem(w2) {
		t.Error("atomic classification wrong")
	}

	spill := New(OpSTL, nil, []Operand{Mem(1, 8), R(0)})
	if w3 := EncodeSummary(&spill); !SummaryIsSpillFill(w3) {
		t.Error("STL not classified spill/fill")
	}
}

func TestEncodeSummaryMatchesOpcodePredicates(t *testing.T) {
	for op := Opcode(0); op < opCount; op++ {
		in := New(op, nil, nil)
		w := EncodeSummary(&in)
		if SummaryIsMem(w) != op.IsMem() ||
			SummaryIsCtrlXfer(w) != op.IsControlXfer() ||
			SummaryIsSync(w) != op.IsSync() ||
			SummaryIsNumeric(w) != op.IsNumeric() ||
			SummaryIsTexture(w) != op.IsTexture() {
			t.Errorf("%s: summary bits disagree with opcode predicates", op)
		}
	}
}

// randInstr builds an arbitrary but structurally valid instruction.
func randInstr(r *rand.Rand) Instruction {
	in := Instruction{
		Guard: PredGuard{Reg: uint8(r.Intn(8)), Neg: r.Intn(2) == 0},
		Op:    Opcode(r.Intn(int(opCount))),
		Mods: Mods{
			Width:    []Width{0, W8, W16, W32, W64, W128}[r.Intn(6)],
			Cmp:      CmpOp(r.Intn(6)),
			Logic:    LogicOp(r.Intn(5)),
			Atom:     AtomOp(r.Intn(8)),
			Mufu:     MufuFunc(r.Intn(7)),
			Vote:     VoteMode(r.Intn(3)),
			Shfl:     ShflMode(r.Intn(4)),
			Unsigned: r.Intn(2) == 0, SetCC: r.Intn(2) == 0,
			X: r.Intn(2) == 0, E: r.Intn(2) == 0, NegB: r.Intn(2) == 0,
		},
		Injected: r.Intn(2) == 0,
	}
	randOpd := func() Operand {
		switch r.Intn(7) {
		case 0:
			return R(uint8(r.Intn(255)))
		case 1:
			return P(uint8(r.Intn(8)))
		case 2:
			return Imm(int64(int32(r.Uint32())))
		case 3:
			return CMem(0, int64(r.Intn(1024)))
		case 4:
			return Mem(uint8(r.Intn(255)), int64(r.Intn(256)))
		case 5:
			return SReg(SpecialReg(r.Intn(16)))
		default:
			return Label("L" + string(rune('a'+r.Intn(26))))
		}
	}
	for i := 0; i < r.Intn(3); i++ {
		in.Dsts = append(in.Dsts, randOpd())
	}
	for i := 0; i < r.Intn(4); i++ {
		in.Srcs = append(in.Srcs, randOpd())
	}
	return in
}

// TestKernelBinaryRoundtripQuick: serialize/deserialize preserves kernels
// with arbitrary instruction content.
func TestKernelBinaryRoundtripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := &Kernel{
			Name:    "k",
			NumRegs: r.Intn(255),
			Labels:  map[string]int{"entry": 0},
		}
		k.AddParam("a", 8)
		k.AddParam("n", 4)
		count := int(n%32) + 1
		for i := 0; i < count; i++ {
			k.Instrs = append(k.Instrs, randInstr(r))
		}
		data, err := k.MarshalBinary()
		if err != nil {
			return false
		}
		var back Kernel
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return reflect.DeepEqual(k.Instrs, back.Instrs) &&
			reflect.DeepEqual(k.Params, back.Params) &&
			reflect.DeepEqual(k.Labels, back.Labels) &&
			k.NumRegs == back.NumRegs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var k Kernel
	if err := k.UnmarshalBinary([]byte("BOGUS")); err == nil {
		t.Error("garbage accepted")
	}
	if err := k.UnmarshalBinary([]byte("SASSKRN1\xff\xff\xff\xff")); err == nil {
		t.Error("truncated input accepted")
	}
}
