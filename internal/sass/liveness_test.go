package sass

import (
	"testing"
	"testing/quick"
)

func TestRegSetOps(t *testing.T) {
	var s RegSet
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(254)
	if !s.Has(0) || !s.Has(63) || !s.Has(64) || !s.Has(254) || s.Has(1) {
		t.Error("membership wrong")
	}
	if s.Count() != 4 {
		t.Errorf("count = %d", s.Count())
	}
	regs := s.Regs()
	want := []uint8{0, 63, 64, 254}
	if len(regs) != len(want) {
		t.Fatalf("regs = %v", regs)
	}
	for i := range want {
		if regs[i] != want[i] {
			t.Errorf("regs[%d] = %d, want %d", i, regs[i], want[i])
		}
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Error("remove failed")
	}
	var o RegSet
	o.Add(5)
	if !s.Union(&o) || !s.Has(5) {
		t.Error("union failed")
	}
	if s.Union(&o) {
		t.Error("idempotent union reported change")
	}
}

func TestRegSetQuick(t *testing.T) {
	f := func(rs []uint8) bool {
		var s RegSet
		seen := map[uint8]bool{}
		for _, r := range rs {
			s.Add(r)
			seen[r] = true
		}
		if s.Count() != len(seen) {
			return false
		}
		for r := range seen {
			if !s.Has(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredSetOps(t *testing.T) {
	var s PredSet
	s.Add(0)
	s.Add(6)
	if !s.Has(0) || !s.Has(6) || s.Has(3) || s.Count() != 2 {
		t.Error("pred set basic ops wrong")
	}
	if got := s.Preds(); len(got) != 2 || got[0] != 0 || got[1] != 6 {
		t.Errorf("preds = %v", got)
	}
}

// livenessOf is a helper computing liveness for a straight-line kernel.
func livenessOf(t *testing.T, k *Kernel) *LiveInfo {
	t.Helper()
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	return ComputeLiveness(cfg)
}

func TestLivenessStraightLine(t *testing.T) {
	// R2 = R0+R1; R3 = R2+R0; EXIT  (R3 dead, R0 live until idx 1)
	k := buildKernel(t, map[string]int{},
		New(OpIADD, []Operand{R(2)}, []Operand{R(0), R(1)}),
		New(OpIADD, []Operand{R(3)}, []Operand{R(2), R(0)}),
		New(OpEXIT, nil, nil),
	)
	li := livenessOf(t, k)
	gprs, _, _ := li.LiveAt(0)
	if !contains(gprs, 0) || !contains(gprs, 1) {
		t.Errorf("live at 0 = %v, want R0,R1", gprs)
	}
	if contains(gprs, 2) || contains(gprs, 3) {
		t.Errorf("live at 0 = %v: dead values reported live", gprs)
	}
	gprs1, _, _ := li.LiveAt(1)
	if !contains(gprs1, 2) || !contains(gprs1, 0) || contains(gprs1, 1) {
		t.Errorf("live at 1 = %v, want R0,R2", gprs1)
	}
	gprs2, _, _ := li.LiveAt(2)
	if len(gprs2) != 0 {
		t.Errorf("live at EXIT = %v, want none", gprs2)
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	// R5 defined before the loop and used inside it must stay live across
	// the backedge.
	k := buildKernel(t, map[string]int{"head": 1, "sync": 4, "exit": 5},
		New(OpMOV32, []Operand{R(5)}, []Operand{Imm(7)}),                                  // 0
		New(OpISETP, []Operand{P(0)}, []Operand{R(5), Imm(10), P(PT)}),                    // 1 head (uses R5)
		New(OpBRA, nil, []Operand{Label("sync")}).WithGuard(PredGuard{Reg: 0, Neg: true}), // 2
		New(OpBRA, nil, []Operand{Label("head")}),                                         // 3 backedge
		New(OpSYNC, nil, nil), // 4
		New(OpEXIT, nil, nil), // 5
	)
	li := livenessOf(t, k)
	for i := 1; i <= 3; i++ {
		gprs, _, _ := li.LiveAt(i)
		if !contains(gprs, 5) {
			t.Errorf("R5 not live at %d (loop-carried)", i)
		}
	}
}

func TestLivenessPredicatedDefDoesNotKill(t *testing.T) {
	// @P0 MOV R2, 1 is a partial def: R2's old value may survive, so R2
	// must be treated as live before the predicated write if used after.
	k := buildKernel(t, map[string]int{},
		New(OpMOV32, []Operand{R(2)}, []Operand{Imm(0)}),                              // 0
		New(OpMOV32, []Operand{R(2)}, []Operand{Imm(1)}).WithGuard(PredGuard{Reg: 0}), // 1
		New(OpIADD, []Operand{R(3)}, []Operand{R(2), Imm(0)}),                         // 2
		New(OpEXIT, nil, nil),
	)
	li := livenessOf(t, k)
	gprs, _, _ := li.LiveAt(1)
	if !contains(gprs, 2) {
		t.Errorf("R2 must be live across its own partial def; live=%v", gprs)
	}
}

func TestLivenessPredicates(t *testing.T) {
	k := buildKernel(t, map[string]int{},
		New(OpISETP, []Operand{P(1)}, []Operand{R(0), Imm(1), P(PT)}),                      // 0 def P1
		New(OpIADD, []Operand{R(2)}, []Operand{R(0), Imm(1)}).WithGuard(PredGuard{Reg: 1}), // 1 use P1
		New(OpEXIT, nil, nil),
	)
	li := livenessOf(t, k)
	_, preds0, _ := li.LiveAt(0)
	if contains(preds0, 1) {
		t.Errorf("P1 live before its def: %v", preds0)
	}
	_, preds1, _ := li.LiveAt(1)
	if !contains(preds1, 1) {
		t.Errorf("P1 not live at its use: %v", preds1)
	}
}

func TestLivenessCC(t *testing.T) {
	k := buildKernel(t, map[string]int{},
		withMods(New(OpIADD, []Operand{R(2)}, []Operand{R(0), R(1)}), Mods{SetCC: true}), // 0
		withMods(New(OpIADD, []Operand{R(3)}, []Operand{R(0), R(1)}), Mods{X: true}),     // 1 uses CC
		New(OpEXIT, nil, nil),
	)
	li := livenessOf(t, k)
	if li.CCLiveIn[0] {
		t.Error("CC live before its def")
	}
	if !li.CCLiveIn[1] {
		t.Error("CC not live between .CC and .X")
	}
}

func withMods(in Instruction, m Mods) Instruction {
	in.Mods = m
	return in
}

func contains(rs []uint8, r uint8) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}
