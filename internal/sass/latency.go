package sass

// The latency model shared by the simulator's scoreboard and the ptxas
// list scheduler. Keeping both sides on one table means the scheduler
// optimizes exactly the stall model the simulator charges, so a schedule
// that looks good statically is good in simulation (up to the dynamic
// memory cost the caches add at run time).

// IssueCost is the pipeline occupancy of one warp instruction: the cycles
// the issue stage is busy before the next instruction of the same warp can
// issue. Memory operations additionally pay a dynamic transaction cost
// computed by the memory hierarchy.
func IssueCost(in *Instruction) int {
	switch in.Op {
	case OpMUFU:
		return 8
	case OpIMUL, OpIMAD:
		return 2
	case OpBAR:
		return 2
	default:
		return 1
	}
}

// ResultLatency is the additional delay, beyond IssueCost, before the
// instruction's results (GPR/predicate/CC writes) are readable by a
// dependent instruction without stalling. The values model a Kepler-like
// in-order pipeline: short ALU forwarding latency, longer multiplier and
// special-function pipes, and load-use penalties graded by how far the
// target space sits from the core.
func ResultLatency(in *Instruction) int {
	switch in.Op {
	case OpMUFU:
		return 16
	case OpIMUL, OpIMAD, OpFFMA, OpFMUL:
		return 4
	case OpLDS, OpATOMS:
		return 12
	case OpLDC:
		return 8
	case OpLDL, OpSTL:
		return 16
	case OpLD, OpLDG, OpTLD, OpATOM:
		return 24
	case OpSHFL, OpVOTE:
		return 4
	default:
		if IsMemoryOp(in.Op) {
			return 8 // remaining memory ops (stores): write-buffer drain
		}
		if len(in.Dsts) == 0 && !in.Mods.SetCC {
			return 0 // no architectural result to wait on
		}
		return 2 // plain ALU forwarding
	}
}
