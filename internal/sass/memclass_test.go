package sass

import "testing"

// TestMemClassExhaustive pins that every defined opcode is deliberately
// classified: either it has a memClasses entry (a memory op) or it is on
// the explicit non-memory list below. Adding an opcode without deciding
// its memory behaviour fails here, which is the contract that keeps the
// instrumentation site selector, the memory-divergence profiler, and the
// dependence analysis agreeing on what a "memory op" is.
func TestMemClassExhaustive(t *testing.T) {
	nonMem := map[Opcode]bool{
		OpNOP: true, OpIADD: true, OpIADD32: true, OpIMUL: true,
		OpIMAD: true, OpISCADD: true, OpISETP: true, OpIMNMX: true,
		OpLOP: true, OpSHL: true, OpSHR: true, OpBFE: true, OpBFI: true,
		OpFLO: true, OpPOPC: true, OpSEL: true, OpMOV: true, OpMOV32: true,
		OpS2R: true, OpP2R: true, OpR2P: true, OpPSETP: true,
		OpFADD: true, OpFMUL: true, OpFFMA: true, OpFSETP: true,
		OpFMNMX: true, OpMUFU: true, OpF2I: true, OpI2F: true, OpF2F: true,
		OpBRA: true, OpSSY: true, OpSYNC: true, OpBRK: true, OpPBK: true,
		OpCAL: true, OpJCAL: true, OpRET: true, OpEXIT: true, OpBAR: true,
		OpVOTE: true, OpSHFL: true,
	}
	for op := Opcode(0); op < opCount; op++ {
		classified := IsMemoryOp(op)
		listed := nonMem[op]
		if classified == listed {
			t.Errorf("%s: memClasses entry = %v, on non-memory list = %v; every opcode needs exactly one",
				op, classified, listed)
		}
		if !classified {
			continue
		}
		c := memClasses[op]
		if !c.read && !c.write {
			t.Errorf("%s: memory op classified as neither read nor write", op)
		}
		if c.space == MemNone {
			t.Errorf("%s: memory op with MemNone space", op)
		}
	}
}

// TestMemClassMatchesQueries pins the legacy IsMem* query methods to the
// table so the two can never drift apart again.
func TestMemClassMatchesQueries(t *testing.T) {
	for op := Opcode(0); op < opCount; op++ {
		if op.IsMem() != IsMemoryOp(op) {
			t.Errorf("%s: IsMem() != IsMemoryOp()", op)
		}
		if op.IsAtomic() && !op.IsMem() {
			t.Errorf("%s: atomic but not a memory op", op)
		}
		if op.IsTexture() && MemSpaceOf(op) != MemTexture {
			t.Errorf("%s: IsTexture disagrees with MemSpaceOf", op)
		}
		if op.IsSpillOrFill() != (MemSpaceOf(op) == MemLocal) {
			t.Errorf("%s: IsSpillOrFill disagrees with MemSpaceOf", op)
		}
		if (op.IsMemRead() || op.IsMemWrite()) != op.IsMem() {
			t.Errorf("%s: read/write flags disagree with IsMem", op)
		}
	}
}
