package sass

// Liveness computes, per instruction, which GPRs and predicate registers
// are live (may be read before being overwritten on some path). SASSI uses
// this to spill exactly the live state at each instrumentation site —
// "the compiler knows exactly which registers to spill" (§3.2) — which is
// the key efficiency advantage over binary rewriting.

import "math/bits"

// RegSet is a dense bitset over the 256 GPR numbers.
type RegSet [4]uint64

// Add inserts register r.
func (s *RegSet) Add(r uint8) { s[r>>6] |= 1 << (r & 63) }

// Remove deletes register r.
func (s *RegSet) Remove(r uint8) { s[r>>6] &^= 1 << (r & 63) }

// Has reports whether register r is in the set.
func (s *RegSet) Has(r uint8) bool { return s[r>>6]&(1<<(r&63)) != 0 }

// Union merges o into s and reports whether s changed.
func (s *RegSet) Union(o *RegSet) bool {
	changed := false
	for i := range s {
		n := s[i] | o[i]
		if n != s[i] {
			changed = true
			s[i] = n
		}
	}
	return changed
}

// Regs returns the member registers in ascending order.
func (s *RegSet) Regs() []uint8 {
	var out []uint8
	for w := 0; w < 4; w++ {
		word := s[w]
		for word != 0 {
			r := uint8(w<<6) + uint8(bits.TrailingZeros64(word))
			out = append(out, r)
			word &= word - 1
		}
	}
	return out
}

// Count returns the set cardinality.
func (s *RegSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// PredSet is a bitset over the 8 predicate register numbers.
type PredSet uint8

// Add inserts predicate p.
func (s *PredSet) Add(p uint8) { *s |= 1 << p }

// Remove deletes predicate p.
func (s *PredSet) Remove(p uint8) { *s &^= 1 << p }

// Has reports whether predicate p is in the set.
func (s PredSet) Has(p uint8) bool { return s&(1<<p) != 0 }

// Union merges o into s and reports whether s changed.
func (s *PredSet) Union(o PredSet) bool {
	n := *s | o
	changed := n != *s
	*s = n
	return changed
}

// Preds returns member predicates in ascending order.
func (s PredSet) Preds() []uint8 {
	var out []uint8
	for p := uint8(0); p < 8; p++ {
		if s.Has(p) {
			out = append(out, p)
		}
	}
	return out
}

// Count returns the set cardinality.
func (s PredSet) Count() int {
	n := 0
	for p := uint8(0); p < 8; p++ {
		if s.Has(p) {
			n++
		}
	}
	return n
}

// LiveInfo holds the per-instruction liveness results for a kernel.
type LiveInfo struct {
	// LiveIn[i] is the set of GPRs live immediately before instruction i.
	LiveIn []RegSet
	// PredLiveIn[i] is the set of predicate registers live before i.
	PredLiveIn []PredSet
	// CCLiveIn[i] reports whether the condition code is live before i.
	CCLiveIn []bool
}

// instrDefsUses computes the def and use sets of one instruction. A
// predicated instruction's definition is treated as a partial def (the old
// value survives in inactive threads), so guarded defs do not kill — and
// the merged-in old value counts as a use, but only when the register may
// actually have been assigned on some path to this instruction (maybeR /
// maybeP / maybeCC). Without that refinement, an if-converted body's
// temporaries — first written under a predicate — would appear live all
// the way back to kernel entry, and every instrumentation site before
// them would pointlessly spill garbage. Nil maybe-sets mean "anything may
// be assigned" (fully conservative).
func instrDefsUses(in *Instruction, maybeR *RegSet, maybeP PredSet, maybeCC bool) (def, use RegSet, pdef, puse PredSet, ccDef, ccUse bool) {
	for _, r := range in.GPRSrcs() {
		use.Add(r)
	}
	for _, r := range in.GPRDsts() {
		if r == RZ {
			continue
		}
		if in.Guard.IsAlways() {
			def.Add(r)
		} else if maybeR == nil || maybeR.Has(r) {
			// Partial def: conservatively also a use (merge semantics) —
			// unless no path has ever assigned r, in which case the merge
			// reads garbage on every lane and no correct program depends
			// on it.
			use.Add(r)
		}
	}
	for _, p := range in.PredSrcs() {
		puse.Add(p)
	}
	for _, p := range in.PredDsts() {
		if in.Guard.IsAlways() {
			pdef.Add(p)
		} else if maybeP.Has(p) {
			puse.Add(p)
		}
	}
	if in.Mods.SetCC {
		ccDef = in.Guard.IsAlways()
		if !ccDef && maybeCC {
			ccUse = true
		}
	}
	if in.Mods.X {
		ccUse = true
	}
	// SP is implicitly live throughout any kernel that has a stack; callers
	// that care add it explicitly. JCAL/CAL clobber the ABI scratch regs but
	// SASSI inserts those itself, so no special casing here.
	return
}

// maybeAssignedAt computes, per instruction, the registers that may have
// been assigned (by any definition, predicated or not) on at least one
// path from kernel entry — a forward may-analysis. The stack pointer is
// ABI-initialized and counts as assigned at entry.
func maybeAssignedAt(cfg *CFG) (regs []RegSet, preds []PredSet, cc []bool) {
	k := cfg.Kernel
	n := len(k.Instrs)
	regs = make([]RegSet, n)
	preds = make([]PredSet, n)
	cc = make([]bool, n)
	nb := len(cfg.Blocks)
	// Per-block gen (every def in the block) and the block-in fixpoint.
	genR := make([]RegSet, nb)
	genP := make([]PredSet, nb)
	genCC := make([]bool, nb)
	addDefs := func(in *Instruction, r *RegSet, p *PredSet, c *bool) {
		for _, d := range in.GPRDsts() {
			if d != RZ {
				r.Add(d)
			}
		}
		for _, d := range in.PredDsts() {
			p.Add(d)
		}
		if in.Mods.SetCC {
			*c = true
		}
	}
	for bi, b := range cfg.Blocks {
		for i := b.Start; i < b.End; i++ {
			addDefs(&k.Instrs[i], &genR[bi], &genP[bi], &genCC[bi])
		}
	}
	inR := make([]RegSet, nb)
	inP := make([]PredSet, nb)
	inCC := make([]bool, nb)
	inR[0].Add(SP)
	for changed := true; changed; {
		changed = false
		for bi, b := range cfg.Blocks {
			var accR RegSet
			var accP PredSet
			accCC := false
			if bi == 0 {
				accR.Add(SP)
			}
			for _, pr := range b.Preds {
				accR.Union(&genR[pr])
				accR.Union(&inR[pr])
				accP.Union(genP[pr])
				accP.Union(inP[pr])
				accCC = accCC || genCC[pr] || inCC[pr]
			}
			if accR != inR[bi] || accP != inP[bi] || accCC != inCC[bi] {
				inR[bi], inP[bi], inCC[bi] = accR, accP, accCC
				changed = true
			}
		}
	}
	for bi, b := range cfg.Blocks {
		curR, curP, curCC := inR[bi], inP[bi], inCC[bi]
		for i := b.Start; i < b.End; i++ {
			regs[i], preds[i], cc[i] = curR, curP, curCC
			addDefs(&k.Instrs[i], &curR, &curP, &curCC)
		}
	}
	return regs, preds, cc
}

// ComputeLiveness runs backward dataflow over the CFG to a fixed point.
func ComputeLiveness(cfg *CFG) *LiveInfo {
	k := cfg.Kernel
	n := len(k.Instrs)
	li := &LiveInfo{
		LiveIn:     make([]RegSet, n),
		PredLiveIn: make([]PredSet, n),
		CCLiveIn:   make([]bool, n),
	}
	// Block-level out sets.
	blockOut := make([]RegSet, len(cfg.Blocks))
	blockPredOut := make([]PredSet, len(cfg.Blocks))
	blockCCOut := make([]bool, len(cfg.Blocks))

	// Precompute per-instruction def/use.
	defs := make([]RegSet, n)
	uses := make([]RegSet, n)
	pdefs := make([]PredSet, n)
	puses := make([]PredSet, n)
	ccdefs := make([]bool, n)
	ccuses := make([]bool, n)
	maybeR, maybeP, maybeCC := maybeAssignedAt(cfg)
	for i := range k.Instrs {
		defs[i], uses[i], pdefs[i], puses[i], ccdefs[i], ccuses[i] =
			instrDefsUses(&k.Instrs[i], &maybeR[i], maybeP[i], maybeCC[i])
	}

	changed := true
	for changed {
		changed = false
		for bi := len(cfg.Blocks) - 1; bi >= 0; bi-- {
			b := cfg.Blocks[bi]
			var out RegSet
			var pout PredSet
			ccout := false
			for _, s := range b.Succs {
				sb := cfg.Blocks[s]
				if sb.Start < n {
					out.Union(&li.LiveIn[sb.Start])
					pout.Union(li.PredLiveIn[sb.Start])
					ccout = ccout || li.CCLiveIn[sb.Start]
				}
			}
			// The CFG carries no call edges, so at a CAL (the callee may
			// read anything) and a RET (the return continuation is unknown)
			// everything must be treated as live. Only hand-authored call
			// trees contain these ops; compiled kernels are unaffected.
			if b.End > b.Start {
				switch k.Instrs[b.End-1].Op {
				case OpCAL, OpRET:
					for w := range out {
						out[w] = ^uint64(0)
					}
					out.Remove(RZ)
					pout = PredSet(0x7f)
					ccout = true
				}
			}
			blockOut[bi] = out
			blockPredOut[bi] = pout
			blockCCOut[bi] = ccout
			// Walk the block backward.
			live := out
			plive := pout
			cclive := ccout
			for i := b.End - 1; i >= b.Start; i-- {
				for _, r := range defs[i].Regs() {
					live.Remove(r)
				}
				live.Union(&uses[i])
				for _, p := range pdefs[i].Preds() {
					plive.Remove(p)
				}
				plive.Union(puses[i])
				if ccdefs[i] {
					cclive = false
				}
				if ccuses[i] {
					cclive = true
				}
				if live != li.LiveIn[i] {
					li.LiveIn[i] = live
					changed = true
				}
				if plive != li.PredLiveIn[i] {
					li.PredLiveIn[i] = plive
					changed = true
				}
				if cclive != li.CCLiveIn[i] {
					li.CCLiveIn[i] = cclive
					changed = true
				}
			}
		}
	}
	return li
}

// LiveAt returns the GPRs and predicates live immediately before
// instruction idx (the state a SASSI injection site must preserve).
func (li *LiveInfo) LiveAt(idx int) (gprs []uint8, preds []uint8, cc bool) {
	s := li.LiveIn[idx]
	return s.Regs(), li.PredLiveIn[idx].Preds(), li.CCLiveIn[idx]
}
