package sass

import "testing"

func TestOpcodeClassification(t *testing.T) {
	cases := []struct {
		op                                           Opcode
		mem, memR, memW, ctrl, sync, numeric, atomic bool
	}{
		{op: OpNOP},
		{op: OpIADD, numeric: true},
		{op: OpIMAD, numeric: true},
		{op: OpLOP, numeric: true},
		{op: OpSHL, numeric: true},
		{op: OpPOPC, numeric: true},
		{op: OpFADD, numeric: true},
		{op: OpFFMA, numeric: true},
		{op: OpMUFU, numeric: true},
		{op: OpF2I, numeric: true},
		{op: OpMOV},
		{op: OpS2R},
		{op: OpISETP},
		{op: OpLD, mem: true, memR: true},
		{op: OpST, mem: true, memW: true},
		{op: OpLDG, mem: true, memR: true},
		{op: OpSTG, mem: true, memW: true},
		{op: OpLDL, mem: true, memR: true},
		{op: OpSTL, mem: true, memW: true},
		{op: OpLDS, mem: true, memR: true},
		{op: OpSTS, mem: true, memW: true},
		{op: OpLDC, mem: true, memR: true},
		{op: OpATOM, mem: true, memR: true, memW: true, atomic: true},
		{op: OpATOMS, mem: true, memR: true, memW: true, atomic: true},
		{op: OpRED, mem: true, memW: true, atomic: true},
		{op: OpTLD, mem: true, memR: true},
		{op: OpBRA, ctrl: true},
		{op: OpSSY, sync: true},
		{op: OpSYNC, ctrl: true, sync: true},
		{op: OpCAL, ctrl: true},
		{op: OpJCAL, ctrl: true},
		{op: OpRET, ctrl: true},
		{op: OpEXIT, ctrl: true},
		{op: OpBAR, sync: true},
		{op: OpVOTE},
		{op: OpSHFL},
	}
	for _, c := range cases {
		if got := c.op.IsMem(); got != c.mem {
			t.Errorf("%s.IsMem() = %v, want %v", c.op, got, c.mem)
		}
		if got := c.op.IsMemRead(); got != c.memR {
			t.Errorf("%s.IsMemRead() = %v, want %v", c.op, got, c.memR)
		}
		if got := c.op.IsMemWrite(); got != c.memW {
			t.Errorf("%s.IsMemWrite() = %v, want %v", c.op, got, c.memW)
		}
		if got := c.op.IsControlXfer(); got != c.ctrl {
			t.Errorf("%s.IsControlXfer() = %v, want %v", c.op, got, c.ctrl)
		}
		if got := c.op.IsSync(); got != c.sync {
			t.Errorf("%s.IsSync() = %v, want %v", c.op, got, c.sync)
		}
		if got := c.op.IsNumeric(); got != c.numeric {
			t.Errorf("%s.IsNumeric() = %v, want %v", c.op, got, c.numeric)
		}
		if got := c.op.IsAtomic(); got != c.atomic {
			t.Errorf("%s.IsAtomic() = %v, want %v", c.op, got, c.atomic)
		}
	}
}

func TestOpcodeSpillOrFill(t *testing.T) {
	for op := Opcode(0); op < opCount; op++ {
		want := op == OpLDL || op == OpSTL
		if got := op.IsSpillOrFill(); got != want {
			t.Errorf("%s.IsSpillOrFill() = %v, want %v", op, got, want)
		}
	}
}

func TestOpcodeTexture(t *testing.T) {
	for op := Opcode(0); op < opCount; op++ {
		want := op == OpTLD
		if got := op.IsTexture(); got != want {
			t.Errorf("%s.IsTexture() = %v, want %v", op, got, want)
		}
	}
}

func TestOpcodeNamesRoundtrip(t *testing.T) {
	for op := Opcode(0); op < opCount; op++ {
		name := op.String()
		back, ok := OpcodeByName(name)
		if !ok {
			t.Errorf("OpcodeByName(%q) not found", name)
			continue
		}
		if back != op {
			t.Errorf("OpcodeByName(%q) = %v, want %v", name, back, op)
		}
	}
	if _, ok := OpcodeByName("NOTANOP"); ok {
		t.Error("bogus opcode name resolved")
	}
}

func TestCmpNamesRoundtrip(t *testing.T) {
	for c := CmpLT; c <= CmpNE; c++ {
		back, ok := CmpByName(c.String())
		if !ok || back != c {
			t.Errorf("cmp %v roundtrip failed", c)
		}
	}
}

func TestLogicNamesRoundtrip(t *testing.T) {
	for l := LogicAND; l <= LogicNOT; l++ {
		back, ok := LogicByName(l.String())
		if !ok || back != l {
			t.Errorf("logic %v roundtrip failed", l)
		}
	}
}

func TestAtomNamesRoundtrip(t *testing.T) {
	for a := AtomADD; a <= AtomCAS; a++ {
		back, ok := AtomByName(a.String())
		if !ok || back != a {
			t.Errorf("atom %v roundtrip failed", a)
		}
	}
}

func TestMufuNamesRoundtrip(t *testing.T) {
	for f := MufuRCP; f <= MufuLG2; f++ {
		back, ok := MufuByName(f.String())
		if !ok || back != f {
			t.Errorf("mufu %v roundtrip failed", f)
		}
	}
}

func TestVoteShflNamesRoundtrip(t *testing.T) {
	for v := VoteALL; v <= VoteBALLOT; v++ {
		back, ok := VoteByName(v.String())
		if !ok || back != v {
			t.Errorf("vote %v roundtrip failed", v)
		}
	}
	for s := ShflIDX; s <= ShflBFLY; s++ {
		back, ok := ShflByName(s.String())
		if !ok || back != s {
			t.Errorf("shfl %v roundtrip failed", s)
		}
	}
}

func TestSpecialRegNamesRoundtrip(t *testing.T) {
	for sr := SRLaneID; sr <= SRClock; sr++ {
		back, ok := SpecialRegByName(sr.String())
		if !ok || back != sr {
			t.Errorf("special reg %v roundtrip failed", sr)
		}
	}
}
