package sass

import (
	"fmt"
	"reflect"
	"testing"
)

// operandForms enumerates every operand form the ISA can express: each
// OperandKind with its boundary encodings (RZ, PT, negated predicates,
// negative immediates and offsets, every special register).
func operandForms() []Operand {
	forms := []Operand{
		R(0), R(7), R(NumGPR - 1), R(RZ),
		P(0), P(NumPred - 1), P(PT), NotP(2), NotP(PT),
		Imm(0), Imm(1), Imm(-1), Imm(0x7fffffff), Imm(-0x80000000),
		CMem(0, 0), CMem(3, 0x1fc),
		Mem(0, 0), Mem(4, 16), Mem(RZ, -8), Mem(NumGPR-1, 0x7ff8),
		Label("L0"), Label("reconverge"),
		Sym("sassi_before_handler"),
	}
	for sr := SRLaneID; sr <= SRClock; sr++ {
		forms = append(forms, SReg(sr))
	}
	return forms
}

// roundTrip marshals a kernel holding instrs and requires the decoded
// kernel to be bit-identical.
func roundTrip(t *testing.T, what string, instrs []Instruction) {
	t.Helper()
	k := &Kernel{Name: what, NumRegs: 32, Labels: map[string]int{"entry": 0}}
	k.AddParam("p", 8)
	k.Instrs = instrs
	data, err := k.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: marshal: %v", what, err)
	}
	var back Kernel
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatalf("%s: unmarshal: %v", what, err)
	}
	if len(back.Instrs) != len(instrs) {
		t.Fatalf("%s: %d instrs decoded, want %d", what, len(back.Instrs), len(instrs))
	}
	for i := range instrs {
		if !reflect.DeepEqual(instrs[i], back.Instrs[i]) {
			t.Fatalf("%s: instr %d changed across encode/decode:\n  in:  %+v\n  out: %+v",
				what, i, instrs[i], back.Instrs[i])
		}
	}
	if !reflect.DeepEqual(k.Params, back.Params) || !reflect.DeepEqual(k.Labels, back.Labels) ||
		k.NumRegs != back.NumRegs {
		t.Fatalf("%s: kernel envelope changed across encode/decode", what)
	}
}

// TestRoundTripEveryOpcodeOperandForm drives the binary encoding through
// every opcode × operand-form combination, in both destination and source
// position, and requires bit-exact decode. String() must also render every
// combination without panicking (disassembly calls it on arbitrary input).
func TestRoundTripEveryOpcodeOperandForm(t *testing.T) {
	forms := operandForms()
	for op := Opcode(0); op < Opcode(NumOpcodes()); op++ {
		var instrs []Instruction
		for _, f := range forms {
			d := New(op, []Operand{f}, nil)
			s := New(op, nil, []Operand{f})
			instrs = append(instrs, d, s)
			if got := d.String() + s.String(); got == "" {
				t.Fatalf("%s: empty rendering", op)
			}
		}
		roundTrip(t, fmt.Sprintf("op-%s", op), instrs)
	}
}

// TestRoundTripOperandFormPairs crosses every dst form with every src form
// on one representative opcode per operand-shape family, catching
// encode/decode state leaking between adjacent operands.
func TestRoundTripOperandFormPairs(t *testing.T) {
	forms := operandForms()
	for _, op := range []Opcode{OpIADD, OpLD, OpATOM, OpSHFL} {
		var instrs []Instruction
		for _, d := range forms {
			for _, s := range forms {
				instrs = append(instrs, New(op, []Operand{d}, []Operand{s, s}))
			}
		}
		roundTrip(t, fmt.Sprintf("pairs-%s", op), instrs)
	}
}

// TestRoundTripEveryModifier sweeps each modifier class exhaustively on
// the opcodes that consume it, plus every guard form and flag combination.
func TestRoundTripEveryModifier(t *testing.T) {
	var instrs []Instruction

	// ISETP/FSETP: comparison × combine logic × signedness.
	for _, op := range []Opcode{OpISETP, OpFSETP} {
		for cmp := CmpLT; cmp <= CmpNE; cmp++ {
			for lg := LogicAND; lg <= LogicNOT; lg++ {
				for _, uns := range []bool{false, true} {
					in := New(op, []Operand{P(0), P(1)}, []Operand{R(2), R(3), P(PT)})
					in.Mods.Cmp, in.Mods.Logic, in.Mods.Unsigned = cmp, lg, uns
					instrs = append(instrs, in)
				}
			}
		}
	}
	// LOP: every logic op.
	for lg := LogicAND; lg <= LogicNOT; lg++ {
		in := New(OpLOP, []Operand{R(0)}, []Operand{R(1), R(2)})
		in.Mods.Logic = lg
		instrs = append(instrs, in)
	}
	// Atomics: every atomic function × width, on all three opcodes.
	for _, op := range []Opcode{OpATOM, OpATOMS, OpRED} {
		for ao := AtomADD; ao <= AtomCAS; ao++ {
			for _, wd := range []Width{0, W32, W64} {
				in := New(op, []Operand{R(0)}, []Operand{Mem(2, 4), R(4), R(6)})
				in.Mods.Atom, in.Mods.Width = ao, wd
				instrs = append(instrs, in)
			}
		}
	}
	// MUFU: every special function.
	for fn := MufuRCP; fn <= MufuLG2; fn++ {
		in := New(OpMUFU, []Operand{R(0)}, []Operand{R(1)})
		in.Mods.Mufu = fn
		instrs = append(instrs, in)
	}
	// VOTE and SHFL: every mode.
	for vm := VoteALL; vm <= VoteBALLOT; vm++ {
		in := New(OpVOTE, []Operand{R(0)}, []Operand{P(1)})
		in.Mods.Vote = vm
		instrs = append(instrs, in)
	}
	for sm := ShflIDX; sm <= ShflBFLY; sm++ {
		in := New(OpSHFL, []Operand{P(0), R(1)}, []Operand{R(2), R(3), R(4)})
		in.Mods.Shfl = sm
		instrs = append(instrs, in)
	}
	// Memory family: every width × extended addressing.
	for _, op := range []Opcode{OpLD, OpST, OpLDG, OpSTG, OpLDL, OpSTL, OpLDS, OpSTS, OpLDC} {
		for _, wd := range []Width{0, W8, W16, W32, W64, W128} {
			for _, e := range []bool{false, true} {
				in := New(op, []Operand{R(0)}, []Operand{Mem(2, 8), R(4)})
				in.Mods.Width, in.Mods.E = wd, e
				instrs = append(instrs, in)
			}
		}
	}
	// Arithmetic flags: every SetCC/X/NegB/Unsigned combination.
	for mask := 0; mask < 16; mask++ {
		in := New(OpIADD, []Operand{R(0)}, []Operand{R(1), R(2)})
		in.Mods.SetCC = mask&1 != 0
		in.Mods.X = mask&2 != 0
		in.Mods.NegB = mask&4 != 0
		in.Mods.Unsigned = mask&8 != 0
		instrs = append(instrs, in)
	}
	// Guards: every predicate register, both polarities, plus Injected.
	for reg := uint8(0); reg <= PT; reg++ {
		for _, neg := range []bool{false, true} {
			in := New(OpBRA, nil, []Operand{Label("L1")})
			in.Guard = PredGuard{Reg: reg, Neg: neg}
			in.Injected = reg%2 == 0
			instrs = append(instrs, in)
		}
	}

	roundTrip(t, "modifiers", instrs)
	for i := range instrs {
		if instrs[i].String() == "" {
			t.Fatalf("instr %d renders empty", i)
		}
	}
}
