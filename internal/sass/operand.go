package sass

import (
	"fmt"
	"math"
)

// Register numbers. GPRs are 32 bits wide; 64-bit quantities occupy an
// aligned even/odd register pair, as on real hardware.
const (
	// RZ is the always-zero register. Writes to RZ are discarded.
	RZ = 255
	// NumGPR is the number of allocatable general purpose registers.
	NumGPR = 255
	// PT is the always-true predicate register. Writes to PT are discarded.
	PT = 7
	// NumPred is the number of allocatable predicate registers.
	NumPred = 7
	// SP is the register holding the per-thread stack pointer by ABI
	// convention (matches the paper's use of R1 in Figure 2).
	SP = 1
)

// OperandKind discriminates Operand variants.
type OperandKind uint8

// Operand kinds.
const (
	OpdNone  OperandKind = iota
	OpdReg               // GPR Rn
	OpdPred              // predicate register Pn
	OpdImm               // 32-bit immediate (integer or float bits)
	OpdCMem              // constant memory c[bank][offset]
	OpdMem               // memory reference [Rn + offset]
	OpdSReg              // special register (S2R source)
	OpdLabel             // branch/call target, resolved to an instruction index
	OpdSym               // external symbol (JCAL target), resolved at link time
)

// Operand is a single instruction operand. The zero value is OpdNone.
type Operand struct {
	Kind OperandKind
	Reg  uint8      // OpdReg: register number; OpdPred: predicate number; OpdMem: base register
	Neg  bool       // OpdPred source: negated (@!Pn or !Pn)
	Imm  int64      // OpdImm: value; OpdMem/OpdCMem: byte offset; OpdLabel: resolved index
	Bank uint8      // OpdCMem: constant bank
	SR   SpecialReg // OpdSReg
	Name string     // OpdLabel/OpdSym: symbolic name
}

// Convenience constructors.

// R returns a GPR operand.
func R(n uint8) Operand { return Operand{Kind: OpdReg, Reg: n} }

// P returns a predicate register operand.
func P(n uint8) Operand { return Operand{Kind: OpdPred, Reg: n} }

// NotP returns a negated predicate register operand.
func NotP(n uint8) Operand { return Operand{Kind: OpdPred, Reg: n, Neg: true} }

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: OpdImm, Imm: v} }

// FImm returns an immediate operand holding float32 bits.
func FImm(f float32) Operand {
	return Operand{Kind: OpdImm, Imm: int64(int32(math.Float32bits(f)))}
}

// CMem returns a constant-memory operand c[bank][offset].
func CMem(bank uint8, offset int64) Operand {
	return Operand{Kind: OpdCMem, Bank: bank, Imm: offset}
}

// Mem returns a memory-reference operand [Rbase+offset].
func Mem(base uint8, offset int64) Operand {
	return Operand{Kind: OpdMem, Reg: base, Imm: offset}
}

// SR returns a special-register operand.
func SReg(sr SpecialReg) Operand { return Operand{Kind: OpdSReg, SR: sr} }

// Label returns an unresolved label operand.
func Label(name string) Operand { return Operand{Kind: OpdLabel, Name: name, Imm: -1} }

// Sym returns an external symbol operand (JCAL target).
func Sym(name string) Operand { return Operand{Kind: OpdSym, Name: name} }

// IsReg reports whether the operand is a (non-RZ) general purpose register.
func (o Operand) IsReg() bool { return o.Kind == OpdReg && o.Reg != RZ }

// IsRZ reports whether the operand is the zero register.
func (o Operand) IsRZ() bool { return o.Kind == OpdReg && o.Reg == RZ }

// String formats the operand in SASS syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpdNone:
		return "<none>"
	case OpdReg:
		if o.Reg == RZ {
			return "RZ"
		}
		return fmt.Sprintf("R%d", o.Reg)
	case OpdPred:
		s := ""
		if o.Neg {
			s = "!"
		}
		if o.Reg == PT {
			return s + "PT"
		}
		return fmt.Sprintf("%sP%d", s, o.Reg)
	case OpdImm:
		if o.Imm < 0 {
			return fmt.Sprintf("-0x%x", -o.Imm)
		}
		return fmt.Sprintf("0x%x", o.Imm)
	case OpdCMem:
		return fmt.Sprintf("c[0x%x][0x%x]", o.Bank, o.Imm)
	case OpdMem:
		if o.Imm == 0 {
			if o.Reg == RZ {
				return "[RZ]"
			}
			return fmt.Sprintf("[R%d]", o.Reg)
		}
		base := "RZ"
		if o.Reg != RZ {
			base = fmt.Sprintf("R%d", o.Reg)
		}
		if o.Imm < 0 {
			return fmt.Sprintf("[%s-0x%x]", base, -o.Imm)
		}
		return fmt.Sprintf("[%s+0x%x]", base, o.Imm)
	case OpdSReg:
		return o.SR.String()
	case OpdLabel:
		if o.Name != "" {
			return o.Name
		}
		return fmt.Sprintf("@%d", o.Imm)
	case OpdSym:
		return o.Name
	}
	return "<bad>"
}
