// Package sass defines a SASS-like native GPU instruction set: the machine
// ISA produced by the backend compiler (internal/ptxas), consumed by the
// SIMT simulator (internal/sim), and instrumented by SASSI (internal/sassi).
//
// The ISA is modeled on NVIDIA's Kepler-generation SASS as described in the
// ISCA'15 SASSI paper: 32-bit general purpose registers R0..R254 plus the
// always-zero RZ, seven predicate registers P0..P6 plus the always-true PT,
// a 4-bit condition code, per-instruction predication, a divergence stack
// driven by SSY/SYNC, separate local/shared/global memory spaces reachable
// through a generic address window, and warp-wide collectives (VOTE, SHFL).
package sass

import "fmt"

// Opcode identifies a SASS instruction operation.
type Opcode uint8

// The instruction set. Groupings mirror Kepler SASS families.
const (
	OpNOP Opcode = iota

	// Integer arithmetic and logic.
	OpIADD   // IADD Rd, Ra, Rb|imm|c[][]        (.CC sets condition code, .X adds carry)
	OpIADD32 // IADD32I Rd, Ra, imm32
	OpIMUL   // IMUL Rd, Ra, Rb|imm
	OpIMAD   // IMAD Rd, Ra, Rb, Rc              (Rd = Ra*Rb + Rc)
	OpISCADD // ISCADD Rd, Ra, Rb, shift         (Rd = (Ra<<shift) + Rb)
	OpISETP  // ISETP.cmp.and Pd, Pq, Ra, Rb, Pc (integer compare, sets predicate pair)
	OpIMNMX  // IMNMX Rd, Ra, Rb, Pc             (min if Pc, max if !Pc)
	OpLOP    // LOP.op Rd, Ra, Rb|imm            (AND/OR/XOR/PASSB/NOT)
	OpSHL    // SHL Rd, Ra, Rb|imm
	OpSHR    // SHR Rd, Ra, Rb|imm               (.U32 logical, signed otherwise)
	OpBFE    // BFE Rd, Ra, Rb                   (bit field extract, pos|len<<8)
	OpBFI    // BFI Rd, Ra, Rb, Rc               (bit field insert)
	OpFLO    // FLO Rd, Ra                       (find leading one)
	OpPOPC   // POPC Rd, Ra                      (population count)
	OpSEL    // SEL Rd, Ra, Rb, Pc               (Rd = Pc ? Ra : Rb)
	OpMOV    // MOV Rd, Ra|c[][]
	OpMOV32  // MOV32I Rd, imm32
	OpS2R    // S2R Rd, SR                       (read special register)
	OpP2R    // P2R Rd, PR, Ra, mask             (predicates -> register)
	OpR2P    // R2P PR, Ra, mask                 (register -> predicates)
	OpPSETP  // PSETP.and.and Pd, Pq, Pa, Pb, Pc (predicate logic)

	// Floating point (32-bit unless .64 modifier).
	OpFADD  // FADD Rd, Ra, Rb
	OpFMUL  // FMUL Rd, Ra, Rb
	OpFFMA  // FFMA Rd, Ra, Rb, Rc
	OpFSETP // FSETP.cmp.and Pd, Pq, Ra, Rb, Pc
	OpFMNMX // FMNMX Rd, Ra, Rb, Pc
	OpMUFU  // MUFU.func Rd, Ra                  (rcp, rsq, sqrt, sin, cos, ex2, lg2)
	OpF2I   // F2I Rd, Ra
	OpI2F   // I2F Rd, Ra
	OpF2F   // F2F Rd, Ra                        (used for ftz/round; functional no-op here)

	// Memory. Generic LD/ST decode their space from the address window.
	OpLD    // LD.width Rd, [Ra+ofs]             (generic load)
	OpST    // ST.width [Ra+ofs], Rb             (generic store)
	OpLDG   // LDG.width Rd, [Ra+ofs]            (global load)
	OpSTG   // STG.width [Ra+ofs], Rb            (global store)
	OpLDL   // LDL.width Rd, [Ra+ofs]            (local: spills, stack)
	OpSTL   // STL.width [Ra+ofs], Rb
	OpLDS   // LDS.width Rd, [Ra+ofs]            (shared)
	OpSTS   // STS.width [Ra+ofs], Rb
	OpLDC   // LDC Rd, c[bank][Ra+ofs]           (constant load)
	OpATOM  // ATOM.op Rd, [Ra+ofs], Rb (, Rc for CAS)  (global atomic)
	OpATOMS // ATOMS.op Rd, [Ra+ofs], Rb         (shared atomic)
	OpRED   // RED.op [Ra+ofs], Rb               (reduction, no return)
	OpTLD   // TLD Rd, Ra (texture load stub; flagged texture for classification)

	// Control flow.
	OpBRA  // BRA target                         (predicated => conditional branch)
	OpSSY  // SSY target                         (push reconvergence point)
	OpSYNC // SYNC                               (pop divergence stack / reconverge)
	OpBRK  // BRK                                (break to PBK target)
	OpPBK  // PBK target                         (push break point)
	OpCAL  // CAL target                         (call, pushes return PC)
	OpJCAL // JCAL sym                           (call linked symbol; SASSI handlers)
	OpRET  // RET
	OpEXIT // EXIT                               (thread terminates)
	OpBAR  // BAR.SYNC                           (CTA-wide barrier)

	// Warp collectives.
	OpVOTE // VOTE.mode Rd|Pd, Pa                (ALL/ANY/BALLOT over active threads)
	OpSHFL // SHFL.mode Pd, Rd, Ra, Rb, Rc       (intra-warp shuffle)

	opCount
)

var opNames = [...]string{
	OpNOP:  "NOP",
	OpIADD: "IADD", OpIADD32: "IADD32I", OpIMUL: "IMUL", OpIMAD: "IMAD",
	OpISCADD: "ISCADD", OpISETP: "ISETP", OpIMNMX: "IMNMX", OpLOP: "LOP",
	OpSHL: "SHL", OpSHR: "SHR", OpBFE: "BFE", OpBFI: "BFI", OpFLO: "FLO",
	OpPOPC: "POPC", OpSEL: "SEL", OpMOV: "MOV", OpMOV32: "MOV32I",
	OpS2R: "S2R", OpP2R: "P2R", OpR2P: "R2P", OpPSETP: "PSETP",
	OpFADD: "FADD", OpFMUL: "FMUL", OpFFMA: "FFMA", OpFSETP: "FSETP",
	OpFMNMX: "FMNMX", OpMUFU: "MUFU", OpF2I: "F2I", OpI2F: "I2F", OpF2F: "F2F",
	OpLD: "LD", OpST: "ST", OpLDG: "LDG", OpSTG: "STG", OpLDL: "LDL",
	OpSTL: "STL", OpLDS: "LDS", OpSTS: "STS", OpLDC: "LDC",
	OpATOM: "ATOM", OpATOMS: "ATOMS", OpRED: "RED", OpTLD: "TLD",
	OpBRA: "BRA", OpSSY: "SSY", OpSYNC: "SYNC", OpBRK: "BRK", OpPBK: "PBK",
	OpCAL: "CAL", OpJCAL: "JCAL", OpRET: "RET", OpEXIT: "EXIT", OpBAR: "BAR",
	OpVOTE: "VOTE", OpSHFL: "SHFL",
}

// String returns the SASS mnemonic for the opcode.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// NumOpcodes reports the number of defined opcodes (for table sizing).
func NumOpcodes() int { return int(opCount) }

// OpcodeByName resolves a mnemonic back to its Opcode.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := opByName[name]
	return op, ok
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, opCount)
	for op, name := range opNames {
		if name != "" {
			m[name] = Opcode(op)
		}
	}
	return m
}()

// Instruction classification, mirroring the SASSIBeforeParams query methods
// of the paper (IsMem, IsControlXfer, IsNumeric, ...).

// IsMem reports whether the opcode touches memory. This and the other
// IsMem* queries are views over the single memClasses table in
// memclass.go, so every consumer (instrumentation site selection, the
// memory-divergence profiler, the dependence analysis) classifies
// memory operations identically.
func (o Opcode) IsMem() bool { return IsMemoryOp(o) }

// IsMemRead reports whether the opcode reads memory.
func (o Opcode) IsMemRead() bool {
	return int(o) < len(memClasses) && memClasses[o].read
}

// IsMemWrite reports whether the opcode writes memory.
func (o Opcode) IsMemWrite() bool {
	return int(o) < len(memClasses) && memClasses[o].write
}

// IsAtomic reports whether the opcode is an atomic read-modify-write.
func (o Opcode) IsAtomic() bool {
	return int(o) < len(memClasses) && memClasses[o].atomic
}

// IsSpillOrFill reports whether the opcode accesses thread-local (stack)
// memory, which is where the compiler places register spills.
func (o Opcode) IsSpillOrFill() bool { return MemSpaceOf(o) == MemLocal }

// IsControlXfer reports whether the opcode may transfer control.
func (o Opcode) IsControlXfer() bool {
	switch o {
	case OpBRA, OpBRK, OpCAL, OpJCAL, OpRET, OpEXIT, OpSYNC:
		return true
	}
	return false
}

// IsCall reports whether the opcode is a call.
func (o Opcode) IsCall() bool { return o == OpCAL || o == OpJCAL }

// IsSync reports whether the opcode is a synchronization operation.
func (o Opcode) IsSync() bool { return o == OpBAR || o == OpSYNC || o == OpSSY }

// IsNumeric reports whether the opcode performs arithmetic.
func (o Opcode) IsNumeric() bool {
	switch o {
	case OpIADD, OpIADD32, OpIMUL, OpIMAD, OpISCADD, OpIMNMX, OpLOP, OpSHL,
		OpSHR, OpBFE, OpBFI, OpFLO, OpPOPC, OpSEL, OpFADD, OpFMUL, OpFFMA,
		OpFMNMX, OpMUFU, OpF2I, OpI2F, OpF2F:
		return true
	}
	return false
}

// IsFloat reports whether the opcode operates on floating-point data.
func (o Opcode) IsFloat() bool {
	switch o {
	case OpFADD, OpFMUL, OpFFMA, OpFSETP, OpFMNMX, OpMUFU, OpF2I, OpI2F, OpF2F:
		return true
	}
	return false
}

// IsTexture reports whether the opcode accesses texture memory.
func (o Opcode) IsTexture() bool {
	return int(o) < len(memClasses) && memClasses[o].texture
}

// CmpOp is a comparison operator used by ISETP/FSETP modifiers.
type CmpOp uint8

// Comparison operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

var cmpNames = [...]string{"LT", "LE", "GT", "GE", "EQ", "NE"}

func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("CMP(%d)", uint8(c))
}

// CmpByName resolves a comparison mnemonic.
func CmpByName(s string) (CmpOp, bool) {
	for i, n := range cmpNames {
		if n == s {
			return CmpOp(i), true
		}
	}
	return 0, false
}

// LogicOp is a boolean operator used by LOP and the SETP combine stage.
type LogicOp uint8

// Logic operators.
const (
	LogicAND LogicOp = iota
	LogicOR
	LogicXOR
	LogicPASS // pass second operand through (LOP.PASS_B)
	LogicNOT  // bitwise complement of second operand
)

var logicNames = [...]string{"AND", "OR", "XOR", "PASS_B", "NOT"}

func (l LogicOp) String() string {
	if int(l) < len(logicNames) {
		return logicNames[l]
	}
	return fmt.Sprintf("LOGIC(%d)", uint8(l))
}

// LogicByName resolves a logic mnemonic.
func LogicByName(s string) (LogicOp, bool) {
	for i, n := range logicNames {
		if n == s {
			return LogicOp(i), true
		}
	}
	return 0, false
}

// AtomOp selects the read-modify-write function of ATOM/ATOMS/RED.
type AtomOp uint8

// Atomic operators.
const (
	AtomADD AtomOp = iota
	AtomMIN
	AtomMAX
	AtomAND
	AtomOR
	AtomXOR
	AtomEXCH
	AtomCAS
)

var atomNames = [...]string{"ADD", "MIN", "MAX", "AND", "OR", "XOR", "EXCH", "CAS"}

func (a AtomOp) String() string {
	if int(a) < len(atomNames) {
		return atomNames[a]
	}
	return fmt.Sprintf("ATOMOP(%d)", uint8(a))
}

// AtomByName resolves an atomic-op mnemonic.
func AtomByName(s string) (AtomOp, bool) {
	for i, n := range atomNames {
		if n == s {
			return AtomOp(i), true
		}
	}
	return 0, false
}

// MufuFunc selects the MUFU special function.
type MufuFunc uint8

// MUFU special functions.
const (
	MufuRCP MufuFunc = iota
	MufuRSQ
	MufuSQRT
	MufuSIN
	MufuCOS
	MufuEX2
	MufuLG2
)

var mufuNames = [...]string{"RCP", "RSQ", "SQRT", "SIN", "COS", "EX2", "LG2"}

func (f MufuFunc) String() string {
	if int(f) < len(mufuNames) {
		return mufuNames[f]
	}
	return fmt.Sprintf("MUFU(%d)", uint8(f))
}

// MufuByName resolves a MUFU function mnemonic.
func MufuByName(s string) (MufuFunc, bool) {
	for i, n := range mufuNames {
		if n == s {
			return MufuFunc(i), true
		}
	}
	return 0, false
}

// VoteMode selects the VOTE collective.
type VoteMode uint8

// VOTE modes.
const (
	VoteALL VoteMode = iota
	VoteANY
	VoteBALLOT
)

var voteNames = [...]string{"ALL", "ANY", "BALLOT"}

func (v VoteMode) String() string {
	if int(v) < len(voteNames) {
		return voteNames[v]
	}
	return fmt.Sprintf("VOTE(%d)", uint8(v))
}

// VoteByName resolves a VOTE mode mnemonic.
func VoteByName(s string) (VoteMode, bool) {
	for i, n := range voteNames {
		if n == s {
			return VoteMode(i), true
		}
	}
	return 0, false
}

// ShflMode selects the SHFL data movement pattern.
type ShflMode uint8

// SHFL modes.
const (
	ShflIDX ShflMode = iota
	ShflUP
	ShflDOWN
	ShflBFLY
)

var shflNames = [...]string{"IDX", "UP", "DOWN", "BFLY"}

func (s ShflMode) String() string {
	if int(s) < len(shflNames) {
		return shflNames[s]
	}
	return fmt.Sprintf("SHFL(%d)", uint8(s))
}

// ShflByName resolves a SHFL mode mnemonic.
func ShflByName(s string) (ShflMode, bool) {
	for i, n := range shflNames {
		if n == s {
			return ShflMode(i), true
		}
	}
	return 0, false
}

// SpecialReg identifies an S2R-readable special register.
type SpecialReg uint8

// Special registers.
const (
	SRLaneID SpecialReg = iota
	SRTidX
	SRTidY
	SRTidZ
	SRCtaidX
	SRCtaidY
	SRCtaidZ
	SRNTidX
	SRNTidY
	SRNTidZ
	SRNCtaidX
	SRNCtaidY
	SRNCtaidZ
	SRWarpID
	SRSMID
	SRClock
)

var srNames = [...]string{
	"SR_LANEID", "SR_TID.X", "SR_TID.Y", "SR_TID.Z",
	"SR_CTAID.X", "SR_CTAID.Y", "SR_CTAID.Z",
	"SR_NTID.X", "SR_NTID.Y", "SR_NTID.Z",
	"SR_NCTAID.X", "SR_NCTAID.Y", "SR_NCTAID.Z",
	"SR_WARPID", "SR_SMID", "SR_CLOCK",
}

func (s SpecialReg) String() string {
	if int(s) < len(srNames) {
		return srNames[s]
	}
	return fmt.Sprintf("SR(%d)", uint8(s))
}

// SpecialRegByName resolves a special-register name.
func SpecialRegByName(name string) (SpecialReg, bool) {
	for i, n := range srNames {
		if n == name {
			return SpecialReg(i), true
		}
	}
	return 0, false
}
