package sass

// MemSpace is the statically-known address space of a memory opcode. It is
// the single source of truth shared by the instrumentation site selector
// (sassi.BeforeMem via Opcode.IsMem), the memory-divergence profiler's
// static site filter, and the dependence analysis in
// internal/analysis/deps — all of which must agree on which opcodes touch
// memory and where.
type MemSpace uint8

// Address spaces an opcode can be statically attributed to. Generic means
// the space is decoded from the address window at run time (LD/ST and the
// global-flavored ops all take generic addresses, so a "global" load can
// legally hit the shared or local window).
const (
	MemNone MemSpace = iota
	MemGeneric
	MemGlobal
	MemShared
	MemLocal
	MemConst
	MemTexture
)

var memSpaceNames = [...]string{
	"none", "generic", "global", "shared", "local", "const", "texture",
}

func (s MemSpace) String() string {
	if int(s) < len(memSpaceNames) {
		return memSpaceNames[s]
	}
	return "MemSpace(?)"
}

// memClass is one opcode's memory behaviour.
type memClass struct {
	space   MemSpace
	read    bool
	write   bool
	atomic  bool
	texture bool
}

// memClasses is the per-opcode classification table. Opcodes absent from
// the table do not touch memory (MemNone). TestMemClassExhaustive pins
// that every defined opcode has a deliberate entry here or is a known
// non-memory op, so adding an opcode without classifying it fails CI.
var memClasses = [opCount]memClass{
	OpLD:    {space: MemGeneric, read: true},
	OpST:    {space: MemGeneric, write: true},
	OpLDG:   {space: MemGlobal, read: true},
	OpSTG:   {space: MemGlobal, write: true},
	OpLDL:   {space: MemLocal, read: true},
	OpSTL:   {space: MemLocal, write: true},
	OpLDS:   {space: MemShared, read: true},
	OpSTS:   {space: MemShared, write: true},
	OpLDC:   {space: MemConst, read: true},
	OpATOM:  {space: MemGlobal, read: true, write: true, atomic: true},
	OpATOMS: {space: MemShared, read: true, write: true, atomic: true},
	OpRED:   {space: MemGlobal, write: true, atomic: true},
	OpTLD:   {space: MemTexture, read: true, texture: true},
}

// MemSpaceOf returns the statically-known address space of the opcode, or
// MemNone for non-memory opcodes.
func MemSpaceOf(o Opcode) MemSpace {
	if int(o) >= len(memClasses) {
		return MemNone
	}
	return memClasses[o].space
}

// IsMemoryOp reports whether the opcode touches memory. It is the
// table-driven equivalent of IsMem, exported under the name the
// SASSIBeforeParams-style query methods use.
func IsMemoryOp(o Opcode) bool { return MemSpaceOf(o) != MemNone }

// GenericAddressed reports whether the opcode's address operand is a
// generic-space address (decoded through the local/shared/global windows
// at run time) as opposed to a space-relative offset. LDG/STG/TLD and the
// global atomics carry generic addresses even though their table space
// says "global": the simulator routes them through the generic decoder.
func GenericAddressed(o Opcode) bool {
	switch MemSpaceOf(o) {
	case MemGeneric, MemGlobal, MemTexture:
		return true
	}
	return false
}
