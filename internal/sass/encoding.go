package sass

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Summary-word encoding. SASSI passes each instrumented instruction's static
// properties to handlers as a single word (the paper's insEncoding field).
// The layout is:
//
//	bits  0..7   opcode
//	bits  8..15  class flags (mem, memRead, memWrite, ctrlXfer, sync,
//	             numeric, texture, spillOrFill)
//	bits 16..20  log2-ish width code (bytes)
//	bit  21      guarded (instruction carries a non-trivial predicate)
//	bits 22..24  guard register
//	bit  25      guard negated
//	bit  26      sets CC
//	bit  27      atomic
type summaryBits uint32

// Class flag bits within the summary word.
const (
	sumMem uint32 = 1 << (8 + iota)
	sumMemRead
	sumMemWrite
	sumCtrlXfer
	sumSync
	sumNumeric
	sumTexture
	sumSpillFill
)

// EncodeSummary packs the instruction's opcode and static classification
// into one word, the value handlers receive as the instruction encoding.
func EncodeSummary(in *Instruction) uint32 {
	w := uint32(in.Op)
	if in.Op.IsMem() {
		w |= sumMem
	}
	if in.Op.IsMemRead() {
		w |= sumMemRead
	}
	if in.Op.IsMemWrite() {
		w |= sumMemWrite
	}
	if in.Op.IsControlXfer() {
		w |= sumCtrlXfer
	}
	if in.Op.IsSync() {
		w |= sumSync
	}
	if in.Op.IsNumeric() {
		w |= sumNumeric
	}
	if in.Op.IsTexture() {
		w |= sumTexture
	}
	if in.Op.IsSpillOrFill() {
		w |= sumSpillFill
	}
	w |= uint32(in.Mods.Width.Bytes()&0x1f) << 16
	if !in.Guard.IsAlways() {
		w |= 1 << 21
		w |= uint32(in.Guard.Reg&0x7) << 22
		if in.Guard.Neg {
			w |= 1 << 25
		}
	}
	if in.Mods.SetCC {
		w |= 1 << 26
	}
	if in.Op.IsAtomic() {
		w |= 1 << 27
	}
	return w
}

// SummaryOpcode extracts the opcode from a summary word.
func SummaryOpcode(w uint32) Opcode { return Opcode(w & 0xff) }

// Summary classification helpers used by handler-side params objects.
func SummaryIsMem(w uint32) bool       { return w&sumMem != 0 }
func SummaryIsMemRead(w uint32) bool   { return w&sumMemRead != 0 }
func SummaryIsMemWrite(w uint32) bool  { return w&sumMemWrite != 0 }
func SummaryIsCtrlXfer(w uint32) bool  { return w&sumCtrlXfer != 0 }
func SummaryIsSync(w uint32) bool      { return w&sumSync != 0 }
func SummaryIsNumeric(w uint32) bool   { return w&sumNumeric != 0 }
func SummaryIsTexture(w uint32) bool   { return w&sumTexture != 0 }
func SummaryIsSpillFill(w uint32) bool { return w&sumSpillFill != 0 }
func SummaryIsAtomic(w uint32) bool    { return w&(1<<27) != 0 }
func SummaryWidth(w uint32) int        { return int(w >> 16 & 0x1f) }
func SummaryIsGuarded(w uint32) bool   { return w&(1<<21) != 0 }

// Binary serialization of compiled kernels, so that cmd tools can cache
// compiled+instrumented programs on disk ("cubin" analog).

const kernelMagic = "SASSKRN1"

// MarshalBinary serializes the kernel to a compact byte format.
func (k *Kernel) MarshalBinary() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(kernelMagic)
	writeStr := func(s string) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
		b.Write(n[:])
		b.WriteString(s)
	}
	writeU32 := func(v uint32) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], v)
		b.Write(n[:])
	}
	writeStr(k.Name)
	writeU32(uint32(k.NumRegs))
	writeU32(uint32(k.NumPreds))
	writeU32(uint32(k.SharedBytes))
	writeU32(uint32(k.LocalBytes))
	writeU32(uint32(len(k.Params)))
	for _, p := range k.Params {
		writeStr(p.Name)
		writeU32(uint32(p.Size))
		writeU32(uint32(p.Offset))
	}
	writeU32(uint32(len(k.Labels)))
	for name, idx := range k.Labels {
		writeStr(name)
		writeU32(uint32(idx))
	}
	writeU32(uint32(len(k.Instrs)))
	for i := range k.Instrs {
		if err := marshalInstr(&b, &k.Instrs[i], writeStr, writeU32); err != nil {
			return nil, fmt.Errorf("kernel %s instr %d: %w", k.Name, i, err)
		}
	}
	return b.Bytes(), nil
}

func marshalInstr(b *bytes.Buffer, in *Instruction, writeStr func(string), writeU32 func(uint32)) error {
	b.WriteByte(byte(in.Op))
	b.WriteByte(in.Guard.Reg)
	flags := byte(0)
	if in.Guard.Neg {
		flags |= 1
	}
	if in.Injected {
		flags |= 2
	}
	b.WriteByte(flags)
	// Mods.
	b.WriteByte(byte(in.Mods.Width))
	b.WriteByte(byte(in.Mods.Cmp))
	b.WriteByte(byte(in.Mods.Logic))
	b.WriteByte(byte(in.Mods.Atom))
	b.WriteByte(byte(in.Mods.Mufu))
	b.WriteByte(byte(in.Mods.Vote))
	b.WriteByte(byte(in.Mods.Shfl))
	mflags := byte(0)
	if in.Mods.Unsigned {
		mflags |= 1
	}
	if in.Mods.SetCC {
		mflags |= 2
	}
	if in.Mods.X {
		mflags |= 4
	}
	if in.Mods.E {
		mflags |= 8
	}
	if in.Mods.NegB {
		mflags |= 16
	}
	b.WriteByte(mflags)
	writeOpds := func(ops []Operand) error {
		b.WriteByte(byte(len(ops)))
		for _, o := range ops {
			b.WriteByte(byte(o.Kind))
			b.WriteByte(o.Reg)
			neg := byte(0)
			if o.Neg {
				neg = 1
			}
			b.WriteByte(neg)
			b.WriteByte(o.Bank)
			b.WriteByte(byte(o.SR))
			var v [8]byte
			binary.LittleEndian.PutUint64(v[:], uint64(o.Imm))
			b.Write(v[:])
			writeStr(o.Name)
		}
		return nil
	}
	if err := writeOpds(in.Dsts); err != nil {
		return err
	}
	return writeOpds(in.Srcs)
}

// UnmarshalBinary deserializes a kernel written by MarshalBinary.
func (k *Kernel) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic := make([]byte, len(kernelMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != kernelMagic {
		return fmt.Errorf("bad kernel magic")
	}
	readU32 := func() (uint32, error) {
		var n [4]byte
		if _, err := io.ReadFull(r, n[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(n[:]), nil
	}
	// Cap a declared element count by the bytes actually remaining, so a
	// corrupted count cannot drive a huge allocation before the element
	// reads fail.
	checkCount := func(what string, n, minSize int) error {
		if n < 0 || n*minSize > r.Len() {
			return fmt.Errorf("%s count %d exceeds remaining input (%d bytes)", what, n, r.Len())
		}
		return nil
	}
	readStr := func() (string, error) {
		n, err := readU32()
		if err != nil {
			return "", err
		}
		if n == 0 {
			// bytes.Reader returns io.EOF for empty reads at end-of-input.
			return "", nil
		}
		if n > uint32(r.Len()) {
			return "", fmt.Errorf("string length %d exceeds remaining input", n)
		}
		s := make([]byte, n)
		if _, err := r.Read(s); err != nil {
			return "", err
		}
		return string(s), nil
	}
	var err error
	if k.Name, err = readStr(); err != nil {
		return err
	}
	geti := func() int {
		v, e := readU32()
		if e != nil {
			err = e
		}
		return int(v)
	}
	k.NumRegs = geti()
	k.NumPreds = geti()
	k.SharedBytes = geti()
	k.LocalBytes = geti()
	np := geti()
	if err != nil {
		return err
	}
	if err := checkCount("param", np, 12); err != nil {
		return err
	}
	k.Params = make([]ParamDesc, np)
	for i := range k.Params {
		if k.Params[i].Name, err = readStr(); err != nil {
			return err
		}
		k.Params[i].Size = geti()
		k.Params[i].Offset = geti()
	}
	nl := geti()
	if err != nil {
		return err
	}
	if err := checkCount("label", nl, 8); err != nil {
		return err
	}
	k.Labels = make(map[string]int, nl)
	for i := 0; i < nl; i++ {
		name, e := readStr()
		if e != nil {
			return e
		}
		k.Labels[name] = geti()
	}
	ni := geti()
	if err != nil {
		return err
	}
	if err := checkCount("instruction", ni, 13); err != nil {
		return err
	}
	k.Instrs = make([]Instruction, ni)
	for i := range k.Instrs {
		if err := unmarshalInstr(r, &k.Instrs[i], readStr); err != nil {
			return fmt.Errorf("instr %d: %w", i, err)
		}
	}
	return nil
}

func unmarshalInstr(r *bytes.Reader, in *Instruction, readStr func() (string, error)) error {
	hdr := make([]byte, 11)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	in.Op = Opcode(hdr[0])
	in.Guard = PredGuard{Reg: hdr[1], Neg: hdr[2]&1 != 0}
	in.Injected = hdr[2]&2 != 0
	in.Mods = Mods{
		Width: Width(hdr[3]), Cmp: CmpOp(hdr[4]), Logic: LogicOp(hdr[5]),
		Atom: AtomOp(hdr[6]), Mufu: MufuFunc(hdr[7]), Vote: VoteMode(hdr[8]),
		Shfl: ShflMode(hdr[9]),
	}
	in.Mods.Unsigned = hdr[10]&1 != 0
	in.Mods.SetCC = hdr[10]&2 != 0
	in.Mods.X = hdr[10]&4 != 0
	in.Mods.E = hdr[10]&8 != 0
	in.Mods.NegB = hdr[10]&16 != 0
	readOpds := func() ([]Operand, error) {
		nb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		if nb == 0 {
			return nil, nil
		}
		ops := make([]Operand, nb)
		for i := range ops {
			raw := make([]byte, 13)
			if _, err := io.ReadFull(r, raw); err != nil {
				return nil, err
			}
			ops[i] = Operand{
				Kind: OperandKind(raw[0]),
				Reg:  raw[1],
				Neg:  raw[2] != 0,
				Bank: raw[3],
				SR:   SpecialReg(raw[4]),
				Imm:  int64(binary.LittleEndian.Uint64(raw[5:])),
			}
			if ops[i].Name, err = readStr(); err != nil {
				return nil, err
			}
		}
		return ops, nil
	}
	var err error
	if in.Dsts, err = readOpds(); err != nil {
		return err
	}
	in.Srcs, err = readOpds()
	return err
}
