package sass

import (
	"testing"
	"testing/quick"
)

// buildKernel assembles a kernel from instructions and resolves labels.
func buildKernel(t *testing.T, labels map[string]int, instrs ...Instruction) *Kernel {
	t.Helper()
	k := &Kernel{Name: "t", Instrs: instrs, Labels: labels}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	return k
}

// ifKernel: the canonical SSY/@!P BRA/SYNC diamond.
func ifKernel(t *testing.T) *Kernel {
	return buildKernel(t,
		map[string]int{"sync": 4, "reconv": 5},
		New(OpISETP, []Operand{P(0)}, []Operand{R(0), Imm(1), P(PT)}),                     // 0
		New(OpSSY, nil, []Operand{Label("reconv")}),                                       // 1
		New(OpBRA, nil, []Operand{Label("sync")}).WithGuard(PredGuard{Reg: 0, Neg: true}), // 2
		New(OpIADD, []Operand{R(1)}, []Operand{R(1), Imm(1)}),                             // 3 (then body)
		New(OpSYNC, nil, nil), // 4
		New(OpEXIT, nil, nil), // 5
	)
}

func TestCFGIfDiamond(t *testing.T) {
	cfg, err := BuildCFG(ifKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: [0..2] (ends with BRA), [3..3] wait—the SSY target also splits.
	if cfg.NumBlocks() < 3 {
		t.Fatalf("expected >=3 blocks, got %d", cfg.NumBlocks())
	}
	// Block containing the conditional BRA has two successors.
	b := cfg.BlockOf(2)
	if len(b.Succs) < 2 {
		t.Errorf("branch block successors = %v, want >= 2", b.Succs)
	}
	// Exit block has none.
	exit := cfg.BlockOf(5)
	if len(exit.Succs) != 0 {
		t.Errorf("exit block successors = %v", exit.Succs)
	}
}

func TestCFGLoop(t *testing.T) {
	k := buildKernel(t,
		map[string]int{"head": 1, "sync": 4, "exit": 5},
		New(OpSSY, nil, []Operand{Label("exit")}),                                         // 0
		New(OpISETP, []Operand{P(0)}, []Operand{R(0), Imm(10), P(PT)}),                    // 1 head
		New(OpBRA, nil, []Operand{Label("sync")}).WithGuard(PredGuard{Reg: 0, Neg: true}), // 2
		New(OpBRA, nil, []Operand{Label("head")}),                                         // 3 backedge
		New(OpSYNC, nil, nil),                                                             // 4
		New(OpEXIT, nil, nil),                                                             // 5
	)
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	// The backedge block's successor must be the loop head's block.
	back := cfg.BlockOf(3)
	headBlock := cfg.BlockOf(1).ID
	found := false
	for _, s := range back.Succs {
		if s == headBlock {
			found = true
		}
	}
	if !found {
		t.Errorf("backedge block succs = %v, want to include %d", back.Succs, headBlock)
	}
	// Preds of head include both entry and backedge blocks.
	if len(cfg.Blocks[headBlock].Preds) < 2 {
		t.Errorf("loop head preds = %v, want >= 2", cfg.Blocks[headBlock].Preds)
	}
}

func TestCFGBlockOfCoversAll(t *testing.T) {
	k := ifKernel(t)
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range k.Instrs {
		b := cfg.BlockOf(i)
		if i < b.Start || i >= b.End {
			t.Errorf("instr %d not inside its block [%d,%d)", i, b.Start, b.End)
		}
	}
}

func TestCFGEdgesAreSymmetricQuick(t *testing.T) {
	// Property: every successor edge has a matching predecessor edge.
	check := func(k *Kernel) bool {
		cfg, err := BuildCFG(k)
		if err != nil {
			return true // not a CFG property failure
		}
		for _, b := range cfg.Blocks {
			for _, s := range b.Succs {
				ok := false
				for _, p := range cfg.Blocks[s].Preds {
					if p == b.ID {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	f := func(branchAt, target uint8) bool {
		n := 8
		k := &Kernel{Name: "q", Labels: map[string]int{}}
		for i := 0; i < n; i++ {
			k.Instrs = append(k.Instrs, New(OpIADD, []Operand{R(0)}, []Operand{R(0), Imm(1)}))
		}
		k.Instrs = append(k.Instrs, New(OpEXIT, nil, nil))
		bi := int(branchAt) % n
		ti := int(target) % (n + 1)
		k.Instrs[bi] = New(OpBRA, nil, []Operand{Label("t")}).WithGuard(PredGuard{Reg: 0})
		k.Labels["t"] = ti
		if err := k.ResolveLabels(); err != nil {
			return true
		}
		return check(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
