package sass

import "fmt"

// Block is a basic block: a maximal straight-line run of instructions.
// Start is inclusive, End exclusive (instruction indices into the kernel).
type Block struct {
	ID    int
	Start int
	End   int
	Succs []int // successor block IDs
	Preds []int // predecessor block IDs
}

// CFG is the control flow graph of a kernel. SASSI computes it from the
// final machine code — one of the advantages the paper claims for
// compiler-based instrumentation over binary rewriting (§9.4, §10.1).
type CFG struct {
	Kernel *Kernel
	Blocks []*Block
	// blockOf maps an instruction index to its containing block ID.
	blockOf []int
}

// leadersOf marks basic-block leader instructions.
func leadersOf(k *Kernel) []bool {
	n := len(k.Instrs)
	lead := make([]bool, n+1)
	if n > 0 {
		lead[0] = true
	}
	for i := range k.Instrs {
		in := &k.Instrs[i]
		switch in.Op {
		case OpBRA:
			if t, ok := in.BranchTarget(); ok && t.Kind == OpdLabel {
				if t.Imm >= 0 && int(t.Imm) <= n {
					lead[t.Imm] = true
				}
			}
			if i+1 <= n {
				lead[i+1] = true
			}
		case OpEXIT, OpRET, OpBRK:
			if i+1 <= n {
				lead[i+1] = true
			}
		case OpSSY, OpPBK:
			// SSY/PBK targets are reconvergence points: block leaders.
			if t, ok := in.BranchTarget(); ok && t.Kind == OpdLabel {
				if t.Imm >= 0 && int(t.Imm) <= n {
					lead[t.Imm] = true
				}
			}
		case OpSYNC:
			// SYNC may transfer control (pop to the reconvergence point).
			if i+1 <= n {
				lead[i+1] = true
			}
		case OpCAL:
			// Calls return to the next instruction; treat as fallthrough
			// but keep the callee boundary clean.
			if t, ok := in.BranchTarget(); ok && t.Kind == OpdLabel {
				if t.Imm >= 0 && int(t.Imm) <= n {
					lead[t.Imm] = true
				}
			}
			if i+1 <= n {
				lead[i+1] = true
			}
		}
	}
	return lead
}

// BuildCFG partitions the kernel into basic blocks and wires up edges.
// Labels must be resolved first.
func BuildCFG(k *Kernel) (*CFG, error) {
	n := len(k.Instrs)
	if n == 0 {
		return nil, fmt.Errorf("kernel %s: empty", k.Name)
	}
	lead := leadersOf(k)
	cfg := &CFG{Kernel: k, blockOf: make([]int, n)}
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || lead[i] {
			b := &Block{ID: len(cfg.Blocks), Start: start, End: i}
			cfg.Blocks = append(cfg.Blocks, b)
			for j := start; j < i; j++ {
				cfg.blockOf[j] = b.ID
			}
			start = i
		}
	}
	blockAt := func(idx int) (int, bool) {
		if idx < 0 || idx >= n {
			return 0, false
		}
		return cfg.blockOf[idx], true
	}
	addEdge := func(from, to int) {
		for _, s := range cfg.Blocks[from].Succs {
			if s == to {
				return
			}
		}
		cfg.Blocks[from].Succs = append(cfg.Blocks[from].Succs, to)
		cfg.Blocks[to].Preds = append(cfg.Blocks[to].Preds, from)
	}
	for _, b := range cfg.Blocks {
		last := &k.Instrs[b.End-1]
		switch last.Op {
		case OpBRA:
			if t, ok := last.BranchTarget(); ok && t.Kind == OpdLabel {
				if tb, ok := blockAt(int(t.Imm)); ok {
					addEdge(b.ID, tb)
				}
			}
			if !last.Guard.IsAlways() {
				// Conditional: may fall through.
				if fb, ok := blockAt(b.End); ok {
					addEdge(b.ID, fb)
				}
			}
		case OpEXIT:
			// No successors when unconditional. A guarded EXIT only
			// retires the lanes whose guard passes; the remaining lanes
			// fall through, so the next block is a real successor (the
			// simulator advances the PC whenever Active is non-empty).
			if !last.Guard.IsAlways() {
				if fb, ok := blockAt(b.End); ok {
					addEdge(b.ID, fb)
				}
			}
		case OpRET:
			// No successors: the return target lives on the call stack,
			// and the scheduler pops it regardless of the guard.
		case OpBRK:
			// Break transfers to the PBK target; conservatively treat
			// as also possibly falling through for liveness purposes.
			if fb, ok := blockAt(b.End); ok {
				addEdge(b.ID, fb)
			}
		case OpSYNC:
			// Reconvergence pop: control continues either at the next
			// instruction or at a deferred path. For liveness we add the
			// fallthrough edge; divergent-path values are kept live by
			// the SSY-target edges added when the branch was processed.
			if fb, ok := blockAt(b.End); ok {
				addEdge(b.ID, fb)
			}
		default:
			if fb, ok := blockAt(b.End); ok {
				addEdge(b.ID, fb)
			}
		}
		// SSY anywhere in the block makes its reconvergence target
		// reachable from this block (a deferred path may resume there).
		for j := b.Start; j < b.End; j++ {
			in := &k.Instrs[j]
			if in.Op == OpSSY || in.Op == OpPBK {
				if t, ok := in.BranchTarget(); ok && t.Kind == OpdLabel {
					if tb, ok := blockAt(int(t.Imm)); ok {
						addEdge(b.ID, tb)
					}
				}
			}
		}
	}
	return cfg, nil
}

// BlockOf returns the basic block containing instruction idx.
func (c *CFG) BlockOf(idx int) *Block {
	return c.Blocks[c.blockOf[idx]]
}

// NumBlocks returns the number of basic blocks.
func (c *CFG) NumBlocks() int { return len(c.Blocks) }
