package sass

import (
	"fmt"
	"strings"
)

// Width is the data width of a memory operation or arithmetic op in bytes.
type Width uint8

// Data widths.
const (
	W32  Width = 4 // default
	W8   Width = 1
	W16  Width = 2
	W64  Width = 8
	W128 Width = 16
)

// Bytes returns the width in bytes, defaulting to 4 for the zero value.
func (w Width) Bytes() int {
	if w == 0 {
		return 4
	}
	return int(w)
}

// Regs returns how many consecutive 32-bit registers the width occupies.
func (w Width) Regs() int {
	n := w.Bytes() / 4
	if n < 1 {
		n = 1
	}
	return n
}

func (w Width) suffix() string {
	switch w {
	case W8:
		return ".8"
	case W16:
		return ".16"
	case W64:
		return ".64"
	case W128:
		return ".128"
	}
	return ""
}

// Mods carries opcode-specific modifiers. Only the fields relevant to the
// instruction's opcode are meaningful.
type Mods struct {
	Width    Width    // LD/ST family data width
	Cmp      CmpOp    // ISETP/FSETP comparison
	Logic    LogicOp  // LOP operation; SETP combine function
	Atom     AtomOp   // ATOM/ATOMS/RED operation
	Mufu     MufuFunc // MUFU function
	Vote     VoteMode // VOTE mode
	Shfl     ShflMode // SHFL mode
	Unsigned bool     // .U32 on compares/shifts/min-max
	SetCC    bool     // .CC: update condition code with the result
	X        bool     // .X: extended arithmetic (use carry from CC)
	E        bool     // .E: extended (64-bit) address on memory ops
	NegB     bool     // second source negated (IADD subtraction form)
}

// PredGuard is the @[!]Pn guard controlling per-thread execution.
// The zero value (PT, not negated) means "always execute".
type PredGuard struct {
	Reg uint8 // predicate register; PT means unconditional
	Neg bool
}

// Always is the unconditional predicate guard.
var Always = PredGuard{Reg: PT}

// IsAlways reports whether the guard always passes.
func (p PredGuard) IsAlways() bool { return p.Reg == PT && !p.Neg }

func (p PredGuard) String() string {
	if p.IsAlways() {
		return ""
	}
	neg := ""
	if p.Neg {
		neg = "!"
	}
	if p.Reg == PT {
		return fmt.Sprintf("@%sPT ", neg)
	}
	return fmt.Sprintf("@%sP%d ", neg, p.Reg)
}

// Instruction is a single decoded SASS instruction.
//
// Dsts lists destination operands (registers and predicate registers) in a
// fixed per-opcode order; Srcs lists source operands. Memory references and
// immediate operands appear in Srcs even for stores (the address expression
// is a source).
type Instruction struct {
	Guard PredGuard
	Op    Opcode
	Mods  Mods
	Dsts  []Operand
	Srcs  []Operand

	// Injected marks instructions inserted by the SASSI instrumentor so
	// that profiling of "original" code can distinguish them.
	Injected bool

	// Comment is carried through assembly/disassembly for readability.
	Comment string
}

// Clone returns a deep copy of the instruction.
func (in *Instruction) Clone() Instruction {
	out := *in
	out.Dsts = append([]Operand(nil), in.Dsts...)
	out.Srcs = append([]Operand(nil), in.Srcs...)
	return out
}

// New builds an instruction with the unconditional guard.
func New(op Opcode, dsts []Operand, srcs []Operand) Instruction {
	return Instruction{Guard: Always, Op: op, Dsts: dsts, Srcs: srcs}
}

// WithGuard returns a copy of the instruction with the given guard.
func (in Instruction) WithGuard(g PredGuard) Instruction {
	in.Guard = g
	return in
}

// IsCondBranch reports whether the instruction is a conditional control
// transfer (a predicated BRA), the instrumentation target of Case Study I.
func (in *Instruction) IsCondBranch() bool {
	return in.Op == OpBRA && !in.Guard.IsAlways()
}

// BranchTarget returns the label operand of a control transfer, if any.
func (in *Instruction) BranchTarget() (Operand, bool) {
	if len(in.Srcs) == 0 {
		return Operand{}, false
	}
	for _, s := range in.Srcs {
		if s.Kind == OpdLabel || s.Kind == OpdSym {
			return s, true
		}
	}
	return Operand{}, false
}

// GPRDsts returns the general purpose registers written by the instruction,
// expanding multi-register (64/128-bit) destinations.
func (in *Instruction) GPRDsts() []uint8 { return in.AppendGPRDsts(nil) }

// AppendGPRDsts appends the written GPRs to buf and returns it. Passing a
// caller-owned buffer (buf[:0] over a fixed array) keeps hot paths like
// the simulator's scoreboard allocation-free.
func (in *Instruction) AppendGPRDsts(buf []uint8) []uint8 {
	for _, d := range in.Dsts {
		if d.Kind != OpdReg || d.Reg == RZ {
			continue
		}
		n := 1
		if in.Op.IsMem() && in.Op.IsMemRead() {
			n = in.Mods.Width.Regs()
		} else if in.Mods.Width == W64 {
			n = 2
		}
		for i := 0; i < n; i++ {
			buf = append(buf, d.Reg+uint8(i))
		}
	}
	return buf
}

// GPRSrcs returns the general purpose registers read by the instruction,
// including address base registers and store data (with width expansion).
func (in *Instruction) GPRSrcs() []uint8 { return in.AppendGPRSrcs(nil) }

// AppendGPRSrcs appends the read GPRs to buf and returns it (see
// AppendGPRDsts for the buffer discipline).
func (in *Instruction) AppendGPRSrcs(buf []uint8) []uint8 {
	add := func(r uint8, n int) {
		if r == RZ {
			return
		}
		for i := 0; i < n; i++ {
			buf = append(buf, r+uint8(i))
		}
	}
	for i, s := range in.Srcs {
		switch s.Kind {
		case OpdReg:
			n := 1
			// Store data operand is widened with the access width.
			if in.Op.IsMemWrite() && i > 0 {
				n = in.Mods.Width.Regs()
			}
			add(s.Reg, n)
		case OpdMem:
			n := 1
			if in.Mods.E {
				n = 2 // 64-bit address in a register pair
			}
			add(s.Reg, n)
		}
	}
	return buf
}

// PredDsts returns predicate registers written by the instruction.
func (in *Instruction) PredDsts() []uint8 {
	var out []uint8
	for _, d := range in.Dsts {
		if d.Kind == OpdPred && d.Reg != PT {
			out = append(out, d.Reg)
		}
	}
	return out
}

// PredSrcs returns predicate registers read by the instruction, including
// the guard.
func (in *Instruction) PredSrcs() []uint8 {
	var out []uint8
	if !in.Guard.IsAlways() && in.Guard.Reg != PT {
		out = append(out, in.Guard.Reg)
	}
	for _, s := range in.Srcs {
		if s.Kind == OpdPred && s.Reg != PT {
			out = append(out, s.Reg)
		}
	}
	return out
}

// WritesGPR reports whether the instruction writes any GPR.
func (in *Instruction) WritesGPR() bool { return len(in.GPRDsts()) > 0 }

// WritesPred reports whether the instruction writes any predicate register.
func (in *Instruction) WritesPred() bool { return len(in.PredDsts()) > 0 }

// WritesCC reports whether the instruction updates the condition code.
func (in *Instruction) WritesCC() bool { return in.Mods.SetCC }

// modString renders the dotted modifier list for the mnemonic.
func (in *Instruction) modString() string {
	var b strings.Builder
	switch in.Op {
	case OpISETP, OpFSETP:
		b.WriteByte('.')
		b.WriteString(in.Mods.Cmp.String())
		if in.Mods.Unsigned {
			b.WriteString(".U32")
		}
		b.WriteByte('.')
		b.WriteString(in.Mods.Logic.String())
	case OpLOP:
		b.WriteByte('.')
		b.WriteString(in.Mods.Logic.String())
	case OpATOM, OpATOMS, OpRED:
		b.WriteByte('.')
		b.WriteString(in.Mods.Atom.String())
		b.WriteString(in.Mods.Width.suffix())
	case OpMUFU:
		b.WriteByte('.')
		b.WriteString(in.Mods.Mufu.String())
	case OpVOTE:
		b.WriteByte('.')
		b.WriteString(in.Mods.Vote.String())
	case OpSHFL:
		b.WriteByte('.')
		b.WriteString(in.Mods.Shfl.String())
	case OpLD, OpST, OpLDG, OpSTG, OpLDL, OpSTL, OpLDS, OpSTS, OpLDC:
		if in.Mods.E {
			b.WriteString(".E")
		}
		b.WriteString(in.Mods.Width.suffix())
	case OpSHR, OpIMNMX:
		if in.Mods.Unsigned {
			b.WriteString(".U32")
		}
	case OpBAR:
		b.WriteString(".SYNC")
	}
	if in.Mods.SetCC {
		b.WriteString(".CC")
	}
	if in.Mods.X {
		b.WriteString(".X")
	}
	if in.Mods.NegB {
		b.WriteString(".NEGB")
	}
	return b.String()
}

// String renders the instruction in SASS-like syntax, e.g.
// "@P0 IADD R4, RZ, 0x1 ;".
func (in *Instruction) String() string {
	var b strings.Builder
	b.WriteString(in.Guard.String())
	b.WriteString(in.Op.String())
	b.WriteString(in.modString())
	opds := make([]string, 0, len(in.Dsts)+len(in.Srcs))
	for _, d := range in.Dsts {
		opds = append(opds, d.String())
	}
	for _, s := range in.Srcs {
		opds = append(opds, s.String())
	}
	if len(opds) > 0 {
		b.WriteByte(' ')
		b.WriteString(strings.Join(opds, ", "))
	}
	b.WriteString(" ;")
	if in.Comment != "" {
		b.WriteString(" // ")
		b.WriteString(in.Comment)
	}
	return b.String()
}
