package sass

import (
	"fmt"
	"sort"
	"strings"
)

// ParamDesc describes one kernel parameter as laid out in constant bank 0.
// Parameters begin at ParamBase and are packed with natural alignment,
// mirroring the CUDA ABI's use of constant memory for kernel arguments.
type ParamDesc struct {
	Name   string
	Size   int // bytes: 4 or 8
	Offset int // byte offset within constant bank 0
}

// Constant-bank-0 layout. Low offsets hold launch metadata that compiled
// code may read (mirroring NVIDIA's c[0x0][...] conventions), followed by
// the kernel parameters.
const (
	// CBStackBase is the offset of the generic-window base of local memory.
	// ORing it into a local byte offset forms a generic address (Figure 2,
	// step 4 of the paper uses LOP.OR R4, R1, c[0x0][0x24] for this).
	CBStackBase = 0x24
	// CBSharedBase is the generic-window base of shared memory.
	CBSharedBase = 0x28
	// ParamBase is where kernel parameters start in constant bank 0.
	ParamBase = 0x140
)

// Kernel is one compiled GPU entry point: a flat instruction sequence plus
// the resources the launch needs to reserve.
type Kernel struct {
	Name   string
	Instrs []Instruction

	// Labels maps a label name to the index of the instruction it precedes.
	Labels map[string]int

	// NumRegs is the per-thread GPR count chosen by register allocation.
	NumRegs int
	// NumPreds is the per-thread predicate register count in use.
	NumPreds int
	// SharedBytes is the static shared-memory requirement per CTA.
	SharedBytes int
	// LocalBytes is the per-thread local (stack) requirement, excluding
	// any instrumentation frames which are sized separately.
	LocalBytes int
	// Params describes the kernel parameter layout in constant bank 0.
	Params []ParamDesc

	// BlockDim is an optional launch-shape hint (the CTA dimensions the
	// kernel is written for, à la __launch_bounds__), consumed by static
	// analyses that bound tid ranges. Zero means unknown. It is advisory
	// compile-time metadata and is deliberately NOT serialized by
	// MarshalBinary: a .sasskrn file carries only the machine code.
	BlockDim [3]int

	// SchedOrig, when non-nil, records that the instruction stream was
	// reordered by the ptxas scheduling pass: SchedOrig[pos] is the index
	// the instruction now at pos held in the original (pre-scheduling)
	// order. The `schedule` verifier check (internal/analysis/deps) uses
	// it to certify the reordering against the dependence DAG of the
	// reconstructed original. Like BlockDim it is compile-time metadata,
	// not serialized, and it must be dropped by any pass that edits the
	// instruction stream afterwards (sassi.Instrument clears it).
	SchedOrig []int
}

// Clone returns a deep copy of the kernel sharing no mutable state, so the
// copy survives in-place rewrites (e.g. instrumentation) of the original.
func (k *Kernel) Clone() *Kernel {
	c := *k
	c.Instrs = make([]Instruction, len(k.Instrs))
	for i := range k.Instrs {
		in := k.Instrs[i]
		in.Dsts = append([]Operand(nil), in.Dsts...)
		in.Srcs = append([]Operand(nil), in.Srcs...)
		c.Instrs[i] = in
	}
	c.Params = append([]ParamDesc(nil), k.Params...)
	c.SchedOrig = append([]int(nil), k.SchedOrig...)
	if k.Labels != nil {
		c.Labels = make(map[string]int, len(k.Labels))
		for name, idx := range k.Labels {
			c.Labels[name] = idx
		}
	}
	return &c
}

// AddParam appends a parameter with natural alignment and returns its
// constant-bank offset.
func (k *Kernel) AddParam(name string, size int) int {
	off := ParamBase
	if n := len(k.Params); n > 0 {
		last := k.Params[n-1]
		off = last.Offset + last.Size
	}
	if size == 8 && off%8 != 0 {
		off += 8 - off%8
	}
	k.Params = append(k.Params, ParamDesc{Name: name, Size: size, Offset: off})
	return off
}

// ParamOffset returns the constant-bank offset of a named parameter.
func (k *Kernel) ParamOffset(name string) (int, bool) {
	for _, p := range k.Params {
		if p.Name == name {
			return p.Offset, true
		}
	}
	return 0, false
}

// ResolveLabels rewrites label operands to hold the instruction index they
// refer to. It reports an error for dangling labels.
func (k *Kernel) ResolveLabels() error {
	for i := range k.Instrs {
		in := &k.Instrs[i]
		for s := range in.Srcs {
			opd := &in.Srcs[s]
			if opd.Kind != OpdLabel || opd.Name == "" {
				continue
			}
			idx, ok := k.Labels[opd.Name]
			if !ok {
				return fmt.Errorf("kernel %s: instruction %d references undefined label %q", k.Name, i, opd.Name)
			}
			opd.Imm = int64(idx)
		}
	}
	return nil
}

// LabelAt returns the labels attached to an instruction index, sorted.
func (k *Kernel) LabelAt(idx int) []string {
	var out []string
	for name, i := range k.Labels {
		if i == idx {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// InsOffset converts an instruction index into a byte offset from the
// kernel start. Each SASS instruction occupies 8 bytes, as on Kepler.
func InsOffset(idx int) int32 { return int32(idx) * 8 }

// IndexOfOffset converts a byte offset back to an instruction index.
func IndexOfOffset(off int32) int { return int(off) / 8 }

// Disassemble renders the kernel as SASS-like assembly text.
func (k *Kernel) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n", k.Name)
	for _, p := range k.Params {
		fmt.Fprintf(&b, ".param %s %d // c[0x0][0x%x]\n", p.Name, p.Size, p.Offset)
	}
	if k.SharedBytes > 0 {
		fmt.Fprintf(&b, ".shared %d\n", k.SharedBytes)
	}
	if k.LocalBytes > 0 {
		fmt.Fprintf(&b, ".local %d\n", k.LocalBytes)
	}
	for i := range k.Instrs {
		for _, l := range k.LabelAt(i) {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "    /*%04x*/ %s\n", InsOffset(i), k.Instrs[i].String())
	}
	for _, l := range k.LabelAt(len(k.Instrs)) {
		fmt.Fprintf(&b, "%s:\n", l)
	}
	return b.String()
}

// Validate performs structural checks: label targets in range, register
// numbers legal, EXIT reachable, operand kinds sane for the opcode.
func (k *Kernel) Validate() error {
	n := len(k.Instrs)
	if n == 0 {
		return fmt.Errorf("kernel %s: empty", k.Name)
	}
	sawExit := false
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if in.Op == OpEXIT {
			sawExit = true
		}
		if in.Op >= opCount {
			return fmt.Errorf("kernel %s@%d: bad opcode %d", k.Name, i, in.Op)
		}
		for _, o := range append(append([]Operand{}, in.Dsts...), in.Srcs...) {
			switch o.Kind {
			case OpdReg, OpdMem:
				if o.Reg != RZ && int(o.Reg) >= NumGPR {
					return fmt.Errorf("kernel %s@%d: bad register R%d", k.Name, i, o.Reg)
				}
			case OpdPred:
				if o.Reg > PT {
					return fmt.Errorf("kernel %s@%d: bad predicate P%d", k.Name, i, o.Reg)
				}
			case OpdLabel:
				if o.Imm < 0 || o.Imm > int64(n) {
					return fmt.Errorf("kernel %s@%d: label %q out of range (%d)", k.Name, i, o.Name, o.Imm)
				}
			}
		}
		if !in.Guard.IsAlways() && in.Guard.Reg > PT {
			return fmt.Errorf("kernel %s@%d: bad guard P%d", k.Name, i, in.Guard.Reg)
		}
	}
	if !sawExit {
		return fmt.Errorf("kernel %s: no EXIT instruction", k.Name)
	}
	return nil
}

// Program is a linked unit: kernels plus the symbols (instrumentation
// handlers) its JCALs refer to.
type Program struct {
	Kernels []*Kernel

	// Handlers maps JCAL symbol names to dense handler IDs assigned at
	// link time; the simulator dispatches through this table.
	Handlers map[string]int
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Handlers: make(map[string]int)}
}

// AddKernel appends a kernel.
func (p *Program) AddKernel(k *Kernel) { p.Kernels = append(p.Kernels, k) }

// Kernel returns the named kernel.
func (p *Program) Kernel(name string) (*Kernel, bool) {
	for _, k := range p.Kernels {
		if k.Name == name {
			return k, true
		}
	}
	return nil, false
}

// InternHandler assigns (or returns) the dense ID for a handler symbol.
func (p *Program) InternHandler(sym string) int {
	if id, ok := p.Handlers[sym]; ok {
		return id
	}
	id := len(p.Handlers)
	p.Handlers[sym] = id
	return id
}
