package sass

// Regression tests for latent bugs surfaced while bringing up the static
// verifier (internal/analysis): each encodes a behavior the verifier's
// checks depend on.

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// A guarded EXIT only retires the lanes whose guard passes; the rest fall
// through. The CFG must model that edge, or values read after the EXIT
// appear dead at instrumentation sites before it and get clobbered.
func TestGuardedExitFallsThrough(t *testing.T) {
	k := buildKernel(t, nil,
		New(OpEXIT, nil, nil).WithGuard(PredGuard{Reg: 0}),          // 0: @P0 EXIT
		New(OpIADD, []Operand{R(2)}, []Operand{R(3), Imm(1)}),       // 1: reads R3
		New(OpEXIT, nil, nil),                                       // 2
	)
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	b0 := cfg.BlockOf(0)
	found := false
	for _, s := range b0.Succs {
		if cfg.Blocks[s].Start == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("guarded EXIT block has no fallthrough successor")
	}
	li := livenessOf(t, k)
	if !li.LiveIn[0].Has(3) {
		t.Error("R3 is read past the guarded EXIT and must be live at entry")
	}
}

// An unconditional EXIT really terminates: no fallthrough edge, nothing
// past it live.
func TestUnconditionalExitTerminates(t *testing.T) {
	k := buildKernel(t, nil,
		New(OpEXIT, nil, nil),                                 // 0
		New(OpIADD, []Operand{R(2)}, []Operand{R(3), Imm(1)}), // 1: unreachable
		New(OpEXIT, nil, nil),                                 // 2
	)
	cfg, err := BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(cfg.BlockOf(0).Succs); n != 0 {
		t.Fatalf("unconditional EXIT block has %d successors, want 0", n)
	}
	li := livenessOf(t, k)
	if li.LiveIn[0].Has(3) {
		t.Error("R3 is only read in unreachable code; it must not be live at entry")
	}
}

// A register whose first write is predicated merges the old value only if
// the register may have been assigned on some path. An if-converted
// temporary must therefore NOT be live back to kernel entry — otherwise
// every instrumentation site before it would pointlessly spill garbage.
func TestPredicatedFirstWriteNotLiveAtEntry(t *testing.T) {
	k := buildKernel(t, nil,
		New(OpISETP, []Operand{P(0)}, []Operand{R(2), Imm(0), P(PT)}),                    // 0
		New(OpMOV32, []Operand{R(5)}, []Operand{Imm(1)}).WithGuard(PredGuard{Reg: 0}),    // 1: first write of R5, guarded
		New(OpEXIT, nil, nil),                                                            // 2
	)
	li := livenessOf(t, k)
	if li.LiveIn[0].Has(5) {
		t.Error("R5's first write is the predicated MOV; it must not be live at entry")
	}

	// Contrast: once R5 may have been assigned, a predicated write does
	// merge the old value and keeps it live.
	k2 := buildKernel(t, nil,
		New(OpISETP, []Operand{P(0)}, []Operand{R(2), Imm(0), P(PT)}),                 // 0
		New(OpMOV32, []Operand{R(5)}, []Operand{Imm(9)}),                              // 1: unconditional write
		New(OpMOV32, []Operand{R(5)}, []Operand{Imm(1)}).WithGuard(PredGuard{Reg: 0}), // 2: merge
		New(OpST, nil, []Operand{Mem(3, 0), R(5)}),                                    // 3
		New(OpEXIT, nil, nil),
	)
	li2 := livenessOf(t, k2)
	if !li2.LiveIn[2].Has(5) {
		t.Error("R5 assigned at 1 and merged at 2: it must be live between them")
	}
}

// corruptHeader builds a syntactically valid encoding prefix with a chosen
// trailing element count.
func corruptHeader(counts ...uint32) []byte {
	var b bytes.Buffer
	b.WriteString("SASSKRN1")
	wu32 := func(v uint32) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], v)
		b.Write(n[:])
	}
	wu32(1)
	b.WriteByte('k') // name "k"
	wu32(8)          // NumRegs
	wu32(2)          // NumPreds
	wu32(0)          // SharedBytes
	wu32(0)          // LocalBytes
	for _, c := range counts {
		wu32(c)
	}
	return b.Bytes()
}

// A corrupted element count must be rejected before it drives a giant
// allocation (the decoder caps counts by the bytes remaining).
func TestUnmarshalRejectsOversizedCounts(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"params", corruptHeader(0xfffffff0)},
		{"labels", corruptHeader(0, 0xfffffff0)},
		{"instrs", corruptHeader(0, 0, 0xfffffff0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var k Kernel
			err := k.UnmarshalBinary(c.data)
			if err == nil {
				t.Fatal("oversized count accepted")
			}
			if !strings.Contains(err.Error(), "exceeds remaining input") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

// Truncation anywhere in the stream must produce an error, never a panic
// or a silently short kernel.
func TestUnmarshalRejectsTruncation(t *testing.T) {
	k := buildKernel(t, map[string]int{"l": 1},
		New(OpMOV32, []Operand{R(2)}, []Operand{Imm(7)}),
		New(OpEXIT, nil, nil),
	)
	data, err := k.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		var dec Kernel
		if err := dec.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", cut, len(data))
		}
	}
	var dec Kernel
	if err := dec.UnmarshalBinary(data); err != nil {
		t.Fatalf("full encoding rejected: %v", err)
	}
}
