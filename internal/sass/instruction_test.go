package sass

import "testing"

func TestOperandStrings(t *testing.T) {
	cases := []struct {
		o    Operand
		want string
	}{
		{R(4), "R4"},
		{R(RZ), "RZ"},
		{P(0), "P0"},
		{NotP(2), "!P2"},
		{P(PT), "PT"},
		{NotP(PT), "!PT"},
		{Imm(16), "0x10"},
		{Imm(-4), "-0x4"},
		{CMem(0, 0x140), "c[0x0][0x140]"},
		{Mem(4, 0), "[R4]"},
		{Mem(4, 0x18), "[R4+0x18]"},
		{Mem(4, -8), "[R4-0x8]"},
		{Mem(RZ, 0), "[RZ]"},
		{SReg(SRTidX), "SR_TID.X"},
		{Label("loop"), "loop"},
		{Sym("handler"), "handler"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("operand %+v: got %q, want %q", c.o, got, c.want)
		}
	}
}

func TestGuardString(t *testing.T) {
	if Always.String() != "" {
		t.Errorf("Always guard should render empty, got %q", Always.String())
	}
	g := PredGuard{Reg: 0}
	if got := g.String(); got != "@P0 " {
		t.Errorf("got %q", got)
	}
	g = PredGuard{Reg: 3, Neg: true}
	if got := g.String(); got != "@!P3 " {
		t.Errorf("got %q", got)
	}
}

func TestInstructionString(t *testing.T) {
	in := Instruction{
		Guard: PredGuard{Reg: 0},
		Op:    OpST,
		Mods:  Mods{E: true},
		Srcs:  []Operand{Mem(10, 0), R(0)},
	}
	if got := in.String(); got != "@P0 ST.E [R10], R0 ;" {
		t.Errorf("got %q", got)
	}
	in2 := New(OpIADD, []Operand{R(1)}, []Operand{R(1), Imm(-0x80)})
	if got := in2.String(); got != "IADD R1, R1, -0x80 ;" {
		t.Errorf("got %q", got)
	}
	in3 := New(OpISETP, []Operand{P(0)}, []Operand{R(6), Imm(10), P(PT)})
	in3.Mods = Mods{Cmp: CmpLT, Unsigned: true, Logic: LogicAND}
	if got := in3.String(); got != "ISETP.LT.U32.AND P0, R6, 0xa, PT ;" {
		t.Errorf("got %q", got)
	}
}

func TestGPRDstsWidths(t *testing.T) {
	ld := New(OpLDG, []Operand{R(4)}, []Operand{Mem(8, 0)})
	ld.Mods.Width = W64
	if got := ld.GPRDsts(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("64-bit load dsts = %v, want [4 5]", got)
	}
	ld.Mods.Width = W128
	if got := ld.GPRDsts(); len(got) != 4 {
		t.Errorf("128-bit load dsts = %v, want 4 regs", got)
	}
	add := New(OpIADD, []Operand{R(2)}, []Operand{R(3), R(4)})
	if got := add.GPRDsts(); len(got) != 1 || got[0] != 2 {
		t.Errorf("IADD dsts = %v", got)
	}
	// Writes to RZ are not destinations.
	toRZ := New(OpIADD, []Operand{R(RZ)}, []Operand{R(3), R(4)})
	if got := toRZ.GPRDsts(); len(got) != 0 {
		t.Errorf("RZ write dsts = %v, want none", got)
	}
}

func TestGPRSrcsAddressAndData(t *testing.T) {
	st := New(OpSTG, nil, []Operand{Mem(8, 0), R(4)})
	st.Mods = Mods{E: true, Width: W64}
	got := st.GPRSrcs()
	// Address pair R8,R9 and data pair R4,R5.
	want := map[uint8]bool{8: true, 9: true, 4: true, 5: true}
	if len(got) != 4 {
		t.Fatalf("srcs = %v, want 4", got)
	}
	for _, r := range got {
		if !want[r] {
			t.Errorf("unexpected src R%d", r)
		}
	}
}

func TestPredSrcsIncludesGuard(t *testing.T) {
	in := New(OpSEL, []Operand{R(0)}, []Operand{R(1), R(2), P(3)})
	in.Guard = PredGuard{Reg: 1, Neg: true}
	got := in.PredSrcs()
	if len(got) != 2 {
		t.Fatalf("pred srcs = %v", got)
	}
	// PT guard and PT operands are excluded.
	in2 := New(OpSEL, []Operand{R(0)}, []Operand{R(1), R(2), P(PT)})
	if got := in2.PredSrcs(); len(got) != 0 {
		t.Errorf("PT-only pred srcs = %v, want none", got)
	}
}

func TestIsCondBranch(t *testing.T) {
	br := New(OpBRA, nil, []Operand{Label("x")})
	if br.IsCondBranch() {
		t.Error("unconditional BRA classified as conditional")
	}
	br.Guard = PredGuard{Reg: 0}
	if !br.IsCondBranch() {
		t.Error("guarded BRA not classified as conditional")
	}
	exit := New(OpEXIT, nil, nil)
	exit.Guard = PredGuard{Reg: 0}
	if exit.IsCondBranch() {
		t.Error("guarded EXIT classified as conditional branch")
	}
}

func TestWritesPredAndCC(t *testing.T) {
	setp := New(OpISETP, []Operand{P(2)}, []Operand{R(0), R(1), P(PT)})
	if !setp.WritesPred() || setp.WritesGPR() {
		t.Error("ISETP should write preds only")
	}
	addcc := New(OpIADD, []Operand{R(0)}, []Operand{R(1), R(2)})
	addcc.Mods.SetCC = true
	if !addcc.WritesCC() || !addcc.WritesGPR() {
		t.Error("IADD.CC should write GPR and CC")
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := New(OpIADD, []Operand{R(0)}, []Operand{R(1), Imm(2)})
	cp := in.Clone()
	cp.Srcs[1] = Imm(99)
	if in.Srcs[1].Imm == 99 {
		t.Error("Clone shares source slice")
	}
}
