package sass

import (
	"strings"
	"testing"
)

func TestParamLayout(t *testing.T) {
	k := &Kernel{Name: "k"}
	off1 := k.AddParam("ptr", 8)
	off2 := k.AddParam("n", 4)
	off3 := k.AddParam("ptr2", 8) // must realign to 8
	if off1 != ParamBase {
		t.Errorf("first param offset = %#x, want %#x", off1, ParamBase)
	}
	if off2 != ParamBase+8 {
		t.Errorf("second param offset = %#x", off2)
	}
	if off3%8 != 0 || off3 != ParamBase+16 {
		t.Errorf("third param misaligned: %#x", off3)
	}
	if got, ok := k.ParamOffset("n"); !ok || got != off2 {
		t.Errorf("ParamOffset(n) = %v,%v", got, ok)
	}
	if _, ok := k.ParamOffset("missing"); ok {
		t.Error("missing param resolved")
	}
}

func TestResolveLabelsError(t *testing.T) {
	k := &Kernel{Name: "k", Labels: map[string]int{},
		Instrs: []Instruction{New(OpBRA, nil, []Operand{Label("nowhere")})}}
	if err := k.ResolveLabels(); err == nil {
		t.Error("dangling label not reported")
	}
}

func TestValidateCatchesBadInstr(t *testing.T) {
	cases := []struct {
		name string
		k    Kernel
	}{
		{"empty", Kernel{Name: "k"}},
		{"no exit", Kernel{Name: "k", Instrs: []Instruction{New(OpNOP, nil, nil)}}},
		{"bad label", Kernel{Name: "k", Instrs: []Instruction{
			{Guard: Always, Op: OpBRA, Srcs: []Operand{{Kind: OpdLabel, Imm: 99}}},
			New(OpEXIT, nil, nil),
		}}},
		{"bad pred", Kernel{Name: "k", Instrs: []Instruction{
			New(OpISETP, []Operand{{Kind: OpdPred, Reg: 9}}, []Operand{R(0), R(1), P(PT)}),
			New(OpEXIT, nil, nil),
		}}},
	}
	for _, c := range cases {
		if err := c.k.Validate(); err == nil {
			t.Errorf("%s: validation passed unexpectedly", c.name)
		}
	}
	good := Kernel{Name: "k", Instrs: []Instruction{New(OpEXIT, nil, nil)}}
	if err := good.Validate(); err != nil {
		t.Errorf("good kernel rejected: %v", err)
	}
}

func TestInsOffsetRoundtrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		if IndexOfOffset(InsOffset(i)) != i {
			t.Fatalf("offset roundtrip failed at %d", i)
		}
	}
}

func TestDisassembleContainsLabelsAndParams(t *testing.T) {
	k := &Kernel{Name: "k", Labels: map[string]int{"loop": 0},
		Instrs: []Instruction{New(OpEXIT, nil, nil)}}
	k.AddParam("x", 4)
	dis := k.Disassemble()
	for _, want := range []string{".kernel k", ".param x", "loop:", "EXIT"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestProgramHandlers(t *testing.T) {
	p := NewProgram()
	id1 := p.InternHandler("h1")
	id2 := p.InternHandler("h2")
	if id1 == id2 {
		t.Error("distinct symbols share an id")
	}
	if p.InternHandler("h1") != id1 {
		t.Error("intern not idempotent")
	}
}

func TestProgramKernelLookup(t *testing.T) {
	p := NewProgram()
	p.AddKernel(&Kernel{Name: "a"})
	p.AddKernel(&Kernel{Name: "b"})
	if k, ok := p.Kernel("b"); !ok || k.Name != "b" {
		t.Error("kernel lookup failed")
	}
	if _, ok := p.Kernel("c"); ok {
		t.Error("phantom kernel found")
	}
}

func TestLabelAtSorted(t *testing.T) {
	k := &Kernel{Name: "k", Labels: map[string]int{"zz": 0, "aa": 0, "mm": 1}}
	got := k.LabelAt(0)
	if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
		t.Errorf("LabelAt = %v", got)
	}
}
