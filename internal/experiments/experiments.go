// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 and Figure 5 (Case Study I, branch divergence),
// Figures 7 and 8 (Case Study II, memory address divergence), Table 2
// (Case Study III, value profiling), Figure 10 (Case Study IV, error
// injection), and Table 3 (instrumentation overheads).
//
// Numbers will not match the paper exactly — the workloads run on synthetic
// datasets and the hardware is a simulator — but each experiment's *shape*
// (who diverges, who wins, roughly by how much) is the reproduction target;
// EXPERIMENTS.md records paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"time"

	"sassi/internal/cuda"
	"sassi/internal/obs"
	"sassi/internal/obs/pcsamp"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// Env configures an experiment run.
type Env struct {
	// Config is the simulated GPU (default: the K10-like model the paper's
	// case studies I-III used).
	Config sim.Config
	// Fast selects the sequential profiling handlers (identical results,
	// no per-lane goroutines). The paper-faithful collective handlers are
	// used when false.
	Fast bool
	// Workers bounds campaign-level concurrency (Figure 10 fault
	// injections). Zero means GOMAXPROCS; results are identical at any
	// value.
	Workers int
	// Cache shares compiled programs across experiments; Default() installs
	// one. Nil compiles fresh each time.
	Cache *sassi.CompileCache
	// Metrics and Trace, when non-nil, thread the observability layer
	// through every run the experiment performs: device counters, handler
	// dispatch counts, instrumentation accounting, and timeline spans.
	Metrics *obs.Registry
	Trace   *obs.Tracer
	// PCSamp, when non-nil, PC-samples every launch the experiments
	// perform (instrumented and baseline alike).
	PCSamp *pcsamp.Sampler
}

// Default returns the standard experiment environment.
func Default() Env {
	return Env{Config: sim.KeplerK10(), Fast: true, Cache: sassi.NewCompileCache()}
}

// instrumentedRun compiles a workload, applies an instrumentation spec,
// registers the handler, and runs the workload to completion, requiring the
// result to still verify. It returns the context for stats inspection.
func instrumentedRun(env Env, workload, dataset string,
	setup func(ctx *cuda.Context) (*sassi.Handler, sassi.Options)) (*cuda.Context, error) {

	spec, ok := workloads.Get(workload)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown workload %q", workload)
	}
	ctx := cuda.NewContext(env.Config)
	ctx.Device().Metrics = env.Metrics
	ctx.Device().Trace = env.Trace
	ctx.Device().PCSamp = env.PCSamp
	h, opts := setup(ctx)
	// Instrumentation metrics attach only on the uncached path below: cached
	// builds are shared, and their instrument pass already reported through
	// the cache's own hooks on first build.
	// Cached programs are shared read-only, so instrumentation must happen
	// inside the build closure; options carrying a Select closure are
	// uncacheable and take the fresh-compile path.
	var prog *sass.Program
	var err error
	if instKey, cacheable := opts.CacheKey(); env.Cache != nil && cacheable {
		prog, err = env.Cache.Get(spec.InstrumentedKey(ptxas.Options{}, instKey),
			func() (*sass.Program, error) {
				p, berr := spec.Compile(ptxas.Options{})
				if berr != nil {
					return nil, berr
				}
				if berr := sassi.Instrument(p, opts); berr != nil {
					return nil, berr
				}
				return p, nil
			})
	} else {
		opts.Metrics = env.Metrics
		opts.Trace = env.Trace
		prog, err = spec.Compile(ptxas.Options{})
		if err == nil {
			err = sassi.Instrument(prog, opts)
		}
	}
	if err != nil {
		return nil, err
	}
	rt := sassi.NewRuntime(prog)
	rt.Metrics = env.Metrics
	if err := rt.Register(h); err != nil {
		return nil, err
	}
	rt.Attach(ctx.Device())
	res, err := spec.Run(ctx, prog, dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s(%s): %w", workload, dataset, err)
	}
	if res.VerifyErr != nil {
		return nil, fmt.Errorf("experiments: %s(%s) failed verification under instrumentation: %w",
			workload, dataset, res.VerifyErr)
	}
	return ctx, nil
}

// baselineRun runs a workload uninstrumented and reports wall time and
// context stats.
func baselineRun(env Env, workload, dataset string) (*cuda.Context, time.Duration, error) {
	spec, ok := workloads.Get(workload)
	if !ok {
		return nil, 0, fmt.Errorf("experiments: unknown workload %q", workload)
	}
	prog, err := spec.CompileCached(env.Cache, ptxas.Options{})
	if err != nil {
		return nil, 0, err
	}
	ctx := cuda.NewContext(env.Config)
	ctx.Device().Metrics = env.Metrics
	ctx.Device().Trace = env.Trace
	ctx.Device().PCSamp = env.PCSamp
	start := time.Now()
	res, err := spec.Run(ctx, prog, dataset)
	wall := time.Since(start)
	if err != nil {
		return nil, 0, err
	}
	if res.VerifyErr != nil {
		return nil, 0, fmt.Errorf("experiments: %s baseline failed verification: %w", workload, res.VerifyErr)
	}
	return ctx, wall, nil
}
