package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/sassi"
	"sassi/internal/workloads"
)

// Table3Row is one benchmark's overhead measurements (paper Table 3). For
// each case study, T is total (wall-clock) runtime relative to the
// uninstrumented baseline and K is device-side (modeled kernel cycles)
// runtime relative to baseline. In this reproduction the "hardware" is a
// simulator, so K is the faithful column; T additionally absorbs the Go
// cost of simulating the injected code and running handlers.
type Table3Row struct {
	App      string
	Baseline struct {
		Wall     time.Duration
		Cycles   uint64
		Launches int
	}
	// Indexed by case study: 0=branch, 1=memdiv, 2=valueprof, 3=errorinj.
	T [4]float64
	K [4]float64
}

// CaseStudyNames labels Table 3's column groups.
var CaseStudyNames = [4]string{"Cond. Branches", "Memory Divergence", "Value Profiling", "Error Injection"}

// Table3Apps returns the default application list (the full suite).
func Table3Apps() []string { return workloads.Names() }

// Table3 measures instrumentation overheads for all four case studies.
func Table3(env Env, apps []string) ([]Table3Row, error) {
	if apps == nil {
		apps = Table3Apps()
	}
	var rows []Table3Row
	for _, app := range apps {
		spec, ok := workloads.Get(app)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", app)
		}
		dataset := spec.DefaultDataset()
		row := Table3Row{App: app}

		baseCtx, wall, err := baselineRun(env, app, dataset)
		if err != nil {
			return nil, err
		}
		row.Baseline.Wall = wall
		row.Baseline.Cycles = baseCtx.TotalKernelCycles
		row.Baseline.Launches = baseCtx.Launches()

		setups := [4]func(ctx *cuda.Context) (*sassi.Handler, sassi.Options){
			func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
				p := handlers.NewBranchProfiler(ctx)
				if env.Fast {
					return p.SequentialHandler(), p.Options()
				}
				return p.Handler(), p.Options()
			},
			func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
				p := handlers.NewMemDivProfiler(ctx)
				if env.Fast {
					return p.SequentialHandler(), p.Options()
				}
				return p.Handler(), p.Options()
			},
			func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
				p := handlers.NewValueProfiler(ctx)
				if env.Fast {
					return p.SequentialHandler(), p.Options()
				}
				return p.Handler(), p.Options()
			},
			func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
				inj := handlers.NewInjector(handlers.InjectionSite{})
				return inj.Handler(), inj.Options()
			},
		}
		for cs, setup := range setups {
			start := time.Now()
			ctx, err := instrumentedRun(env, app, dataset, setup)
			if err != nil {
				return nil, fmt.Errorf("experiments: table3 %s/%s: %w", app, CaseStudyNames[cs], err)
			}
			instWall := time.Since(start)
			if wall > 0 {
				row.T[cs] = float64(instWall) / float64(wall)
			}
			if row.Baseline.Cycles > 0 {
				row.K[cs] = float64(ctx.TotalKernelCycles) / float64(row.Baseline.Cycles)
			}
		}
		rows = append(rows, row)
	}
	// The paper sorts by GPU-bound-ness; sort by baseline kernel cycles.
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].Baseline.Cycles < rows[j].Baseline.Cycles
	})
	return rows, nil
}

// FormatTable3 renders the rows in the paper's layout, with min/max/mean.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: Instrumentation overheads (T = wall vs baseline, K = kernel cycles vs baseline)\n")
	b.WriteString(fmt.Sprintf("%-24s %10s %10s | %6s %6s | %6s %6s | %6s %6s | %6s %6s\n",
		"Benchmark", "t (wall)", "k cycles",
		"T1", "K1", "T2", "K2", "T3", "K3", "T4", "K4"))
	var minK, maxK [4]float64
	var sumT, sumK [4]float64
	for i := range minK {
		minK[i] = 1e18
	}
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-24s %10s %10d | %5.1ft %5.1fk | %5.1ft %5.1fk | %5.1ft %5.1fk | %5.1ft %5.1fk\n",
			r.App, r.Baseline.Wall.Round(time.Microsecond), r.Baseline.Cycles,
			r.T[0], r.K[0], r.T[1], r.K[1], r.T[2], r.K[2], r.T[3], r.K[3]))
		for cs := 0; cs < 4; cs++ {
			if r.K[cs] < minK[cs] {
				minK[cs] = r.K[cs]
			}
			if r.K[cs] > maxK[cs] {
				maxK[cs] = r.K[cs]
			}
			sumT[cs] += r.T[cs]
			sumK[cs] += r.K[cs]
		}
	}
	if n := float64(len(rows)); n > 0 {
		b.WriteString(fmt.Sprintf("%-24s %21s | %5s %5.1fk | %5s %5.1fk | %5s %5.1fk | %5s %5.1fk  (min K)\n",
			"Minimum", "", "", minK[0], "", minK[1], "", minK[2], "", minK[3]))
		b.WriteString(fmt.Sprintf("%-24s %21s | %5s %5.1fk | %5s %5.1fk | %5s %5.1fk | %5s %5.1fk  (max K)\n",
			"Maximum", "", "", maxK[0], "", maxK[1], "", maxK[2], "", maxK[3]))
		b.WriteString(fmt.Sprintf("%-24s %21s | %5.1ft %5.1fk | %5.1ft %5.1fk | %5.1ft %5.1fk | %5.1ft %5.1fk  (mean)\n",
			"Mean", "",
			sumT[0]/n, sumK[0]/n, sumT[1]/n, sumK[1]/n,
			sumT[2]/n, sumK[2]/n, sumT[3]/n, sumK[3]/n))
	}
	b.WriteString("Case studies: 1=cond branches, 2=memory divergence, 3=value profiling, 4=error injection\n")
	return b.String()
}
