package experiments

import (
	"fmt"
	"strings"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/sassi"
	"sassi/internal/workloads"
)

// Table2Row is one benchmark's value-profiling summary (paper Table 2):
// the dynamic and static percentages of constant register bits and of
// scalar (warp-invariant) register writes.
type Table2Row struct {
	App           string
	DynConstBits  float64
	DynScalar     float64
	StatConstBits float64
	StatScalar    float64
}

// Table2Apps returns the default application list: the whole suite on
// default datasets (the paper profiles all of Parboil and Rodinia).
func Table2Apps() []string { return workloads.Names() }

// Table2 runs Case Study III over the given applications (nil = all).
func Table2(env Env, apps []string) ([]Table2Row, error) {
	if apps == nil {
		apps = Table2Apps()
	}
	var rows []Table2Row
	for _, app := range apps {
		spec, ok := workloads.Get(app)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", app)
		}
		var p *handlers.ValueProfiler
		_, err := instrumentedRun(env, app, spec.DefaultDataset(),
			func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
				p = handlers.NewValueProfiler(ctx)
				if env.Fast {
					return p.SequentialHandler(), p.Options()
				}
				return p.Handler(), p.Options()
			})
		if err != nil {
			return nil, err
		}
		s, err := p.Summarize()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			App:          app,
			DynConstBits: s.DynConstBitsPc, DynScalar: s.DynScalarPc,
			StatConstBits: s.StatConstBitsPc, StatScalar: s.StatScalarPc,
		})
	}
	return rows, nil
}

// FormatTable2 renders the rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Results for value profiling\n")
	b.WriteString(fmt.Sprintf("%-24s | %10s %8s | %10s %8s\n",
		"Benchmark", "dyn const%", "scalar%", "stat const%", "scalar%"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-24s | %10.0f %8.0f | %10.0f %8.0f\n",
			r.App, r.DynConstBits, r.DynScalar, r.StatConstBits, r.StatScalar))
	}
	return b.String()
}
