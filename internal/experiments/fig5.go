package experiments

import (
	"fmt"
	"strings"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/sassi"
)

// Fig5Branch is one branch's bar in Figure 5: per-branch dynamic execution
// counts split into divergent and non-divergent executions, sorted by
// descending execution count.
type Fig5Branch struct {
	InsAddr      int32
	Total        uint64
	Divergent    uint64
	NonDivergent uint64
}

// Figure5 collects per-branch divergence statistics for Parboil bfs on the
// 1M-like and UT-like datasets (the paper's two panels).
func Figure5(env Env) (map[string][]Fig5Branch, error) {
	out := make(map[string][]Fig5Branch)
	for _, dataset := range []string{"1M", "UT"} {
		var p *handlers.BranchProfiler
		_, err := instrumentedRun(env, "parboil.bfs", dataset,
			func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
				p = handlers.NewBranchProfiler(ctx)
				if env.Fast {
					return p.SequentialHandler(), p.Options()
				}
				return p.Handler(), p.Options()
			})
		if err != nil {
			return nil, err
		}
		rows, err := p.Results()
		if err != nil {
			return nil, err
		}
		var bars []Fig5Branch
		for _, r := range rows {
			bars = append(bars, Fig5Branch{
				InsAddr: r.InsAddr, Total: r.Total,
				Divergent: r.Divergent, NonDivergent: r.Total - r.Divergent,
			})
		}
		out[dataset] = bars
	}
	return out, nil
}

// FormatFigure5 renders per-branch bars as text histograms.
func FormatFigure5(data map[string][]Fig5Branch) string {
	var b strings.Builder
	for _, dataset := range []string{"1M", "UT"} {
		bars := data[dataset]
		b.WriteString(fmt.Sprintf("Figure 5: per-branch divergence, Parboil bfs (%s)\n", dataset))
		b.WriteString(fmt.Sprintf("%-12s %12s %12s %12s  %s\n",
			"branch", "executions", "divergent", "non-diverg.", "divergent share"))
		var max uint64
		for _, bar := range bars {
			if bar.Total > max {
				max = bar.Total
			}
		}
		for _, bar := range bars {
			frac := 0.0
			if bar.Total > 0 {
				frac = float64(bar.Divergent) / float64(bar.Total)
			}
			hist := strings.Repeat("#", int(frac*30+0.5))
			b.WriteString(fmt.Sprintf("0x%08x %12d %12d %12d  %-30s %.1f%%\n",
				uint32(bar.InsAddr), bar.Total, bar.Divergent, bar.NonDivergent, hist, 100*frac))
		}
		b.WriteString("\n")
	}
	return b.String()
}
