package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The autotuner's acceptance contract: on the three golden-pinned parboil
// kernels, scheduling reduces simulated cycles, no candidate is rejected
// by the verifier/bit-equality gate, and the table is identical at any
// worker count (the CI smoke runs the same sweep via cmd/experiments).
func TestSchedTableReducesCyclesWorkerInvariant(t *testing.T) {
	apps := []string{"parboil.sgemm", "parboil.stencil", "parboil.bfs"}
	rows, err := SchedTable(Default(), apps, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(apps) {
		t.Fatalf("%d rows for %d apps", len(rows), len(apps))
	}
	for _, r := range rows {
		if r.Rejected != 0 {
			t.Errorf("%s: %d candidates rejected by the schedule gate", r.App, r.Rejected)
		}
		if r.BestCycles >= r.BaseCycles {
			t.Errorf("%s: scheduling did not reduce cycles: %d -> %d",
				r.App, r.BaseCycles, r.BestCycles)
		}
		if r.BestCycles > r.HeurCycles {
			t.Errorf("%s: best (%d) worse than the seed-0 heuristic (%d) — selection broken",
				r.App, r.BestCycles, r.HeurCycles)
		}
	}

	sequential := Default()
	sequential.Workers = 1
	rows2, err := SchedTable(sequential, apps, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, rows2) {
		t.Errorf("results depend on worker count:\n pool: %+v\n seq:  %+v", rows, rows2)
	}

	out := FormatSchedTable(rows)
	for _, app := range apps {
		if !strings.Contains(out, app) {
			t.Errorf("formatted table missing %s:\n%s", app, out)
		}
	}
}
