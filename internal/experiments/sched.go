package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"sassi/internal/analysis"
	"sassi/internal/cuda"
	"sassi/internal/difftest"
	"sassi/internal/ptxas"
	"sassi/internal/workloads"
)

// SchedRow is one application's autotuning result: simulated cycles of
// the unscheduled baseline, the deterministic heuristic schedule
// (SchedSeed 0), and the best candidate found in the seed sweep.
type SchedRow struct {
	App        string
	BaseCycles uint64 // unscheduled compile
	HeurCycles uint64 // scheduler with seed 0 (deterministic tie-break)
	BestCycles uint64 // winner of the sweep
	BestSeed   uint64 // SchedSeed that produced BestCycles
	Candidates int    // schedules evaluated (including seed 0)
	Rejected   int    // candidates failing the verifier or bit-equality (expect 0)
}

// Speedup is BaseCycles/BestCycles.
func (r SchedRow) Speedup() float64 {
	if r.BestCycles == 0 {
		return 0
	}
	return float64(r.BaseCycles) / float64(r.BestCycles)
}

// SchedApps returns the default autotuning application list: the three
// golden-pinned parboil kernels plus two rodinia kernels with different
// memory/ALU mixes.
func SchedApps() []string {
	return []string{"parboil.sgemm", "parboil.stencil", "parboil.bfs",
		"rodinia.hotspot", "parboil.mri-q"}
}

// schedCandidate is one evaluated schedule.
type schedCandidate struct {
	cycles uint64
	ok     bool
}

// SchedTable autotunes each application's instruction schedule: compile
// with the list scheduler under `candidates` different tie-break seeds
// (seed index 0 is the deterministic heuristic; the rest are splitmix
// jitters of `seed`), fan the candidate evaluations across a worker pool,
// and keep the schedule with the fewest simulated cycles.
//
// Every candidate is double-gated before it may win:
//
//   - statically, the compile runs with Verify on, so the `schedule`
//     check must certify the permutation against the dependence DAG;
//   - dynamically, the run must still pass the workload's CPU-reference
//     verification AND match the unscheduled baseline's output buffer and
//     stdout byte-for-byte (no tolerance — a schedule may only move time,
//     never bits).
//
// Candidate cycle counts are a pure function of (app, schedSeed): every
// measurement runs on the sequential-SM engine (a workload like
// parboil.bfs whose cross-SM atomic ordering feeds control flow is not
// run-to-run stable on the concurrent engine) and each evaluation owns a
// private context. The winner is selected by (cycles, lowest candidate
// index), so the table is identical at any worker count.
func SchedTable(env Env, apps []string, candidates int, seed uint64) ([]SchedRow, error) {
	if apps == nil {
		apps = SchedApps()
	}
	if candidates <= 0 {
		candidates = 8
	}
	workers := env.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var rows []SchedRow
	for _, app := range apps {
		row, err := schedApp(env, app, candidates, seed, workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func schedApp(env Env, app string, candidates int, seed uint64, workers int) (SchedRow, error) {
	// The autotuner compares cycle counts across candidates, so the
	// measurement must be deterministic: force the sequential-SM engine
	// for the baseline and every candidate (env is a copy).
	env.Config.SequentialSMs = true
	spec, ok := workloads.Get(app)
	if !ok {
		return SchedRow{}, fmt.Errorf("experiments: unknown workload %q", app)
	}
	dataset := spec.DefaultDataset()

	// Unscheduled baseline: the reference for cycles and for bit-equality.
	baseProg, err := spec.CompileCached(env.Cache, ptxas.Options{})
	if err != nil {
		return SchedRow{}, err
	}
	baseCtx := cuda.NewContext(env.Config)
	baseRes, err := spec.Run(baseCtx, baseProg, dataset)
	if err != nil {
		return SchedRow{}, fmt.Errorf("experiments: %s baseline: %w", app, err)
	}
	if baseRes.VerifyErr != nil {
		return SchedRow{}, fmt.Errorf("experiments: %s baseline failed verification: %w",
			app, baseRes.VerifyErr)
	}
	row := SchedRow{App: app, BaseCycles: baseCtx.TotalKernelCycles, Candidates: candidates}

	// Candidate seeds: index 0 is the deterministic heuristic; the rest
	// jitter tie-breaking through the shared splitmix construction.
	seeds := make([]uint64, candidates)
	for i := 1; i < candidates; i++ {
		seeds[i] = difftest.SplitMix(seed, uint64(i))
	}

	results := make([]schedCandidate, candidates)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				cycles, ok, err := evalSchedule(env, spec, dataset, seeds[i], baseRes)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				results[i] = schedCandidate{cycles: cycles, ok: ok}
			}
		}()
	}
	for i := 0; i < candidates; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if firstErr != nil {
		return SchedRow{}, firstErr
	}

	best := -1
	for i, c := range results {
		if !c.ok {
			row.Rejected++
			continue
		}
		if i == 0 {
			row.HeurCycles = c.cycles
		}
		if best < 0 || c.cycles < results[best].cycles {
			best = i
		}
	}
	if best < 0 {
		return SchedRow{}, fmt.Errorf("experiments: %s: every schedule candidate was rejected", app)
	}
	row.BestCycles = results[best].cycles
	row.BestSeed = seeds[best]
	return row, nil
}

// evalSchedule compiles one candidate with the verifier forced on (the
// schedule check must certify the permutation), runs it, and gates on
// bit-equal output and stdout against the unscheduled baseline. A
// verifier rejection or output divergence is a vetoed candidate (ok
// false), not an experiment error: the harness's whole point is that
// unsound candidates are fenced out, not trusted.
func evalSchedule(env Env, spec *workloads.Spec, dataset string, schedSeed uint64,
	base *workloads.Result) (cycles uint64, ok bool, err error) {

	opts := ptxas.Options{Schedule: true, SchedSeed: schedSeed, Verify: analysis.VerifyOn}
	prog, err := spec.CompileCached(env.Cache, opts)
	if err != nil {
		var ve *analysis.VerifyError
		if errors.As(err, &ve) {
			return 0, false, nil
		}
		return 0, false, err
	}
	ctx := cuda.NewContext(env.Config)
	res, err := spec.Run(ctx, prog, dataset)
	if err != nil {
		return 0, false, err
	}
	if res.VerifyErr != nil {
		return 0, false, nil
	}
	if res.Stdout != base.Stdout || len(res.Output) != len(base.Output) {
		return 0, false, nil
	}
	for i := range res.Output {
		if res.Output[i] != base.Output[i] {
			return 0, false, nil
		}
	}
	return ctx.TotalKernelCycles, true, nil
}

// FormatSchedTable renders the autotuning results.
func FormatSchedTable(rows []SchedRow) string {
	var b strings.Builder
	b.WriteString("sched: simulator-guided instruction-schedule autotuning (simulated cycles)\n")
	b.WriteString(fmt.Sprintf("%-18s %12s %12s %12s %10s %7s %9s %8s\n",
		"app", "base", "heuristic", "best", "best seed", "cands", "rejected", "speedup"))
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-18s %12d %12d %12d %#10x %7d %9d %7.3fx\n",
			r.App, r.BaseCycles, r.HeurCycles, r.BestCycles, r.BestSeed,
			r.Candidates, r.Rejected, r.Speedup()))
	}
	return b.String()
}
