package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/obs/pcsamp"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/workloads"
)

// PCSampPeriods are the sampling cadences the accuracy report sweeps.
// pcsamp.DefaultPeriod sits in the middle; period 1 is the exact ground
// truth the sweep is judged against (same metric, no sampling error).
var PCSampPeriods = []uint64{10, pcsamp.DefaultPeriod, 1000}

// PCSampRow is one (app, period) accuracy measurement: how well the
// period-P sampled profile reproduces the period-1 exact cycle profile,
// cross-validated against exact SASSI per-instruction execution counts.
type PCSampRow struct {
	App     string
	Period  uint64
	PCs     int     // distinct PCs in the exact profile
	Samples uint64  // period-weighted samples collected at this period
	Rank    float64 // Spearman rank correlation, sampled vs exact cycles
	Top5    float64 // fraction of the exact top-5 PCs the sample's top-5 recovers
	MeanErr float64 // mean relative per-PC cycle error over the exact top-90% PCs
	// ExecRank cross-validates against an independent ground truth: the
	// Spearman correlation between the sampled cycle ranking and exact
	// SASSI warp-execution counts weighted by static issue cost. It is
	// period-dependent only through sampling noise; memory stall time
	// (invisible to an execution counter) bounds it below 1.0 even at
	// period 1.
	ExecRank float64
}

// PCSampReport measures PC-sampling accuracy for each app: profile each
// workload uninstrumented at period 1 (exact) and at each sweep period
// (estimated), and compare per-PC cycle attributions. Defaults to the
// short-gate apps when apps is empty.
func PCSampReport(env Env, apps []string) ([]PCSampRow, error) {
	if len(apps) == 0 {
		apps = []string{"parboil.sgemm", "parboil.bfs", "parboil.stencil"}
	}
	var rows []PCSampRow
	for _, app := range apps {
		spec, ok := workloads.Get(app)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", app)
		}
		ds := spec.DefaultDataset()
		exact, err := pcsampProfile(env, spec, ds, 1)
		if err != nil {
			return nil, err
		}
		truth := exact.PCCycles()
		execCycles, err := pcsampExecCycles(env, spec, ds)
		if err != nil {
			return nil, err
		}
		for _, period := range PCSampPeriods {
			est, err := pcsampProfile(env, spec, ds, period)
			if err != nil {
				return nil, err
			}
			got := est.PCCycles()
			rows = append(rows, PCSampRow{
				App:      app,
				Period:   period,
				PCs:      len(truth),
				Samples:  est.TotalSamples(),
				Rank:     spearman(truth, got),
				Top5:     topNOverlap(truth, got, 5),
				MeanErr:  meanRelErr(truth, got, 0.9),
				ExecRank: spearman(execCycles, got),
			})
		}
	}
	return rows, nil
}

// pcsampProfile runs the workload uninstrumented with a private sampler at
// the given period and returns the merged profile.
func pcsampProfile(env Env, spec *workloads.Spec, dataset string, period uint64) (*pcsamp.Profile, error) {
	prog, err := spec.CompileCached(env.Cache, ptxas.Options{})
	if err != nil {
		return nil, err
	}
	ctx := cuda.NewContext(env.Config)
	s := pcsamp.New(period)
	ctx.Device().PCSamp = s
	res, err := spec.Run(ctx, prog, dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s(%s) sampled run: %w", spec.Name, dataset, err)
	}
	if res.VerifyErr != nil {
		return nil, fmt.Errorf("experiments: %s(%s) sampled run failed verification: %w",
			spec.Name, dataset, res.VerifyErr)
	}
	return s.Profile(), nil
}

// pcsampExecCycles runs the workload under the exact SASSI per-instruction
// profiler and converts warp-execution counts into issue-cost-weighted
// cycles per original PC. Instrumentation reports original instruction
// offsets, so the keys line up with the uninstrumented sampled profile.
func pcsampExecCycles(env Env, spec *workloads.Spec, dataset string) (map[pcsamp.PCKey]uint64, error) {
	ctx := cuda.NewContext(env.Config)
	prof := handlers.NewPCProfiler(ctx)
	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		return nil, err
	}
	if err := sassi.Instrument(prog, prof.Options()); err != nil {
		return nil, err
	}
	rt := sassi.NewRuntime(prog)
	if err := rt.Register(prof.Handler()); err != nil {
		return nil, err
	}
	rt.Attach(ctx.Device())
	res, err := spec.Run(ctx, prog, dataset)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s(%s) exact profile run: %w", spec.Name, dataset, err)
	}
	if res.VerifyErr != nil {
		return nil, fmt.Errorf("experiments: %s(%s) exact profile failed verification: %w",
			spec.Name, dataset, res.VerifyErr)
	}
	counts, err := prof.Counts()
	if err != nil {
		return nil, err
	}
	out := make(map[pcsamp.PCKey]uint64, len(counts))
	for addr, c := range counts {
		ki := int(addr>>20) - 1
		if ki < 0 || ki >= len(prog.Kernels) {
			continue
		}
		k := prog.Kernels[ki]
		idx := sass.IndexOfOffset(addr & 0xFFFFF)
		if idx < 0 || idx >= len(k.Instrs) {
			continue
		}
		cost := uint64(sass.IssueCost(&k.Instrs[idx]))
		out[pcsamp.PCKey{Kernel: k.Name, PC: int32(idx)}] += c.Execs * cost
	}
	return out, nil
}

// spearman computes the Spearman rank correlation between two per-PC maps
// over the union of their keys (missing PCs count as zero), with averaged
// ranks for ties.
func spearman(a, b map[pcsamp.PCKey]uint64) float64 {
	keys := unionKeys(a, b)
	if len(keys) < 2 {
		return 1
	}
	ra := ranks(keys, a)
	rb := ranks(keys, b)
	return pearson(ra, rb)
}

func unionKeys(a, b map[pcsamp.PCKey]uint64) []pcsamp.PCKey {
	set := make(map[pcsamp.PCKey]struct{}, len(a)+len(b))
	for k := range a {
		set[k] = struct{}{}
	}
	for k := range b {
		set[k] = struct{}{}
	}
	keys := make([]pcsamp.PCKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kernel != keys[j].Kernel {
			return keys[i].Kernel < keys[j].Kernel
		}
		return keys[i].PC < keys[j].PC
	})
	return keys
}

// ranks returns tie-averaged ranks of vals[keys[i]].
func ranks(keys []pcsamp.PCKey, vals map[pcsamp.PCKey]uint64) []float64 {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return vals[keys[idx[x]]] < vals[keys[idx[y]]]
	})
	out := make([]float64, len(keys))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && vals[keys[idx[j]]] == vals[keys[idx[i]]] {
			j++
		}
		r := float64(i+j-1)/2 + 1 // average rank of the tie group
		for k := i; k < j; k++ {
			out[idx[k]] = r
		}
		i = j
	}
	return out
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 1 // both constant (or one is): degenerate, call it agreement
	}
	return sxy / math.Sqrt(sxx*syy)
}

// topNOverlap reports what fraction of the exact top-n PCs the estimated
// top-n recovers (n shrinks to the exact profile size when smaller).
func topNOverlap(truth, est map[pcsamp.PCKey]uint64, n int) float64 {
	t := topN(truth, n)
	if len(t) == 0 {
		return 1
	}
	e := topN(est, len(t))
	hits := 0
	for _, k := range t {
		for _, g := range e {
			if k == g {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(t))
}

func topN(vals map[pcsamp.PCKey]uint64, n int) []pcsamp.PCKey {
	keys := unionKeys(vals, nil)
	sort.SliceStable(keys, func(i, j int) bool {
		if vals[keys[i]] != vals[keys[j]] {
			return vals[keys[i]] > vals[keys[j]]
		}
		if keys[i].Kernel != keys[j].Kernel {
			return keys[i].Kernel < keys[j].Kernel
		}
		return keys[i].PC < keys[j].PC
	})
	if len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

// meanRelErr averages |est-truth|/truth over the hottest exact PCs that
// together cover the given fraction of total exact cycles — the tail of
// near-zero PCs would otherwise dominate with meaningless relative errors.
func meanRelErr(truth, est map[pcsamp.PCKey]uint64, cover float64) float64 {
	keys := topN(truth, len(truth))
	var total uint64
	for _, v := range truth {
		total += v
	}
	if total == 0 {
		return 0
	}
	var sum float64
	var n int
	var seen uint64
	for _, k := range keys {
		tv := truth[k]
		if tv == 0 {
			break
		}
		sum += math.Abs(float64(est[k])-float64(tv)) / float64(tv)
		n++
		seen += tv
		if float64(seen) >= cover*float64(total) {
			break
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FormatPCSampReport renders the accuracy table.
func FormatPCSampReport(rows []PCSampRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "PC-sampling accuracy vs exact (period-1) cycle profile\n")
	fmt.Fprintf(&b, "%-18s %7s %5s %10s %6s %6s %8s %9s\n",
		"app", "period", "pcs", "samples", "rank", "top5", "meanerr", "execrank")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %7d %5d %10d %6.3f %6.2f %7.1f%% %9.3f\n",
			r.App, r.Period, r.PCs, r.Samples, r.Rank, r.Top5, 100*r.MeanErr, r.ExecRank)
	}
	return b.String()
}

// AssertPCSampTop5 fails when any app's top-5 agreement at the default
// sampling period falls below min — the CI accuracy smoke gate.
func AssertPCSampTop5(rows []PCSampRow, min float64) error {
	for _, r := range rows {
		if r.Period == pcsamp.DefaultPeriod && r.Top5 < min {
			return fmt.Errorf("experiments: %s top-5 agreement %.2f < %.2f at period %d",
				r.App, r.Top5, min, r.Period)
		}
	}
	return nil
}
