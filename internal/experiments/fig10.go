package experiments

import (
	"fmt"
	"strings"

	"sassi/internal/faults"
	"sassi/internal/workloads"
)

// Fig10Row is one application's injection-outcome distribution (Figure 10).
type Fig10Row struct {
	App    string
	Result *faults.Result
}

// Fig10Apps returns the default Figure 10 application list: a suite subset
// chosen to keep campaign runtime reasonable while covering the behaviour
// spectrum (arithmetic, binning, graph, DP, search codes).
func Fig10Apps() []string {
	return []string{
		"parboil.bfs",
		"parboil.histo",
		"parboil.sgemm",
		"parboil.stencil",
		"parboil.sad",
		"rodinia.kmeans",
		"rodinia.nn",
		"rodinia.pathfinder",
		"rodinia.b+tree",
		"rodinia.hotspot",
		"rodinia.backprop",
		"rodinia.gaussian",
	}
}

// Figure10 runs injection campaigns (injections runs per app; the paper
// uses 1000) over the given applications (nil = default list).
func Figure10(env Env, apps []string, injections int, seed uint64) ([]Fig10Row, error) {
	if apps == nil {
		apps = Fig10Apps()
	}
	if injections <= 0 {
		injections = 100
	}
	var rows []Fig10Row
	for _, app := range apps {
		spec, ok := workloads.Get(app)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", app)
		}
		dataset := spec.DefaultDataset()
		if app == "parboil.bfs" {
			dataset = "UT" // smallest graph keeps campaigns quick
		}
		c := &faults.Campaign{
			Spec: spec, Dataset: dataset,
			Injections: injections, Seed: seed, Config: env.Config,
			Workers: env.Workers, Cache: env.Cache,
			Metrics: env.Metrics, Trace: env.Trace,
		}
		res, err := c.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: campaign %s: %w", app, err)
		}
		rows = append(rows, Fig10Row{App: app, Result: res})
	}
	return rows, nil
}

// FormatFigure10 renders stacked-bar percentages per app plus the average.
func FormatFigure10(rows []Fig10Row) string {
	var b strings.Builder
	b.WriteString("Figure 10: Error injection outcomes (fraction of injections)\n")
	b.WriteString(fmt.Sprintf("%-22s %8s %8s %8s %9s %8s %8s\n",
		"app", "masked", "crash", "hang", "symptom", "stdout", "output"))
	var avg [faults.NumOutcomes]float64
	for _, r := range rows {
		b.WriteString(fmt.Sprintf("%-22s %7.1f%% %7.1f%% %7.1f%% %8.1f%% %7.1f%% %7.1f%%\n",
			r.App,
			100*r.Result.Fraction(faults.Masked),
			100*r.Result.Fraction(faults.Crash),
			100*r.Result.Fraction(faults.Hang),
			100*r.Result.Fraction(faults.FailureSymptom),
			100*r.Result.Fraction(faults.StdoutOnlyDiff),
			100*r.Result.Fraction(faults.OutputDiff)))
		for o := 0; o < faults.NumOutcomes; o++ {
			avg[o] += r.Result.Fraction(faults.Outcome(o))
		}
	}
	if len(rows) > 0 {
		n := float64(len(rows))
		b.WriteString(fmt.Sprintf("%-22s %7.1f%% %7.1f%% %7.1f%% %8.1f%% %7.1f%% %7.1f%%\n",
			"AVERAGE", 100*avg[0]/n, 100*avg[1]/n, 100*avg[2]/n, 100*avg[3]/n, 100*avg[4]/n, 100*avg[5]/n))
	}
	return b.String()
}
