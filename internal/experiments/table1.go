package experiments

import (
	"fmt"
	"strings"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/sassi"
)

// Table1Row is one benchmark's branch-divergence summary (paper Table 1).
type Table1Row struct {
	Suite    string
	Bench    string
	Dataset  string
	Static   int     // total static branches
	StaticD  int     // static branches that ever diverged
	StaticPc float64 // %
	Dynamic  uint64  // dynamic (warp-level) branch executions
	DynamicD uint64  // dynamic divergent executions
	DynPc    float64 // %
}

// table1Apps mirrors the paper's Table 1 benchmark/dataset list.
var table1Apps = []struct {
	suite, workload, dataset string
}{
	{"Parboil", "parboil.bfs", "1M"},
	{"Parboil", "parboil.bfs", "NY"},
	{"Parboil", "parboil.bfs", "SF"},
	{"Parboil", "parboil.bfs", "UT"},
	{"Parboil", "parboil.sgemm", "small"},
	{"Parboil", "parboil.sgemm", "medium"},
	{"Parboil", "parboil.tpacf", "small"},
	{"Rodinia", "rodinia.bfs", "default"},
	{"Rodinia", "rodinia.gaussian", "small"},
	{"Rodinia", "rodinia.heartwall", "small"},
	{"Rodinia", "rodinia.srad_v1", "small"},
	{"Rodinia", "rodinia.srad_v2", "small"},
	{"Rodinia", "rodinia.streamcluster", "small"},
}

// Table1 runs Case Study I over the paper's benchmark list.
func Table1(env Env) ([]Table1Row, error) {
	var rows []Table1Row
	for _, app := range table1Apps {
		var p *handlers.BranchProfiler
		_, err := instrumentedRun(env, app.workload, app.dataset,
			func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
				p = handlers.NewBranchProfiler(ctx)
				if env.Fast {
					return p.SequentialHandler(), p.Options()
				}
				return p.Handler(), p.Options()
			})
		if err != nil {
			return nil, err
		}
		s, err := p.Summarize()
		if err != nil {
			return nil, err
		}
		bench := app.workload
		if i := strings.IndexByte(bench, '.'); i >= 0 {
			bench = bench[i+1:]
		}
		rows = append(rows, Table1Row{
			Suite: app.suite, Bench: bench, Dataset: app.dataset,
			Static: s.StaticBranches, StaticD: s.StaticDivergent, StaticPc: s.StaticDivergentPc,
			Dynamic: s.DynamicBranches, DynamicD: s.DynamicDivergent, DynPc: s.DynDivergentPc,
		})
	}
	return rows, nil
}

// FormatTable1 renders the rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Average branch divergence statistics\n")
	b.WriteString(fmt.Sprintf("%-28s %8s %9s %6s | %12s %12s %6s\n",
		"Benchmark (Dataset)", "Static", "Diverg.", "%", "Dynamic", "Divergent", "%"))
	for _, r := range rows {
		name := fmt.Sprintf("%s.%s (%s)", strings.ToLower(r.Suite), r.Bench, r.Dataset)
		b.WriteString(fmt.Sprintf("%-28s %8d %9d %6.1f | %12d %12d %6.1f\n",
			name, r.Static, r.StaticD, r.StaticPc, r.Dynamic, r.DynamicD, r.DynPc))
	}
	return b.String()
}
