package experiments

// Unit coverage for the sampling-accuracy metrics (they gate CI, so their
// own arithmetic must be pinned) plus an end-to-end report smoke on the
// cheapest workload.

import (
	"math"
	"strings"
	"testing"

	"sassi/internal/obs/pcsamp"
)

func pk(pc int32) pcsamp.PCKey { return pcsamp.PCKey{Kernel: "k", PC: pc} }

func TestSpearman(t *testing.T) {
	a := map[pcsamp.PCKey]uint64{pk(0): 100, pk(1): 50, pk(2): 10}
	if got := spearman(a, a); got != 1 {
		t.Errorf("self-correlation = %v, want 1", got)
	}
	inv := map[pcsamp.PCKey]uint64{pk(0): 10, pk(1): 50, pk(2): 100}
	if got := spearman(a, inv); got != -1 {
		t.Errorf("inverted correlation = %v, want -1", got)
	}
	// Missing keys count as zero on the other side.
	partial := map[pcsamp.PCKey]uint64{pk(0): 100}
	if got := spearman(a, partial); got <= 0 || got >= 1 {
		t.Errorf("partial overlap correlation = %v, want in (0,1)", got)
	}
	// Degenerate inputs call constant rankings agreement.
	if got := spearman(map[pcsamp.PCKey]uint64{pk(0): 5}, map[pcsamp.PCKey]uint64{pk(0): 9}); got != 1 {
		t.Errorf("single-key correlation = %v, want 1", got)
	}
}

func TestRanksTieAveraging(t *testing.T) {
	vals := map[pcsamp.PCKey]uint64{pk(0): 5, pk(1): 5, pk(2): 9}
	r := ranks(unionKeys(vals, nil), vals)
	// The two tied smallest values share rank (1+2)/2; the largest is 3.
	if r[0] != 1.5 || r[1] != 1.5 || r[2] != 3 {
		t.Errorf("ranks = %v, want [1.5 1.5 3]", r)
	}
}

func TestTopNOverlap(t *testing.T) {
	truth := map[pcsamp.PCKey]uint64{pk(0): 100, pk(1): 90, pk(2): 5, pk(3): 1}
	if got := topNOverlap(truth, truth, 2); got != 1 {
		t.Errorf("self top-2 overlap = %v, want 1", got)
	}
	// Estimate swaps the hot pair for the cold pair: zero overlap.
	est := map[pcsamp.PCKey]uint64{pk(0): 1, pk(1): 2, pk(2): 90, pk(3): 100}
	if got := topNOverlap(truth, est, 2); got != 0 {
		t.Errorf("disjoint top-2 overlap = %v, want 0", got)
	}
	// n larger than the profile shrinks to its size.
	if got := topNOverlap(truth, truth, 50); got != 1 {
		t.Errorf("oversized-n overlap = %v, want 1", got)
	}
	if got := topNOverlap(nil, est, 5); got != 1 {
		t.Errorf("empty-truth overlap = %v, want 1 (vacuous)", got)
	}
}

func TestMeanRelErr(t *testing.T) {
	truth := map[pcsamp.PCKey]uint64{pk(0): 100, pk(1): 100}
	if got := meanRelErr(truth, truth, 0.9); got != 0 {
		t.Errorf("self error = %v, want 0", got)
	}
	est := map[pcsamp.PCKey]uint64{pk(0): 150, pk(1): 50}
	if got := meanRelErr(truth, est, 1.0); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("error = %v, want 0.5", got)
	}
	if got := meanRelErr(map[pcsamp.PCKey]uint64{}, est, 0.9); got != 0 {
		t.Errorf("empty-truth error = %v, want 0", got)
	}
}

func TestAssertPCSampTop5(t *testing.T) {
	rows := []PCSampRow{
		{App: "a", Period: 10, Top5: 0.0}, // non-default periods are not gated
		{App: "a", Period: pcsamp.DefaultPeriod, Top5: 0.9},
	}
	if err := AssertPCSampTop5(rows, 0.8); err != nil {
		t.Errorf("assert at 0.8 with top5 0.9: %v", err)
	}
	if err := AssertPCSampTop5(rows, 0.95); err == nil {
		t.Error("assert at 0.95 with top5 0.9 passed")
	}
}

// TestPCSampReportSmoke runs the full report pipeline (exact period-1
// profile, SASSI exec-count cross-validation, period sweep) on the
// cheapest workload and sanity-checks every column.
func TestPCSampReportSmoke(t *testing.T) {
	rows, err := PCSampReport(Default(), []string{"demo.vecadd"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PCSampPeriods) {
		t.Fatalf("%d rows, want %d", len(rows), len(PCSampPeriods))
	}
	for _, r := range rows {
		if r.App != "demo.vecadd" {
			t.Errorf("row app = %q", r.App)
		}
		if r.PCs <= 0 {
			t.Errorf("period %d: exact profile has %d PCs", r.Period, r.PCs)
		}
		if r.Rank < -1 || r.Rank > 1 || r.ExecRank < -1 || r.ExecRank > 1 {
			t.Errorf("period %d: correlation out of range: rank=%v execrank=%v",
				r.Period, r.Rank, r.ExecRank)
		}
		if r.Top5 < 0 || r.Top5 > 1 {
			t.Errorf("period %d: top5 = %v", r.Period, r.Top5)
		}
		if r.MeanErr < 0 {
			t.Errorf("period %d: meanerr = %v", r.Period, r.MeanErr)
		}
	}
	// Sampling more often must collect at least as many weighted samples.
	for i := 1; i < len(rows); i++ {
		if rows[i].Period > rows[i-1].Period && rows[i].Samples > rows[i-1].Samples {
			t.Errorf("period %d collected more samples (%d) than period %d (%d)",
				rows[i].Period, rows[i].Samples, rows[i-1].Period, rows[i-1].Samples)
		}
	}
	out := FormatPCSampReport(rows)
	if !strings.Contains(out, "demo.vecadd") {
		t.Errorf("formatted report missing the app:\n%s", out)
	}
}
