package experiments

import (
	"fmt"
	"strings"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/mem"
	"sassi/internal/sassi"
)

// Fig7Row is one application's unique-cacheline PMF (Figure 7): the
// fraction of thread-level memory accesses issued from warp instructions
// touching N unique 32B lines, N = 1..32.
type Fig7Row struct {
	App     string
	Dataset string
	PMF     [32]float64
	// MeanUnique is the PMF's mean — a one-number divergence summary.
	MeanUnique float64
	// FullyDiverged is the N=32 share (the paper highlights miniFE-CSR's
	// 0.73 here).
	FullyDiverged float64
}

// fig7Apps mirrors the paper's Figure 7 application list.
var fig7Apps = []struct {
	app, dataset string
}{
	{"parboil.bfs", "NY"},
	{"parboil.bfs", "SF"},
	{"parboil.bfs", "UT"},
	{"parboil.spmv", "small"},
	{"parboil.spmv", "medium"},
	{"parboil.spmv", "large"},
	{"rodinia.bfs", "default"},
	{"rodinia.heartwall", "small"},
	{"parboil.mri-gridding", "small"},
	{"minife.ell", "default"},
	{"minife.csr", "default"},
}

// memDivMatrix profiles one app with the Case Study II handler.
func memDivMatrix(env Env, app, dataset string) (*mem.DivergenceMatrix, error) {
	var p *handlers.MemDivProfiler
	_, err := instrumentedRun(env, app, dataset,
		func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
			p = handlers.NewMemDivProfiler(ctx)
			if env.Fast {
				return p.SequentialHandler(), p.Options()
			}
			return p.Handler(), p.Options()
		})
	if err != nil {
		return nil, err
	}
	return p.Matrix()
}

// Figure7 computes the unique-line PMFs for the paper's application list.
func Figure7(env Env) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, a := range fig7Apps {
		m, err := memDivMatrix(env, a.app, a.dataset)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{App: a.app, Dataset: a.dataset, PMF: m.UniqueLinePMF()}
		for u, f := range row.PMF {
			row.MeanUnique += float64(u+1) * f
		}
		row.FullyDiverged = row.PMF[31]
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure7 renders the PMFs as a table plus summary columns.
func FormatFigure7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Figure 7: PMF of unique 32B cachelines per warp memory instruction\n")
	b.WriteString(fmt.Sprintf("%-26s %6s %6s %6s %6s %6s %7s | %6s %8s\n",
		"app (dataset)", "N=1", "N=2", "N=4", "N=8", "N=16", "N=32", "mean", "N=32 pct"))
	for _, r := range rows {
		name := fmt.Sprintf("%s (%s)", r.App, r.Dataset)
		b.WriteString(fmt.Sprintf("%-26s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %6.1f%% | %6.2f %7.1f%%\n",
			name, 100*r.PMF[0], 100*r.PMF[1], 100*r.PMF[3], 100*r.PMF[7],
			100*r.PMF[15], 100*r.PMF[31], r.MeanUnique, 100*r.FullyDiverged))
	}
	return b.String()
}

// Fig8Result carries the two occupancy-by-divergence matrices of Figure 8.
type Fig8Result struct {
	CSR *mem.DivergenceMatrix
	ELL *mem.DivergenceMatrix
}

// Figure8 computes the miniFE CSR-vs-ELL matrices.
func Figure8(env Env) (*Fig8Result, error) {
	csr, err := memDivMatrix(env, "minife.csr", "default")
	if err != nil {
		return nil, err
	}
	ell, err := memDivMatrix(env, "minife.ell", "default")
	if err != nil {
		return nil, err
	}
	return &Fig8Result{CSR: csr, ELL: ell}, nil
}

// FormatFigure8 renders each matrix as a log-scaled character heatmap
// (x: warp occupancy, y: unique lines), the text analog of the paper's
// scatter plots.
func FormatFigure8(r *Fig8Result) string {
	var b strings.Builder
	render := func(name string, m *mem.DivergenceMatrix) {
		b.WriteString(fmt.Sprintf("Figure 8 (%s): warp occupancy (x) vs unique lines (y); . < 10 <= + < 100 <= * < 1000 <= @\n", name))
		for u := 31; u >= 0; u-- {
			b.WriteString(fmt.Sprintf("%2d |", u+1))
			for act := 0; act < 32; act++ {
				c := m.Counts[act][u]
				switch {
				case c == 0:
					b.WriteByte(' ')
				case c < 10:
					b.WriteByte('.')
				case c < 100:
					b.WriteByte('+')
				case c < 1000:
					b.WriteByte('*')
				default:
					b.WriteByte('@')
				}
			}
			b.WriteString("|\n")
		}
		b.WriteString("    " + strings.Repeat("-", 32) + "\n")
		b.WriteString("     1       8       16      24  32 (active threads)\n\n")
	}
	render("miniFE-CSR", r.CSR)
	render("miniFE-ELL", r.ELL)
	return b.String()
}
