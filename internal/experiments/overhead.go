package experiments

import (
	"fmt"
	"strings"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/sassi"
	"sassi/internal/workloads"
)

// OverheadTools names the instrumentation tools the overhead report sweeps
// (the three profiling case studies; error injection perturbs execution and
// has no meaningful instruction-count baseline comparison).
var OverheadTools = []string{"branch", "memdiv", "valueprof"}

// OverheadCell is one (workload, tool) measurement: where the extra
// dynamic work came from. InstrSlowdown is instrumented/baseline warp
// instructions — the paper's Figure 4 y-axis analog — and InjectedShare is
// the fraction of the instrumented stream that the instrumentor inserted
// (ABI save/restore plus parameter marshalling; §9.1 attributes ~80% of
// SASSI overhead there). The remainder of the instrumented stream is the
// original program.
type OverheadCell struct {
	Tool string

	WarpInstrs         uint64
	InjectedWarpInstrs uint64
	HandlerCalls       uint64
	Cycles             uint64

	InstrSlowdown float64 // warp instrs vs baseline
	CycleSlowdown float64 // modeled cycles vs baseline
	InjectedShare float64 // injected / instrumented warp instrs
}

// OverheadRow is one workload's baseline and per-tool cells.
type OverheadRow struct {
	App     string
	Dataset string

	BaselineWarpInstrs uint64
	BaselineCycles     uint64
	Launches           int

	Tools []OverheadCell
}

// OverheadApps returns the default workload list for the report: small
// representatives of the suite so the report stays quick.
func OverheadApps() []string {
	return []string{"demo.vecadd", "rodinia.bfs", "parboil.stencil"}
}

// overheadSetup returns the handler+options constructor for a named tool.
func overheadSetup(env Env, tool string) (func(ctx *cuda.Context) (*sassi.Handler, sassi.Options), error) {
	switch tool {
	case "branch":
		return func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
			p := handlers.NewBranchProfiler(ctx)
			if env.Fast {
				return p.SequentialHandler(), p.Options()
			}
			return p.Handler(), p.Options()
		}, nil
	case "memdiv":
		return func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
			p := handlers.NewMemDivProfiler(ctx)
			if env.Fast {
				return p.SequentialHandler(), p.Options()
			}
			return p.Handler(), p.Options()
		}, nil
	case "valueprof":
		return func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
			p := handlers.NewValueProfiler(ctx)
			if env.Fast {
				return p.SequentialHandler(), p.Options()
			}
			return p.Handler(), p.Options()
		}, nil
	case "opcount":
		return func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
			p := handlers.NewOpCounter(ctx)
			return p.Handler(env.Fast), p.Options()
		}, nil
	}
	return nil, fmt.Errorf("experiments: unknown overhead tool %q", tool)
}

// OverheadReport measures, for each workload × tool, where instrumentation
// overhead comes from: baseline vs instrumented warp-instruction counts,
// the injected share of the instrumented stream, handler call counts, and
// the modeled cycle slowdown. apps/tools nil select the defaults.
func OverheadReport(env Env, apps, tools []string) ([]OverheadRow, error) {
	if apps == nil {
		apps = OverheadApps()
	}
	if tools == nil {
		tools = OverheadTools
	}
	var rows []OverheadRow
	for _, app := range apps {
		spec, ok := workloads.Get(app)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", app)
		}
		dataset := spec.DefaultDataset()
		row := OverheadRow{App: app, Dataset: dataset}

		baseCtx, _, err := baselineRun(env, app, dataset)
		if err != nil {
			return nil, err
		}
		row.BaselineWarpInstrs = baseCtx.TotalWarpInstrs
		row.BaselineCycles = baseCtx.TotalKernelCycles
		row.Launches = baseCtx.Launches()

		for _, tool := range tools {
			setup, err := overheadSetup(env, tool)
			if err != nil {
				return nil, err
			}
			ctx, err := instrumentedRun(env, app, dataset, setup)
			if err != nil {
				return nil, fmt.Errorf("experiments: overhead %s/%s: %w", app, tool, err)
			}
			cell := OverheadCell{
				Tool:               tool,
				WarpInstrs:         ctx.TotalWarpInstrs,
				InjectedWarpInstrs: ctx.TotalInjectedWarpInstrs,
				HandlerCalls:       ctx.TotalHandlerCalls,
				Cycles:             ctx.TotalKernelCycles,
			}
			if row.BaselineWarpInstrs > 0 {
				cell.InstrSlowdown = float64(cell.WarpInstrs) / float64(row.BaselineWarpInstrs)
			}
			if row.BaselineCycles > 0 {
				cell.CycleSlowdown = float64(cell.Cycles) / float64(row.BaselineCycles)
			}
			if cell.WarpInstrs > 0 {
				cell.InjectedShare = float64(cell.InjectedWarpInstrs) / float64(cell.WarpInstrs)
			}
			row.Tools = append(row.Tools, cell)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatOverheadReport renders the rows as the per-workload × per-tool
// breakdown table (the Figure 4 shape: how much bigger the dynamic
// instruction stream got, and how much of it is injected code).
func FormatOverheadReport(rows []OverheadRow) string {
	var b strings.Builder
	b.WriteString("Instrumentation overhead breakdown (per workload x tool)\n")
	b.WriteString(fmt.Sprintf("%-28s %-10s %12s %12s %9s %12s %8s %8s\n",
		"Benchmark", "Tool", "base winstr", "inst winstr", "inj%", "handlers", "xInstr", "xCycles"))
	for _, r := range rows {
		for i, c := range r.Tools {
			name := fmt.Sprintf("%s(%s)", r.App, r.Dataset)
			if i > 0 {
				name = ""
			}
			b.WriteString(fmt.Sprintf("%-28s %-10s %12d %12d %8.1f%% %12d %7.2fx %7.2fx\n",
				name, c.Tool, r.BaselineWarpInstrs, c.WarpInstrs,
				100*c.InjectedShare, c.HandlerCalls, c.InstrSlowdown, c.CycleSlowdown))
		}
	}
	b.WriteString("inj% = injected share of the instrumented warp-instruction stream\n")
	return b.String()
}
