package experiments_test

import (
	"strings"
	"testing"

	"sassi/internal/experiments"
	"sassi/internal/sim"
)

func testEnv() experiments.Env {
	return experiments.Env{Config: sim.MiniGPU(), Fast: true}
}

// TestTable1Shape checks the qualitative claims of the paper's Table 1:
// sgemm and streamcluster are fully convergent; tpacf and heartwall-like
// codes diverge heavily; bfs divergence is dataset-dependent.
func TestTable1Shape(t *testing.T) {
	rows, err := experiments.Table1(testEnv())
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	byName := map[string]experiments.Table1Row{}
	for _, r := range rows {
		byName[r.Bench+"/"+r.Dataset] = r
	}
	for _, conv := range []string{"sgemm/small", "sgemm/medium", "streamcluster/small"} {
		if r, ok := byName[conv]; !ok || r.DynamicD != 0 {
			t.Errorf("%s: want zero dynamic divergence, got %+v", conv, r)
		}
	}
	for _, div := range []string{"tpacf/small", "heartwall/small"} {
		r, ok := byName[div]
		if !ok || r.DynPc < 10 {
			t.Errorf("%s: want heavy divergence (>10%%), got %+v", div, r)
		}
	}
	// bfs divergence varies across datasets and is nonzero.
	var bfsPcs []float64
	for _, ds := range []string{"1M", "NY", "SF", "UT"} {
		r, ok := byName["bfs/"+ds]
		if !ok || r.DynamicD == 0 {
			t.Fatalf("bfs/%s: want nonzero divergence, got %+v", ds, r)
		}
		bfsPcs = append(bfsPcs, r.DynPc)
	}
	spread := false
	for _, pc := range bfsPcs[1:] {
		if pc != bfsPcs[0] {
			spread = true
		}
	}
	if !spread {
		t.Errorf("bfs divergence identical across datasets: %v", bfsPcs)
	}
	t.Logf("\n%s", experiments.FormatTable1(rows))
}

// TestFigure5Shape: a few branches dominate divergence, and the histogram
// differs between datasets.
func TestFigure5Shape(t *testing.T) {
	data, err := experiments.Figure5(testEnv())
	if err != nil {
		t.Fatalf("figure5: %v", err)
	}
	for _, ds := range []string{"1M", "UT"} {
		bars := data[ds]
		if len(bars) == 0 {
			t.Fatalf("%s: no branch bars", ds)
		}
		var div int
		for _, b := range bars {
			if b.Divergent > 0 {
				div++
			}
		}
		if div == 0 {
			t.Errorf("%s: no divergent branches", ds)
		}
		// Bars must be sorted by descending execution count.
		for i := 1; i < len(bars); i++ {
			if bars[i].Total > bars[i-1].Total {
				t.Errorf("%s: bars not sorted at %d", ds, i)
			}
		}
	}
	t.Logf("\n%s", experiments.FormatFigure5(data))
}

// TestFigure7And8Shape: miniFE-CSR is far more address-divergent than
// miniFE-ELL, with substantial fully-diverged accesses (paper: 73%).
func TestFigure7And8Shape(t *testing.T) {
	env := testEnv()
	rows, err := experiments.Figure7(env)
	if err != nil {
		t.Fatalf("figure7: %v", err)
	}
	var csr, ell experiments.Fig7Row
	for _, r := range rows {
		switch r.App {
		case "minife.csr":
			csr = r
		case "minife.ell":
			ell = r
		}
	}
	if csr.MeanUnique <= ell.MeanUnique {
		t.Errorf("CSR mean unique (%f) should exceed ELL (%f)", csr.MeanUnique, ell.MeanUnique)
	}
	if csr.FullyDiverged < 0.3 {
		t.Errorf("CSR fully-diverged share = %f, want substantial (paper: 0.73)", csr.FullyDiverged)
	}
	if ell.FullyDiverged > 0.2 {
		t.Errorf("ELL fully-diverged share = %f, want small", ell.FullyDiverged)
	}
	fig8, err := experiments.Figure8(env)
	if err != nil {
		t.Fatalf("figure8: %v", err)
	}
	if fig8.CSR.TotalAccesses() == 0 || fig8.ELL.TotalAccesses() == 0 {
		t.Fatal("empty figure 8 matrices")
	}
	t.Logf("\n%s\n%s", experiments.FormatFigure7(rows), experiments.FormatFigure8(fig8))
}

// TestTable2Shape: value profiling over a subset; constant bits are
// plentiful and some apps are scalar-heavy.
func TestTable2Shape(t *testing.T) {
	apps := []string{"demo.vecadd", "parboil.sgemm", "rodinia.b+tree", "parboil.bfs"}
	rows, err := experiments.Table2(testEnv(), apps)
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	if len(rows) != len(apps) {
		t.Fatalf("got %d rows, want %d", len(rows), len(apps))
	}
	for _, r := range rows {
		if r.DynConstBits <= 0 || r.DynConstBits > 100 {
			t.Errorf("%s: dyn const bits %f out of range", r.App, r.DynConstBits)
		}
		if r.DynScalar < 0 || r.DynScalar > 100 {
			t.Errorf("%s: dyn scalar %f out of range", r.App, r.DynScalar)
		}
	}
	t.Logf("\n%s", experiments.FormatTable2(rows))
}

// TestTable3Shape: instrumentation overhead ordering — value profiling
// (after every register write) must cost more kernel cycles than
// branch-only instrumentation.
func TestTable3Shape(t *testing.T) {
	apps := []string{"demo.vecadd", "parboil.sgemm", "rodinia.nn"}
	rows, err := experiments.Table3(testEnv(), apps)
	if err != nil {
		t.Fatalf("table3: %v", err)
	}
	for _, r := range rows {
		if r.K[2] <= r.K[0] {
			t.Errorf("%s: value profiling K (%f) should exceed branch K (%f)", r.App, r.K[2], r.K[0])
		}
		for cs := 0; cs < 4; cs++ {
			if r.K[cs] < 1 {
				t.Errorf("%s/%s: K=%f < 1 (instrumentation cannot speed kernels up)",
					r.App, experiments.CaseStudyNames[cs], r.K[cs])
			}
		}
	}
	t.Logf("\n%s", experiments.FormatTable3(rows))
}

// TestFigure10Small runs tiny campaigns end to end.
func TestFigure10Small(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	rows, err := experiments.Figure10(testEnv(), []string{"rodinia.nn", "rodinia.kmeans"}, 10, 3)
	if err != nil {
		t.Fatalf("figure10: %v", err)
	}
	out := experiments.FormatFigure10(rows)
	if !strings.Contains(out, "AVERAGE") {
		t.Errorf("missing average row:\n%s", out)
	}
	t.Logf("\n%s", out)
}
