package experiments

import (
	"fmt"
	"strings"

	"sassi/internal/faults"
	"sassi/internal/handlers"
	"sassi/internal/workloads"
)

// CFIRow is one application's control-state detection-coverage result.
type CFIRow struct {
	App    string
	Result *faults.ControlResult
}

// CFIApps returns the default control-campaign application list: the
// call-tree demo exercises every corruption class (it is the only workload
// with a real CAL/RET tree — ptxas never emits one), and bfs adds a
// compiled, divergence-heavy kernel for the divergence-stack and
// forged-call classes.
func CFIApps() []string {
	return []string{"demo.calltree", "parboil.bfs"}
}

// CFICoverage runs control-state corruption campaigns over the given
// applications (nil = default list) and reports per-class detection
// coverage of the runtime CFI checker.
func CFICoverage(env Env, apps []string, injections int, seed uint64) ([]CFIRow, error) {
	if apps == nil {
		apps = CFIApps()
	}
	if injections <= 0 {
		injections = 100
	}
	var rows []CFIRow
	for _, app := range apps {
		spec, ok := workloads.Get(app)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown workload %q", app)
		}
		dataset := spec.DefaultDataset()
		if app == "parboil.bfs" {
			dataset = "UT" // smallest graph keeps campaigns quick
		}
		c := &faults.ControlCampaign{
			Spec: spec, Dataset: dataset,
			Injections: injections, Seed: seed, Config: env.Config,
			Workers: env.Workers, Cache: env.Cache,
		}
		res, err := c.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: control campaign %s: %w", app, err)
		}
		rows = append(rows, CFIRow{App: app, Result: res})
	}
	return rows, nil
}

// FormatCFICoverage renders the detection-coverage table: one line per
// (app, corruption class) with the outcome split, plus the
// false-positive count from each app's uncorrupted run.
func FormatCFICoverage(rows []CFIRow) string {
	var b strings.Builder
	b.WriteString("CFI: control-state corruption detection coverage (fraction of injections)\n")
	b.WriteString(fmt.Sprintf("%-16s %-12s %6s %5s %9s %8s %6s %7s %7s\n",
		"app", "class", "sites", "runs", "detected", "crashed", "hung", "silent", "masked"))
	for _, r := range rows {
		res := r.Result
		for cl := 0; cl < int(handlers.NumCtrlClasses); cl++ {
			class := handlers.CtrlClass(cl)
			if res.Sites[cl] == 0 {
				b.WriteString(fmt.Sprintf("%-16s %-12s %6d %5s %9s\n",
					r.App, class, 0, "-", "n/a"))
				continue
			}
			b.WriteString(fmt.Sprintf("%-16s %-12s %6d %5d %8.1f%% %7.1f%% %5.1f%% %6.1f%% %6.1f%%\n",
				r.App, class, res.Sites[cl], res.ClassTotals[cl],
				100*res.Fraction(class, faults.CtrlDetected),
				100*res.Fraction(class, faults.CtrlCrash),
				100*res.Fraction(class, faults.CtrlHang),
				100*res.Fraction(class, faults.CtrlSilent),
				100*res.Fraction(class, faults.CtrlMasked)))
		}
		b.WriteString(fmt.Sprintf("%-16s false positives on the uncorrupted run: %d\n",
			r.App, res.FalsePositives))
	}
	return b.String()
}
