// Package difftest is the generative differential-testing subsystem: a
// seeded random kernel generator over the ptx builder, a multi-way
// execution oracle that machine-checks SASSI's central correctness claim
// (§5–§6: injected handler calls are ABI-transparent, so an instrumented
// kernel must leave architectural state bit-identical), and a shrinker
// that minimizes failing kernels to standalone .ptx repros.
//
// The oracle matrix runs every generated kernel four ways — uninstrumented
// and instrumented with each registered handler tool, each on parallel and
// on sequential SMs — and compares final state along two axes:
//
//   - Engine axis (same program, parallel vs sequential SMs): full
//     bit-equality of global/shared/local memory, complete register files,
//     predicates, condition codes, kernel statistics, and obs metric
//     snapshots, all of which the parallel engine promises deterministic.
//   - Instrumentation axis (uninstrumented vs instrumented, same engine):
//     transparent equality — the state the injection ABI promises to
//     preserve. GPRs below sassi.HandlerMaxRegs are legitimately reused as
//     handler scratch when dead, the stack pointer moves by the injection
//     frame, and local bytes under the relocated frames go stale, so the
//     comparison covers kernel-owned global buffers, shared memory, the
//     generator's fixed local window, the full predicate file + CC, and
//     every GPR at or above HandlerMaxRegs.
//
// Tool-owned device state (profiler counter banks, value tables) is
// deliberately outside both comparisons: no determinism is promised for it
// across engines.
package difftest

import (
	"fmt"

	"sassi/internal/ptx"
	"sassi/internal/sass"
)

// Fixed kernel shape shared by the generator, the oracle, and repro files.
const (
	// KernelName is the generated kernel's entry name.
	KernelName = "fz"

	// InWords sizes the read-only input buffer (power of two: loads index
	// it through a mask, so any u32 value yields an in-bounds slot).
	InWords = 256

	// OutStride is the per-thread slice of the output buffer, in words.
	// Slots 0..OutDataSlots-1 are random-access scratch; the last slot
	// receives the variable-pool checksum the epilogue writes, which keeps
	// every pool variable live to kernel exit.
	OutStride    = 8
	OutDataSlots = 4

	// AccWords sizes the atomic-accumulator buffer. The kernel only ever
	// atomically adds/maxes into it and never reads it back, so its final
	// content is deterministic regardless of SM interleaving.
	AccWords = 8

	// LocalWords is the per-thread local-memory window the generator
	// addresses with fixed offsets. It sits far below the injection
	// frames, which live just under the stack top (DefaultStackBytes), so
	// the transparency comparison covers it byte-for-byte.
	LocalWords = 16
)

// LocalBytes is the span of per-thread local memory the oracle compares on
// the instrumentation axis.
const LocalBytes = LocalWords * 4

// StmtKind enumerates generated statement forms.
type StmtKind int

// Statement kinds. Operand fields A/B select pool variables (reduced
// modulo the pool size at render time), D selects the destination
// variable, Op picks the sub-operation, and K picks slots/offsets/lanes.
const (
	StArith   StmtKind = iota // u[D] = intop(u[A], u[B])
	StArithI                  // u[D] = intop(u[A], imm K)
	StArithF                  // f[D] = floatop(f[A], f[B])
	StMufu                    // f[D] = mufu(f[A])
	StCvtUF                   // f[D] = cvt.f32(u[A])
	StCvtFU                   // u[D] = bits(f[A]) or bits(cvt.s32(f[A]))
	StSel                     // u[D] = setp(u[A] cmp u[B]) ? u[A] : u[D]
	StVote                    // u[D] = ballot / select-on-all / select-on-any
	StShfl                    // u[D] = shfl.idx(u[A], lane)
	StLdIn                    // u[D] = in[u[A] & (InWords-1)]
	StStOut                   // out[self][K] = u[A]
	StLdOut                   // u[D] = out[self][K]
	StAtom                    // atom add/max into acc or shared accumulator
	StLdLocal                 // u[D] = local[K]
	StStLocal                 // local[K] = u[A]
	StLdShared                // u[D] = shared[own slot]
	StStShared                // shared[own slot] = u[A]
	StBar                     // barrier (uniform context only)
	StXchg                    // cross-thread shared exchange with barriers
	StIf                      // if u[A] cmp u[B] { Body }
	StIfElse                  // if u[A] cmp u[B] { Body } else { Else }
	StFor                     // for i in [0, Trip) { u[D] = i; Body }
	numStmtKinds
)

// Stmt is one generated statement.
type Stmt struct {
	Kind StmtKind
	D    int `json:",omitempty"` // destination pool index
	A    int `json:",omitempty"` // first source pool index
	B    int `json:",omitempty"` // second source pool index
	Op   int `json:",omitempty"` // sub-operation selector
	K    int `json:",omitempty"` // slot / offset / lane / immediate selector

	Trip int    `json:",omitempty"` // StFor trip count (bounded)
	Body []Stmt `json:",omitempty"`
	Else []Stmt `json:",omitempty"`
}

// Prog is a generated kernel: launch geometry, variable-pool sizes, and a
// statement list. It is the unit the shrinker minimizes and repro files
// serialize — rendering the same Prog always yields the same PTX.
type Prog struct {
	Seed   uint64 // generator seed (informational; carried into repros)
	GridX  int    // CTAs
	BlockX int    // threads per CTA (multiple of 32, power of two)
	NumU   int    // u32 variable-pool size (>= 1)
	NumF   int    // f32 variable-pool size (>= 1)
	Stmts  []Stmt
}

// Threads returns the total launched thread count.
func (p *Prog) Threads() int { return p.GridX * p.BlockX }

// OutWords returns the output-buffer size in words.
func (p *Prog) OutWords() int { return p.Threads() * OutStride }

// Clone returns a deep copy.
func (p *Prog) Clone() *Prog {
	q := *p
	q.Stmts = cloneStmts(p.Stmts)
	return &q
}

func cloneStmts(ss []Stmt) []Stmt {
	if ss == nil {
		return nil
	}
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = s
		out[i].Body = cloneStmts(s.Body)
		out[i].Else = cloneStmts(s.Else)
	}
	return out
}

// NumStmts counts statements recursively.
func (p *Prog) NumStmts() int { return countStmts(p.Stmts) }

func countStmts(ss []Stmt) int {
	n := 0
	for i := range ss {
		n += 1 + countStmts(ss[i].Body) + countStmts(ss[i].Else)
	}
	return n
}

// renderer carries the builder environment while turning a Prog into PTX.
type renderer struct {
	p  *Prog
	b  *ptx.Builder
	u  []ptx.Value // mutable u32 pool
	f  []ptx.Value // mutable f32 pool
	in ptx.Value   // read-only input base (u64)
	my ptx.Value   // this thread's output slice base (u64)
	ac ptx.Value   // atomic accumulator base (u64)
	sh ptx.Value   // this thread's shared slot byte offset (u32)
	lz ptx.Value   // local-window base register (u32 zero)

	tid      ptx.Value
	shSlots  int64 // byte offset of the per-thread slot array
	shAccOff int64 // byte offset of the shared atomic accumulator
}

// Build renders the Prog into a verified PTX module. Builder type errors
// surface as errors rather than panics so the fuzzer can report them.
func (p *Prog) Build() (m *ptx.Module, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("difftest: render %s: %v", KernelName, r)
		}
	}()
	if p.GridX < 1 || p.BlockX < 32 || p.BlockX&(p.BlockX-1) != 0 {
		return nil, fmt.Errorf("difftest: bad geometry grid=%d block=%d", p.GridX, p.BlockX)
	}
	if p.NumU < 1 || p.NumF < 1 {
		return nil, fmt.Errorf("difftest: empty variable pool")
	}
	b := ptx.NewKernel(KernelName)
	b.ReqBlock(p.BlockX, 1, 1)
	rc := &renderer{p: p, b: b}
	rc.prologue()
	rc.stmts(p.Stmts, true)
	rc.epilogue()
	fn, err := b.Done()
	if err != nil {
		return nil, fmt.Errorf("difftest: render %s: %w", KernelName, err)
	}
	mod := ptx.NewModule()
	mod.Add(fn)
	return mod, nil
}

// prologue declares parameters, allocates shared regions, and seeds the
// variable pools with thread-dependent and constant values.
func (rc *renderer) prologue() {
	b, p := rc.b, rc.p
	rc.in = b.ParamU64("in")
	out := b.ParamU64("out")
	rc.ac = b.ParamU64("acc")

	rc.shSlots = int64(b.F.AllocShared(p.BlockX * 4))
	rc.shAccOff = int64(b.F.AllocShared(AccWords * 4))

	rc.tid = b.TidX()
	gtid := b.GlobalTidX()
	rc.my = b.Index(out, b.MulI(gtid, OutStride), 2)
	rc.sh = b.AddI(b.ShlI(rc.tid, 2), rc.shSlots)
	rc.lz = b.Var(b.ImmU32(0))

	lane := b.LaneID()
	rc.u = make([]ptx.Value, p.NumU)
	for i := range rc.u {
		var init ptx.Value
		switch i % 4 {
		case 0:
			init = b.AddI(rc.tid, int64(i)*7+1)
		case 1:
			init = b.AddI(gtid, int64(i)*13+3)
		case 2:
			init = b.ImmU32(0x9e3779b9 * uint32(i+1))
		default:
			init = b.MulI(b.AddI(lane, int64(i)), 0x85ebca6b)
		}
		rc.u[i] = b.Var(init)
	}
	rc.f = make([]ptx.Value, p.NumF)
	for i := range rc.f {
		rc.f[i] = b.Var(b.CvtF32(b.AddI(rc.tid, int64(i)+1)))
	}

	// Define the local window and this thread's shared slot so loads
	// never read uninitialized scratch.
	for k := 0; k < LocalWords; k++ {
		b.StLocalU32(rc.lz, int64(4*k), rc.u[k%len(rc.u)])
	}
	b.StSharedU32(rc.sh, 0, rc.u[0])
	b.Bar()
}

// epilogue folds every pool variable into a checksum stored in the
// thread's last output slot. This keeps the whole pool live across all
// instrumentation sites (so an injector that clobbers a live register is
// observable in memory, not just in the register-file comparison).
func (rc *renderer) epilogue() {
	b := rc.b
	sum := b.Var(b.ImmU32(0))
	for _, v := range rc.u {
		b.Assign(sum, b.Xor(sum, v))
	}
	for _, v := range rc.f {
		b.Assign(sum, b.Xor(sum, b.AsU32(v)))
	}
	b.StGlobalU32(rc.my, int64(4*(OutStride-1)), sum)
}

func (rc *renderer) U(i int) ptx.Value { return rc.u[mod(i, len(rc.u))] }
func (rc *renderer) F(i int) ptx.Value { return rc.f[mod(i, len(rc.f))] }

func mod(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// cmpOf maps a sub-operation selector onto a comparison operator.
func cmpOf(op int) sass.CmpOp {
	return []sass.CmpOp{sass.CmpLT, sass.CmpLE, sass.CmpGT,
		sass.CmpGE, sass.CmpEQ, sass.CmpNE}[mod(op, 6)]
}

// stmts renders a statement list. uniform tracks whether control flow is
// provably CTA-uniform here — barriers and cross-thread shared exchanges
// are only rendered in uniform context (the generator only places them
// there; the shrinker can only delete or hoist, which preserves this).
func (rc *renderer) stmts(ss []Stmt, uniform bool) {
	for i := range ss {
		rc.stmt(&ss[i], uniform)
	}
}

func (rc *renderer) stmt(s *Stmt, uniform bool) {
	b := rc.b
	switch s.Kind {
	case StArith:
		a, c := rc.U(s.A), rc.U(s.B)
		var v ptx.Value
		switch mod(s.Op, 9) {
		case 0:
			v = b.Add(a, c)
		case 1:
			v = b.Sub(a, c)
		case 2:
			v = b.Mul(a, c)
		case 3:
			v = b.Min(a, c)
		case 4:
			v = b.Max(a, c)
		case 5:
			v = b.And(a, c)
		case 6:
			v = b.Or(a, c)
		case 7:
			v = b.Xor(a, c)
		default:
			v = b.Mad(a, c, rc.U(s.D))
		}
		b.Assign(rc.U(s.D), v)
	case StArithI:
		a := rc.U(s.A)
		imm := int64(int32(uint32(s.K)*0x9e3779b9 + 1))
		var v ptx.Value
		switch mod(s.Op, 6) {
		case 0:
			v = b.AddI(a, imm)
		case 1:
			v = b.MulI(a, imm|1)
		case 2:
			v = b.AndI(a, imm)
		case 3:
			v = b.XorI(a, imm)
		case 4:
			v = b.ShlI(a, imm&31)
		default:
			v = b.ShrI(a, imm&31)
		}
		b.Assign(rc.U(s.D), v)
	case StArithF:
		a, c := rc.F(s.A), rc.F(s.B)
		var v ptx.Value
		switch mod(s.Op, 6) {
		case 0:
			v = b.Add(a, c)
		case 1:
			v = b.Sub(a, c)
		case 2:
			v = b.Mul(a, c)
		case 3:
			v = b.Min(a, c)
		case 4:
			v = b.Max(a, c)
		default:
			v = b.Fma(a, c, rc.F(s.D))
		}
		b.Assign(rc.F(s.D), v)
	case StMufu:
		a := rc.F(s.A)
		var v ptx.Value
		switch mod(s.Op, 7) {
		case 0:
			v = b.Rcp(a)
		case 1:
			v = b.Sqrt(a)
		case 2:
			v = b.Rsq(a)
		case 3:
			v = b.Sin(a)
		case 4:
			v = b.Cos(a)
		case 5:
			v = b.Ex2(a)
		default:
			v = b.Lg2(a)
		}
		b.Assign(rc.F(s.D), v)
	case StCvtUF:
		b.Assign(rc.F(s.D), b.CvtF32(rc.U(s.A)))
	case StCvtFU:
		if s.Op%2 == 0 {
			b.Assign(rc.U(s.D), b.AsU32(rc.F(s.A)))
		} else {
			b.Assign(rc.U(s.D), b.AsU32(b.CvtS32(rc.F(s.A))))
		}
	case StSel:
		pr := b.Setp(cmpOf(s.Op), rc.U(s.A), rc.U(s.B))
		b.Assign(rc.U(s.D), b.Sel(pr, rc.U(s.A), rc.U(s.D)))
	case StVote:
		pr := b.Setp(cmpOf(s.Op), rc.U(s.A), rc.U(s.B))
		var v ptx.Value
		switch mod(s.K, 3) {
		case 0:
			v = b.Ballot(pr)
		case 1:
			v = b.Sel(b.VoteAll(pr), rc.U(s.A), rc.U(s.B))
		default:
			v = b.Sel(b.VoteAny(pr), rc.U(s.B), rc.U(s.A))
		}
		b.Assign(rc.U(s.D), v)
	case StShfl:
		var v ptx.Value
		if s.Op%2 == 0 {
			v = b.Shfl(rc.U(s.A), b.AndI(rc.U(s.B), 31))
		} else {
			v = b.ShflI(rc.U(s.A), int64(mod(s.K, 32)))
		}
		b.Assign(rc.U(s.D), v)
	case StLdIn:
		idx := b.AndI(rc.U(s.A), InWords-1)
		b.Assign(rc.U(s.D), b.LdGlobalU32(b.Index(rc.in, idx, 2), 0))
	case StStOut:
		b.StGlobalU32(rc.my, int64(4*mod(s.K, OutDataSlots)), rc.U(s.A))
	case StLdOut:
		b.Assign(rc.U(s.D), b.LdGlobalU32(rc.my, int64(4*mod(s.K, OutDataSlots))))
	case StAtom:
		// Accumulators are write-only from the kernel's perspective;
		// results are discarded (an atomic's return value is
		// interleaving-dependent and would be a false divergence). Slots
		// are split by operation — ADD into the low half, MAX into the
		// high half — because a slot receiving BOTH does not commute
		// (max(a+x,y) != max(a,y)+x), which the oracle's first campaign
		// caught as a seq-vs-par divergence in acc[].
		switch mod(s.Op, 3) {
		case 0:
			b.AtomAddGlobal(rc.ac, int64(4*mod(s.K, AccWords/2)), rc.U(s.A))
		case 1:
			b.AtomMaxGlobal(rc.ac, int64(4*(AccWords/2+mod(s.K, AccWords/2))), rc.U(s.A))
		default:
			off := rc.shAccOff + int64(4*mod(s.K, AccWords))
			b.AtomAddShared(b.ImmU32(uint32(off)), 0, rc.U(s.A))
		}
	case StLdLocal:
		b.Assign(rc.U(s.D), b.LdLocalU32(rc.lz, int64(4*mod(s.K, LocalWords))))
	case StStLocal:
		b.StLocalU32(rc.lz, int64(4*mod(s.K, LocalWords)), rc.U(s.A))
	case StLdShared:
		b.Assign(rc.U(s.D), b.LdSharedU32(rc.sh, 0))
	case StStShared:
		b.StSharedU32(rc.sh, 0, rc.U(s.A))
	case StBar:
		if uniform {
			b.Bar()
		}
	case StXchg:
		if !uniform {
			return
		}
		// Publish, sync, read a rotated neighbour's slot, sync again so
		// later own-slot writes can't race earlier cross-thread reads.
		b.StSharedU32(rc.sh, 0, rc.U(s.A))
		b.Bar()
		other := b.AndI(b.AddI(rc.tid, int64(1+mod(s.K, 7))), int64(rc.p.BlockX-1))
		v := b.LdSharedU32(b.AddI(b.ShlI(other, 2), rc.shSlots), 0)
		b.Bar()
		b.Assign(rc.U(s.D), v)
	case StIf:
		cond := b.Setp(cmpOf(s.Op), rc.U(s.A), rc.U(s.B))
		b.If(cond, func() { rc.stmts(s.Body, false) })
	case StIfElse:
		cond := b.Setp(cmpOf(s.Op), rc.U(s.A), rc.U(s.B))
		b.IfElse(cond,
			func() { rc.stmts(s.Body, false) },
			func() { rc.stmts(s.Else, false) })
	case StFor:
		trip := mod(s.Trip, 4) + 1
		b.ForRange(b.Var(b.ImmU32(0)), b.ImmU32(uint32(trip)), func(i ptx.Value) {
			b.Assign(rc.U(s.D), i)
			rc.stmts(s.Body, uniform)
		})
	}
}
