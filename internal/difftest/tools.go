package difftest

import (
	"fmt"
	"sort"
	"strings"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/handlers"
	"sassi/internal/sassi"
)

// Tool is one instrumentation configuration the oracle checks for
// transparency. Make builds fresh per-context handler state (tools
// allocate device counter banks, so they are context-scoped).
type Tool struct {
	Name string
	Make func(ctx *cuda.Context) (sassi.Options, []*sassi.Handler)
}

// Tools returns the registered handler tools, one per case-study family:
// before-all sites with memory info (opcount), conditional branches
// (branch), memory ops (memdiv), and after-sites on register writes
// (value). Together they cover every injection-site class and both
// before/after sequences.
func Tools() []Tool {
	return []Tool{
		{Name: "opcount", Make: func(ctx *cuda.Context) (sassi.Options, []*sassi.Handler) {
			t := handlers.NewOpCounter(ctx)
			return t.Options(), []*sassi.Handler{t.Handler(false)}
		}},
		{Name: "branch", Make: func(ctx *cuda.Context) (sassi.Options, []*sassi.Handler) {
			t := handlers.NewBranchProfiler(ctx)
			return t.Options(), []*sassi.Handler{t.Handler()}
		}},
		{Name: "memdiv", Make: func(ctx *cuda.Context) (sassi.Options, []*sassi.Handler) {
			t := handlers.NewMemDivProfiler(ctx)
			return t.Options(), []*sassi.Handler{t.Handler()}
		}},
		{Name: "value", Make: func(ctx *cuda.Context) (sassi.Options, []*sassi.Handler) {
			t := handlers.NewValueProfiler(ctx)
			return t.Options(), []*sassi.Handler{t.Handler()}
		}},
	}
}

// ToolNames lists the registered tool names.
func ToolNames() []string {
	ts := Tools()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}

// SelectTools resolves a comma-separated name list ("" or "all" = every
// registered tool).
func SelectTools(spec string) ([]Tool, error) {
	all := Tools()
	if spec == "" || spec == "all" {
		return all, nil
	}
	byName := make(map[string]Tool, len(all))
	for _, t := range all {
		byName[t.Name] = t
	}
	var out []Tool
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		t, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("difftest: unknown handler tool %q (have %s)",
				name, strings.Join(ToolNames(), ", "))
		}
		out = append(out, t)
	}
	return out, nil
}

// MutantClobberTool is a deliberately ABI-violating tool: its handler
// writes garbage into GPR reg on every dispatch. Registers at or above
// sassi.HandlerMaxRegs sit outside the injector's save/restore window, so
// when reg is live this models an injector that clobbers a live register
// — the seeded transparency bug the oracle must catch. reg must be below
// the victim kernel's register count.
func MutantClobberTool(reg uint8) Tool {
	return Tool{
		Name: fmt.Sprintf("mutant-clobber-r%d", reg),
		Make: func(ctx *cuda.Context) (sassi.Options, []*sassi.Handler) {
			opts := sassi.Options{
				Where:         sassi.BeforeAll,
				BeforeHandler: "sassi_before_handler",
			}
			h := &sassi.Handler{
				Name: "sassi_before_handler",
				Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
					c.WriteReg(reg, 0xdeadbeef)
				},
			}
			return opts, []*sassi.Handler{h}
		},
	}
}
