package difftest

import (
	"os"
	"path/filepath"
	"testing"
)

// TestWriteRegressionTestdata regenerates the checked-in regression repros
// under testdata/ when run with DIFFTEST_UPDATE=1. Each entry is a kernel
// the differential campaign actually flagged, minimized by the shrinker;
// TestRegressionRepros replays every one of them through the full oracle.
func TestWriteRegressionTestdata(t *testing.T) {
	if os.Getenv("DIFFTEST_UPDATE") == "" {
		t.Skip("set DIFFTEST_UPDATE=1 to regenerate testdata")
	}
	for _, r := range []struct {
		name string
		prog *Prog
		note string
	}{
		{
			name: "regress-no-branch-sites",
			prog: &Prog{Seed: 0x1, GridX: 1, BlockX: 32, NumU: 4, NumF: 1, Stmts: []Stmt{
				{Kind: StArith, D: 1, A: 0, B: 2, Op: 0},
				{Kind: StStOut, A: 1, K: 0},
			}},
			note: "regression: handler symbols with zero JCAL sites must be skipped,\n" +
				"not reported as transparency launch failures (found by run 1 of the\n" +
				"first campaign; the branch profiler has no sites in straight-line code)",
		},
		{
			name: "regress-atomic-dead-fetch",
			prog: &Prog{Seed: 7923724220186219862, GridX: 2, BlockX: 32, NumU: 1, NumF: 1, Stmts: []Stmt{
				{Kind: StAtom, D: 52, A: 19, B: 29, Op: 28, K: 63},
				{Kind: StXchg, D: 58, A: 19, B: 10, Op: 43, K: 8},
				{Kind: StStLocal, D: 61, A: 23, B: 5, Op: 13, K: 62},
			}},
			note: "regression: an atomic whose fetched old value is never read used to\n" +
				"keep its destination register, carrying scheduler-dependent memory\n" +
				"snapshots to kernel exit (base/seq vs base/par: R8 = 0x0 vs 0x20).\n" +
				"ptxas now reduces dead-fetch atomics to no-return form (RED).",
		},
		{
			name: "regress-atomic-mixed-ops",
			prog: &Prog{Seed: 2106293278287090, GridX: 3, BlockX: 32, NumU: 5, NumF: 1, Stmts: []Stmt{
				{Kind: StAtom, D: 7, A: 5, B: 23, Op: 9, K: 47},
				{Kind: StAtom, D: 55, A: 57, B: 27, Op: 52, K: 15},
			}},
			note: "regression: atomic ADD and MAX into the same accumulator slot do not\n" +
				"commute (seq vs par: acc[7] differed); the generator now splits the\n" +
				"accumulator into an ADD-only low half and a MAX-only high half",
		},
	} {
		if err := WriteRepro(filepath.Join("testdata", r.name+".ptx"), r.prog, r.note); err != nil {
			t.Fatal(err)
		}
	}
}
