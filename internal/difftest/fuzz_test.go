package difftest

import (
	"sync"
	"testing"
)

// fuzzOracle is shared across fuzz iterations in one process so the
// compile cache persists; Oracle.Run is single-goroutine, hence the lock.
var (
	fuzzMu     sync.Mutex
	fuzzOracle = NewOracle(nil)
)

// FuzzDifferential feeds generator seeds to the full oracle matrix: any
// input that produces a kernel whose instrumented or parallel execution
// diverges from the sequential uninstrumented reference is a crash.
// Kernels use the reduced FuzzSize envelope for throughput; the committed
// corpus under testdata/fuzz pins seeds that exercise every statement
// class (the nightly workflow runs this target for minutes, CI for
// seconds).
func FuzzDifferential(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 7, 42, 1234, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := Generate(seed, FuzzSize())
		fuzzMu.Lock()
		defer fuzzMu.Unlock()
		res, err := fuzzOracle.Run(p)
		if err != nil {
			t.Fatalf("harness error for seed %d: %v", seed, err)
		}
		if res.Failed() {
			min := Shrink(p, func(q *Prog) bool {
				r, qerr := fuzzOracle.Run(q)
				return qerr == nil && r.Failed()
			})
			repro, rerr := Repro(min, res.Failures[0].String())
			if rerr != nil {
				repro = rerr.Error()
			}
			t.Fatalf("seed %d diverged: %s\nminimized repro:\n%s",
				seed, res.Failures[0], repro)
		}
	})
}
