package difftest

import (
	"fmt"
	"sort"
	"sync"

	"sassi/internal/sim"
)

// ThreadState is one thread's architectural state at CTA retirement.
type ThreadState struct {
	FlatTid uint32
	Regs    []uint32
	Preds   uint8 // P0..P6 (bit 7, PT, masked off)
	CC      uint8
	Local   []byte
}

// CTAState is one CTA's final state, captured via sim.Device.CTARetire.
type CTAState struct {
	Index   int
	Shared  []byte
	Threads []ThreadState
}

// RunState is everything one oracle launch observed.
type RunState struct {
	Variant string // e.g. "base/seq", "opcount/par"
	CTAs    map[int]*CTAState
	Out     []uint32 // kernel-owned output buffer
	Acc     []uint32 // kernel-owned atomic accumulator
	Stats   *sim.KernelStats
	Metrics map[string]uint64 // obs registry snapshot (sim+mem counters)
	NumRegs int               // register count of the launched kernel
}

// collector snapshots CTAs as they retire. CTARetire fires concurrently
// from SM goroutines, so it locks; snapshots key by CTA.Index, which is
// engine-independent.
type collector struct {
	mu   sync.Mutex
	ctas map[int]*CTAState
}

func newCollector() *collector { return &collector{ctas: make(map[int]*CTAState)} }

func (c *collector) hook(cta *sim.CTA) {
	st := &CTAState{Index: cta.Index}
	if cta.Shared != nil && cta.Shared.Size() > 0 {
		st.Shared = make([]byte, cta.Shared.Size())
		_ = cta.Shared.Read(0, st.Shared)
	}
	for _, w := range cta.Warps {
		for _, t := range w.Threads {
			if t == nil {
				continue
			}
			ts := ThreadState{
				FlatTid: t.FlatTid,
				Regs:    append([]uint32(nil), t.Regs...),
				Preds:   t.Preds & 0x7f,
				CC:      t.CC,
			}
			if t.Local != nil && t.Local.Size() > 0 {
				ts.Local = make([]byte, t.Local.Size())
				_ = t.Local.Read(0, ts.Local)
			}
			st.Threads = append(st.Threads, ts)
		}
	}
	sort.Slice(st.Threads, func(i, j int) bool {
		return st.Threads[i].FlatTid < st.Threads[j].FlatTid
	})
	c.mu.Lock()
	c.ctas[cta.Index] = st
	c.mu.Unlock()
}

// Failure is one oracle divergence, with a human-readable first diff.
type Failure struct {
	Axis string // "engine" or "transparency"
	Want string // reference variant
	Got  string // diverging variant
	Diff string
}

func (f Failure) String() string {
	return fmt.Sprintf("[%s] %s vs %s: %s", f.Axis, f.Want, f.Got, f.Diff)
}

// compareFull asserts complete bit-equality between two runs of the SAME
// program on different engines: every register, predicate, condition code,
// all memory spaces, kernel statistics, and metric snapshots.
func compareFull(want, got *RunState) []Failure {
	var fails []Failure
	add := func(format string, args ...any) {
		fails = append(fails, Failure{Axis: "engine", Want: want.Variant,
			Got: got.Variant, Diff: fmt.Sprintf(format, args...)})
	}
	compareBuffers(want, got, add)
	compareCTAs(want, got, add, func(w, g *ThreadState, addT func(string, ...any)) {
		if len(w.Regs) != len(g.Regs) {
			addT("register file size %d vs %d", len(w.Regs), len(g.Regs))
			return
		}
		for r := range w.Regs {
			if w.Regs[r] != g.Regs[r] {
				addT("R%d = %#x vs %#x", r, w.Regs[r], g.Regs[r])
				return
			}
		}
		if eq, diff := localEqual(w.Local, g.Local, len(w.Local)); !eq {
			addT("%s", diff)
		}
	})
	if want.Stats != nil && got.Stats != nil {
		if d := statsDiff(want.Stats, got.Stats); d != "" {
			add("stats: %s", d)
		}
	}
	if d := metricsDiff(want.Metrics, got.Metrics); d != "" {
		add("metrics: %s", d)
	}
	return fails
}

// compareTransparent asserts the instrumentation-transparency contract
// between an uninstrumented reference and an instrumented run. The
// injection ABI may reuse dead GPRs below handlerMaxRegs, moves the stack
// pointer (R1) by the injection frame, and leaves stale bytes where
// relocated frames lived near the stack top — everything else must match:
// kernel-owned global buffers, shared memory, the generator's local
// window, all predicates + CC, and every GPR >= handlerMaxRegs.
func compareTransparent(want, got *RunState, handlerMaxRegs int) []Failure {
	var fails []Failure
	add := func(format string, args ...any) {
		fails = append(fails, Failure{Axis: "transparency", Want: want.Variant,
			Got: got.Variant, Diff: fmt.Sprintf(format, args...)})
	}
	compareBuffers(want, got, add)
	compareCTAs(want, got, add, func(w, g *ThreadState, addT func(string, ...any)) {
		for r := handlerMaxRegs; r < len(w.Regs) && r < len(g.Regs); r++ {
			if w.Regs[r] != g.Regs[r] {
				addT("live R%d = %#x vs %#x (above handler scratch window)",
					r, w.Regs[r], g.Regs[r])
				return
			}
		}
		if eq, diff := localEqual(w.Local, g.Local, LocalBytes); !eq {
			addT("%s", diff)
		}
	})
	return fails
}

// compareArch asserts bit-equality of all architectural state between the
// unscheduled reference and a scheduler-reordered build of the SAME
// source: buffers, shared/local memory, every register, predicates, CC,
// and the order-insensitive kernel statistics. Timing state (Cycles,
// SMCycles, ScoreboardStalls) is exactly what a schedule is allowed — and
// expected — to change, so it is excluded, as are the metric snapshots
// that embed it.
func compareArch(want, got *RunState) []Failure {
	var fails []Failure
	add := func(format string, args ...any) {
		fails = append(fails, Failure{Axis: "schedule", Want: want.Variant,
			Got: got.Variant, Diff: fmt.Sprintf(format, args...)})
	}
	compareBuffers(want, got, add)
	compareCTAs(want, got, add, func(w, g *ThreadState, addT func(string, ...any)) {
		if len(w.Regs) != len(g.Regs) {
			addT("register file size %d vs %d", len(w.Regs), len(g.Regs))
			return
		}
		for r := range w.Regs {
			if w.Regs[r] != g.Regs[r] {
				addT("R%d = %#x vs %#x", r, w.Regs[r], g.Regs[r])
				return
			}
		}
		if eq, diff := localEqual(w.Local, g.Local, len(w.Local)); !eq {
			addT("%s", diff)
		}
	})
	if want.Stats != nil && got.Stats != nil {
		if d := archStatsDiff(want.Stats, got.Stats); d != "" {
			add("stats: %s", d)
		}
	}
	return fails
}

// archStatsDiff compares the schedule-invariant statistics.
func archStatsDiff(w, g *sim.KernelStats) string {
	type pair struct {
		name string
		w, g uint64
	}
	pairs := []pair{
		{"WarpInstrs", w.WarpInstrs, g.WarpInstrs},
		{"ThreadInstrs", w.ThreadInstrs, g.ThreadInstrs},
		{"InjectedWarpInstrs", w.InjectedWarpInstrs, g.InjectedWarpInstrs},
		{"InjectedThreadInstrs", w.InjectedThreadInstrs, g.InjectedThreadInstrs},
		{"HandlerCalls", w.HandlerCalls, g.HandlerCalls},
		{"GlobalTransactions", w.GlobalTransactions, g.GlobalTransactions},
	}
	for _, p := range pairs {
		if p.w != p.g {
			return fmt.Sprintf("%s %d vs %d", p.name, p.w, p.g)
		}
	}
	return ""
}

func compareBuffers(want, got *RunState, add func(string, ...any)) {
	for i := range want.Out {
		if i < len(got.Out) && want.Out[i] != got.Out[i] {
			add("out[%d] = %#x vs %#x", i, want.Out[i], got.Out[i])
			break
		}
	}
	for i := range want.Acc {
		if i < len(got.Acc) && want.Acc[i] != got.Acc[i] {
			add("acc[%d] = %#x vs %#x", i, want.Acc[i], got.Acc[i])
			break
		}
	}
}

func compareCTAs(want, got *RunState, add func(string, ...any),
	threads func(w, g *ThreadState, addT func(string, ...any))) {
	if len(want.CTAs) != len(got.CTAs) {
		add("%d CTAs retired vs %d", len(want.CTAs), len(got.CTAs))
		return
	}
	idxs := make([]int, 0, len(want.CTAs))
	for i := range want.CTAs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		w, g := want.CTAs[i], got.CTAs[i]
		if g == nil {
			add("cta %d missing", i)
			return
		}
		for b := range w.Shared {
			if b < len(g.Shared) && w.Shared[b] != g.Shared[b] {
				add("cta %d shared[%#x] = %#x vs %#x", i, b, w.Shared[b], g.Shared[b])
				return
			}
		}
		if len(w.Threads) != len(g.Threads) {
			add("cta %d thread count %d vs %d", i, len(w.Threads), len(g.Threads))
			return
		}
		for ti := range w.Threads {
			wt, gt := &w.Threads[ti], &g.Threads[ti]
			bad := false
			addT := func(format string, args ...any) {
				bad = true
				add("cta %d tid %d: %s", i, wt.FlatTid, fmt.Sprintf(format, args...))
			}
			if wt.Preds != gt.Preds {
				addT("predicates %#07b vs %#07b", wt.Preds, gt.Preds)
			} else if wt.CC != gt.CC {
				addT("CC %#x vs %#x", wt.CC, gt.CC)
			} else {
				threads(wt, gt, addT)
			}
			if bad {
				return
			}
		}
	}
}

func localEqual(w, g []byte, n int) (bool, string) {
	for b := 0; b < n && b < len(w) && b < len(g); b++ {
		if w[b] != g[b] {
			return false, fmt.Sprintf("local[%#x] = %#x vs %#x", b, w[b], g[b])
		}
	}
	return true, ""
}

func statsDiff(w, g *sim.KernelStats) string {
	type pair struct {
		name string
		w, g uint64
	}
	pairs := []pair{
		{"WarpInstrs", w.WarpInstrs, g.WarpInstrs},
		{"ThreadInstrs", w.ThreadInstrs, g.ThreadInstrs},
		{"InjectedWarpInstrs", w.InjectedWarpInstrs, g.InjectedWarpInstrs},
		{"InjectedThreadInstrs", w.InjectedThreadInstrs, g.InjectedThreadInstrs},
		{"HandlerCalls", w.HandlerCalls, g.HandlerCalls},
		{"MaxWarpInstrs", w.MaxWarpInstrs, g.MaxWarpInstrs},
		{"GlobalTransactions", w.GlobalTransactions, g.GlobalTransactions},
		{"ScoreboardStalls", w.ScoreboardStalls, g.ScoreboardStalls},
		{"Cycles", w.Cycles, g.Cycles},
	}
	for _, p := range pairs {
		if p.w != p.g {
			return fmt.Sprintf("%s %d vs %d", p.name, p.w, p.g)
		}
	}
	if len(w.SMCycles) != len(g.SMCycles) {
		return fmt.Sprintf("SMCycles len %d vs %d", len(w.SMCycles), len(g.SMCycles))
	}
	for i := range w.SMCycles {
		if w.SMCycles[i] != g.SMCycles[i] {
			return fmt.Sprintf("SMCycles[%d] %d vs %d", i, w.SMCycles[i], g.SMCycles[i])
		}
	}
	return ""
}

func metricsDiff(w, g map[string]uint64) string {
	names := make([]string, 0, len(w))
	for k := range w {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if gv, ok := g[k]; !ok || gv != w[k] {
			return fmt.Sprintf("%s = %d vs %d", k, w[k], g[k])
		}
	}
	for k := range g {
		if _, ok := w[k]; !ok {
			return fmt.Sprintf("%s only in %s", k, "second run")
		}
	}
	return ""
}
