package difftest

import "math/rand"

// Size bounds the generated kernel. The zero value is replaced by
// DefaultSize; the fuzz harness uses the smaller FuzzSize.
type Size struct {
	MaxStmts int // top-level statement budget
	MaxDepth int // control-flow nesting depth
	MaxBody  int // statements per nested body
	MaxGridX int // CTAs (>= 1)
	MaxU     int // u32 pool bound (>= 4)
	MaxF     int // f32 pool bound (>= 1)
}

// DefaultSize is the campaign-sized kernel envelope: enough statements and
// register pressure that allocations spill past sassi.HandlerMaxRegs, with
// trip counts small enough that a run stays in the low milliseconds.
func DefaultSize() Size {
	return Size{MaxStmts: 24, MaxDepth: 2, MaxBody: 5, MaxGridX: 4, MaxU: 14, MaxF: 4}
}

// FuzzSize is a reduced envelope for the go-fuzz target, trading coverage
// per kernel for executions per second.
func FuzzSize() Size {
	return Size{MaxStmts: 10, MaxDepth: 2, MaxBody: 3, MaxGridX: 2, MaxU: 8, MaxF: 2}
}

func (sz Size) orDefault() Size {
	if sz.MaxStmts == 0 {
		return DefaultSize()
	}
	return sz
}

// SplitMix scrambles (seed, run) into an independent per-run seed — the
// same construction the fault-campaign worker pool uses, so outcomes are a
// pure function of (seed, run index) at any worker count.
func SplitMix(seed, run uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(run+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stmtWeight is the generator's opcode mix. Weights skew toward ALU and
// memory traffic, with enough control flow, collectives, and barriers that
// every injection site class (before/after, mem, branch, reg-write) and
// both divergence mechanisms (SSY/SYNC and predication) appear routinely.
var stmtWeights = []struct {
	kind   StmtKind
	weight int
	nested bool // legal inside divergent bodies
}{
	{StArith, 14, true},
	{StArithI, 8, true},
	{StArithF, 6, true},
	{StMufu, 3, true},
	{StCvtUF, 3, true},
	{StCvtFU, 3, true},
	{StSel, 5, true},
	{StVote, 4, true},
	{StShfl, 4, true},
	{StLdIn, 7, true},
	{StStOut, 6, true},
	{StLdOut, 4, true},
	{StAtom, 4, true},
	{StLdLocal, 4, true},
	{StStLocal, 4, true},
	{StLdShared, 3, true},
	{StStShared, 3, true},
	{StBar, 2, false},
	{StXchg, 4, false},
	{StIf, 6, true},
	{StIfElse, 4, true},
	{StFor, 5, false}, // loops stay in uniform context: const trip counts
}

// Generate derives a random kernel from seed. Termination is structural:
// the only loops are StFor with trip counts in [1,4], and If/IfElse bodies
// are acyclic, so every rendered kernel exits in bounded steps.
func Generate(seed uint64, sz Size) *Prog {
	sz = sz.orDefault()
	r := rand.New(rand.NewSource(int64(SplitMix(seed, 0))))
	p := &Prog{
		Seed:   seed,
		GridX:  1 + r.Intn(sz.MaxGridX),
		BlockX: 32 << r.Intn(2), // 32 or 64: one or two warps per CTA
		NumU:   4 + r.Intn(sz.MaxU-3),
		NumF:   1 + r.Intn(sz.MaxF),
	}
	n := 1 + sz.MaxStmts/2 + r.Intn(sz.MaxStmts/2)
	p.Stmts = genStmts(r, sz, n, 0, false)
	return p
}

func genStmts(r *rand.Rand, sz Size, n, depth int, nested bool) []Stmt {
	out := make([]Stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, genStmt(r, sz, depth, nested))
	}
	return out
}

func genStmt(r *rand.Rand, sz Size, depth int, nested bool) Stmt {
	for {
		w := stmtWeights[pickWeighted(r)]
		if nested && !w.nested {
			continue
		}
		if (w.kind == StIf || w.kind == StIfElse || w.kind == StFor) && depth >= sz.MaxDepth {
			continue
		}
		s := Stmt{
			Kind: w.kind,
			D:    r.Intn(64),
			A:    r.Intn(64),
			B:    r.Intn(64),
			Op:   r.Intn(64),
			K:    r.Intn(64),
		}
		switch w.kind {
		case StIf:
			s.Body = genStmts(r, sz, 1+r.Intn(sz.MaxBody), depth+1, true)
		case StIfElse:
			s.Body = genStmts(r, sz, 1+r.Intn(sz.MaxBody), depth+1, true)
			s.Else = genStmts(r, sz, 1+r.Intn(sz.MaxBody), depth+1, true)
		case StFor:
			s.Trip = 1 + r.Intn(4)
			// Loop bodies inherit uniformity (const trips), so barriers
			// stay legal inside; nested=false keeps that invariant.
			s.Body = genStmts(r, sz, 1+r.Intn(sz.MaxBody), depth+1, nested)
		}
		return s
	}
}

var totalWeight = func() int {
	t := 0
	for _, w := range stmtWeights {
		t += w.weight
	}
	return t
}()

func pickWeighted(r *rand.Rand) int {
	x := r.Intn(totalWeight)
	for i, w := range stmtWeights {
		if x < w.weight {
			return i
		}
		x -= w.weight
	}
	return len(stmtWeights) - 1
}
