package difftest

import "testing"

// FuzzSchedule feeds generator seeds to the scheduling axis of the
// oracle: every kernel is compiled unscheduled and with the post-RA list
// scheduler (tie-break seed derived from the input), and the two must
// retire with bit-equal architectural state on both engines. The
// scheduled build also runs the `schedule` verifier check inside Compile,
// so this target hunts both dependence-DAG unsoundness (a legal-looking
// reorder that changes results) and verifier gaps. Corpus discipline
// matches FuzzDifferential: committed seeds under testdata/fuzz pin the
// statement-class coverage, CI runs seconds, nightly runs minutes.
func FuzzSchedule(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 7, 42, 99, 1234, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := Generate(seed, FuzzSize())
		schedSeed := SplitMix(seed, 0x5c4ed)
		fuzzMu.Lock()
		defer fuzzMu.Unlock()
		res, err := fuzzOracle.RunSchedule(p, schedSeed)
		if err != nil {
			t.Fatalf("harness error for seed %d: %v", seed, err)
		}
		if res.Failed() {
			min := Shrink(p, func(q *Prog) bool {
				r, qerr := fuzzOracle.RunSchedule(q, schedSeed)
				return qerr == nil && r.Failed()
			})
			repro, rerr := Repro(min, res.Failures[0].String())
			if rerr != nil {
				repro = rerr.Error()
			}
			t.Fatalf("seed %d diverged under scheduling: %s\nminimized repro:\n%s",
				seed, res.Failures[0], repro)
		}
	})
}
