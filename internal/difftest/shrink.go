package difftest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Shrink greedily minimizes a failing Prog. fails must return true when
// the candidate still exhibits the divergence (and false for candidates
// that no longer fail OR fail to build — an unbuildable candidate proves
// nothing). The result is a local minimum: no single statement deletion,
// control-flow unwrap, trip-count reduction, geometry reduction, or pool
// reduction still fails.
//
// Every edit maps a valid Prog to a valid Prog — the shrinker works on
// the generator's AST, not on PTX text — so candidates never need
// re-validation, and barrier placement stays legal by construction
// (deletion and unwrap-to-parent can only move statements toward uniform
// context, never into divergent bodies).
func Shrink(p *Prog, fails func(*Prog) bool) *Prog {
	cur := p.Clone()
	for {
		shrunk := false
		for _, cand := range candidates(cur) {
			if fails(cand) {
				cur = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return cur
		}
	}
}

// Edit-protocol results for the counter-indexed tree walks below.
const (
	editMiss    = iota // index lies beyond this subtree
	editApplied        // edit applied at the index
	editNoop           // index reached but the edit is not applicable there
)

// candidates enumerates every single-step reduction of p, biggest
// reductions first: statement deletion, control-flow unwrapping, loop
// trip reduction, then geometry and variable-pool reductions.
func candidates(p *Prog) []*Prog {
	var out []*Prog
	n := p.NumStmts()
	for i := 0; i < n; i++ {
		q, k := p.Clone(), i
		if ss, r := deleteNth(q.Stmts, &k); r == editApplied {
			q.Stmts = ss
			out = append(out, q)
		}
	}
	for i := 0; i < n; i++ {
		q, k := p.Clone(), i
		if ss, r := unwrapNth(q.Stmts, &k); r == editApplied {
			q.Stmts = ss
			out = append(out, q)
		}
	}
	for i := 0; i < n; i++ {
		q, k := p.Clone(), i
		if r := tripNth(q.Stmts, &k); r == editApplied {
			out = append(out, q)
		}
	}
	if p.GridX > 1 {
		q := p.Clone()
		q.GridX = 1
		out = append(out, q)
	}
	if p.BlockX > 32 {
		q := p.Clone()
		q.BlockX = 32
		out = append(out, q)
	}
	for _, nu := range []int{p.NumU / 2, p.NumU - 1} {
		if nu >= 1 && nu < p.NumU {
			q := p.Clone()
			q.NumU = nu
			out = append(out, q)
		}
	}
	if p.NumF > 1 {
		q := p.Clone()
		q.NumF = p.NumF - 1
		out = append(out, q)
	}
	return out
}

// deleteNth removes the n-th statement in pre-order.
func deleteNth(ss []Stmt, n *int) ([]Stmt, int) {
	for i := range ss {
		if *n == 0 {
			return append(ss[:i:i], ss[i+1:]...), editApplied
		}
		*n--
		if body, r := deleteNth(ss[i].Body, n); r != editMiss {
			ss[i].Body = body
			return ss, r
		}
		if els, r := deleteNth(ss[i].Else, n); r != editMiss {
			ss[i].Else = els
			return ss, r
		}
	}
	return ss, editMiss
}

// unwrapNth splices the n-th statement's Body (and Else) in place of the
// statement itself — turning `if c { B } else { E }` into `B; E` and
// `for { B }` into one `B`.
func unwrapNth(ss []Stmt, n *int) ([]Stmt, int) {
	for i := range ss {
		if *n == 0 {
			s := ss[i]
			if len(s.Body) == 0 && len(s.Else) == 0 {
				return ss, editNoop
			}
			repl := make([]Stmt, 0, len(ss)-1+len(s.Body)+len(s.Else))
			repl = append(repl, ss[:i]...)
			repl = append(repl, s.Body...)
			repl = append(repl, s.Else...)
			repl = append(repl, ss[i+1:]...)
			return repl, editApplied
		}
		*n--
		if body, r := unwrapNth(ss[i].Body, n); r != editMiss {
			ss[i].Body = body
			return ss, r
		}
		if els, r := unwrapNth(ss[i].Else, n); r != editMiss {
			ss[i].Else = els
			return ss, r
		}
	}
	return ss, editMiss
}

// tripNth reduces the n-th statement's loop trip count to 1 (Trip renders
// as mod(Trip,4)+1, so Trip=0 is the minimum).
func tripNth(ss []Stmt, n *int) int {
	for i := range ss {
		if *n == 0 {
			if ss[i].Kind != StFor || mod(ss[i].Trip, 4) == 0 {
				return editNoop
			}
			ss[i].Trip = 0
			return editApplied
		}
		*n--
		if r := tripNth(ss[i].Body, n); r != editMiss {
			return r
		}
		if r := tripNth(ss[i].Else, n); r != editMiss {
			return r
		}
	}
	return editMiss
}

// reproMarker prefixes the machine-readable Prog line inside a repro file.
const reproMarker = "// prog: "

// Repro renders a failing Prog as a standalone .ptx repro: a comment
// header with the seed, geometry, and failure note, one machine-readable
// JSON line (so ParseRepro can reload it), then the rendered kernel text.
func Repro(p *Prog, note string) (string, error) {
	m, err := p.Build()
	if err != nil {
		return "", fmt.Errorf("difftest: repro render: %w", err)
	}
	js, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "// difftest repro — minimized failing kernel\n")
	fmt.Fprintf(&sb, "// seed: %d  grid: %d  block: %d  pools: u=%d f=%d  stmts: %d\n",
		p.Seed, p.GridX, p.BlockX, p.NumU, p.NumF, p.NumStmts())
	for _, line := range strings.Split(strings.TrimRight(note, "\n"), "\n") {
		if line != "" {
			fmt.Fprintf(&sb, "// %s\n", line)
		}
	}
	fmt.Fprintf(&sb, "%s%s\n//\n", reproMarker, js)
	sb.WriteString(m.Funcs[0].Dump())
	return sb.String(), nil
}

// WriteRepro writes a repro file for p at path.
func WriteRepro(path string, p *Prog, note string) error {
	s, err := Repro(p, note)
	if err != nil {
		return err
	}
	return os.WriteFile(path, []byte(s), 0o644)
}

// ParseRepro recovers the Prog from a repro file produced by Repro.
func ParseRepro(data []byte) (*Prog, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, reproMarker) {
			var p Prog
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, reproMarker)), &p); err != nil {
				return nil, fmt.Errorf("difftest: repro prog line: %w", err)
			}
			return &p, nil
		}
	}
	return nil, fmt.Errorf("difftest: no %q line in repro", strings.TrimSpace(reproMarker))
}
