package difftest

import (
	"testing"
)

// FuzzPredecode drives the predecoded-engine axis only: each seed's kernel
// runs uninstrumented on the sequential reference interpreter and on the
// predecoded block-dispatch engine, and any state or statistics divergence
// is a crash. The committed corpus seeds are chosen (by scanning the
// generator) so every kernel contains both a divergent region (If/IfElse,
// where the engine must fall back to per-instruction interpretation and
// the divergence stack) and a straight ALU run of three or more
// statements (where the uniform-warp fast path and block dispatch engage)
// — the boundary between the two is where predecode bugs live.
func FuzzPredecode(f *testing.F) {
	for _, seed := range []uint64{18, 20, 26, 27, 32, 33, 34, 42, 46, 51, 63, 97, 100, 114} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := Generate(seed, FuzzSize())
		fuzzMu.Lock()
		defer fuzzMu.Unlock()
		res, err := predecodeOracle.Run(p)
		if err != nil {
			t.Fatalf("harness error for seed %d: %v", seed, err)
		}
		if res.Failed() {
			min := Shrink(p, func(q *Prog) bool {
				r, qerr := predecodeOracle.Run(q)
				return qerr == nil && r.Failed()
			})
			repro, rerr := Repro(min, res.Failures[0].String())
			if rerr != nil {
				repro = rerr.Error()
			}
			t.Fatalf("seed %d diverged on the predecoded axis: %s\nminimized repro:\n%s",
				seed, res.Failures[0], repro)
		}
	})
}

// predecodeOracle runs with an empty tool list, so Run covers exactly the
// engine axis (base/seq vs base/par vs base/pre) at three launches per
// kernel — about an order of magnitude more kernels per second than the
// full instrumentation matrix.
var predecodeOracle = NewOracle([]Tool{})
