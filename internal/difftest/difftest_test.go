package difftest

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sassi/internal/ptxas"
	"sassi/internal/sassi"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		a := Generate(seed, DefaultSize())
		b := Generate(seed, DefaultSize())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
	}
}

func TestGeneratedKernelsBuildAndCompile(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		p := Generate(SplitMix(1, seed), DefaultSize())
		m, err := p.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		if _, err := ptxas.Compile(m, ptxas.Options{}); err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
	}
}

func TestOracleCleanOnGeneratedKernels(t *testing.T) {
	runs := 6
	if testing.Short() {
		runs = 2
	}
	c := &Campaign{Seed: 1, Runs: runs, Size: DefaultSize()}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Errors {
		t.Errorf("harness error: %v", e)
	}
	for _, f := range res.Failures {
		t.Errorf("run %d (seed %#x) diverged: %s", f.Run, f.Seed, f.Failures[0])
	}
	if res.Launches == 0 {
		t.Fatal("campaign ran no launches")
	}
}

// mutantVictim returns a generated kernel whose register allocation
// extends past the injection ABI's scratch window, so a register at
// HandlerMaxRegs is both allocatable and (thanks to the checksum
// epilogue keeping the pools live) live across instrumentation sites.
func mutantVictim(t *testing.T) *Prog {
	t.Helper()
	for seed := uint64(0); seed < 64; seed++ {
		p := Generate(SplitMix(99, seed), DefaultSize())
		m, err := p.Build()
		if err != nil {
			continue
		}
		prog, err := ptxas.Compile(m, ptxas.Options{})
		if err != nil {
			continue
		}
		if prog.Kernels[0].NumRegs > sassi.HandlerMaxRegs+1 {
			return p
		}
	}
	t.Fatal("no generated kernel allocates past the handler scratch window")
	return nil
}

// TestOracleCatchesMutantClobber seeds the known transparency bug —
// an injected handler clobbering a live register above the save/restore
// window — and requires the oracle to flag it.
func TestOracleCatchesMutantClobber(t *testing.T) {
	p := mutantVictim(t)
	o := NewOracle([]Tool{MutantClobberTool(uint8(sassi.HandlerMaxRegs))})
	res, err := o.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatalf("oracle missed the mutant clobber of live R%d", sassi.HandlerMaxRegs)
	}
	found := false
	for _, f := range res.Failures {
		if f.Axis == "transparency" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("mutant clobber reported, but not on the transparency axis: %v", res.Failures)
	}
}

// TestMutantInScratchWindowIsTransparent clobbers a register the
// injection ABI owns (below HandlerMaxRegs). Live low registers are
// saved and restored around the handler call and dead ones are excluded
// from the transparency contract, so the oracle must stay quiet — this
// pins the comparison boundary at exactly HandlerMaxRegs.
func TestMutantInScratchWindowIsTransparent(t *testing.T) {
	p := mutantVictim(t)
	o := NewOracle([]Tool{MutantClobberTool(sassi.ABIArg0)})
	res, err := o.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Failures {
		t.Errorf("scratch-window clobber falsely reported: %s", f)
	}
}

// TestRegressionRepros replays every minimized kernel the campaign ever
// flagged (checked in under testdata/regress-*.ptx) through the full
// oracle matrix. Each file pins one fixed bug — see its comment header:
// skipped handler symbols with no JCAL sites, dead atomic fetch registers
// carrying scheduler-dependent bits, and non-commuting atomic op mixes.
func TestRegressionRepros(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "regress-*.ptx"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 regression repros, found %d", len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ParseRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			res, err := NewOracle(nil).Run(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range res.Failures {
				t.Errorf("regression: %s", f)
			}
		})
	}
}

func TestSelectTools(t *testing.T) {
	all, err := SelectTools("all")
	if err != nil || len(all) != len(Tools()) {
		t.Fatalf("SelectTools(all) = %d tools, err %v", len(all), err)
	}
	two, err := SelectTools("branch, memdiv")
	if err != nil || len(two) != 2 || two[0].Name != "branch" || two[1].Name != "memdiv" {
		t.Fatalf("SelectTools(branch, memdiv) = %v, err %v", two, err)
	}
	if _, err := SelectTools("nosuch"); err == nil ||
		!strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("SelectTools(nosuch) err = %v", err)
	}
}

func TestSplitMixMatchesCampaignDerivation(t *testing.T) {
	// Per-run seeds must be a pure function of (seed, run): two campaigns
	// at different worker counts generate identical kernels per run index.
	for run := uint64(0); run < 8; run++ {
		if SplitMix(1, run) == SplitMix(1, run+1) {
			t.Fatalf("adjacent runs share a derived seed at run %d", run)
		}
		a := Generate(SplitMix(1, run), DefaultSize())
		b := Generate(SplitMix(1, run), DefaultSize())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d: kernel depends on more than the derived seed", run)
		}
	}
}
