package difftest

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// containsKind is the synthetic failure predicate the shrinker tests use:
// structural, deterministic, and independent of the simulator.
func containsKind(ss []Stmt, k StmtKind) bool {
	for i := range ss {
		if ss[i].Kind == k ||
			containsKind(ss[i].Body, k) || containsKind(ss[i].Else, k) {
			return true
		}
	}
	return false
}

func TestShrinkReachesLocalMinimum(t *testing.T) {
	// Bury one StAtom in a large generated kernel; "fails" = contains an
	// StAtom. The minimum is a single statement at minimal geometry.
	p := Generate(7, DefaultSize())
	p.Stmts = append(p.Stmts, Stmt{Kind: StIf, Body: []Stmt{
		{Kind: StArith}, {Kind: StAtom, K: 3}, {Kind: StArithF},
	}})
	fails := func(q *Prog) bool { return containsKind(q.Stmts, StAtom) }
	if !fails(p) {
		t.Fatal("setup: original must fail")
	}
	min := Shrink(p, fails)
	if !fails(min) {
		t.Fatal("shrinker lost the failure")
	}
	if n := min.NumStmts(); n != 1 {
		t.Errorf("minimized to %d stmts, want 1: %+v", n, min.Stmts)
	}
	if min.Stmts[0].Kind != StAtom {
		t.Errorf("surviving stmt kind = %v, want StAtom", min.Stmts[0].Kind)
	}
	if min.GridX != 1 || min.BlockX != 32 || min.NumU != 1 || min.NumF != 1 {
		t.Errorf("geometry not minimized: grid=%d block=%d u=%d f=%d",
			min.GridX, min.BlockX, min.NumU, min.NumF)
	}
	if _, err := min.Build(); err != nil {
		t.Fatalf("minimized kernel must stay buildable: %v", err)
	}
}

func TestShrinkUnwrapsControlFlow(t *testing.T) {
	p := &Prog{Seed: 3, GridX: 2, BlockX: 64, NumU: 4, NumF: 1, Stmts: []Stmt{
		{Kind: StFor, Trip: 3, Body: []Stmt{
			{Kind: StIfElse,
				Body: []Stmt{{Kind: StShfl}},
				Else: []Stmt{{Kind: StArith}}},
		}},
	}}
	min := Shrink(p, func(q *Prog) bool { return containsKind(q.Stmts, StShfl) })
	if n := min.NumStmts(); n != 1 || min.Stmts[0].Kind != StShfl {
		t.Fatalf("want lone StShfl, got %d stmts: %+v", n, min.Stmts)
	}
}

// TestReproFormat pins the repro file layout: comment header with seed and
// geometry, a machine-readable prog line, then the rendered kernel.
func TestReproFormat(t *testing.T) {
	p := &Prog{Seed: 0xabc, GridX: 1, BlockX: 32, NumU: 2, NumF: 1,
		Stmts: []Stmt{{Kind: StArith, D: 1, A: 0, B: 1}}}
	s, err := Repro(p, "engine axis: out[7] mismatch\nsecond line")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(s, "\n")
	if !strings.HasPrefix(lines[0], "// difftest repro") {
		t.Errorf("line 0 = %q, want repro banner", lines[0])
	}
	if !strings.Contains(lines[1], "seed: 2748") || !strings.Contains(lines[1], "block: 32") {
		t.Errorf("line 1 = %q, want seed and geometry", lines[1])
	}
	if !strings.Contains(s, "// engine axis: out[7] mismatch") ||
		!strings.Contains(s, "// second line") {
		t.Errorf("note lines missing:\n%s", s)
	}
	if !strings.Contains(s, "\n.entry "+KernelName+"\n") {
		t.Errorf("rendered kernel missing:\n%s", s)
	}
	for _, line := range lines {
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, ".") ||
			strings.HasPrefix(line, "    ") || strings.HasSuffix(line, ":") {
			continue
		}
		t.Errorf("stray line %q: repro files must be comments + PTX", line)
	}
}

func TestReproRoundTrip(t *testing.T) {
	p := Generate(11, DefaultSize())
	dir := t.TempDir()
	path := filepath.Join(dir, "repro.ptx")
	if err := WriteRepro(path, p, "note"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseRepro(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatal("ParseRepro(Repro(p)) != p")
	}
}

func TestParseReproRejectsPlainPTX(t *testing.T) {
	if _, err := ParseRepro([]byte(".entry fz\n    EXIT;\n")); err == nil {
		t.Fatal("want error for a file without a prog line")
	}
}
