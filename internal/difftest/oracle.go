package difftest

import (
	"fmt"
	"hash/fnv"

	"sassi/internal/cuda"
	"sassi/internal/obs"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
)

// Oracle runs one generated kernel through the full differential matrix.
type Oracle struct {
	// Cfg is the device model; SequentialSMs is overridden per launch.
	Cfg sim.Config
	// Tools are the instrumentation configurations checked for
	// transparency (default: Tools()).
	Tools []Tool
	// Cache deduplicates compiles and instrumented builds across oracle
	// runs — the shared compile-cache discipline from the fault campaigns.
	Cache *sassi.CompileCache
	// HandlerMaxRegs is the injection ABI's scratch-register window
	// (default sassi.HandlerMaxRegs); GPRs at or above it must survive
	// instrumentation bit-exactly.
	HandlerMaxRegs int

	// lastSeq threads each tool's sequential run to its parallel sibling
	// inside Run. Oracles are single-goroutine; campaign workers each own
	// their own Oracle.
	lastSeq *RunState
}

// NewOracle builds an oracle on the mini device model with the given
// tools (nil = all registered tools).
func NewOracle(tools []Tool) *Oracle {
	if tools == nil {
		tools = Tools()
	}
	return &Oracle{
		Cfg:            sim.MiniGPU(),
		Tools:          tools,
		Cache:          sassi.NewCompileCache(),
		HandlerMaxRegs: sassi.HandlerMaxRegs,
	}
}

// Result is one kernel's verdict across the whole matrix.
type Result struct {
	Prog     *Prog
	NumRegs  int // base kernel register count
	Launches int
	Failures []Failure
}

// Failed reports whether any comparison diverged.
func (r *Result) Failed() bool { return len(r.Failures) > 0 }

// engineCells is the engine axis of the matrix: the sequential reference
// interpreter, the concurrent-SM interpreter, and the predecoded
// block-dispatch engine. Every cell must be bit-equal to the reference —
// memory, registers, statistics, and metric snapshots.
var engineCells = []struct {
	engine sim.Engine
	suffix string
}{
	{sim.EngineSequential, "seq"},
	{sim.EngineConcurrent, "par"},
	{sim.EnginePredecoded, "pre"},
}

// Run executes the matrix for one generated kernel:
//
//	base/seq ──full── base/par          (engine determinism)
//	base/seq ──full── base/pre          (predecoded-engine equivalence)
//	base/seq ─transp─ tool/seq          (injection transparency, per tool)
//	tool/seq ──full── tool/par          (engine determinism under tools)
//	tool/seq ──full── tool/pre          (predecoded SASSI-site fallback)
//
// A non-nil error means the harness itself failed (the kernel would not
// compile or the uninstrumented reference would not run) — a generator
// bug, not an oracle verdict.
func (o *Oracle) Run(p *Prog) (*Result, error) {
	fp, err := o.fingerprint(p)
	if err != nil {
		return nil, err
	}
	base, err := o.Cache.Get(fp+"/base", func() (*sass.Program, error) {
		return o.compile(p)
	})
	if err != nil {
		return nil, fmt.Errorf("difftest: compile seed %d: %w", p.Seed, err)
	}
	res := &Result{Prog: p, NumRegs: base.Kernels[0].NumRegs}

	ref, err := o.launch(p, base, nil, sim.EngineSequential, "base/seq")
	res.Launches++
	if err != nil {
		return nil, fmt.Errorf("difftest: reference run seed %d: %w", p.Seed, err)
	}
	for _, cell := range engineCells[1:] {
		variant := "base/" + cell.suffix
		st, err := o.launch(p, base, nil, cell.engine, variant)
		res.Launches++
		if err != nil {
			res.Failures = append(res.Failures, Failure{Axis: "engine",
				Want: "base/seq", Got: variant, Diff: fmt.Sprintf("launch failed: %v", err)})
			continue
		}
		res.Failures = append(res.Failures, compareFull(ref, st)...)
	}

	for _, tool := range o.Tools {
		tool := tool
		for _, cell := range engineCells {
			variant := tool.Name + "/" + cell.suffix
			st, err := o.launch(p, nil, &instrumentedSpec{fp: fp, tool: tool}, cell.engine, variant)
			res.Launches++
			if err != nil {
				res.Failures = append(res.Failures, Failure{Axis: "transparency",
					Want: "base/seq", Got: variant,
					Diff: fmt.Sprintf("launch failed: %v", err)})
				break
			}
			if cell.engine == sim.EngineSequential {
				res.Failures = append(res.Failures,
					compareTransparent(ref, st, o.HandlerMaxRegs)...)
				o.lastSeq = st
			} else if o.lastSeq != nil {
				res.Failures = append(res.Failures, compareFull(o.lastSeq, st)...)
			}
		}
		o.lastSeq = nil
	}
	return res, nil
}

// lastSeq threads the per-tool sequential run to its parallel sibling.
// Oracles are single-goroutine; campaign workers each own an Oracle.

// RunSchedule extends the matrix with the scheduling axis: the same
// source compiled with the post-RA list scheduler (ptxas
// Options.Schedule, tie-broken by schedSeed) must retire with bit-equal
// architectural state — every buffer, register, predicate, and memory
// space — on both engines; only timing may move. The scheduled build also
// passes through the compile-time verifier (the `schedule` check) under
// go test, so an illegal reorder fails compilation before it ever runs.
//
//	base/seq ──arch── sched/seq         (schedule transparency)
//	base/seq ──arch── sched/par         (… independent of engine)
//	base/seq ──arch── sched/pre         (… including predecoded dispatch)
//	sched/seq ─full── sched/par         (engine determinism, scheduled)
//	sched/seq ─full── sched/pre         (predecoded determinism, scheduled)
func (o *Oracle) RunSchedule(p *Prog, schedSeed uint64) (*Result, error) {
	fp, err := o.fingerprint(p)
	if err != nil {
		return nil, err
	}
	base, err := o.Cache.Get(fp+"/base", func() (*sass.Program, error) {
		return o.compile(p)
	})
	if err != nil {
		return nil, fmt.Errorf("difftest: compile seed %d: %w", p.Seed, err)
	}
	sched, err := o.Cache.Get(fmt.Sprintf("%s/sched/%d", fp, schedSeed),
		func() (*sass.Program, error) {
			m, err := p.Build()
			if err != nil {
				return nil, err
			}
			return ptxas.Compile(m, ptxas.Options{Schedule: true, SchedSeed: schedSeed})
		})
	if err != nil {
		return nil, fmt.Errorf("difftest: scheduled compile seed %d: %w", p.Seed, err)
	}
	res := &Result{Prog: p, NumRegs: base.Kernels[0].NumRegs}

	ref, err := o.launch(p, base, nil, sim.EngineSequential, "base/seq")
	res.Launches++
	if err != nil {
		return nil, fmt.Errorf("difftest: reference run seed %d: %w", p.Seed, err)
	}
	var schedSeq *RunState
	for _, cell := range engineCells {
		variant := "sched/" + cell.suffix
		st, err := o.launch(p, sched, nil, cell.engine, variant)
		res.Launches++
		if err != nil {
			res.Failures = append(res.Failures, Failure{Axis: "schedule",
				Want: "base/seq", Got: variant,
				Diff: fmt.Sprintf("launch failed: %v", err)})
			continue
		}
		res.Failures = append(res.Failures, compareArch(ref, st)...)
		if cell.engine == sim.EngineSequential {
			schedSeq = st
		} else if schedSeq != nil {
			res.Failures = append(res.Failures, compareFull(schedSeq, st)...)
		}
	}
	return res, nil
}

// compile renders and compiles the base program. The module is rebuilt
// from the Prog each time because the backend optimizes ptx in place.
func (o *Oracle) compile(p *Prog) (*sass.Program, error) {
	m, err := p.Build()
	if err != nil {
		return nil, err
	}
	return ptxas.Compile(m, ptxas.Options{})
}

// fingerprint keys the compile cache by rendered kernel text, so distinct
// Progs never collide and identical ones (fuzz duplicates, shrinker
// retries) share one compile.
func (o *Oracle) fingerprint(p *Prog) (string, error) {
	m, err := p.Build()
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	fmt.Fprint(h, m.Funcs[0].Dump())
	return fmt.Sprintf("difftest/%016x", h.Sum64()), nil
}

type instrumentedSpec struct {
	fp   string
	tool Tool
}

// launch runs one matrix cell and snapshots its final state. Exactly one
// of base/inst is set: base launches the uninstrumented program, inst
// builds (through the cache) and launches the tool-instrumented variant.
func (o *Oracle) launch(p *Prog, base *sass.Program, inst *instrumentedSpec,
	engine sim.Engine, variant string) (*RunState, error) {
	cfg := o.Cfg
	cfg.Engine = engine
	ctx := cuda.NewContext(cfg)
	dev := ctx.Device()
	reg := obs.NewRegistry()
	dev.Metrics = reg

	// Kernel-owned buffers first, so their addresses match across all
	// variants regardless of which tool allocates state afterwards.
	inBuf := make([]uint32, InWords)
	for i := range inBuf {
		inBuf[i] = uint32(SplitMix(p.Seed, uint64(i)))
	}
	inPtr := ctx.AllocU32("difftest.in", inBuf)
	outPtr := ctx.Malloc(uint64(4*p.OutWords()), "difftest.out")
	if err := ctx.Memset32(outPtr, 0, p.OutWords()); err != nil {
		return nil, err
	}
	accPtr := ctx.Malloc(4*AccWords, "difftest.acc")
	if err := ctx.Memset32(accPtr, 0, AccWords); err != nil {
		return nil, err
	}

	prog := base
	if inst != nil {
		opts, hs := inst.tool.Make(ctx)
		ckey, cacheable := opts.CacheKey()
		if !cacheable {
			return nil, fmt.Errorf("difftest: tool %s options are uncacheable", inst.tool.Name)
		}
		var err error
		prog, err = o.Cache.Get(inst.fp+"/tool/"+inst.tool.Name+"/"+ckey,
			func() (*sass.Program, error) {
				ip, err := o.compile(p)
				if err != nil {
					return nil, err
				}
				if err := sassi.Instrument(ip, opts); err != nil {
					return nil, err
				}
				return ip, nil
			})
		if err != nil {
			return nil, fmt.Errorf("difftest: instrument %s: %w", inst.tool.Name, err)
		}
		rt := sassi.NewRuntime(prog)
		rt.Metrics = reg
		for _, h := range hs {
			// A kernel with no sites of the tool's class (e.g. no
			// conditional branches for the branch profiler) gets no JCAL
			// for the symbol; the handler simply never fires.
			if _, ok := prog.Handlers[h.Name]; !ok {
				continue
			}
			if err := rt.Register(h); err != nil {
				return nil, err
			}
		}
		rt.Attach(dev)
	}

	col := newCollector()
	dev.CTARetire = col.hook
	stats, err := ctx.LaunchKernel(prog, KernelName, sim.LaunchParams{
		Grid:  sim.D1(p.GridX),
		Block: sim.D1(p.BlockX),
		Args:  []uint64{uint64(inPtr), uint64(outPtr), uint64(accPtr)},
	})
	if err != nil {
		return nil, err
	}
	out, err := ctx.ReadU32(outPtr, p.OutWords())
	if err != nil {
		return nil, err
	}
	acc, err := ctx.ReadU32(accPtr, AccWords)
	if err != nil {
		return nil, err
	}
	return &RunState{
		Variant: variant,
		CTAs:    col.ctas,
		Out:     out,
		Acc:     acc,
		Stats:   stats,
		Metrics: reg.Flat("sm"),
		NumRegs: prog.Kernels[0].NumRegs,
	}, nil
}
