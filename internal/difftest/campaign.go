package difftest

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"sassi/internal/sassi"
	"sassi/internal/sim"
)

// Campaign drives many oracle runs over generated kernels, with the same
// worker-pool discipline as the fault campaigns: per-run seeds are a pure
// function of (Seed, run index) via SplitMix, so results are identical at
// any worker count, and all workers share one CompileCache.
type Campaign struct {
	Seed    uint64
	Runs    int
	Workers int // 0 = GOMAXPROCS
	Size    Size
	Tools   []Tool     // nil = all registered tools
	Cfg     sim.Config // zero = MiniGPU
	Log     io.Writer  // nil = quiet; failures are logged as they appear

	// Shrink minimizes failing kernels before reporting (on by default in
	// the CLI; tests that want the raw failing Prog leave it false).
	Shrink bool
}

// CampaignFailure is one diverging kernel, minimized if Campaign.Shrink.
type CampaignFailure struct {
	Run      int
	Seed     uint64 // per-run derived seed
	Prog     *Prog  // failing (possibly minimized) kernel
	Failures []Failure
}

// Note renders the failure list as a repro-header note.
func (cf *CampaignFailure) Note() string {
	s := fmt.Sprintf("run %d (derived seed %#x)", cf.Run, cf.Seed)
	for _, f := range cf.Failures {
		s += "\n" + f.String()
	}
	return s
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	Runs        int
	Launches    int
	Failures    []CampaignFailure
	Errors      []error // harness errors (generator/compile bugs), not verdicts
	CacheHits   uint64
	CacheMisses uint64
}

// Run executes the campaign. A non-nil error is reserved for setup
// problems; kernel divergences land in CampaignResult.Failures and
// harness errors in CampaignResult.Errors.
func (c *Campaign) Run() (*CampaignResult, error) {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.Runs {
		workers = c.Runs
	}
	cfg := c.Cfg
	if cfg.NumSMs == 0 {
		cfg = sim.MiniGPU()
	}
	tools := c.Tools
	if tools == nil {
		tools = Tools()
	}
	cache := sassi.NewCompileCache()

	res := &CampaignResult{Runs: c.Runs}
	var (
		mu       sync.Mutex
		next     atomic.Int64
		launches atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns an Oracle (Run threads per-tool state), all
			// sharing the campaign-wide compile cache.
			o := &Oracle{Cfg: cfg, Tools: tools, Cache: cache,
				HandlerMaxRegs: sassi.HandlerMaxRegs}
			for {
				run := int(next.Add(1)) - 1
				if run >= c.Runs {
					return
				}
				seed := SplitMix(c.Seed, uint64(run))
				p := Generate(seed, c.Size)
				r, err := o.Run(p)
				if r != nil {
					launches.Add(int64(r.Launches))
				}
				if err != nil {
					mu.Lock()
					res.Errors = append(res.Errors, fmt.Errorf("run %d: %w", run, err))
					mu.Unlock()
					continue
				}
				if !r.Failed() {
					continue
				}
				cf := CampaignFailure{Run: run, Seed: seed, Prog: p, Failures: r.Failures}
				if c.Shrink {
					cf.Prog = Shrink(p, func(q *Prog) bool {
						qr, qerr := o.Run(q)
						if qr != nil {
							launches.Add(int64(qr.Launches))
						}
						return qerr == nil && qr.Failed()
					})
					if qr, qerr := o.Run(cf.Prog); qerr == nil {
						cf.Failures = qr.Failures
					}
				}
				mu.Lock()
				res.Failures = append(res.Failures, cf)
				if c.Log != nil {
					fmt.Fprintf(c.Log, "FAIL run %d seed %#x: %d divergence(s); first: %s\n",
						run, seed, len(cf.Failures), cf.Failures[0])
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Launches = int(launches.Load())
	res.CacheHits, res.CacheMisses = cache.Stats()
	return res, nil
}
