// Package sassi implements the paper's contribution: a selective,
// compiler-level instrumentation framework for GPU machine code. Given a
// compiled SASS kernel, an instrumentation specification (where to inject,
// what to pass), and user handlers, it rewrites the kernel so that each
// selected site performs a CUDA-ABI-compliant call into the handler:
//
//  1. allocate a stack frame for the parameter objects,
//  2. spill exactly the live registers the handler may clobber,
//  3. materialize the parameter objects (BeforeParams plus an optional
//     memory/branch/register object) with STL stores,
//  4. pass generic pointers to the objects in the ABI argument registers,
//  5. JCAL to the handler symbol,
//  6. restore the spilled state and release the frame.
//
// The pass runs on final machine code — after register allocation and
// scheduling — and never reorders or rewrites the original instructions,
// matching the paper's placement of SASSI as the last ptxas pass.
package sassi

// The CUDA-ABI conventions this instrumentor follows. They mirror the
// paper's Figure 2: R1 is the stack pointer, 64-bit pointer arguments go
// in (R4,R5) and (R6,R7), and instrumentation handlers may use at most
// HandlerMaxRegs registers, so only live registers below that bound need
// to be preserved around a call.
const (
	// ABIArg0 and ABIArg1 are the register pairs carrying the two handler
	// arguments (generic pointers to the parameter objects).
	ABIArg0 = 4
	ABIArg1 = 6

	// HandlerMaxRegs caps the register footprint of instrumentation
	// handlers (nvcc -maxrregcount=16 in the paper, §3.2). The injector
	// spills live registers in [0, HandlerMaxRegs) only.
	HandlerMaxRegs = 16

	// scratchPred is the GPR used to shuttle predicate and CC state to the
	// spill area. It lies inside the spill range, so a live value in it is
	// already preserved before the shuttle clobbers it.
	scratchPred = 3
)

// BeforeParams object layout (byte offsets within the stack frame). The
// field set and offsets follow the paper's Figure 2(a/b): GPR spills start
// at +0x18 and the instruction encoding lives at +0x58.
const (
	bpID          = 0x00 // site id (unique per instrumentation site)
	bpWillExec    = 0x04 // 1 iff the instruction's guard passes
	bpFnAddr      = 0x08 // kernel base pseudo-address
	bpInsOffset   = 0x0c // byte offset of the instruction within the kernel
	bpPRSpill     = 0x10 // spilled predicate register file
	bpCCSpill     = 0x14 // spilled condition code
	bpGPRSpill    = 0x18 // 16 spill slots, 4 bytes each (through 0x57)
	bpInsEncoding = 0x58 // sass.EncodeSummary word
	bpSpillCount  = 0x5c // number of occupied spill slots
	bpSpillRegs   = 0x60 // 16 bytes: GPR number per spill slot (0xff empty)
	bpSize        = 0x70
)

// MemoryParams object layout (paper Figure 2(c)).
const (
	mpAddress    = 0x00 // 64-bit effective address (generic)
	mpProperties = 0x08 // static property bits (same summary encoding)
	mpWidth      = 0x0c // access width in bytes
	mpDomain     = 0x10 // memory domain (mem.Space numeric value)
	mpSize       = 0x18
)

// CondBranchParams object layout.
const (
	cbDirection   = 0x00 // 1 iff this thread will take the branch
	cbTakenOffset = 0x04 // byte offset of the branch target
	cbFallOffset  = 0x08 // byte offset of the fall-through instruction
	cbSize        = 0x10
)

// RegisterParams object layout: static operand register info. Values are
// read through BeforeParams' spill map at handler time, so only register
// numbers are materialized here.
const (
	rpNumDsts = 0x00
	rpDstRegs = 0x04 // 4 slots
	rpNumSrcs = 0x14
	rpSrcRegs = 0x18 // 8 slots
	rpSize    = 0x38
)

// frameSize returns the stack frame for a site with the given extra object.
func frameSize(extra int) int64 {
	n := bpSize + extra
	// Keep 16-byte alignment like the CUDA ABI.
	return int64((n + 15) &^ 15)
}
