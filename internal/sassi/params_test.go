package sassi_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/mem"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
)

// paramProbe instruments a kernel and captures handler args for assertion.
type probe struct {
	fn func(c *device.Ctx, args sassi.HandlerArgs)
}

// runProbe compiles the store kernel out[i] = i, instruments per opts, and
// runs with the probe handler.
func runProbe(t *testing.T, opts sassi.Options, compile ptxas.Options, p *probe) *cuda.Context {
	t.Helper()
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	i := b.GlobalTidX()
	cond := b.SetpI(sass.CmpLT, i, 16)
	b.If(cond, func() {
		b.StGlobalU32(b.Index(out, i, 2), 0, i)
	})
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, compile)
	if err != nil {
		t.Fatal(err)
	}
	if err := sassi.Instrument(prog, opts); err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(sim.MiniGPU())
	rt := sassi.NewRuntime(prog)
	name := opts.BeforeHandler
	if name == "" {
		name = opts.AfterHandler
	}
	rt.MustRegister(&sassi.Handler{Name: name, What: opts.What, Sequential: true, Fn: p.fn})
	rt.Attach(ctx.Device())
	buf := ctx.Malloc(4*64, "out")
	if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(buf)},
	}); err != nil {
		t.Fatal(err)
	}
	// Sanity: results intact.
	vals, _ := ctx.ReadU32(buf, 16)
	for i, v := range vals {
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d after instrumentation", i, v)
		}
	}
	return ctx
}

// TestBeforeParamsFields: the guarded store site exposes correct static
// info and per-thread will-execute flags.
func TestBeforeParamsFields(t *testing.T) {
	seen := 0
	p := &probe{fn: func(c *device.Ctx, args sassi.HandlerArgs) {
		bp := args.BP
		if bp.Opcode() != sass.OpSTG {
			return // other memory ops (none expected here)
		}
		seen++
		if !bp.IsMem() || !bp.IsMemWrite() || bp.IsMemRead() {
			t.Error("store misclassified")
		}
		if bp.IsTexture() || bp.IsSync() || bp.IsNumeric() {
			t.Error("spurious class bits")
		}
		wantExec := c.FlatThreadIdx() < 16
		if bp.InstrWillExecute() != wantExec {
			t.Errorf("thread %d willExec = %v", c.FlatThreadIdx(), bp.InstrWillExecute())
		}
		if bp.InsAddr() != bp.FnAddr()+bp.InsOffset() {
			t.Error("InsAddr identity broken")
		}
		if bp.FnAddr() != sassi.FnAddr(0) {
			t.Errorf("fnAddr = %#x", bp.FnAddr())
		}
	}}
	// Keep the guard (no if-conversion removes it to a branch...): with
	// default compile options the short body is predicated, so the STG
	// carries the guard directly.
	runProbe(t, sassi.Options{Where: sassi.BeforeMem, BeforeHandler: "h", What: sassi.PassMemoryInfo}, ptxas.Options{}, p)
	if seen == 0 {
		t.Fatal("probe never saw the store")
	}
}

// TestMemoryParamsAddress: the materialized effective address matches the
// actual per-thread store target.
func TestMemoryParamsAddress(t *testing.T) {
	var base uint64
	p := &probe{fn: func(c *device.Ctx, args sassi.HandlerArgs) {
		if args.BP.Opcode() != sass.OpSTG || !args.BP.InstrWillExecute() {
			return
		}
		mp := args.MP
		if mp == nil {
			t.Fatal("no memory params at a memory site")
		}
		addr := mp.Address()
		if base == 0 {
			base = addr - 4*uint64(c.FlatThreadIdx())
		}
		want := base + 4*uint64(c.FlatThreadIdx())
		if addr != want {
			t.Errorf("thread %d address %#x, want %#x", c.FlatThreadIdx(), addr, want)
		}
		if !mp.IsStore() || mp.IsLoad() || mp.IsAtomic() {
			t.Error("memory params misclassified")
		}
		if mp.Width() != 4 {
			t.Errorf("width = %d", mp.Width())
		}
		if !mp.IsGlobal() || mp.Domain() != mem.SpaceGlobal {
			t.Error("domain wrong")
		}
	}}
	runProbe(t, sassi.Options{Where: sassi.BeforeMem, BeforeHandler: "h", What: sassi.PassMemoryInfo}, ptxas.Options{}, p)
	if base == 0 {
		t.Fatal("no active store observed")
	}
}

// TestCondBranchParams: direction matches the per-thread predicate.
func TestCondBranchParams(t *testing.T) {
	seen := false
	p := &probe{fn: func(c *device.Ctx, args sassi.HandlerArgs) {
		cb := args.CBP
		if cb == nil {
			t.Fatal("no branch params")
		}
		seen = true
		// The builder's If branches when the condition is FALSE (skip),
		// so direction == (tid >= 16).
		want := c.FlatThreadIdx() >= 16
		if cb.Direction() != want {
			t.Errorf("thread %d direction = %v", c.FlatThreadIdx(), cb.Direction())
		}
		if cb.TakenOffset() < 0 {
			t.Error("taken offset missing")
		}
		if cb.FallthroughOffset() <= 0 {
			t.Error("fallthrough offset missing")
		}
	}}
	runProbe(t, sassi.Options{Where: sassi.BeforeCondBranches, BeforeHandler: "h", What: sassi.PassCondBranchInfo},
		ptxas.Options{NoIfConvert: true}, p)
	if !seen {
		t.Fatal("no conditional branch observed")
	}
}

// TestRegisterParamsValues: after-write sites expose the just-written
// values through the spill-aware accessor.
func TestRegisterParamsValues(t *testing.T) {
	seen := 0
	p := &probe{fn: func(c *device.Ctx, args sassi.HandlerArgs) {
		if !args.BP.InstrWillExecute() {
			return
		}
		rp := args.RP
		if rp == nil {
			t.Fatal("no register params")
		}
		// Find the S2R TID instruction: its dest must equal threadIdx.
		if args.BP.Opcode() == sass.OpS2R && rp.NumGPRDsts() == 1 {
			v := rp.GetRegValue(rp.GPRDst(0))
			// S2R reads one of several specials; tid.x sites match flat id.
			if v == c.FlatThreadIdx() {
				seen++
			}
		}
	}}
	runProbe(t, sassi.Options{Where: sassi.AfterRegWrites, AfterHandler: "h", What: sassi.PassRegisterInfo},
		ptxas.Options{}, p)
	if seen == 0 {
		t.Fatal("never observed the tid write")
	}
}

// TestSetRegValueThroughSpill: mutating a register from the handler
// survives the restore sequence and changes program output — the error
// injection capability.
func TestSetRegValueThroughSpill(t *testing.T) {
	// Flip bit 4 of the value the store writes (its data register), for
	// thread 3 only, at the site just before the store.
	p := &probe{fn: func(c *device.Ctx, args sassi.HandlerArgs) {
		if args.BP.Opcode() != sass.OpSTG || !args.BP.InstrWillExecute() {
			return
		}
		if c.FlatThreadIdx() != 3 {
			return
		}
		// The store's data register is its last GPR source.
		rp := args.RP
		if rp == nil || rp.NumGPRSrcs() == 0 {
			t.Fatal("no register info at store")
		}
		reg := rp.GPRSrc(rp.NumGPRSrcs() - 1)
		rp.SetRegValue(reg, rp.GetRegValue(reg)^16)
	}}

	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	i := b.GlobalTidX()
	b.StGlobalU32(b.Index(out, i, 2), 0, i)
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sassi.Instrument(prog, sassi.Options{
		Where: sassi.BeforeMem, BeforeHandler: "h", What: sassi.PassRegisterInfo,
	}); err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(sim.MiniGPU())
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(&sassi.Handler{Name: "h", What: sassi.PassRegisterInfo, Sequential: true, Fn: p.fn})
	rt.Attach(ctx.Device())
	buf := ctx.Malloc(4*32, "out")
	if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(buf)},
	}); err != nil {
		t.Fatal(err)
	}
	vals, _ := ctx.ReadU32(buf, 32)
	for i, v := range vals {
		want := uint32(i)
		if i == 3 {
			want = 3 ^ 16
		}
		if v != want {
			t.Errorf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

// TestSetPredAndCCThroughSpill: predicate and CC mutations are visible to
// the original code after the restore.
func TestSetPredAndCCThroughSpill(t *testing.T) {
	// Kernel: P-guarded store where P = (tid < 32) (always true). Handler
	// clears the branch predicate for thread 5 -> its store is skipped.
	flipped := false
	p := &probe{fn: func(c *device.Ctx, args sassi.HandlerArgs) {
		if args.BP.Opcode() != sass.OpSTG {
			return
		}
		if c.FlatThreadIdx() != 5 {
			return
		}
		bp := args.BP
		// Find a set predicate and clear it.
		for pr := uint8(0); pr < 7; pr++ {
			if bp.GetPredValue(pr) {
				bp.SetPredValue(pr, false)
				flipped = true
				break
			}
		}
		// Exercise CC accessors too.
		bp.SetCCValue(bp.GetCCValue())
	}}
	runProbe2 := func() []uint32 {
		b := ptx.NewKernel("k")
		out := b.ParamU64("out")
		i := b.GlobalTidX()
		cond := b.SetpI(sass.CmpLT, i, 32)
		b.If(cond, func() {
			b.StGlobalU32(b.Index(out, i, 2), 0, b.AddI(i, 100))
		})
		m := ptx.NewModule()
		m.Add(b.MustDone())
		prog, err := ptxas.Compile(m, ptxas.Options{}) // if-converted: @P0 STG
		if err != nil {
			t.Fatal(err)
		}
		if err := sassi.Instrument(prog, sassi.Options{
			Where: sassi.BeforeMem, BeforeHandler: "h",
		}); err != nil {
			t.Fatal(err)
		}
		ctx := cuda.NewContext(sim.MiniGPU())
		rt := sassi.NewRuntime(prog)
		rt.MustRegister(&sassi.Handler{Name: "h", Sequential: true, Fn: p.fn})
		rt.Attach(ctx.Device())
		buf := ctx.Malloc(4*32, "out")
		if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
			Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(buf)},
		}); err != nil {
			t.Fatal(err)
		}
		vals, _ := ctx.ReadU32(buf, 32)
		return vals
	}
	vals := runProbe2()
	if !flipped {
		t.Skip("kernel had no set predicate at the site (if-conversion changed shape)")
	}
	for i, v := range vals {
		want := uint32(i + 100)
		if i == 5 {
			want = 0 // store suppressed by the cleared predicate
		}
		if v != want {
			t.Errorf("out[%d] = %d, want %d", i, v, want)
		}
	}
}
