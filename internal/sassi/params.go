package sassi

import (
	"sassi/internal/device"
	"sassi/internal/mem"
	"sassi/internal/sass"
)

// BeforeParams is the handler-side view of the SASSIBeforeParams object the
// injected code built on the thread's stack. All accessors issue simulated
// generic-memory reads against the object, exactly as compiled handler code
// would. The same layout serves after-sites (SASSIAfterParams).
type BeforeParams struct {
	ctx  *device.Ctx
	addr uint64 // generic address of the object
}

// NewBeforeParams wraps the object at a generic address (the value the ABI
// passed in R4/R5).
func NewBeforeParams(ctx *device.Ctx, addr uint64) BeforeParams {
	return BeforeParams{ctx: ctx, addr: addr}
}

func (bp BeforeParams) u32(off int64) uint32 {
	return bp.ctx.ReadGeneric32(bp.addr + uint64(off))
}

// ID returns the site's unique id.
func (bp BeforeParams) ID() int32 { return int32(bp.u32(bpID)) }

// InstrWillExecute reports whether the instrumented instruction's guard
// passes for this thread.
func (bp BeforeParams) InstrWillExecute() bool { return bp.u32(bpWillExec) != 0 }

// FnAddr returns the kernel's pseudo base address.
func (bp BeforeParams) FnAddr() int32 { return int32(bp.u32(bpFnAddr)) }

// InsOffset returns the instruction's byte offset within the kernel.
func (bp BeforeParams) InsOffset() int32 { return int32(bp.u32(bpInsOffset)) }

// InsAddr returns FnAddr+InsOffset: a stable, unique instruction address
// (the handlers' hash-table key, as in the paper's find(bp->GetInsAddr())).
func (bp BeforeParams) InsAddr() int32 { return bp.FnAddr() + bp.InsOffset() }

// InsEncoding returns the packed static-properties word.
func (bp BeforeParams) InsEncoding() uint32 { return bp.u32(bpInsEncoding) }

// Opcode returns the instrumented instruction's opcode.
func (bp BeforeParams) Opcode() sass.Opcode { return sass.SummaryOpcode(bp.InsEncoding()) }

// Classification queries, mirroring the paper's Figure 2(b) methods.

// IsMem reports whether the instruction touches memory.
func (bp BeforeParams) IsMem() bool { return sass.SummaryIsMem(bp.InsEncoding()) }

// IsMemRead reports whether the instruction reads memory.
func (bp BeforeParams) IsMemRead() bool { return sass.SummaryIsMemRead(bp.InsEncoding()) }

// IsMemWrite reports whether the instruction writes memory.
func (bp BeforeParams) IsMemWrite() bool { return sass.SummaryIsMemWrite(bp.InsEncoding()) }

// IsSpillOrFill reports whether the instruction is a local (stack) access.
func (bp BeforeParams) IsSpillOrFill() bool { return sass.SummaryIsSpillFill(bp.InsEncoding()) }

// IsSurfaceMemory is always false in this model (no surface memory).
func (bp BeforeParams) IsSurfaceMemory() bool { return false }

// IsControlXfer reports whether the instruction may transfer control.
func (bp BeforeParams) IsControlXfer() bool { return sass.SummaryIsCtrlXfer(bp.InsEncoding()) }

// IsCondControlXfer reports whether it is a *conditional* control transfer.
func (bp BeforeParams) IsCondControlXfer() bool {
	return bp.IsControlXfer() && sass.SummaryIsGuarded(bp.InsEncoding())
}

// IsSync reports whether the instruction synchronizes.
func (bp BeforeParams) IsSync() bool { return sass.SummaryIsSync(bp.InsEncoding()) }

// IsNumeric reports whether the instruction does arithmetic.
func (bp BeforeParams) IsNumeric() bool { return sass.SummaryIsNumeric(bp.InsEncoding()) }

// IsTexture reports whether the instruction reads texture memory.
func (bp BeforeParams) IsTexture() bool { return sass.SummaryIsTexture(bp.InsEncoding()) }

// Register value access with spill-map resolution. Registers that the
// injector spilled live in the object's spill slots; reading/writing them
// must go through the slots so that handler writes survive the restore
// sequence (how fault injection mutates ISA state, §8).

// spillSlot returns the slot index holding register r, or -1.
func (bp BeforeParams) spillSlot(r uint8) int {
	n := int(bp.u32(bpSpillCount))
	for slot := 0; slot < n && slot < 16; slot++ {
		word := bp.u32(bpSpillRegs + int64(slot/4)*4)
		if uint8(word>>(uint(slot%4)*8)) == r {
			return slot
		}
	}
	return -1
}

// GetRegValue reads GPR r's value at the instrumentation site.
func (bp BeforeParams) GetRegValue(r uint8) uint32 {
	if slot := bp.spillSlot(r); slot >= 0 {
		return bp.u32(bpGPRSpill + int64(slot)*4)
	}
	return bp.ctx.ReadReg(r)
}

// SetRegValue writes GPR r, routing through the spill slot when needed so
// the value is what the restore sequence reinstates.
func (bp BeforeParams) SetRegValue(r uint8, v uint32) {
	if slot := bp.spillSlot(r); slot >= 0 {
		bp.ctx.WriteGeneric32(bp.addr+uint64(bpGPRSpill+int64(slot)*4), v)
		return
	}
	bp.ctx.WriteReg(r, v)
}

// GetPredValue reads predicate p as spilled at the site.
func (bp BeforeParams) GetPredValue(p uint8) bool {
	return bp.u32(bpPRSpill)&(1<<p) != 0
}

// SetPredValue writes predicate p through the spill slot.
func (bp BeforeParams) SetPredValue(p uint8, v bool) {
	w := bp.u32(bpPRSpill)
	if v {
		w |= 1 << p
	} else {
		w &^= 1 << p
	}
	bp.ctx.WriteGeneric32(bp.addr+bpPRSpill, w)
}

// GetCCValue reads the condition code as spilled at the site.
func (bp BeforeParams) GetCCValue() uint8 { return uint8(bp.u32(bpCCSpill)) & 0xf }

// SetCCValue writes the condition code through the spill slot.
func (bp BeforeParams) SetCCValue(v uint8) {
	bp.ctx.WriteGeneric32(bp.addr+bpCCSpill, uint32(v&0xf))
}

// MemoryParams is the handler-side view of SASSIMemoryParams.
type MemoryParams struct {
	ctx  *device.Ctx
	addr uint64
}

// NewMemoryParams wraps the object at a generic address.
func NewMemoryParams(ctx *device.Ctx, addr uint64) MemoryParams {
	return MemoryParams{ctx: ctx, addr: addr}
}

func (mp MemoryParams) u32(off int64) uint32 {
	return mp.ctx.ReadGeneric32(mp.addr + uint64(off))
}

// Address returns the access's 64-bit effective (generic) address.
func (mp MemoryParams) Address() uint64 {
	return mp.ctx.ReadGeneric64(mp.addr + mpAddress)
}

// Width returns the per-thread access width in bytes.
func (mp MemoryParams) Width() int { return int(mp.u32(mpWidth)) }

// IsLoad reports whether the access reads memory.
func (mp MemoryParams) IsLoad() bool { return sass.SummaryIsMemRead(mp.u32(mpProperties)) }

// IsStore reports whether the access writes memory.
func (mp MemoryParams) IsStore() bool { return sass.SummaryIsMemWrite(mp.u32(mpProperties)) }

// IsAtomic reports whether the access is a read-modify-write.
func (mp MemoryParams) IsAtomic() bool { return sass.SummaryIsAtomic(mp.u32(mpProperties)) }

// Domain returns the statically known memory space (SpaceInvalid when the
// op is generic and the space is only known from the address).
func (mp MemoryParams) Domain() mem.Space { return mem.Space(mp.u32(mpDomain)) }

// IsGlobal reports whether the effective address maps to global memory
// (the __isGlobal check of the paper's Figure 6 handler).
func (mp MemoryParams) IsGlobal() bool { return mem.IsGlobal(mp.Address()) }

// CondBranchParams is the handler-side view of SASSICondBranchParams.
type CondBranchParams struct {
	ctx  *device.Ctx
	addr uint64
}

// NewCondBranchParams wraps the object at a generic address.
func NewCondBranchParams(ctx *device.Ctx, addr uint64) CondBranchParams {
	return CondBranchParams{ctx: ctx, addr: addr}
}

// Direction reports whether this thread will take the branch
// (the paper's brp->GetDirection()).
func (cb CondBranchParams) Direction() bool {
	return cb.ctx.ReadGeneric32(cb.addr+cbDirection) != 0
}

// TakenOffset returns the branch target's byte offset.
func (cb CondBranchParams) TakenOffset() int32 {
	return int32(cb.ctx.ReadGeneric32(cb.addr + cbTakenOffset))
}

// FallthroughOffset returns the fall-through instruction's byte offset.
func (cb CondBranchParams) FallthroughOffset() int32 {
	return int32(cb.ctx.ReadGeneric32(cb.addr + cbFallOffset))
}

// RegisterParams is the handler-side view of SASSIRegisterParams. Register
// values resolve through the BeforeParams spill map, so the struct carries
// its sibling object.
type RegisterParams struct {
	ctx  *device.Ctx
	addr uint64
	bp   BeforeParams
}

// NewRegisterParams wraps the object at a generic address.
func NewRegisterParams(ctx *device.Ctx, addr uint64, bp BeforeParams) RegisterParams {
	return RegisterParams{ctx: ctx, addr: addr, bp: bp}
}

func (rp RegisterParams) u32(off int64) uint32 {
	return rp.ctx.ReadGeneric32(rp.addr + uint64(off))
}

// NumGPRDsts returns the number of destination GPRs.
func (rp RegisterParams) NumGPRDsts() int { return int(rp.u32(rpNumDsts)) }

// GPRDst returns the i-th destination register number.
func (rp RegisterParams) GPRDst(i int) uint8 { return uint8(rp.u32(rpDstRegs + int64(i)*4)) }

// NumGPRSrcs returns the number of source GPRs.
func (rp RegisterParams) NumGPRSrcs() int { return int(rp.u32(rpNumSrcs)) }

// GPRSrc returns the i-th source register number.
func (rp RegisterParams) GPRSrc(i int) uint8 { return uint8(rp.u32(rpSrcRegs + int64(i)*4)) }

// GetRegValue reads a register's value at the site (spill-aware).
func (rp RegisterParams) GetRegValue(r uint8) uint32 { return rp.bp.GetRegValue(r) }

// SetRegValue writes a register's value at the site (spill-aware).
func (rp RegisterParams) SetRegValue(r uint8, v uint32) { rp.bp.SetRegValue(r, v) }
