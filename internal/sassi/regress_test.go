package sassi_test

// Regression tests for injector bugs the static verifier originally caught,
// plus the structured-error contract of Instrument.

import (
	"errors"
	"strings"
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/sass"
	"sassi/internal/sassi"
)

func instrumentOne(t *testing.T, k *sass.Kernel, opts sassi.Options) (*sass.Program, error) {
	t.Helper()
	prog := sass.NewProgram()
	prog.AddKernel(k)
	return prog, sassi.Instrument(prog, opts)
}

// The injector snapshots predicates into its scratch register before the
// handler call. A memory operand whose BASE register is that scratch
// register must still observe the original value — the injector has to
// order the snapshot after any address capture (or use a different
// scratch). This kernel puts the address in the scratch register on
// purpose; instrumentation must verify clean.
func TestInstrumentMemBaseInScratchRegister(t *testing.T) {
	// R3 is the injector's predicate/CC shuttle register (abi.go).
	const scratch = uint8(3)
	k := &sass.Kernel{
		Name: "base_in_scratch", NumRegs: 8, NumPreds: 2,
		Instrs: []sass.Instruction{
			sass.New(sass.OpMOV32, []sass.Operand{sass.R(scratch)}, []sass.Operand{sass.Imm(0x40)}),
			sass.New(sass.OpLDG, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Mem(scratch, 0)}),
			sass.New(sass.OpEXIT, nil, nil),
		},
	}
	_, err := instrumentOne(t, k, sassi.Options{
		Where:         sassi.BeforeMem,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "h",
		Verify:        analysis.VerifyOn,
	})
	if err != nil {
		t.Fatalf("instrumenting a load whose base is the scratch register: %v", err)
	}
}

// Same shape with a 64-bit extended load: the implicit high register of the
// destination pair must be treated as written, and the base pair as read.
func TestInstrumentWideLoadRegisterPair(t *testing.T) {
	ld := sass.New(sass.OpLDG, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Mem(2, 0)})
	ld.Mods.E = true
	ld.Mods.Width = sass.W64
	k := &sass.Kernel{
		Name: "wide_load", NumRegs: 8, NumPreds: 2,
		Instrs: []sass.Instruction{
			sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(0x80)}),
			sass.New(sass.OpMOV32, []sass.Operand{sass.R(3)}, []sass.Operand{sass.Imm(0)}),
			ld,
			sass.New(sass.OpEXIT, nil, nil),
		},
	}
	_, err := instrumentOne(t, k, sassi.Options{
		Where:         sassi.BeforeMem,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "h",
		Verify:        analysis.VerifyOn,
	})
	if err != nil {
		t.Fatalf("instrumenting a 64-bit load: %v", err)
	}
}

// Instrument reports failures as *sassi.Error so callers can extract the
// kernel/site position instead of parsing message text.
func TestInstrumentReturnsStructuredError(t *testing.T) {
	k := &sass.Kernel{
		Name: "k", NumRegs: 8, NumPreds: 2,
		Instrs: []sass.Instruction{sass.New(sass.OpEXIT, nil, nil)},
	}
	_, err := instrumentOne(t, k, sassi.Options{Where: sassi.BeforeAll})
	if err == nil {
		t.Fatal("Instrument without a handler symbol succeeded")
	}
	var serr *sassi.Error
	if !errors.As(err, &serr) {
		t.Fatalf("error is %T, want *sassi.Error", err)
	}
	if serr.Site != -1 {
		t.Errorf("option-level failure has Site %d, want -1", serr.Site)
	}
	if !strings.Contains(err.Error(), "sassi:") {
		t.Errorf("message %q lacks the sassi: prefix", err)
	}
}
