package sassi_test

import (
	"testing"

	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
)

// buildMixed compiles a kernel exercising every instruction class: memory
// ops, a conditional branch, arithmetic, an atomic.
func buildMixed(t *testing.T) *sass.Program {
	t.Helper()
	b := ptx.NewKernel("mixed")
	p := b.ParamU64("p")
	i := b.GlobalTidX()
	v := b.LdGlobalU32(b.Index(p, i, 2), 0)
	c := b.SetpI(sass.CmpLT, v, 10)
	b.IfElse(c, func() {
		b.AtomAddGlobal(p, 0, b.ImmU32(1))
	}, func() {
		b.StGlobalU32(b.Index(p, i, 2), 4, b.Add(v, b.ImmU32(1)))
	})
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{NoIfConvert: true})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// countSites counts JCAL injections after instrumenting with opts.
func countSites(t *testing.T, opts sassi.Options) (jcals int, perClass map[sass.Opcode]int) {
	t.Helper()
	prog := buildMixed(t)
	if err := sassi.Instrument(prog, opts); err != nil {
		t.Fatal(err)
	}
	k := prog.Kernels[0]
	perClass = map[sass.Opcode]int{}
	for i := range k.Instrs {
		if k.Instrs[i].Injected && k.Instrs[i].Op == sass.OpJCAL {
			jcals++
			// The original instruction follows the restore sequence; find
			// the next non-injected instruction.
			for j := i + 1; j < len(k.Instrs); j++ {
				if !k.Instrs[j].Injected {
					perClass[k.Instrs[j].Op]++
					break
				}
			}
		}
	}
	return jcals, perClass
}

func TestWhereBeforeAll(t *testing.T) {
	prog := buildMixed(t)
	orig := len(prog.Kernels[0].Instrs)
	jcals, _ := countSites(t, sassi.Options{Where: sassi.BeforeAll, BeforeHandler: "h"})
	if jcals != orig {
		t.Errorf("BeforeAll sites = %d, want %d (every original instruction)", jcals, orig)
	}
}

func TestWhereBeforeMem(t *testing.T) {
	jcals, classes := countSites(t, sassi.Options{Where: sassi.BeforeMem, BeforeHandler: "h"})
	prog := buildMixed(t)
	memOps := 0
	for i := range prog.Kernels[0].Instrs {
		if prog.Kernels[0].Instrs[i].Op.IsMem() {
			memOps++
		}
	}
	if jcals != memOps {
		t.Errorf("BeforeMem sites = %d, want %d", jcals, memOps)
	}
	for op := range classes {
		if !op.IsMem() {
			t.Errorf("BeforeMem instrumented non-memory op %s", op)
		}
	}
}

func TestWhereBeforeCondBranches(t *testing.T) {
	jcals, classes := countSites(t, sassi.Options{Where: sassi.BeforeCondBranches, BeforeHandler: "h"})
	if jcals == 0 {
		t.Fatal("no conditional-branch sites found")
	}
	for op := range classes {
		if op != sass.OpBRA {
			t.Errorf("instrumented %s as a conditional branch", op)
		}
	}
}

func TestWhereKernelEntryAndExit(t *testing.T) {
	jcals, _ := countSites(t, sassi.Options{Where: sassi.KernelEntry, BeforeHandler: "h"})
	if jcals != 1 {
		t.Errorf("KernelEntry sites = %d, want 1", jcals)
	}
	jcals, classes := countSites(t, sassi.Options{Where: sassi.KernelExit, BeforeHandler: "h"})
	if jcals == 0 {
		t.Error("no exit sites")
	}
	for op := range classes {
		if op != sass.OpEXIT {
			t.Errorf("KernelExit instrumented %s", op)
		}
	}
}

func TestWhereBBHeaders(t *testing.T) {
	prog := buildMixed(t)
	cfg, err := sass.BuildCFG(prog.Kernels[0])
	if err != nil {
		t.Fatal(err)
	}
	jcals, _ := countSites(t, sassi.Options{Where: sassi.BBHeaders, BeforeHandler: "h"})
	if jcals != cfg.NumBlocks() {
		t.Errorf("BBHeaders sites = %d, want %d blocks", jcals, cfg.NumBlocks())
	}
}

func TestWhereAfterRegWritesExcludesControl(t *testing.T) {
	jcals, _ := countSites(t, sassi.Options{Where: sassi.AfterRegWrites, AfterHandler: "h"})
	if jcals == 0 {
		t.Fatal("no after-write sites")
	}
	// Verify no JCAL directly follows a control transfer's site: check
	// original control instrs have no injected code after them.
	prog := buildMixed(t)
	if err := sassi.Instrument(prog, sassi.Options{Where: sassi.AfterAll, AfterHandler: "h"}); err != nil {
		t.Fatal(err)
	}
	k := prog.Kernels[0]
	for i := 0; i < len(k.Instrs)-1; i++ {
		if !k.Instrs[i].Injected && k.Instrs[i].Op.IsControlXfer() {
			if k.Instrs[i+1].Injected && k.Instrs[i+1].Op == sass.OpIADD {
				// Frame allocation right after a branch would mean an
				// illegal after-site on a control transfer.
				t.Errorf("after-injection on control transfer %s", k.Instrs[i].Op)
			}
		}
	}
}

func TestSelectFilter(t *testing.T) {
	calls := 0
	jcals, _ := countSites(t, sassi.Options{
		Where:         sassi.BeforeMem,
		BeforeHandler: "h",
		Select: func(k *sass.Kernel, idx int, in *sass.Instruction) bool {
			calls++
			return false
		},
	})
	if jcals != 0 {
		t.Errorf("Select=false still produced %d sites", jcals)
	}
	if calls == 0 {
		t.Error("Select never consulted")
	}
}

func TestKernelsFilter(t *testing.T) {
	prog := buildMixed(t)
	if err := sassi.Instrument(prog, sassi.Options{
		Where: sassi.BeforeAll, BeforeHandler: "h", Kernels: []string{"other"},
	}); err != nil {
		t.Fatal(err)
	}
	for i := range prog.Kernels[0].Instrs {
		if prog.Kernels[0].Instrs[i].Injected {
			t.Fatal("kernel filter ignored")
		}
	}
}

func TestInstrumentRequiresHandler(t *testing.T) {
	prog := buildMixed(t)
	if err := sassi.Instrument(prog, sassi.Options{Where: sassi.BeforeAll}); err == nil {
		t.Error("missing handler symbol accepted")
	}
}

func TestBranchTargetsRemapped(t *testing.T) {
	prog := buildMixed(t)
	k := prog.Kernels[0]
	// Record the original instruction at every branch target.
	type tgt struct{ branchIdx, targetIdx int }
	var targets []tgt
	for i := range k.Instrs {
		for _, s := range k.Instrs[i].Srcs {
			if s.Kind == sass.OpdLabel {
				targets = append(targets, tgt{i, int(s.Imm)})
			}
		}
	}
	origAt := map[int]sass.Opcode{}
	for _, tg := range targets {
		if tg.targetIdx < len(k.Instrs) {
			origAt[tg.targetIdx] = k.Instrs[tg.targetIdx].Op
		}
	}
	if err := sassi.Instrument(prog, sassi.Options{Where: sassi.BeforeMem, BeforeHandler: "h"}); err != nil {
		t.Fatal(err)
	}
	// After instrumentation, every label target must reach (after skipping
	// injected code) an original instruction with the same opcode.
	for i := range k.Instrs {
		for _, s := range k.Instrs[i].Srcs {
			if s.Kind != sass.OpdLabel {
				continue
			}
			j := int(s.Imm)
			for j < len(k.Instrs) && k.Instrs[j].Injected {
				j++
			}
			if j >= len(k.Instrs) {
				continue
			}
			// We can't easily match targets 1:1 after remap, but every
			// target must land on injected code or an original opcode that
			// appeared as some original target.
			found := false
			for _, op := range origAt {
				if op == k.Instrs[j].Op {
					found = true
				}
			}
			if !found {
				t.Errorf("branch at %d targets unexpected opcode %s", i, k.Instrs[j].Op)
			}
		}
	}
}
