package sassi_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
)

// buildTwoKernels compiles a module with two kernels.
func buildTwoKernels(t *testing.T) *sass.Program {
	t.Helper()
	m := ptx.NewModule()
	for _, name := range []string{"alpha", "beta"} {
		b := ptx.NewKernel(name)
		out := b.ParamU64("out")
		i := b.GlobalTidX()
		b.StGlobalU32(b.Index(out, i, 2), 0, i)
		m.Add(b.MustDone())
	}
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestMultiKernelSiteIDsUnique: instrumentation sites across kernels get
// distinct ids and distinct instruction addresses (FnAddr separates them).
func TestMultiKernelSiteIDsUnique(t *testing.T) {
	prog := buildTwoKernels(t)
	if err := sassi.Instrument(prog, sassi.Options{
		Where: sassi.BeforeAll, BeforeHandler: "h",
	}); err != nil {
		t.Fatal(err)
	}
	seenIDs := map[int32]bool{}
	seenAddrs := map[int32]bool{}
	ctx := cuda.NewContext(sim.MiniGPU())
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(&sassi.Handler{Name: "h", Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if !c.IsWarpLeader() {
				return
			}
			seenIDs[args.BP.ID()] = true
			seenAddrs[args.BP.InsAddr()] = true
		}})
	rt.Attach(ctx.Device())
	buf := ctx.Malloc(4*32, "out")
	for _, k := range []string{"alpha", "beta"} {
		if _, err := ctx.LaunchKernel(prog, k, sim.LaunchParams{
			Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(buf)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Both kernels have the same instruction count; if ids or addresses
	// collided across kernels, the sets would be half-sized.
	na, _ := prog.Kernel("alpha")
	totalOrig := 0
	for i := range na.Instrs {
		if !na.Instrs[i].Injected {
			totalOrig++
		}
	}
	if len(seenIDs) != 2*totalOrig {
		t.Errorf("distinct site ids = %d, want %d", len(seenIDs), 2*totalOrig)
	}
	if len(seenAddrs) != 2*totalOrig {
		t.Errorf("distinct site addrs = %d, want %d", len(seenAddrs), 2*totalOrig)
	}
}

// TestTwoHandlersBeforeAndAfter: a program can carry distinct before and
// after handlers simultaneously, dispatched to the right functions.
func TestTwoHandlersBeforeAndAfter(t *testing.T) {
	prog := buildTwoKernels(t)
	if err := sassi.Instrument(prog, sassi.Options{
		Where:         sassi.BeforeMem | sassi.AfterRegWrites,
		BeforeHandler: "before_h",
		AfterHandler:  "after_h",
	}); err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(sim.MiniGPU())
	rt := sassi.NewRuntime(prog)
	var befores, afters int
	rt.MustRegister(&sassi.Handler{Name: "before_h", Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if c.IsWarpLeader() {
				befores++
				if !args.BP.IsMem() {
					t.Error("before handler saw a non-memory site")
				}
			}
		}})
	rt.MustRegister(&sassi.Handler{Name: "after_h", Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if c.IsWarpLeader() {
				afters++
			}
		}})
	rt.Attach(ctx.Device())
	buf := ctx.Malloc(4*32, "out")
	if _, err := ctx.LaunchKernel(prog, "alpha", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(buf)},
	}); err != nil {
		t.Fatal(err)
	}
	if befores == 0 || afters == 0 {
		t.Errorf("befores=%d afters=%d", befores, afters)
	}
	if afters <= befores {
		t.Errorf("after-write sites (%d) should outnumber memory sites (%d) in this kernel", afters, befores)
	}
}

// TestUnregisteredHandlerFaults: JCAL to a symbol nobody registered is a
// launch-time error (unlinked reference).
func TestUnregisteredHandlerFaults(t *testing.T) {
	prog := buildTwoKernels(t)
	if err := sassi.Instrument(prog, sassi.Options{
		Where: sassi.BeforeMem, BeforeHandler: "ghost",
	}); err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(sim.MiniGPU())
	rt := sassi.NewRuntime(prog)
	rt.Attach(ctx.Device()) // nothing registered
	buf := ctx.Malloc(4*32, "out")
	if _, err := ctx.LaunchKernel(prog, "alpha", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(buf)},
	}); err == nil {
		t.Fatal("unregistered handler dispatched successfully")
	}
	// Registering a handler for a symbol with no JCAL site is an error too.
	if err := rt.Register(&sassi.Handler{Name: "never_injected",
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {}}); err == nil {
		t.Error("registered a handler with no sites")
	}
}

// TestStackedInstrumentation: instrumenting an already-instrumented program
// composes — both passes' handlers run (tool layering).
func TestStackedInstrumentation(t *testing.T) {
	prog := buildTwoKernels(t)
	if err := sassi.Instrument(prog, sassi.Options{
		Where: sassi.BeforeMem, BeforeHandler: "first",
	}); err != nil {
		t.Fatal(err)
	}
	// The second pass sees the injected code too; restrict it to original
	// memory instructions via Select to keep site counts predictable.
	if err := sassi.Instrument(prog, sassi.Options{
		Where: sassi.BeforeMem, BeforeHandler: "second",
		Select: func(k *sass.Kernel, idx int, in *sass.Instruction) bool {
			return !in.Injected
		},
	}); err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(sim.MiniGPU())
	rt := sassi.NewRuntime(prog)
	var first, second int
	rt.MustRegister(&sassi.Handler{Name: "first", Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if c.IsWarpLeader() {
				first++
			}
		}})
	rt.MustRegister(&sassi.Handler{Name: "second", Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if c.IsWarpLeader() {
				second++
			}
		}})
	rt.Attach(ctx.Device())
	buf := ctx.Malloc(4*32, "out")
	if _, err := ctx.LaunchKernel(prog, "alpha", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(buf)},
	}); err != nil {
		t.Fatal(err)
	}
	if first == 0 || second == 0 {
		t.Errorf("stacked handlers: first=%d second=%d", first, second)
	}
	if second > first {
		t.Errorf("second pass (%d) should not exceed first (%d): it also instruments the first pass's STLs unless filtered", second, first)
	}
}
