package sassi_test

import (
	"math"
	"testing"

	"sassi/internal/device"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
)

// buildVecAdd returns a compiled out[i] = a[i]+b[i] program.
func buildVecAdd(t *testing.T) *sass.Program {
	t.Helper()
	b := ptx.NewKernel("vecadd")
	a := b.ParamU64("a")
	bb := b.ParamU64("b")
	out := b.ParamU64("out")
	n := b.ParamU32("n")
	i := b.GlobalTidX()
	b.If(b.Setp(sass.CmpLT, i, n), func() {
		av := b.LdGlobalF32(b.Index(a, i, 2), 0)
		bv := b.LdGlobalF32(b.Index(bb, i, 2), 0)
		b.StGlobalF32(b.Index(out, i, 2), 0, b.Add(av, bv))
	})
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func runVecAdd(t *testing.T, dev *sim.Device, prog *sass.Program, n int) *sim.KernelStats {
	t.Helper()
	aBuf := dev.Alloc(uint64(4*n), "a")
	bBuf := dev.Alloc(uint64(4*n), "b")
	oBuf := dev.Alloc(uint64(4*n), "out")
	for i := 0; i < n; i++ {
		dev.Global.Write32(aBuf+uint64(4*i), math.Float32bits(float32(i)))
		dev.Global.Write32(bBuf+uint64(4*i), math.Float32bits(float32(i)))
	}
	stats, err := dev.Launch(prog, "vecadd", sim.LaunchParams{
		Grid: sim.D1((n + 63) / 64), Block: sim.D1(64),
		Args: []uint64{aBuf, bBuf, oBuf, uint64(n)},
	})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	for i := 0; i < n; i++ {
		bits, _ := dev.Global.Read32(oBuf + uint64(4*i))
		if got, want := math.Float32frombits(bits), float32(2*i); got != want {
			t.Fatalf("out[%d] = %v, want %v (instrumentation corrupted results)", i, got, want)
		}
	}
	return stats
}

// TestOpcountHandler reproduces the paper's Figure 3: a handler before
// every instruction categorizing it into overlapping classes with
// device-memory atomics.
func TestOpcountHandler(t *testing.T) {
	prog := buildVecAdd(t)
	if err := sassi.Instrument(prog, sassi.Options{
		Where:         sassi.BeforeAll,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "sassi_before_handler",
	}); err != nil {
		t.Fatalf("instrument: %v", err)
	}

	dev := sim.NewDevice(sim.MiniGPU())
	counters := dev.Alloc(7*8, "dynamic_instr_counts")

	rt := sassi.NewRuntime(prog)
	rt.MustRegister(&sassi.Handler{
		Name: "sassi_before_handler",
		What: sassi.PassMemoryInfo,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			bp := args.BP
			if bp.IsMem() {
				c.AtomicAdd64(counters+0*8, 1)
				if args.MP != nil && args.MP.Width() > 4 {
					c.AtomicAdd64(counters+1*8, 1)
				}
			}
			if bp.IsControlXfer() {
				c.AtomicAdd64(counters+2*8, 1)
			}
			if bp.IsSync() {
				c.AtomicAdd64(counters+3*8, 1)
			}
			if bp.IsNumeric() {
				c.AtomicAdd64(counters+4*8, 1)
			}
			if bp.IsTexture() {
				c.AtomicAdd64(counters+5*8, 1)
			}
			c.AtomicAdd64(counters+6*8, 1)
		},
	})
	rt.Attach(dev)

	const n = 256
	stats := runVecAdd(t, dev, prog, n)

	read := func(i int) uint64 {
		v, err := dev.Global.Read64(counters + uint64(i)*8)
		if err != nil {
			t.Fatalf("read counter %d: %v", i, err)
		}
		return v
	}
	total := read(6)
	memc := read(0)
	numeric := read(4)
	if total == 0 || memc == 0 || numeric == 0 {
		t.Fatalf("counters not incremented: total=%d mem=%d numeric=%d", total, memc, numeric)
	}
	// Every thread executes 3 memory ops (2 loads + 1 store).
	if want := uint64(3 * n); memc != want {
		t.Errorf("mem count = %d, want %d", memc, want)
	}
	if read(5) != 0 {
		t.Errorf("texture count = %d, want 0", read(5))
	}
	if stats.HandlerCalls == 0 || stats.InjectedWarpInstrs == 0 {
		t.Errorf("expected handler calls and injected instructions: %+v", stats)
	}
	t.Logf("total=%d mem=%d wide=%d ctrl=%d sync=%d numeric=%d handlerCalls=%d",
		total, memc, read(1), read(2), read(3), numeric, stats.HandlerCalls)
}

// TestOriginalInstructionsPreserved verifies SASSI's key invariant: the
// original instruction sequence survives injection verbatim and in order.
func TestOriginalInstructionsPreserved(t *testing.T) {
	prog := buildVecAdd(t)
	k, _ := prog.Kernel("vecadd")
	var orig []string
	for i := range k.Instrs {
		orig = append(orig, k.Instrs[i].Op.String())
	}
	if err := sassi.Instrument(prog, sassi.Options{
		Where: sassi.BeforeAll, What: sassi.PassMemoryInfo,
		BeforeHandler: "h",
	}); err != nil {
		t.Fatalf("instrument: %v", err)
	}
	var kept []string
	for i := range k.Instrs {
		if !k.Instrs[i].Injected {
			kept = append(kept, k.Instrs[i].Op.String())
		}
	}
	if len(kept) != len(orig) {
		t.Fatalf("original count changed: %d -> %d", len(orig), len(kept))
	}
	for i := range orig {
		if kept[i] != orig[i] {
			t.Fatalf("original instruction %d changed: %s -> %s", i, orig[i], kept[i])
		}
	}
}

// TestUninstrumentedStillRuns checks instrumentation does not break an
// uninstrumented sibling device.
func TestUninstrumentedStillRuns(t *testing.T) {
	prog := buildVecAdd(t)
	dev := sim.NewDevice(sim.MiniGPU())
	stats := runVecAdd(t, dev, prog, 128)
	if stats.InjectedWarpInstrs != 0 {
		t.Errorf("uninstrumented run reports injected instructions: %d", stats.InjectedWarpInstrs)
	}
}
