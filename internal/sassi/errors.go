package sassi

import (
	"fmt"

	"sassi/internal/sass"
)

// Error is the structured error type instrumentation failures carry: it
// records which kernel (and, when known, which original instruction's site)
// the failure belongs to, so tooling can point at a position instead of
// re-parsing a message string.
type Error struct {
	// Kernel is the kernel being instrumented; empty for program-level
	// failures (bad options, cross-kernel verification).
	Kernel string
	// Site is the original-instruction index of the site being injected,
	// or -1 when the failure is not tied to one site.
	Site int
	// Err is the underlying cause.
	Err error
}

// Error renders the position prefix followed by the cause.
func (e *Error) Error() string {
	switch {
	case e.Kernel == "":
		return fmt.Sprintf("sassi: %v", e.Err)
	case e.Site < 0:
		return fmt.Sprintf("sassi: kernel %s: %v", e.Kernel, e.Err)
	default:
		return fmt.Sprintf("sassi: kernel %s: site @%04x: %v",
			e.Kernel, sass.InsOffset(e.Site), e.Err)
	}
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }
