package sassi

import (
	"errors"

	"sassi/internal/analysis"
	"sassi/internal/mem"
	"sassi/internal/obs"
	"sassi/internal/sass"
)

// Instrument rewrites every selected kernel of prog in place, injecting
// ABI-compliant handler calls at the sites selected by opts. The original
// instructions are preserved verbatim and in order; only new instructions
// (marked Injected) are inserted around them. Failures are reported as
// *Error carrying the kernel and site position. With opts.Verify enabled,
// the rewritten kernels are statically checked against their originals
// (analysis.VerifyInstrumentedProgram) before Instrument returns.
func Instrument(prog *sass.Program, opts Options) error {
	if opts.BeforeHandler == "" && opts.AfterHandler == "" {
		return &Error{Site: -1, Err: errors.New("no handler symbol given")}
	}
	verify := opts.Verify.Enabled()
	var origs, insts *sass.Program
	var origPos map[string][]int
	if verify {
		origs, insts = sass.NewProgram(), sass.NewProgram()
		origPos = map[string][]int{}
	}
	siteID := int32(0)
	for ki, k := range prog.Kernels {
		if !opts.wantsKernel(k.Name) {
			continue
		}
		var orig *sass.Kernel
		if verify {
			orig = k.Clone()
		}
		t0 := opts.Trace.Now()
		n, remap, err := instrumentKernel(prog, k, ki, &opts, siteID)
		if err != nil {
			var ie *Error
			if errors.As(err, &ie) {
				return err
			}
			return &Error{Kernel: k.Name, Site: -1, Err: err}
		}
		opts.Trace.Span(obs.PidHost, obs.TidHostCompile, "instrument:"+k.Name,
			t0, opts.Trace.Now()-t0, map[string]any{"sites": n})
		siteID += n
		if verify {
			origs.AddKernel(orig)
			insts.AddKernel(k)
			origPos[k.Name] = remap
		}
	}
	if verify {
		diags := analysis.VerifyInstrumentedProgram(origs, insts, Spec(), origPos)
		diags = append(diags, analysis.Verify(prog)...)
		if analysis.HasErrors(diags) {
			return &Error{Site: -1, Err: &analysis.VerifyError{Diags: diags}}
		}
	}
	return nil
}

// FnAddr returns the pseudo base address assigned to kernel index ki; the
// handler-visible instruction address is FnAddr + insOffset.
func FnAddr(ki int) int32 { return int32(ki+1) << 20 }

type injector struct {
	prog *sass.Program
	k    *sass.Kernel
	opts *Options

	out      []sass.Instruction
	maxFrame int64

	// Instrumentation-time accounting, published to opts.Metrics at the end
	// of instrumentKernel. saveRestore is the ABI spill/fill share of
	// injected — the quantity behind the paper's §9.1 observation that most
	// instrumentation overhead is state save/restore, not handler work.
	injected    uint64
	saveRestore uint64
	injBySym    map[string]uint64
}

func (ij *injector) emit(in sass.Instruction) {
	in.Injected = true
	ij.out = append(ij.out, in)
}

func (ij *injector) emitOp(op sass.Opcode, mods sass.Mods, dsts, srcs []sass.Operand) {
	ij.emit(sass.Instruction{Guard: sass.Always, Op: op, Mods: mods, Dsts: dsts, Srcs: srcs})
}

// movImm materializes a 32-bit immediate into reg.
func (ij *injector) movImm(reg uint8, v int32) {
	ij.emitOp(sass.OpMOV32, sass.Mods{}, []sass.Operand{sass.R(reg)},
		[]sass.Operand{sass.Imm(int64(v))})
}

// stl stores reg to [R1+off].
func (ij *injector) stl(off int64, reg uint8) {
	ij.emitOp(sass.OpSTL, sass.Mods{}, nil,
		[]sass.Operand{sass.Mem(sass.SP, off), sass.R(reg)})
}

// stl64 stores the (reg,reg+1) pair to [R1+off].
func (ij *injector) stl64(off int64, reg uint8) {
	ij.emitOp(sass.OpSTL, sass.Mods{Width: sass.W64}, nil,
		[]sass.Operand{sass.Mem(sass.SP, off), sass.R(reg)})
}

// ldl loads [R1+off] into reg.
func (ij *injector) ldl(off int64, reg uint8) {
	ij.emitOp(sass.OpLDL, sass.Mods{}, []sass.Operand{sass.R(reg)},
		[]sass.Operand{sass.Mem(sass.SP, off)})
}

// field materializes an immediate into a BeforeParams field via R4.
func (ij *injector) field(off int64, v int32) {
	ij.movImm(4, v)
	ij.stl(off, 4)
}

// instrumentKernel rewrites one kernel. It returns the number of sites it
// injected and the output position of each input instruction (the remap
// table), which the verifier uses to tell this pass's additions apart from
// the input — the Injected flags alone cannot, once passes stack.
func instrumentKernel(prog *sass.Program, k *sass.Kernel, ki int, opts *Options, siteBase int32) (int32, []int, error) {
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		return 0, nil, err
	}
	li := sass.ComputeLiveness(cfg)

	blockStart := make([]bool, len(k.Instrs))
	for _, b := range cfg.Blocks {
		if b.Start < len(blockStart) {
			blockStart[b.Start] = true
		}
	}

	ij := &injector{prog: prog, k: k, opts: opts}
	remap := make([]int, len(k.Instrs)+1)
	// origAt[i] = output position of input instruction i itself; remap[i]
	// points before i's injected before-site code (where labels land).
	origAt := make([]int, len(k.Instrs))
	sites := int32(0)

	selected := func(i int) bool {
		if opts.Select != nil && !opts.Select(k, i, &k.Instrs[i]) {
			return false
		}
		return true
	}

	for i := range k.Instrs {
		remap[i] = len(ij.out)
		in := &k.Instrs[i]

		before := opts.beforeSite(in) ||
			(opts.Where&KernelEntry != 0 && i == 0) ||
			(opts.Where&BBHeaders != 0 && blockStart[i])
		if before && opts.BeforeHandler != "" && selected(i) {
			ij.injectCall(i, in, li.LiveIn[i], siteBase+sites, ki, opts.BeforeHandler, false)
			sites++
		}

		origAt[i] = len(ij.out)
		ij.out = append(ij.out, *in) // the original instruction, untouched

		if opts.afterSite(in) && opts.AfterHandler != "" && selected(i) {
			var liveAfter sass.RegSet
			if i+1 < len(k.Instrs) {
				liveAfter = li.LiveIn[i+1]
			}
			ij.injectCall(i, in, liveAfter, siteBase+sites, ki, opts.AfterHandler, true)
			sites++
		}
	}
	remap[len(k.Instrs)] = len(ij.out)

	// Rewrite label operands and the label map through the remap table.
	for idx := range ij.out {
		for s := range ij.out[idx].Srcs {
			o := &ij.out[idx].Srcs[s]
			if o.Kind == sass.OpdLabel && o.Imm >= 0 && int(o.Imm) < len(remap) {
				o.Imm = int64(remap[o.Imm])
			}
		}
	}
	for name, idx := range k.Labels {
		k.Labels[name] = remap[idx]
	}
	k.Instrs = ij.out
	// The injected stream is no longer the scheduler's permutation of
	// anything: drop the provenance so the schedule check has nothing
	// stale to certify.
	k.SchedOrig = nil
	k.LocalBytes += int(ij.maxFrame)
	if k.NumRegs < HandlerMaxRegs {
		k.NumRegs = HandlerMaxRegs
	}
	if reg := opts.Metrics; reg != nil {
		reg.Counter(obs.MSassiKernels).Inc()
		reg.Counter(obs.MSassiSites).Add(uint64(sites))
		reg.Counter(obs.MSassiInjectedInstrs).Add(ij.injected)
		reg.Counter(obs.MSassiSaveRestoreInstrs).Add(ij.saveRestore)
		for sym, n := range ij.injBySym {
			reg.Counter(obs.MSassiInjectedPrefix + sym).Add(n)
		}
	}
	return sites, origAt, nil
}

// injectCall emits the full ABI-compliant call sequence for one site.
// live is the register set that must survive the call; in/origIdx identify
// the instrumented instruction (by its position in the ORIGINAL kernel, so
// handler-visible addresses are stable across instrumentation configs).
func (ij *injector) injectCall(origIdx int, in *sass.Instruction, live sass.RegSet, siteID int32, ki int, handlerSym string, after bool) {
	extra := ij.extraSize(in)
	frame := frameSize(extra)
	if frame > ij.maxFrame {
		ij.maxFrame = frame
	}
	callStart := len(ij.out)

	// (1) Allocate the stack frame.
	ij.emitOp(sass.OpIADD, sass.Mods{}, []sass.Operand{sass.R(sass.SP)},
		[]sass.Operand{sass.R(sass.SP), sass.Imm(-frame)})

	// (2) Spill the live registers the handler may clobber. Only registers
	// below HandlerMaxRegs need saving: the handler is compiled with
	// -maxrregcount=16 (§3.2 of the paper).
	var spillSet sass.RegSet
	for _, r := range live.Regs() {
		if r == sass.SP {
			continue
		}
		if int(r) < HandlerMaxRegs {
			spillSet.Add(r)
		}
	}
	// The memory-address materialization below replicates the original
	// address arithmetic, but it runs after P2R has overwritten R3 with the
	// predicate snapshot. If the address depends on R3's original value,
	// spill it even when dead so the materialization can reload it.
	if extra > 0 && ij.opts.What&PassMemoryInfo != 0 && in.Op.IsMem() {
		for _, r := range memAddrRegs(in) {
			if r == scratchPred {
				spillSet.Add(r)
			}
		}
	}
	spillRegs := spillSet.Regs()
	spillOff := make(map[uint8]int64, len(spillRegs))
	for slot, r := range spillRegs {
		spillOff[r] = bpGPRSpill + int64(slot)*4
		ij.stl(spillOff[r], r)
	}
	// Predicates and condition code ride through R3 (already spilled if
	// it was live).
	ij.emitOp(sass.OpP2R, sass.Mods{}, []sass.Operand{sass.R(scratchPred)},
		[]sass.Operand{sass.R(sass.RZ), sass.Imm(0xff)})
	ij.stl(bpPRSpill, scratchPred)
	ij.emitOp(sass.OpP2R, sass.Mods{X: true}, []sass.Operand{sass.R(scratchPred)},
		[]sass.Operand{sass.R(sass.RZ), sass.Imm(0xf)})
	ij.stl(bpCCSpill, scratchPred)

	// (3) Data that depends on original register/predicate state must be
	// captured before scratch registers are reused: the extra object's
	// address computation and the will-execute flag.
	if extra > 0 {
		ij.materializeExtra(origIdx, in, int64(bpSize), spillOff)
	}
	ij.willExecute(in)

	// (4) Static BeforeParams fields.
	ij.field(bpID, siteID)
	ij.field(bpFnAddr, FnAddr(ki))
	ij.field(bpInsOffset, sass.InsOffset(origIdx))
	ij.field(bpInsEncoding, int32(sass.EncodeSummary(in)))
	ij.field(bpSpillCount, int32(len(spillRegs)))
	var packed [4]int32
	for i := range packed {
		packed[i] = -1 // 0xffffffff: empty slots
	}
	for slot, r := range spillRegs {
		word := slot / 4
		shift := uint(slot%4) * 8
		packed[word] &^= int32(0xff) << shift
		packed[word] |= int32(r) << shift
	}
	for w, v := range packed {
		ij.field(bpSpillRegs+int64(w)*4, v)
	}

	// (5) Argument pointers: generic addresses of the stack objects.
	ij.emitOp(sass.OpLOP, sass.Mods{Logic: sass.LogicOR},
		[]sass.Operand{sass.R(ABIArg0)},
		[]sass.Operand{sass.R(sass.SP), sass.CMem(0, sass.CBStackBase)})
	ij.movImm(ABIArg0+1, 0)
	if extra > 0 {
		ij.emitOp(sass.OpLOP, sass.Mods{Logic: sass.LogicOR},
			[]sass.Operand{sass.R(ABIArg1)},
			[]sass.Operand{sass.R(sass.SP), sass.CMem(0, sass.CBStackBase)})
		ij.emitOp(sass.OpIADD, sass.Mods{}, []sass.Operand{sass.R(ABIArg1)},
			[]sass.Operand{sass.R(ABIArg1), sass.Imm(int64(bpSize))})
	} else {
		ij.movImm(ABIArg1, 0)
	}
	ij.movImm(ABIArg1+1, 0)

	// (6) The call.
	ij.prog.InternHandler(handlerSym)
	ij.emitOp(sass.OpJCAL, sass.Mods{}, nil, []sass.Operand{sass.Sym(handlerSym)})

	// (7) Restore: predicates and CC first (through R3), then GPRs —
	// restoring R3's own value last — and release the frame.
	ij.ldl(bpPRSpill, scratchPred)
	ij.emitOp(sass.OpR2P, sass.Mods{}, nil,
		[]sass.Operand{sass.R(scratchPred), sass.Imm(0x7f)})
	ij.ldl(bpCCSpill, scratchPred)
	ij.emitOp(sass.OpR2P, sass.Mods{X: true}, nil,
		[]sass.Operand{sass.R(scratchPred), sass.Imm(0xf)})
	for slot, r := range spillRegs {
		ij.ldl(bpGPRSpill+int64(slot)*4, r)
	}
	ij.emitOp(sass.OpIADD, sass.Mods{}, []sass.Operand{sass.R(sass.SP)},
		[]sass.Operand{sass.R(sass.SP), sass.Imm(frame)})

	// Account the site: everything emitted since callStart is injected; the
	// save/restore share is the two frame adjusts, the GPR spill/fill pairs,
	// and the four P2R/R2P snapshots with their STL/LDL companions.
	ij.injected += uint64(len(ij.out) - callStart)
	ij.saveRestore += 10 + 2*uint64(len(spillRegs))
	if ij.injBySym == nil {
		ij.injBySym = make(map[string]uint64)
	}
	ij.injBySym[handlerSym] += uint64(len(ij.out) - callStart)
}

// extraSize returns the byte size of the site's extra parameter object.
func (ij *injector) extraSize(in *sass.Instruction) int {
	switch {
	case ij.opts.What&PassMemoryInfo != 0 && in.Op.IsMem():
		return mpSize
	case ij.opts.What&PassCondBranchInfo != 0 && in.IsCondBranch():
		return cbSize
	case ij.opts.What&PassRegisterInfo != 0:
		return rpSize
	}
	return 0
}

// willExecute stores the instrWillExecute flag, evaluating the original
// instruction's guard exactly as Figure 2 does with a pair of predicated
// IADDs.
func (ij *injector) willExecute(in *sass.Instruction) {
	if in.Guard.IsAlways() {
		ij.field(bpWillExec, 1)
		return
	}
	g := in.Guard
	ij.emit(sass.Instruction{Guard: g, Op: sass.OpIADD,
		Dsts: []sass.Operand{sass.R(4)},
		Srcs: []sass.Operand{sass.R(sass.RZ), sass.Imm(1)}})
	ij.emit(sass.Instruction{Guard: sass.PredGuard{Reg: g.Reg, Neg: !g.Neg}, Op: sass.OpIADD,
		Dsts: []sass.Operand{sass.R(4)},
		Srcs: []sass.Operand{sass.R(sass.RZ), sass.Imm(0)}})
	ij.stl(bpWillExec, 4)
}

// memAddrRegs returns the GPRs whose original values the memory-params
// materialization reads: the address base register and, for an extended
// (64-bit) reference, the high half of the base pair.
func memAddrRegs(in *sass.Instruction) []uint8 {
	for _, s := range in.Srcs {
		if s.Kind != sass.OpdMem || s.Reg == sass.RZ {
			continue
		}
		if in.Mods.E {
			return []uint8{s.Reg, s.Reg + 1}
		}
		return []uint8{s.Reg}
	}
	return nil
}

// materializeExtra builds the extra parameter object at [R1+base].
// spillOff maps spilled registers to their frame slots, for reloading
// original values that injected code has since overwritten.
func (ij *injector) materializeExtra(origIdx int, in *sass.Instruction, base int64, spillOff map[uint8]int64) {
	switch {
	case ij.opts.What&PassMemoryInfo != 0 && in.Op.IsMem():
		ij.materializeMemParams(in, base, spillOff)
	case ij.opts.What&PassCondBranchInfo != 0 && in.IsCondBranch():
		ij.materializeCondBranchParams(origIdx, in, base)
	case ij.opts.What&PassRegisterInfo != 0:
		ij.materializeRegParams(in, base)
	}
}

// materializeMemParams computes the effective address into (R6,R7) by
// replicating the original address arithmetic (Figure 2 step 5) and fills
// in the static width/properties/domain fields.
func (ij *injector) materializeMemParams(in *sass.Instruction, base int64, spillOff map[uint8]int64) {
	var ref sass.Operand
	hasRef := false
	for _, s := range in.Srcs {
		if s.Kind == sass.OpdMem {
			ref = s
			hasRef = true
			break
		}
	}
	// By this point R3 holds the predicate snapshot, not its original value.
	// If the address base (or the high half of an extended pair) is R3,
	// reload the original from its spill slot into the scratch register that
	// will receive the result anyway.
	origReg := func(r, scratch uint8) uint8 {
		if r == scratchPred {
			ij.ldl(spillOff[r], scratch)
			return scratch
		}
		return r
	}
	domain := int32(0)
	switch in.Op {
	case sass.OpLDL, sass.OpSTL:
		domain = int32(mem.SpaceLocal)
	case sass.OpLDS, sass.OpSTS, sass.OpATOMS:
		domain = int32(mem.SpaceShared)
	case sass.OpLDG, sass.OpSTG, sass.OpATOM, sass.OpRED, sass.OpTLD:
		domain = int32(mem.SpaceGlobal)
	case sass.OpLDC:
		domain = int32(mem.SpaceConst)
	}
	switch {
	case !hasRef:
		ij.movImm(6, 0)
		ij.movImm(7, 0)
	case in.Mods.E:
		// 64-bit base pair + displacement.
		lo := origReg(ref.Reg, 6)
		ij.emitOp(sass.OpIADD, sass.Mods{SetCC: true}, []sass.Operand{sass.R(6)},
			[]sass.Operand{sass.R(lo), sass.Imm(ref.Imm)})
		hi := sass.Operand(sass.R(sass.RZ))
		if ref.Reg != sass.RZ {
			hi = sass.R(origReg(ref.Reg+1, 7))
		}
		ij.emitOp(sass.OpIADD, sass.Mods{X: true}, []sass.Operand{sass.R(7)},
			[]sass.Operand{hi, sass.R(sass.RZ)})
	case in.Op == sass.OpLDL || in.Op == sass.OpSTL:
		// Local offset -> generic address through the local window base.
		ij.emitOp(sass.OpIADD, sass.Mods{}, []sass.Operand{sass.R(6)},
			[]sass.Operand{sass.R(origReg(ref.Reg, 6)), sass.Imm(ref.Imm)})
		ij.emitOp(sass.OpLOP, sass.Mods{Logic: sass.LogicOR}, []sass.Operand{sass.R(6)},
			[]sass.Operand{sass.R(6), sass.CMem(0, sass.CBStackBase)})
		ij.movImm(7, 0)
	case in.Op == sass.OpLDS || in.Op == sass.OpSTS || in.Op == sass.OpATOMS:
		ij.emitOp(sass.OpIADD, sass.Mods{}, []sass.Operand{sass.R(6)},
			[]sass.Operand{sass.R(origReg(ref.Reg, 6)), sass.Imm(ref.Imm)})
		ij.emitOp(sass.OpLOP, sass.Mods{Logic: sass.LogicOR}, []sass.Operand{sass.R(6)},
			[]sass.Operand{sass.R(6), sass.CMem(0, sass.CBSharedBase)})
		ij.movImm(7, 0)
	default:
		// 32-bit base (constant bank and exotic cases): no window.
		ij.emitOp(sass.OpIADD, sass.Mods{}, []sass.Operand{sass.R(6)},
			[]sass.Operand{sass.R(origReg(ref.Reg, 6)), sass.Imm(ref.Imm)})
		ij.movImm(7, 0)
	}
	ij.stl64(base+mpAddress, 6)
	ij.field(base+mpProperties, int32(sass.EncodeSummary(in)))
	ij.field(base+mpWidth, int32(in.Mods.Width.Bytes()))
	ij.field(base+mpDomain, domain)
}

// materializeCondBranchParams records the thread's branch direction and the
// static target/fall-through offsets.
func (ij *injector) materializeCondBranchParams(origIdx int, in *sass.Instruction, base int64) {
	g := in.Guard
	ij.emit(sass.Instruction{Guard: g, Op: sass.OpIADD,
		Dsts: []sass.Operand{sass.R(6)},
		Srcs: []sass.Operand{sass.R(sass.RZ), sass.Imm(1)}})
	ij.emit(sass.Instruction{Guard: sass.PredGuard{Reg: g.Reg, Neg: !g.Neg}, Op: sass.OpIADD,
		Dsts: []sass.Operand{sass.R(6)},
		Srcs: []sass.Operand{sass.R(sass.RZ), sass.Imm(0)}})
	ij.stl(base+cbDirection, 6)
	takenOff := int32(-1)
	if t, ok := in.BranchTarget(); ok && t.Kind == sass.OpdLabel {
		takenOff = sass.InsOffset(int(t.Imm))
	}
	ij.field(base+cbTakenOffset, takenOff)
	ij.field(base+cbFallOffset, sass.InsOffset(origIdx+1))
}

// materializeRegParams records the instruction's destination and source
// GPR numbers; values are resolved at handler time through the spill map.
func (ij *injector) materializeRegParams(in *sass.Instruction, base int64) {
	dsts := in.GPRDsts()
	if len(dsts) > 4 {
		dsts = dsts[:4]
	}
	ij.field(base+rpNumDsts, int32(len(dsts)))
	for i, r := range dsts {
		ij.field(base+rpDstRegs+int64(i)*4, int32(r))
	}
	srcs := in.GPRSrcs()
	if len(srcs) > 8 {
		srcs = srcs[:8]
	}
	ij.field(base+rpNumSrcs, int32(len(srcs)))
	for i, r := range srcs {
		ij.field(base+rpSrcRegs+int64(i)*4, int32(r))
	}
}
