package sassi

import (
	"fmt"

	"sassi/internal/analysis"
	"sassi/internal/obs"
	"sassi/internal/sass"
)

// Where selects instrumentation sites, mirroring the paper's ptxas
// command-line menu (§3.1): instrumentation can go before any and all
// instructions, before instruction classes, after instructions other than
// control transfers, at basic block headers, and at kernel entry/exit.
type Where uint32

// Site-selection flags; combine with bitwise OR.
const (
	// BeforeAll injects before every original instruction.
	BeforeAll Where = 1 << iota
	// BeforeMem injects before memory operations.
	BeforeMem
	// BeforeCondBranches injects before predicated BRA instructions.
	BeforeCondBranches
	// BeforeControlXfer injects before any control transfer.
	BeforeControlXfer
	// BeforeCalls injects before CAL/JCAL.
	BeforeCalls
	// BeforeRegWrites injects before instructions that write a GPR,
	// predicate, or the condition code.
	BeforeRegWrites
	// BeforeRegReads injects before instructions that read a GPR.
	BeforeRegReads
	// AfterAll injects after every instruction except control transfers
	// (the paper: "after all instructions other than branches and jumps").
	AfterAll
	// AfterRegWrites injects after instructions that write a GPR,
	// predicate, or condition code (and are not control transfers).
	AfterRegWrites
	// AfterMem injects after memory operations.
	AfterMem
	// KernelEntry injects at the kernel's first instruction.
	KernelEntry
	// KernelExit injects before every EXIT.
	KernelExit
	// BBHeaders injects at every basic block head.
	BBHeaders
	// BeforeSSY injects before SSY instructions. SSY is not a control
	// transfer (it only pushes a reconvergence token), so BeforeControlXfer
	// does not cover it; control-state auditors (the CFI checker) need a
	// site there to model the divergence stack.
	BeforeSSY
)

// What selects the extra parameter object passed to the handler alongside
// SASSIBeforeParams/SASSIAfterParams.
type What uint32

// Extra-info flags. At most one extra object is passed per site (matching
// the two-argument handler signatures of the paper's case studies).
const (
	// PassNone passes only the before/after params object.
	PassNone What = 0
	// PassMemoryInfo passes a SASSIMemoryParams with the effective
	// address, width, and access properties.
	PassMemoryInfo What = 1 << iota
	// PassCondBranchInfo passes a SASSICondBranchParams with the branch
	// direction and targets.
	PassCondBranchInfo
	// PassRegisterInfo passes a SASSIRegisterParams with destination and
	// source register numbers.
	PassRegisterInfo
)

// Options configures one instrumentation run over a program.
type Options struct {
	// Where selects the sites.
	Where Where
	// What selects the extra parameter object.
	What What

	// BeforeHandler is the symbol JCAL'd at before-sites
	// (conventionally "sassi_before_handler").
	BeforeHandler string
	// AfterHandler is the symbol JCAL'd at after-sites.
	AfterHandler string

	// Select, when non-nil, further filters sites chosen by Where.
	Select func(k *sass.Kernel, idx int, in *sass.Instruction) bool

	// Kernels, when non-empty, restricts instrumentation to the named
	// kernels.
	Kernels []string

	// Verify controls the static safety check run after instrumentation
	// (internal/analysis): original code preserved, live state saved and
	// restored around handler calls, site IDs dense. The zero value runs
	// it under `go test` only; see analysis.VerifyMode.
	Verify analysis.VerifyMode

	// Metrics, when non-nil, receives instrumentation-time counters: sites
	// injected, injected instructions (split out per handler symbol), and
	// the ABI save/restore share — the quantity behind the paper's §9.1
	// "~80% of overhead is spill/fill" claim. Excluded from CacheKey: it
	// observes the work, it doesn't shape the output.
	Metrics *obs.Registry

	// Trace, when non-nil, records an instrument-phase span per kernel on
	// the host lane. Also excluded from CacheKey.
	Trace *obs.Tracer
}

// Spec returns the instrumentation ABI as an analysis.ABISpec, the contract
// VerifyInstrumentedProgram checks injected code against.
func Spec() analysis.ABISpec {
	return analysis.ABISpec{
		StackReg:       sass.SP,
		HandlerMaxRegs: HandlerMaxRegs,
		ArgRegs:        []uint8{ABIArg0, ABIArg0 + 1, ABIArg1, ABIArg1 + 1},
		SiteIDOffset:   bpID,
		MinFrame:       bpSize,
		FrameAlign:     16,
	}
}

// CacheKey returns a string identifying the instrumentation these options
// apply — suitable as part of a CompileCache key — and whether the options
// are cacheable at all. Options carrying a Select closure are not: a
// func's site filtering can't be summarized into a key string.
func (o *Options) CacheKey() (string, bool) {
	if o.Select != nil {
		return "", false
	}
	return fmt.Sprintf("where=%#x what=%#x before=%q after=%q kernels=%q verify=%t",
		o.Where, o.What, o.BeforeHandler, o.AfterHandler, o.Kernels, o.Verify.Enabled()), true
}

func (o *Options) wantsKernel(name string) bool {
	if len(o.Kernels) == 0 {
		return true
	}
	for _, k := range o.Kernels {
		if k == name {
			return true
		}
	}
	return false
}

// beforeSite reports whether instruction in should get before-injection.
func (o *Options) beforeSite(in *sass.Instruction) bool {
	w := o.Where
	switch {
	case w&BeforeAll != 0:
		return true
	case w&BeforeMem != 0 && in.Op.IsMem():
		return true
	case w&BeforeCondBranches != 0 && in.IsCondBranch():
		return true
	case w&BeforeControlXfer != 0 && in.Op.IsControlXfer():
		return true
	case w&BeforeCalls != 0 && in.Op.IsCall():
		return true
	case w&BeforeRegWrites != 0 && (in.WritesGPR() || in.WritesPred() || in.WritesCC()):
		return true
	case w&BeforeRegReads != 0 && len(in.GPRSrcs()) > 0:
		return true
	case w&KernelExit != 0 && in.Op == sass.OpEXIT:
		return true
	case w&BeforeSSY != 0 && in.Op == sass.OpSSY:
		return true
	}
	return false
}

// afterSite reports whether instruction in should get after-injection.
// Control transfers never qualify.
func (o *Options) afterSite(in *sass.Instruction) bool {
	if in.Op.IsControlXfer() || in.Op == sass.OpBAR {
		return false
	}
	w := o.Where
	switch {
	case w&AfterAll != 0:
		return true
	case w&AfterRegWrites != 0 && (in.WritesGPR() || in.WritesPred() || in.WritesCC()):
		return true
	case w&AfterMem != 0 && in.Op.IsMem():
		return true
	}
	return false
}
