package sassi

import (
	"fmt"

	"sassi/internal/device"
	"sassi/internal/obs"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

// HandlerArgs carries the decoded ABI arguments into a handler. BP is
// always present; exactly one of MP/CBP/RP is set when the site was
// instrumented with a matching What flag, mirroring the two-pointer handler
// signatures of the paper's case studies.
type HandlerArgs struct {
	BP  BeforeParams
	MP  *MemoryParams
	CBP *CondBranchParams
	RP  *RegisterParams
}

// HandlerFunc is a user instrumentation handler: per-thread Go code, the
// analog of the paper's CUDA handler functions.
type HandlerFunc func(ctx *device.Ctx, args HandlerArgs)

// Handler binds a symbol name to a handler function.
type Handler struct {
	// Name is the JCAL symbol (e.g. "sassi_before_handler").
	Name string
	// Fn is the per-thread handler body.
	Fn HandlerFunc
	// NewFn, when set, takes precedence over Fn: it is called once per
	// warp dispatch and the returned closure handles that dispatch's lanes.
	// Handlers that accumulate warp-scoped scratch across lanes must use it
	// — SMs execute concurrently, so state captured outside the dispatch
	// would be shared between warps running on different SMs.
	NewFn func() HandlerFunc
	// What tells the runtime how to interpret the second ABI argument;
	// it must match the What used at instrumentation time.
	What What
	// Sequential runs lanes one after another instead of as concurrent
	// goroutines. Only legal for handlers that use no warp collectives;
	// the ablation benches measure the difference.
	Sequential bool
}

// Runtime links handlers to an instrumented program and dispatches JCALs
// from the simulator — the role the display driver + nvlink play for real
// SASSI.
type Runtime struct {
	prog *sass.Program
	byID map[int]*Handler

	// Metrics, when non-nil, counts dispatches per handler symbol
	// (handlers.dispatch.<symbol>) and the warp occupancy of each call
	// (handlers.dispatch_active_lanes). Set it before Register: counters
	// resolve once there, so Dispatch does no registry lookups.
	Metrics *obs.Registry

	dispatches  map[int]*obs.Counter
	activeLanes *obs.Histogram
}

// NewRuntime creates a runtime for one instrumented program.
func NewRuntime(prog *sass.Program) *Runtime {
	return &Runtime{prog: prog, byID: make(map[int]*Handler)}
}

// Register links a handler to its symbol. Unresolved handler symbols fault
// at JCAL time, like an unlinked reference.
func (rt *Runtime) Register(h *Handler) error {
	if h.Name == "" || (h.Fn == nil && h.NewFn == nil) {
		return fmt.Errorf("sassi: handler needs a name and a function")
	}
	id, ok := rt.prog.Handlers[h.Name]
	if !ok {
		return fmt.Errorf("sassi: program has no JCAL site for symbol %q (was it instrumented?)", h.Name)
	}
	rt.byID[id] = h
	if rt.Metrics != nil {
		if rt.dispatches == nil {
			rt.dispatches = make(map[int]*obs.Counter)
			rt.activeLanes = rt.Metrics.Histogram(obs.MHandlerActiveLanes)
		}
		rt.dispatches[id] = rt.Metrics.Counter(obs.MHandlerDispatchPrefix + h.Name)
	}
	return nil
}

// MustRegister is Register, panicking on error.
func (rt *Runtime) MustRegister(h *Handler) {
	if err := rt.Register(h); err != nil {
		panic(err)
	}
}

// Dispatch implements sim.Dispatcher: it runs the handler for every active
// lane of the warp, decoding the ABI argument registers per lane.
func (rt *Runtime) Dispatch(dev *sim.Device, w *sim.Warp, handlerID int) error {
	h, ok := rt.byID[handlerID]
	if !ok {
		return fmt.Errorf("sassi: JCAL to unregistered handler id %d", handlerID)
	}
	if c := rt.dispatches[handlerID]; c != nil {
		c.Inc()
		rt.activeLanes.Observe(uint64(w.NumActive()))
	}
	fn := h.Fn
	if h.NewFn != nil {
		fn = h.NewFn()
	}
	return device.RunWarp(dev, w, w.ActiveMask(), !h.Sequential, func(c *device.Ctx) {
		bpAddr := uint64(c.ReadReg(ABIArg0)) | uint64(c.ReadReg(ABIArg0+1))<<32
		xpAddr := uint64(c.ReadReg(ABIArg1)) | uint64(c.ReadReg(ABIArg1+1))<<32
		args := HandlerArgs{BP: NewBeforeParams(c, bpAddr)}
		if xpAddr != 0 {
			switch {
			case h.What&PassMemoryInfo != 0:
				mp := NewMemoryParams(c, xpAddr)
				args.MP = &mp
			case h.What&PassCondBranchInfo != 0:
				cbp := NewCondBranchParams(c, xpAddr)
				args.CBP = &cbp
			case h.What&PassRegisterInfo != 0:
				rp := NewRegisterParams(c, xpAddr, args.BP)
				args.RP = &rp
			}
		}
		fn(c, args)
	})
}

// Attach installs the runtime as the device's dispatcher.
func (rt *Runtime) Attach(dev *sim.Device) { dev.Dispatcher = rt }
