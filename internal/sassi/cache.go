package sassi

import (
	"sync"

	"sassi/internal/obs"
	"sassi/internal/sass"
)

// CompileCache memoizes compiled — and, when the key says so, instrumented
// — programs so fan-out consumers (fault-campaign workers, experiment
// sweeps) share one compile instead of redoing it per run. A sass.Program
// is read-only at execution time, so a single cached instance can back any
// number of concurrent simulations.
//
// Rules for correct use:
//
//   - The key must capture everything that shaped the program: workload,
//     backend options (ptxas.Options.CacheKey), and the instrumentation
//     descriptor (Options.CacheKey) if any was applied.
//   - Instrument must run inside the build closure. Never instrument a
//     program returned from Get — it is shared, and Instrument rewrites
//     kernels in place.
//   - Options carrying a Select closure report themselves uncacheable
//     (a func's behavior can't be summarized into a key); bypass the
//     cache for those.
type CompileCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    uint64
	misses  uint64

	// Metrics, when non-nil, mirrors hits/misses into the registry under
	// sassi.compile_cache.*. Trace, when non-nil, records each build (the
	// misses — hits cost nothing worth a span) on the host compile lane.
	// Set both before the first Get; they are read without the mutex.
	Metrics *obs.Registry
	Trace   *obs.Tracer
}

type cacheEntry struct {
	once sync.Once
	prog *sass.Program
	err  error
}

// NewCompileCache returns an empty cache.
func NewCompileCache() *CompileCache {
	return &CompileCache{entries: make(map[string]*cacheEntry)}
}

// Get returns the program cached under key, building it on first use.
// Concurrent callers with the same key share one build (singleflight);
// everyone observes the same program or the same build error.
func (c *CompileCache) Get(key string, build func() (*sass.Program, error)) (*sass.Program, error) {
	c.mu.Lock()
	e := c.entries[key]
	miss := e == nil
	if miss {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	if miss {
		c.Metrics.Counter(obs.MSassiCacheMisses).Inc()
	} else {
		c.Metrics.Counter(obs.MSassiCacheHits).Inc()
	}
	e.once.Do(func() {
		c.Trace.HostSpan(obs.TidHostCompile, "compile:"+key, func() {
			e.prog, e.err = build()
		})
	})
	return e.prog, e.err
}

// Stats reports cache hits and misses so far.
func (c *CompileCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of distinct cached keys.
func (c *CompileCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
