// Package cupti is the analog of NVIDIA's CUDA Profiling Tools Interface:
// host-side code registers for callbacks at kernel launch and exit and uses
// them to initialize device-resident instrumentation counters before a
// kernel runs and to collect (and aggregate) them after it completes —
// the protocol of the paper's §3.3.
package cupti

import (
	"sassi/internal/cuda"
	"sassi/internal/sim"
)

// Site identifies a callback site.
type Site int

// Callback sites.
const (
	KernelLaunch Site = iota
	KernelExit
)

// CallbackData describes the kernel event being observed.
type CallbackData struct {
	Kernel    string
	LaunchIdx int
	// Stats and Err are only set at KernelExit.
	Stats *sim.KernelStats
	Err   error
}

// Callback is a subscriber function.
type Callback func(site Site, data *CallbackData)

// Subscriber routes context launch hooks to registered callbacks.
type Subscriber struct {
	ctx *cuda.Context
	cbs []Callback
}

// Subscribe attaches a new subscriber to a context.
func Subscribe(ctx *cuda.Context, cb Callback) *Subscriber {
	s := &Subscriber{ctx: ctx}
	s.cbs = append(s.cbs, cb)
	ctx.Subscribe(cuda.LaunchCallbacks{
		PreLaunch: func(kernel string, idx int) {
			d := &CallbackData{Kernel: kernel, LaunchIdx: idx}
			for _, f := range s.cbs {
				f(KernelLaunch, d)
			}
		},
		PostLaunch: func(kernel string, idx int, stats *sim.KernelStats, err error) {
			d := &CallbackData{Kernel: kernel, LaunchIdx: idx, Stats: stats, Err: err}
			for _, f := range s.cbs {
				f(KernelExit, d)
			}
		},
	})
	return s
}

// CounterBank manages a device-resident array of 64-bit instrumentation
// counters with the launch/exit init/collect protocol: zeroed on kernel
// launch, copied to the host and accumulated on kernel exit. This is the
// reusable pattern every case-study library in the paper builds on CUPTI.
type CounterBank struct {
	ctx   *cuda.Context
	ptr   cuda.DevPtr
	count int

	// Host holds the accumulated totals across kernel launches.
	Host []uint64
	// PerKernel, when enabled, separates totals by kernel name.
	PerKernel map[string][]uint64
}

// NewCounterBank allocates count device counters and subscribes to the
// context's kernel boundaries.
func NewCounterBank(ctx *cuda.Context, name string, count int) *CounterBank {
	b := &CounterBank{
		ctx: ctx, count: count,
		ptr:       ctx.Malloc(uint64(8*count), name),
		Host:      make([]uint64, count),
		PerKernel: make(map[string][]uint64),
	}
	zero := make([]byte, 8*count)
	_ = ctx.MemcpyHtoD(b.ptr, zero)
	Subscribe(ctx, func(site Site, d *CallbackData) {
		switch site {
		case KernelLaunch:
			_ = ctx.MemcpyHtoD(b.ptr, zero)
		case KernelExit:
			vals, err := ctx.ReadU64(b.ptr, count)
			if err != nil {
				return
			}
			agg := b.PerKernel[d.Kernel]
			if agg == nil {
				agg = make([]uint64, count)
				b.PerKernel[d.Kernel] = agg
			}
			for i, v := range vals {
				b.Host[i] += v
				agg[i] += v
			}
		}
	})
	return b
}

// Ptr returns the device address of counter i (for handler AtomicAdd64).
func (b *CounterBank) Ptr(i int) uint64 { return uint64(b.ptr) + uint64(8*i) }

// Base returns the device address of the counter array.
func (b *CounterBank) Base() uint64 { return uint64(b.ptr) }

// Len returns the number of counters.
func (b *CounterBank) Len() int { return b.count }
