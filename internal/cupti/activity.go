package cupti

import (
	"sync"

	"sassi/internal/cuda"
	"sassi/internal/sim"
)

// ActivityKind tags an ActivityRecord, mirroring CUPTI's
// CUpti_ActivityKind enumeration (KERNEL, MEMCPY, and — our analog of the
// instrumentation-specific kinds — handler aggregation).
type ActivityKind int

// Activity record kinds.
const (
	// ActivityKindKernel records one kernel launch with its merged
	// execution statistics.
	ActivityKindKernel ActivityKind = iota
	// ActivityKindMemcpy records one host<->device copy.
	ActivityKindMemcpy
	// ActivityKindHandler records the per-launch instrumentation
	// aggregate: handler calls and injected-instruction overhead.
	ActivityKindHandler
)

func (k ActivityKind) String() string {
	switch k {
	case ActivityKindKernel:
		return "kernel"
	case ActivityKindMemcpy:
		return "memcpy"
	case ActivityKindHandler:
		return "handler"
	}
	return "unknown"
}

// ActivityRecord is one buffered activity event. Field use varies by Kind:
//
//   - Kernel: Name is the kernel, LaunchIdx its launch ordinal, Start/End
//     its span on the device cycle timeline (launches stack end to end),
//     WarpInstrs/HandlerCalls the merged stats, CTAs the geometry.
//   - Memcpy: Name is "HtoD" or "DtoH", Bytes the copy size.
//   - Handler: Name is the kernel, LaunchIdx its ordinal, HandlerCalls
//     and InjectedWarpInstrs the per-launch instrumentation aggregate.
//
// Seq is a global record ordinal: launches are serialized by the context,
// so record order IS launch order, and Flush delivers it deterministically.
type ActivityRecord struct {
	Kind      ActivityKind
	Seq       uint64
	Name      string
	LaunchIdx int

	// Kernel timeline (device cycles).
	Start uint64
	End   uint64

	WarpInstrs         uint64
	HandlerCalls       uint64
	InjectedWarpInstrs uint64
	CTAs               int
	Bytes              uint64
	Failed             bool
}

// BufferCompleted is the drain callback: it receives each filled buffer of
// records, in record order — the analog of CUPTI's bufferCompleted
// callback (we skip bufferRequested; Go allocates internally).
type BufferCompleted func(records []ActivityRecord)

// Activity is a buffered activity-record stream attached to a context:
// enabled kinds append records as the context launches kernels and copies
// memory; full buffers are handed to the BufferCompleted callback, and
// Flush drains the remainder — the cuptiActivityFlushAll analog.
type Activity struct {
	mu        sync.Mutex
	enabled   map[ActivityKind]bool
	buf       []ActivityRecord
	bufCap    int
	completed BufferCompleted
	seq       uint64
	cycleBase uint64
}

// DefaultActivityBufferCap is how many records a buffer holds before it is
// delivered.
const DefaultActivityBufferCap = 256

// EnableActivity attaches an activity stream to ctx with all kinds
// enabled. bufCap <= 0 selects DefaultActivityBufferCap.
func EnableActivity(ctx *cuda.Context, bufCap int, completed BufferCompleted) *Activity {
	if bufCap <= 0 {
		bufCap = DefaultActivityBufferCap
	}
	a := &Activity{
		enabled: map[ActivityKind]bool{
			ActivityKindKernel:  true,
			ActivityKindMemcpy:  true,
			ActivityKindHandler: true,
		},
		bufCap:    bufCap,
		completed: completed,
	}
	ctx.Subscribe(cuda.LaunchCallbacks{
		PostLaunch: func(kernel string, idx int, stats *sim.KernelStats, err error) {
			a.recordLaunch(kernel, idx, stats, err)
		},
	})
	ctx.SubscribeMemcpy(func(dir cuda.MemcpyDir, bytes uint64) {
		a.recordMemcpy(dir, bytes)
	})
	return a
}

// Enable turns a record kind on.
func (a *Activity) Enable(kind ActivityKind) {
	a.mu.Lock()
	a.enabled[kind] = true
	a.mu.Unlock()
}

// Disable turns a record kind off; already-buffered records stay.
func (a *Activity) Disable(kind ActivityKind) {
	a.mu.Lock()
	a.enabled[kind] = false
	a.mu.Unlock()
}

// add appends a record (caller holds a.mu), delivering the buffer when
// full.
func (a *Activity) add(r ActivityRecord) {
	r.Seq = a.seq
	a.seq++
	a.buf = append(a.buf, r)
	if len(a.buf) >= a.bufCap {
		a.deliver()
	}
}

// deliver hands the current buffer to the callback (caller holds a.mu).
func (a *Activity) deliver() {
	if len(a.buf) == 0 || a.completed == nil {
		a.buf = a.buf[:0]
		return
	}
	out := a.buf
	a.buf = nil
	a.completed(out)
}

func (a *Activity) recordLaunch(kernel string, idx int, stats *sim.KernelStats, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	var cycles, warpInstrs, handlerCalls, injected uint64
	ctas := 0
	if stats != nil {
		cycles = stats.Cycles
		warpInstrs = stats.WarpInstrs
		handlerCalls = stats.HandlerCalls
		injected = stats.InjectedWarpInstrs
		ctas = stats.CTAs
	}
	if a.enabled[ActivityKindKernel] {
		a.add(ActivityRecord{
			Kind: ActivityKindKernel, Name: kernel, LaunchIdx: idx,
			Start: a.cycleBase, End: a.cycleBase + cycles,
			WarpInstrs: warpInstrs, HandlerCalls: handlerCalls,
			InjectedWarpInstrs: injected, CTAs: ctas, Failed: err != nil,
		})
	}
	if a.enabled[ActivityKindHandler] && handlerCalls > 0 {
		a.add(ActivityRecord{
			Kind: ActivityKindHandler, Name: kernel, LaunchIdx: idx,
			HandlerCalls: handlerCalls, InjectedWarpInstrs: injected,
		})
	}
	a.cycleBase += cycles
}

func (a *Activity) recordMemcpy(dir cuda.MemcpyDir, bytes uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.enabled[ActivityKindMemcpy] {
		return
	}
	a.add(ActivityRecord{Kind: ActivityKindMemcpy, Name: dir.String(),
		LaunchIdx: -1, Bytes: bytes})
}

// Flush delivers any buffered records to the callback.
func (a *Activity) Flush() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.deliver()
}

// Pending returns the number of undelivered records.
func (a *Activity) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buf)
}
