package cupti_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/cupti"
	"sassi/internal/device"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	isassi "sassi/internal/sassi"
	"sassi/internal/sim"
)

func instrumentedProg(t *testing.T) *sass.Program {
	t.Helper()
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	i := b.GlobalTidX()
	b.StGlobalU32(b.Index(out, i, 2), 0, i)
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := isassi.Instrument(prog, isassi.Options{Where: isassi.BeforeMem, BeforeHandler: "h"}); err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestCounterBankPerLaunchIsolation: counters zero at each launch; host
// accumulates across launches and tracks per-kernel totals.
func TestCounterBankPerLaunchIsolation(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	prog := instrumentedProg(t)
	bank := cupti.NewCounterBank(ctx, "counters", 2)
	rt := isassi.NewRuntime(prog)
	rt.MustRegister(&isassi.Handler{Name: "h", Sequential: true,
		Fn: func(c *device.Ctx, args isassi.HandlerArgs) {
			c.AtomicAdd64(bank.Ptr(0), 1)
		}})
	rt.Attach(ctx.Device())
	out := ctx.Malloc(4*64, "out")
	for l := 0; l < 3; l++ {
		if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
			Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(out)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One store site x 32 threads x 3 launches.
	if bank.Host[0] != 96 {
		t.Errorf("accumulated counter = %d, want 96", bank.Host[0])
	}
	if bank.Host[1] != 0 {
		t.Errorf("untouched counter = %d", bank.Host[1])
	}
	per := bank.PerKernel["k"]
	if per == nil || per[0] != 96 {
		t.Errorf("per-kernel = %v", per)
	}
	if bank.Len() != 2 || bank.Ptr(1) != bank.Base()+8 {
		t.Error("bank geometry accessors wrong")
	}
}

// TestSubscribeSitesFire: both launch and exit callbacks observe the
// kernel name and stats.
func TestSubscribeSitesFire(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	prog := instrumentedProg(t)
	rt := isassi.NewRuntime(prog)
	rt.MustRegister(&isassi.Handler{Name: "h", Sequential: true,
		Fn: func(c *device.Ctx, args isassi.HandlerArgs) {}})
	rt.Attach(ctx.Device())

	var sawLaunch, sawExit bool
	cupti.Subscribe(ctx, func(site cupti.Site, d *cupti.CallbackData) {
		switch site {
		case cupti.KernelLaunch:
			sawLaunch = true
			if d.Kernel != "k" || d.Stats != nil {
				t.Errorf("launch data = %+v", d)
			}
		case cupti.KernelExit:
			sawExit = true
			if d.Stats == nil || d.Err != nil {
				t.Errorf("exit data = %+v", d)
			}
		}
	})
	out := ctx.Malloc(4*64, "out")
	if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(out)},
	}); err != nil {
		t.Fatal(err)
	}
	if !sawLaunch || !sawExit {
		t.Errorf("callbacks fired: launch=%v exit=%v", sawLaunch, sawExit)
	}
}
