package cupti_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/cupti"
	"sassi/internal/device"
	isassi "sassi/internal/sassi"
	"sassi/internal/sim"
)

// TestKernelExitOncePerLaunchConcurrentSMs pins the subscriber contract
// under the parallel engine: with CTAs spread across 8 concurrently
// simulated SMs, KernelExit fires exactly once per launch, after the
// per-SM shards have been fully merged into one KernelStats.
func TestKernelExitOncePerLaunchConcurrentSMs(t *testing.T) {
	ctx := cuda.NewContext(sim.KeplerK10()) // 8 SMs, concurrent by default
	prog := instrumentedProg(t)
	rt := isassi.NewRuntime(prog)
	rt.MustRegister(&isassi.Handler{Name: "h",
		Fn: func(c *device.Ctx, args isassi.HandlerArgs) {}})
	rt.Attach(ctx.Device())

	const launches = 4
	const ctas, block = 32, 64
	exits := map[int]int{}
	cupti.Subscribe(ctx, func(site cupti.Site, d *cupti.CallbackData) {
		if site != cupti.KernelExit {
			return
		}
		exits[d.LaunchIdx]++
		if d.Stats == nil {
			t.Error("exit without stats")
			return
		}
		// Merged geometry and counters: every CTA and every warp must be
		// accounted for in the single exit callback.
		if d.Stats.CTAs != ctas {
			t.Errorf("launch %d: CTAs = %d, want %d", d.LaunchIdx, d.Stats.CTAs, ctas)
		}
		// One store site x (ctas*block/32) warps, one handler call each.
		wantCalls := uint64(ctas * block / 32)
		if d.Stats.HandlerCalls != wantCalls {
			t.Errorf("launch %d: handler calls = %d, want %d",
				d.LaunchIdx, d.Stats.HandlerCalls, wantCalls)
		}
		if d.Stats.WarpInstrs == 0 || d.Stats.InjectedWarpInstrs == 0 {
			t.Errorf("launch %d: unmerged stats %+v", d.LaunchIdx, d.Stats)
		}
	})
	out := ctx.Malloc(4*ctas*block, "out")
	for l := 0; l < launches; l++ {
		if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
			Grid: sim.D1(ctas), Block: sim.D1(block), Args: []uint64{uint64(out)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(exits) != launches {
		t.Errorf("exit fired for %d launches, want %d", len(exits), launches)
	}
	for idx, n := range exits {
		if n != 1 {
			t.Errorf("launch %d: exit fired %d times, want exactly once", idx, n)
		}
	}
}

// TestActivityRecordsDrainInLaunchOrder: with several launches on a
// concurrent-SM device, the activity stream delivers records whose Seq is
// strictly increasing across buffers, kernel records appear in launch
// order, and their device-cycle spans stack end to end.
func TestActivityRecordsDrainInLaunchOrder(t *testing.T) {
	ctx := cuda.NewContext(sim.KeplerK10())
	prog := instrumentedProg(t)
	rt := isassi.NewRuntime(prog)
	rt.MustRegister(&isassi.Handler{Name: "h",
		Fn: func(c *device.Ctx, args isassi.HandlerArgs) {}})
	rt.Attach(ctx.Device())

	var drained []cupti.ActivityRecord
	buffers := 0
	// Tiny buffer cap forces multiple BufferCompleted deliveries.
	act := cupti.EnableActivity(ctx, 3, func(records []cupti.ActivityRecord) {
		buffers++
		drained = append(drained, records...)
	})

	const launches = 5
	out := ctx.Malloc(4*64, "out")
	for l := 0; l < launches; l++ {
		if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
			Grid: sim.D1(2), Block: sim.D1(32), Args: []uint64{uint64(out)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	act.Flush()
	if act.Pending() != 0 {
		t.Errorf("%d records pending after flush", act.Pending())
	}
	if buffers < 2 {
		t.Errorf("expected multiple buffer deliveries, got %d", buffers)
	}

	var kernels, handlers []cupti.ActivityRecord
	for i, r := range drained {
		if uint64(i) != r.Seq {
			t.Fatalf("record %d has seq %d: drain out of order", i, r.Seq)
		}
		switch r.Kind {
		case cupti.ActivityKindKernel:
			kernels = append(kernels, r)
		case cupti.ActivityKindHandler:
			handlers = append(handlers, r)
		}
	}
	if len(kernels) != launches || len(handlers) != launches {
		t.Fatalf("kernel records = %d, handler records = %d, want %d each",
			len(kernels), len(handlers), launches)
	}
	var prevEnd uint64
	for i, r := range kernels {
		if r.LaunchIdx != i {
			t.Errorf("kernel record %d has launch idx %d", i, r.LaunchIdx)
		}
		if r.Start != prevEnd || r.End <= r.Start {
			t.Errorf("kernel record %d span [%d,%d) does not stack on %d",
				i, r.Start, r.End, prevEnd)
		}
		prevEnd = r.End
		if r.Name != "k" || r.Failed {
			t.Errorf("kernel record %d = %+v", i, r)
		}
	}
	for i, r := range handlers {
		if r.LaunchIdx != i || r.HandlerCalls == 0 {
			t.Errorf("handler record %d = %+v", i, r)
		}
	}
}

// TestActivityMemcpyRecords: host<->device copies show up as memcpy
// records with direction and size; disabling the kind stops recording.
func TestActivityMemcpyRecords(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	var drained []cupti.ActivityRecord
	act := cupti.EnableActivity(ctx, 0, func(records []cupti.ActivityRecord) {
		drained = append(drained, records...)
	})
	p := ctx.Malloc(64, "buf")
	if err := ctx.MemcpyHtoD(p, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := ctx.MemcpyDtoH(make([]byte, 16), p); err != nil {
		t.Fatal(err)
	}
	act.Disable(cupti.ActivityKindMemcpy)
	if err := ctx.MemcpyHtoD(p, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	act.Flush()
	if len(drained) != 2 {
		t.Fatalf("records = %+v, want 2", drained)
	}
	if drained[0].Name != "HtoD" || drained[0].Bytes != 64 {
		t.Errorf("record 0 = %+v", drained[0])
	}
	if drained[1].Name != "DtoH" || drained[1].Bytes != 16 {
		t.Errorf("record 1 = %+v", drained[1])
	}
}
