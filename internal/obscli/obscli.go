// Package obscli wires the observability layer into the command-line
// tools: cmd/sassi, cmd/sassi-fi, and cmd/experiments all expose the same
// -trace / -stats-json / -http / -pcsamp flags through this package, so
// the flag semantics (and the zero-cost-when-off rule: no flag, nil
// registry, tracer, and sampler) stay identical across binaries.
package obscli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sassi/internal/obs"
	"sassi/internal/obs/pcsamp"
)

// Flags holds the shared observability flag values.
type Flags struct {
	// TraceOut is -trace: a Chrome trace-event JSON output path.
	TraceOut string
	// StatsOut is -stats-json: a run-stats JSON output path ("-" = stdout).
	StatsOut string
	// HTTPAddr is -http: address for the /metrics + /stats.json endpoint.
	HTTPAddr string
	// PCSampOut is -pcsamp: folded-stack profile output path ("-" = stdout).
	PCSampOut string
	// PCSampPprof is -pcsamp-pprof: gzipped profile.proto output path.
	PCSampPprof string
	// PCSampPeriod is -pcsamp-period: sampling cadence in modeled cycles.
	PCSampPeriod uint64
}

// Register declares the shared observability flags on the default flag set.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.TraceOut, "trace", "",
		"write a Chrome trace-event JSON timeline here (load at ui.perfetto.dev)")
	flag.StringVar(&f.StatsOut, "stats-json", "",
		`write run statistics as sorted JSON here ("-" for stdout)`)
	flag.StringVar(&f.HTTPAddr, "http", "",
		"serve /metrics (Prometheus text), /stats.json, /debug/pprof/, and /debug/sassiprof/profile on this address, e.g. :8080")
	flag.StringVar(&f.PCSampOut, "pcsamp", "",
		`write a folded-stack PC-sampling profile here ("-" for stdout; pipe into flamegraph.pl)`)
	flag.StringVar(&f.PCSampPprof, "pcsamp-pprof", "",
		"write a gzipped pprof profile.proto PC-sampling profile here (view with go tool pprof)")
	flag.Uint64Var(&f.PCSampPeriod, "pcsamp-period", pcsamp.DefaultPeriod,
		"PC-sampling cadence in modeled device cycles (1 = exact per-instruction attribution)")
	return f
}

// Enabled reports whether any metrics/trace output was requested.
func (f *Flags) Enabled() bool {
	return f.TraceOut != "" || f.StatsOut != "" || f.HTTPAddr != ""
}

// SamplingEnabled reports whether the PC sampler should run: any sampling
// output, or the HTTP endpoint (whose /debug/sassiprof/profile handler
// serves continuous profiles — the always-on shape, affordable because
// sampling costs well under 10% at the default period).
func (f *Flags) SamplingEnabled() bool {
	return f.PCSampOut != "" || f.PCSampPprof != "" || f.HTTPAddr != ""
}

// Setup returns the registry, tracer, and PC sampler the flags imply —
// each nil when its outputs are off, keeping disabled observability free —
// and starts the HTTP endpoint if requested. stats is called per
// /stats.json request to wrap the live registry; nil serves the bare
// flattened registry. Callers attach the sampler to their device(s):
// sim.Device.PCSamp.
func (f *Flags) Setup(stats func() *obs.Stats) (*obs.Registry, *obs.Tracer, *pcsamp.Sampler) {
	var reg *obs.Registry
	var tr *obs.Tracer
	var samp *pcsamp.Sampler
	if f.Enabled() {
		reg = obs.NewRegistry()
	}
	if f.TraceOut != "" {
		tr = obs.NewTracer()
		tr.NameProcess(obs.PidHost, "host (wall µs)")
		tr.NameThread(obs.PidHost, obs.TidHostMain, "main")
		tr.NameThread(obs.PidHost, obs.TidHostCompile, "compile+instrument")
	}
	if f.SamplingEnabled() {
		samp = pcsamp.New(f.PCSampPeriod)
		samp.Metrics = reg
	}
	if f.HTTPAddr != "" {
		obs.Serve(f.HTTPAddr, reg, stats, func(err error) {
			fmt.Fprintf(os.Stderr, "obs http: %v\n", err)
		}, obs.Mount{Pattern: "/debug/sassiprof/profile", Handler: samp.ProfileHandler()})
	}
	return reg, tr, samp
}

// Finish writes the -trace, -stats-json, and -pcsamp* outputs. stats may
// be nil when -stats-json is off; samp may be nil when sampling is off.
func (f *Flags) Finish(tr *obs.Tracer, stats *obs.Stats, samp *pcsamp.Sampler) error {
	if f.TraceOut != "" {
		w, err := os.Create(f.TraceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	if f.StatsOut != "" && stats != nil {
		if err := writeTo(f.StatsOut, stats.WriteJSON); err != nil {
			return err
		}
	}
	if samp != nil {
		prof := samp.Profile()
		if f.PCSampOut != "" {
			if err := writeTo(f.PCSampOut, prof.WriteFolded); err != nil {
				return err
			}
		}
		if f.PCSampPprof != "" {
			if err := writeTo(f.PCSampPprof, prof.WritePprof); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeTo streams write to path, with "-" meaning stdout.
func writeTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
