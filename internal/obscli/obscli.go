// Package obscli wires the observability layer into the command-line
// tools: cmd/sassi, cmd/sassi-fi, and cmd/experiments all expose the same
// -trace / -stats-json / -http flags through this package, so the flag
// semantics (and the zero-cost-when-off rule: no flag, nil registry and
// tracer) stay identical across binaries.
package obscli

import (
	"flag"
	"fmt"
	"os"

	"sassi/internal/obs"
)

// Flags holds the shared observability flag values.
type Flags struct {
	// TraceOut is -trace: a Chrome trace-event JSON output path.
	TraceOut string
	// StatsOut is -stats-json: a run-stats JSON output path ("-" = stdout).
	StatsOut string
	// HTTPAddr is -http: address for the /metrics + /stats.json endpoint.
	HTTPAddr string
}

// Register declares -trace, -stats-json, and -http on the default flag set.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.TraceOut, "trace", "",
		"write a Chrome trace-event JSON timeline here (load at ui.perfetto.dev)")
	flag.StringVar(&f.StatsOut, "stats-json", "",
		`write run statistics as sorted JSON here ("-" for stdout)`)
	flag.StringVar(&f.HTTPAddr, "http", "",
		"serve /metrics (Prometheus text) and /stats.json on this address, e.g. :8080")
	return f
}

// Enabled reports whether any observability output was requested.
func (f *Flags) Enabled() bool {
	return f.TraceOut != "" || f.StatsOut != "" || f.HTTPAddr != ""
}

// Setup returns the registry and tracer the flags imply — both nil when
// their outputs are off, keeping disabled observability free — and starts
// the HTTP endpoint if requested. stats is called per /stats.json request
// to wrap the live registry; nil serves the bare flattened registry.
func (f *Flags) Setup(stats func() *obs.Stats) (*obs.Registry, *obs.Tracer) {
	var reg *obs.Registry
	var tr *obs.Tracer
	if f.Enabled() {
		reg = obs.NewRegistry()
	}
	if f.TraceOut != "" {
		tr = obs.NewTracer()
		tr.NameProcess(obs.PidHost, "host (wall µs)")
		tr.NameThread(obs.PidHost, obs.TidHostMain, "main")
		tr.NameThread(obs.PidHost, obs.TidHostCompile, "compile+instrument")
	}
	if f.HTTPAddr != "" {
		obs.Serve(f.HTTPAddr, reg, stats, func(err error) {
			fmt.Fprintf(os.Stderr, "obs http: %v\n", err)
		})
	}
	return reg, tr
}

// Finish writes the -trace and -stats-json outputs. stats may be nil when
// -stats-json is off.
func (f *Flags) Finish(tr *obs.Tracer, stats *obs.Stats) error {
	if f.TraceOut != "" {
		w, err := os.Create(f.TraceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	if f.StatsOut != "" && stats != nil {
		if f.StatsOut == "-" {
			return stats.WriteJSON(os.Stdout)
		}
		w, err := os.Create(f.StatsOut)
		if err != nil {
			return err
		}
		if err := stats.WriteJSON(w); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	}
	return nil
}
