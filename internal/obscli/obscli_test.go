package obscli

// End-to-end check of the shared CLI wiring: the flags must imply exactly
// the right set of live observability objects (nil = free when off), and
// Finish must materialize every requested output file.

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sassi/internal/obs"
	"sassi/internal/obs/pcsamp"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func TestRegisterDefaults(t *testing.T) {
	f := Register()
	if f.Enabled() {
		t.Error("Enabled() true with no flags set")
	}
	if f.SamplingEnabled() {
		t.Error("SamplingEnabled() true with no flags set")
	}
	if f.PCSampPeriod != pcsamp.DefaultPeriod {
		t.Errorf("default period = %d, want %d", f.PCSampPeriod, pcsamp.DefaultPeriod)
	}
}

func TestEnabledCombinations(t *testing.T) {
	for _, tc := range []struct {
		f        Flags
		enabled  bool
		sampling bool
	}{
		{Flags{}, false, false},
		{Flags{TraceOut: "x"}, true, false},
		{Flags{StatsOut: "-"}, true, false},
		{Flags{HTTPAddr: ":0"}, true, true}, // http serves continuous profiles
		{Flags{PCSampOut: "x"}, false, true},
		{Flags{PCSampPprof: "x"}, false, true},
	} {
		if got := tc.f.Enabled(); got != tc.enabled {
			t.Errorf("%+v Enabled() = %v, want %v", tc.f, got, tc.enabled)
		}
		if got := tc.f.SamplingEnabled(); got != tc.sampling {
			t.Errorf("%+v SamplingEnabled() = %v, want %v", tc.f, got, tc.sampling)
		}
	}
}

func TestSetupAllOff(t *testing.T) {
	f := &Flags{PCSampPeriod: pcsamp.DefaultPeriod}
	reg, tr, samp := f.Setup(nil)
	if reg != nil || tr != nil || samp != nil {
		t.Errorf("Setup with no flags = (%v, %v, %v), want all nil", reg, tr, samp)
	}
	// Finish with everything off (and nil objects) must be a clean no-op.
	if err := f.Finish(tr, nil, samp); err != nil {
		t.Errorf("Finish with all outputs off: %v", err)
	}
}

// TestSetupFinishEndToEnd drives a real launch through the objects Setup
// returns and checks every output file Finish writes.
func TestSetupFinishEndToEnd(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		TraceOut:     filepath.Join(dir, "trace.json"),
		StatsOut:     filepath.Join(dir, "stats.json"),
		PCSampOut:    filepath.Join(dir, "prof.folded"),
		PCSampPprof:  filepath.Join(dir, "prof.pb.gz"),
		PCSampPeriod: 1,
	}
	reg, tr, samp := f.Setup(nil)
	if reg == nil || tr == nil || samp == nil {
		t.Fatalf("Setup = (%v, %v, %v), want all live", reg, tr, samp)
	}
	if samp.Metrics != reg {
		t.Error("sampler not wired to the registry")
	}

	k := &sass.Kernel{Name: "spin", NumRegs: 8, Labels: map[string]int{}}
	k.Instrs = []sass.Instruction{
		sass.New(sass.OpMOV, []sass.Operand{sass.R(0)}, []sass.Operand{sass.Imm(1)}),
		sass.New(sass.OpEXIT, nil, nil),
	}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	prog := sass.NewProgram()
	prog.AddKernel(k)
	dev := sim.NewDevice(sim.MiniGPU())
	dev.Metrics = reg
	dev.Trace = tr
	dev.PCSamp = samp
	if _, err := dev.Launch(prog, "spin", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32),
	}); err != nil {
		t.Fatal(err)
	}

	if err := f.Finish(tr, obs.NewStats(reg), samp); err != nil {
		t.Fatal(err)
	}

	trace, err := os.ReadFile(f.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	var tl struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &tl); err != nil {
		t.Errorf("trace output is not Chrome trace JSON: %v", err)
	} else if len(tl.TraceEvents) == 0 {
		t.Error("trace output has no events")
	}
	statsRaw, err := os.ReadFile(f.StatsOut)
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.Unmarshal(statsRaw, &stats); err != nil {
		t.Errorf("stats output is not JSON: %v", err)
	}
	folded, err := os.ReadFile(f.PCSampOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(folded), "spin;") {
		t.Errorf("folded profile missing the kernel frame:\n%s", folded)
	}
	pb, err := os.ReadFile(f.PCSampPprof)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gzip.NewReader(bytes.NewReader(pb)); err != nil {
		t.Errorf("pprof output is not gzip: %v", err)
	}
}

// TestWriteToError checks the unwritable-path error propagates.
func TestWriteToError(t *testing.T) {
	f := &Flags{PCSampOut: filepath.Join(t.TempDir(), "no", "such", "dir", "p.folded")}
	if err := f.Finish(nil, nil, pcsamp.New(1)); err == nil {
		t.Error("Finish with unwritable -pcsamp path returned nil error")
	}
}
