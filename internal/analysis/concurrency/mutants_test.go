package concurrency

import (
	"strings"
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/workloads"
)

// TestMutantsFlagged asserts the race pass reports every seed-buggy
// mutant (and, with TestBuiltinWorkloadsClean, that the reports are not
// blanket noise: the un-mutated suite is silent).
func TestMutantsFlagged(t *testing.T) {
	for _, name := range workloads.MutantNames() {
		if strings.HasPrefix(name, "mutant.cfi-") {
			continue // control-flow mutants; the cfi pass owns their rejection
		}
		spec, ok := workloads.GetMutant(name)
		if !ok {
			t.Fatalf("mutant %s not registered", name)
		}
		prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		flagged := false
		for _, k := range prog.Kernels {
			cfg, err := sass.BuildCFG(k)
			if err != nil {
				t.Fatalf("%s/%s: cfg: %v", name, k.Name, err)
			}
			diags := Check(cfg)
			if _, ok := findDiag(diags, analysis.CheckSharedRace, "barrier interval"); ok {
				flagged = true
			}
			// Mutants must stay buildable under the default verifier:
			// races are warnings, and none of them misuses barriers in a
			// way the barrier pass calls a hard error.
			for _, d := range diags {
				if d.Sev == analysis.Error {
					t.Errorf("%s: unexpected hard error: %v", name, d)
				}
			}
		}
		if !flagged {
			t.Errorf("%s: no shared-race warning reported", name)
		}
	}
}

// TestMutantRegistrySeparate keeps the buggy mutants out of the
// benchmark-suite registry that CI lints with -Werror.
func TestMutantRegistrySeparate(t *testing.T) {
	if len(workloads.MutantNames()) < 3 {
		t.Fatalf("expected at least 3 mutants, got %v", workloads.MutantNames())
	}
	for _, name := range workloads.MutantNames() {
		if _, inSuite := workloads.Get(name); inSuite {
			t.Errorf("mutant %s leaked into the workload suite registry", name)
		}
	}
}
