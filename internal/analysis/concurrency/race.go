package concurrency

import (
	"fmt"

	"sassi/internal/analysis"
	"sassi/internal/mem"
	"sassi/internal/sass"
)

// sharedAccess is one static shared-memory access site.
type sharedAccess struct {
	idx     int
	op      sass.Opcode
	addr    analysis.Value // generic shared-window address form
	width   int
	write   bool
	atomic  bool
	anchors analysis.Bits // barrier-interval anchors that may be live here
	// single: the access is guarded by a predicate provably satisfied by
	// at most one thread of the CTA (e.g. @P0 with P0 := tid==0); eq is
	// that guard's zero form. Such a site cannot race with itself, nor
	// with another single site selecting the same thread.
	single bool
	eq     analysis.Value
}

// CheckSharedRaces partitions the kernel into barrier intervals and
// reports shared-memory access pairs that (a) may execute in the same
// interval, (b) involve a write, (c) are not both atomic, and (d) whose
// addresses the value lattice cannot prove disjoint for two different
// threads of the CTA. Findings are warnings: the analysis is necessarily
// approximate, and its reports are meant to be confirmed by the dynamic
// SASSI race handler (internal/handlers.RaceChecker).
//
// Interval partitioning ("phase anchors"): a forward may-analysis whose
// facts are {kernel entry} ∪ {each BAR instruction}. An unguarded BAR
// kills every fact and generates itself — execution downstream is in the
// interval that BAR opened. Two accesses may overlap in time across
// warps only if they share an anchor: barriers are CTA-wide rendezvous,
// so accesses in intervals opened by different anchors are ordered by
// the barrier between them. Known approximation: when warps take
// different (warp-uniform) paths to DIFFERENT BAR instructions that
// rendezvous as the same dynamic barrier, the anchors differ but the
// intervals coincide; such cross-anchor races are missed (the built-in
// workloads keep every BAR on the common path).
//
// Address coverage: LDS/STS/ATOMS always denote shared memory (their
// effective address is the shared-window form base+offset|SharedBase,
// matching what the instrumentation hands the dynamic handler); generic
// LD/ST/ATOM count only when their address is a known constant inside
// the shared window — a symbolic generic address that could alias shared
// memory is NOT reported (documented under-approximation).
func CheckSharedRaces(cfg *sass.CFG, val *analysis.Valuation) []analysis.Diagnostic {
	k := cfg.Kernel
	var diags []analysis.Diagnostic
	for _, p := range SharedRacePairs(cfg, val) {
		msg := fmt.Sprintf(
			"possible shared-memory race: %s@%04x and %s@%04x may touch the same address in the same barrier interval (addresses not provably thread-disjoint)",
			k.Instrs[p[0]].Op, sass.InsOffset(p[0]), k.Instrs[p[1]].Op, sass.InsOffset(p[1]))
		diags = append(diags, analysis.Diagnostic{
			Sev: analysis.Warning, Check: analysis.CheckSharedRace,
			Kernel: k.Name, Instr: p[0], Msg: msg,
		})
	}
	return diags
}

// SharedRacePairs returns the racy access pairs as instruction-index
// pairs (first <= second) — the structured form the dynamic
// cross-validation compares against internal/handlers.RaceChecker's
// observed site pairs.
func SharedRacePairs(cfg *sass.CFG, val *analysis.Valuation) [][2]int {
	k := cfg.Kernel
	dims := analysis.BlockDims{X: k.BlockDim[0], Y: k.BlockDim[1], Z: k.BlockDim[2]}
	accs := collectSharedAccesses(cfg, val, dims)
	if len(accs) == 0 {
		return nil
	}

	var pairs [][2]int
	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			a, b := accs[i], accs[j]
			if !a.write && !b.write {
				continue // read/read never races
			}
			if a.atomic && b.atomic {
				continue // atomics serialize against each other
			}
			if !bitsIntersect(a.anchors, b.anchors) {
				continue // a barrier always separates them
			}
			if i == j && a.single {
				continue // at most one thread ever executes this site
			}
			if i != j && a.single && b.single && analysis.EqualValues(a.eq, b.eq) {
				continue // both sites execute on the same unique thread
			}
			if analysis.DisjointAcrossThreads(a.addr, a.width, b.addr, b.width, dims) {
				continue
			}
			pairs = append(pairs, [2]int{a.idx, b.idx})
		}
	}
	return pairs
}

// collectSharedAccesses gathers the static shared-memory access sites
// with their symbolic addresses and barrier-interval anchors.
func collectSharedAccesses(cfg *sass.CFG, val *analysis.Valuation, dims analysis.BlockDims) []sharedAccess {
	k := cfg.Kernel
	anchors := phaseAnchors(cfg)
	var accs []sharedAccess
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if !in.Op.IsMem() {
			continue
		}
		ref, ok := memRef(in)
		if !ok {
			continue
		}
		addr := val.RegValue(i, ref.Reg).AddConst(ref.Imm)
		switch in.Op {
		case sass.OpLDS, sass.OpSTS, sass.OpATOMS:
			// Shared-window offsets; normalize to the generic form so
			// they compare against generic-space constants and the
			// dynamic handler's addresses.
			addr = addr.AddConst(int64(mem.SharedBase))
		case sass.OpLD, sass.OpST, sass.OpATOM:
			// Generic access: only a provably in-window constant address
			// is attributed to shared memory.
			c, isConst := addr.IsConst()
			if !isConst || !mem.IsShared(uint64(c)) {
				continue
			}
		default:
			continue // global/local/const/texture spaces cannot race on shared
		}
		acc := sharedAccess{
			idx:     i,
			op:      in.Op,
			addr:    addr,
			width:   in.Mods.Width.Bytes(),
			write:   in.Op.IsMemWrite(),
			atomic:  in.Op.IsAtomic(),
			anchors: anchors[i],
		}
		// A non-negated guard whose predicate implies an affine zero hit
		// by at most one thread makes this a single-thread site.
		if g := in.Guard; !g.IsAlways() && !g.Neg {
			if f := val.PredAt(i, g.Reg); f.EqZero != nil && analysis.SingleThreadZero(*f.EqZero, dims) {
				acc.single, acc.eq = true, *f.EqZero
			}
		}
		accs = append(accs, acc)
	}
	return accs
}

// memRef returns the instruction's memory operand.
func memRef(in *sass.Instruction) (sass.Operand, bool) {
	for _, s := range in.Srcs {
		if s.Kind == sass.OpdMem {
			return s, true
		}
	}
	return sass.Operand{}, false
}

// phaseAnchors computes, per instruction, the set of barrier-interval
// anchors (bit 0 = kernel entry, bit 1+k = the k-th BAR instruction)
// whose interval the instruction may execute in.
func phaseAnchors(cfg *sass.CFG) []analysis.Bits {
	k := cfg.Kernel
	// Number the anchors.
	barBit := map[int]int{}
	nbits := 1
	for i := range k.Instrs {
		if k.Instrs[i].Op == sass.OpBAR {
			barBit[i] = nbits
			nbits++
		}
	}
	nb := len(cfg.Blocks)
	gen := make([]analysis.Bits, nb)
	kill := make([]analysis.Bits, nb)
	for b := 0; b < nb; b++ {
		gen[b] = analysis.NewBits(nbits)
		kill[b] = analysis.NewBits(nbits)
		blk := cfg.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			in := &k.Instrs[i]
			if in.Op != sass.OpBAR {
				continue
			}
			if in.Guard.IsAlways() {
				// The barrier definitely executes: downstream is in its
				// interval and no earlier anchor survives.
				kill[b].Fill(nbits)
				gen[b] = analysis.NewBits(nbits)
			}
			// A guarded BAR may not execute: generate without killing.
			gen[b].Set(barBit[i])
		}
	}
	boundary := analysis.NewBits(nbits)
	boundary.Set(0) // kernel entry anchor
	blockIn, _ := analysis.Solve(cfg, analysis.Problem{
		Dir: analysis.Forward, Meet: analysis.Union, Bits: nbits,
		Gen: gen, Kill: kill, Boundary: boundary,
	})
	// Expand to per-instruction sets.
	per := make([]analysis.Bits, len(k.Instrs))
	for b := 0; b < nb; b++ {
		blk := cfg.Blocks[b]
		cur := blockIn[b].Copy()
		for i := blk.Start; i < blk.End; i++ {
			per[i] = cur.Copy()
			in := &k.Instrs[i]
			if in.Op == sass.OpBAR {
				if in.Guard.IsAlways() {
					cur = analysis.NewBits(nbits)
				}
				cur.Set(barBit[i])
			}
		}
	}
	return per
}

// bitsIntersect reports whether two bit sets share a member.
func bitsIntersect(a, b analysis.Bits) bool {
	if a == nil || b == nil {
		return false
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}
