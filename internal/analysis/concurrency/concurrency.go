// Package concurrency is the inter-warp correctness layer over compiled
// SASS: a barrier-alignment pass that finds BAR.SYNC instructions
// reachable while the warp is diverged (the condition the simulator
// rejects dynamically as "divergent BAR.SYNC would deadlock"), and a
// shared-memory race pass that partitions each kernel into barrier
// intervals and flags same-interval access pairs whose addresses cannot
// be proven thread-disjoint by the affine value lattice in
// internal/analysis/values.go.
//
// Both passes register with the analysis.Verify registry on import, so
// any consumer that blank-imports this package gets them in every
// compile/instrument verification. The dynamic counterpart — a SASSI
// race-detection handler cross-validating the static reports — lives in
// internal/handlers (RaceChecker).
package concurrency

import (
	"sassi/internal/analysis"
	"sassi/internal/sass"
)

func init() {
	analysis.RegisterKernelCheck("concurrency", Check)
}

// Check runs both concurrency passes over one kernel, sharing a single
// value-lattice fixpoint. This is the function the Verify registry calls.
func Check(cfg *sass.CFG) []analysis.Diagnostic {
	val := analysis.AnalyzeValues(cfg)
	diags := CheckBarrierAlignment(cfg, val)
	diags = append(diags, CheckSharedRaces(cfg, val)...)
	return diags
}
