package concurrency

import (
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

// TestBarrierPassAgreesWithSimulator is the consistency regression test
// between the static barrier-alignment pass and the simulator's dynamic
// rule (internal/sim/exec.go: "divergent BAR.SYNC would deadlock"): for
// every kernel in the table, the pass reports an error if and only if a
// 1-CTA/32-thread launch faults.
//
// Built-in workloads are the other half of the contract: they run
// deadlock-free in the simulator throughout the workload test suite, and
// TestBuiltinWorkloadsClean asserts the static passes stay silent on
// every one of them.
func TestBarrierPassAgreesWithSimulator(t *testing.T) {
	cases := []struct {
		name         string
		wantDeadlock bool
		build        func(t *testing.T) *sass.Kernel
	}{
		{"guarded-bar-tid", true, func(t *testing.T) *sass.Kernel {
			return testKernel(t, [3]int{32, 1, 1}, nil,
				tidx(0),
				setp(0, sass.R(0), sass.Imm(16)),
				guarded(bar(), 0, false),
				exit(),
			)
		}},
		{"bar-inside-divergent-arm", true, func(t *testing.T) *sass.Kernel {
			return testKernel(t, [3]int{32, 1, 1}, map[string]int{"else": 6, "join": 9},
				tidx(0),
				setp(0, sass.R(0), sass.Imm(16)),
				ssy("join"),
				guarded(bra("else"), 0, true),
				nop(),
				sync(),
				bar(),
				nop(),
				sync(),
				exit(),
			)
		}},
		{"bar-after-reconvergence", false, func(t *testing.T) *sass.Kernel {
			return testKernel(t, [3]int{32, 1, 1}, map[string]int{"else": 6, "join": 9},
				tidx(0),
				setp(0, sass.R(0), sass.Imm(16)),
				ssy("join"),
				guarded(bra("else"), 0, true),
				nop(),
				sync(),
				nop(),
				nop(),
				sync(),
				bar(),
				exit(),
			)
		}},
		{"bar-under-uniform-branch", false, func(t *testing.T) *sass.Kernel {
			return testKernel(t, [3]int{32, 1, 1}, map[string]int{"else": 6, "join": 8},
				ctaidx(0),
				setp(0, sass.R(0), sass.Imm(1)),
				ssy("join"),
				guarded(bra("else"), 0, true),
				bar(),
				sync(),
				bar(),
				sync(),
				exit(),
			)
		}},
		{"bar-after-divergent-loop", false, func(t *testing.T) *sass.Kernel {
			return testKernel(t, [3]int{32, 1, 1}, map[string]int{"head": 3, "reconv": 7},
				tidx(0),
				sass.New(sass.OpMOV32, []sass.Operand{sass.R(1)}, []sass.Operand{sass.Imm(0)}),
				ssy("reconv"),
				setp(0, sass.R(1), sass.R(0)),
				sass.New(sass.OpIADD, []sass.Operand{sass.R(1)}, []sass.Operand{sass.R(1), sass.Imm(1)}),
				guarded(bra("head"), 0, false),
				sync(),
				bar(),
				exit(),
			)
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := tc.build(t)

			var static []analysis.Diagnostic
			for _, d := range checkKernel(t, k) {
				if d.Check == analysis.CheckBarrier && d.Sev == analysis.Error {
					static = append(static, d)
				}
			}

			prog := sass.NewProgram()
			prog.AddKernel(k)
			dev := sim.NewDevice(sim.MiniGPU())
			_, err := dev.Launch(prog, k.Name, sim.LaunchParams{
				Grid: sim.D1(1), Block: sim.D1(32),
			})

			if tc.wantDeadlock {
				if err == nil {
					t.Error("simulator accepted a kernel expected to deadlock")
				}
				if len(static) == 0 {
					t.Error("static pass silent on a kernel the simulator rejects")
				}
			} else {
				if err != nil {
					t.Errorf("simulator rejected a clean kernel: %v", err)
				}
				if len(static) != 0 {
					t.Errorf("static errors on a kernel the simulator accepts: %v", static)
				}
			}
		})
	}
}
