package concurrency

import (
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/sass"
)

// A BAR inside one arm of a tid-dependent diamond executes while the
// other arm's lanes are deferred: the exact condition the simulator
// rejects dynamically.
func TestBarrierInsideDivergentArm(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, map[string]int{"else": 6, "join": 9},
		tidx(0),                     // 0
		setp(0, sass.R(0), sass.Imm(16)), // 1: P0 = tid.x < 16
		ssy("join"),                 // 2
		guarded(bra("else"), 0, true), // 3: @!P0 BRA else
		nop(),                       // 4: then
		sync(),                      // 5
		bar(),                       // 6: else — runs with then-lanes deferred
		nop(),                       // 7
		sync(),                      // 8
		exit(),                      // 9: join
	)
	d, ok := findDiag(checkKernel(t, k), analysis.CheckBarrier, "has not reconverged")
	if !ok {
		t.Fatal("divergent-arm BAR not reported")
	}
	if d.Sev != analysis.Error || d.Instr != 6 {
		t.Errorf("diagnostic = %+v, want Error at instr 6", d)
	}
}

// The same diamond with the BAR moved past the reconvergence point is
// clean: both arms SYNC before any lane reaches it.
func TestBarrierAfterReconvergenceClean(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, map[string]int{"else": 6, "join": 9},
		tidx(0),
		setp(0, sass.R(0), sass.Imm(16)),
		ssy("join"),
		guarded(bra("else"), 0, true),
		nop(),  // then
		sync(),
		nop(), // else
		nop(),
		sync(),
		bar(), // 9: join — warp fully reconverged
		exit(),
	)
	wantNone(t, checkKernel(t, k))
}

// A provably warp-uniform branch guard never splits the warp, so a BAR
// inside either arm is fine.
func TestBarrierUnderUniformBranchClean(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, map[string]int{"else": 6, "join": 8},
		ctaidx(0),
		setp(0, sass.R(0), sass.Imm(1)), // P0 = ctaid.x < 1: CTA-uniform
		ssy("join"),
		guarded(bra("else"), 0, true),
		bar(), // then
		sync(),
		bar(), // else
		sync(),
		exit(), // join
	)
	wantNone(t, checkKernel(t, k))
}

// A guard the lattice cannot reason about degrades the report to a
// warning rather than a hard error.
func TestBarrierUnprovableGuardWarns(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, map[string]int{"else": 6, "join": 9},
		// P0 compares a loaded value: neither uniform nor provably tid-dep.
		lds(0, sass.RZ, 0),
		setp(0, sass.R(0), sass.Imm(16)),
		ssy("join"),
		guarded(bra("else"), 0, true),
		nop(),
		sync(),
		bar(),
		nop(),
		sync(),
		exit(),
	)
	d, ok := findDiag(checkKernel(t, k), analysis.CheckBarrier, "has not reconverged")
	if !ok {
		t.Fatal("possibly-divergent BAR not reported")
	}
	if d.Sev != analysis.Warning {
		t.Errorf("severity = %v, want Warning for unprovable guard", d.Sev)
	}
}

// A BAR whose own guard is thread-dependent deadlocks the lanes that
// skip it (the simulator checks exec == Active).
func TestGuardedBarrierTidDependent(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		tidx(0),
		setp(0, sass.R(0), sass.Imm(16)),
		guarded(bar(), 0, false), // @P0 BAR.SYNC
		exit(),
	)
	d, ok := findDiag(checkKernel(t, k), analysis.CheckBarrier, "never arrive")
	if !ok {
		t.Fatal("tid-guarded BAR not reported")
	}
	if d.Sev != analysis.Error || d.Instr != 2 {
		t.Errorf("diagnostic = %+v, want Error at instr 2", d)
	}
}

// Even a uniform-guarded BAR is suspicious: whenever the guard is false
// the active lanes skip a CTA-wide rendezvous other CTAs' warps... other
// warps of the CTA may still be waiting on.
func TestGuardedBarrierUniformWarns(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		ctaidx(0),
		setp(0, sass.R(0), sass.Imm(1)),
		guarded(bar(), 0, false),
		exit(),
	)
	d, ok := findDiag(checkKernel(t, k), analysis.CheckBarrier, "guard evaluates false")
	if !ok {
		t.Fatal("uniform-guarded BAR not reported")
	}
	if d.Sev != analysis.Warning {
		t.Errorf("severity = %v, want Warning", d.Sev)
	}
}

// A divergent loop (trip count depends on tid, guarded-BRA back edge)
// whose BAR sits after the loop-exit SYNC must stay silent: every
// deferral the latch pushes is popped before the barrier.
func TestBarrierAfterDivergentLoopClean(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, map[string]int{"head": 3, "reconv": 7},
		tidx(0), // 0
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(1)}, []sass.Operand{sass.Imm(0)}), // 1
		ssy("reconv"),                 // 2
		setp(0, sass.R(1), sass.R(0)), // 3: head: P0 = i < tid.x
		sass.New(sass.OpIADD, []sass.Operand{sass.R(1)}, []sass.Operand{sass.R(1), sass.Imm(1)}), // 4
		guarded(bra("head"), 0, false), // 5: latch — mixed outcome defers exiting lanes
		sync(),                         // 6: loop exit pops each deferred group
		bar(),                          // 7: reconv — warp whole again
		exit(),                         // 8
	)
	wantNone(t, checkKernel(t, k))
}

// The buggy variant: the loop-exit SYNC is missing, so lanes that left
// the loop early are still deferred when the barrier executes.
func TestBarrierAfterDivergentLoopMissingSync(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, map[string]int{"head": 3},
		tidx(0),
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(1)}, []sass.Operand{sass.Imm(0)}),
		ssy("head"), // degenerate: reconvergence never reached before BAR
		setp(0, sass.R(1), sass.R(0)),
		sass.New(sass.OpIADD, []sass.Operand{sass.R(1)}, []sass.Operand{sass.R(1), sass.Imm(1)}),
		guarded(bra("head"), 0, false),
		bar(), // 6: reached straight off the latch with deferrals live
		exit(),
	)
	// The latch guard compares the loop counter (unknown after the
	// back-edge join) with tid, so tid-dependence is unprovable: the
	// report is a conservative warning rather than a hard error.
	d, ok := findDiag(checkKernel(t, k), analysis.CheckBarrier, "has not reconverged")
	if !ok {
		t.Fatal("missing-SYNC loop barrier not reported")
	}
	if d.Instr != 6 {
		t.Errorf("diagnostic = %+v, want report at instr 6", d)
	}
}
