package concurrency

import (
	"fmt"
	"strconv"

	"sassi/internal/analysis"
	"sassi/internal/sass"
)

// Walk bounds, mirroring analysis.CheckDivergenceStack.
const (
	maxDivDepth  = 32
	maxCallDepth = 32
	maxStates    = 1 << 16
)

// divEnt is one abstract divergence-stack entry. SSY reconvergence
// entries (deferred) and branch-deferral entries share the resume pc; a
// deferral additionally records which branch caused it and how certain
// the analysis is that the branch actually diverges.
type divEnt struct {
	deferral bool
	pc       int               // resume pc (SSY target, or branch fall-through)
	sev      analysis.Severity // deferral: Error iff the guard is provably tid-dependent
	branch   int               // deferral: instruction index of the diverging BRA
}

// CheckBarrierAlignment abstractly interprets every control-flow path,
// tracking the same divergence stack the warp scheduler keeps, and
// reports BAR.SYNC instructions that can execute while lanes are
// deferred. This is the static mirror of the simulator's dynamic rule
// (internal/sim/exec.go): BAR faults when Active != Alive (a branch
// deferral has not reconverged) or when its guard excludes active lanes.
//
// A guarded BRA whose guard the value lattice proves warp-uniform never
// splits the warp, so only its two pure arms are explored; otherwise the
// mixed outcome — taken path running first with the fall-through lanes
// deferred until the next SYNC — is explored as well, carrying a
// deferral entry whose severity is Error when the guard provably
// compares tid-derived values (the warp WILL split given >1 thread) and
// Warning when uniformity is merely unprovable.
func CheckBarrierAlignment(cfg *sass.CFG, val *analysis.Valuation) []analysis.Diagnostic {
	k := cfg.Kernel
	n := len(k.Instrs)
	var diags []analysis.Diagnostic
	reported := map[string]bool{}
	report := func(sev analysis.Severity, i int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := strconv.Itoa(i) + "\x00" + msg
		if reported[key] {
			return
		}
		reported[key] = true
		diags = append(diags, analysis.Diagnostic{
			Sev: sev, Check: analysis.CheckBarrier, Kernel: k.Name, Instr: i, Msg: msg,
		})
	}

	type state struct {
		pc   int
		div  []divEnt
		call []int
	}
	keyOf := func(s state) string {
		b := make([]byte, 0, 8+8*(len(s.div)+len(s.call)))
		b = strconv.AppendInt(b, int64(s.pc), 10)
		for _, e := range s.div {
			if e.deferral {
				b = append(b, 'D')
				b = strconv.AppendInt(b, int64(e.sev), 10)
				b = append(b, '@')
				b = strconv.AppendInt(b, int64(e.branch), 10)
			} else {
				b = append(b, 's')
			}
			b = strconv.AppendInt(b, int64(e.pc), 10)
		}
		for _, t := range s.call {
			b = append(b, 'c')
			b = strconv.AppendInt(b, int64(t), 10)
		}
		return string(b)
	}

	seen := map[string]bool{}
	var work []state
	push := func(s state) {
		if key := keyOf(s); !seen[key] {
			seen[key] = true
			work = append(work, s)
		}
	}
	push(state{pc: 0})

	for len(work) > 0 {
		if len(seen) > maxStates {
			// CheckDivergenceStack reports truncation for the kernel; stay
			// silent here to avoid double warnings.
			break
		}
		s := work[len(work)-1]
		work = work[:len(work)-1]

		if s.pc >= n {
			continue // falls off the end: structural/divergence checks report it
		}
		in := &k.Instrs[s.pc]
		guarded := !in.Guard.IsAlways()

		succ := func(pc int) state { return state{pc: pc, div: s.div, call: s.call} }
		pushDiv := func(pc int, e divEnt) {
			ns := succ(pc)
			ns.div = append(append([]divEnt{}, s.div...), e)
			push(ns)
		}
		// popAll explores every stack suffix the scheduler's
		// pop-to-non-empty could resume after the active lanes retire
		// (which suffix depends on runtime lane masks).
		popAll := func() {
			for i := len(s.div) - 1; i >= 0; i-- {
				push(state{pc: s.div[i].pc, div: s.div[:i], call: s.call})
			}
		}

		switch in.Op {
		case sass.OpSSY:
			t, ok := in.BranchTarget()
			if !ok || t.Imm < 0 || t.Imm > int64(n) {
				continue
			}
			if len(s.div) >= maxDivDepth {
				continue // CheckDivergenceStack reports runaway nesting
			}
			pushDiv(s.pc+1, divEnt{pc: int(t.Imm)})

		case sass.OpSYNC:
			if len(s.div) == 0 {
				continue // reported by CheckDivergenceStack
			}
			top := s.div[len(s.div)-1]
			push(state{pc: top.pc, div: s.div[:len(s.div)-1], call: s.call})

		case sass.OpBRA:
			t, ok := in.BranchTarget()
			if !ok || t.Imm < 0 || t.Imm > int64(n) {
				continue
			}
			if !guarded {
				push(succ(int(t.Imm)))
				continue
			}
			facts := val.GuardFacts(s.pc)
			// Pure arms: the guard evaluates the same way in every lane.
			push(succ(int(t.Imm)))
			push(succ(s.pc + 1))
			if !facts.Uniform && len(s.div) < maxDivDepth {
				// Mixed outcome: taken lanes run, fall-through lanes are
				// deferred until the next SYNC (sim pushes divDEF).
				sev := analysis.Warning
				if facts.TidDep {
					sev = analysis.Error
				}
				pushDiv(int(t.Imm), divEnt{deferral: true, pc: s.pc + 1, sev: sev, branch: s.pc})
			}

		case sass.OpEXIT:
			// Exiting lanes leave Active and Alive together, so a guarded
			// EXIT never diverges the warp; when all active lanes retire
			// the scheduler pops the stack to resume deferred lanes.
			if guarded {
				push(succ(s.pc + 1))
			}
			popAll()

		case sass.OpCAL:
			t, ok := in.BranchTarget()
			if !ok || t.Imm < 0 || t.Imm > int64(n) || len(s.call) >= maxCallDepth {
				continue
			}
			ns := succ(int(t.Imm))
			ns.call = append(append([]int{}, s.call...), s.pc+1)
			push(ns)
			if guarded {
				push(succ(s.pc + 1))
			}

		case sass.OpRET:
			if len(s.call) == 0 {
				continue
			}
			push(state{pc: s.call[len(s.call)-1], div: s.div, call: s.call[:len(s.call)-1]})
			if guarded {
				push(succ(s.pc + 1))
			}

		case sass.OpPBK, sass.OpBRK:
			continue // rejected structurally

		case sass.OpBAR:
			if guarded {
				facts := val.GuardFacts(s.pc)
				switch {
				case facts.TidDep:
					report(analysis.Error, s.pc,
						"guarded BAR.SYNC with a thread-dependent guard: lanes whose guard fails never arrive (deadlock)")
				case !facts.Uniform:
					report(analysis.Warning, s.pc,
						"guarded BAR.SYNC: the guard is not provably warp-uniform, so some lanes may never arrive (deadlock)")
				default:
					report(analysis.Warning, s.pc,
						"guarded BAR.SYNC deadlocks whenever the guard evaluates false (the simulator requires all active lanes to arrive)")
				}
			}
			for _, e := range s.div {
				if e.deferral {
					report(e.sev, s.pc,
						"BAR.SYNC reachable while the warp is diverged: the branch at @%04x has not reconverged (deferred lanes would never arrive: deadlock)",
						sass.InsOffset(e.branch))
				}
			}
			push(succ(s.pc + 1))

		default:
			push(succ(s.pc + 1))
		}
	}
	return diags
}
