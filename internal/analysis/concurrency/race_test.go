package concurrency

import (
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/mem"
	"sassi/internal/sass"
)

// Write then read of adjacent shared slots: racy in one barrier
// interval, clean when a BAR separates the two accesses.
func TestRacePhaseSeparation(t *testing.T) {
	build := func(withBar bool) *sass.Kernel {
		instrs := []sass.Instruction{
			tidx(0),
			shl(1, 0, 2),  // R1 = 4*tid.x
			sts(1, 0, 0),  // shared[4t] = tid
		}
		if withBar {
			instrs = append(instrs, bar())
		}
		instrs = append(instrs,
			lds(2, 1, 4), // shared[4t+4]: thread t reads thread t+1's slot
			exit(),
		)
		return testKernel(t, [3]int{32, 1, 1}, nil, instrs...)
	}

	diags := checkKernel(t, build(false))
	d, ok := findDiag(diags, analysis.CheckSharedRace, "same barrier interval")
	if !ok {
		t.Fatal("cross-thread write/read in one interval not reported")
	}
	if d.Sev != analysis.Warning {
		t.Errorf("severity = %v, want Warning", d.Sev)
	}

	wantNone(t, checkKernel(t, build(true)))
}

// An address ignoring one block dimension is not injective: two threads
// of the same interval hit the same slot, so even the single STS races
// with itself.
func TestRaceNonInjectiveSelfStore(t *testing.T) {
	k := testKernel(t, [3]int{16, 16, 1}, nil,
		sass.New(sass.OpS2R, []sass.Operand{sass.R(0)}, []sass.Operand{sass.SReg(sass.SRTidY)}),
		shl(1, 0, 2),
		sts(1, 0, 0), // shared[4*tid.y]: collides across tid.x
		exit(),
	)
	if _, ok := findDiag(checkKernel(t, k), analysis.CheckSharedRace, "not provably thread-disjoint"); !ok {
		t.Fatal("non-injective self-store not reported")
	}
	// The same store is injective — hence silent — on a 1-D block where
	// tid.y is constant zero... expressed here via tid.x on a 1-D hint.
	k2 := testKernel(t, [3]int{32, 1, 1}, nil,
		tidx(0),
		shl(1, 0, 2),
		sts(1, 0, 0),
		exit(),
	)
	wantNone(t, checkKernel(t, k2))
}

// Without a block-dimension hint the prover cannot bound tid terms, so
// the injective store is (conservatively) still reported.
func TestRaceNoBlockDimHintConservative(t *testing.T) {
	k := testKernel(t, [3]int{}, nil,
		tidx(0),
		shl(1, 0, 2),
		sts(1, 0, 0),
		exit(),
	)
	if _, ok := findDiag(checkKernel(t, k), analysis.CheckSharedRace, "not provably thread-disjoint"); !ok {
		t.Fatal("expected conservative report without block-dim hint")
	}
}

// Two atomic updates of the same cell serialize: no race. A plain read
// of the atomically-updated cell in the same interval still races.
func TestRaceAtomicsSerialize(t *testing.T) {
	atomShared := func() sass.Instruction {
		return sass.Instruction{Guard: sass.Always, Op: sass.OpATOMS,
			Mods: sass.Mods{Atom: sass.AtomADD},
			Dsts: []sass.Operand{sass.R(2)},
			Srcs: []sass.Operand{sass.Mem(sass.RZ, 0), sass.R(0)}}
	}
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		tidx(0),
		atomShared(),
		atomShared(),
		exit(),
	)
	wantNone(t, checkKernel(t, k))

	k2 := testKernel(t, [3]int{32, 1, 1}, nil,
		tidx(0),
		atomShared(),
		lds(3, sass.RZ, 0), // non-atomic read of the counter, same interval
		exit(),
	)
	if _, ok := findDiag(checkKernel(t, k2), analysis.CheckSharedRace, "not provably thread-disjoint"); !ok {
		t.Fatal("atomic/non-atomic mix not reported")
	}
}

// A generic ST whose constant address lands in the shared window is
// attributed to shared memory and compared against STS addresses in the
// same normalized (generic) form.
func TestRaceGenericConstSharedStore(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		tidx(0),
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(1)}, []sass.Operand{sass.Imm(int64(mem.SharedBase) + 16)}),
		sass.New(sass.OpST, nil, []sass.Operand{sass.Mem(1, 0), sass.R(0)}),
		shl(2, 0, 2),
		lds(3, 2, 0), // shared[4t]: thread 4 reads the ST'd cell
		exit(),
	)
	if _, ok := findDiag(checkKernel(t, k), analysis.CheckSharedRace, "not provably thread-disjoint"); !ok {
		t.Fatal("generic const shared store vs LDS not reported")
	}
}

// Provably disjoint tiles (the sgemm pattern): writes at 4*(16*ty+tx)
// and reads of a second tile 1024 bytes away never alias, even in the
// same interval.
func TestRaceDisjointTilesClean(t *testing.T) {
	k := testKernel(t, [3]int{16, 16, 1}, nil,
		tidx(0),
		sass.New(sass.OpS2R, []sass.Operand{sass.R(1)}, []sass.Operand{sass.SReg(sass.SRTidY)}),
		shl(2, 0, 2),  // 4*tx
		shl(3, 1, 6),  // 64*ty
		sass.New(sass.OpIADD, []sass.Operand{sass.R(4)}, []sass.Operand{sass.R(2), sass.R(3)}),
		sts(4, 0, 0),     // tile A write: 4tx+64ty
		lds(5, 4, 1024),  // tile B read: +1024, same interval
		exit(),
	)
	wantNone(t, checkKernel(t, k))
}

// A guarded BAR does not close the interval (some threads may bypass
// it), so accesses on either side still race.
func TestRaceGuardedBarrierDoesNotSeparate(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		tidx(0),
		setp(0, sass.R(0), sass.Imm(16)),
		shl(1, 0, 2),
		sts(1, 0, 0),
		guarded(bar(), 0, false), // @P0 BAR — flagged by the barrier pass too
		lds(2, 1, 4),
		exit(),
	)
	if _, ok := findDiag(checkKernel(t, k), analysis.CheckSharedRace, "same barrier interval"); !ok {
		t.Fatal("accesses straddling a guarded BAR not reported as racy")
	}
}
