package concurrency

import (
	"strings"
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/sass"
)

// testKernel builds a resolved kernel with a block-dimension hint for the
// disjointness prover (zero dims = no hint).
func testKernel(t *testing.T, dims [3]int, labels map[string]int, instrs ...sass.Instruction) *sass.Kernel {
	t.Helper()
	k := &sass.Kernel{Name: "t", Instrs: instrs, Labels: labels,
		NumRegs: 16, NumPreds: 7, SharedBytes: 4096, BlockDim: dims}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	return k
}

func checkKernel(t *testing.T, k *sass.Kernel) []analysis.Diagnostic {
	t.Helper()
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	return Check(cfg)
}

func findDiag(diags []analysis.Diagnostic, check, substr string) (analysis.Diagnostic, bool) {
	for _, d := range diags {
		if d.Check == check && strings.Contains(d.Msg, substr) {
			return d, true
		}
	}
	return analysis.Diagnostic{}, false
}

func wantNone(t *testing.T, diags []analysis.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %v", d)
	}
}

// Assembly shorthands.

func tidx(r uint8) sass.Instruction {
	return sass.New(sass.OpS2R, []sass.Operand{sass.R(r)}, []sass.Operand{sass.SReg(sass.SRTidX)})
}

func ctaidx(r uint8) sass.Instruction {
	return sass.New(sass.OpS2R, []sass.Operand{sass.R(r)}, []sass.Operand{sass.SReg(sass.SRCtaidX)})
}

func setp(p uint8, a, b sass.Operand) sass.Instruction {
	return sass.Instruction{Guard: sass.Always, Op: sass.OpISETP,
		Mods: sass.Mods{Cmp: sass.CmpLT, Unsigned: true, Logic: sass.LogicAND},
		Dsts: []sass.Operand{sass.P(p)},
		Srcs: []sass.Operand{a, b, sass.P(sass.PT)}}
}

func guarded(in sass.Instruction, p uint8, neg bool) sass.Instruction {
	in.Guard = sass.PredGuard{Reg: p, Neg: neg}
	return in
}

func bra(label string) sass.Instruction {
	return sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label(label)})
}

func ssy(label string) sass.Instruction {
	return sass.New(sass.OpSSY, nil, []sass.Operand{sass.Label(label)})
}

func sync() sass.Instruction { return sass.New(sass.OpSYNC, nil, nil) }

func nop() sass.Instruction { return sass.New(sass.OpNOP, nil, nil) }

func bar() sass.Instruction { return sass.New(sass.OpBAR, nil, nil) }

func exit() sass.Instruction { return sass.New(sass.OpEXIT, nil, nil) }

func shl(d, a uint8, sh int64) sass.Instruction {
	return sass.New(sass.OpSHL, []sass.Operand{sass.R(d)}, []sass.Operand{sass.R(a), sass.Imm(sh)})
}

func sts(base uint8, off int64, data uint8) sass.Instruction {
	return sass.New(sass.OpSTS, nil, []sass.Operand{sass.Mem(base, off), sass.R(data)})
}

func lds(d, base uint8, off int64) sass.Instruction {
	return sass.New(sass.OpLDS, []sass.Operand{sass.R(d)}, []sass.Operand{sass.Mem(base, off)})
}
