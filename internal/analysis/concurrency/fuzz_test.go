package concurrency

import (
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/sass"
)

// fuzzSharedKernel is a seed exercising both concurrency passes: a
// tid-indexed STS, a guarded BAR under a tid-dependent predicate (the
// barrier pass's worst case), an unguarded BAR, and an offset LDS in the
// next interval.
func fuzzSharedKernel(tb testing.TB) *sass.Kernel {
	eq := sass.Instruction{Guard: sass.Always, Op: sass.OpISETP,
		Mods: sass.Mods{Cmp: sass.CmpEQ, Unsigned: true, Logic: sass.LogicAND},
		Dsts: []sass.Operand{sass.P(0)},
		Srcs: []sass.Operand{sass.R(2), sass.Imm(0), sass.P(sass.PT)}}
	k := &sass.Kernel{
		Name: "fuzzshared", NumRegs: 16, NumPreds: 7,
		SharedBytes: 4096, BlockDim: [3]int{64, 1, 1},
		Instrs: []sass.Instruction{
			sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
			sass.New(sass.OpSHL, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(2)}),
			sass.New(sass.OpSTS, nil, []sass.Operand{sass.Mem(3, 0), sass.R(2)}),
			eq,
			sass.New(sass.OpBAR, nil, nil).WithGuard(sass.PredGuard{Reg: 0}),
			sass.New(sass.OpBAR, nil, nil),
			sass.New(sass.OpLDS, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Mem(3, 4)}),
			sass.New(sass.OpEXIT, nil, nil),
		},
	}
	if err := k.ResolveLabels(); err != nil {
		tb.Fatal(err)
	}
	return k
}

// FuzzConcurrencyCheck feeds mutated kernel encodings through the decoder
// and the concurrency passes directly: whatever kernel decodes, barrier
// and race analysis must diagnose or stay silent, never panic. (The
// analysis package's FuzzVerify cannot reach these passes — registering
// them there would be an import cycle — so they get their own target.)
func FuzzConcurrencyCheck(f *testing.F) {
	seed, err := fuzzSharedKernel(f).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	truncated := append([]byte(nil), seed[:len(seed)/2]...)
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound decode cost
		}
		k := new(sass.Kernel)
		if err := k.UnmarshalBinary(data); err != nil {
			return // rejecting garbage is the expected path
		}
		// Registered kernel checks run only on structurally valid kernels
		// (in-range operands, resolved labels) — honour that contract here
		// exactly as VerifyKernel does.
		if analysis.HasErrors(analysis.CheckStructure(k)) {
			return
		}
		cfg, err := sass.BuildCFG(k)
		if err != nil {
			return // unbuildable CFGs are the structural pass's problem
		}
		for _, d := range Check(cfg) {
			_ = d.String()
		}
	})
}
