package concurrency

import (
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/workloads"
)

// TestBuiltinWorkloadsClean asserts both concurrency passes are silent —
// not even warnings — on every built-in workload: the acceptance bar for
// running them under sassi-lint -Werror in CI.
func TestBuiltinWorkloadsClean(t *testing.T) {
	for _, name := range workloads.Names() {
		spec, _ := workloads.Get(name)
		prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		for _, k := range prog.Kernels {
			cfg, err := sass.BuildCFG(k)
			if err != nil {
				t.Fatalf("%s/%s: cfg: %v", name, k.Name, err)
			}
			for _, d := range Check(cfg) {
				t.Errorf("%s: %v", name, d)
			}
		}
	}
}
