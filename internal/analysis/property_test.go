package analysis_test

import (
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/workloads"
)

// TestWorkloadDataflowProperties cross-checks the generic dataflow
// framework against the instruction-level analyses in internal/sass on
// every kernel of every built-in workload:
//
//  1. BlockLiveness (framework, block granularity) agrees with
//     sass.ComputeLiveness (hand-rolled, instruction granularity) at every
//     block boundary — two independent implementations of the paper's
//     "compiler knows exactly which registers to spill" claim;
//  2. every maybe-uninitialized read MaybeUninitReads reports is of a
//     register that liveness also sees as live at the reading instruction;
//  3. every genuine register source read either has a reaching definition
//     or is reported by the definite-assignment analysis (nothing reads a
//     value no analysis can account for);
//  4. the entry block dominates every reachable block.
func TestWorkloadDataflowProperties(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, _ := workloads.Get(name)
			prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range prog.Kernels {
				checkKernelProperties(t, k)
			}
		})
	}
}

func checkKernelProperties(t *testing.T, k *sass.Kernel) {
	t.Helper()
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatalf("kernel %s: %v", k.Name, err)
	}
	li := sass.ComputeLiveness(cfg)
	ls := analysis.BlockLiveness(cfg)
	ri := analysis.ReachingDefs(cfg)
	dom := analysis.Dominators(cfg)
	uninit := analysis.MaybeUninitReads(cfg)

	// (1) Framework liveness vs instruction-level liveness at block starts.
	for _, blk := range cfg.Blocks {
		if blk.Start >= len(k.Instrs) {
			continue
		}
		in := ls.In[blk.ID]
		for r := 0; r < sass.NumGPR; r++ {
			if got, want := in.Has(analysis.GPRBit(uint8(r))), li.LiveIn[blk.Start].Has(uint8(r)); got != want {
				t.Errorf("kernel %s block %d: R%d live-in: framework=%t instruction-level=%t",
					k.Name, blk.ID, r, got, want)
			}
		}
		for p := uint8(0); p < sass.NumPred; p++ {
			if got, want := in.Has(analysis.PredBit(p)), li.PredLiveIn[blk.Start].Has(p); got != want {
				t.Errorf("kernel %s block %d: P%d live-in: framework=%t instruction-level=%t",
					k.Name, blk.ID, p, got, want)
			}
		}
		if got, want := in.Has(analysis.CCBit()), li.CCLiveIn[blk.Start]; got != want {
			t.Errorf("kernel %s block %d: CC live-in: framework=%t instruction-level=%t",
				k.Name, blk.ID, got, want)
		}
	}

	// (2) Every maybe-uninit read is of a register live at the read.
	uninitAt := map[[2]int]bool{}
	for _, u := range uninit {
		uninitAt[[2]int{u.Instr, u.Reg}] = true
		bit := u.Reg
		switch {
		case bit < analysis.PredBit(0):
			if !li.LiveIn[u.Instr].Has(uint8(bit)) {
				t.Errorf("kernel %s@%d: uninit read of %s but liveness says dead",
					k.Name, u.Instr, analysis.RegSpaceName(bit))
			}
		case bit < analysis.CCBit():
			if !li.PredLiveIn[u.Instr].Has(uint8(bit - analysis.PredBit(0))) {
				t.Errorf("kernel %s@%d: uninit read of %s but liveness says dead",
					k.Name, u.Instr, analysis.RegSpaceName(bit))
			}
		default:
			if !li.CCLiveIn[u.Instr] {
				t.Errorf("kernel %s@%d: uninit read of CC but liveness says dead", k.Name, u.Instr)
			}
		}
	}

	// Reachability from the entry block, for (3) and (4).
	reachable := make([]bool, len(cfg.Blocks))
	stack := []int{0}
	reachable[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cfg.Blocks[b].Succs {
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}

	// (3) Accounted reads: reaching def, def-assign report, or the
	// ABI-initialized stack pointer.
	for i := range k.Instrs {
		if !reachable[cfg.BlockOf(i).ID] {
			continue
		}
		for _, r := range k.Instrs[i].GPRSrcs() {
			if int(r) == sass.SP {
				continue
			}
			bit := analysis.GPRBit(r)
			if len(ri.ReachingAt(i, bit)) == 0 && !uninitAt[[2]int{i, bit}] {
				t.Errorf("kernel %s@%d: R%d read with no reaching def and no def-assign finding", k.Name, i, r)
			}
		}
		for _, p := range k.Instrs[i].PredSrcs() {
			bit := analysis.PredBit(p)
			if len(ri.ReachingAt(i, bit)) == 0 && !uninitAt[[2]int{i, bit}] {
				t.Errorf("kernel %s@%d: P%d read with no reaching def and no def-assign finding", k.Name, i, p)
			}
		}
	}

	// (4) The entry block dominates every reachable block.
	for _, blk := range cfg.Blocks {
		if reachable[blk.ID] && !analysis.Dominates(dom, 0, blk.ID) {
			t.Errorf("kernel %s: entry does not dominate reachable block %d", k.Name, blk.ID)
		}
	}
}
