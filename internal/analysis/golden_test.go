package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDiagnosticFormattingGolden pins the rendered diagnostic format (and
// SortDiagnostics' ordering) against a checked-in golden file: tools like
// sassi-lint print these lines, so the format is an interface.
func TestDiagnosticFormattingGolden(t *testing.T) {
	diags := []Diagnostic{
		{Sev: Warning, Check: CheckDefAssign, Kernel: "saxpy", Instr: 4,
			Msg: "R7 may be read before assignment"},
		{Sev: Error, Check: CheckDivergence, Kernel: "saxpy", Instr: 4,
			Msg: "SYNC with empty divergence stack (warp would silently retire)"},
		{Sev: Error, Check: CheckStructural, File: "examples/bad.sptx", Kernel: "saxpy", Instr: 0,
			Msg: "BRA target 99 is past the kernel end (12 instructions)"},
		{Sev: Error, Check: CheckRoundTrip, Kernel: "reduce", Instr: -1,
			Msg: "instruction count 12 became 11"},
		{Sev: Error, Check: CheckInstrSafety, Kernel: "reduce", Instr: 33,
			Msg: "live R4 is not saved before the handler call (handlers may clobber R0..R15)"},
		{Sev: Warning, Check: CheckStructural, Kernel: "reduce", Instr: 33,
			Msg: "result is discarded (every destination is RZ/PT)"},
	}
	SortDiagnostics(diags)
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()

	golden := filepath.Join("testdata", "diagnostics.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/analysis` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("diagnostic rendering changed.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
