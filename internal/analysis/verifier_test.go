package analysis

import (
	"strings"
	"testing"

	"sassi/internal/sass"
)

// testKernel builds a resolved kernel for checker tests, mirroring the
// buildKernel helper of the sass package tests.
func testKernel(t *testing.T, labels map[string]int, instrs ...sass.Instruction) *sass.Kernel {
	t.Helper()
	k := &sass.Kernel{Name: "t", Instrs: instrs, Labels: labels, NumRegs: 16, NumPreds: 7}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	return k
}

// findDiag returns the first diagnostic of the given check class whose
// message contains substr.
func findDiag(diags []Diagnostic, check, substr string) (Diagnostic, bool) {
	for _, d := range diags {
		if d.Check == check && strings.Contains(d.Msg, substr) {
			return d, true
		}
	}
	return Diagnostic{}, false
}

func wantError(t *testing.T, diags []Diagnostic, check, substr string) {
	t.Helper()
	d, ok := findDiag(diags, check, substr)
	if !ok {
		t.Fatalf("no %s diagnostic containing %q in %v", check, substr, diags)
	}
	if d.Sev != Error {
		t.Fatalf("%v: want error severity", d)
	}
}

func wantClean(t *testing.T, diags []Diagnostic) {
	t.Helper()
	for _, d := range Errors(diags) {
		t.Errorf("unexpected error: %v", d)
	}
}

func TestVerifyKernelCleanKernel(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(7)}),
		sass.New(sass.OpIADD, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(1)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	wantClean(t, VerifyKernel(k))
}

func TestStructuralBadBranchTarget(t *testing.T) {
	k := testKernel(t, map[string]int{"far": 99},
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("far")}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	wantError(t, CheckStructure(k), CheckStructural, "past the kernel end")
}

func TestStructuralUnresolvedLabel(t *testing.T) {
	// Bypass ResolveLabels: the operand keeps Imm=-1 as a decoder would
	// leave a dangling target.
	k := &sass.Kernel{Name: "t", NumRegs: 4, Instrs: []sass.Instruction{
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("nowhere")}),
		sass.New(sass.OpEXIT, nil, nil),
	}}
	wantError(t, CheckStructure(k), CheckStructural, "unresolved")
}

func TestStructuralFallsOffEnd(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(1)}),
		sass.New(sass.OpEXIT, nil, nil).WithGuard(sass.PredGuard{Reg: 0}),
	)
	wantError(t, CheckStructure(k), CheckStructural, "fall off the kernel end")
}

func TestStructuralNoExit(t *testing.T) {
	k := testKernel(t, map[string]int{"top": 0},
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(1)}),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("top")}),
	)
	wantError(t, CheckStructure(k), CheckStructural, "no EXIT")
}

func TestStructuralRegisterOverAllocation(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(20)}, []sass.Operand{sass.Imm(1)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	k.NumRegs = 4
	wantError(t, CheckStructure(k), CheckStructural, "exceeds the kernel's register allocation")
}

func TestStructuralDiscardedResultWarns(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpIADD, []sass.Operand{sass.R(sass.RZ)}, []sass.Operand{sass.Imm(1), sass.Imm(2)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	d, ok := findDiag(CheckStructure(k), CheckStructural, "discarded")
	if !ok || d.Sev != Warning {
		t.Fatalf("want discarded-result warning, got %v", CheckStructure(k))
	}
}

func TestDivergenceSyncOnEmptyStack(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpSYNC, nil, nil),
		sass.New(sass.OpEXIT, nil, nil),
	)
	wantError(t, CheckDivergenceStack(k), CheckDivergence, "empty divergence stack")
}

func TestDivergenceBalancedDiamondClean(t *testing.T) {
	k := testKernel(t, map[string]int{"else": 3, "reconv": 4},
		sass.New(sass.OpSSY, nil, []sass.Operand{sass.Label("reconv")}),                            // 0
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("else")}).WithGuard(sass.PredGuard{Reg: 0, Neg: true}), // 1
		sass.New(sass.OpSYNC, nil, nil), // 2: then arm
		sass.New(sass.OpSYNC, nil, nil), // 3: else arm
		sass.New(sass.OpEXIT, nil, nil), // 4: reconv
	)
	wantClean(t, CheckDivergenceStack(k))
}

func TestDivergenceUnbalancedSSY(t *testing.T) {
	// The SYNC on the else arm is missing: the path through "else" reaches
	// EXIT with a leftover entry (fine), but the fall-through path past the
	// reconvergence point SYNCs twice — the second pop finds an empty stack.
	k := testKernel(t, map[string]int{"reconv": 2},
		sass.New(sass.OpSSY, nil, []sass.Operand{sass.Label("reconv")}), // 0
		sass.New(sass.OpSYNC, nil, nil),                                 // 1
		sass.New(sass.OpSYNC, nil, nil),                                 // 2: reconv — stack now empty
		sass.New(sass.OpEXIT, nil, nil),                                 // 3
	)
	wantError(t, CheckDivergenceStack(k), CheckDivergence, "empty divergence stack")
}

func TestDivergenceRetOnEmptyCallStack(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpRET, nil, nil),
		sass.New(sass.OpEXIT, nil, nil),
	)
	wantError(t, CheckDivergenceStack(k), CheckDivergence, "empty call stack")
}

func TestDivergenceUnboundedRecursion(t *testing.T) {
	k := testKernel(t, map[string]int{"rec": 0},
		sass.New(sass.OpCAL, nil, []sass.Operand{sass.Label("rec")}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	wantError(t, CheckDivergenceStack(k), CheckDivergence, "call stack exceeds depth")
}

func TestDefAssignReadBeforeDef(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpIADD, []sass.Operand{sass.R(2)}, []sass.Operand{sass.R(5), sass.Imm(1)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckDefiniteAssignment(cfg)
	d, ok := findDiag(diags, CheckDefAssign, "R5 may be read before assignment")
	if !ok {
		t.Fatalf("uninitialized R5 read not reported: %v", diags)
	}
	if d.Sev != Warning {
		t.Fatalf("def-assign findings must be warnings, got %v", d)
	}
}

// TestDefAssignSameGuardCarryPair is the regression test for the
// if-converted carry-chain pattern (@P0 IADD.CC ; @P0 IADD.X): the guarded
// def of CC does not definitely assign, but the read under the same guard
// executes exactly when the def did and must not be flagged.
func TestDefAssignSameGuardCarryPair(t *testing.T) {
	cc := sass.New(sass.OpIADD, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(1)}).WithGuard(sass.PredGuard{Reg: 0})
	cc.Mods.SetCC = true
	x := sass.New(sass.OpIADD, []sass.Operand{sass.R(4)}, []sass.Operand{sass.R(2), sass.Imm(0)}).WithGuard(sass.PredGuard{Reg: 0})
	x.Mods.X = true
	k := testKernel(t, nil,
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(1)}),
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(0), sass.P(sass.PT)}),
		cc,
		x,
		sass.New(sass.OpEXIT, nil, nil),
	)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := findDiag(CheckDefiniteAssignment(cfg), CheckDefAssign, "CC"); ok {
		t.Fatalf("same-guard carry read flagged: %v", d)
	}
}

// TestDefAssignGuardRedefinitionInvalidates: redefining the guard predicate
// between the guarded def and the guarded read breaks the executes-together
// argument, so the CC read must be flagged again.
func TestDefAssignGuardRedefinitionInvalidates(t *testing.T) {
	cc := sass.New(sass.OpIADD, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(1)}).WithGuard(sass.PredGuard{Reg: 0})
	cc.Mods.SetCC = true
	x := sass.New(sass.OpIADD, []sass.Operand{sass.R(4)}, []sass.Operand{sass.R(2), sass.Imm(0)}).WithGuard(sass.PredGuard{Reg: 0})
	x.Mods.X = true
	k := testKernel(t, nil,
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(1)}),
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(0), sass.P(sass.PT)}),
		cc,
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(1), sass.P(sass.PT)}),
		x,
		sass.New(sass.OpEXIT, nil, nil),
	)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findDiag(CheckDefiniteAssignment(cfg), CheckDefAssign, "CC may be read"); !ok {
		t.Fatal("CC read after guard redefinition not flagged")
	}
}

func TestRoundTripEncodingClean(t *testing.T) {
	ld := sass.New(sass.OpLDG, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Mem(2, 8)})
	ld.Mods.E = true
	ld.Mods.Width = sass.W64
	k := testKernel(t, map[string]int{"out": 3},
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.CMem(0, sass.ParamBase)}),
		ld,
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("out")}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	k.AddParam("p", 8)
	wantClean(t, CheckRoundTripEncoding(k))
}

// TestRoundTripDiffDetectsCorruption demonstrates the round-trip check's
// comparison core catching a broken decode: the re-decoded copy is mutated
// field by field and every mutation must surface.
func TestRoundTripDiffDetectsCorruption(t *testing.T) {
	k := testKernel(t, map[string]int{"l": 1},
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(7)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	decode := func() *sass.Kernel {
		data, err := k.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var dec sass.Kernel
		if err := dec.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		return &dec
	}

	if diags := DiffKernels(k, decode(), CheckRoundTrip); len(diags) != 0 {
		t.Fatalf("identical kernels differ: %v", diags)
	}

	mutations := []struct {
		name   string
		mutate func(*sass.Kernel)
		want   string
	}{
		{"opcode", func(d *sass.Kernel) { d.Instrs[0].Op = sass.OpIADD }, "opcode"},
		{"immediate", func(d *sass.Kernel) { d.Instrs[0].Srcs[0].Imm = 8 }, "source"},
		{"guard", func(d *sass.Kernel) { d.Instrs[1].Guard = sass.PredGuard{Reg: 0} }, "guard"},
		{"numregs", func(d *sass.Kernel) { d.NumRegs++ }, "register counts"},
		{"label", func(d *sass.Kernel) { d.Labels["l"] = 0 }, "label"},
		{"instr-count", func(d *sass.Kernel) { d.Instrs = d.Instrs[:1] }, "instruction count"},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			d := decode()
			m.mutate(d)
			wantError(t, DiffKernels(k, d, CheckRoundTrip), CheckRoundTrip, m.want)
		})
	}
}

func TestVerifyLinkageUnknownHandler(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpJCAL, nil, []sass.Operand{sass.Sym("ghost_handler")}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	prog := sass.NewProgram()
	prog.AddKernel(k)
	wantError(t, Verify(prog), CheckStructural, "absent from the program handler table")

	prog.InternHandler("ghost_handler")
	wantClean(t, Verify(prog))
}
