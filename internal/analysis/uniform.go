package analysis

// Exported per-instruction uniformity queries over the affine value
// lattice. The predecoded execution engine (internal/sim) keys its
// uniform-warp fast path off these bits, and sassi-lint's `uniformity`
// mode dumps them so fast-path coverage is inspectable: a lattice
// regression shows up as a golden-file diff before it shows up as a
// missed speedup.

import "sassi/internal/sass"

// InstrUniformity is what the lattice proves about one instruction's
// inputs. Both bits are warp-level claims: they hold for every dynamic
// execution of the instruction by any warp.
type InstrUniformity struct {
	// GuardUniform: the guard predicate (or "always") evaluates
	// identically on every lane of a warp, so the instruction executes
	// all-lanes-or-none.
	GuardUniform bool
	// SrcsUniform: every source read — GPRs (including memory-operand
	// base registers), immediates, constant-bank words, special
	// registers, predicate operands, and the carry-in when .X is used —
	// is warp-uniform, so one lane's computation equals every lane's.
	SrcsUniform bool
}

// Uniform reports whether the instruction is fully uniform: executed by
// all lanes or none, with every lane computing the same values.
func (u InstrUniformity) Uniform() bool { return u.GuardUniform && u.SrcsUniform }

// Uniformity returns the lattice's uniformity facts for instruction idx,
// observing the same predication view OperandValue uses: a guarded
// instruction's sources see exact values defined earlier under the same
// guard.
func (v *Valuation) Uniformity(idx int) InstrUniformity {
	in := &v.cfg.Kernel.Instrs[idx]
	s := v.at[idx]
	out := InstrUniformity{GuardUniform: v.GuardFacts(idx).Uniform}
	if g := in.Guard; !g.IsAlways() && s.gregs != nil && s.g == g {
		old := s.viewG
		s.viewG = true
		out.SrcsUniform = srcsUniform(s, in)
		s.viewG = old
	} else {
		out.SrcsUniform = srcsUniform(s, in)
	}
	return out
}

// KernelUniformity runs the value analysis over one kernel and returns
// the per-instruction uniformity facts, indexed by instruction. It is
// the one-call form the simulator's predecoder and sassi-lint share.
func KernelUniformity(k *sass.Kernel) ([]InstrUniformity, error) {
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		return nil, err
	}
	v := AnalyzeValues(cfg)
	out := make([]InstrUniformity, len(k.Instrs))
	for i := range k.Instrs {
		out[i] = v.Uniformity(i)
	}
	return out, nil
}
