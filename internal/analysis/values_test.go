package analysis

import (
	"testing"

	"sassi/internal/sass"
)

func analyze(t *testing.T, k *sass.Kernel) *Valuation {
	t.Helper()
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	return AnalyzeValues(cfg)
}

func TestValuesAffineTidTracking(t *testing.T) {
	// R2 = tid.x; R3 = R2 << 2; R4 = R3 + c[0][0x140]; R5 = R4 + 16.
	k := testKernel(t, nil,
		sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
		sass.New(sass.OpSHL, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(2)}),
		sass.New(sass.OpIADD, []sass.Operand{sass.R(4)}, []sass.Operand{sass.R(3), sass.CMem(0, 0x140)}),
		sass.New(sass.OpIADD32, []sass.Operand{sass.R(5)}, []sass.Operand{sass.R(4), sass.Imm(16)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	v := analyze(t, k)

	r5 := v.RegValue(4, 5) // state before EXIT
	if !r5.Known {
		t.Fatalf("R5 not known: %+v", r5)
	}
	if r5.Tid[TermTidX] != 4 || r5.Const != 16 {
		t.Errorf("R5 = %+v, want 4*tid.x + sym + 16", r5)
	}
	if c := r5.SymCoeff(Sym{Kind: SymCMem, Bank: 0, Off: 0x140}); c != 1 {
		t.Errorf("param coefficient = %d, want 1", c)
	}
	if r5.IsUniform() {
		t.Error("tid-derived value reported uniform")
	}
}

func TestValuesUniformity(t *testing.T) {
	// R2 = ctaid.x (CTA-uniform); R3 = tid.x; P0 = (R3 < R2): tid-dep,
	// non-uniform. P1 = (R2 < 5): uniform.
	k := testKernel(t, nil,
		sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRCtaidX)}),
		sass.New(sass.OpS2R, []sass.Operand{sass.R(3)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(3), sass.R(2), sass.P(sass.PT)}),
		sass.New(sass.OpISETP, []sass.Operand{sass.P(1)}, []sass.Operand{sass.R(2), sass.Imm(5), sass.P(sass.PT)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	v := analyze(t, k)

	if !v.RegValue(2, 2).IsUniform() {
		t.Error("ctaid.x not uniform")
	}
	if v.RegValue(2, 3).IsUniform() {
		t.Error("tid.x reported uniform")
	}
	exit := 4
	if p0 := v.PredAt(exit, 0); p0.Uniform || !p0.TidDep {
		t.Errorf("P0 facts = %+v, want non-uniform tid-dep", p0)
	}
	if p1 := v.PredAt(exit, 1); !p1.Uniform || p1.TidDep {
		t.Errorf("P1 facts = %+v, want uniform non-tid-dep", p1)
	}
}

func TestValuesJoinAtMerge(t *testing.T) {
	// Diamond: both arms write R4; equal values survive the join, unequal
	// degrade to Unknown non-uniform (branch is tid-dependent).
	k := testKernel(t, map[string]int{"else": 5, "join": 6},
		sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRTidX)}),       // 0
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(3), sass.P(sass.PT)}), // 1
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("else")}).WithGuard(sass.PredGuard{Reg: 0, Neg: true}), // 2
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Imm(7)}),  // 3: then
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("join")}),                   // 4
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Imm(9)}),  // 5: else
		sass.New(sass.OpEXIT, nil, nil),                                                 // 6: join
	)
	v := analyze(t, k)
	r4 := v.RegValue(6, 4)
	if r4.Known || r4.IsUniform() {
		t.Errorf("R4 at join = %+v, want unknown non-uniform", r4)
	}
}

func TestValuesGuardedWrite(t *testing.T) {
	// A guarded redefinition joins with the incoming value: same constant
	// keeps it known; different constant under a non-uniform guard
	// degrades to unknown non-uniform.
	k := testKernel(t, nil,
		sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(3), sass.P(sass.PT)}),
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Imm(7)}),
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(5)}, []sass.Operand{sass.Imm(7)}),
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Imm(7)}).WithGuard(sass.PredGuard{Reg: 0}), // same value
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(5)}, []sass.Operand{sass.Imm(9)}).WithGuard(sass.PredGuard{Reg: 0}), // different
		sass.New(sass.OpEXIT, nil, nil),
	)
	v := analyze(t, k)
	exit := 6
	if r4 := v.RegValue(exit, 4); !r4.Known || r4.Const != 7 {
		t.Errorf("R4 = %+v, want known 7 (guarded same-value write)", r4)
	}
	if r5 := v.RegValue(exit, 5); r5.Known || r5.IsUniform() {
		t.Errorf("R5 = %+v, want unknown non-uniform (guarded different write)", r5)
	}
}

func TestValuesLoopInductionNotStable(t *testing.T) {
	// R4 is an induction variable: must be Unknown at the loop body, never
	// a fabricated symbol a disjointness proof could cancel.
	k := testKernel(t, map[string]int{"head": 1, "done": 6},
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Imm(0)}),              // 0
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(4), sass.Imm(64), sass.P(sass.PT)}), // 1: head
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("done")}).WithGuard(sass.PredGuard{Reg: 0, Neg: true}),  // 2
		sass.New(sass.OpIADD, []sass.Operand{sass.R(4)}, []sass.Operand{sass.R(4), sass.Imm(4)}),   // 3: body
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("head")}),                              // 4
		sass.New(sass.OpNOP, nil, nil),                                                             // 5 (unreachable pad)
		sass.New(sass.OpEXIT, nil, nil),                                                            // 6: done
	)
	v := analyze(t, k)
	// At the loop head (after at least one back edge merge), R4 is 0 ⊔ 4k.
	if r4 := v.RegValue(1, 4); r4.Known {
		t.Errorf("induction variable known at loop head: %+v", r4)
	}
	// It is still warp-uniform: every lane runs the same trip count here.
	if r4 := v.RegValue(1, 4); !r4.IsUniform() {
		t.Errorf("loop counter lost uniformity: %+v", r4)
	}
}

func TestValuesWarpIDNotASymbol(t *testing.T) {
	// warpid is warp-uniform but thread-varying: it must never appear as a
	// cancellable symbol.
	k := testKernel(t, nil,
		sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRWarpID)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	v := analyze(t, k)
	r2 := v.RegValue(1, 2)
	if r2.Known {
		t.Errorf("warpid tracked as known form: %+v", r2)
	}
	if !r2.IsUniform() {
		t.Error("warpid should be warp-uniform")
	}
}

func val(c int64, tidX, tidY, lane int64) Value {
	v := Value{Known: true, Const: c}
	v.Tid[TermTidX] = tidX
	v.Tid[TermTidY] = tidY
	v.Tid[TermLane] = lane
	return v
}

func TestDisjointConstSeparation(t *testing.T) {
	if !DisjointAcrossThreads(val(0, 0, 0, 0), 4, val(64, 0, 0, 0), 4, BlockDims{}) {
		t.Error("constant offsets 0 and 64 (width 4) not proven disjoint")
	}
	if DisjointAcrossThreads(val(0, 0, 0, 0), 4, val(2, 0, 0, 0), 4, BlockDims{}) {
		t.Error("overlapping constants proven disjoint")
	}
}

func TestDisjointSymbolCancellation(t *testing.T) {
	s := Sym{Kind: SymCMem, Bank: 0, Off: 0x140}
	a := Value{Known: true, Syms: map[Sym]int64{s: 1}}
	b := Value{Known: true, Const: 1024, Syms: map[Sym]int64{s: 1}}
	if !DisjointAcrossThreads(a, 4, b, 4, BlockDims{}) {
		t.Error("sym+0 vs sym+1024 not proven disjoint")
	}
	// Mismatched coefficients must not cancel.
	c := Value{Known: true, Const: 1024, Syms: map[Sym]int64{s: 2}}
	if DisjointAcrossThreads(a, 4, c, 4, BlockDims{}) {
		t.Error("mismatched symbol coefficients proven disjoint")
	}
}

func TestDisjointIntervalSgemmTiles(t *testing.T) {
	// sgemm: myA = 4*(ty*16+tx) + offA, myB = same + offB with the two
	// tiles 1024 bytes apart. Interval test over a 16x16 block.
	dims := BlockDims{X: 16, Y: 16, Z: 1}
	a := val(0, 4, 64, 0)
	b := val(1024, 4, 64, 0)
	if !DisjointAcrossThreads(a, 4, b, 4, dims) {
		t.Error("tile A vs tile B not proven disjoint")
	}
	if !DisjointAcrossThreads(b, 4, a, 4, dims) {
		t.Error("tile B vs tile A not proven disjoint (asymmetric)")
	}
	// Without the hint the tid terms are unbounded: no proof.
	if DisjointAcrossThreads(a, 4, b, 4, BlockDims{}) {
		t.Error("proved disjoint without block-dim hint")
	}
}

func TestDisjointInjectivity(t *testing.T) {
	dims := BlockDims{X: 16, Y: 16, Z: 1}
	a := val(0, 4, 64, 0)
	// Same expression, distinct threads: 4tx+64ty is injective on 16x16
	// with stride >= width 4.
	if !DisjointAcrossThreads(a, 4, a, 4, dims) {
		t.Error("injective tile index not proven disjoint")
	}
	// Width 8 overlaps neighbouring elements.
	if DisjointAcrossThreads(a, 8, a, 8, dims) {
		t.Error("width-8 accesses on stride-4 index proven disjoint")
	}
	// A dimension with extent > 1 but coefficient 0 collides.
	b := val(0, 4, 0, 0)
	if DisjointAcrossThreads(b, 4, b, 4, dims) {
		t.Error("index ignoring tid.y proven disjoint on a 2-D block")
	}
	// ... but is fine when that dimension has extent 1.
	if !DisjointAcrossThreads(b, 4, b, 4, BlockDims{X: 16, Y: 1, Z: 1}) {
		t.Error("4*tid.x not proven disjoint on a 1-D block")
	}
	// Lane terms cannot distinguish threads (two threads share a lane).
	l := val(0, 0, 0, 4)
	if DisjointAcrossThreads(l, 4, l, 4, BlockDims{X: 64, Y: 1, Z: 1}) {
		t.Error("lane-based index proven disjoint across threads")
	}
}

func TestDisjointUnknownNeverProven(t *testing.T) {
	u := Value{}
	if DisjointAcrossThreads(u, 4, val(0, 0, 0, 0), 4, BlockDims{X: 16, Y: 1, Z: 1}) {
		t.Error("unknown value proven disjoint")
	}
}

func TestSingleThreadZero(t *testing.T) {
	d1 := BlockDims{X: 64, Y: 1, Z: 1}
	// tid.x - 0: exactly thread 0 satisfies it.
	if !SingleThreadZero(val(0, 1, 0, 0), d1) {
		t.Error("tid.x == 0 not proven single-thread")
	}
	// tid.x - 7 == 0 likewise selects one thread.
	if !SingleThreadZero(val(-7, 1, 0, 0), d1) {
		t.Error("tid.x == 7 not proven single-thread")
	}
	// 4*tx + 64*ty on a 16x16 block: injective, so at most one zero.
	if !SingleThreadZero(val(0, 4, 64, 0), BlockDims{X: 16, Y: 16, Z: 1}) {
		t.Error("injective 2-D form not proven single-thread")
	}
	// No tid term: the compare is thread-invariant, all-or-nothing.
	if SingleThreadZero(val(0, 0, 0, 0), d1) {
		t.Error("constant form proven single-thread")
	}
	// tid.x on a 2-D block ignores tid.y: a whole row satisfies it.
	if SingleThreadZero(val(0, 1, 0, 0), BlockDims{X: 16, Y: 16, Z: 1}) {
		t.Error("form ignoring tid.y proven single-thread on a 2-D block")
	}
	// Lane terms repeat across warps.
	if SingleThreadZero(val(0, 0, 0, 1), d1) {
		t.Error("lane-based form proven single-thread")
	}
	// Unknown dims or unknown value: no proof.
	if SingleThreadZero(val(0, 1, 0, 0), BlockDims{}) {
		t.Error("proved single-thread without block-dim hint")
	}
	if SingleThreadZero(Value{}, d1) {
		t.Error("unknown value proven single-thread")
	}
}
