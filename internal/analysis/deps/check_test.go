package deps_test

import (
	"testing"

	"sassi/internal/analysis"
	_ "sassi/internal/analysis/deps" // registers the schedule check
	"sassi/internal/sass"
)

func scheduleDiags(k *sass.Kernel) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range analysis.VerifyKernel(k) {
		if d.Check == analysis.CheckSchedule {
			out = append(out, d)
		}
	}
	return out
}

// permute reorders k's instructions so that position p holds original
// instruction perm[p], recording the provenance in SchedOrig.
func permute(k *sass.Kernel, perm []int) {
	instrs := make([]sass.Instruction, len(k.Instrs))
	for p, o := range perm {
		instrs[p] = k.Instrs[o]
	}
	k.Instrs = instrs
	k.SchedOrig = perm
}

func TestCheckScheduleAcceptsLegalReorder(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1), // independent of
		movi(1, 2), // this one
		iadd(2, 0, 1),
		exit(),
	)
	permute(k, []int{1, 0, 2, 3}) // swap the independent pair
	if diags := scheduleDiags(k); len(diags) != 0 {
		t.Fatalf("legal reorder rejected: %v", diags)
	}
	// No SchedOrig: nothing to certify.
	k2 := testKernel(t, [3]int{32, 1, 1}, nil, movi(0, 1), exit())
	if diags := scheduleDiags(k2); len(diags) != 0 {
		t.Fatalf("unscheduled kernel reported: %v", diags)
	}
}

func TestCheckScheduleRejectsInvertedRAW(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1),
		iadd(1, 0, 0), // RAW on R0
		movi(2, 3),
		exit(),
	)
	// Claim the original order was (iadd before movi R0): the reconstructed
	// original has the RAW edge inverted by the "schedule".
	permute(k, []int{1, 0, 2, 3})
	diags := scheduleDiags(k)
	if len(diags) == 0 {
		t.Fatal("inverted RAW dependence not reported")
	}
}

func TestCheckScheduleRejectsMalformedPermutation(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1),
		movi(1, 2),
		exit(),
	)
	k.SchedOrig = []int{0, 0, 2} // duplicate
	if len(scheduleDiags(k)) == 0 {
		t.Fatal("duplicate SchedOrig entry not reported")
	}
	k.SchedOrig = []int{0, 1} // wrong length
	if len(scheduleDiags(k)) == 0 {
		t.Fatal("truncated SchedOrig not reported")
	}
	k.SchedOrig = []int{0, 3, 1} // out of range
	if len(scheduleDiags(k)) == 0 {
		t.Fatal("out-of-range SchedOrig entry not reported")
	}
}

func TestCheckScheduleRejectsBlockEscape(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, map[string]int{"L": 2},
		movi(0, 1),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("L")}),
		movi(1, 2), // L:
		exit(),
	)
	// Swap across the branch: instruction 2 claims to have been 0.
	permute(k, []int{2, 1, 0, 3})
	found := false
	for _, d := range scheduleDiags(k) {
		if d.Sev == analysis.Error {
			found = true
		}
	}
	if !found {
		t.Fatal("cross-block permutation not reported")
	}
}

func TestCheckScheduleRegistered(t *testing.T) {
	for _, name := range analysis.RegisteredChecks() {
		if name == analysis.CheckSchedule {
			return
		}
	}
	t.Fatal("schedule check not registered")
}
