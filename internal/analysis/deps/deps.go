// Package deps builds static dependence DAGs over SASS kernels: the
// legality foundation of the instruction scheduler (internal/ptxas) and
// the `schedule` verifier check.
//
// Within each basic block, instructions become DAG nodes and edges record
// the constraints any reordering must respect:
//
//   - RAW/WAR/WAW edges over the architectural register space — GPRs,
//     predicates (including the @P guard), and the condition code — using
//     the same regspace layout as the dataflow framework.
//   - Memory edges between two memory operations when at least one writes,
//     unless the affine value lattice (internal/analysis/values.go) proves
//     the accesses disjoint for *every* pair of threads in the CTA: across
//     threads via DisjointAcrossThreads and for the shared thread index
//     via DisjointSameThread. Warps execute in lockstep, so swapping two
//     memory instructions reorders every lane of one against every lane of
//     the other — the proof must cover all pairs, not just one thread.
//   - Fence edges pinning instructions that order the whole stream:
//     control transfers (BRA/BRK/CAL/JCAL/RET/EXIT/SYNC), divergence-stack
//     pushes (SSY/PBK), barriers, atomics, clock reads, and
//     SASSI-injected instrumentation sites. A fence is ordered against
//     every other instruction of its block, which fixes its position under
//     any topological order.
//
// Soundness scope: legality is warp-local. Reordering also permutes a
// warp's accesses relative to other warps and CTAs; that is
// behaviour-preserving only for programs free of cross-warp races on
// non-atomic memory — exactly the discipline the shared-race check
// enforces and the difftest engine axis (sequential-vs-concurrent
// bit-equality) assumes. Atomics and barriers, the sanctioned cross-warp
// orderings, are fences here, and the autotuner additionally gates every
// candidate schedule on bit-equal final state against the unscheduled
// binary.
package deps

import (
	"fmt"

	"sassi/internal/analysis"
	"sassi/internal/mem"
	"sassi/internal/sass"
)

// EdgeKind classifies a dependence edge.
type EdgeKind uint8

// Edge kinds.
const (
	RAW EdgeKind = iota // read-after-write on a register slot
	WAR                 // write-after-read
	WAW                 // write-after-write
	Mem                 // possibly-aliasing memory access pair
	Fence               // ordering against a scheduling fence
)

var kindNames = [...]string{"RAW", "WAR", "WAW", "mem", "fence"}

func (k EdgeKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// Edge is one dependence: the instruction at From must execute before the
// one at To. Both are kernel-wide instruction indices with From < To in
// the analyzed order. Slot is the regspace bit the dependence runs
// through (analysis.GPRBit/PredBit/CCBit) for register edges, -1 for
// memory and fence edges.
type Edge struct {
	From, To int
	Kind     EdgeKind
	Slot     int
}

// BlockDAG is the dependence DAG of one basic block.
type BlockDAG struct {
	ID         int
	Start, End int // instruction index range [Start, End)
	Edges      []Edge
}

// N returns the number of nodes (instructions) in the block.
func (b *BlockDAG) N() int { return b.End - b.Start }

// LocalAdj returns the DAG as local adjacency lists plus in-degrees,
// indexed by instruction position minus Start — the shape list scheduling
// consumes.
func (b *BlockDAG) LocalAdj() (succs [][]int, indeg []int) {
	n := b.N()
	succs = make([][]int, n)
	indeg = make([]int, n)
	for _, e := range b.Edges {
		u, v := e.From-b.Start, e.To-b.Start
		succs[u] = append(succs[u], v)
		indeg[v]++
	}
	return succs, indeg
}

// Graph is the per-block dependence DAG forest of one kernel, plus the
// dominator-scoped cross-block register dependences (informational: the
// scheduler never moves instructions across blocks, and the cross edges
// let clients and the property tests see the def-use structure the
// block-local restriction preserves).
type Graph struct {
	CFG    *sass.CFG
	Blocks []*BlockDAG
	// Cross holds RAW edges whose definition and use sit in different
	// blocks, restricted to defs whose block dominates the use's block
	// (the scoped subset with a guaranteed-ordered witness; merge-point
	// reaching defs from sibling branches carry no such order).
	Cross []Edge
}

// fenceOp reports whether the instruction orders the whole stream.
func fenceOp(in *sass.Instruction) bool {
	if in.Injected {
		return true // instrumentation sites must observe the original order
	}
	switch in.Op {
	case sass.OpBRA, sass.OpBRK, sass.OpPBK, sass.OpSSY, sass.OpSYNC,
		sass.OpCAL, sass.OpJCAL, sass.OpRET, sass.OpEXIT, sass.OpBAR:
		return true
	case sass.OpS2R:
		// SR_CLOCK reads the cycle counter: reordering changes its value.
		for _, s := range in.Srcs {
			if s.Kind == sass.OpdSReg && s.SR == sass.SRClock {
				return true
			}
		}
	}
	return in.Op.IsAtomic()
}

// regSets returns the instruction's regspace use and def bitsets.
func regSets(in *sass.Instruction, nbits int) (uses, defs analysis.Bits) {
	uses, defs = analysis.NewBits(nbits), analysis.NewBits(nbits)
	for _, r := range in.GPRSrcs() {
		uses.Set(analysis.GPRBit(r))
	}
	for _, p := range in.PredSrcs() {
		uses.Set(analysis.PredBit(p))
	}
	if in.Mods.X {
		uses.Set(analysis.CCBit())
	}
	for _, r := range in.GPRDsts() {
		defs.Set(analysis.GPRBit(r))
	}
	for _, p := range in.PredDsts() {
		defs.Set(analysis.PredBit(p))
	}
	if in.Mods.SetCC {
		defs.Set(analysis.CCBit())
	}
	return uses, defs
}

// firstCommon returns the lowest bit set in both sets, or -1.
func firstCommon(a, b analysis.Bits) int {
	for w := range a {
		if m := a[w] & b[w]; m != 0 {
			for bit := w * 64; bit < (w+1)*64; bit++ {
				if a.Has(bit) && b.Has(bit) {
					return bit
				}
			}
		}
	}
	return -1
}

// memAccess is the static description of one memory operation's address.
type memAccess struct {
	isMem bool
	write bool
	known bool // addr is a usable lattice value
	addr  analysis.Value
	width int
	local bool // space-relative per-thread local window (LDL/STL)
}

// memAccessOf derives the access description for instruction idx using the
// shared sass.MemSpaceOf classification. Shared and local offsets are
// normalized into the generic address numbering (window base + offset) so
// accesses in different spaces separate by construction; constant-bank
// loads read an immutable space no store can touch and are excluded.
func memAccessOf(val *analysis.Valuation, k *sass.Kernel, idx int) memAccess {
	in := &k.Instrs[idx]
	space := sass.MemSpaceOf(in.Op)
	if space == sass.MemNone || space == sass.MemConst {
		return memAccess{}
	}
	acc := memAccess{
		isMem: true,
		write: in.Op.IsMemWrite(),
		width: in.Mods.Width.Bytes(),
		local: space == sass.MemLocal,
	}
	if in.Mods.E {
		// 64-bit address pairs: the lattice tracks the low word only, and
		// carries into the high word would break the interval proofs.
		return acc
	}
	var ref sass.Operand
	found := false
	for _, s := range in.Srcs {
		if s.Kind == sass.OpdMem {
			ref, found = s, true
			break
		}
	}
	if !found {
		return acc
	}
	addr := val.RegValue(idx, ref.Reg).AddConst(ref.Imm)
	switch space {
	case sass.MemShared:
		addr = addr.AddConst(int64(mem.SharedBase))
	case sass.MemLocal:
		addr = addr.AddConst(int64(mem.LocalBase))
	}
	acc.known = addr.Known
	acc.addr = addr
	return acc
}

// disjoint reports whether the two accesses are proven non-overlapping
// for every thread pair of the CTA.
func disjoint(a, b memAccess, dims analysis.BlockDims) bool {
	if !a.known || !b.known {
		return false
	}
	if !analysis.DisjointSameThread(a.addr, a.width, b.addr, b.width, dims) {
		return false
	}
	if a.local && b.local {
		// Per-thread local windows: distinct threads access distinct
		// memories, so cross-thread disjointness is structural.
		return true
	}
	return analysis.DisjointAcrossThreads(a.addr, a.width, b.addr, b.width, dims)
}

// Build constructs the dependence graph of a kernel. Labels must be
// resolved (the CFG requires it).
func Build(cfg *sass.CFG) *Graph {
	k := cfg.Kernel
	nbits := analysis.CCBit() + 1
	val := analysis.AnalyzeValues(cfg)
	dims := analysis.BlockDims{X: k.BlockDim[0], Y: k.BlockDim[1], Z: k.BlockDim[2]}

	g := &Graph{CFG: cfg}
	for _, blk := range cfg.Blocks {
		bd := &BlockDAG{ID: blk.ID, Start: blk.Start, End: blk.End}
		n := bd.N()
		uses := make([]analysis.Bits, n)
		defs := make([]analysis.Bits, n)
		fences := make([]bool, n)
		mems := make([]memAccess, n)
		for i := 0; i < n; i++ {
			in := &k.Instrs[blk.Start+i]
			uses[i], defs[i] = regSets(in, nbits)
			fences[i] = fenceOp(in)
			mems[i] = memAccessOf(val, k, blk.Start+i)
		}
		for j := 1; j < n; j++ {
			for i := 0; i < j; i++ {
				from, to := blk.Start+i, blk.Start+j
				switch {
				case fences[i] || fences[j]:
					bd.Edges = append(bd.Edges, Edge{From: from, To: to, Kind: Fence, Slot: -1})
				case firstCommon(defs[i], uses[j]) >= 0:
					bd.Edges = append(bd.Edges, Edge{From: from, To: to, Kind: RAW,
						Slot: firstCommon(defs[i], uses[j])})
				case firstCommon(defs[i], defs[j]) >= 0:
					bd.Edges = append(bd.Edges, Edge{From: from, To: to, Kind: WAW,
						Slot: firstCommon(defs[i], defs[j])})
				case firstCommon(uses[i], defs[j]) >= 0:
					bd.Edges = append(bd.Edges, Edge{From: from, To: to, Kind: WAR,
						Slot: firstCommon(uses[i], defs[j])})
				case mems[i].isMem && mems[j].isMem && (mems[i].write || mems[j].write):
					if !disjoint(mems[i], mems[j], dims) {
						bd.Edges = append(bd.Edges, Edge{From: from, To: to, Kind: Mem, Slot: -1})
					}
				}
			}
		}
		g.Blocks = append(g.Blocks, bd)
	}
	g.Cross = crossBlockRAW(cfg)
	return g
}

// crossBlockRAW collects the dominator-scoped cross-block RAW edges: a
// definition reaching a use in another block, where the def's block
// dominates the use's block so the ordering witness is unconditional.
func crossBlockRAW(cfg *sass.CFG) []Edge {
	ri := analysis.ReachingDefs(cfg)
	dom := analysis.Dominators(cfg)
	k := cfg.Kernel
	nbits := analysis.CCBit() + 1
	var out []Edge
	for idx := range k.Instrs {
		ub := cfg.BlockOf(idx).ID
		use, _ := regSets(&k.Instrs[idx], nbits)
		for _, slot := range use.Members() {
			for _, def := range ri.ReachingAt(idx, slot) {
				db := cfg.BlockOf(def).ID
				if db == ub || !analysis.Dominates(dom, db, ub) {
					continue
				}
				out = append(out, Edge{From: def, To: idx, Kind: RAW, Slot: slot})
			}
		}
	}
	return out
}

// BlockOf returns the block DAG containing instruction idx.
func (g *Graph) BlockOf(idx int) *BlockDAG {
	return g.Blocks[g.CFG.BlockOf(idx).ID]
}

// IsTopological reports whether pos — mapping each original instruction
// index to its proposed position — respects every edge of the block.
func (b *BlockDAG) IsTopological(pos []int) bool {
	for _, e := range b.Edges {
		if pos[e.From] >= pos[e.To] {
			return false
		}
	}
	return true
}
