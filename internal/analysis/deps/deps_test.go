package deps_test

import (
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/analysis/deps"
	"sassi/internal/difftest"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
)

func testKernel(t *testing.T, dims [3]int, labels map[string]int, instrs ...sass.Instruction) *sass.Kernel {
	t.Helper()
	k := &sass.Kernel{Name: "t", Instrs: instrs, Labels: labels,
		NumRegs: 16, NumPreds: 7, SharedBytes: 4096, BlockDim: dims}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	return k
}

func buildGraph(t *testing.T, k *sass.Kernel) *deps.Graph {
	t.Helper()
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	return deps.Build(cfg)
}

// findEdge locates an edge (from, to) anywhere in the block DAGs.
func findEdge(g *deps.Graph, from, to int) (deps.Edge, bool) {
	for _, bd := range g.Blocks {
		for _, e := range bd.Edges {
			if e.From == from && e.To == to {
				return e, true
			}
		}
	}
	return deps.Edge{}, false
}

func wantEdge(t *testing.T, g *deps.Graph, from, to int, kind deps.EdgeKind) deps.Edge {
	t.Helper()
	e, ok := findEdge(g, from, to)
	if !ok {
		t.Fatalf("no edge %d -> %d (want %s)", from, to, kind)
	}
	if e.Kind != kind {
		t.Fatalf("edge %d -> %d is %s, want %s", from, to, e.Kind, kind)
	}
	return e
}

func wantNoEdge(t *testing.T, g *deps.Graph, from, to int) {
	t.Helper()
	if e, ok := findEdge(g, from, to); ok {
		t.Fatalf("unexpected %s edge %d -> %d", e.Kind, from, to)
	}
}

// Assembly shorthands.

func tidx(r uint8) sass.Instruction {
	return sass.New(sass.OpS2R, []sass.Operand{sass.R(r)}, []sass.Operand{sass.SReg(sass.SRTidX)})
}

func movi(d uint8, v int64) sass.Instruction {
	return sass.New(sass.OpMOV, []sass.Operand{sass.R(d)}, []sass.Operand{sass.Imm(v)})
}

func iadd(d, a, b uint8) sass.Instruction {
	return sass.New(sass.OpIADD, []sass.Operand{sass.R(d)}, []sass.Operand{sass.R(a), sass.R(b)})
}

func shl(d, a uint8, sh int64) sass.Instruction {
	return sass.New(sass.OpSHL, []sass.Operand{sass.R(d)}, []sass.Operand{sass.R(a), sass.Imm(sh)})
}

func setp(p uint8, a, b sass.Operand) sass.Instruction {
	return sass.Instruction{Guard: sass.Always, Op: sass.OpISETP,
		Mods: sass.Mods{Cmp: sass.CmpLT, Unsigned: true, Logic: sass.LogicAND},
		Dsts: []sass.Operand{sass.P(p)},
		Srcs: []sass.Operand{a, b, sass.P(sass.PT)}}
}

func guarded(in sass.Instruction, p uint8) sass.Instruction {
	in.Guard = sass.PredGuard{Reg: p}
	return in
}

func sts(base uint8, off int64, data uint8) sass.Instruction {
	return sass.New(sass.OpSTS, nil, []sass.Operand{sass.Mem(base, off), sass.R(data)})
}

func lds(d, base uint8, off int64) sass.Instruction {
	return sass.New(sass.OpLDS, []sass.Operand{sass.R(d)}, []sass.Operand{sass.Mem(base, off)})
}

func stl(base uint8, off int64, data uint8) sass.Instruction {
	return sass.New(sass.OpSTL, nil, []sass.Operand{sass.Mem(base, off), sass.R(data)})
}

func ldl(d, base uint8, off int64) sass.Instruction {
	return sass.New(sass.OpLDL, []sass.Operand{sass.R(d)}, []sass.Operand{sass.Mem(base, off)})
}

func bar() sass.Instruction { return sass.New(sass.OpBAR, nil, nil) }

func exit() sass.Instruction { return sass.New(sass.OpEXIT, nil, nil) }

func TestEdgeRegisterClasses(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1),   // 0: def R0
		iadd(1, 0, 0), // 1: use R0, def R1       — RAW on R0 from 0
		movi(0, 2),   // 2: redef R0             — WAR from 1, WAW from 0
		exit(),
	)
	g := buildGraph(t, k)
	e := wantEdge(t, g, 0, 1, deps.RAW)
	if e.Slot != analysis.GPRBit(0) {
		t.Errorf("RAW slot = %s, want R0", analysis.RegSpaceName(e.Slot))
	}
	wantEdge(t, g, 1, 2, deps.WAR)
	wantEdge(t, g, 0, 2, deps.WAW)
	// Independent instructions stay unordered: movi R0 at 0 and def R1 at 1
	// conflict, but nothing orders 1 (def R1) against... use a clean pair:
	k2 := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1),
		movi(1, 2),
		exit(),
	)
	wantNoEdge(t, buildGraph(t, k2), 0, 1)
}

func TestEdgePredicate(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 5),                        // 0
		setp(0, sass.R(0), sass.Imm(10)),  // 1: def P0
		guarded(movi(1, 7), 0),            // 2: @P0 — reads P0
		setp(0, sass.R(0), sass.Imm(20)),  // 3: redef P0 — WAR vs 2, WAW vs 1
		exit(),
	)
	g := buildGraph(t, k)
	e := wantEdge(t, g, 1, 2, deps.RAW)
	if e.Slot != analysis.PredBit(0) {
		t.Errorf("guard RAW slot = %s, want P0", analysis.RegSpaceName(e.Slot))
	}
	wantEdge(t, g, 2, 3, deps.WAR)
	wantEdge(t, g, 1, 3, deps.WAW)
}

func TestEdgeCC(t *testing.T) {
	setcc := iadd(1, 0, 0)
	setcc.Mods.SetCC = true
	usecc := iadd(2, 0, 0)
	usecc.Mods.X = true
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1), // 0
		setcc,      // 1: defs CC (and R1)
		usecc,      // 2: uses CC (IADD.X)
		exit(),
	)
	e := wantEdge(t, buildGraph(t, k), 1, 2, deps.RAW)
	if e.Slot != analysis.CCBit() {
		t.Errorf("CC RAW slot = %s, want CC", analysis.RegSpaceName(e.Slot))
	}
}

func TestEdgeMemSharedAliasAndDisjoint(t *testing.T) {
	// Same shared cell written twice: WAW through memory.
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		tidx(0),
		shl(1, 0, 2), // R1 = 4*tid
		sts(1, 0, 0), // 2: shared[4t] = ...
		sts(1, 0, 0), // 3: same cell
		exit(),
	)
	wantEdge(t, buildGraph(t, k), 2, 3, deps.Mem)

	// Stores 128 bytes apart with tid stride 4 over a 32-thread block:
	// disjoint for every thread pair (same and cross), so no edge.
	k2 := testKernel(t, [3]int{32, 1, 1}, nil,
		tidx(0),
		shl(1, 0, 2),
		sts(1, 0, 0),   // 2: shared[4t]       t in [0,32) -> [0,124]
		sts(1, 128, 0), // 3: shared[4t+128]            -> [128,252]
		exit(),
	)
	wantNoEdge(t, buildGraph(t, k2), 2, 3)

	// Same offsets but an unknown base defeats the prover: edge stays.
	k3 := testKernel(t, [3]int{32, 1, 1}, nil,
		lds(1, 9, 0), // R1 = unknown
		sts(1, 0, 0),
		sts(1, 128, 0),
		exit(),
	)
	wantEdge(t, buildGraph(t, k3), 1, 2, deps.Mem)
}

func TestEdgeMemLocalPerThread(t *testing.T) {
	// Local windows are per-thread: a constant address never aliases
	// across threads, so only same-thread overlap matters.
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 7),
		movi(1, 0),
		stl(1, 0, 0), // 2: local[0]
		ldl(2, 1, 4), // 3: local[4] — same-thread disjoint
		exit(),
	)
	g := buildGraph(t, k)
	wantNoEdge(t, g, 2, 3)

	// The identical constant-address pattern in SHARED memory aliases
	// across threads (every thread hits shared[0]): edge required.
	k2 := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 7),
		movi(1, 0),
		sts(1, 0, 0),
		lds(2, 1, 4), // cross-thread: write[0..3] vs read[4..7]... disjoint!
		exit(),
	)
	// shared[0] write vs shared[4] read are constant-disjoint too — but
	// shared[0] write vs shared[0] read must conflict:
	k3 := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 7),
		movi(1, 0),
		sts(1, 0, 0),
		lds(2, 1, 0),
		exit(),
	)
	wantNoEdge(t, buildGraph(t, k2), 2, 3)
	wantEdge(t, buildGraph(t, k3), 2, 3, deps.Mem)

	// Overlapping local accesses conflict in the same thread.
	k4 := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 7),
		movi(1, 0),
		stl(1, 0, 0),
		ldl(2, 1, 0),
		exit(),
	)
	wantEdge(t, buildGraph(t, k4), 2, 3, deps.Mem)
}

func TestEdgeFence(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1), // 0
		bar(),      // 1: fence
		movi(1, 2), // 2
		exit(),
	)
	g := buildGraph(t, k)
	wantEdge(t, g, 0, 1, deps.Fence)
	wantEdge(t, g, 1, 2, deps.Fence)

	// Injected instrumentation is a fence even when register-independent.
	inj := movi(1, 2)
	inj.Injected = true
	k2 := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1),
		inj,
		exit(),
	)
	wantEdge(t, buildGraph(t, k2), 0, 1, deps.Fence)

	// S2R SR_CLOCK observes the cycle counter: fence. SR_TID does not.
	clock := sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRClock)})
	k3 := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1),
		clock,
		exit(),
	)
	wantEdge(t, buildGraph(t, k3), 0, 1, deps.Fence)
	k4 := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1),
		tidx(2),
		exit(),
	)
	wantNoEdge(t, buildGraph(t, k4), 0, 1)

	// Atomics order against everything: they are the sanctioned cross-warp
	// communication and must not migrate.
	atom := sass.New(sass.OpATOMS, []sass.Operand{sass.R(3)},
		[]sass.Operand{sass.Mem(1, 0), sass.R(0)})
	k5 := testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1),
		movi(1, 0),
		atom,
		movi(2, 9),
		exit(),
	)
	g5 := buildGraph(t, k5)
	wantEdge(t, g5, 1, 2, deps.Fence)
	wantEdge(t, g5, 2, 3, deps.Fence)
}

func TestCrossBlockRAW(t *testing.T) {
	k := testKernel(t, [3]int{32, 1, 1}, map[string]int{"L": 3},
		movi(0, 1),                       // 0: def R0 (entry block)
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("L")}), // 1
		exit(),                           // 2: unreachable block
		iadd(1, 0, 0),                    // 3: L: use R0 — entry dominates
		exit(),                           // 4
	)
	g := buildGraph(t, k)
	found := false
	for _, e := range g.Cross {
		if e.From == 0 && e.To == 3 && e.Kind == deps.RAW && e.Slot == analysis.GPRBit(0) {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing dominator-scoped cross-block RAW 0 -> 3; got %v", g.Cross)
	}
}

// Every RAW edge must be witnessed by reaching definitions: either the
// def reaches the use directly, or an intervening redefinition kills it —
// in which case the DAG orders def -> killer -> use transitively. Checked
// over handcrafted kernels and a sweep of generated, fully compiled ones.
func TestRAWEdgesWitnessedByReachingDefs(t *testing.T) {
	check := func(t *testing.T, k *sass.Kernel) {
		cfg, err := sass.BuildCFG(k)
		if err != nil {
			t.Fatal(err)
		}
		g := deps.Build(cfg)
		ri := analysis.ReachingDefs(cfg)
		for _, bd := range g.Blocks {
			edges := map[[2]int]bool{}
			for _, e := range bd.Edges {
				edges[[2]int{e.From, e.To}] = true
			}
			for _, e := range bd.Edges {
				if e.From >= e.To {
					t.Fatalf("%s: edge %d -> %d not forward", k.Name, e.From, e.To)
				}
				if e.Kind != deps.RAW {
					continue
				}
				direct := false
				for _, d := range ri.ReachingAt(e.To, e.Slot) {
					if d == e.From {
						direct = true
					}
				}
				if direct {
					continue
				}
				// Killed in between: some w in (From, To) redefines the slot
				// and the DAG must order From -> w -> To.
				witnessed := false
				for w := e.From + 1; w < e.To; w++ {
					_, wdefs := instrRegSets(&k.Instrs[w])
					if wdefs.Has(e.Slot) && edges[[2]int{e.From, w}] && edges[[2]int{w, e.To}] {
						witnessed = true
						break
					}
				}
				if !witnessed {
					t.Errorf("%s: RAW edge %d -> %d (%s) not witnessed by reaching defs",
						k.Name, e.From, e.To, analysis.RegSpaceName(e.Slot))
				}
			}
		}
		// Cross-block edges carry a direct reaching-defs witness by
		// construction; verify it.
		for _, e := range g.Cross {
			ok := false
			for _, d := range ri.ReachingAt(e.To, e.Slot) {
				if d == e.From {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s: cross edge %d -> %d (%s) has no reaching-defs witness",
					k.Name, e.From, e.To, analysis.RegSpaceName(e.Slot))
			}
		}
	}

	// Handcrafted: a redefinition between def and use.
	check(t, testKernel(t, [3]int{32, 1, 1}, nil,
		movi(0, 1),
		movi(0, 2),
		iadd(1, 0, 0),
		exit(),
	))

	// Generated programs through the full compiler.
	for seed := uint64(1); seed <= 25; seed++ {
		p := difftest.Generate(seed, difftest.FuzzSize())
		m, err := p.Build()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog, err := ptxas.Compile(m, ptxas.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, k := range prog.Kernels {
			check(t, k)
		}
	}
}

// instrRegSets mirrors the package's regspace def extraction for the
// witness search (exported behaviour only: GPR/pred/CC writes).
func instrRegSets(in *sass.Instruction) (uses, defs analysis.Bits) {
	uses, defs = analysis.NewBits(analysis.CCBit()+1), analysis.NewBits(analysis.CCBit()+1)
	for _, r := range in.GPRSrcs() {
		uses.Set(analysis.GPRBit(r))
	}
	for _, p := range in.PredSrcs() {
		uses.Set(analysis.PredBit(p))
	}
	if in.Mods.X {
		uses.Set(analysis.CCBit())
	}
	for _, r := range in.GPRDsts() {
		defs.Set(analysis.GPRBit(r))
	}
	for _, p := range in.PredDsts() {
		defs.Set(analysis.PredBit(p))
	}
	if in.Mods.SetCC {
		defs.Set(analysis.CCBit())
	}
	return uses, defs
}
