package deps

import (
	"fmt"

	"sassi/internal/analysis"
	"sassi/internal/sass"
)

// The `schedule` check certifies scheduler output. A kernel carrying a
// SchedOrig permutation claims "I am a reordering of the original stream
// recorded in SchedOrig"; the check reconstructs that original, rebuilds
// the dependence DAG on it, and verifies the claimed order is (a) a
// well-formed permutation, (b) block-local with respect to the original
// CFG partition, and (c) a topological order of every block DAG — fences,
// register dependences, and non-disjoint memory pairs all respected.
// Kernels without SchedOrig (never scheduled, or rewritten by a later
// pass that dropped the provenance) have nothing to certify.
func init() {
	analysis.RegisterKernelCheck(analysis.CheckSchedule, checkSchedule)
}

func checkSchedule(cfg *sass.CFG) []analysis.Diagnostic {
	k := cfg.Kernel
	if k.SchedOrig == nil {
		return nil
	}
	bad := func(idx int, format string, args ...any) []analysis.Diagnostic {
		return []analysis.Diagnostic{{
			Sev: analysis.Error, Check: analysis.CheckSchedule,
			Kernel: k.Name, Instr: idx, Msg: fmt.Sprintf(format, args...),
		}}
	}
	n := len(k.Instrs)
	if len(k.SchedOrig) != n {
		return bad(-1, "SchedOrig has %d entries for %d instructions", len(k.SchedOrig), n)
	}

	// (a) Permutation of [0, n).
	pos := make([]int, n) // pos[orig index] = scheduled position
	seen := make([]bool, n)
	for p, o := range k.SchedOrig {
		if o < 0 || o >= n {
			return bad(p, "SchedOrig[%d] = %d out of range [0,%d)", p, o, n)
		}
		if seen[o] {
			return bad(p, "SchedOrig maps two positions to original instruction %d", o)
		}
		seen[o] = true
		pos[o] = p
	}

	// Reconstruct the original stream the permutation claims to reorder.
	orig := k.Clone()
	orig.SchedOrig = nil
	for p, o := range k.SchedOrig {
		orig.Instrs[o] = k.Instrs[p]
	}
	ocfg, err := sass.BuildCFG(orig)
	if err != nil {
		return bad(-1, "reconstructed original kernel has no CFG: %v", err)
	}

	// (b) Block-local: each original block's instructions stay inside the
	// block's position range, so labels (which target block leaders) and
	// the CFG partition survive untouched.
	var diags []analysis.Diagnostic
	for _, blk := range ocfg.Blocks {
		for o := blk.Start; o < blk.End; o++ {
			if pos[o] < blk.Start || pos[o] >= blk.End {
				diags = append(diags, bad(pos[o],
					"original instruction %d escapes its block [%d,%d) to position %d",
					o, blk.Start, blk.End, pos[o])[0])
			}
		}
	}
	if len(diags) > 0 {
		return diags
	}

	// (c) Topological order of every block's dependence DAG.
	g := Build(ocfg)
	for _, bd := range g.Blocks {
		for _, e := range bd.Edges {
			if pos[e.From] >= pos[e.To] {
				diags = append(diags, bad(pos[e.To],
					"%s dependence %d -> %d (%s) inverted: scheduled at %d and %d",
					e.Kind, e.From, e.To, slotName(e), pos[e.From], pos[e.To])[0])
			}
		}
	}
	return diags
}

func slotName(e Edge) string {
	if e.Slot < 0 {
		return "no slot"
	}
	return analysis.RegSpaceName(e.Slot)
}
