package analysis

// Symbolic value tracking over tid/ctaid-derived registers: a lightweight
// affine lattice that the concurrency checks (and any future pass) use to
// reason about which registers hold thread-dependent values and whether
// two address expressions computed by *different* threads can overlap.
//
// A tracked value is either Known — an affine form
//
//	Const + Σ coeff·term       term ∈ {tid.x, tid.y, tid.z, laneid}
//	      + Σ coeff·sym        sym  = a CTA-uniform, loop-invariant input
//
// — or Unknown, in which case only a warp-uniformity bit survives.
// Symbols name loop-invariant sources whose runtime value is fixed for
// the whole CTA: constant-bank words (kernel parameters) and the
// CTA-uniform special registers (ctaid, ntid, nctaid, smid). Anything
// loop-variant (induction variables, loaded data) joins to Unknown, so a
// disjointness proof can never lean on a value that differs between two
// dynamic executions of the same instruction.
//
// Known over/under-approximations (documented in DESIGN.md):
//   - arithmetic is modeled over unbounded integers, ignoring 32-bit
//     wraparound; address expressions that overflow could defeat a
//     disjointness proof's soundness, but in-window shared offsets never
//     get close;
//   - warp-uniformity (the Uniform bit) is coarser than CTA-uniformity:
//     SR_WARPID is warp-uniform but thread-varying across the CTA, so it
//     is Unknown-uniform rather than a symbol.

import (
	"sort"

	"sassi/internal/sass"
)

// Term indexes the thread-varying basis of the affine form.
type Term uint8

// Thread-varying terms.
const (
	TermTidX Term = iota
	TermTidY
	TermTidZ
	TermLane
	NumTerms
)

// SymKind discriminates symbol sources.
type SymKind uint8

// Symbol sources.
const (
	// SymCMem is a constant-bank word c[Bank][Off] (kernel parameters).
	SymCMem SymKind = iota
	// SymSReg is a CTA-uniform special register (ctaid, ntid, ...).
	SymSReg
)

// Sym identifies one CTA-uniform, loop-invariant input value.
type Sym struct {
	Kind SymKind
	Bank uint8
	Off  int64
	SR   sass.SpecialReg
}

// Value is one lattice element. The zero value is Unknown and
// (conservatively) not uniform.
type Value struct {
	// Known marks an exact affine form; when false only Uniform applies.
	Known bool
	// Uniform, for Unknown values, records that the value is still
	// provably warp-uniform (every lane of a warp computes the same
	// value). Known values derive uniformity from their Tid coefficients.
	Uniform bool

	Const int64
	Tid   [NumTerms]int64
	Syms  map[Sym]int64 // nil = no symbol terms
}

// KnownConst builds a known constant value.
func KnownConst(c int64) Value { return Value{Known: true, Const: c} }

// unknown builds an Unknown value with the given uniformity.
func unknown(uniform bool) Value { return Value{Uniform: uniform} }

// IsUniform reports warp-uniformity: every lane of any warp computes the
// same value.
func (v Value) IsUniform() bool {
	if !v.Known {
		return v.Uniform
	}
	for _, c := range v.Tid {
		if c != 0 {
			return false
		}
	}
	return true
}

// IsConst reports whether the value is a known constant (no tid or symbol
// terms), returning it.
func (v Value) IsConst() (int64, bool) {
	if !v.Known {
		return 0, false
	}
	for _, c := range v.Tid {
		if c != 0 {
			return 0, false
		}
	}
	for _, c := range v.Syms {
		if c != 0 {
			return 0, false
		}
	}
	return v.Const, true
}

// HasTidTerm reports whether any thread-varying coefficient is nonzero.
func (v Value) HasTidTerm() bool {
	for _, c := range v.Tid {
		if c != 0 {
			return true
		}
	}
	return false
}

// SymCoeff returns the coefficient of sym.
func (v Value) SymCoeff(s Sym) int64 { return v.Syms[s] }

// AddConst returns v + c (an address displacement).
func (v Value) AddConst(c int64) Value { return addValues(v, KnownConst(c), false) }

// equalValues reports exact structural equality of two known forms.
func equalValues(a, b Value) bool {
	if a.Const != b.Const || a.Tid != b.Tid {
		return false
	}
	for s, c := range a.Syms {
		if c != b.Syms[s] {
			return false
		}
	}
	for s, c := range b.Syms {
		if c != a.Syms[s] {
			return false
		}
	}
	return true
}

// JoinValues is the lattice join: equal known forms survive, everything
// else degrades to Unknown keeping only joint uniformity.
func JoinValues(a, b Value) Value {
	if a.Known && b.Known && equalValues(a, b) {
		return a
	}
	return unknown(a.IsUniform() && b.IsUniform())
}

// addValues returns a+b (or a−b with negB).
func addValues(a, b Value, negB bool) Value {
	if !a.Known || !b.Known {
		return unknown(a.IsUniform() && b.IsUniform())
	}
	sign := int64(1)
	if negB {
		sign = -1
	}
	out := Value{Known: true, Const: a.Const + sign*b.Const, Tid: a.Tid}
	for i := range out.Tid {
		out.Tid[i] += sign * b.Tid[i]
	}
	if len(a.Syms) > 0 || len(b.Syms) > 0 {
		out.Syms = make(map[Sym]int64, len(a.Syms)+len(b.Syms))
		for s, c := range a.Syms {
			out.Syms[s] = c
		}
		for s, c := range b.Syms {
			if n := out.Syms[s] + sign*c; n != 0 {
				out.Syms[s] = n
			} else {
				delete(out.Syms, s)
			}
		}
	}
	return out
}

// scaleValue returns v*c.
func scaleValue(v Value, c int64) Value {
	if !v.Known {
		return unknown(v.IsUniform())
	}
	if c == 0 {
		return KnownConst(0)
	}
	out := Value{Known: true, Const: v.Const * c, Tid: v.Tid}
	for i := range out.Tid {
		out.Tid[i] *= c
	}
	if len(v.Syms) > 0 {
		out.Syms = make(map[Sym]int64, len(v.Syms))
		for s, k := range v.Syms {
			out.Syms[s] = k * c
		}
	}
	return out
}

// mulValues returns a*b when one side is a known constant, otherwise
// Unknown (a product of two symbolic forms is not affine).
func mulValues(a, b Value) Value {
	if c, ok := a.IsConst(); ok {
		return scaleValue(b, c)
	}
	if c, ok := b.IsConst(); ok {
		return scaleValue(a, c)
	}
	return unknown(a.IsUniform() && b.IsUniform())
}

// PredFacts is the tracked state of one predicate register.
type PredFacts struct {
	// Uniform: every lane of a warp holds the same predicate value.
	Uniform bool
	// TidDep: the predicate provably compares thread-varying values
	// (a compare whose operand difference carries a tid/lane term), so
	// with more than one thread per relevant dimension it WILL diverge.
	// Used only to grade severity; false means "not proven", not
	// "independent".
	TidDep bool
	// EqZero, when non-nil, is an affine form whose zero the predicate
	// implies: P true ⟹ EqZero(tid) == 0. Recorded for ISETP.EQ with an
	// AND combine (the result implies the compare holds) and dropped on
	// any merge or redefinition that cannot preserve it exactly. Feeds
	// SingleThreadZero: a guard whose zero set is a single thread proves
	// the guarded instruction executes on at most one thread.
	EqZero *Value
}

// valState is the abstract machine state at one program point.
type valState struct {
	regs map[uint8]Value
	pred [sass.NumPred + 1]PredFacts
	cc   bool // condition-code warp-uniformity

	// Predication view: ptxas if-converts short branches into runs of
	// instructions under one guard (@P0 SHL; @P0 IADD; @P0 STS). The
	// main lattice must join a guarded def with the old value (later
	// unguarded uses see either), but a later use under the SAME guard
	// executes only when the def did, so it sees the def exactly. g is
	// the current guard run; gregs holds the exact values defined under
	// it, consulted when viewG is set. The view is transient: it resets
	// when the guard changes, its predicate is redefined, or states
	// merge.
	g     sass.PredGuard
	gregs map[uint8]Value
	viewG bool
}

func newEntryState() *valState {
	s := &valState{regs: make(map[uint8]Value)}
	s.pred[sass.PT] = PredFacts{Uniform: true}
	return s
}

func (s *valState) clone() *valState {
	c := &valState{pred: s.pred, cc: s.cc, g: s.g, regs: make(map[uint8]Value, len(s.regs))}
	for r, v := range s.regs {
		c.regs[r] = v
	}
	if s.gregs != nil {
		c.gregs = make(map[uint8]Value, len(s.gregs))
		for r, v := range s.gregs {
			c.gregs[r] = v
		}
	}
	return c
}

// dropGuardView discards the predication view.
func (s *valState) dropGuardView() {
	s.g = sass.Always
	s.gregs = nil
	s.viewG = false
}

// reg reads a register's tracked value; RZ is the constant 0 and
// untracked registers are Unknown non-uniform (entry garbage). Under an
// active guard view, defs made under the same guard take precedence.
func (s *valState) reg(r uint8) Value {
	if r == sass.RZ {
		return KnownConst(0)
	}
	if s.viewG {
		if v, ok := s.gregs[r]; ok {
			return v
		}
	}
	if v, ok := s.regs[r]; ok {
		return v
	}
	return unknown(false)
}

func (s *valState) setReg(r uint8, v Value) {
	if r == sass.RZ {
		return
	}
	s.regs[r] = v
}

// mergeFrom joins o into s, reporting change. divMask, when non-nil, is
// the regspace set possibly assigned under a divergent branch whose paths
// reconverge at this merge: a masked value that the join cannot prove
// identical in all threads (anything non-Known) loses warp-uniformity,
// because which definition a thread holds depends on the divergent path
// it took. Equal Known forms are exempt — every thread then holds the
// same affine function of its own tid regardless of path.
func (s *valState) mergeFrom(o *valState, divMask Bits) bool {
	changed := false
	// Merged states have different guard histories: drop the view.
	s.dropGuardView()
	mergeReg := func(r uint8, cur, in Value, tracked bool) {
		nv := JoinValues(cur, in)
		if divMask != nil && divMask.Has(GPRBit(r)) && !nv.Known {
			nv.Uniform = false
		}
		if !tracked || !sameLattice(cur, nv) {
			s.regs[r] = nv
			changed = true
		}
	}
	for r, ov := range o.regs {
		cur, ok := s.regs[r]
		if !ok {
			cur = unknown(false)
		}
		mergeReg(r, cur, ov, ok)
	}
	for r, cur := range s.regs {
		if _, ok := o.regs[r]; !ok {
			mergeReg(r, cur, unknown(false), true)
		}
	}
	for p := range s.pred {
		if uint8(p) == sass.PT {
			continue
		}
		n := PredFacts{
			Uniform: s.pred[p].Uniform && o.pred[p].Uniform,
			TidDep:  s.pred[p].TidDep && o.pred[p].TidDep,
		}
		// EqZero survives a merge only when both paths imply the same
		// zero form (keep s's pointer so an unchanged merge is a no-op
		// for the fixpoint's change detection).
		if se, oe := s.pred[p].EqZero, o.pred[p].EqZero; se != nil && oe != nil && equalValues(*se, *oe) {
			n.EqZero = se
		}
		if divMask != nil && divMask.Has(PredBit(uint8(p))) {
			n.Uniform = false
		}
		if n != s.pred[p] {
			s.pred[p] = n
			changed = true
		}
	}
	ncc := s.cc && o.cc
	if divMask != nil && divMask.Has(CCBit()) {
		ncc = false
	}
	if s.cc != ncc {
		s.cc = ncc
		changed = true
	}
	return changed
}

// sameLattice reports lattice-element equality (not just uniform bits).
func sameLattice(a, b Value) bool {
	if a.Known != b.Known {
		return false
	}
	if !a.Known {
		return a.Uniform == b.Uniform
	}
	return equalValues(a, b)
}

// Valuation is the result of AnalyzeValues: the abstract state before
// every instruction.
type Valuation struct {
	cfg *sass.CFG
	at  []*valState // per instruction: state just before it executes
}

// AnalyzeValues runs the forward value/uniformity analysis to a fixed
// point over the CFG.
//
// Uniformity is control-dependence-aware: path-insensitive joins alone
// would either overclaim (two per-path constants merged under a
// tid-dependent branch are NOT uniform) or destroy loop-counter
// uniformity (forcing every differing merge non-uniform). Instead, an
// outer loop finds each conditional branch whose guard is currently
// non-uniform, computes its divergence region from the post-dominator
// tree, and marks every reconvergence/merge point with the regspace set
// possibly assigned inside the region; the inner fixpoint then degrades
// exactly those merges. Non-uniformity only grows, so the nesting
// terminates.
func AnalyzeValues(cfg *sass.CFG) *Valuation {
	nb := len(cfg.Blocks)
	divMask := make([]Bits, nb)
	for {
		v := solveValues(cfg, divMask)
		if !growDivergenceMasks(cfg, v, divMask) {
			return v
		}
	}
}

// solveValues is one inner fixpoint under the given merge masks.
func solveValues(cfg *sass.CFG, divMask []Bits) *Valuation {
	nb := len(cfg.Blocks)
	blockIn := make([]*valState, nb)
	// The entry block starts with everything Unknown non-uniform (register
	// file garbage is per-thread); interior blocks start unreached and
	// take their first predecessor state wholesale.
	blockIn[0] = newEntryState()
	reached := make([]bool, nb)
	reached[0] = true

	inWork := make([]bool, nb)
	work := []int{0}
	inWork[0] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false
		blk := cfg.Blocks[b]
		st := blockIn[b].clone()
		for i := blk.Start; i < blk.End; i++ {
			transferValues(st, &cfg.Kernel.Instrs[i])
		}
		// The predication view is an intra-block device: block-entry
		// states never carry one (it also keeps the fixpoint's
		// change-detection, which compares only the main lattice, sound).
		st.dropGuardView()
		for _, sc := range blk.Succs {
			changed := false
			if !reached[sc] {
				reached[sc] = true
				blockIn[sc] = st.clone()
				changed = true
			} else {
				changed = blockIn[sc].mergeFrom(st, divMask[sc])
			}
			if changed && !inWork[sc] {
				inWork[sc] = true
				work = append(work, sc)
			}
		}
	}

	// Expand to per-instruction snapshots.
	v := &Valuation{cfg: cfg, at: make([]*valState, len(cfg.Kernel.Instrs))}
	for b := 0; b < nb; b++ {
		blk := cfg.Blocks[b]
		st := blockIn[b]
		if st == nil { // unreachable block
			st = newEntryState()
		}
		st = st.clone()
		for i := blk.Start; i < blk.End; i++ {
			v.at[i] = st.clone()
			transferValues(st, &cfg.Kernel.Instrs[i])
		}
	}
	return v
}

// growDivergenceMasks extends divMask with the assigned-under-divergence
// sets of every conditional branch whose guard the current valuation
// cannot prove warp-uniform, reporting whether anything grew.
func growDivergenceMasks(cfg *sass.CFG, v *Valuation, divMask []Bits) bool {
	var pdom []Bits // computed lazily: most kernels have no divergent branch
	grew := false
	for b := range cfg.Blocks {
		blk := cfg.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			in := &cfg.Kernel.Instrs[i]
			if !in.IsCondBranch() || v.GuardFacts(i).Uniform {
				continue
			}
			if pdom == nil {
				pdom = PostDominators(cfg)
			}
			region, merges := divergenceRegion(cfg, pdom, b)
			mask := NewBits(regSpaceBits)
			for _, rb := range region {
				rblk := cfg.Blocks[rb]
				for j := rblk.Start; j < rblk.End; j++ {
					defs, _ := instrDefs(&cfg.Kernel.Instrs[j])
					for _, d := range defs {
						mask.Set(d)
					}
				}
			}
			for _, mb := range merges {
				if divMask[mb] == nil {
					divMask[mb] = NewBits(regSpaceBits)
				}
				if divMask[mb].Union(mask) {
					grew = true
				}
			}
		}
	}
	return grew
}

// divergenceRegion returns the blocks on paths between branch block b and
// its reconvergence (strict post-dominators of b), plus the merge points
// that need divergence-aware joins: the reconvergence blocks themselves
// and any multi-predecessor block inside the region (a loop head whose
// latch diverges, an inner join).
func divergenceRegion(cfg *sass.CFG, pdom []Bits, b int) (region, merges []int) {
	stop := pdom[b].Copy()
	stop.Clear(b)
	visited := make(map[int]bool)
	mergeSet := make(map[int]bool)
	queue := []int{}
	expand := func(from int) {
		for _, s := range cfg.Blocks[from].Succs {
			if stop.Has(s) {
				mergeSet[s] = true
				continue
			}
			if !visited[s] {
				visited[s] = true
				queue = append(queue, s)
			}
		}
	}
	expand(b)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		region = append(region, n)
		if len(cfg.Blocks[n].Preds) >= 2 {
			mergeSet[n] = true
		}
		expand(n)
	}
	for m := range mergeSet {
		merges = append(merges, m)
	}
	return region, merges
}

// RegValue returns the tracked value of GPR r as instruction idx reads
// it: when idx is guarded and r was defined earlier under the same
// guard, the read observes that definition exactly (the predication
// view) rather than the may-not-execute join in the main lattice.
func (v *Valuation) RegValue(idx int, r uint8) Value {
	s := v.at[idx]
	if g := v.cfg.Kernel.Instrs[idx].Guard; !g.IsAlways() && s.gregs != nil && s.g == g {
		if r != sass.RZ {
			if val, ok := s.gregs[r]; ok {
				return val
			}
		}
	}
	return s.reg(r)
}

// PredAt returns the tracked facts of predicate p just before idx.
func (v *Valuation) PredAt(idx int, p uint8) PredFacts { return v.at[idx].pred[p] }

// GuardFacts returns the facts of instruction idx's guard predicate; an
// unguarded instruction is uniform.
func (v *Valuation) GuardFacts(idx int) PredFacts {
	g := v.cfg.Kernel.Instrs[idx].Guard
	if g.IsAlways() {
		return PredFacts{Uniform: true}
	}
	return v.at[idx].pred[g.Reg]
}

// OperandValue evaluates a source operand in the state before idx:
// registers through the valuation, immediates as constants, constant-bank
// words and CTA-uniform special registers as symbols.
func (v *Valuation) OperandValue(idx int, o sass.Operand) Value {
	s := v.at[idx]
	if g := v.cfg.Kernel.Instrs[idx].Guard; !g.IsAlways() && s.gregs != nil && s.g == g {
		// Same-guard reads observe earlier same-guard defs exactly.
		old := s.viewG
		s.viewG = true
		out := operandValue(s, o)
		s.viewG = old
		return out
	}
	return operandValue(s, o)
}

func operandValue(s *valState, o sass.Operand) Value {
	switch o.Kind {
	case sass.OpdReg:
		return s.reg(o.Reg)
	case sass.OpdImm:
		return KnownConst(o.Imm)
	case sass.OpdCMem:
		out := Value{Known: true, Syms: map[Sym]int64{{Kind: SymCMem, Bank: o.Bank, Off: o.Imm}: 1}}
		return out
	case sass.OpdSReg:
		return sregValue(o.SR)
	default:
		return unknown(false)
	}
}

func sregValue(sr sass.SpecialReg) Value {
	switch sr {
	case sass.SRTidX:
		return tidTerm(TermTidX)
	case sass.SRTidY:
		return tidTerm(TermTidY)
	case sass.SRTidZ:
		return tidTerm(TermTidZ)
	case sass.SRLaneID:
		return tidTerm(TermLane)
	case sass.SRCtaidX, sass.SRCtaidY, sass.SRCtaidZ,
		sass.SRNTidX, sass.SRNTidY, sass.SRNTidZ,
		sass.SRNCtaidX, sass.SRNCtaidY, sass.SRNCtaidZ, sass.SRSMID:
		return Value{Known: true, Syms: map[Sym]int64{{Kind: SymSReg, SR: sr}: 1}}
	case sass.SRWarpID:
		// Warp-uniform but thread-varying across the CTA: must not become
		// a symbol (symbols cancel across threads in disjointness proofs).
		return unknown(true)
	default: // SR_CLOCK and friends
		return unknown(false)
	}
}

func tidTerm(t Term) Value {
	v := Value{Known: true}
	v.Tid[t] = 1
	return v
}

// srcsUniform reports whether every source value and predicate of the
// instruction is warp-uniform (including carry-in when used).
func srcsUniform(s *valState, in *sass.Instruction) bool {
	for _, o := range in.Srcs {
		switch o.Kind {
		case sass.OpdReg, sass.OpdImm, sass.OpdCMem, sass.OpdSReg:
			if !operandValue(s, o).IsUniform() {
				return false
			}
		case sass.OpdMem:
			if !s.reg(o.Reg).IsUniform() {
				return false
			}
		}
		if o.Kind == sass.OpdPred && !s.pred[o.Reg].Uniform {
			return false
		}
	}
	if in.Mods.X && !s.cc {
		return false
	}
	return true
}

// transferValues applies one instruction's effect to the state in place.
func transferValues(s *valState, in *sass.Instruction) {
	guard := in.Guard
	guardU := guard.IsAlways() || s.pred[guard.Reg].Uniform

	// Predication view management: sources of a guarded instruction see
	// the exact values defined earlier under the same guard.
	if guard.IsAlways() {
		s.viewG = false
	} else {
		if s.gregs == nil || s.g != guard {
			s.g = guard
			s.gregs = make(map[uint8]Value)
		}
		s.viewG = true
	}

	// Compute the would-be destination value for single-GPR writers.
	gprDsts := in.GPRDsts()
	var nv Value
	computed := false
	if len(gprDsts) == 1 {
		nv, computed = computeValue(s, in)
	}

	// Apply GPR writes.
	for _, r := range gprDsts {
		var out Value
		if computed {
			out = nv
		} else {
			// Multi-register (64-bit) or unmodeled writer: keep only
			// uniformity derived from the sources — except loads and
			// shuffles, whose data can differ per lane regardless of a
			// uniform address (another SM may write concurrently).
			u := srcsUniform(s, in)
			if (in.Op.IsMem() && in.Op != sass.OpLDC) || in.Op == sass.OpSHFL {
				u = false
			}
			out = unknown(u)
		}
		if !guard.IsAlways() {
			// Record the exact under-guard value for same-guard uses,
			// then fold the may-not-execute join into the main lattice.
			if r != sass.RZ {
				s.gregs[r] = out
			}
			s.viewG = false // the join below reads the unpredicated value
			old := s.reg(r)
			s.viewG = true
			out = JoinValues(old, out)
			if !out.Known && !guardU {
				out.Uniform = false
			}
		} else if s.gregs != nil {
			// An unguarded def holds under any guard.
			if r != sass.RZ {
				s.gregs[r] = out
			}
		}
		s.setReg(r, out)
	}
	s.viewG = false

	// Predicate writes.
	if pd := in.PredDsts(); len(pd) > 0 {
		nf := predResult(s, in)
		for di, p := range pd {
			f := nf
			if di > 0 {
				// A second destination holds the complement: uniformity
				// facts carry over, but EqZero describes only the primary.
				f.EqZero = nil
			}
			if !guard.IsAlways() {
				// Guarded write: the predicate may keep its old value, so
				// only facts both values share survive (EqZero would need
				// the old zero form, which we no longer have).
				old := s.pred[p]
				f = PredFacts{
					Uniform: f.Uniform && old.Uniform && guardU,
					TidDep:  f.TidDep && old.TidDep,
				}
			}
			s.pred[p] = f
			// Redefining the guard predicate of the active predication
			// view invalidates the view.
			if s.gregs != nil && p == s.g.Reg {
				s.dropGuardView()
			}
		}
	}

	// R2P scatters register bits into predicates under a mask: degrade
	// every predicate's facts by the source's uniformity.
	if in.Op == sass.OpR2P {
		u := srcsUniform(s, in)
		for p := range s.pred {
			if uint8(p) == sass.PT {
				continue
			}
			s.pred[p] = PredFacts{Uniform: s.pred[p].Uniform && u}
		}
		s.dropGuardView()
	}

	// Condition code.
	if in.Mods.SetCC {
		u := srcsUniform(s, in)
		if !guard.IsAlways() {
			u = u && s.cc && guardU
		}
		s.cc = u
	}
}

// computeValue models one single-destination instruction, returning the
// new destination value.
func computeValue(s *valState, in *sass.Instruction) (Value, bool) {
	src := func(i int) Value {
		if i >= len(in.Srcs) {
			return unknown(false)
		}
		return operandValue(s, in.Srcs[i])
	}
	switch in.Op {
	case sass.OpMOV:
		return src(0), true
	case sass.OpMOV32:
		return src(0), true
	case sass.OpS2R:
		return src(0), true
	case sass.OpIADD:
		if in.Mods.X {
			// Carry-in from CC: not affine-trackable.
			return unknown(srcsUniform(s, in)), true
		}
		return addValues(src(0), src(1), in.Mods.NegB), true
	case sass.OpIADD32:
		return addValues(src(0), src(1), false), true
	case sass.OpIMUL:
		return mulValues(src(0), src(1)), true
	case sass.OpIMAD:
		return addValues(mulValues(src(0), src(1)), src(2), false), true
	case sass.OpISCADD:
		if sh, ok := src(2).IsConst(); ok && sh >= 0 && sh < 32 {
			return addValues(scaleValue(src(0), 1<<uint(sh)), src(1), false), true
		}
		return unknown(srcsUniform(s, in)), true
	case sass.OpSHL:
		if sh, ok := src(1).IsConst(); ok && sh >= 0 && sh < 32 {
			return scaleValue(src(0), 1<<uint(sh)), true
		}
		return unknown(srcsUniform(s, in)), true
	case sass.OpSHR:
		if a, ok := src(0).IsConst(); ok {
			if sh, ok2 := src(1).IsConst(); ok2 && sh >= 0 && sh < 32 {
				if in.Mods.Unsigned {
					return KnownConst(int64(uint32(a) >> uint(sh))), true
				}
				return KnownConst(int64(int32(a) >> uint(sh))), true
			}
		}
		return unknown(srcsUniform(s, in)), true
	case sass.OpLOP:
		if in.Mods.Logic == sass.LogicPASS {
			return src(1), true
		}
		if a, ok := src(0).IsConst(); ok {
			if b, ok2 := src(1).IsConst(); ok2 {
				switch in.Mods.Logic {
				case sass.LogicAND:
					return KnownConst(int64(uint32(a) & uint32(b))), true
				case sass.LogicOR:
					return KnownConst(int64(uint32(a) | uint32(b))), true
				case sass.LogicXOR:
					return KnownConst(int64(uint32(a) ^ uint32(b))), true
				}
			}
		}
		return unknown(srcsUniform(s, in)), true
	case sass.OpLDC:
		// Constant memory is immutable for the launch: uniform iff the
		// address is, but the loaded word itself is not tracked.
		return unknown(srcsUniform(s, in)), true
	case sass.OpVOTE:
		// Warp collectives produce the same value in every lane.
		return unknown(true), true
	case sass.OpLD, sass.OpLDG, sass.OpLDL, sass.OpLDS, sass.OpTLD,
		sass.OpATOM, sass.OpATOMS, sass.OpSHFL:
		// Loaded/shuffled data: other warps may race with it, so not even
		// a uniform address yields a provably uniform value.
		return unknown(false), true
	case sass.OpSEL, sass.OpIMNMX, sass.OpFMNMX:
		return unknown(srcsUniform(s, in)), true
	default:
		if in.Op.IsNumeric() {
			return unknown(srcsUniform(s, in)), true
		}
		return unknown(false), true
	}
}

// predResult models a predicate-writing instruction's facts.
func predResult(s *valState, in *sass.Instruction) PredFacts {
	switch in.Op {
	case sass.OpISETP, sass.OpFSETP:
		f := PredFacts{Uniform: srcsUniform(s, in)}
		if in.Op == sass.OpISETP && len(in.Srcs) >= 2 {
			a := operandValue(s, in.Srcs[0])
			b := operandValue(s, in.Srcs[1])
			if a.Known && b.Known {
				d := addValues(a, b, true)
				f.TidDep = d.HasTidTerm()
				// With an AND combine (the default) the result implies
				// the compare holds, so P ⟹ (a − b) == 0.
				if in.Mods.Cmp == sass.CmpEQ && in.Mods.Logic == sass.LogicAND {
					f.EqZero = &d
				}
			}
		}
		return f
	case sass.OpPSETP:
		u := true
		dep := true
		for _, o := range in.Srcs {
			if o.Kind == sass.OpdPred && o.Reg != sass.PT {
				u = u && s.pred[o.Reg].Uniform
				dep = dep && s.pred[o.Reg].TidDep
			}
		}
		return PredFacts{Uniform: u, TidDep: dep}
	case sass.OpVOTE:
		return PredFacts{Uniform: true}
	default:
		return PredFacts{Uniform: srcsUniform(s, in)}
	}
}

// BlockDims is a launch block-dimension hint for cross-thread
// disjointness proofs (the analog of __launch_bounds__: the compiler may
// know the CTA shape statically). Zero dims mean unknown.
type BlockDims struct{ X, Y, Z int }

// extent returns the trip count of each thread-varying term under the
// hint (lane spans a full warp).
func (d BlockDims) extent(t Term) int {
	switch t {
	case TermTidX:
		return d.X
	case TermTidY:
		return d.Y
	case TermTidZ:
		return d.Z
	default:
		return 32
	}
}

// Valid reports whether the hint is usable.
func (d BlockDims) Valid() bool { return d.X > 0 && d.Y > 0 && d.Z > 0 }

// DisjointAcrossThreads proves, if it can, that the byte ranges
// [a, a+wa) and [b, b+wb), computed by two *different* threads of the
// same CTA, never overlap. dims bounds the thread-index ranges; without a
// valid hint only thread-invariant separations are provable. A false
// return means "not proven", never "they overlap".
func DisjointAcrossThreads(a Value, wa int, b Value, wb int, dims BlockDims) bool {
	if !a.Known || !b.Known || wa <= 0 || wb <= 0 {
		return false
	}
	// CTA-uniform symbols take the same runtime value for both threads,
	// so they cancel — but only when the coefficients match exactly.
	for s, c := range a.Syms {
		if b.Syms[s] != c {
			return false
		}
	}
	for s, c := range b.Syms {
		if a.Syms[s] != c {
			return false
		}
	}
	dc := a.Const - b.Const // D = addrA(t1) − addrB(t2) at tid zero

	if !a.HasTidTerm() && !b.HasTidTerm() {
		// Thread-invariant separation: D is the constant dc.
		return dc >= int64(wb) || dc <= -int64(wa)
	}
	if !dims.Valid() {
		return false
	}

	// Interval test over independent t1, t2 ∈ dims:
	// D = dc + Σ a_t·t1_t − Σ b_t·t2_t.
	lo, hi := dc, dc
	for t := Term(0); t < NumTerms; t++ {
		span := int64(dims.extent(t) - 1)
		addRange := func(c int64) {
			if c >= 0 {
				hi += c * span
			} else {
				lo += c * span
			}
		}
		addRange(a.Tid[t])
		addRange(-b.Tid[t])
	}
	if lo >= int64(wb) || hi <= -int64(wa) {
		return true
	}

	// Injectivity test: identical affine forms evaluated at *distinct*
	// thread indices land at least an access width apart.
	if dc != 0 || a.Tid != b.Tid {
		return false
	}
	w := int64(wa)
	if int64(wb) > w {
		w = int64(wb)
	}
	return injectiveOverThreads(a, w, dims)
}

// DisjointSameThread proves, if it can, that the byte ranges [a, a+wa)
// and [b, b+wb), computed by the *same* thread, never overlap. It is the
// same-thread companion of DisjointAcrossThreads: the instruction
// scheduler may swap two memory accesses of one thread only when they are
// disjoint for every thread pair, including t1 == t2 — which
// DisjointAcrossThreads deliberately excludes. CTA-uniform symbols cancel
// when their coefficients match; the remaining difference
// D(t) = dc + Σ (a_t − b_t)·t_t is interval-tested over one shared thread
// index. A false return means "not proven", never "they overlap".
func DisjointSameThread(a Value, wa int, b Value, wb int, dims BlockDims) bool {
	if !a.Known || !b.Known || wa <= 0 || wb <= 0 {
		return false
	}
	for s, c := range a.Syms {
		if b.Syms[s] != c {
			return false
		}
	}
	for s, c := range b.Syms {
		if a.Syms[s] != c {
			return false
		}
	}
	dc := a.Const - b.Const
	if a.Tid == b.Tid {
		// Tid terms cancel for a shared thread index: D is constant.
		return dc >= int64(wb) || dc <= -int64(wa)
	}
	if !dims.Valid() {
		return false
	}
	lo, hi := dc, dc
	for t := Term(0); t < NumTerms; t++ {
		c := a.Tid[t] - b.Tid[t]
		span := int64(dims.extent(t) - 1)
		if c >= 0 {
			hi += c * span
		} else {
			lo += c * span
		}
	}
	return lo >= int64(wb) || hi <= -int64(wa)
}

// injectiveOverThreads proves, if it can, that the affine form v evaluated
// at two *distinct* thread indices of a CTA shaped dims always yields
// values at least w apart. Requires every multi-extent dimension to
// participate and the sorted coefficients to form a mixed radix whose
// strides exceed w. The lane term cannot distinguish threads (two threads
// can share a lane), so it must be absent.
func injectiveOverThreads(v Value, w int64, dims BlockDims) bool {
	if !v.Known || !dims.Valid() || v.Tid[TermLane] != 0 {
		return false
	}
	type dim struct {
		coeff int64
		ext   int64
	}
	var ds []dim
	for t := TermTidX; t <= TermTidZ; t++ {
		ext := int64(dims.extent(t))
		if ext <= 1 {
			continue // this dimension never differs between threads
		}
		c := v.Tid[t]
		if c < 0 {
			c = -c
		}
		if c == 0 {
			// Two threads differing only here collide exactly.
			return false
		}
		ds = append(ds, dim{coeff: c, ext: ext})
	}
	if len(ds) == 0 {
		return false // no thread-distinguishing dimension at all
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].coeff < ds[j].coeff })
	span := int64(0) // max reach of already-covered dimensions, width included
	for _, d := range ds {
		if d.coeff < span+w {
			return false
		}
		span += d.coeff * (d.ext - 1)
	}
	return true
}

// SingleThreadZero proves, if it can, that at most one thread of a CTA
// shaped dims satisfies diff == 0: the form is injective over threads (at
// unit width), so its zero — if any thread hits it — is unique.
// CTA-uniform symbols shift every thread's value identically and do not
// disturb injectivity. This refines guarded shared-memory accesses: a site
// guarded by such a predicate (the @P0 of the classic `if (tid == 0)`
// idiom) executes on at most one thread and cannot race with itself.
func SingleThreadZero(diff Value, dims BlockDims) bool {
	return diff.Known && diff.HasTidTerm() && injectiveOverThreads(diff, 1, dims)
}

// EqualValues reports whether two known affine forms are structurally
// identical (same constant, tid coefficients, and symbol terms).
func EqualValues(a, b Value) bool {
	return a.Known && b.Known && equalValues(a, b)
}
