package analysis

import (
	"fmt"

	"sassi/internal/sass"
)

// CheckStructure validates the static shape of a kernel: opcodes defined,
// operand kinds and register numbers legal, branch/SSY/CAL targets
// resolved and in range (targets are instruction indices, so being "on an
// instruction boundary" is inherent — a decoded target outside [0,n] is
// the corruption this catches), control cannot fall off the kernel end,
// and no opcodes the execution backend rejects (PBK/BRK). Results that
// are entirely discarded (every destination RZ/PT) are flagged as
// warnings.
//
// Unlike Kernel.Validate, which returns the first problem as an error,
// this pass collects every finding with a position.
func CheckStructure(k *sass.Kernel) []Diagnostic {
	var diags []Diagnostic
	bad := func(i int, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Sev: Error, Check: CheckStructural, Kernel: k.Name, Instr: i,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	warn := func(i int, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Sev: Warning, Check: CheckStructural, Kernel: k.Name, Instr: i,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	n := len(k.Instrs)
	if n == 0 {
		bad(-1, "kernel has no instructions")
		return diags
	}

	sawExit := false
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if int(in.Op) >= sass.NumOpcodes() {
			bad(i, "undefined opcode %d", in.Op)
			continue
		}
		if in.Op == sass.OpEXIT {
			sawExit = true
		}
		if in.Op == sass.OpPBK || in.Op == sass.OpBRK {
			bad(i, "%s is not supported by the execution backend", in.Op)
		}
		if !in.Guard.IsAlways() && in.Guard.Reg > sass.PT {
			bad(i, "guard references undefined predicate P%d", in.Guard.Reg)
		}
		checkOperands(k, i, in, bad)

		switch in.Op {
		case sass.OpBRA, sass.OpSSY, sass.OpCAL:
			if t, ok := in.BranchTarget(); !ok || t.Kind != sass.OpdLabel {
				bad(i, "%s has no label operand", in.Op)
			} else if t.Imm < 0 {
				bad(i, "%s target label %q is unresolved", in.Op, t.Name)
			} else if t.Imm > int64(n) {
				bad(i, "%s target %d is past the kernel end (%d instructions)", in.Op, t.Imm, n)
			}
		case sass.OpJCAL:
			hasSym := false
			for _, s := range in.Srcs {
				if s.Kind == sass.OpdSym {
					hasSym = true
				}
			}
			if !hasSym {
				bad(i, "JCAL has no symbol operand")
			}
		}

		if nd := len(in.Dsts); nd > 0 && !in.Op.IsMem() && !in.Op.IsAtomic() {
			discarded := true
			for _, d := range in.Dsts {
				switch d.Kind {
				case sass.OpdReg:
					if d.Reg != sass.RZ {
						discarded = false
					}
				case sass.OpdPred:
					if d.Reg != sass.PT {
						discarded = false
					}
				default:
					discarded = false
				}
			}
			if discarded {
				warn(i, "result is discarded (every destination is RZ/PT)")
			}
		}
	}

	if !sawExit {
		bad(-1, "kernel has no EXIT instruction")
	}

	// Control must not run past the last instruction. Only an
	// unconditional control transfer (or EXIT) terminates the final path;
	// a guarded one falls through when the guard fails.
	last := &k.Instrs[n-1]
	switch {
	case last.Guard.IsAlways() &&
		(last.Op == sass.OpEXIT || last.Op == sass.OpRET ||
			last.Op == sass.OpBRA || last.Op == sass.OpSYNC):
		// Terminated.
	default:
		bad(n-1, "control can fall off the kernel end (last instruction is not an unconditional EXIT/BRA/RET/SYNC)")
	}
	return diags
}

// checkOperands validates one instruction's operand encodings.
func checkOperands(k *sass.Kernel, i int, in *sass.Instruction, bad func(int, string, ...any)) {
	n := len(k.Instrs)
	w := in.Mods.Width
	switch w {
	case 0, sass.W8, sass.W16, sass.W32, sass.W64, sass.W128:
	default:
		bad(i, "undefined width modifier %d", w)
		w = sass.W32
	}
	all := make([]sass.Operand, 0, len(in.Dsts)+len(in.Srcs))
	all = append(all, in.Dsts...)
	all = append(all, in.Srcs...)
	for oi, o := range all {
		isDst := oi < len(in.Dsts)
		switch o.Kind {
		case sass.OpdNone:
			bad(i, "operand %d is missing", oi)
		case sass.OpdReg:
			// Every uint8 names a real register (R0..R254 plus RZ=255),
			// but a multi-register access must not run off the file.
			wide := (isDst && in.Op.IsMemRead()) ||
				(!isDst && in.Op.IsMemWrite() && oi-len(in.Dsts) > 0)
			if o.Reg != sass.RZ && wide {
				if int(o.Reg)+w.Regs()-1 >= sass.NumGPR {
					bad(i, "R%d..R%d register group runs past the register file", o.Reg, int(o.Reg)+w.Regs()-1)
				}
			}
			if o.Reg != sass.RZ && int(o.Reg) != sass.SP && int(o.Reg) >= k.NumRegs && k.NumRegs > 0 {
				bad(i, "R%d exceeds the kernel's register allocation (NumRegs=%d)", o.Reg, k.NumRegs)
			}
		case sass.OpdPred:
			if o.Reg > sass.PT {
				bad(i, "undefined predicate P%d", o.Reg)
			}
		case sass.OpdMem:
			if o.Reg != sass.RZ && in.Mods.E && int(o.Reg)+1 >= sass.NumGPR {
				bad(i, "64-bit address pair R%d..R%d runs past the register file", o.Reg, int(o.Reg)+1)
			}
			if o.Reg != sass.RZ && int(o.Reg) != sass.SP && int(o.Reg) >= k.NumRegs && k.NumRegs > 0 {
				bad(i, "address base R%d exceeds the kernel's register allocation (NumRegs=%d)", o.Reg, k.NumRegs)
			}
		case sass.OpdLabel:
			if o.Imm < 0 || o.Imm > int64(n) {
				bad(i, "label %q resolves outside the kernel (%d of %d instructions)", o.Name, o.Imm, n)
			}
		case sass.OpdImm, sass.OpdCMem, sass.OpdSReg, sass.OpdSym:
			// Always well-formed as encoded.
		default:
			bad(i, "undefined operand kind %d", o.Kind)
		}
	}
}
