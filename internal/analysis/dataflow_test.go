package analysis

import (
	"testing"

	"sassi/internal/sass"
)

func TestBitsBasics(t *testing.T) {
	b := NewBits(200)
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(199)
	for _, i := range []int{0, 63, 64, 199} {
		if !b.Has(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Has(1) || b.Has(198) {
		t.Error("unset bits report set")
	}
	if got := b.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	if got := b.Members(); len(got) != 4 || got[0] != 0 || got[3] != 199 {
		t.Errorf("Members = %v", got)
	}
	b.Clear(63)
	if b.Has(63) {
		t.Error("Clear failed")
	}

	o := NewBits(200)
	o.Set(5)
	if !b.Union(o) || !b.Has(5) {
		t.Error("Union failed")
	}
	if b.Union(o) {
		t.Error("Union reported change on a no-op")
	}

	full := NewBits(200)
	full.Fill(200)
	if full.Count() != 200 {
		t.Errorf("Fill(200).Count = %d", full.Count())
	}
	if full.Has(200) {
		t.Error("Fill set bits past n")
	}
	full.Intersect(b)
	if !full.Equal(b) {
		t.Error("Intersect with full-set lhs should equal rhs")
	}
	full.AndNot(b)
	if full.Count() != 0 {
		t.Error("AndNot of itself should empty the set")
	}

	var nilBits Bits
	if nilBits.Has(3) {
		t.Error("nil Bits must report no members")
	}
}

func TestRegSpaceNames(t *testing.T) {
	if got := RegSpaceName(GPRBit(5)); got != "R5" {
		t.Errorf("GPR name = %q", got)
	}
	if got := RegSpaceName(PredBit(3)); got != "P3" {
		t.Errorf("pred name = %q", got)
	}
	if got := RegSpaceName(CCBit()); got != "CC" {
		t.Errorf("CC name = %q", got)
	}
}

// diamondKernel is an if/else joining at a common block (plain branches,
// so the two arms are genuinely disjoint CFG paths):
//
//	0: ISETP P0, R2, 0
//	1: @!P0 BRA else
//	2: MOV32 R3, 1   (then)
//	3: BRA join
//	4: else: MOV32 R3, 2
//	5: join: IADD R4, R3, 0
//	6: EXIT
func diamondKernel(t *testing.T) *sass.Kernel {
	return testKernel(t, map[string]int{"else": 4, "join": 5},
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(0), sass.P(sass.PT)}),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("else")}).WithGuard(sass.PredGuard{Reg: 0, Neg: true}),
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(3)}, []sass.Operand{sass.Imm(1)}),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("join")}),
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(3)}, []sass.Operand{sass.Imm(2)}),
		sass.New(sass.OpIADD, []sass.Operand{sass.R(4)}, []sass.Operand{sass.R(3), sass.Imm(0)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
}

func TestDominatorsDiamond(t *testing.T) {
	k := diamondKernel(t)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	dom := Dominators(cfg)

	entry := cfg.BlockOf(0).ID
	thenB := cfg.BlockOf(2).ID
	elseB := cfg.BlockOf(4).ID
	join := cfg.BlockOf(5).ID

	for _, b := range cfg.Blocks {
		if !Dominates(dom, entry, b.ID) {
			t.Errorf("entry does not dominate block %d", b.ID)
		}
		if !Dominates(dom, b.ID, b.ID) {
			t.Errorf("block %d does not dominate itself", b.ID)
		}
	}
	if Dominates(dom, thenB, join) {
		t.Error("then-arm must not dominate the join block")
	}
	if Dominates(dom, elseB, join) {
		t.Error("else-arm must not dominate the join block")
	}
	if Dominates(dom, thenB, elseB) || Dominates(dom, elseB, thenB) {
		t.Error("sibling arms must not dominate each other")
	}
}

func TestReachingDefsKill(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(1)}), // 0
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(2)}), // 1: kills 0
		sass.New(sass.OpIADD, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(0)}), // 2
		sass.New(sass.OpEXIT, nil, nil),
	)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	ri := ReachingDefs(cfg)
	got := ri.ReachingAt(2, GPRBit(2))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("ReachingAt(2, R2) = %v, want [1]", got)
	}
}

func TestReachingDefsGuardedDefDoesNotKill(t *testing.T) {
	k := testKernel(t, nil,
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(1)}),                                   // 0
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(2)}).WithGuard(sass.PredGuard{Reg: 0}), // 1
		sass.New(sass.OpIADD, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(0)}),                         // 2
		sass.New(sass.OpEXIT, nil, nil),
	)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	ri := ReachingDefs(cfg)
	got := ri.ReachingAt(2, GPRBit(2))
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("ReachingAt(2, R2) = %v, want [0 1]", got)
	}
}

func TestReachingDefsAcrossDiamond(t *testing.T) {
	k := diamondKernel(t)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	ri := ReachingDefs(cfg)
	// Both arms' writes of R3 (instrs 2 and 4) reach the join point at
	// instruction 5.
	got := ri.ReachingAt(5, GPRBit(3))
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("ReachingAt(5, R3) = %v, want [2 4]", got)
	}
}

func TestBlockLivenessDiamond(t *testing.T) {
	k := diamondKernel(t)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	ls := BlockLiveness(cfg)
	entry := cfg.BlockOf(0)
	if !ls.In[entry.ID].Has(GPRBit(2)) {
		t.Error("R2 (compared at entry) must be live-in at the entry block")
	}
	if ls.In[entry.ID].Has(GPRBit(3)) {
		t.Error("R3 is written before any read; it must not be live-in at entry")
	}
	// P0's last read is the guarded BRA in the entry block; it is dead in
	// both arms.
	thenB := cfg.BlockOf(2)
	if ls.In[thenB.ID].Has(PredBit(0)) {
		t.Error("P0 must be dead by the then-arm")
	}
}

func TestMaybeUninitReadsMergeFlag(t *testing.T) {
	// R5 written once unconditionally, then merged under a never-before
	// assigned predicate path: only the genuine source read of R6 and the
	// guarded merge of R7 should be reported, with Merge set accordingly.
	k := testKernel(t, nil,
		sass.New(sass.OpIADD, []sass.Operand{sass.R(2)}, []sass.Operand{sass.R(6), sass.Imm(0)}),                         // 0: R6 uninit read
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(0), sass.P(sass.PT)}),       // 1
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(7)}, []sass.Operand{sass.Imm(1)}).WithGuard(sass.PredGuard{Reg: 0}), // 2: guarded first write of R7 — no merge use (never assigned before)
		sass.New(sass.OpEXIT, nil, nil),
	)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	reads := MaybeUninitReads(cfg)
	var sawR6 bool
	for _, r := range reads {
		switch {
		case r.Reg == GPRBit(6) && r.Instr == 0:
			sawR6 = true
			if r.Merge {
				t.Error("R6 is a genuine source read, not a merge")
			}
		case r.Reg == GPRBit(7):
			t.Error("R7's guarded first write merged nothing (never assigned) and must not be reported")
		}
	}
	if !sawR6 {
		t.Errorf("uninitialized R6 read not reported: %v", reads)
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	k := diamondKernel(t)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	pdom := PostDominators(cfg)

	entry := cfg.BlockOf(0).ID
	thenB := cfg.BlockOf(2).ID
	elseB := cfg.BlockOf(4).ID
	join := cfg.BlockOf(5).ID

	for _, b := range cfg.Blocks {
		if !PostDominates(pdom, join, b.ID) {
			t.Errorf("join does not post-dominate block %d", b.ID)
		}
		if !PostDominates(pdom, b.ID, b.ID) {
			t.Errorf("block %d does not post-dominate itself", b.ID)
		}
	}
	if PostDominates(pdom, thenB, entry) {
		t.Error("then-arm must not post-dominate the entry")
	}
	if PostDominates(pdom, elseB, entry) {
		t.Error("else-arm must not post-dominate the entry")
	}
	if PostDominates(pdom, thenB, elseB) || PostDominates(pdom, elseB, thenB) {
		t.Error("sibling arms must not post-dominate each other")
	}
	if PostDominates(pdom, entry, join) {
		t.Error("entry must not post-dominate the join block")
	}
}

// TestPostDominatorsMultiExit checks the virtual-exit handling: with two
// EXIT blocks, neither exit post-dominates the branch above them, and the
// branch block post-dominates only itself and the entry path.
//
//	0: ISETP P0, R2, 0
//	1: @!P0 BRA alt
//	2: EXIT           (exit A)
//	3: alt: EXIT      (exit B)
func TestPostDominatorsMultiExit(t *testing.T) {
	k := testKernel(t, map[string]int{"alt": 3},
		sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(0), sass.P(sass.PT)}),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("alt")}).WithGuard(sass.PredGuard{Reg: 0, Neg: true}),
		sass.New(sass.OpEXIT, nil, nil),
		sass.New(sass.OpEXIT, nil, nil),
	)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	pdom := PostDominators(cfg)
	entry := cfg.BlockOf(0).ID
	exitA := cfg.BlockOf(2).ID
	exitB := cfg.BlockOf(3).ID
	if PostDominates(pdom, exitA, entry) || PostDominates(pdom, exitB, entry) {
		t.Error("no single exit may post-dominate the branch block")
	}
	if !PostDominates(pdom, entry, entry) {
		t.Error("entry must post-dominate itself")
	}
	if got := pdom[exitA].Members(); len(got) != 1 || got[0] != exitA {
		t.Errorf("exit A post-dominators = %v, want only itself", got)
	}
}

// TestPostDominatorsLinear: in a straight-line kernel every later block
// post-dominates every earlier one.
func TestPostDominatorsLinear(t *testing.T) {
	k := testKernel(t, map[string]int{"mid": 2},
		sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.Imm(1)}),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("mid")}),
		sass.New(sass.OpIADD, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(1)}),
		sass.New(sass.OpEXIT, nil, nil),
	)
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatal(err)
	}
	pdom := PostDominators(cfg)
	for _, a := range cfg.Blocks {
		for _, b := range cfg.Blocks {
			if a.Start >= b.Start {
				if !PostDominates(pdom, a.ID, b.ID) {
					t.Errorf("block %d should post-dominate block %d", a.ID, b.ID)
				}
			}
		}
	}
}
