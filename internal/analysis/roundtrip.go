package analysis

import (
	"fmt"

	"sassi/internal/sass"
)

// CheckRoundTripEncoding serializes the kernel with MarshalBinary,
// deserializes it, and requires the result to be semantically identical:
// every instruction field the encoding carries must survive Encode→Decode
// unchanged. (The Comment field is debug-only and deliberately not
// encoded; it is excluded from the comparison.)
func CheckRoundTripEncoding(k *sass.Kernel) []Diagnostic {
	kernelDiag := func(format string, args ...any) []Diagnostic {
		return []Diagnostic{{
			Sev: Error, Check: CheckRoundTrip, Kernel: k.Name, Instr: -1,
			Msg: fmt.Sprintf(format, args...),
		}}
	}
	data, err := k.MarshalBinary()
	if err != nil {
		return kernelDiag("encode failed: %v", err)
	}
	var dec sass.Kernel
	if err := dec.UnmarshalBinary(data); err != nil {
		return kernelDiag("decode of own encoding failed: %v", err)
	}
	return DiffKernels(k, &dec, CheckRoundTrip)
}

// DiffKernels compares two kernels field by field and reports every
// difference as an error diagnostic under the given check name,
// positioned in kernel a. It is the comparison core of both the
// round-trip check and the round-trip unit tests (which corrupt the
// decoded copy and expect the differences found).
func DiffKernels(a, b *sass.Kernel, check string) []Diagnostic {
	var diags []Diagnostic
	bad := func(i int, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Sev: Error, Check: check, Kernel: a.Name, Instr: i,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	if a.Name != b.Name {
		bad(-1, "name %q became %q", a.Name, b.Name)
	}
	if a.NumRegs != b.NumRegs || a.NumPreds != b.NumPreds {
		bad(-1, "register counts (%d GPR, %d pred) became (%d, %d)",
			a.NumRegs, a.NumPreds, b.NumRegs, b.NumPreds)
	}
	if a.SharedBytes != b.SharedBytes || a.LocalBytes != b.LocalBytes {
		bad(-1, "memory sizes (shared %d, local %d) became (%d, %d)",
			a.SharedBytes, a.LocalBytes, b.SharedBytes, b.LocalBytes)
	}
	if len(a.Params) != len(b.Params) {
		bad(-1, "parameter count %d became %d", len(a.Params), len(b.Params))
	} else {
		for i := range a.Params {
			if a.Params[i] != b.Params[i] {
				bad(-1, "parameter %d %+v became %+v", i, a.Params[i], b.Params[i])
			}
		}
	}
	if len(a.Labels) != len(b.Labels) {
		bad(-1, "label count %d became %d", len(a.Labels), len(b.Labels))
	} else {
		for name, idx := range a.Labels {
			if got, ok := b.Labels[name]; !ok || got != idx {
				bad(-1, "label %q index %d became %d (present=%t)", name, idx, got, ok)
			}
		}
	}
	if len(a.Instrs) != len(b.Instrs) {
		bad(-1, "instruction count %d became %d", len(a.Instrs), len(b.Instrs))
		return diags
	}
	const maxInstrDiffs = 8
	reportedInstrs := 0
	for i := range a.Instrs {
		if msg := instrDiff(&a.Instrs[i], &b.Instrs[i]); msg != "" {
			if reportedInstrs++; reportedInstrs > maxInstrDiffs {
				bad(-1, "further instruction differences suppressed")
				break
			}
			bad(i, "instruction changed: %s", msg)
		}
	}
	return diags
}

// instrDiff describes the first semantic difference between two
// instructions, or "" if they are equivalent. Comment is ignored; nil and
// empty operand slices are equivalent.
func instrDiff(a, b *sass.Instruction) string {
	if a.Op != b.Op {
		return fmt.Sprintf("opcode %v became %v", a.Op, b.Op)
	}
	if a.Guard != b.Guard {
		return fmt.Sprintf("guard %+v became %+v", a.Guard, b.Guard)
	}
	if a.Mods != b.Mods {
		return fmt.Sprintf("modifiers %+v became %+v", a.Mods, b.Mods)
	}
	if a.Injected != b.Injected {
		return fmt.Sprintf("injected flag %t became %t", a.Injected, b.Injected)
	}
	if msg := operandsDiff("destination", a.Dsts, b.Dsts); msg != "" {
		return msg
	}
	return operandsDiff("source", a.Srcs, b.Srcs)
}

func operandsDiff(what string, a, b []sass.Operand) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%s count %d became %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("%s %d %v became %v", what, i, a[i], b[i])
		}
	}
	return ""
}
