package analysis_test

import (
	"strings"
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/workloads"
)

// instrumentedPair compiles a workload and instruments it heavily, keeping
// a pristine clone of the pre-instrumentation program for diffing.
func instrumentedPair(t *testing.T, workload string) (orig, inst *sass.Program) {
	t.Helper()
	spec, ok := workloads.Get(workload)
	if !ok {
		t.Fatalf("workload %q not registered", workload)
	}
	prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
	if err != nil {
		t.Fatal(err)
	}
	orig = sass.NewProgram()
	for _, k := range prog.Kernels {
		orig.AddKernel(k.Clone())
	}
	err = sassi.Instrument(prog, sassi.Options{
		Where:         sassi.BeforeAll | sassi.AfterMem,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "test_before",
		AfterHandler:  "test_after",
		Verify:        analysis.VerifyOn,
	})
	if err != nil {
		t.Fatal(err)
	}
	return orig, prog
}

func cloneProgram(p *sass.Program) *sass.Program {
	c := sass.NewProgram()
	for _, k := range p.Kernels {
		c.AddKernel(k.Clone())
	}
	for sym := range p.Handlers {
		c.InternHandler(sym)
	}
	return c
}

func verify(orig, inst *sass.Program) []analysis.Diagnostic {
	// origPos nil: recover originals from the Injected flags (valid for a
	// single instrumentation pass, which is what instrumentedPair runs).
	return analysis.VerifyInstrumentedProgram(orig, inst, sassi.Spec(), nil)
}

func wantSafetyError(t *testing.T, diags []analysis.Diagnostic, substr string) {
	t.Helper()
	for _, d := range analysis.Errors(diags) {
		if strings.Contains(d.Msg, substr) {
			return
		}
	}
	t.Fatalf("no instr-safety error containing %q in %v", substr, diags)
}

func TestInstrumentedWorkloadVerifies(t *testing.T) {
	orig, inst := instrumentedPair(t, "demo.vecadd")
	if diags := verify(orig, inst); analysis.HasErrors(diags) {
		t.Fatalf("clean instrumentation rejected: %v", analysis.Errors(diags))
	}
}

func TestSafetyCatchesAlteredOriginal(t *testing.T) {
	orig, inst := instrumentedPair(t, "demo.vecadd")
	bad := cloneProgram(inst)
	k := bad.Kernels[0]
	for i := range k.Instrs {
		if !k.Instrs[i].Injected {
			k.Instrs[i].Guard = sass.PredGuard{Reg: 0, Neg: true}
			break
		}
	}
	wantSafetyError(t, verify(orig, bad), "original instruction")
}

func TestSafetyCatchesDroppedOriginal(t *testing.T) {
	orig, inst := instrumentedPair(t, "demo.vecadd")
	bad := cloneProgram(inst)
	k := bad.Kernels[0]
	for i := range k.Instrs {
		if !k.Instrs[i].Injected {
			// Disguise an original as injected code: the original sequence
			// is now one instruction short.
			k.Instrs[i].Injected = true
			break
		}
	}
	wantSafetyError(t, verify(orig, bad), "original instructions")
}

func TestSafetyCatchesUnbalancedFrame(t *testing.T) {
	orig, inst := instrumentedPair(t, "demo.vecadd")
	bad := cloneProgram(inst)
	k := bad.Kernels[0]
	// Grow a frame-release (IADD SP, SP, +imm) so the injected code raises
	// SP above its entry value.
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if in.Injected && in.Op == sass.OpIADD &&
			len(in.Dsts) == 1 && in.Dsts[0].Kind == sass.OpdReg && in.Dsts[0].Reg == sass.SP &&
			len(in.Srcs) == 2 && in.Srcs[1].Kind == sass.OpdImm && in.Srcs[1].Imm > 0 {
			in.Srcs[1].Imm += 16
			break
		}
	}
	wantSafetyError(t, verify(orig, bad), "stack pointer")
}

func TestSafetyCatchesClobberedLiveRegister(t *testing.T) {
	orig, inst := instrumentedPair(t, "demo.vecadd")

	// Find a register the injector actually bothered to save: the saved
	// set at some site tells us it was live there.
	k := inst.Kernels[0]
	ok, _ := orig.Kernel(k.Name)
	cfg, err := sass.BuildCFG(ok)
	if err != nil {
		t.Fatal(err)
	}
	li := sass.ComputeLiveness(cfg)

	// Retarget an injected restore (the LDL reloading a saved original
	// value back into its register) at a different, live register: that
	// clobbers the victim and leaves the saved register unrestored. The
	// restore to corrupt is the highest-frame-offset LDL of a gap — the
	// low offsets hold the predicate/CC snapshots, whose reload registers
	// are scratch.
	bad := cloneProgram(inst)
	bk := bad.Kernels[0]
	origSeen := 0
	corrupted := false
	var gapBest *sass.Instruction
	for i := 0; i <= len(bk.Instrs) && !corrupted; i++ {
		if i < len(bk.Instrs) && bk.Instrs[i].Injected {
			in := &bk.Instrs[i]
			if in.Op == sass.OpLDL && len(in.Dsts) == 1 && in.Dsts[0].Kind == sass.OpdReg &&
				origSeen < len(li.LiveIn) && li.LiveIn[origSeen].Has(in.Dsts[0].Reg) &&
				(gapBest == nil || in.Srcs[0].Imm > gapBest.Srcs[0].Imm) {
				gapBest = in
			}
			continue
		}
		// Gap ended: corrupt its last restore if the site had two live
		// registers to confuse.
		if gapBest != nil && origSeen < len(li.LiveIn) {
			r := gapBest.Dsts[0].Reg
			for _, victim := range li.LiveIn[origSeen].Regs() {
				if victim != r && victim != sass.SP && int(victim) < sassi.HandlerMaxRegs {
					gapBest.Dsts[0].Reg = victim
					corrupted = true
					break
				}
			}
		}
		gapBest = nil
		origSeen++
	}
	if !corrupted {
		t.Skip("no retargetable restore found")
	}
	diags := verify(orig, bad)
	if !analysis.HasErrors(diags) {
		t.Fatal("clobbered live register not detected")
	}
}

func TestSafetyCatchesNonDenseSiteIDs(t *testing.T) {
	orig, inst := instrumentedPair(t, "demo.vecadd")
	bad := cloneProgram(inst)
	k := bad.Kernels[0]
	// The site ID is an immediate MOV32 whose value is then stored at frame
	// offset SiteIDOffset; bumping one immediate far away leaves a gap.
	idOff := sassi.Spec().SiteIDOffset
	var lastImmInstr = map[uint8]int{}
	corrupted := false
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if !in.Injected {
			continue
		}
		if in.Op == sass.OpMOV32 && len(in.Dsts) == 1 && in.Dsts[0].Kind == sass.OpdReg &&
			len(in.Srcs) == 1 && in.Srcs[0].Kind == sass.OpdImm {
			lastImmInstr[in.Dsts[0].Reg] = i
			continue
		}
		if in.Op == sass.OpSTL && len(in.Srcs) >= 2 && in.Srcs[0].Kind == sass.OpdMem &&
			in.Srcs[0].Reg == sass.SP && in.Srcs[0].Imm == idOff && in.Srcs[1].Kind == sass.OpdReg {
			if mi, ok := lastImmInstr[in.Srcs[1].Reg]; ok {
				k.Instrs[mi].Srcs[0].Imm += 10000
				corrupted = true
				break
			}
		}
	}
	if !corrupted {
		t.Fatal("no site-ID store found to corrupt")
	}
	wantSafetyError(t, verify(orig, bad), "site ID")
}

func TestSafetyCatchesBrokenLabelRemap(t *testing.T) {
	// Needs a workload with branches, so labels exist to corrupt.
	orig, inst := instrumentedPair(t, "rodinia.bfs")
	bad := cloneProgram(inst)
	corrupted := false
	for _, k := range bad.Kernels {
		// Nudge an original's remapped label one instruction back, into the
		// injected code that precedes its landing position.
		for i := range k.Instrs {
			in := &k.Instrs[i]
			if in.Injected {
				continue
			}
			for s := range in.Srcs {
				if in.Srcs[s].Kind == sass.OpdLabel && in.Srcs[s].Imm > 0 {
					in.Srcs[s].Imm--
					corrupted = true
					break
				}
			}
			if corrupted {
				break
			}
		}
		if corrupted {
			break
		}
	}
	if !corrupted {
		t.Fatal("no resolved label found to corrupt")
	}
	wantSafetyError(t, verify(orig, bad), "remapped label")
}

func TestSafetyRejectsBadOrigPosTable(t *testing.T) {
	orig, inst := instrumentedPair(t, "demo.vecadd")
	ok := orig.Kernels[0]
	ik, _ := inst.Kernel(ok.Name)
	// A non-increasing table must be rejected outright.
	tbl := make([]int, len(ok.Instrs))
	for i := range tbl {
		tbl[i] = len(ik.Instrs) - 1 - i
	}
	diags, _ := analysis.VerifyInstrumentedKernel(ok, ik, sassi.Spec(), tbl)
	wantSafetyError(t, diags, "increasing sequence")
}
