package analysis

import (
	"fmt"
	"strconv"

	"sassi/internal/sass"
)

// Divergence-analysis bounds. Real compiled code nests SSY regions a
// handful deep; hitting these caps is itself reported.
const (
	maxDivDepth  = 32
	maxCallDepth = 32
	maxDivStates = 1 << 16
)

// CheckDivergenceStack abstractly interprets every control-flow path of
// the kernel, tracking the divergence stack (SSY targets) and the call
// stack (CAL return addresses) the way the warp scheduler does:
//
//   - SSY pushes its reconvergence target;
//   - SYNC pops the innermost SSY entry and resumes at its target — with
//     an empty stack the warp silently retires, which is almost always a
//     compiler bug, so it is an error here;
//   - a guarded BRA continues along both arms with the same stack (the
//     hardware defers the fall-through lanes and replays them before
//     reconvergence, so each arm sees the stack the SSY set up);
//   - CAL pushes the return address, RET pops it (empty → error);
//   - JCAL is a handler dispatch with no net stack effect;
//   - an unconditional EXIT ends the path; a guarded EXIT falls through
//     (lanes whose guard failed keep executing);
//   - reaching past the last instruction is an error.
//
// Both stacks are depth-bounded; exceeding the bound (unbounded recursion
// or runaway SSY nesting) is an error. The state space (pc, stacks) is
// memoized, so loops terminate; if the state budget is exhausted the
// remaining paths are skipped with a warning.
//
// This is deliberately not a CFG dataflow pass: BuildCFG adds
// conservative edges from an SSY's block to its reconvergence target,
// which is sound for liveness but merges stack states that never meet at
// runtime.
func CheckDivergenceStack(k *sass.Kernel) []Diagnostic {
	n := len(k.Instrs)
	var diags []Diagnostic
	reported := map[string]bool{}
	report := func(sev Severity, i int, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		key := strconv.Itoa(i) + "\x00" + msg
		if reported[key] {
			return
		}
		reported[key] = true
		diags = append(diags, Diagnostic{
			Sev: sev, Check: CheckDivergence, Kernel: k.Name, Instr: i, Msg: msg,
		})
	}

	type state struct {
		pc   int
		div  []int // SSY reconvergence targets, innermost last
		call []int // CAL return addresses, innermost last
	}
	keyOf := func(s state) string {
		b := make([]byte, 0, 8+4*(len(s.div)+len(s.call)))
		b = strconv.AppendInt(b, int64(s.pc), 10)
		for _, t := range s.div {
			b = append(b, 'd')
			b = strconv.AppendInt(b, int64(t), 10)
		}
		for _, t := range s.call {
			b = append(b, 'c')
			b = strconv.AppendInt(b, int64(t), 10)
		}
		return string(b)
	}

	seen := map[string]bool{}
	work := []state{{pc: 0}}
	push := func(s state) {
		if key := keyOf(s); !seen[key] {
			seen[key] = true
			work = append(work, s)
		}
	}
	truncated := false

	for len(work) > 0 {
		if len(seen) > maxDivStates {
			truncated = true
			break
		}
		s := work[len(work)-1]
		work = work[:len(work)-1]

		if s.pc >= n {
			at := n - 1
			report(Error, at, "control can run past the last instruction (divergence path falls off the kernel end)")
			continue
		}
		in := &k.Instrs[s.pc]
		guarded := !in.Guard.IsAlways()

		// Successor helper: same stacks, next pc.
		succ := func(pc int) state {
			return state{pc: pc, div: s.div, call: s.call}
		}

		switch in.Op {
		case sass.OpSSY:
			t, ok := in.BranchTarget()
			if !ok || t.Imm < 0 || t.Imm > int64(n) {
				continue // structural check reports it
			}
			if len(s.div) >= maxDivDepth {
				report(Error, s.pc, "divergence stack exceeds depth %d (runaway SSY nesting)", maxDivDepth)
				continue
			}
			ns := succ(s.pc + 1)
			ns.div = append(append([]int{}, s.div...), int(t.Imm))
			push(ns)

		case sass.OpSYNC:
			if guarded {
				report(Warning, s.pc, "guard on SYNC is ignored by the warp scheduler")
			}
			if len(s.div) == 0 {
				report(Error, s.pc, "SYNC with empty divergence stack (warp would silently retire)")
				continue
			}
			ns := state{pc: s.div[len(s.div)-1], div: s.div[:len(s.div)-1], call: s.call}
			push(ns)

		case sass.OpBRA:
			t, ok := in.BranchTarget()
			if !ok || t.Imm < 0 || t.Imm > int64(n) {
				continue
			}
			push(succ(int(t.Imm)))
			if guarded {
				push(succ(s.pc + 1))
			}

		case sass.OpEXIT:
			if guarded {
				push(succ(s.pc + 1))
			}
			// Unconditional EXIT ends the path; leftover SSY entries are
			// fine (other lane subsets resume through them).

		case sass.OpCAL:
			t, ok := in.BranchTarget()
			if !ok || t.Imm < 0 || t.Imm > int64(n) {
				continue
			}
			if guarded {
				report(Warning, s.pc, "guarded CAL diverges unless the guard is warp-uniform (the backend rejects divergent CAL)")
			}
			if len(s.call) >= maxCallDepth {
				report(Error, s.pc, "call stack exceeds depth %d (unbounded recursion?)", maxCallDepth)
				continue
			}
			ns := succ(int(t.Imm))
			ns.call = append(append([]int{}, s.call...), s.pc+1)
			push(ns)
			if guarded {
				push(succ(s.pc + 1))
			}

		case sass.OpRET:
			if len(s.call) == 0 {
				report(Error, s.pc, "RET with empty call stack")
				continue
			}
			ns := state{pc: s.call[len(s.call)-1], div: s.div, call: s.call[:len(s.call)-1]}
			push(ns)
			if guarded {
				push(succ(s.pc + 1))
			}

		case sass.OpPBK, sass.OpBRK:
			// Structural check reports these; no useful successor model.
			continue

		default:
			// JCAL included: handler dispatch, no net stack effect.
			push(succ(s.pc + 1))
		}
	}

	if truncated {
		report(Warning, -1, "divergence analysis truncated after %d states; remaining paths unchecked", maxDivStates)
	}
	return diags
}
