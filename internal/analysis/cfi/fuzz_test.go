package cfi_test

import (
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/analysis/cfi"
	"sassi/internal/sass"
)

// FuzzCFI drives the CFI pass with arbitrary kernels: on any input whose
// structure passes and whose CFG builds, Analyze must terminate without
// panicking and every diagnostic must render. Seeds cover the shapes the
// pass special-cases: call trees, empty-stack RETs, mid-region calls,
// nested SSY regions, and backward reconvergence targets.
func FuzzCFI(f *testing.F) {
	seeds := [][]sass.Instruction{
		{ // call + return
			sass.New(sass.OpCAL, nil, []sass.Operand{{Kind: sass.OpdLabel, Imm: 2}}),
			sass.New(sass.OpEXIT, nil, nil),
			sass.New(sass.OpRET, nil, nil),
		},
		{ // RET with empty call stack
			sass.New(sass.OpRET, nil, nil),
			sass.New(sass.OpEXIT, nil, nil),
		},
		{ // nested SSY regions
			sass.New(sass.OpSSY, nil, []sass.Operand{{Kind: sass.OpdLabel, Imm: 5}}),
			sass.New(sass.OpSSY, nil, []sass.Operand{{Kind: sass.OpdLabel, Imm: 4}}),
			sass.New(sass.OpBRA, nil, []sass.Operand{{Kind: sass.OpdLabel, Imm: 4}}).WithGuard(sass.PredGuard{Reg: 0}),
			sass.New(sass.OpSYNC, nil, nil),
			sass.New(sass.OpSYNC, nil, nil),
			sass.New(sass.OpEXIT, nil, nil),
		},
		{ // backward SSY target
			sass.New(sass.OpNOP, nil, nil),
			sass.New(sass.OpSSY, nil, []sass.Operand{{Kind: sass.OpdLabel, Imm: 0}}),
			sass.New(sass.OpSYNC, nil, nil),
			sass.New(sass.OpEXIT, nil, nil),
		},
	}
	for _, instrs := range seeds {
		k := &sass.Kernel{Name: "fuzz", NumRegs: 8, NumPreds: 4, Instrs: instrs}
		if b, err := k.MarshalBinary(); err == nil {
			f.Add(b)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		var k sass.Kernel
		if err := k.UnmarshalBinary(data); err != nil {
			t.Skip()
		}
		if analysis.HasErrors(analysis.CheckStructure(&k)) {
			t.Skip()
		}
		cfg, err := sass.BuildCFG(&k)
		if err != nil {
			t.Skip()
		}
		_, diags := cfi.Analyze(cfg)
		for _, d := range diags {
			_ = d.String()
		}
	})
}
