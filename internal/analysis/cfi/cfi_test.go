package cfi_test

import (
	"strings"
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/analysis/cfi"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/workloads"
)

// kern assembles a test kernel with labels resolved.
func kern(t *testing.T, labels map[string]int, instrs ...sass.Instruction) *sass.Kernel {
	t.Helper()
	k := &sass.Kernel{Name: "k", NumRegs: 8, NumPreds: 4, Labels: labels, Instrs: instrs}
	if err := k.ResolveLabels(); err != nil {
		t.Fatalf("resolve labels: %v", err)
	}
	return k
}

func cfgOf(t *testing.T, k *sass.Kernel) *sass.CFG {
	t.Helper()
	if diags := analysis.CheckStructure(k); analysis.HasErrors(diags) {
		t.Fatalf("structural errors in test kernel: %v", diags)
	}
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		t.Fatalf("build CFG: %v", err)
	}
	return cfg
}

func mov(r uint8, v int64) sass.Instruction {
	return sass.New(sass.OpMOV32, []sass.Operand{sass.R(r)}, []sass.Operand{sass.Imm(v)})
}

func TestCleanCallTree(t *testing.T) {
	k := kern(t, map[string]int{"fn": 4},
		mov(0, 1),
		sass.New(sass.OpCAL, nil, []sass.Operand{sass.Label("fn")}),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(1)}, []sass.Operand{sass.R(0)}),
		sass.New(sass.OpEXIT, nil, nil),
		// fn:
		sass.New(sass.OpIADD, []sass.Operand{sass.R(0)}, []sass.Operand{sass.R(0), sass.Imm(1)}),
		sass.New(sass.OpRET, nil, nil),
	)
	targets, diags := cfi.Analyze(cfgOf(t, k))
	if len(diags) != 0 {
		t.Fatalf("clean call tree produced diagnostics: %v", diags)
	}
	if !targets.Entries[4] || !targets.Returns[2] {
		t.Fatalf("target sets wrong: entries=%v returns=%v", targets.Entries, targets.Returns)
	}
	if targets.MaxCallDepth != 1 {
		t.Fatalf("MaxCallDepth = %d, want 1", targets.MaxCallDepth)
	}
}

func TestRetWithEmptyCallStack(t *testing.T) {
	k := kern(t, nil,
		mov(0, 1),
		sass.New(sass.OpRET, nil, nil),
		sass.New(sass.OpEXIT, nil, nil),
	)
	_, diags := cfi.Analyze(cfgOf(t, k))
	want := "empty call stack"
	if !hasError(diags, want) {
		t.Fatalf("missing %q error, got %v", want, diags)
	}
}

func TestUnreachableRet(t *testing.T) {
	k := kern(t, nil,
		mov(0, 1),
		sass.New(sass.OpEXIT, nil, nil),
		sass.New(sass.OpRET, nil, nil),
	)
	_, diags := cfi.Analyze(cfgOf(t, k))
	want := "not reachable from any call site"
	if !hasError(diags, want) {
		t.Fatalf("missing %q error, got %v", want, diags)
	}
}

func TestCallIntoRegionMiddle(t *testing.T) {
	// The CAL targets fn2, which the straight-line code at fn falls into:
	// a call into the middle of a region.
	k := kern(t, map[string]int{"fn2": 4},
		sass.New(sass.OpCAL, nil, []sass.Operand{sass.Label("fn2")}),
		mov(1, 2),
		sass.New(sass.OpEXIT, nil, nil),
		mov(2, 3), // fn: falls through into fn2
		sass.New(sass.OpIADD, []sass.Operand{sass.R(0)}, []sass.Operand{sass.R(0), sass.Imm(1)}),
		sass.New(sass.OpRET, nil, nil),
	)
	_, diags := cfi.Analyze(cfgOf(t, k))
	want := "call into the middle of a region"
	if !hasError(diags, want) {
		t.Fatalf("missing %q error, got %v", want, diags)
	}
}

func TestSubroutineLoopHeadIsLegal(t *testing.T) {
	// A loop whose head is the subroutine entry: the entry block has a
	// predecessor, but it lies inside the subroutine, which is legal.
	k := kern(t, map[string]int{"fn": 2},
		sass.New(sass.OpCAL, nil, []sass.Operand{sass.Label("fn")}),
		sass.New(sass.OpEXIT, nil, nil),
		// fn: loop head
		sass.New(sass.OpIADD, []sass.Operand{sass.R(0)}, []sass.Operand{sass.R(0), sass.Imm(1)}),
		sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("fn")}).WithGuard(sass.PredGuard{Reg: 0}),
		sass.New(sass.OpRET, nil, nil),
	)
	_, diags := cfi.Analyze(cfgOf(t, k))
	for _, d := range diags {
		if d.Sev == analysis.Error {
			t.Fatalf("legal subroutine loop head flagged: %v", diags)
		}
	}
}

func TestSyncOutsideRegion(t *testing.T) {
	k := kern(t, nil,
		mov(0, 1),
		sass.New(sass.OpSYNC, nil, nil),
		sass.New(sass.OpEXIT, nil, nil),
	)
	_, diags := cfi.Analyze(cfgOf(t, k))
	want := "no enclosing SSY region"
	if !hasError(diags, want) {
		t.Fatalf("missing %q error, got %v", want, diags)
	}
}

func TestBackwardSSYTarget(t *testing.T) {
	k := kern(t, map[string]int{"back": 0},
		mov(0, 1),
		sass.New(sass.OpSSY, nil, []sass.Operand{sass.Label("back")}),
		sass.New(sass.OpSYNC, nil, nil),
		sass.New(sass.OpEXIT, nil, nil),
	)
	_, diags := cfi.Analyze(cfgOf(t, k))
	want := "precedes the SSY"
	if !hasError(diags, want) {
		t.Fatalf("missing %q error, got %v", want, diags)
	}
}

func hasError(diags []analysis.Diagnostic, substr string) bool {
	for _, d := range diags {
		if d.Sev == analysis.Error && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

// TestBuiltinsClean pins the static side of the cross-validation contract:
// every built-in workload, compiled and instrumented, is free of cfi
// diagnostics (warnings included, so the -Werror CI gate holds).
func TestBuiltinsClean(t *testing.T) {
	for _, spec := range workloads.All() {
		prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
		if err != nil {
			t.Fatalf("%s: compile: %v", spec.Name, err)
		}
		assertCFIClean(t, spec.Name, prog)
		if err := sassi.Instrument(prog, sassi.Options{
			Where:         sassi.BeforeControlXfer | sassi.BeforeSSY,
			BeforeHandler: "sassi_cfi_handler",
			Verify:        analysis.VerifyOff,
		}); err != nil {
			t.Fatalf("%s: instrument: %v", spec.Name, err)
		}
		assertCFIClean(t, spec.Name+" (instrumented)", prog)
	}
}

// TestMutantsRejected pins the other side of the contract: every CFI seed
// mutant carries a static error naming its corruption class.
func TestMutantsRejected(t *testing.T) {
	cases := []struct{ name, want string }{
		{"mutant.cfi-ret-nocall", "empty call stack"},
		{"mutant.cfi-cal-midblock", "call into the middle of a region"},
		{"mutant.cfi-ssy-skew", "no enclosing SSY region"},
	}
	for _, c := range cases {
		spec, ok := workloads.GetMutant(c.name)
		if !ok {
			t.Fatalf("mutant %s not registered", c.name)
		}
		prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
		if err != nil {
			t.Fatalf("%s: compile: %v", c.name, err)
		}
		for _, k := range prog.Kernels {
			cfg, err := sass.BuildCFG(k)
			if err != nil {
				t.Fatalf("%s: build CFG: %v", c.name, err)
			}
			if diags := cfi.Check(cfg); !hasError(diags, c.want) {
				t.Errorf("%s: missing %q error, got %v", c.name, c.want, diags)
			}
		}
	}
}

func assertCFIClean(t *testing.T, what string, prog *sass.Program) {
	t.Helper()
	for _, k := range prog.Kernels {
		cfg, err := sass.BuildCFG(k)
		if err != nil {
			t.Fatalf("%s: %s: build CFG: %v", what, k.Name, err)
		}
		if diags := cfi.Check(cfg); len(diags) != 0 {
			t.Errorf("%s: %s: cfi diagnostics on a clean built-in: %v", what, k.Name, diags)
		}
	}
}
