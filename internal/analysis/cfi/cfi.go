// Package cfi computes per-kernel legal target sets for every indirect
// control transfer in compiled SASS — CAL call sites, RET return
// addresses, SSY/SYNC reconvergence points, and the deferred paths of
// divergent branches — and checks them statically, in the spirit of
// protected-site CFI on GPU binaries (WarpGuard). The same target sets
// feed the runtime cross-check (internal/handlers.CFIChecker), which
// loads them as per-kernel shadow tables and validates the warp's call
// and divergence stacks at every control-transfer site.
//
// Importing the package registers the "cfi" check with analysis.Verify
// (the concurrency-package pattern), so sassi-lint and every verified
// compile flag structural CFI violations:
//
//   - a CAL whose target is also reachable by fall-through or branch
//     from outside the subroutine (a call into the middle of a region);
//   - a RET reachable with an empty call stack, or never reachable from
//     any call site at all;
//   - a SYNC with no enclosing SSY region, or an SSY whose reconvergence
//     target precedes it;
//   - a CAL under a provably thread-dependent guard (the machine traps
//     on divergent calls) — proven via the affine value lattice.
package cfi

import (
	"fmt"
	"sort"

	"sassi/internal/analysis"
	"sassi/internal/sass"
)

func init() {
	analysis.RegisterKernelCheck(analysis.CheckCFI, Check)
}

// Abstract-interpretation bounds, matching the divergence checker's.
const (
	maxCallDepth  = 32
	maxCallStates = 1 << 14
)

// Targets holds one kernel's legal target sets, keyed by instruction
// index. The runtime checker computes them over the instrumented kernel,
// so indices there are instrumented-code indices.
type Targets struct {
	// Entries are legal subroutine entry points: the targets of CAL
	// instructions.
	Entries map[int]bool
	// Returns are legal return addresses: i+1 for every CAL at i. A
	// warp call-stack entry holding any other value is corrupt.
	Returns map[int]bool
	// Reconv are legal reconvergence PCs: the targets of SSY
	// instructions. An SSY-kind divergence-stack entry must resume at
	// one of these.
	Reconv map[int]bool
	// Defer are legal deferred-path PCs: i+1 for every conditional
	// branch at i whose guard is not provably warp-uniform. A
	// deferred-path divergence-stack entry must resume at one of these.
	Defer map[int]bool
	// CallSites maps each CAL instruction index to its target.
	CallSites map[int]int
	// MaxCallDepth is the deepest call stack the abstract interpretation
	// saw on any path from kernel entry.
	MaxCallDepth int
}

// Legal reports whether a warp call-stack entry value is a legal return
// address.
func (t *Targets) Legal(ret int) bool { return t.Returns[ret] }

// Check is the registered "cfi" kernel check: Analyze, diagnostics only.
func Check(cfg *sass.CFG) []analysis.Diagnostic {
	_, diags := Analyze(cfg)
	return diags
}

// Analyze derives the kernel's legal target sets and the structural CFI
// diagnostics. It assumes the structural pass ran clean (resolved labels,
// in-range targets), which analysis.VerifyKernel guarantees before
// registered checks run.
func Analyze(cfg *sass.CFG) (*Targets, []analysis.Diagnostic) {
	k := cfg.Kernel
	t := &Targets{
		Entries:   map[int]bool{},
		Returns:   map[int]bool{},
		Reconv:    map[int]bool{},
		Defer:     map[int]bool{},
		CallSites: map[int]int{},
	}
	var diags []analysis.Diagnostic
	errorf := func(idx int, format string, args ...any) {
		diags = append(diags, analysis.Diagnostic{
			Sev: analysis.Error, Check: analysis.CheckCFI, Kernel: k.Name,
			Instr: idx, Msg: fmt.Sprintf(format, args...),
		})
	}
	warnf := func(idx int, format string, args ...any) {
		diags = append(diags, analysis.Diagnostic{
			Sev: analysis.Warning, Check: analysis.CheckCFI, Kernel: k.Name,
			Instr: idx, Msg: fmt.Sprintf(format, args...),
		})
	}

	val := analysis.AnalyzeValues(cfg)
	n := len(k.Instrs)
	for i := range k.Instrs {
		in := &k.Instrs[i]
		switch {
		case in.Op == sass.OpCAL:
			tgt, ok := in.BranchTarget()
			if !ok || tgt.Kind != sass.OpdLabel {
				continue // structural check reports the malformed operand
			}
			t.Entries[int(tgt.Imm)] = true
			t.CallSites[i] = int(tgt.Imm)
			if i+1 < n {
				t.Returns[i+1] = true
			}
			if !in.Guard.IsAlways() && val.GuardFacts(i).TidDep {
				errorf(i, "CAL guard is provably thread-dependent: a divergent call traps")
			}
		case in.Op == sass.OpSSY:
			tgt, ok := in.BranchTarget()
			if !ok || tgt.Kind != sass.OpdLabel {
				continue
			}
			t.Reconv[int(tgt.Imm)] = true
			if int(tgt.Imm) <= i {
				errorf(i, "SSY reconvergence target @%04x precedes the SSY: reconvergence outside the region",
					sass.InsOffset(int(tgt.Imm)))
			}
		case in.IsCondBranch():
			if i+1 < n && !val.GuardFacts(i).Uniform {
				t.Defer[i+1] = true
			}
		}
	}

	diags = append(diags, checkSyncRegions(k)...)
	diags = append(diags, checkEntries(cfg, t)...)
	diags = append(diags, checkCallPaths(cfg, t, errorf)...)
	pdom := analysis.PostDominators(cfg)
	for i := range k.Instrs {
		if k.Instrs[i].Op != sass.OpSSY {
			continue
		}
		tgt, ok := k.Instrs[i].BranchTarget()
		if !ok || tgt.Kind != sass.OpdLabel || int(tgt.Imm) >= n {
			continue
		}
		tb := cfg.BlockOf(int(tgt.Imm))
		sb := cfg.BlockOf(i)
		if tb != nil && sb != nil && !analysis.PostDominates(pdom, tb.ID, sb.ID) {
			warnf(i, "SSY reconvergence target @%04x does not post-dominate the SSY: some path skips the reconvergence point",
				sass.InsOffset(int(tgt.Imm)))
		}
	}
	return t, diags
}

// checkSyncRegions verifies that every SYNC lies inside some SSY region:
// an SSY at i < s whose reconvergence target is beyond s. A SYNC outside
// every region pops a frame that cannot belong to an enclosing SSY — the
// shape control-state corruption produces.
func checkSyncRegions(k *sass.Kernel) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	type region struct{ ssy, target int }
	var regions []region
	for i := range k.Instrs {
		if k.Instrs[i].Op != sass.OpSSY {
			continue
		}
		if tgt, ok := k.Instrs[i].BranchTarget(); ok && tgt.Kind == sass.OpdLabel {
			regions = append(regions, region{i, int(tgt.Imm)})
		}
	}
	for s := range k.Instrs {
		if k.Instrs[s].Op != sass.OpSYNC {
			continue
		}
		enclosed := false
		for _, r := range regions {
			if r.ssy < s && s < r.target {
				enclosed = true
				break
			}
		}
		if !enclosed {
			diags = append(diags, analysis.Diagnostic{
				Sev: analysis.Error, Check: analysis.CheckCFI, Kernel: k.Name, Instr: s,
				Msg: "SYNC has no enclosing SSY region: reconvergence outside any SSY/SYNC pair",
			})
		}
	}
	return diags
}

// checkEntries verifies that no subroutine entry is also reachable by
// ordinary control flow from outside the subroutine (a call into the
// middle of a region). A predecessor inside the subroutine — a loop whose
// head is the entry — is legal, so only predecessors not reachable from
// the entry itself are flagged.
func checkEntries(cfg *sass.CFG, t *Targets) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	entries := make([]int, 0, len(t.Entries))
	for e := range t.Entries {
		entries = append(entries, e)
	}
	sort.Ints(entries)
	for _, e := range entries {
		eb := cfg.BlockOf(e)
		if eb == nil || eb.Start != e {
			// A mid-block entry cannot happen after label resolution (the
			// target is a leader); defensive for callers skipping checks.
			diags = append(diags, analysis.Diagnostic{
				Sev: analysis.Error, Check: analysis.CheckCFI, Kernel: cfg.Kernel.Name, Instr: e,
				Msg: "CAL target is not a basic-block head",
			})
			continue
		}
		if len(eb.Preds) == 0 {
			continue
		}
		inBody := reachableFrom(cfg, eb.ID)
		for _, p := range eb.Preds {
			if !inBody[p] {
				diags = append(diags, analysis.Diagnostic{
					Sev: analysis.Error, Check: analysis.CheckCFI, Kernel: cfg.Kernel.Name, Instr: e,
					Msg: fmt.Sprintf("subroutine entry @%04x is also reachable by fall-through or branch from @%04x: call into the middle of a region",
						sass.InsOffset(e), sass.InsOffset(cfg.Blocks[p].End-1)),
				})
				break
			}
		}
	}
	return diags
}

// reachableFrom returns the set of blocks reachable from block b over CFG
// edges.
func reachableFrom(cfg *sass.CFG, b int) []bool {
	seen := make([]bool, len(cfg.Blocks))
	stack := []int{b}
	seen[b] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cfg.Blocks[cur].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// checkCallPaths abstractly interprets the kernel tracking only the call
// stack: CAL pushes its return address and transfers to the callee, RET
// pops and transfers to the popped address. It reports RETs reachable
// with an empty call stack, RETs unreachable from any call site, and
// call depth beyond the machine bound, and records the deepest stack
// seen in t.MaxCallDepth.
func checkCallPaths(cfg *sass.CFG, t *Targets, errorf func(int, string, ...any)) []analysis.Diagnostic {
	var diags []analysis.Diagnostic // reported via errorf; kept for signature symmetry
	k := cfg.Kernel
	n := len(k.Instrs)
	if n == 0 {
		return diags
	}

	type state struct {
		block int
		stack string // call stack encoded as comma-joined return indices
	}
	encode := func(s []int) string {
		out := ""
		for _, v := range s {
			out += fmt.Sprintf("%d,", v)
		}
		return out
	}
	seen := map[state]bool{}
	type item struct {
		block int
		stack []int
	}
	work := []item{{block: 0}}
	seen[state{0, ""}] = true

	retReachable := map[int]bool{}  // RET index -> reached with non-empty stack
	retEmpty := map[int]bool{}      // RET index -> reached with empty stack
	depthExceeded := map[int]bool{} // CAL index -> depth bound hit
	overflow := false

	push := func(w *[]item, blk int, stack []int) {
		key := state{blk, encode(stack)}
		if seen[key] {
			return
		}
		if len(seen) >= maxCallStates {
			overflow = true
			return
		}
		seen[key] = true
		*w = append(*w, item{blk, stack})
	}

	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if d := len(it.stack); d > t.MaxCallDepth {
			t.MaxCallDepth = d
		}
		blk := cfg.Blocks[it.block]
		last := blk.End - 1
		in := &k.Instrs[last]
		switch {
		case in.Op == sass.OpCAL:
			tgt, ok := in.BranchTarget()
			if !ok || tgt.Kind != sass.OpdLabel || int(tgt.Imm) >= n {
				continue
			}
			if len(it.stack) >= maxCallDepth {
				if !depthExceeded[last] {
					depthExceeded[last] = true
					errorf(last, "call depth exceeds %d on some path (unbounded recursion?)", maxCallDepth)
				}
				continue
			}
			stack := append(append([]int(nil), it.stack...), last+1)
			if cb := cfg.BlockOf(int(tgt.Imm)); cb != nil {
				push(&work, cb.ID, stack)
			}
		case in.Op == sass.OpRET:
			if len(it.stack) == 0 {
				if !retEmpty[last] {
					retEmpty[last] = true
					errorf(last, "RET reachable with an empty call stack: no matching CAL on some path")
				}
				continue
			}
			retReachable[last] = true
			ret := it.stack[len(it.stack)-1]
			if ret >= n {
				continue
			}
			if rb := cfg.BlockOf(ret); rb != nil {
				push(&work, rb.ID, it.stack[:len(it.stack)-1])
			}
		default:
			for _, s := range blk.Succs {
				push(&work, s, it.stack)
			}
		}
	}

	if !overflow {
		for i := range k.Instrs {
			if k.Instrs[i].Op == sass.OpRET && !retReachable[i] && !retEmpty[i] {
				errorf(i, "RET is not reachable from any call site: return cannot match a CAL")
			}
		}
	}
	return diags
}
