package analysis

import (
	"fmt"
	"math/bits"

	"sassi/internal/sass"
)

// Bits is a fixed-width bitset, the lattice element of every dataflow
// problem in this package.
type Bits []uint64

// NewBits allocates a zeroed bitset holding n bits.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set sets bit i.
func (b Bits) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports bit i.
func (b Bits) Has(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(uint(i)%64)) != 0
}

// Fill sets the first n bits.
func (b Bits) Fill(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if tail := n % 64; tail != 0 && len(b) > 0 {
		b[len(b)-1] = (1 << uint(tail)) - 1
	}
}

// Copy returns an independent copy.
func (b Bits) Copy() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// CopyFrom overwrites b with o.
func (b Bits) CopyFrom(o Bits) { copy(b, o) }

// Union ors o into b, reporting whether b changed. A nil o is empty.
func (b Bits) Union(o Bits) bool {
	changed := false
	for i := range o {
		if n := b[i] | o[i]; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Intersect ands o into b, reporting whether b changed.
func (b Bits) Intersect(o Bits) bool {
	changed := false
	for i := range b {
		var ov uint64
		if i < len(o) {
			ov = o[i]
		}
		if n := b[i] & ov; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// AndNot clears every bit of o from b. A nil o is empty.
func (b Bits) AndNot(o Bits) {
	for i := range o {
		b[i] &^= o[i]
	}
}

// Equal reports bitwise equality (same width assumed).
func (b Bits) Equal(o Bits) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Members lists the set bit indices in ascending order.
func (b Bits) Members() []int {
	var out []int
	for wi, w := range b {
		for w != 0 {
			out = append(out, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// Direction of a dataflow problem.
type Direction uint8

// Dataflow directions.
const (
	Forward Direction = iota
	Backward
)

// Meet operator of a dataflow problem: Union for may-analyses, Intersect
// for must-analyses.
type Meet uint8

// Meet operators.
const (
	Union Meet = iota
	Intersect
)

// Problem is a monotone bitvector dataflow problem over a sass.CFG with
// block transfer functions of the form OUT = Gen ∪ (IN − Kill).
type Problem struct {
	Dir  Direction
	Meet Meet
	// Bits is the lattice width (number of facts).
	Bits int
	// Gen and Kill are the per-block transfer sets, indexed by block ID.
	// A nil entry is the empty set.
	Gen, Kill []Bits
	// Boundary seeds the entry block's IN (forward) or every exit block's
	// OUT (backward). Nil is the empty set.
	Boundary Bits
}

// Solve iterates the problem to its fixed point and returns the IN and
// OUT set of every block. Interior blocks start at ⊤ (full for Intersect,
// empty for Union); blocks unreachable in the problem's direction keep
// values derived from that initialization, so must-analysis results for
// unreachable code are vacuously full.
func Solve(cfg *sass.CFG, p Problem) (in, out []Bits) {
	nb := len(cfg.Blocks)
	in = make([]Bits, nb)
	out = make([]Bits, nb)
	for b := 0; b < nb; b++ {
		in[b] = NewBits(p.Bits)
		out[b] = NewBits(p.Bits)
		if p.Meet == Intersect {
			in[b].Fill(p.Bits)
			out[b].Fill(p.Bits)
		}
	}
	boundary := p.Boundary
	if boundary == nil {
		boundary = NewBits(p.Bits)
	}

	transfer := func(dst, src Bits, b int) bool {
		tmp := src.Copy()
		if p.Kill != nil && p.Kill[b] != nil {
			tmp.AndNot(p.Kill[b])
		}
		if p.Gen != nil && p.Gen[b] != nil {
			tmp.Union(p.Gen[b])
		}
		if dst.Equal(tmp) {
			return false
		}
		dst.CopyFrom(tmp)
		return true
	}
	// meetInto folds src into acc under the problem's meet operator.
	meetInto := func(acc, src Bits) {
		if p.Meet == Union {
			acc.Union(src)
		} else {
			acc.Intersect(src)
		}
	}

	for changed := true; changed; {
		changed = false
		for b := 0; b < nb; b++ {
			blk := cfg.Blocks[b]
			if p.Dir == Forward {
				acc := NewBits(p.Bits)
				if p.Meet == Intersect {
					acc.Fill(p.Bits)
				}
				for _, pr := range blk.Preds {
					meetInto(acc, out[pr])
				}
				if b == 0 {
					// Entry: the boundary is an additional incoming edge
					// fact — for must-analyses it caps the meet (facts not
					// true at entry are not true after a back-edge either).
					if p.Meet == Intersect {
						acc.Intersect(boundary)
					} else {
						acc.Union(boundary)
					}
				}
				if !in[b].Equal(acc) {
					in[b].CopyFrom(acc)
					changed = true
				}
				if transfer(out[b], in[b], b) {
					changed = true
				}
			} else {
				acc := NewBits(p.Bits)
				if p.Meet == Intersect {
					acc.Fill(p.Bits)
				}
				if len(blk.Succs) == 0 {
					acc.CopyFrom(boundary)
				} else {
					for _, s := range blk.Succs {
						meetInto(acc, in[s])
					}
				}
				if !out[b].Equal(acc) {
					out[b].CopyFrom(acc)
					changed = true
				}
				if transfer(in[b], out[b], b) {
					changed = true
				}
			}
		}
	}
	return in, out
}

// Dominators computes, for every block, the set of blocks that dominate
// it (including itself), as a bitset over block IDs. Blocks unreachable
// from the entry report the full set (vacuous domination).
func Dominators(cfg *sass.CFG) []Bits {
	nb := len(cfg.Blocks)
	gen := make([]Bits, nb)
	for b := 0; b < nb; b++ {
		gen[b] = NewBits(nb)
		gen[b].Set(b)
	}
	_, out := Solve(cfg, Problem{
		Dir:  Forward,
		Meet: Intersect,
		Bits: nb,
		Gen:  gen,
		// Boundary empty: nothing dominates the entry except itself (Gen).
	})
	return out
}

// Dominates reports whether block a dominates block b given Dominators'
// result.
func Dominates(dom []Bits, a, b int) bool { return dom[b].Has(a) }

// PostDominators computes, for every block, the set of blocks that
// post-dominate it (including itself): b post-dominates a if every path
// from a to kernel exit passes through b. Kernels can have several exit
// blocks (EXIT, RET), so the analysis runs against a virtual exit that
// every no-successor block reaches; the virtual node itself is not
// represented in the result. Blocks that cannot reach any exit (infinite
// loops) report the full set (vacuous post-domination).
func PostDominators(cfg *sass.CFG) []Bits {
	nb := len(cfg.Blocks)
	gen := make([]Bits, nb)
	for b := 0; b < nb; b++ {
		gen[b] = NewBits(nb)
		gen[b].Set(b)
	}
	// Backward + Intersect: Solve seeds every no-successor block's OUT from
	// the boundary, which is exactly the virtual-exit edge — an empty
	// boundary says nothing post-dominates the exit except the exit blocks
	// themselves (their Gen).
	in, _ := Solve(cfg, Problem{
		Dir:  Backward,
		Meet: Intersect,
		Bits: nb,
		Gen:  gen,
	})
	return in
}

// PostDominates reports whether block a post-dominates block b given
// PostDominators' result.
func PostDominates(pdom []Bits, a, b int) bool { return pdom[b].Has(a) }

// The register space used by the dataflow problems: GPRs R0..R254 at
// [0,255), predicates P0..P6 at [predBase, predBase+7), and the condition
// code at ccIndex. RZ and PT are hardwired and never appear.
const (
	predBase     = sass.NumGPR
	ccIndex      = predBase + sass.NumPred
	regSpaceBits = ccIndex + 1
)

// GPRBit returns the regspace index of GPR r.
func GPRBit(r uint8) int { return int(r) }

// PredBit returns the regspace index of predicate p.
func PredBit(p uint8) int { return predBase + int(p) }

// CCBit returns the regspace index of the condition code.
func CCBit() int { return ccIndex }

// RegSpaceName renders a regspace index ("R5", "P3", "CC").
func RegSpaceName(bit int) string {
	switch {
	case bit < predBase:
		return fmt.Sprintf("R%d", bit)
	case bit < ccIndex:
		return fmt.Sprintf("P%d", bit-predBase)
	default:
		return "CC"
	}
}

// instrUses returns the regspace indices instruction in reads. The guard
// predicate is a read. A guarded (predicated) destination merges the old
// register value on inactive lanes, so it normally counts as a read too —
// except when maybeAssigned is non-nil and says the register cannot have
// been assigned on any path here, in which case the merged-in value is
// garbage on every lane and no correct program can depend on it.
func instrUses(in *sass.Instruction, maybeAssigned Bits) []int {
	var uses []int
	for _, r := range in.GPRSrcs() {
		uses = append(uses, GPRBit(r))
	}
	for _, p := range in.PredSrcs() {
		uses = append(uses, PredBit(p))
	}
	if in.Mods.X {
		uses = append(uses, CCBit())
	}
	if !in.Guard.IsAlways() {
		for _, r := range in.GPRDsts() {
			if maybeAssigned == nil || maybeAssigned.Has(GPRBit(r)) {
				uses = append(uses, GPRBit(r))
			}
		}
		for _, p := range in.PredDsts() {
			if maybeAssigned == nil || maybeAssigned.Has(PredBit(p)) {
				uses = append(uses, PredBit(p))
			}
		}
		if in.Mods.SetCC && (maybeAssigned == nil || maybeAssigned.Has(CCBit())) {
			uses = append(uses, CCBit())
		}
	}
	return uses
}

// instrDefs returns the regspace indices instruction in writes, and
// whether the write is unconditional (guard always ⇒ the def kills).
func instrDefs(in *sass.Instruction) (defs []int, uncond bool) {
	for _, r := range in.GPRDsts() {
		defs = append(defs, GPRBit(r))
	}
	for _, p := range in.PredDsts() {
		defs = append(defs, PredBit(p))
	}
	if in.Mods.SetCC {
		defs = append(defs, CCBit())
	}
	return defs, in.Guard.IsAlways()
}

// maybeAssignedIn computes, per instruction, the set of regspace entries
// that may have been assigned (by any def, conditional or not) on at least
// one path from kernel entry to that instruction. entrySet seeds the
// kernel entry (the ABI-initialized registers, e.g. the stack pointer).
func maybeAssignedIn(cfg *sass.CFG) []Bits {
	nb := len(cfg.Blocks)
	gen := make([]Bits, nb)
	for b := 0; b < nb; b++ {
		gen[b] = NewBits(regSpaceBits)
		blk := cfg.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			defs, _ := instrDefs(&cfg.Kernel.Instrs[i])
			for _, d := range defs {
				gen[b].Set(d)
			}
		}
	}
	boundary := NewBits(regSpaceBits)
	boundary.Set(GPRBit(sass.SP))
	blockIn, _ := Solve(cfg, Problem{
		Dir: Forward, Meet: Union, Bits: regSpaceBits,
		Gen: gen, Boundary: boundary,
	})
	// Expand to per-instruction precision.
	perInstr := make([]Bits, len(cfg.Kernel.Instrs))
	for b := 0; b < nb; b++ {
		blk := cfg.Blocks[b]
		cur := blockIn[b].Copy()
		for i := blk.Start; i < blk.End; i++ {
			perInstr[i] = cur.Copy()
			defs, _ := instrDefs(&cfg.Kernel.Instrs[i])
			for _, d := range defs {
				cur.Set(d)
			}
		}
	}
	return perInstr
}

// DefSite is one definition site for reaching-definitions: instruction
// Instr defines regspace entry Reg.
type DefSite struct {
	Instr int
	Reg   int // regspace index
}

// ReachInfo is the result of ReachingDefs. Bit i of a set refers to
// Sites[i].
type ReachInfo struct {
	cfg   *sass.CFG
	Sites []DefSite
	// In and Out are per-block reaching-definition sets.
	In, Out []Bits
	// byReg indexes Sites by regspace entry.
	byReg map[int][]int
}

// ReachingDefs solves reaching definitions over the CFG: a definition d
// of register r reaches point p if there is a path from d to p on which r
// is not unconditionally redefined. Guarded (predicated) definitions
// generate but do not kill.
func ReachingDefs(cfg *sass.CFG) *ReachInfo {
	ri := &ReachInfo{cfg: cfg, byReg: map[int][]int{}}
	siteAt := map[int][]int{} // instr -> site bit indices
	for i := range cfg.Kernel.Instrs {
		defs, _ := instrDefs(&cfg.Kernel.Instrs[i])
		for _, d := range defs {
			bit := len(ri.Sites)
			ri.Sites = append(ri.Sites, DefSite{Instr: i, Reg: d})
			ri.byReg[d] = append(ri.byReg[d], bit)
			siteAt[i] = append(siteAt[i], bit)
		}
	}
	nbits := len(ri.Sites)
	nb := len(cfg.Blocks)
	gen := make([]Bits, nb)
	kill := make([]Bits, nb)
	for b := 0; b < nb; b++ {
		gen[b] = NewBits(nbits)
		kill[b] = NewBits(nbits)
		blk := cfg.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			defs, uncond := instrDefs(&cfg.Kernel.Instrs[i])
			if uncond {
				// An unconditional def kills every other site of the same
				// register, including earlier gens in this block.
				for _, d := range defs {
					for _, s := range ri.byReg[d] {
						if ri.Sites[s].Instr != i {
							kill[b].Set(s)
							gen[b].Clear(s)
						}
					}
				}
			}
			for _, s := range siteAt[i] {
				gen[b].Set(s)
				kill[b].Clear(s)
			}
		}
	}
	ri.In, ri.Out = Solve(cfg, Problem{
		Dir: Forward, Meet: Union, Bits: nbits, Gen: gen, Kill: kill,
	})
	return ri
}

// ReachingAt returns the definition sites of regspace entry reg that
// reach instruction idx (just before it executes), as instruction
// indices.
func (ri *ReachInfo) ReachingAt(idx int, reg int) []int {
	blk := ri.cfg.BlockOf(idx)
	cur := ri.In[blk.ID].Copy()
	for i := blk.Start; i < idx; i++ {
		defs, uncond := instrDefs(&ri.cfg.Kernel.Instrs[i])
		if uncond {
			for _, d := range defs {
				for _, s := range ri.byReg[d] {
					cur.Clear(s)
				}
			}
		}
		for _, d := range defs {
			for _, s := range ri.byReg[d] {
				if ri.Sites[s].Instr == i {
					cur.Set(s)
				}
			}
		}
	}
	var out []int
	for _, s := range ri.byReg[reg] {
		if cur.Has(s) {
			out = append(out, ri.Sites[s].Instr)
		}
	}
	return out
}

// LiveSets is per-block liveness over the regspace, computed with the
// generic framework. It deliberately re-derives what sass.ComputeLiveness
// computes instruction-by-instruction; the two implementations are
// cross-checked against each other by the property tests.
type LiveSets struct {
	In, Out []Bits
}

// BlockLiveness solves backward liveness over the regspace: a register is
// live-in at a block if some path from the block start reaches a read of
// it with no unconditional write in between. Guarded destinations count
// as reads only when the register may have been assigned on some path
// (see instrUses), matching sass.ComputeLiveness.
func BlockLiveness(cfg *sass.CFG) *LiveSets {
	maybe := maybeAssignedIn(cfg)
	nb := len(cfg.Blocks)
	gen := make([]Bits, nb)  // upward-exposed uses
	kill := make([]Bits, nb) // unconditional defs
	for b := 0; b < nb; b++ {
		gen[b] = NewBits(regSpaceBits)
		kill[b] = NewBits(regSpaceBits)
		blk := cfg.Blocks[b]
		// Walk backward so earlier uses shadow later kills correctly:
		// live = (live − kill_i) ∪ use_i composed bottom-up.
		for i := blk.End - 1; i >= blk.Start; i-- {
			in := &cfg.Kernel.Instrs[i]
			if in.Op == sass.OpCAL || in.Op == sass.OpRET {
				// No call edges in the CFG: the callee (CAL) or the return
				// continuation (RET) may read anything. Mirrors the same
				// rule in sass.ComputeLiveness.
				for k := 0; k < regSpaceBits; k++ {
					gen[b].Set(k)
				}
			}
			defs, uncond := instrDefs(in)
			if uncond {
				for _, d := range defs {
					kill[b].Set(d)
					gen[b].Clear(d)
				}
			}
			for _, u := range instrUses(in, maybe[i]) {
				gen[b].Set(u)
			}
		}
	}
	in, out := Solve(cfg, Problem{
		Dir: Backward, Meet: Union, Bits: regSpaceBits, Gen: gen, Kill: kill,
	})
	return &LiveSets{In: in, Out: out}
}

// UninitRead is a read of a register that is not definitely assigned on
// every path from kernel entry.
type UninitRead struct {
	Instr int
	Reg   int // regspace index
	// Merge marks reads that arise from a predicated destination's merge
	// of the old register value rather than a source operand.
	Merge bool
}

// MaybeUninitReads runs the definite-assignment (forward, must) analysis
// and reports every read of a GPR/predicate/CC that is reachable from the
// kernel entry before an unconditional definition on some path. The stack
// pointer is ABI-initialized and considered assigned at entry.
//
// Guarded definitions do not assign definitely — except for a later read
// under the same guard: in if-converted code, @P0 IADD.CC followed by
// @P0 IADD.X executes the def exactly when it executes the read, so the
// pair is tracked block-locally and accepted until the guard predicate is
// redefined.
func MaybeUninitReads(cfg *sass.CFG) []UninitRead {
	maybe := maybeAssignedIn(cfg)
	nb := len(cfg.Blocks)
	gen := make([]Bits, nb) // definitely assigned by the block
	for b := 0; b < nb; b++ {
		gen[b] = NewBits(regSpaceBits)
		blk := cfg.Blocks[b]
		for i := blk.Start; i < blk.End; i++ {
			defs, uncond := instrDefs(&cfg.Kernel.Instrs[i])
			if uncond {
				for _, d := range defs {
					gen[b].Set(d)
				}
			}
		}
	}
	boundary := NewBits(regSpaceBits)
	boundary.Set(GPRBit(sass.SP))
	blockIn, _ := Solve(cfg, Problem{
		Dir: Forward, Meet: Intersect, Bits: regSpaceBits,
		Gen: gen, Boundary: boundary,
	})

	var reads []UninitRead
	for b := 0; b < nb; b++ {
		blk := cfg.Blocks[b]
		assigned := blockIn[b].Copy()
		// condAssigned[g] = registers assigned under guard g since g's
		// predicate was last written (block-local).
		condAssigned := map[sass.PredGuard]Bits{}
		for i := blk.Start; i < blk.End; i++ {
			in := &cfg.Kernel.Instrs[i]
			// Genuine source reads, as opposed to a guarded destination's
			// merge of the old value: operands, guard, carry-in.
			var srcUses []int
			for _, r := range in.GPRSrcs() {
				srcUses = append(srcUses, GPRBit(r))
			}
			for _, p := range in.PredSrcs() {
				srcUses = append(srcUses, PredBit(p))
			}
			if in.Mods.X {
				srcUses = append(srcUses, CCBit())
			}
			var condOK Bits
			if !in.Guard.IsAlways() {
				condOK = condAssigned[in.Guard]
			}
			for _, u := range instrUses(in, maybe[i]) {
				if !assigned.Has(u) && !condOK.Has(u) {
					reads = append(reads, UninitRead{
						Instr: i, Reg: u, Merge: !containsInt(srcUses, u),
					})
				}
			}
			defs, uncond := instrDefs(in)
			if uncond {
				for _, d := range defs {
					assigned.Set(d)
				}
			} else if len(defs) > 0 {
				ca := condAssigned[in.Guard]
				if ca == nil {
					ca = NewBits(regSpaceBits)
					condAssigned[in.Guard] = ca
				}
				for _, d := range defs {
					ca.Set(d)
				}
			}
			// A write to a predicate invalidates facts conditional on it.
			for _, p := range in.PredDsts() {
				delete(condAssigned, sass.PredGuard{Reg: p})
				delete(condAssigned, sass.PredGuard{Reg: p, Neg: true})
			}
		}
	}
	return reads
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// CheckDefiniteAssignment converts MaybeUninitReads into warning
// diagnostics, deduplicated per (instruction, register).
func CheckDefiniteAssignment(cfg *sass.CFG) []Diagnostic {
	var diags []Diagnostic
	seen := map[UninitRead]bool{}
	for _, r := range MaybeUninitReads(cfg) {
		key := UninitRead{Instr: r.Instr, Reg: r.Reg}
		if seen[key] {
			continue
		}
		seen[key] = true
		what := "read"
		if r.Merge {
			what = "merged (predicated write)"
		}
		diags = append(diags, Diagnostic{
			Sev: Warning, Check: CheckDefAssign, Kernel: cfg.Kernel.Name, Instr: r.Instr,
			Msg: fmt.Sprintf("%s may be %s before assignment", RegSpaceName(r.Reg), what),
		})
	}
	return diags
}
