package analysis

import (
	"fmt"
	"sort"

	"sassi/internal/sass"
)

// ABISpec describes the instrumentation calling convention the safety
// check verifies against. The instrumentor (internal/sassi) supplies its
// own values; keeping them as data here avoids an import cycle and makes
// the checker reusable for other injector implementations.
type ABISpec struct {
	// StackReg is the ABI stack pointer (R1).
	StackReg uint8
	// HandlerMaxRegs caps the handler's register footprint: live GPRs
	// below it must be saved around a handler call; GPRs at or above it
	// must not be touched by injected code at all while live.
	HandlerMaxRegs int
	// ArgRegs are the registers the ABI passes handler arguments in; all
	// must be written before each handler call.
	ArgRegs []uint8
	// SiteIDOffset is the frame offset holding the site ID; the checker
	// recovers site IDs from immediate stores to it.
	SiteIDOffset int64
	// MinFrame is the smallest legal stack frame at a handler call.
	MinFrame int64
	// FrameAlign is the required frame alignment.
	FrameAlign int64
}

// VerifyInstrumentedProgram diffs an instrumented program against the
// pre-instrumentation original: every kernel present in both is checked
// with VerifyInstrumentedKernel, and the site IDs recovered across the
// whole program must be dense (0..N-1) and unique. origPos, when non-nil,
// maps a kernel name to the output positions of its input instructions
// (see VerifyInstrumentedKernel); the injector records it so that stacked
// instrumentation passes verify correctly.
func VerifyInstrumentedProgram(orig, inst *sass.Program, spec ABISpec, origPos map[string][]int) []Diagnostic {
	var diags []Diagnostic
	byName := map[string]*sass.Kernel{}
	for _, k := range orig.Kernels {
		byName[k.Name] = k
	}
	type siteRef struct {
		kernel string
		id     int64
	}
	var sites []siteRef
	for _, ik := range inst.Kernels {
		ok, found := byName[ik.Name]
		if !found {
			diags = append(diags, Diagnostic{
				Sev: Error, Check: CheckInstrSafety, Kernel: ik.Name, Instr: -1,
				Msg: "kernel has no counterpart in the original program",
			})
			continue
		}
		kd, ids := VerifyInstrumentedKernel(ok, ik, spec, origPos[ik.Name])
		diags = append(diags, kd...)
		for _, id := range ids {
			sites = append(sites, siteRef{kernel: ik.Name, id: id})
		}
	}

	// Site IDs must be dense and unique program-wide.
	sort.Slice(sites, func(i, j int) bool { return sites[i].id < sites[j].id })
	for i, s := range sites {
		if s.id != int64(i) {
			what := "gap in site IDs"
			if i > 0 && sites[i-1].id == s.id {
				what = "duplicate site ID"
			}
			diags = append(diags, Diagnostic{
				Sev: Error, Check: CheckInstrSafety, Kernel: s.kernel, Instr: -1,
				Msg: fmt.Sprintf("%s: expected %d, found %d (site IDs must be dense and unique program-wide)", what, i, s.id),
			})
			break
		}
	}
	SortDiagnostics(diags)
	return diags
}

// VerifyInstrumentedKernel checks one instrumented kernel against its
// original:
//
//   - the original instructions appear verbatim, in order, with label
//     operands remapped onto SP-balanced positions that precede the same
//     original instruction they targeted before;
//   - injected code between originals keeps the stack pointer balanced,
//     saves every live register below HandlerMaxRegs before a handler
//     call and restores it afterward, clobbers no live register without a
//     save, writes only its own stack frame, and contains no control flow
//     other than JCAL;
//   - data captured for the handler is read from original values, never
//     from a register already repurposed as a predicate/CC snapshot;
//   - register and local-memory budgets cover the injected code.
//
// It returns the diagnostics plus the site IDs recovered from immediate
// stores to spec.SiteIDOffset, for the program-wide density check.
//
// origPos, when non-nil, lists the output position of each input
// instruction in order — the injector's remap table. When nil, the
// positions are recovered from the Injected flags, which is only correct
// for a first instrumentation pass: an already-instrumented input carries
// Injected instructions of its own that the flags cannot tell apart from
// this pass's additions.
func VerifyInstrumentedKernel(orig, inst *sass.Kernel, spec ABISpec, origPos []int) ([]Diagnostic, []int64) {
	var diags []Diagnostic
	bad := func(i int, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Sev: Error, Check: CheckInstrSafety, Kernel: inst.Name, Instr: i,
			Msg: fmt.Sprintf(format, args...),
		})
	}

	// --- Original instructions preserved verbatim and in order. ---
	if origPos == nil {
		for i := range inst.Instrs {
			if !inst.Instrs[i].Injected {
				origPos = append(origPos, i)
			}
		}
	}
	if len(origPos) != len(orig.Instrs) {
		bad(-1, "instrumented kernel carries %d original instructions, the original has %d",
			len(origPos), len(orig.Instrs))
		return diags, nil
	}
	isOrig := make([]bool, len(inst.Instrs))
	for j, p := range origPos {
		if p < 0 || p >= len(inst.Instrs) || (j > 0 && p <= origPos[j-1]) {
			bad(-1, "original-position table is not an increasing sequence of instruction indices")
			return diags, nil
		}
		isOrig[p] = true
	}
	// origCount[p] = how many originals precede position p.
	origCount := make([]int, len(inst.Instrs)+1)
	for p := 0; p < len(inst.Instrs); p++ {
		origCount[p+1] = origCount[p]
		if isOrig[p] {
			origCount[p+1]++
		}
	}
	// balanced[p] = the cumulative injected stack-pointer delta is zero on
	// entry to position p — the only positions a branch may land on.
	balanced := make([]bool, len(inst.Instrs)+1)
	{
		delta := int64(0)
		for p := 0; p <= len(inst.Instrs); p++ {
			balanced[p] = delta == 0
			if p < len(inst.Instrs) {
				if d, ok := spAdjust(&inst.Instrs[p], spec.StackReg); ok {
					delta += d
				}
			}
		}
	}
	checkLabel := func(pos int, o, n sass.Operand) {
		if n.Imm < 0 || n.Imm > int64(len(inst.Instrs)) {
			bad(pos, "remapped label %q points outside the kernel (%d)", n.Name, n.Imm)
			return
		}
		if int64(origCount[n.Imm]) != o.Imm {
			bad(pos, "remapped label %q lands before original instruction %d, want %d",
				n.Name, origCount[n.Imm], o.Imm)
			return
		}
		if !balanced[n.Imm] {
			bad(pos, "remapped label %q lands inside an open instrumentation frame", n.Name)
		}
	}
	for j := range orig.Instrs {
		a, b := &orig.Instrs[j], &inst.Instrs[origPos[j]]
		if msg := instrDiffRemapped(a, b, func(o, n sass.Operand) { checkLabel(origPos[j], o, n) }); msg != "" {
			bad(origPos[j], "original instruction %d altered: %s", j, msg)
		}
	}
	for name, oi := range orig.Labels {
		ni, ok := inst.Labels[name]
		if !ok {
			bad(-1, "label %q dropped from the label map", name)
			continue
		}
		if ni < 0 || ni > len(inst.Instrs) || origCount[ni] != oi || !balanced[ni] {
			bad(-1, "label %q remapped to %d, which is not a safe position before original instruction %d", name, ni, oi)
		}
	}

	// --- Kernel metadata budgets. ---
	anyInjected := len(origPos) != len(inst.Instrs)
	if anyInjected && inst.NumRegs < spec.HandlerMaxRegs {
		bad(-1, "NumRegs=%d does not cover the handler register budget (%d)", inst.NumRegs, spec.HandlerMaxRegs)
	}

	// --- Injected regions. ---
	cfg, err := sass.BuildCFG(orig)
	if err != nil {
		bad(-1, "original kernel has no buildable CFG: %v", err)
		return diags, nil
	}
	li := sass.ComputeLiveness(cfg)
	sc := &siteChecker{spec: spec, inst: inst, bad: bad}
	maxFrame := int64(0)
	for p := 0; p < len(inst.Instrs); p++ {
		in := &inst.Instrs[p]
		if isOrig[p] {
			if sc.open() {
				bad(p, "instrumentation frame still open at an original instruction")
				sc.reset()
			}
			continue
		}
		// The gap between original j-1 and j protects the state live on
		// entry to j (both the after-site of j-1 and the before-site of j
		// observe it); past the last original nothing is live.
		j := origCount[p]
		if j < len(orig.Instrs) {
			sc.live = li.LiveIn[j]
			sc.predLive = li.PredLiveIn[j]
			sc.ccLive = li.CCLiveIn[j]
		} else {
			sc.live = sass.RegSet{}
			sc.predLive = 0
			sc.ccLive = false
		}
		sc.instr(p, in)
		if -sc.spDelta > maxFrame {
			maxFrame = -sc.spDelta
		}
	}
	if sc.open() {
		bad(len(inst.Instrs)-1, "instrumentation frame still open at the kernel end")
	}
	if anyInjected && inst.LocalBytes < orig.LocalBytes+int(maxFrame) {
		bad(-1, "LocalBytes=%d cannot hold the original %d plus the %d-byte instrumentation frame",
			inst.LocalBytes, orig.LocalBytes, maxFrame)
	}
	return diags, sc.siteIDs
}

// Value tags for the stale-read rule: what an injected-code register
// currently holds.
const (
	tagOrig     = iota // the register's original (pre-injection) value
	tagScratch         // a value computed by injected code
	tagPredSnap        // the predicate-file snapshot (P2R)
	tagCCSnap          // the condition-code snapshot (P2R.X)
)

// Slot contents for the save/restore rule.
const (
	slotDerived  = -1 // holds injected-computed data (a params field)
	slotPredSnap = -2
	slotCCSnap   = -3
	// >= 0: holds the original value of GPR r.
)

// siteChecker walks the injected instructions of one gap, one SP-balanced
// chunk (= one injection site) at a time.
type siteChecker struct {
	spec ABISpec
	inst *sass.Kernel
	bad  func(int, string, ...any)

	live     sass.RegSet
	predLive sass.PredSet
	ccLive   bool

	spDelta      int64
	content      map[int64]int   // frame offset -> slot content
	tag          [256]uint8      // register -> value tag
	written      sass.RegSet     // GPRs written this chunk
	lastImm      map[uint8]int64 // register -> last MOV32 immediate
	predSaved    bool
	ccSaved      bool
	predRestored bool
	ccRestored   bool
	sawJCAL      bool

	siteIDs []int64
}

func (sc *siteChecker) open() bool { return sc.spDelta != 0 }

func (sc *siteChecker) reset() {
	sc.spDelta = 0
	sc.content = nil
	sc.tag = [256]uint8{}
	sc.written = sass.RegSet{}
	sc.lastImm = nil
	sc.predSaved, sc.ccSaved = false, false
	sc.predRestored, sc.ccRestored = false, false
	sc.sawJCAL = false
}

// spAdjust recognizes the frame-management pattern IADD SP, SP, #imm and
// returns its delta.
func spAdjust(in *sass.Instruction, sp uint8) (int64, bool) {
	if in.Op != sass.OpIADD || !in.Guard.IsAlways() || in.Mods != (sass.Mods{}) {
		return 0, false
	}
	if len(in.Dsts) != 1 || in.Dsts[0].Kind != sass.OpdReg || in.Dsts[0].Reg != sp {
		return 0, false
	}
	if len(in.Srcs) != 2 || in.Srcs[0].Kind != sass.OpdReg || in.Srcs[0].Reg != sp ||
		in.Srcs[1].Kind != sass.OpdImm {
		return 0, false
	}
	return in.Srcs[1].Imm, true
}

// saved reports whether some frame slot holds r's original value.
func (sc *siteChecker) saved(r uint8) bool {
	for _, c := range sc.content {
		if c == int(r) {
			return true
		}
	}
	return false
}

func (sc *siteChecker) instr(p int, in *sass.Instruction) {
	spec := &sc.spec

	// Frame management.
	if d, ok := spAdjust(in, spec.StackReg); ok {
		sc.spDelta += d
		if sc.spDelta > 0 {
			sc.bad(p, "injected code raises the stack pointer above its entry value")
			sc.spDelta = 0
		}
		if sc.spDelta == 0 {
			sc.finishChunk(p)
		}
		return
	}

	// No control flow other than the handler call.
	if in.Op.IsControlXfer() && in.Op != sass.OpJCAL {
		sc.bad(p, "injected %s: injected code must not branch", in.Op)
		return
	}

	// Stale-read rule: a register holding the predicate/CC snapshot may
	// only be stored to the frame or fed to R2P; anything else is reading
	// the snapshot as if it were program data.
	if in.Op != sass.OpSTL && in.Op != sass.OpR2P {
		for _, r := range in.GPRSrcs() {
			if sc.tag[r] == tagPredSnap || sc.tag[r] == tagCCSnap {
				sc.bad(p, "injected %s reads R%d, which holds the predicate/CC snapshot, not R%d's original value", in.Op, r, r)
			}
		}
	}

	switch in.Op {
	case sass.OpSTL:
		sc.checkSTL(p, in)
	case sass.OpLDL:
		sc.checkLDL(p, in)
	case sass.OpJCAL:
		sc.checkJCAL(p, in)
	case sass.OpP2R:
		if len(in.Dsts) == 1 && in.Dsts[0].Kind == sass.OpdReg {
			r := in.Dsts[0].Reg
			sc.noteWrite(p, in, r)
			if in.Mods.X {
				sc.tag[r] = tagCCSnap
			} else {
				sc.tag[r] = tagPredSnap
			}
		}
	case sass.OpR2P:
		// Overwrites the predicate file (or CC with .X) from a register;
		// legal only as a restore from the matching snapshot.
		if len(in.Srcs) > 0 && in.Srcs[0].Kind == sass.OpdReg {
			r := in.Srcs[0].Reg
			switch {
			case in.Mods.X && sc.tag[r] == tagCCSnap:
				sc.ccRestored = true
			case !in.Mods.X && sc.tag[r] == tagPredSnap:
				sc.predRestored = true
			case in.Mods.X && sc.ccLive:
				sc.bad(p, "injected R2P.X overwrites the live condition code from R%d, which is not a CC snapshot", r)
			case !in.Mods.X && sc.predLive != 0:
				sc.bad(p, "injected R2P overwrites live predicates from R%d, which is not a predicate snapshot", r)
			}
		}
	default:
		if in.Op.IsMemWrite() || in.Op.IsAtomic() {
			sc.bad(p, "injected %s: injected code may only write its own stack frame (STL)", in.Op)
			return
		}
		for _, r := range in.GPRDsts() {
			sc.noteWrite(p, in, r)
		}
		for _, pr := range in.PredDsts() {
			if sc.predLive.Has(pr) {
				sc.bad(p, "injected %s clobbers live predicate P%d", in.Op, pr)
			}
		}
		if in.Mods.SetCC && sc.ccLive && !sc.ccSaved {
			sc.bad(p, "injected %s clobbers the live condition code before it is saved", in.Op)
		}
		// Track immediates for site-ID recovery.
		if in.Op == sass.OpMOV32 && len(in.Dsts) == 1 && in.Dsts[0].Kind == sass.OpdReg &&
			len(in.Srcs) == 1 && in.Srcs[0].Kind == sass.OpdImm {
			if sc.lastImm == nil {
				sc.lastImm = map[uint8]int64{}
			}
			sc.lastImm[in.Dsts[0].Reg] = in.Srcs[0].Imm
		}
	}
}

// noteWrite applies the clobber rule to a GPR write by injected code.
func (sc *siteChecker) noteWrite(p int, in *sass.Instruction, r uint8) {
	if r == sass.RZ {
		return
	}
	if r == sc.spec.StackReg {
		sc.bad(p, "injected %s clobbers the stack pointer R%d", in.Op, r)
		return
	}
	if sc.live.Has(r) && !sc.saved(r) {
		sc.bad(p, "injected %s clobbers live R%d without saving it first", in.Op, r)
	}
	sc.written.Add(r)
	sc.tag[r] = tagScratch
	delete(sc.lastImm, r)
}

func (sc *siteChecker) checkSTL(p int, in *sass.Instruction) {
	if len(in.Srcs) < 2 || in.Srcs[0].Kind != sass.OpdMem || in.Srcs[1].Kind != sass.OpdReg {
		sc.bad(p, "injected STL has malformed operands")
		return
	}
	ref, data := in.Srcs[0], in.Srcs[1]
	if ref.Reg != sc.spec.StackReg {
		sc.bad(p, "injected STL writes through R%d; only the stack frame (R%d) is allowed", ref.Reg, sc.spec.StackReg)
		return
	}
	if sc.spDelta >= 0 {
		sc.bad(p, "injected STL without an allocated stack frame")
		return
	}
	width := int64(in.Mods.Width.Bytes())
	if ref.Imm < 0 || ref.Imm+width > -sc.spDelta {
		sc.bad(p, "injected STL at frame offset %#x..%#x is outside the %d-byte frame", ref.Imm, ref.Imm+width, -sc.spDelta)
		return
	}
	if sc.content == nil {
		sc.content = map[int64]int{}
	}
	regs := []uint8{data.Reg}
	if n := in.Mods.Width.Regs(); n > 1 && data.Reg != sass.RZ {
		for k := 1; k < n; k++ {
			regs = append(regs, data.Reg+uint8(k))
		}
	}
	for k, r := range regs {
		off := ref.Imm + int64(k)*4
		switch sc.tag[r] {
		case tagOrig:
			if r != sass.RZ && r != sc.spec.StackReg {
				sc.content[off] = int(r)
			} else {
				sc.content[off] = slotDerived
			}
		case tagPredSnap:
			sc.content[off] = slotPredSnap
			sc.predSaved = true
		case tagCCSnap:
			sc.content[off] = slotCCSnap
			sc.ccSaved = true
		default:
			sc.content[off] = slotDerived
		}
		// Site-ID recovery: an immediate stored at the ID offset.
		if off == sc.spec.SiteIDOffset && k == 0 {
			if id, ok := sc.lastImm[r]; ok {
				sc.siteIDs = append(sc.siteIDs, id)
			} else {
				sc.bad(p, "site ID at frame offset %#x is not a known immediate", off)
			}
		}
	}
}

func (sc *siteChecker) checkLDL(p int, in *sass.Instruction) {
	if len(in.Dsts) != 1 || in.Dsts[0].Kind != sass.OpdReg ||
		len(in.Srcs) < 1 || in.Srcs[0].Kind != sass.OpdMem {
		sc.bad(p, "injected LDL has malformed operands")
		return
	}
	ref := in.Srcs[0]
	if ref.Reg != sc.spec.StackReg || sc.spDelta >= 0 {
		sc.bad(p, "injected LDL must read the allocated stack frame")
		return
	}
	width := int64(in.Mods.Width.Bytes())
	if ref.Imm < 0 || ref.Imm+width > -sc.spDelta {
		sc.bad(p, "injected LDL at frame offset %#x..%#x is outside the %d-byte frame", ref.Imm, ref.Imm+width, -sc.spDelta)
	}
	for k := 0; k < in.Mods.Width.Regs(); k++ {
		r := in.Dsts[0].Reg
		if r == sass.RZ {
			continue
		}
		r += uint8(k)
		off := ref.Imm + int64(k)*4
		content, ok := sc.content[off]
		switch {
		case ok && content == int(r):
			// A genuine restore: the register regains its original value.
			sc.written.Add(r)
			sc.tag[r] = tagOrig
			delete(sc.lastImm, r)
		case ok && content == slotPredSnap:
			sc.noteWriteLoad(p, in, r)
			sc.tag[r] = tagPredSnap
		case ok && content == slotCCSnap:
			sc.noteWriteLoad(p, in, r)
			sc.tag[r] = tagCCSnap
		default:
			sc.noteWriteLoad(p, in, r)
		}
	}
}

// noteWriteLoad is noteWrite for LDL destinations (scratch tag applied by
// the caller when it knows better).
func (sc *siteChecker) noteWriteLoad(p int, in *sass.Instruction, r uint8) {
	if sc.live.Has(r) && !sc.saved(r) {
		sc.bad(p, "injected %s clobbers live R%d without saving it first", in.Op, r)
	}
	sc.written.Add(r)
	sc.tag[r] = tagScratch
	delete(sc.lastImm, r)
}

func (sc *siteChecker) checkJCAL(p int, in *sass.Instruction) {
	sc.sawJCAL = true
	if sc.spDelta == 0 {
		sc.bad(p, "handler call without a stack frame")
		return
	}
	if -sc.spDelta < sc.spec.MinFrame {
		sc.bad(p, "handler-call frame is %d bytes; the ABI needs at least %d", -sc.spDelta, sc.spec.MinFrame)
	}
	if sc.spec.FrameAlign > 0 && (-sc.spDelta)%sc.spec.FrameAlign != 0 {
		sc.bad(p, "handler-call frame of %d bytes is not %d-byte aligned", -sc.spDelta, sc.spec.FrameAlign)
	}
	for _, r := range sc.live.Regs() {
		if r == sc.spec.StackReg || int(r) >= sc.spec.HandlerMaxRegs {
			continue
		}
		if !sc.saved(r) {
			sc.bad(p, "live R%d is not saved before the handler call (handlers may clobber R0..R%d)", r, sc.spec.HandlerMaxRegs-1)
		}
	}
	if sc.predLive != 0 && !sc.predSaved {
		sc.bad(p, "live predicates %v are not saved before the handler call", sc.predLive.Preds())
	}
	if sc.ccLive && !sc.ccSaved {
		sc.bad(p, "the live condition code is not saved before the handler call")
	}
	for _, a := range sc.spec.ArgRegs {
		if !sc.written.Has(a) {
			sc.bad(p, "ABI argument register R%d is not set before the handler call", a)
		}
	}
	// The handler may clobber every GPR below HandlerMaxRegs; treat them as
	// scratch afterwards so the end-of-site rule (finishChunk) demands a
	// reload of each live one from its saved slot.
	for r := 0; r < sc.spec.HandlerMaxRegs && r < 256; r++ {
		u := uint8(r)
		if u == sc.spec.StackReg {
			continue
		}
		sc.written.Add(u)
		sc.tag[u] = tagScratch
		delete(sc.lastImm, u)
	}
}

// finishChunk runs the end-of-site checks once the frame is released.
func (sc *siteChecker) finishChunk(p int) {
	for _, r := range sc.written.Regs() {
		if !sc.live.Has(r) || r == sc.spec.StackReg {
			continue
		}
		if sc.tag[r] != tagOrig {
			sc.bad(p, "live R%d is not restored before the frame is released (last write is not a reload of its saved value)", r)
		}
	}
	if sc.sawJCAL {
		if sc.predLive != 0 && sc.predSaved && !sc.predRestored {
			sc.bad(p, "live predicates are not restored after the handler call")
		}
		if sc.ccLive && sc.ccSaved && !sc.ccRestored {
			sc.bad(p, "the live condition code is not restored after the handler call")
		}
	}
	sc.reset()
}

// instrDiffRemapped compares an original instruction with its copy in the
// instrumented kernel. Label operands are checked through onLabel (their
// Imm is expected to be remapped); everything else must be identical.
func instrDiffRemapped(a, b *sass.Instruction, onLabel func(o, n sass.Operand)) string {
	if a.Op != b.Op {
		return fmt.Sprintf("opcode %v became %v", a.Op, b.Op)
	}
	if a.Guard != b.Guard {
		return fmt.Sprintf("guard %+v became %+v", a.Guard, b.Guard)
	}
	if a.Mods != b.Mods {
		return fmt.Sprintf("modifiers %+v became %+v", a.Mods, b.Mods)
	}
	if a.Injected != b.Injected {
		return "injected flag changed on an original instruction"
	}
	if msg := operandsDiff("destination", a.Dsts, b.Dsts); msg != "" {
		return msg
	}
	if len(a.Srcs) != len(b.Srcs) {
		return fmt.Sprintf("source count %d became %d", len(a.Srcs), len(b.Srcs))
	}
	for i := range a.Srcs {
		ao, bo := a.Srcs[i], b.Srcs[i]
		if ao.Kind == sass.OpdLabel && bo.Kind == sass.OpdLabel {
			if ao.Name != bo.Name {
				return fmt.Sprintf("label name %q became %q", ao.Name, bo.Name)
			}
			onLabel(ao, bo)
			continue
		}
		if ao != bo {
			return fmt.Sprintf("source %d %v became %v", i, ao, bo)
		}
	}
	return ""
}
