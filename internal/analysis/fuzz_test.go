package analysis

import (
	"testing"

	"sassi/internal/sass"
)

// fuzzSeedKernel is a small kernel exercising every serialized feature:
// labels, params, guards, modifiers, memory and control operands.
func fuzzSeedKernel(t testing.TB) *sass.Kernel {
	ld := sass.New(sass.OpLDG, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Mem(2, 8)})
	ld.Mods.E = true
	ld.Mods.Width = sass.W64
	cc := sass.New(sass.OpIADD, []sass.Operand{sass.R(6)}, []sass.Operand{sass.R(4), sass.Imm(1)})
	cc.Mods.SetCC = true
	k := &sass.Kernel{
		Name: "fuzz", NumRegs: 8, NumPreds: 2,
		Labels: map[string]int{"out": 5},
		Instrs: []sass.Instruction{
			sass.New(sass.OpMOV32, []sass.Operand{sass.R(2)}, []sass.Operand{sass.CMem(0, sass.ParamBase)}),
			ld,
			sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(4), sass.Imm(0), sass.P(sass.PT)}),
			cc,
			sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("out")}).WithGuard(sass.PredGuard{Reg: 0, Neg: true}),
			sass.New(sass.OpEXIT, nil, nil),
		},
	}
	k.AddParam("p", 8)
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	return k
}

// fuzzBarrierKernel seeds the fuzzer with the synchronization and
// shared-memory shapes the divergence and concurrency passes care about:
// a tid-indexed STS, a BAR inside a guarded region, and an LDS after
// reconvergence.
func fuzzBarrierKernel(t testing.TB) *sass.Kernel {
	k := &sass.Kernel{
		Name: "fuzzbar", NumRegs: 8, NumPreds: 2, SharedBytes: 1024,
		Labels: map[string]int{"join": 6},
		Instrs: []sass.Instruction{
			sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
			sass.New(sass.OpSHL, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(2)}),
			sass.New(sass.OpSTS, nil, []sass.Operand{sass.Mem(3, 0), sass.R(2)}),
			sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(4), sass.P(sass.PT)}),
			sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("join")}).WithGuard(sass.PredGuard{Reg: 0, Neg: true}),
			sass.New(sass.OpBAR, nil, nil),
			sass.New(sass.OpLDS, []sass.Operand{sass.R(4)}, []sass.Operand{sass.Mem(3, 4)}),
			sass.New(sass.OpEXIT, nil, nil),
		},
	}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	return k
}

// fuzzCallTreeKernel seeds the fuzzer with the control shapes the CFI pass
// cares about: a CAL/RET pair, a JCAL to an external symbol, and a nested
// SSY/SYNC region (outer parity split, inner split on the called side).
func fuzzCallTreeKernel(t testing.TB) *sass.Kernel {
	k := &sass.Kernel{
		Name: "fuzzcall", NumRegs: 8, NumPreds: 2,
		Labels: map[string]int{"oinner": 7, "ojoin": 9, "fn": 11, "finner": 16, "fjoin": 18},
		Instrs: []sass.Instruction{
			sass.New(sass.OpS2R, []sass.Operand{sass.R(2)}, []sass.Operand{sass.SReg(sass.SRTidX)}),
			sass.New(sass.OpCAL, nil, []sass.Operand{sass.Label("fn")}),
			sass.New(sass.OpJCAL, nil, []sass.Operand{sass.Sym("sassi_fuzz_handler")}),
			sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(1), sass.P(sass.PT)}),
			sass.New(sass.OpSSY, nil, []sass.Operand{sass.Label("ojoin")}),
			sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("oinner")}).WithGuard(sass.PredGuard{Reg: 0}),
			sass.New(sass.OpSYNC, nil, nil),
			sass.New(sass.OpIADD, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(1)}),
			sass.New(sass.OpSYNC, nil, nil),
			sass.New(sass.OpEXIT, nil, nil),
			sass.New(sass.OpEXIT, nil, nil),
			// fn: nested divergence inside the callee
			sass.New(sass.OpISETP, []sass.Operand{sass.P(0)}, []sass.Operand{sass.R(2), sass.Imm(2), sass.P(sass.PT)}),
			sass.New(sass.OpSSY, nil, []sass.Operand{sass.Label("fjoin")}),
			sass.New(sass.OpBRA, nil, []sass.Operand{sass.Label("finner")}).WithGuard(sass.PredGuard{Reg: 0}),
			sass.New(sass.OpIADD, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(2)}),
			sass.New(sass.OpSYNC, nil, nil),
			sass.New(sass.OpIADD, []sass.Operand{sass.R(3)}, []sass.Operand{sass.R(2), sass.Imm(3)}),
			sass.New(sass.OpSYNC, nil, nil),
			sass.New(sass.OpRET, nil, nil),
		},
	}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	return k
}

// FuzzVerify feeds mutated kernel encodings through the decoder and the
// full verifier: whatever bytes arrive, the pipeline must diagnose, never
// panic. This is the robustness contract sassi-lint relies on for
// .sasskrn inputs.
func FuzzVerify(f *testing.F) {
	seed, err := fuzzSeedKernel(f).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	barSeed, err := fuzzBarrierKernel(f).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(barSeed)
	callSeed, err := fuzzCallTreeKernel(f).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(callSeed)
	// Hand-corrupted variants steer the fuzzer at interesting boundaries.
	truncated := append([]byte(nil), seed[:len(seed)/2]...)
	f.Add(truncated)
	zeroed := append([]byte(nil), seed...)
	for i := len(zeroed) - 8; i < len(zeroed); i++ {
		zeroed[i] = 0xff
	}
	f.Add(zeroed)
	f.Add([]byte("SASSKRN1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // bound decode cost; corruption coverage is size-independent
		}
		k := new(sass.Kernel)
		if err := k.UnmarshalBinary(data); err != nil {
			return // rejecting garbage is the expected path
		}
		diags := VerifyKernel(k)
		SortDiagnostics(diags)
		for _, d := range diags {
			_ = d.String()
		}
	})
}
