// Package analysis is the static-analysis layer over compiled SASS: a
// reusable forward/backward dataflow framework (dominators, reaching
// definitions, definite assignment, block liveness) plus a composable
// verifier that every compiled and instrumented program passes through.
//
// The paper's core claim (§3.2, §9.4) is that a compiler-level pass knows
// the machine-code structure — CFG, exact register liveness, divergence
// stack, calling convention — that binary rewriters must guess at. This
// package turns that structural knowledge into checks: instead of an
// injection or register-allocation bug surfacing as a wrong simulation
// result many layers later, ptxas.Compile and sassi.Instrument fail fast
// with a positioned diagnostic.
//
// Check classes (the catalogue):
//
//   - structural: branch/SSY targets in range, operands well-formed,
//     no fall-through off the kernel end, unsupported opcodes;
//   - divergence: SSY/SYNC (and CAL/RET) push/pop depth matched, typed,
//     and bounded on every control-flow path;
//   - def-assign: no GPR/predicate/CC read that is reachable-before-def
//     from kernel entry (warnings — inputs arrive via constant bank);
//   - round-trip: Encode→Decode of every instruction is the identity;
//   - instr-safety: an instrumented kernel preserves the original
//     instructions verbatim and in order, saves/restores every live
//     register its injected code clobbers, follows the handler ABI, and
//     uses dense, unique site IDs.
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"sassi/internal/sass"
)

// Severity grades a diagnostic.
type Severity uint8

// Severity levels. Errors fail verification; warnings are advisory.
const (
	Warning Severity = iota
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Check names, one per check class in the catalogue.
const (
	CheckStructural  = "structural"
	CheckDivergence  = "divergence"
	CheckDefAssign   = "def-assign"
	CheckRoundTrip   = "round-trip"
	CheckInstrSafety = "instr-safety"
	// CheckBarrier and CheckSharedRace are registered by
	// internal/analysis/concurrency (import it for the side effect).
	CheckBarrier    = "barrier-divergence"
	CheckSharedRace = "shared-race"
	// CheckCFI is registered by internal/analysis/cfi (import it for the
	// side effect): legal-target sets for CAL/RET and SSY/SYNC
	// reconvergence.
	CheckCFI = "cfi"
	// CheckSchedule is registered by internal/analysis/deps (import it
	// for the side effect): certifies that a scheduler-reordered kernel
	// (sass.Kernel.SchedOrig) is a topological order of the dependence
	// DAG of the reconstructed original, fences respected.
	CheckSchedule = "schedule"
)

// Diagnostic is one verifier finding, positioned at a kernel and (usually)
// an instruction.
type Diagnostic struct {
	Sev    Severity
	Check  string // check class, one of the Check* constants
	File   string // optional source file (set by sassi-lint)
	Kernel string
	Instr  int // instruction index within the kernel; -1 for kernel-level
	Msg    string
}

// String renders the diagnostic as
// "file: kernel@0x0018: error: divergence: message" with the instruction
// position shown as its byte offset (8 bytes per instruction, as the
// disassembly prints it). Kernel-level findings omit the offset.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.File != "" {
		b.WriteString(d.File)
		b.WriteString(": ")
	}
	b.WriteString(d.Kernel)
	if d.Instr >= 0 {
		fmt.Fprintf(&b, "@%04x", sass.InsOffset(d.Instr))
	}
	fmt.Fprintf(&b, ": %s: %s: %s", d.Sev, d.Check, d.Msg)
	return b.String()
}

// SortDiagnostics orders findings by kernel, instruction (PC), check
// name, severity (errors first), then message, for stable, deterministic
// output regardless of the order checks ran in.
func SortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Sev != b.Sev {
			return a.Sev > b.Sev
		}
		return a.Msg < b.Msg
	})
}

// Errors filters the error-severity findings.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Sev == Error {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any finding is an error.
func HasErrors(diags []Diagnostic) bool { return len(Errors(diags)) > 0 }

// VerifyError wraps error-severity diagnostics as a Go error so that
// pipeline stages (ptxas.Compile, sassi.Instrument) can fail with
// positions attached. Callers unwrap with errors.As to recover the
// individual findings.
type VerifyError struct {
	Diags []Diagnostic
}

// Error summarizes the first finding and the total count.
func (e *VerifyError) Error() string {
	errs := Errors(e.Diags)
	if len(errs) == 0 {
		return "verifier failed with no error diagnostics"
	}
	if len(errs) == 1 {
		return errs[0].String()
	}
	return fmt.Sprintf("%s (and %d more errors)", errs[0].String(), len(errs)-1)
}

// VerifyMode gates the verifier post-passes in ptxas and sassi.
type VerifyMode uint8

// Verification modes. The zero value is VerifyAuto: on under `go test`
// (so every compiled and instrumented program in the test suite passes
// through the verifier), off in production binaries where the caller
// opts in explicitly.
const (
	VerifyAuto VerifyMode = iota
	VerifyOn
	VerifyOff
)

// Enabled resolves the mode to a decision.
func (m VerifyMode) Enabled() bool {
	switch m {
	case VerifyOn:
		return true
	case VerifyOff:
		return false
	default:
		return testing.Testing()
	}
}

// String names the mode (used in cache keys).
func (m VerifyMode) String() string {
	switch m {
	case VerifyOn:
		return "on"
	case VerifyOff:
		return "off"
	default:
		return "auto"
	}
}

// KernelCheckFunc is a registered kernel-level check. It runs after the
// built-in checks, only when the structural pass found no errors and the
// CFG built, so implementations may assume resolved labels and in-range
// operands.
type KernelCheckFunc func(cfg *sass.CFG) []Diagnostic

// kernelChecks is the registry of extra checks VerifyKernel runs, in
// registration order. Packages contribute via RegisterKernelCheck from
// init (e.g. internal/analysis/concurrency); consumers opt in by
// importing the contributing package.
var kernelChecks []struct {
	name string
	fn   KernelCheckFunc
}

// RegisterKernelCheck adds a named check to the Verify pipeline. It is
// meant to be called from init; registering the same name twice panics.
func RegisterKernelCheck(name string, fn KernelCheckFunc) {
	for _, c := range kernelChecks {
		if c.name == name {
			panic("analysis: duplicate kernel check " + name)
		}
	}
	kernelChecks = append(kernelChecks, struct {
		name string
		fn   KernelCheckFunc
	}{name, fn})
}

// RegisteredChecks lists the names of registered kernel checks.
func RegisteredChecks() []string {
	out := make([]string, len(kernelChecks))
	for i, c := range kernelChecks {
		out[i] = c.name
	}
	return out
}

// KnownChecks lists every check class a diagnostic can carry — the full
// Check* catalogue. Registered kernel-check names are registry keys, not
// diagnostic classes (concurrency registers once and emits two classes),
// so they are deliberately not included. Tools that accept a check filter
// (sassi-lint -checks) validate names against this list.
func KnownChecks() []string {
	out := []string{
		CheckStructural, CheckDivergence, CheckDefAssign,
		CheckRoundTrip, CheckInstrSafety,
		CheckBarrier, CheckSharedRace, CheckCFI, CheckSchedule,
	}
	sort.Strings(out)
	return out
}

// Verify runs every kernel-level check over the program plus the
// program-level link check (JCAL symbols resolved in the handler table),
// returning all findings sorted.
func Verify(prog *sass.Program) []Diagnostic {
	var diags []Diagnostic
	for _, k := range prog.Kernels {
		diags = append(diags, VerifyKernel(k)...)
		diags = append(diags, checkLinkage(prog, k)...)
	}
	SortDiagnostics(diags)
	return diags
}

// VerifyKernel runs the structural, divergence, definite-assignment and
// encoding round-trip checks over one kernel. Deeper checks are skipped
// when the structural pass reports errors (the CFG may not be buildable).
func VerifyKernel(k *sass.Kernel) []Diagnostic {
	diags := CheckStructure(k)
	if HasErrors(diags) {
		return diags
	}
	diags = append(diags, CheckDivergenceStack(k)...)
	diags = append(diags, CheckRoundTripEncoding(k)...)
	if cfg, err := sass.BuildCFG(k); err == nil {
		diags = append(diags, CheckDefiniteAssignment(cfg)...)
		for _, c := range kernelChecks {
			diags = append(diags, c.fn(cfg)...)
		}
	} else {
		diags = append(diags, Diagnostic{
			Sev: Error, Check: CheckStructural, Kernel: k.Name, Instr: -1,
			Msg: fmt.Sprintf("cannot build CFG: %v", err),
		})
	}
	return diags
}

// checkLinkage verifies that every JCAL symbol in the kernel is interned
// in the program's handler table (i.e. the instrumentor linked it).
func checkLinkage(prog *sass.Program, k *sass.Kernel) []Diagnostic {
	var diags []Diagnostic
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if in.Op != sass.OpJCAL {
			continue
		}
		sym := ""
		for _, s := range in.Srcs {
			if s.Kind == sass.OpdSym {
				sym = s.Name
				break
			}
		}
		if sym == "" {
			continue // structural check reports the missing operand
		}
		if _, ok := prog.Handlers[sym]; !ok {
			diags = append(diags, Diagnostic{
				Sev: Error, Check: CheckStructural, Kernel: k.Name, Instr: i,
				Msg: fmt.Sprintf("JCAL to symbol %q absent from the program handler table", sym),
			})
		}
	}
	return diags
}
