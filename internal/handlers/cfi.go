package handlers

import (
	"fmt"
	"sync"

	"sassi/internal/analysis"
	"sassi/internal/analysis/cfi"
	"sassi/internal/device"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
)

// CFIHandlerSymbol is the JCAL symbol the CFI checker instruments with.
const CFIHandlerSymbol = "sassi_cfi_handler"

// maxCFIViolations bounds the violation log so a thoroughly corrupted run
// cannot grow it without bound; further findings only bump Dropped.
const maxCFIViolations = 256

// CFIViolation is one runtime control-flow-integrity finding.
type CFIViolation struct {
	Kernel string
	// Instr is the instrumented-code instruction index of the site that
	// observed the violation (-1 for load-time findings).
	Instr int
	// Kind classifies the finding: "static" (load-time target-set
	// validation failed), "call-stack" (shadow/actual call stack
	// mismatch), "return-address" (call-stack entry outside the legal
	// return set), "ret-underflow", "div-stack" (shadow/actual divergence
	// stack mismatch or illegal frame), "sync-underflow".
	Kind string
	Msg  string
}

func (v CFIViolation) String() string {
	pos := ""
	if v.Instr >= 0 {
		pos = fmt.Sprintf("@%04x", sass.InsOffset(v.Instr))
	}
	return fmt.Sprintf("%s%s: cfi %s: %s", v.Kernel, pos, v.Kind, v.Msg)
}

// cfiKernel is the per-kernel shadow table: the legal target sets computed
// over the instrumented kernel plus the original→instrumented index map.
type cfiKernel struct {
	k       *sass.Kernel
	targets *cfi.Targets
	instOf  []int // original instruction index -> instrumented index
}

// cfiShadow is one warp's shadow control state, maintained independently
// of the machine by observing every control-transfer site.
type cfiShadow struct {
	call []int
	div  []sim.DivFrame
}

// CFIChecker validates warp control state against statically computed
// legal target sets — the runtime half of the protected-site CFI scheme.
// It audits the warp's call and divergence stacks at every
// control-transfer site (plus SSY), keeping a shadow copy of both stacks
// per warp: any corruption of a return address, a divergence frame, or
// stack discipline shows up as a divergence between shadow and actual
// state, or as an entry outside the legal sets.
//
// Usage: Instrument the program with Options(), then Prepare(prog) to
// build the shadow tables from the instrumented code, register Handler(),
// and run. Prepare fails closed: a program whose static CFI analysis
// reports errors is recorded as violated before any warp executes, the
// way a CFI loader rejects a binary that fails target-set validation.
type CFIChecker struct {
	mu      sync.Mutex
	kernels map[string]*cfiKernel
	shadows map[*sim.Warp]*cfiShadow

	violations []CFIViolation
	// Dropped counts violations beyond the log bound.
	Dropped int
}

// NewCFIChecker returns an empty checker.
func NewCFIChecker() *CFIChecker {
	return &CFIChecker{
		kernels: map[string]*cfiKernel{},
		shadows: map[*sim.Warp]*cfiShadow{},
	}
}

// Options returns the instrumentation this checker needs: a before-site at
// every control transfer and every SSY.
func (c *CFIChecker) Options() sassi.Options {
	return sassi.Options{
		Where:         sassi.BeforeControlXfer | sassi.BeforeSSY,
		BeforeHandler: CFIHandlerSymbol,
	}
}

// Prepare computes the per-kernel shadow tables from the instrumented
// program. Static CFI errors are recorded as load-time violations
// (fail-closed); the program still runs so dynamic findings accumulate on
// top.
func (c *CFIChecker) Prepare(prog *sass.Program) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range prog.Kernels {
		cfg, err := sass.BuildCFG(k)
		if err != nil {
			return fmt.Errorf("cfi: %s: build CFG: %w", k.Name, err)
		}
		targets, diags := cfi.Analyze(cfg)
		for _, d := range analysis.Errors(diags) {
			c.record(CFIViolation{
				Kernel: k.Name, Instr: d.Instr, Kind: "static",
				Msg: "target-set validation failed: " + d.Msg,
			})
		}
		instOf := make([]int, 0, len(k.Instrs))
		for i := range k.Instrs {
			if !k.Instrs[i].Injected {
				instOf = append(instOf, i)
			}
		}
		c.kernels[k.Name] = &cfiKernel{k: k, targets: targets, instOf: instOf}
	}
	return nil
}

// Handler returns the checker's runtime handler.
func (c *CFIChecker) Handler() *sassi.Handler {
	return &sassi.Handler{
		Name:       CFIHandlerSymbol,
		NewFn:      c.DispatchFn,
		Sequential: true,
	}
}

// DispatchFn returns the per-warp-dispatch handler closure. It is exposed
// so fault campaigns can compose it with an injector in one handler (the
// injector corrupts on the first lane, the audit runs on the last).
func (c *CFIChecker) DispatchFn() sassi.HandlerFunc {
	var execMask uint32
	return func(ctx *device.Ctx, args sassi.HandlerArgs) {
		if args.BP.InstrWillExecute() {
			execMask |= 1 << uint(ctx.Lane())
		}
		if !ctx.IsLastActive() {
			return
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		c.audit(ctx, args, execMask)
	}
}

// Violations returns the findings so far (load-time and runtime).
func (c *CFIChecker) Violations() []CFIViolation {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CFIViolation(nil), c.violations...)
}

// Reset clears findings and per-warp shadow state, keeping the prepared
// tables.
func (c *CFIChecker) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = nil
	c.Dropped = 0
	c.shadows = map[*sim.Warp]*cfiShadow{}
}

func (c *CFIChecker) record(v CFIViolation) {
	if len(c.violations) >= maxCFIViolations {
		c.Dropped++
		return
	}
	c.violations = append(c.violations, v)
}

// audit runs once per dispatch (on the last active lane): it validates the
// warp's actual control state against the shadow and the legal sets, then
// models the site instruction's effect on the shadow. execMask is the set
// of lanes whose guard passes at the site.
func (c *CFIChecker) audit(ctx *device.Ctx, args sassi.HandlerArgs, execMask uint32) {
	w := ctx.Warp()
	ck := c.kernels[w.CTA.Kernel.Name]
	if ck == nil {
		return // kernel not prepared (filtered instrumentation)
	}
	orig := sass.IndexOfOffset(args.BP.InsOffset())
	if orig < 0 || orig >= len(ck.instOf) {
		return
	}
	s := ck.instOf[orig]
	in := &ck.k.Instrs[s]

	sh := c.shadows[w]
	if sh == nil {
		// Every control op is a site, so a warp's first site is reached
		// with empty stacks; starting the shadow empty (not adopted from
		// the machine) means corruption before the first audit is caught.
		sh = &cfiShadow{}
		c.shadows[w] = sh
	}

	c.compareStacks(w, ck, s, sh)

	active := ctx.ActiveMask()
	alive := w.Alive
	switch {
	case in.Op == sass.OpCAL:
		if tgt, ok := in.BranchTarget(); ok && tgt.Kind == sass.OpdLabel {
			if !ck.targets.Entries[int(tgt.Imm)] {
				c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "call-stack",
					Msg: fmt.Sprintf("CAL target @%04x outside the legal entry set", sass.InsOffset(int(tgt.Imm)))})
			}
		}
		if execMask == active { // divergent CAL traps in the machine; model only the clean case
			sh.call = append(sh.call, s+1)
		}
	case in.Op == sass.OpRET:
		if w.CallDepth() == 0 {
			c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "ret-underflow",
				Msg: "RET with an empty call stack"})
		}
		if len(sh.call) > 0 {
			sh.call = sh.call[:len(sh.call)-1]
		}
	case in.Op == sass.OpSSY:
		if tgt, ok := in.BranchTarget(); ok && tgt.Kind == sass.OpdLabel {
			sh.div = append(sh.div, sim.DivFrame{SSY: true, PC: int(tgt.Imm), Mask: active})
		}
	case in.Op == sass.OpSYNC:
		if w.DivDepth() == 0 {
			c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "sync-underflow",
				Msg: "SYNC with an empty divergence stack (warp would silently retire)"})
		}
		// Mirror popToNonEmpty: frames are consumed until one holds live
		// lanes; that frame activates.
		for len(sh.div) > 0 {
			f := sh.div[len(sh.div)-1]
			sh.div = sh.div[:len(sh.div)-1]
			if f.Mask&alive != 0 {
				break
			}
		}
	case in.Op == sass.OpEXIT:
		for i := range sh.div {
			sh.div[i].Mask &^= execMask
		}
		if execMask == active {
			aliveAfter := alive &^ execMask
			for len(sh.div) > 0 {
				f := sh.div[len(sh.div)-1]
				sh.div = sh.div[:len(sh.div)-1]
				if f.Mask&aliveAfter != 0 {
					break
				}
			}
		}
	case in.Op == sass.OpBRA && !in.Guard.IsAlways():
		fall := active &^ execMask
		if execMask != 0 && fall != 0 {
			sh.div = append(sh.div, sim.DivFrame{SSY: false, PC: s + 1, Mask: fall})
		}
	}
}

// compareStacks validates the warp's actual call and divergence stacks
// against the shadow and the legal target sets. On a mismatch it records
// a violation and resynchronizes the shadow to the actual state, so one
// corruption yields one report instead of one per subsequent site.
func (c *CFIChecker) compareStacks(w *sim.Warp, ck *cfiKernel, s int, sh *cfiShadow) {
	mismatch := false
	if w.CallDepth() != len(sh.call) {
		c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "call-stack",
			Msg: fmt.Sprintf("call-stack depth %d, shadow %d", w.CallDepth(), len(sh.call))})
		mismatch = true
	} else {
		for i := 0; i < w.CallDepth(); i++ {
			if w.ReturnAddr(i) != sh.call[i] {
				c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "call-stack",
					Msg: fmt.Sprintf("call-stack[%d] = @%04x, shadow @%04x",
						i, sass.InsOffset(w.ReturnAddr(i)), sass.InsOffset(sh.call[i]))})
				mismatch = true
				break
			}
		}
	}
	for i := 0; i < w.CallDepth(); i++ {
		if !ck.targets.Legal(w.ReturnAddr(i)) {
			c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "return-address",
				Msg: fmt.Sprintf("call-stack[%d] = @%04x outside the legal return set",
					i, sass.InsOffset(w.ReturnAddr(i)))})
			mismatch = true
			break
		}
	}

	if w.DivDepth() != len(sh.div) {
		c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "div-stack",
			Msg: fmt.Sprintf("divergence-stack depth %d, shadow %d", w.DivDepth(), len(sh.div))})
		mismatch = true
	} else {
		for i := 0; i < w.DivDepth(); i++ {
			f := w.DivFrameAt(i)
			if f != sh.div[i] {
				c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "div-stack",
					Msg: fmt.Sprintf("divergence-stack[%d] = {ssy=%t pc=@%04x mask=%#x}, shadow {ssy=%t pc=@%04x mask=%#x}",
						i, f.SSY, sass.InsOffset(f.PC), f.Mask,
						sh.div[i].SSY, sass.InsOffset(sh.div[i].PC), sh.div[i].Mask)})
				mismatch = true
				break
			}
		}
	}
	for i := 0; i < w.DivDepth(); i++ {
		f := w.DivFrameAt(i)
		legal := ck.targets.Reconv[f.PC]
		if !f.SSY {
			legal = ck.targets.Defer[f.PC]
		}
		if !legal {
			c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "div-stack",
				Msg: fmt.Sprintf("divergence-stack[%d] resume @%04x outside the legal %s set",
					i, sass.InsOffset(f.PC), map[bool]string{true: "reconvergence", false: "deferred-path"}[f.SSY])})
			mismatch = true
			break
		}
		if f.Mask&^w.Alive != 0 {
			c.record(CFIViolation{Kernel: ck.k.Name, Instr: s, Kind: "div-stack",
				Msg: fmt.Sprintf("divergence-stack[%d] mask %#x includes exited lanes", i, f.Mask)})
			mismatch = true
			break
		}
	}

	if mismatch {
		sh.call = sh.call[:0]
		for i := 0; i < w.CallDepth(); i++ {
			sh.call = append(sh.call, w.ReturnAddr(i))
		}
		sh.div = sh.div[:0]
		for i := 0; i < w.DivDepth(); i++ {
			sh.div = append(sh.div, w.DivFrameAt(i))
		}
	}
}
