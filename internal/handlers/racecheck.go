package handlers

import (
	"sort"
	"sync"

	"sassi/internal/device"
	"sassi/internal/mem"
	"sassi/internal/sass"
	"sassi/internal/sassi"
)

// RacePair names two static instruction sites (original-kernel
// instruction indices, A <= B) observed touching the same shared-memory
// byte in the same barrier interval from different threads.
type RacePair struct {
	A, B int
}

// RaceChecker is the dynamic half of the concurrency checker
// (internal/analysis/concurrency): a SASSI handler instrumented before
// every shared-memory access and every BAR.SYNC. BAR sites advance a
// per-thread phase counter; access sites check a per-CTA byte-granular
// shadow map for a same-phase access from a different thread where at
// least one side writes and not both are atomic — the dynamic definition
// of a shared-memory race. Observed races are recorded as normalized
// static site pairs so tests can cross-validate them against the static
// pass's reports.
//
// Like the static pass, the checker deliberately does not exempt
// same-warp accesses: the warp-synchronous programming idiom is not
// honored by either side, keeping the two verdicts comparable.
type RaceChecker struct {
	mu    sync.Mutex
	ctas  map[[3]uint32]*ctaShadow
	races map[RacePair]struct{}
}

type ctaShadow struct {
	phase map[uint32]uint64 // flat thread id -> barrier phase
	cells map[uint64]*shadowCell
}

type access struct {
	tid    uint32
	phase  uint64
	site   int
	atomic bool
}

type shadowCell struct {
	write    access
	hasWrite bool
	reads    []access // reads since the last write
}

// NewRaceChecker returns an empty checker.
func NewRaceChecker() *RaceChecker {
	return &RaceChecker{
		ctas:  make(map[[3]uint32]*ctaShadow),
		races: make(map[RacePair]struct{}),
	}
}

// Options returns the instrumentation specification: before-handlers at
// every memory operation and every BAR.SYNC. BAR sites carry no memory
// params (args.MP == nil), which is how the handler tells the two kinds
// of site apart.
func (r *RaceChecker) Options() sassi.Options {
	return sassi.Options{
		Where:         sassi.BeforeAll,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "sassi_racecheck_handler",
		Select: func(_ *sass.Kernel, _ int, in *sass.Instruction) bool {
			return in.Op.IsMem() || in.Op == sass.OpBAR
		},
	}
}

// Handler returns the runtime handler. Sequential mode keeps lane order
// deterministic inside a warp; the mutex serializes across warps and SMs.
func (r *RaceChecker) Handler() *sassi.Handler {
	return &sassi.Handler{
		Name:       "sassi_racecheck_handler",
		What:       sassi.PassMemoryInfo,
		Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if !args.BP.InstrWillExecute() {
				return
			}
			bx, by, bz := c.BlockIdx()
			key := [3]uint32{bx, by, bz}
			tid := c.FlatThreadIdx()

			r.mu.Lock()
			defer r.mu.Unlock()
			cta := r.ctas[key]
			if cta == nil {
				cta = &ctaShadow{phase: make(map[uint32]uint64), cells: make(map[uint64]*shadowCell)}
				r.ctas[key] = cta
			}

			if args.MP == nil {
				// BAR.SYNC site: this thread enters the next interval.
				cta.phase[tid]++
				return
			}
			addr := args.MP.Address()
			if !mem.IsShared(addr) {
				return
			}
			acc := access{
				tid:    tid,
				phase:  cta.phase[tid],
				site:   sass.IndexOfOffset(args.BP.InsOffset()),
				atomic: args.MP.IsAtomic(),
			}
			write := args.MP.IsStore()
			for b := uint64(0); b < uint64(args.MP.Width()); b++ {
				r.touch(cta, addr+b, acc, write)
			}
		},
	}
}

// touch records one byte access and reports conflicts against the shadow.
func (r *RaceChecker) touch(cta *ctaShadow, addr uint64, acc access, write bool) {
	cell := cta.cells[addr]
	if cell == nil {
		cell = &shadowCell{}
		cta.cells[addr] = cell
	}
	conflict := func(prev access) {
		if prev.tid == acc.tid || prev.phase != acc.phase {
			return
		}
		if prev.atomic && acc.atomic {
			return
		}
		r.races[racePair(prev.site, acc.site)] = struct{}{}
	}
	if write {
		if cell.hasWrite {
			conflict(cell.write)
		}
		for _, rd := range cell.reads {
			conflict(rd)
		}
		cell.write, cell.hasWrite = acc, true
		cell.reads = cell.reads[:0]
	} else {
		if cell.hasWrite {
			conflict(cell.write)
		}
		cell.reads = append(cell.reads, acc)
	}
}

func racePair(a, b int) RacePair {
	if a > b {
		a, b = b, a
	}
	return RacePair{A: a, B: b}
}

// Races returns the observed races as sorted, de-duplicated site pairs.
func (r *RaceChecker) Races() []RacePair {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RacePair, 0, len(r.races))
	for p := range r.races {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Reset clears all shadow state and recorded races.
func (r *RaceChecker) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ctas = make(map[[3]uint32]*ctaShadow)
	r.races = make(map[RacePair]struct{})
}
