package handlers

import (
	"sassi/internal/cuda"
	"sassi/internal/cupti"
	"sassi/internal/device"
	"sassi/internal/sassi"
)

// Opcount counter indices (the paper's Figure 3 dynamic_instr_counts).
const (
	OcMem     = iota
	OcMemWide // memory accesses wider than 4 bytes
	OcControl
	OcSync
	OcNumeric
	OcTexture
	OcTotal
	ocFields
)

// OpCounter is the pedagogical Figure 3 handler: categorize every dynamic
// instruction into overlapping classes with device-memory atomics, managed
// through a CUPTI counter bank (zeroed at launch, collected at exit).
type OpCounter struct {
	Bank *cupti.CounterBank
}

// NewOpCounter allocates the counter bank and its CUPTI plumbing.
func NewOpCounter(ctx *cuda.Context) *OpCounter {
	return &OpCounter{Bank: cupti.NewCounterBank(ctx, "dynamic_instr_counts", ocFields)}
}

// Options returns the instrumentation specification: before every
// instruction, passing memory info for the width check.
func (p *OpCounter) Options() sassi.Options {
	return sassi.Options{
		Where:         sassi.BeforeAll,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "sassi_before_handler",
	}
}

// Handler is the Figure 3 translation. It needs no warp collectives, so a
// Sequential variant is available for the ablation study.
func (p *OpCounter) Handler(sequential bool) *sassi.Handler {
	return &sassi.Handler{
		Name:       "sassi_before_handler",
		What:       sassi.PassMemoryInfo,
		Sequential: sequential,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			bp := args.BP
			if bp.IsMem() {
				c.AtomicAdd64(p.Bank.Ptr(OcMem), 1)
				if args.MP != nil && args.MP.Width() > 4 {
					c.AtomicAdd64(p.Bank.Ptr(OcMemWide), 1)
				}
			}
			if bp.IsControlXfer() {
				c.AtomicAdd64(p.Bank.Ptr(OcControl), 1)
			}
			if bp.IsSync() {
				c.AtomicAdd64(p.Bank.Ptr(OcSync), 1)
			}
			if bp.IsNumeric() {
				c.AtomicAdd64(p.Bank.Ptr(OcNumeric), 1)
			}
			if bp.IsTexture() {
				c.AtomicAdd64(p.Bank.Ptr(OcTexture), 1)
			}
			c.AtomicAdd64(p.Bank.Ptr(OcTotal), 1)
		},
	}
}

// Totals returns the accumulated class counts.
func (p *OpCounter) Totals() []uint64 { return p.Bank.Host }
