package handlers_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/handlers"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sassi"
	"sassi/internal/sim"
)

// tableHarness runs fn once per warp (32 lanes, sequential) on a trivial
// instrumented kernel with nWarps warps.
func tableHarness(t *testing.T, ctx *cuda.Context, nWarps int, fn device.Fn) {
	t.Helper()
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	i := b.GlobalTidX()
	b.StGlobalU32(b.Index(out, i, 2), 0, i)
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sassi.Instrument(prog, sassi.Options{Where: sassi.BeforeMem, BeforeHandler: "h"}); err != nil {
		t.Fatal(err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(&sassi.Handler{Name: "h", Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) { fn(c) }})
	rt.Attach(ctx.Device())
	buf := ctx.Malloc(uint64(4*32*nWarps), "out")
	if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
		Grid: sim.D1(nWarps), Block: sim.D1(32), Args: []uint64{uint64(buf)},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestInsTableClaimAndAccumulate(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	tbl := handlers.NewInsTable(ctx, "t", 64, 2, []uint64{0, 100})
	tableHarness(t, ctx, 4, func(c *device.Ctx) {
		// Key by lane parity: two distinct entries.
		key := int32(1000 + c.Lane()%2)
		stats := tbl.Find(c, key)
		c.AtomicAdd64(stats, 1)
	})
	entries, err := tbl.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	for _, e := range entries {
		// 4 warps x 16 lanes of each parity.
		if e.Fields[0] != 64 {
			t.Errorf("key %d count = %d, want 64", e.Key, e.Fields[0])
		}
		if e.Fields[1] != 100 {
			t.Errorf("key %d second field = %d, want init 100", e.Key, e.Fields[1])
		}
	}
}

func TestInsTableCollisionProbing(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	// Tiny table forces probing with many distinct keys.
	tbl := handlers.NewInsTable(ctx, "t", 40, 1, nil)
	tableHarness(t, ctx, 1, func(c *device.Ctx) {
		// Every lane uses a distinct key: 32 entries in a 40-slot table.
		stats := tbl.Find(c, int32(c.Lane()*7919))
		c.AtomicAdd64(stats, 1)
	})
	entries, err := tbl.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 32 {
		t.Fatalf("entries = %d, want 32", len(entries))
	}
	for _, e := range entries {
		if e.Fields[0] != 1 {
			t.Errorf("key %d count = %d", e.Key, e.Fields[0])
		}
	}
}

func TestInsTableReset(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	tbl := handlers.NewInsTable(ctx, "t", 16, 1, nil)
	tableHarness(t, ctx, 1, func(c *device.Ctx) {
		c.AtomicAdd64(tbl.Find(c, 5), 1)
	})
	if err := tbl.Reset(); err != nil {
		t.Fatal(err)
	}
	entries, err := tbl.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("entries after reset = %d", len(entries))
	}
}

// TestInsTableParallelClaim: concurrent goroutine lanes racing to claim the
// same slot must agree on one initialization.
func TestInsTableParallelClaim(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	tbl := handlers.NewInsTable(ctx, "t", 16, 1, []uint64{7})

	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	i := b.GlobalTidX()
	b.StGlobalU32(b.Index(out, i, 2), 0, i)
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sassi.Instrument(prog, sassi.Options{Where: sassi.BeforeMem, BeforeHandler: "h"}); err != nil {
		t.Fatal(err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(&sassi.Handler{Name: "h", // parallel: all lanes race
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			c.AtomicAdd64(tbl.Find(c, 42), 1)
		}})
	rt.Attach(ctx.Device())
	buf := ctx.Malloc(4*32, "out")
	if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(buf)},
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := tbl.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Fields[0] != 7+32 {
		t.Fatalf("entries = %+v, want one entry with init 7 + 32 adds", entries)
	}
}
