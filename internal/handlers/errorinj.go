package handlers

import (
	"sync/atomic"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/sass"
	"sassi/internal/sassi"
)

// Error injection (Case Study IV, §8) runs in two phases with two distinct
// handlers, matching the paper:
//
//  1. a profiling pass counts, per thread, the dynamic instructions that
//     write a register (or memory) and are not predicated off — the error
//     injection site space;
//  2. an injection pass flips one bit of one destination register of one
//     selected (thread, dynamic-instruction) tuple and lets the program
//     run unhindered.

// injWhere is the shared site selection: after instructions that write
// registers. (Predicated-off instances are filtered in the handler.)
func injWhere() sassi.Options {
	return sassi.Options{
		Where:        sassi.AfterRegWrites,
		What:         sassi.PassRegisterInfo,
		AfterHandler: "sassi_errorinj_handler",
	}
}

// InjProfiler counts qualifying dynamic instructions per thread.
type InjProfiler struct {
	ctx     *cuda.Context
	counts  cuda.DevPtr
	threads int
}

// NewInjProfiler allocates one counter per grid thread.
func NewInjProfiler(ctx *cuda.Context, maxThreads int) *InjProfiler {
	p := &InjProfiler{ctx: ctx, threads: maxThreads}
	p.counts = ctx.Malloc(uint64(8*maxThreads), "sassi.inj_profile")
	zero := make([]byte, 8*maxThreads)
	_ = ctx.MemcpyHtoD(p.counts, zero)
	return p
}

// Options returns the instrumentation specification for profiling.
func (p *InjProfiler) Options() sassi.Options { return injWhere() }

// Handler counts qualifying sites per thread. It uses no collectives, so
// it runs lanes sequentially (cheap).
func (p *InjProfiler) Handler() *sassi.Handler {
	return &sassi.Handler{
		Name:       "sassi_errorinj_handler",
		What:       sassi.PassRegisterInfo,
		Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if !args.BP.InstrWillExecute() {
				return
			}
			tid := c.GlobalThreadIdx()
			if tid < uint64(p.threads) {
				c.AtomicAdd64(uint64(p.counts)+tid*8, 1)
			}
		},
	}
}

// Counts downloads the per-thread qualifying-instruction counts.
func (p *InjProfiler) Counts() ([]uint64, error) {
	return p.ctx.ReadU64(p.counts, p.threads)
}

// DevPtr exposes the device-side counter array (for host-side resets
// between launches).
func (p *InjProfiler) DevPtr() cuda.DevPtr { return p.counts }

// InjectionSite selects where a single bit flip lands, the tuple the
// paper's off-line stochastic step produces.
type InjectionSite struct {
	// Kernel and Invocation select the launch; the campaign driver (in
	// internal/faults) arms the injector only for that launch.
	Kernel     string
	Invocation int
	// ThreadID is the grid-flat thread index.
	ThreadID uint64
	// InstrIndex is the ordinal of the qualifying dynamic instruction
	// within that thread (0-based).
	InstrIndex uint64
	// DstSeed selects among the instruction's destinations; BitSeed
	// selects the bit to flip.
	DstSeed uint32
	BitSeed uint32
	// Target selects the state class: general purpose register, predicate,
	// or condition code.
	Target InjectTarget
}

// InjectTarget is the class of architectural state to corrupt.
type InjectTarget int

// Injection targets.
const (
	TargetGPR InjectTarget = iota
	TargetPred
	TargetCC
)

// Injector is the second-phase handler: it counts qualifying instructions
// on the selected thread and mutates architectural state at the selected
// one. The injector is disarmed after the flip so later launches are
// untouched. The armed/injected flags are atomics because every SM
// goroutine's handler invocations read them while the one goroutine
// running the target thread may set injected mid-launch.
type Injector struct {
	Site InjectionSite

	// FlippedReg/FlippedBit record what was hit (for reporting). They are
	// written only by the goroutine executing the target thread and read
	// after the launch completes.
	FlippedReg uint8
	FlippedBit uint32

	armed    atomic.Bool
	injected atomic.Bool
	counter  uint64 // dynamic qualifying instructions seen on the target thread
}

// NewInjector prepares an injector for one site.
func NewInjector(site InjectionSite) *Injector {
	return &Injector{Site: site}
}

// Options returns the instrumentation specification for injection runs.
func (inj *Injector) Options() sassi.Options { return injWhere() }

// Arm enables the injector (the campaign driver arms it when the selected
// kernel invocation is reached, via CUPTI callbacks).
func (inj *Injector) Arm() { inj.armed.Store(true) }

// Disarm disables the injector after the selected launch.
func (inj *Injector) Disarm() { inj.armed.Store(false) }

// DidInject reports whether the flip happened.
func (inj *Injector) DidInject() bool { return inj.injected.Load() }

// Handler performs the bit flip at the selected site. State mutation goes
// through the spill-aware Set* accessors so the flipped value survives the
// restore sequence — the capability CUDA-GDB-based injection lacked.
func (inj *Injector) Handler() *sassi.Handler {
	return &sassi.Handler{
		Name:       "sassi_errorinj_handler",
		What:       sassi.PassRegisterInfo,
		Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if !inj.armed.Load() || inj.injected.Load() {
				return
			}
			if !args.BP.InstrWillExecute() {
				return
			}
			if c.GlobalThreadIdx() != inj.Site.ThreadID {
				return
			}
			idx := inj.counter
			inj.counter++
			if idx != inj.Site.InstrIndex {
				return
			}
			inj.inject(c, args)
		},
	}
}

func (inj *Injector) inject(c *device.Ctx, args sassi.HandlerArgs) {
	bp := args.BP
	rp := args.RP
	switch inj.Site.Target {
	case TargetPred:
		// Flip a predicate the instruction wrote; if it wrote none, fall
		// back to a GPR flip.
		if op := bp.Opcode(); op == sass.OpISETP || op == sass.OpFSETP || op == sass.OpPSETP {
			p := uint8(inj.Site.DstSeed % 7)
			bp.SetPredValue(p, !bp.GetPredValue(p))
			inj.injected.Store(true)
			inj.FlippedReg = p
			inj.FlippedBit = uint32(p)
			return
		}
		fallthrough
	case TargetGPR:
		nd := rp.NumGPRDsts()
		if nd == 0 {
			// Register-less qualifying instruction (e.g. a store with CC);
			// flip CC instead.
			inj.flipCC(bp)
			return
		}
		d := int(inj.Site.DstSeed) % nd
		reg := rp.GPRDst(d)
		bit := inj.Site.BitSeed % 32
		rp.SetRegValue(reg, rp.GetRegValue(reg)^(1<<bit))
		inj.injected.Store(true)
		inj.FlippedReg = reg
		inj.FlippedBit = bit
	case TargetCC:
		inj.flipCC(bp)
	}
}

func (inj *Injector) flipCC(bp sassi.BeforeParams) {
	bit := inj.Site.BitSeed % 4
	bp.SetCCValue(bp.GetCCValue() ^ (1 << bit))
	inj.injected.Store(true)
	inj.FlippedReg = 0xff
	inj.FlippedBit = bit
}
