package handlers

import (
	"fmt"
	"sync"

	"sassi/internal/device"
	"sassi/internal/sassi"
	"sassi/internal/sim"
)

// CtrlClass enumerates the control-state corruption classes of the CFI
// fault campaigns. Each models a distinct way warp control state goes
// wrong: a flipped return address, a corrupted divergence-stack frame
// (resume PC or lane mask), or a forged call frame — the stack-discipline
// analog of a rewritten call target, since the warp will "return" to the
// attacker-chosen address.
type CtrlClass int

// The corruption classes.
const (
	CtrlRetBitFlip CtrlClass = iota
	CtrlDivPCBitFlip
	CtrlDivMaskBitFlip
	CtrlForgedCall
	NumCtrlClasses
)

// String names the class for tables and flags.
func (c CtrlClass) String() string {
	switch c {
	case CtrlRetBitFlip:
		return "ret-addr"
	case CtrlDivPCBitFlip:
		return "div-pc"
	case CtrlDivMaskBitFlip:
		return "div-mask"
	case CtrlForgedCall:
		return "forged-call"
	}
	return fmt.Sprintf("class-%d", int(c))
}

// ParseCtrlClass resolves a class name as printed by String.
func ParseCtrlClass(s string) (CtrlClass, bool) {
	for c := CtrlClass(0); c < NumCtrlClasses; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// qualifies reports whether a warp's state at a site can host this
// corruption class.
func (c CtrlClass) qualifies(w *sim.Warp) bool {
	switch c {
	case CtrlRetBitFlip:
		return w.CallDepth() > 0
	case CtrlDivPCBitFlip, CtrlDivMaskBitFlip:
		return w.DivDepth() > 0
	default: // CtrlForgedCall: any site
		return true
	}
}

// CtrlWarpKey identifies one warp's dispatch stream within one kernel
// launch.
type CtrlWarpKey struct {
	Invocation int // kernel launch index (cuda launch callbacks)
	CTA        int // flat CTA index
	Warp       int // warp ID within the CTA
}

// CtrlProfiler counts, per warp per launch, the control-transfer site
// dispatches whose warp state qualifies for a corruption class — the
// control-state analog of InjProfiler. The counts define the discrete
// site space a campaign draws injection targets from, so profiling and
// injection runs stay aligned run-to-run.
type CtrlProfiler struct {
	mu         sync.Mutex
	class      CtrlClass
	invocation int
	counts     map[CtrlWarpKey]uint64
	order      []CtrlWarpKey // first-qualifying order, for deterministic enumeration
}

// NewCtrlProfiler profiles qualifying sites for one corruption class.
func NewCtrlProfiler(class CtrlClass) *CtrlProfiler {
	return &CtrlProfiler{class: class, invocation: -1, counts: map[CtrlWarpKey]uint64{}}
}

// SetInvocation records the current kernel launch index; wire it to
// cuda.LaunchCallbacks.PreLaunch.
func (p *CtrlProfiler) SetInvocation(idx int) {
	p.mu.Lock()
	p.invocation = idx
	p.mu.Unlock()
}

// DispatchFn returns the per-dispatch profiling closure: it bumps the
// warp's qualifying-site count once per dispatch (on the first lane).
func (p *CtrlProfiler) DispatchFn() sassi.HandlerFunc {
	counted := false
	return func(ctx *device.Ctx, args sassi.HandlerArgs) {
		if counted {
			return
		}
		counted = true
		w := ctx.Warp()
		if !p.class.qualifies(w) {
			return
		}
		p.mu.Lock()
		key := CtrlWarpKey{Invocation: p.invocation, CTA: w.CTA.Index, Warp: w.IDinCTA}
		if p.counts[key] == 0 {
			p.order = append(p.order, key)
		}
		p.counts[key]++
		p.mu.Unlock()
	}
}

// Total returns the qualifying-dispatch count across all warps and
// launches.
func (p *CtrlProfiler) Total() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t uint64
	for _, n := range p.counts {
		t += n
	}
	return t
}

// Pick maps a flat index in [0, Total) to a concrete injection target:
// the warp and the ordinal of the qualifying dispatch within that warp's
// stream. Enumeration follows first-qualifying order, which is
// deterministic under SequentialSMs.
func (p *CtrlProfiler) Pick(flat uint64) (CtrlWarpKey, uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, key := range p.order {
		n := p.counts[key]
		if flat < n {
			return key, flat, true
		}
		flat -= n
	}
	return CtrlWarpKey{}, 0, false
}

// CtrlInjector corrupts warp control state at one chosen dynamic site:
// the Nth qualifying dispatch of one warp in one launch. Compose its
// DispatchFn before the CFI checker's in a single handler so the
// corruption lands before the same site's audit.
type CtrlInjector struct {
	mu     sync.Mutex
	class  CtrlClass
	target CtrlWarpKey
	nth    uint64
	// frameSeed selects the stack entry, bitSeed the bit (or forged
	// value) — both folded from the campaign's per-run RNG.
	frameSeed, bitSeed uint64
	// kernelLen bounds forged return addresses to the instrumented
	// kernel's instruction count.
	kernelLen int

	invocation int
	armed      bool
	counts     map[CtrlWarpKey]uint64
	injected   bool
	desc       string
}

// NewCtrlInjector builds an injector for one campaign run.
func NewCtrlInjector(class CtrlClass, target CtrlWarpKey, nth uint64, frameSeed, bitSeed uint64, kernelLen int) *CtrlInjector {
	return &CtrlInjector{
		class: class, target: target, nth: nth,
		frameSeed: frameSeed, bitSeed: bitSeed, kernelLen: kernelLen,
		invocation: -1, counts: map[CtrlWarpKey]uint64{},
	}
}

// SetInvocation mirrors the profiler's launch tracking; arm/disarm by
// launch index is implicit (the target key carries the invocation).
func (j *CtrlInjector) SetInvocation(idx int) {
	j.mu.Lock()
	j.invocation = idx
	j.armed = idx == j.target.Invocation
	j.mu.Unlock()
}

// Injected reports whether the corruption fired, and what it did.
func (j *CtrlInjector) Injected() (bool, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.injected, j.desc
}

// DispatchFn returns the per-dispatch injection closure; the corruption
// applies on the first lane of the chosen dispatch, before any composed
// checker audits the warp.
func (j *CtrlInjector) DispatchFn() sassi.HandlerFunc {
	acted := false
	return func(ctx *device.Ctx, args sassi.HandlerArgs) {
		if acted {
			return
		}
		acted = true
		j.mu.Lock()
		defer j.mu.Unlock()
		if !j.armed || j.injected {
			return
		}
		w := ctx.Warp()
		if !j.class.qualifies(w) {
			return
		}
		key := CtrlWarpKey{Invocation: j.invocation, CTA: w.CTA.Index, Warp: w.IDinCTA}
		if key != j.target {
			return
		}
		if j.counts[key] != j.nth {
			j.counts[key]++
			return
		}
		j.counts[key]++
		j.corrupt(w)
	}
}

func (j *CtrlInjector) corrupt(w *sim.Warp) {
	j.injected = true
	switch j.class {
	case CtrlRetBitFlip:
		i := int(j.frameSeed % uint64(w.CallDepth()))
		bit := uint(j.bitSeed % 10)
		old := w.ReturnAddr(i)
		w.SetReturnAddr(i, old^(1<<bit))
		j.desc = fmt.Sprintf("call-stack[%d] %#x -> %#x", i, old, old^(1<<bit))
	case CtrlDivPCBitFlip:
		i := int(j.frameSeed % uint64(w.DivDepth()))
		bit := uint(j.bitSeed % 10)
		old := w.DivFrameAt(i).PC
		w.SetDivFramePC(i, old^(1<<bit))
		j.desc = fmt.Sprintf("div-stack[%d].pc %#x -> %#x", i, old, old^(1<<bit))
	case CtrlDivMaskBitFlip:
		i := int(j.frameSeed % uint64(w.DivDepth()))
		bit := uint(j.bitSeed % 32)
		old := w.DivFrameAt(i).Mask
		w.SetDivFrameMask(i, old^(1<<bit))
		j.desc = fmt.Sprintf("div-stack[%d].mask %#x -> %#x", i, old, old^(1<<bit))
	case CtrlForgedCall:
		ret := 0
		if j.kernelLen > 0 {
			ret = int(j.bitSeed % uint64(j.kernelLen))
		}
		w.PushReturnAddr(ret)
		j.desc = fmt.Sprintf("forged call frame -> %#x", ret)
	}
}
