package handlers

import (
	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/sassi"
)

// PC-profile field indices within the InsTable entry.
const (
	pcExec  = iota // warp-level executions
	pcLanes        // active threads summed over executions
	pcFields
)

// PCProfiler counts exact warp-level executions (and active-lane sums) of
// every original instruction, keyed by SASSI instruction address. It is the
// ground-truth side of the PC-sampling accuracy experiment: the sampler
// estimates per-PC cycles statistically, this handler counts per-PC
// executions exactly, and the two must agree on where the time goes.
type PCProfiler struct {
	Table *InsTable
}

// NewPCProfiler allocates the device-side state. Slots bound the number of
// distinct static instructions across all kernels; 4096 covers every
// built-in workload with room to spare.
func NewPCProfiler(ctx *cuda.Context) *PCProfiler {
	return &PCProfiler{Table: NewInsTable(ctx, "sassi.pc_prof", 4096, pcFields, nil)}
}

// Options returns the instrumentation specification: before every original
// instruction, no extra argument marshalling.
func (p *PCProfiler) Options() sassi.Options {
	return sassi.Options{
		Where:         sassi.BeforeAll,
		What:          sassi.PassNone,
		BeforeHandler: "sassi_pcprof_handler",
	}
}

// Handler returns the registered handler. One table update per warp
// execution: the last active lane writes for the whole warp.
func (p *PCProfiler) Handler() *sassi.Handler {
	return &sassi.Handler{
		Name:       "sassi_pcprof_handler",
		Sequential: true,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if !c.IsLastActive() {
				return
			}
			active := device.Popc(c.ActiveMask())
			stats := p.Table.Find(c, args.BP.InsAddr())
			c.AtomicAdd64(stats+pcExec*8, 1)
			c.AtomicAdd64(stats+pcLanes*8, uint64(active))
		},
	}
}

// PCCount is one instruction's decoded counts.
type PCCount struct {
	Execs uint64 // warp-level executions
	Lanes uint64 // active threads summed over executions
}

// Counts decodes the table into a map keyed by SASSI instruction address
// (sassi.FnAddr(kernelIndex) + byte offset of the original instruction).
func (p *PCProfiler) Counts() (map[int32]PCCount, error) {
	entries, err := p.Table.ReadAll()
	if err != nil {
		return nil, err
	}
	out := make(map[int32]PCCount, len(entries))
	for _, e := range entries {
		out[e.Key] = PCCount{Execs: e.Fields[pcExec], Lanes: e.Fields[pcLanes]}
	}
	return out, nil
}
