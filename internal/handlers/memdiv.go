package handlers

import (
	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/mem"
	"sassi/internal/sassi"
)

// MemDivProfiler is Case Study II (§6): a handler before every memory
// operation that measures warp-level memory address divergence — how many
// unique cache lines each warp access touches — accumulating the paper's
// 32x32 occupancy-by-divergence matrix (Figure 8) from which the
// unique-line PMF (Figure 7) derives.
type MemDivProfiler struct {
	ctx        *cuda.Context
	matrix     cuda.DevPtr // 32*32 uint64 counters
	OffsetBits uint        // log2 of the line size (paper: 5, for 32B lines)
}

// NewMemDivProfiler allocates the device-side matrix.
func NewMemDivProfiler(ctx *cuda.Context) *MemDivProfiler {
	p := &MemDivProfiler{ctx: ctx, OffsetBits: 5}
	p.matrix = ctx.Malloc(32*32*8, "sassi.memdiv_matrix")
	zero := make([]byte, 32*32*8)
	_ = ctx.MemcpyHtoD(p.matrix, zero)
	return p
}

// Options returns the instrumentation specification for this profiler.
func (p *MemDivProfiler) Options() sassi.Options {
	return sassi.Options{
		Where:         sassi.BeforeMem,
		What:          sassi.PassMemoryInfo,
		BeforeHandler: "sassi_memdiv_handler",
	}
}

// Handler translates the paper's Figure 6: filter predicated-off threads,
// keep global accesses, then iteratively elect leaders and peel off all
// lanes matching the leader's line address until the warp's worth of
// addresses is accounted for.
func (p *MemDivProfiler) Handler() *sassi.Handler {
	return &sassi.Handler{
		Name: "sassi_memdiv_handler",
		What: sassi.PassMemoryInfo,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if !args.BP.InstrWillExecute() {
				return
			}
			addr := args.MP.Address()
			// Only look at global memory requests; filter others out.
			if !mem.IsGlobal(addr) {
				return
			}
			lineAddr := addr >> p.OffsetBits

			workset := c.Ballot(true)
			firstActive := device.Ffs(workset) - 1
			numActive := device.Popc(workset)
			unique := 0
			for workset != 0 {
				// Elect a leader, get its line, see who matches it.
				leader := device.Ffs(workset) - 1
				leadersAddr := c.Shfl64(lineAddr, leader)
				notMatches := c.Ballot(leadersAddr != lineAddr)
				workset &= notMatches
				unique++
			}

			// Every lane computed numActive and unique; the first active
			// thread tallies into the 32x32 matrix.
			if c.Lane() == firstActive {
				idx := uint64((numActive-1)*32 + (unique - 1))
				c.AtomicAdd64(uint64(p.matrix)+idx*8, 1)
			}
		},
	}
}

// Matrix downloads the 32x32 occupancy/divergence counters.
func (p *MemDivProfiler) Matrix() (*mem.DivergenceMatrix, error) {
	vals, err := p.ctx.ReadU64(p.matrix, 32*32)
	if err != nil {
		return nil, err
	}
	var m mem.DivergenceMatrix
	for a := 0; a < 32; a++ {
		for u := 0; u < 32; u++ {
			m.Counts[a][u] = vals[a*32+u]
		}
	}
	return &m, nil
}

// Reset zeroes the matrix.
func (p *MemDivProfiler) Reset() error {
	zero := make([]byte, 32*32*8)
	return p.ctx.MemcpyHtoD(p.matrix, zero)
}
