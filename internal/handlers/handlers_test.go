package handlers_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/ptxas"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// run executes a workload with the given profiler wiring and returns after
// the run verifies.
func run(t *testing.T, workload, dataset string, setup func(ctx *cuda.Context) (*sassi.Handler, sassi.Options)) {
	t.Helper()
	spec, ok := workloads.Get(workload)
	if !ok {
		t.Fatalf("workload %s not registered", workload)
	}
	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Sequential SMs: these tests compare two runs of the same workload
	// instruction-for-instruction, and parboil.bfs's ticket-queue frontier
	// makes cross-SM interleaving observable (nondeterministic on real
	// GPUs too), so they need the deterministic reference schedule.
	cfg := sim.MiniGPU()
	cfg.SequentialSMs = true
	ctx := cuda.NewContext(cfg)
	h, opts := setup(ctx)
	if err := sassi.Instrument(prog, opts); err != nil {
		t.Fatalf("instrument: %v", err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(h)
	rt.Attach(ctx.Device())
	res, err := spec.Run(ctx, prog, dataset)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.VerifyErr != nil {
		t.Fatalf("instrumented run no longer verifies: %v", res.VerifyErr)
	}
}

// TestBranchProfilerEquivalence checks the collective (Figure 4) and the
// sequential branch profilers agree exactly.
func TestBranchProfilerEquivalence(t *testing.T) {
	var summaries [2]handlers.BranchSummary
	for i, sequential := range []bool{false, true} {
		var p *handlers.BranchProfiler
		run(t, "parboil.bfs", "UT", func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
			p = handlers.NewBranchProfiler(ctx)
			if sequential {
				return p.SequentialHandler(), p.Options()
			}
			return p.Handler(), p.Options()
		})
		s, err := p.Summarize()
		if err != nil {
			t.Fatalf("summarize: %v", err)
		}
		summaries[i] = s
	}
	if summaries[0] != summaries[1] {
		t.Errorf("parallel %+v != sequential %+v", summaries[0], summaries[1])
	}
	if summaries[0].DynamicBranches == 0 || summaries[0].DynamicDivergent == 0 {
		t.Errorf("bfs should have divergent branches: %+v", summaries[0])
	}
}

// TestMemDivProfilerEquivalence checks the two memory-divergence handlers
// produce identical 32x32 matrices.
func TestMemDivProfilerEquivalence(t *testing.T) {
	var totals [2]uint64
	var pmf0 [2]float64
	for i, sequential := range []bool{false, true} {
		var p *handlers.MemDivProfiler
		run(t, "parboil.spmv", "small", func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
			p = handlers.NewMemDivProfiler(ctx)
			if sequential {
				return p.SequentialHandler(), p.Options()
			}
			return p.Handler(), p.Options()
		})
		m, err := p.Matrix()
		if err != nil {
			t.Fatalf("matrix: %v", err)
		}
		totals[i] = m.TotalAccesses()
		pmf0[i] = m.UniqueLinePMF()[0]
	}
	if totals[0] != totals[1] || pmf0[0] != pmf0[1] {
		t.Errorf("parallel (%d, %f) != sequential (%d, %f)", totals[0], pmf0[0], totals[1], pmf0[1])
	}
	if totals[0] == 0 {
		t.Error("no accesses recorded")
	}
}

// TestValueProfilerEquivalence checks the two value profilers agree.
func TestValueProfilerEquivalence(t *testing.T) {
	var sums [2]handlers.ValueSummary
	for i, sequential := range []bool{false, true} {
		var p *handlers.ValueProfiler
		run(t, "demo.vecadd", "small", func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
			p = handlers.NewValueProfiler(ctx)
			if sequential {
				return p.SequentialHandler(), p.Options()
			}
			return p.Handler(), p.Options()
		})
		s, err := p.Summarize()
		if err != nil {
			t.Fatalf("summarize: %v", err)
		}
		sums[i] = s
	}
	if sums[0] != sums[1] {
		t.Errorf("parallel %+v != sequential %+v", sums[0], sums[1])
	}
	if sums[0].DynConstBitsPc == 0 || sums[0].DynScalarPc == 0 {
		t.Errorf("vecadd should show constant bits and scalar writes: %+v", sums[0])
	}
}

// TestBranchProfilerConvergedKernel: sgemm must report zero divergence
// (paper Table 1).
func TestBranchProfilerConvergedKernel(t *testing.T) {
	var p *handlers.BranchProfiler
	run(t, "parboil.sgemm", "small", func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
		p = handlers.NewBranchProfiler(ctx)
		return p.Handler(), p.Options()
	})
	s, err := p.Summarize()
	if err != nil {
		t.Fatalf("summarize: %v", err)
	}
	if s.DynamicDivergent != 0 {
		t.Errorf("sgemm reported %d divergent branch executions, want 0", s.DynamicDivergent)
	}
	if s.DynamicBranches == 0 {
		t.Error("sgemm reported no branches at all")
	}
}

// TestMemDivCoalescedVsScattered: the ELL kernel must request far fewer
// unique lines per access than the CSR kernel on the same matrix (the
// Figure 7/8 contrast).
func TestMemDivCoalescedVsScattered(t *testing.T) {
	avg := func(workload string) float64 {
		var p *handlers.MemDivProfiler
		run(t, workload, "default", func(ctx *cuda.Context) (*sassi.Handler, sassi.Options) {
			p = handlers.NewMemDivProfiler(ctx)
			return p.SequentialHandler(), p.Options()
		})
		m, err := p.Matrix()
		if err != nil {
			t.Fatalf("matrix: %v", err)
		}
		pmf := m.UniqueLinePMF()
		var mean float64
		for u, frac := range pmf {
			mean += float64(u+1) * frac
		}
		return mean
	}
	csr := avg("minife.csr")
	ell := avg("minife.ell")
	t.Logf("mean unique lines per warp access: CSR=%.2f ELL=%.2f", csr, ell)
	if ell >= csr {
		t.Errorf("ELL (%.2f) should be less address-divergent than CSR (%.2f)", ell, csr)
	}
}
