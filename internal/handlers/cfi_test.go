package handlers_test

import (
	"strings"
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/handlers"
	"sassi/internal/ptxas"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// runCFI executes a workload (or mutant) under the CFI checker, optionally
// composing an injector ahead of the audit in the same dispatch. It
// returns the checker and the run error (mutants and injections may fault
// or mis-verify; the caller decides what is acceptable).
func runCFI(t *testing.T, spec *workloads.Spec, inj *handlers.CtrlInjector) (*handlers.CFIChecker, error) {
	t.Helper()
	prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
	if err != nil {
		t.Fatalf("%s: compile: %v", spec.Name, err)
	}
	chk := handlers.NewCFIChecker()
	opts := chk.Options()
	// Mutants are corrupt by construction; the CFI pass itself is the
	// gate under test, not the instrumentor's verifier.
	opts.Verify = analysis.VerifyOff
	if err := sassi.Instrument(prog, opts); err != nil {
		t.Fatalf("%s: instrument: %v", spec.Name, err)
	}
	if err := chk.Prepare(prog); err != nil {
		t.Fatalf("%s: prepare: %v", spec.Name, err)
	}

	cfg := sim.MiniGPU()
	cfg.SequentialSMs = true
	// Corrupted control state can spin a warp; a tight watchdog keeps the
	// hang outcomes fast (the calltree kernel retires in well under this).
	cfg.WatchdogWarpInstrs = 100_000
	ctx := cuda.NewContext(cfg)
	rt := sassi.NewRuntime(prog)
	h := chk.Handler()
	if inj != nil {
		h = &sassi.Handler{
			Name:       handlers.CFIHandlerSymbol,
			Sequential: true,
			NewFn: func() sassi.HandlerFunc {
				jf := inj.DispatchFn()
				cf := chk.DispatchFn()
				return func(c *device.Ctx, args sassi.HandlerArgs) {
					jf(c, args) // corrupt on the first lane...
					cf(c, args) // ...so the same site's audit sees it
				}
			},
		}
		ctx.Subscribe(cuda.LaunchCallbacks{PreLaunch: func(kernel string, idx int) {
			inj.SetInvocation(idx)
		}})
	}
	rt.MustRegister(h)
	rt.Attach(ctx.Device())
	res, err := spec.Run(ctx, prog, spec.DefaultDataset())
	if err == nil && res.VerifyErr != nil {
		err = res.VerifyErr
	}
	return chk, err
}

// TestCFICheckerCleanRuns pins the zero-false-positive side of the
// contract: clean workloads, including the call-tree demo, produce no
// violations and still verify under full instrumentation.
func TestCFICheckerCleanRuns(t *testing.T) {
	for _, name := range []string{"demo.calltree", "demo.vecadd", "parboil.bfs"} {
		spec, ok := workloads.Get(name)
		if !ok {
			t.Fatalf("workload %s not registered", name)
		}
		chk, err := runCFI(t, spec, nil)
		if err != nil {
			t.Fatalf("%s: clean run failed: %v", name, err)
		}
		if v := chk.Violations(); len(v) != 0 {
			t.Errorf("%s: false positives on a clean run: %v", name, v)
		}
	}
}

func hasKind(vs []handlers.CFIViolation, kind string) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

// TestCFICheckerDetectsInjectedCorruption drives each corruption class
// through the composed injector+checker handler on the call-tree demo and
// checks the audit catches it at the next site.
func TestCFICheckerDetectsInjectedCorruption(t *testing.T) {
	spec, ok := workloads.Get("demo.calltree")
	if !ok {
		t.Fatal("demo.calltree not registered")
	}
	cases := []struct {
		class handlers.CtrlClass
		nth   uint64
		kinds []string // any of these counts as detection
	}{
		{handlers.CtrlRetBitFlip, 0, []string{"call-stack", "return-address"}},
		{handlers.CtrlDivPCBitFlip, 0, []string{"div-stack"}},
		{handlers.CtrlDivMaskBitFlip, 0, []string{"div-stack"}},
		{handlers.CtrlForgedCall, 2, []string{"call-stack", "return-address"}},
	}
	for _, c := range cases {
		t.Run(c.class.String(), func(t *testing.T) {
			target := handlers.CtrlWarpKey{Invocation: 0, CTA: 0, Warp: 0}
			inj := handlers.NewCtrlInjector(c.class, target, c.nth, 1, 3, 31)
			chk, runErr := runCFI(t, spec, inj)
			fired, desc := inj.Injected()
			if !fired {
				t.Fatalf("injection never fired (run err: %v)", runErr)
			}
			vs := chk.Violations()
			detected := false
			for _, k := range c.kinds {
				if hasKind(vs, k) {
					detected = true
				}
			}
			if !detected {
				t.Errorf("corruption %q undetected; violations: %v (run err: %v)", desc, vs, runErr)
			}
		})
	}
}

// TestCFICheckerRejectsMutants pins the dynamic half of the
// static/dynamic cross-validation: every CFI seed mutant is flagged — at
// load time by the fail-closed target-set validation, and (where the
// corrupt path executes) at runtime by the matching audit kind.
func TestCFICheckerRejectsMutants(t *testing.T) {
	cases := []struct {
		name    string
		runtime string // expected runtime kind, "" if load-time only
	}{
		{"mutant.cfi-ret-nocall", "ret-underflow"},
		{"mutant.cfi-cal-midblock", ""},
		{"mutant.cfi-ssy-skew", "sync-underflow"},
	}
	for _, c := range cases {
		t.Run(strings.TrimPrefix(c.name, "mutant."), func(t *testing.T) {
			spec, ok := workloads.GetMutant(c.name)
			if !ok {
				t.Fatalf("mutant %s not registered", c.name)
			}
			chk, _ := runCFI(t, spec, nil)
			vs := chk.Violations()
			if !hasKind(vs, "static") {
				t.Errorf("no load-time static violation; got %v", vs)
			}
			if c.runtime != "" && !hasKind(vs, c.runtime) {
				t.Errorf("missing runtime %q violation; got %v", c.runtime, vs)
			}
		})
	}
}
