// Package handlers is the instrumentation-handler library: Go translations
// of the paper's four case-study CUDA handlers (conditional control flow,
// memory divergence, value profiling, error injection) plus the pedagogical
// instruction categorizer of Figure 3. Each profiler owns its device-
// resident state and decodes it host-side after the kernels finish.
package handlers

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/device"
)

// InsTable is a device-resident open-addressed hash table keyed by
// instruction address, the "find the instruction's counters in a hash
// table based on its address" structure every per-PC handler in the paper
// uses. Each entry holds a fixed number of 64-bit counter fields.
//
// Claiming an empty slot uses a three-state header word (empty ->
// initializing -> ready) so concurrent lanes of a warp cannot observe
// half-initialized counters.
type InsTable struct {
	ctx    *cuda.Context
	base   uint64
	slots  int
	fields int
	inits  []uint64
}

const (
	slotEmpty = 0
	slotInit  = 1
	slotReady = 2
)

// entry layout: status(4) key(4) fields*8
func (t *InsTable) entrySize() uint64 { return 8 + uint64(t.fields)*8 }

// NewInsTable allocates a table with the given slot count and per-entry
// counter fields, each initialized to the matching value of inits (or zero).
func NewInsTable(ctx *cuda.Context, name string, slots, fields int, inits []uint64) *InsTable {
	t := &InsTable{ctx: ctx, slots: slots, fields: fields}
	t.inits = make([]uint64, fields)
	copy(t.inits, inits)
	t.base = uint64(ctx.Malloc(uint64(slots)*t.entrySize(), name))
	zero := make([]byte, uint64(slots)*t.entrySize())
	if err := ctx.MemcpyHtoD(cuda.DevPtr(t.base), zero); err != nil {
		panic(fmt.Sprintf("handlers: init table %s: %v", name, err))
	}
	return t
}

func (t *InsTable) slotAddr(i int) uint64 { return t.base + uint64(i)*t.entrySize() }

// Find returns the device address of the counter fields for key, claiming
// and initializing a slot on first use. It is called from handler (device)
// code. A full table panics, surfacing as a handler fault.
func (t *InsTable) Find(c *device.Ctx, key int32) uint64 {
	h := int(uint32(key)*2654435761) % t.slots
	for probe := 0; probe < t.slots; probe++ {
		s := t.slotAddr((h + probe) % t.slots)
		for {
			status := c.ReadGlobal32(s)
			if status == slotReady {
				if int32(c.ReadGlobal32(s+4)) == key {
					return s + 8
				}
				break // occupied by another key; next probe
			}
			if status == slotInit {
				continue // another lane is initializing; spin
			}
			// Empty: try to claim.
			if c.AtomicCAS32(s, slotEmpty, slotInit) == slotEmpty {
				c.WriteGlobal32(s+4, uint32(key))
				for f := 0; f < t.fields; f++ {
					c.WriteGlobal64(s+8+uint64(f)*8, t.inits[f])
				}
				c.WriteGlobal32(s, slotReady)
				return s + 8
			}
		}
	}
	panic(fmt.Sprintf("handlers: instruction hash table full (%d slots)", t.slots))
}

// Entry is one decoded host-side table entry.
type Entry struct {
	Key    int32
	Fields []uint64
}

// ReadAll decodes the table host-side.
func (t *InsTable) ReadAll() ([]Entry, error) {
	buf := make([]byte, uint64(t.slots)*t.entrySize())
	if err := t.ctx.MemcpyDtoH(buf, cuda.DevPtr(t.base)); err != nil {
		return nil, err
	}
	var out []Entry
	es := int(t.entrySize())
	for i := 0; i < t.slots; i++ {
		b := buf[i*es:]
		if le32(b) != slotReady {
			continue
		}
		e := Entry{Key: int32(le32(b[4:])), Fields: make([]uint64, t.fields)}
		for f := 0; f < t.fields; f++ {
			e.Fields[f] = le64(b[8+f*8:])
		}
		out = append(out, e)
	}
	return out, nil
}

// Reset zeroes the table (between kernel launches when per-launch stats
// are wanted).
func (t *InsTable) Reset() error {
	zero := make([]byte, uint64(t.slots)*t.entrySize())
	return t.ctx.MemcpyHtoD(cuda.DevPtr(t.base), zero)
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}
