package handlers

import (
	"math/bits"
	"sort"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/sassi"
)

// Value-profile entry layout: weight, numDsts, then per destination (up to
// 4): regNum, constantOnes, constantZeros, isScalar — the paper's Figure 9
// handlerOperands structure.
const (
	vfWeight  = 0
	vfNumDsts = 1
	vfPerDst  = 4 // fields per destination
	vfMaxDsts = 4
	vfFields  = 2 + vfMaxDsts*vfPerDst
)

func vfDst(d, field int) int { return 2 + d*vfPerDst + field }

// Per-destination field offsets.
const (
	vfRegNum = iota
	vfOnes
	vfZeros
	vfScalar
)

// ValueProfiler is Case Study III (§7): instrumentation after every
// register-writing instruction tracking (1) which bits of produced values
// are constant across the whole kernel and (2) which instructions are
// scalar — producing identical values across the warp.
type ValueProfiler struct {
	Table *InsTable
}

// NewValueProfiler allocates the device-side hash table. constantOnes,
// constantZeros and isScalar fields start at all-ones so atomicAnd can only
// clear bits, as in the paper.
func NewValueProfiler(ctx *cuda.Context) *ValueProfiler {
	inits := make([]uint64, vfFields)
	for d := 0; d < vfMaxDsts; d++ {
		inits[vfDst(d, vfOnes)] = 0xffffffff
		inits[vfDst(d, vfZeros)] = 0xffffffff
		inits[vfDst(d, vfScalar)] = 1
	}
	return &ValueProfiler{Table: NewInsTable(ctx, "sassi.value_stats", 4096, vfFields, inits)}
}

// Options returns the instrumentation specification: after all register
// writes, passing register info.
func (p *ValueProfiler) Options() sassi.Options {
	return sassi.Options{
		Where:        sassi.AfterRegWrites,
		What:         sassi.PassRegisterInfo,
		AfterHandler: "sassi_after_handler",
	}
}

// Handler translates the paper's Figure 9.
func (p *ValueProfiler) Handler() *sassi.Handler {
	return &sassi.Handler{
		Name: "sassi_after_handler",
		What: sassi.PassRegisterInfo,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			if !args.BP.InstrWillExecute() {
				return
			}
			firstActive := device.Ffs(c.Ballot(true)) - 1
			rp := args.RP
			nd := rp.NumGPRDsts()
			if nd > vfMaxDsts {
				nd = vfMaxDsts
			}
			var stats uint64
			if c.Lane() == firstActive {
				stats = p.Table.Find(c, args.BP.InsAddr())
			}
			stats = c.Shfl64(stats, firstActive)
			if c.Lane() == firstActive {
				c.AtomicAdd64(stats+vfWeight*8, 1)
				c.WriteGlobal64(stats+vfNumDsts*8, uint64(nd))
			}
			for d := 0; d < nd; d++ {
				reg := rp.GPRDst(d)
				v := rp.GetRegValue(reg)

				// Track constant one- and zero-bits with atomic ANDs.
				c.AtomicAnd32(stats+uint64(vfDst(d, vfOnes))*8, v)
				c.AtomicAnd32(stats+uint64(vfDst(d, vfZeros))*8, ^v)

				// Compare against the leader's value to decide scalarity.
				leaderValue := c.Shfl(v, firstActive)
				allSame := c.All(v == leaderValue)
				if c.Lane() == firstActive {
					c.WriteGlobal64(stats+uint64(vfDst(d, vfRegNum))*8, uint64(reg))
					if !allSame {
						c.AtomicAnd32(stats+uint64(vfDst(d, vfScalar))*8, 0)
					}
				}
			}
		},
	}
}

// DstProfile is the decoded value profile of one destination register.
type DstProfile struct {
	RegNum       uint8
	ConstantOnes uint32 // bits that were 1 in every write
	ConstantZero uint32 // bits that were 0 in every write
	IsScalar     bool   // all lanes always agreed
}

// ConstBits returns how many of the 32 bits never varied.
func (d DstProfile) ConstBits() int {
	return bits.OnesCount32(d.ConstantOnes | d.ConstantZero)
}

// InsProfile is one instruction's decoded value profile.
type InsProfile struct {
	InsAddr int32
	Weight  uint64 // dynamic warp-level executions
	Dsts    []DstProfile
}

// Results decodes the per-instruction value profiles.
func (p *ValueProfiler) Results() ([]InsProfile, error) {
	entries, err := p.Table.ReadAll()
	if err != nil {
		return nil, err
	}
	out := make([]InsProfile, 0, len(entries))
	for _, e := range entries {
		ip := InsProfile{InsAddr: e.Key, Weight: e.Fields[vfWeight]}
		nd := int(e.Fields[vfNumDsts])
		if nd > vfMaxDsts {
			nd = vfMaxDsts
		}
		for d := 0; d < nd; d++ {
			ip.Dsts = append(ip.Dsts, DstProfile{
				RegNum:       uint8(e.Fields[vfDst(d, vfRegNum)]),
				ConstantOnes: uint32(e.Fields[vfDst(d, vfOnes)]),
				ConstantZero: uint32(e.Fields[vfDst(d, vfZeros)]),
				IsScalar:     e.Fields[vfDst(d, vfScalar)] != 0,
			})
		}
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InsAddr < out[j].InsAddr })
	return out, nil
}

// ValueSummary is the paper's Table 2 row: dynamic and static percentages
// of constant register bits and scalar writes.
type ValueSummary struct {
	DynConstBitsPc  float64
	DynScalarPc     float64
	StatConstBitsPc float64
	StatScalarPc    float64
}

// Summarize computes Table 2 metrics: static metrics weigh each
// instruction equally; dynamic metrics weigh by execution frequency.
func (p *ValueProfiler) Summarize() (ValueSummary, error) {
	rows, err := p.Results()
	if err != nil {
		return ValueSummary{}, err
	}
	var s ValueSummary
	var dynBits, dynConst, dynWrites, dynScalar float64
	var statBits, statConst, statWrites, statScalar float64
	for _, r := range rows {
		for _, d := range r.Dsts {
			cb := float64(d.ConstBits())
			w := float64(r.Weight)
			dynBits += 32 * w
			dynConst += cb * w
			dynWrites += w
			if d.IsScalar {
				dynScalar += w
			}
			statBits += 32
			statConst += cb
			statWrites++
			if d.IsScalar {
				statScalar++
			}
		}
	}
	if dynBits > 0 {
		s.DynConstBitsPc = 100 * dynConst / dynBits
		s.DynScalarPc = 100 * dynScalar / dynWrites
	}
	if statBits > 0 {
		s.StatConstBitsPc = 100 * statConst / statBits
		s.StatScalarPc = 100 * statScalar / statWrites
	}
	return s, nil
}
