package handlers

import (
	"sort"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/sassi"
)

// Branch-statistics field indices within the InsTable entry (the paper's
// struct BranchStats of Figure 4).
const (
	bfTotal    = iota // totalBranches
	bfActive          // activeThreads
	bfTaken           // takenThreads
	bfNotTaken        // takenNotThreads
	bfDiverge         // divergentBranches
	bfFields
)

// BranchProfiler is Case Study I (§5): a SASSI handler before every
// conditional branch recording, per branch, execution counts, active/taken/
// fall-through thread counts, and how often the warp split.
type BranchProfiler struct {
	Table *InsTable
}

// NewBranchProfiler allocates the device-side state.
func NewBranchProfiler(ctx *cuda.Context) *BranchProfiler {
	return &BranchProfiler{Table: NewInsTable(ctx, "sassi.branch_stats", 1024, bfFields, nil)}
}

// Options returns the instrumentation specification for this profiler.
func (p *BranchProfiler) Options() sassi.Options {
	return sassi.Options{
		Where:         sassi.BeforeCondBranches,
		What:          sassi.PassCondBranchInfo,
		BeforeHandler: "sassi_branch_handler",
	}
}

// Handler returns the registered handler, a direct translation of the
// paper's Figure 4.
func (p *BranchProfiler) Handler() *sassi.Handler {
	return &sassi.Handler{
		Name: "sassi_branch_handler",
		What: sassi.PassCondBranchInfo,
		Fn: func(c *device.Ctx, args sassi.HandlerArgs) {
			// Which way is this thread going?
			dir := args.CBP.Direction()

			// Masks and counts of active/taken/fall-through threads.
			active := c.Ballot(true)
			taken := c.Ballot(dir)
			ntaken := c.Ballot(!dir)
			numActive := device.Popc(active)
			numTaken := device.Popc(taken)
			numNotTaken := device.Popc(ntaken)

			// The first active thread writes the warp's results.
			if c.Lane() == device.Ffs(active)-1 {
				stats := p.Table.Find(c, args.BP.InsAddr())
				c.AtomicAdd64(stats+bfTotal*8, 1)
				c.AtomicAdd64(stats+bfActive*8, uint64(numActive))
				c.AtomicAdd64(stats+bfTaken*8, uint64(numTaken))
				c.AtomicAdd64(stats+bfNotTaken*8, uint64(numNotTaken))
				if numTaken != numActive && numNotTaken != numActive {
					// Threads went different ways.
					c.AtomicAdd64(stats+bfDiverge*8, 1)
				}
			}
		},
	}
}

// BranchStats is one branch's decoded statistics.
type BranchStats struct {
	InsAddr   int32
	Total     uint64 // warp-level executions
	Active    uint64
	Taken     uint64
	NotTaken  uint64
	Divergent uint64 // warp-level divergent executions
}

// Results decodes per-branch statistics, sorted by descending execution
// count (the order of the paper's Figure 5 plots).
func (p *BranchProfiler) Results() ([]BranchStats, error) {
	entries, err := p.Table.ReadAll()
	if err != nil {
		return nil, err
	}
	out := make([]BranchStats, 0, len(entries))
	for _, e := range entries {
		out = append(out, BranchStats{
			InsAddr: e.Key, Total: e.Fields[bfTotal], Active: e.Fields[bfActive],
			Taken: e.Fields[bfTaken], NotTaken: e.Fields[bfNotTaken],
			Divergent: e.Fields[bfDiverge],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].InsAddr < out[j].InsAddr
	})
	return out, nil
}

// Summary aggregates per-branch stats into the paper's Table 1 row:
// static branch counts and dynamic divergence.
type BranchSummary struct {
	StaticBranches    int
	StaticDivergent   int
	DynamicBranches   uint64
	DynamicDivergent  uint64
	StaticDivergentPc float64
	DynDivergentPc    float64
}

// Summarize computes the Table 1 metrics from the profile.
func (p *BranchProfiler) Summarize() (BranchSummary, error) {
	rows, err := p.Results()
	if err != nil {
		return BranchSummary{}, err
	}
	var s BranchSummary
	for _, r := range rows {
		s.StaticBranches++
		s.DynamicBranches += r.Total
		s.DynamicDivergent += r.Divergent
		if r.Divergent > 0 {
			s.StaticDivergent++
		}
	}
	if s.StaticBranches > 0 {
		s.StaticDivergentPc = 100 * float64(s.StaticDivergent) / float64(s.StaticBranches)
	}
	if s.DynamicBranches > 0 {
		s.DynDivergentPc = 100 * float64(s.DynamicDivergent) / float64(s.DynamicBranches)
	}
	return s, nil
}
