package handlers

import (
	"sassi/internal/device"
	"sassi/internal/mem"
	"sassi/internal/sassi"
)

// Sequential handler variants.
//
// The paper-faithful handlers (Figures 4, 6, 9) use warp collectives and
// therefore execute one goroutine per lane. These variants compute the
// same statistics by exploiting the simulator's deterministic ascending
// lane order within a sequential handler invocation: every contributing
// lane updates per-dispatch scratch state and the last active lane commits
// to device memory. The scratch lives in a NewFn per-dispatch closure —
// SMs execute concurrently, so state captured outside the dispatch would
// be shared between warps on different SMs. They exist purely to make
// suite-wide experiments fast; equivalence with the collective versions is
// covered by tests, and the ablation benches report the cost difference.

// SequentialHandler returns the collective-free branch profiler.
func (p *BranchProfiler) SequentialHandler() *sassi.Handler {
	return &sassi.Handler{
		Name:       "sassi_branch_handler",
		What:       sassi.PassCondBranchInfo,
		Sequential: true,
		NewFn: func() sassi.HandlerFunc {
			var active, taken, ntaken int
			return func(c *device.Ctx, args sassi.HandlerArgs) {
				active++
				if args.CBP.Direction() {
					taken++
				} else {
					ntaken++
				}
				if c.IsLastActive() {
					stats := p.Table.Find(c, args.BP.InsAddr())
					c.AtomicAdd64(stats+bfTotal*8, 1)
					c.AtomicAdd64(stats+bfActive*8, uint64(active))
					c.AtomicAdd64(stats+bfTaken*8, uint64(taken))
					c.AtomicAdd64(stats+bfNotTaken*8, uint64(ntaken))
					if taken != active && ntaken != active {
						c.AtomicAdd64(stats+bfDiverge*8, 1)
					}
				}
			}
		},
	}
}

// SequentialHandler returns the collective-free memory-divergence profiler.
func (p *MemDivProfiler) SequentialHandler() *sassi.Handler {
	return &sassi.Handler{
		Name:       "sassi_memdiv_handler",
		What:       sassi.PassMemoryInfo,
		Sequential: true,
		NewFn: func() sassi.HandlerFunc {
			var lines []uint64
			var numActive int
			return func(c *device.Ctx, args sassi.HandlerArgs) {
				if args.BP.InstrWillExecute() {
					if addr := args.MP.Address(); mem.IsGlobal(addr) {
						numActive++
						line := addr >> p.OffsetBits
						seen := false
						for _, l := range lines {
							if l == line {
								seen = true
								break
							}
						}
						if !seen {
							lines = append(lines, line)
						}
					}
				}
				if c.IsLastActive() && numActive > 0 {
					idx := uint64((numActive-1)*32 + (len(lines) - 1))
					c.AtomicAdd64(uint64(p.matrix)+idx*8, 1)
				}
			}
		},
	}
}

// SequentialHandler returns the collective-free value profiler.
func (p *ValueProfiler) SequentialHandler() *sassi.Handler {
	return &sassi.Handler{
		Name:       "sassi_after_handler",
		What:       sassi.PassRegisterInfo,
		Sequential: true,
		NewFn: func() sassi.HandlerFunc {
			var n int
			var stats uint64
			var leaderVals [vfMaxDsts]uint32
			var allSame [vfMaxDsts]bool
			var nd int
			return func(c *device.Ctx, args sassi.HandlerArgs) {
				if args.BP.InstrWillExecute() {
					rp := args.RP
					if n == 0 {
						stats = p.Table.Find(c, args.BP.InsAddr())
						nd = rp.NumGPRDsts()
						if nd > vfMaxDsts {
							nd = vfMaxDsts
						}
						c.AtomicAdd64(stats+vfWeight*8, 1)
						c.WriteGlobal64(stats+vfNumDsts*8, uint64(nd))
					}
					for d := 0; d < nd; d++ {
						reg := rp.GPRDst(d)
						v := rp.GetRegValue(reg)
						c.AtomicAnd32(stats+uint64(vfDst(d, vfOnes))*8, v)
						c.AtomicAnd32(stats+uint64(vfDst(d, vfZeros))*8, ^v)
						if n == 0 {
							leaderVals[d] = v
							allSame[d] = true
							c.WriteGlobal64(stats+uint64(vfDst(d, vfRegNum))*8, uint64(reg))
						} else if v != leaderVals[d] {
							allSame[d] = false
						}
					}
					n++
				}
				if c.IsLastActive() && n > 0 {
					for d := 0; d < nd; d++ {
						if !allSame[d] {
							c.AtomicAnd32(stats+uint64(vfDst(d, vfScalar))*8, 0)
						}
					}
				}
			}
		},
	}
}
