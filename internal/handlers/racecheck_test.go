package handlers_test

import (
	"strings"
	"testing"

	"sassi/internal/analysis"
	"sassi/internal/analysis/concurrency"
	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// raceCheck compiles and runs a spec under the RaceChecker handler and
// returns the statically-predicted race pairs alongside the dynamically
// observed ones. Mutant runs are allowed to produce wrong output (they
// are seeded data races); launch failures are not.
func raceCheck(t *testing.T, spec *workloads.Spec, dataset string) (static [][2]int, dynamic []handlers.RacePair) {
	t.Helper()
	prog, err := spec.Compile(ptxas.Options{Verify: analysis.VerifyOff})
	if err != nil {
		t.Fatalf("%s: compile: %v", spec.Name, err)
	}
	for _, k := range prog.Kernels {
		cfg, err := sass.BuildCFG(k)
		if err != nil {
			t.Fatalf("%s/%s: cfg: %v", spec.Name, k.Name, err)
		}
		static = append(static, concurrency.SharedRacePairs(cfg, analysis.AnalyzeValues(cfg))...)
	}

	cfg := sim.MiniGPU()
	cfg.SequentialSMs = true
	ctx := cuda.NewContext(cfg)
	checker := handlers.NewRaceChecker()
	if err := sassi.Instrument(prog, checker.Options()); err != nil {
		t.Fatalf("%s: instrument: %v", spec.Name, err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(checker.Handler())
	rt.Attach(ctx.Device())
	if _, err := spec.Run(ctx, prog, dataset); err != nil {
		t.Fatalf("%s: run: %v", spec.Name, err)
	}
	return static, checker.Races()
}

// TestRaceCheckerConfirmsStaticReports cross-validates the static race
// pass against the dynamic handler on every seed-buggy mutant: each
// statically-reported pair must be observed dynamically — as the exact
// site pair, or (when the static address went unknown, e.g. sgemm's
// loop-indexed tile reads, which pair one write conservatively with
// both tiles' reads) with each of its sites racing dynamically.
func TestRaceCheckerConfirmsStaticReports(t *testing.T) {
	for _, name := range workloads.MutantNames() {
		if strings.HasPrefix(name, "mutant.cfi-") {
			continue // control-flow mutants; the cfi pass owns their rejection
		}
		t.Run(name, func(t *testing.T) {
			spec, _ := workloads.GetMutant(name)
			static, dynamic := raceCheck(t, spec, spec.DefaultDataset())
			if len(static) == 0 {
				t.Fatal("static pass silent on a seeded race")
			}
			if len(dynamic) == 0 {
				t.Fatal("dynamic handler observed no race on a seeded race")
			}
			exact := map[handlers.RacePair]bool{}
			sites := map[int]bool{}
			for _, p := range dynamic {
				exact[p] = true
				sites[p.A], sites[p.B] = true, true
			}
			for _, p := range static {
				a, b := p[0], p[1]
				if a > b {
					a, b = b, a
				}
				if exact[handlers.RacePair{A: a, B: b}] {
					continue
				}
				if !sites[a] || !sites[b] {
					t.Errorf("static race (%d,%d) never observed dynamically (dynamic: %v)", a, b, dynamic)
				}
			}
		})
	}
}

// TestRaceCheckerSilentOnCleanWorkloads: properly-barriered built-ins
// produce neither static reports nor dynamic observations — the barrier
// phase counters order every cross-thread access pair.
func TestRaceCheckerSilentOnCleanWorkloads(t *testing.T) {
	for _, tc := range []struct{ workload, dataset string }{
		{"parboil.sgemm", "small"},
		{"parboil.tpacf", "small"},
	} {
		t.Run(tc.workload, func(t *testing.T) {
			spec, ok := workloads.Get(tc.workload)
			if !ok {
				t.Fatalf("workload %s not registered", tc.workload)
			}
			static, dynamic := raceCheck(t, spec, tc.dataset)
			if len(static) != 0 {
				t.Errorf("static false positives: %v", static)
			}
			if len(dynamic) != 0 {
				t.Errorf("dynamic false positives: %v", dynamic)
			}
		})
	}
}
