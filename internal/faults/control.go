package faults

// Control-state fault campaigns close the CFI loop: corrupt one warp's
// control state (return address, divergence frame, forged call frame) at a
// profiled dynamic site and ask whether the CFI checker's shadow-stack
// audit catches it, the machine crashes or hangs first, the corruption
// silently alters output, or it is masked entirely.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/handlers"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// CtrlOutcome classifies one control-state injection run.
type CtrlOutcome int

// Control-campaign outcomes, in detection-priority order: a violation
// report wins over any downstream symptom.
const (
	// CtrlDetected: the CFI checker reported at least one violation.
	CtrlDetected CtrlOutcome = iota
	// CtrlCrash: undetected, and the run died on a fault or host error.
	CtrlCrash
	// CtrlHang: undetected, and the watchdog fired.
	CtrlHang
	// CtrlSilent: undetected, run completed, output or stdout differs from
	// golden — the dangerous quadrant.
	CtrlSilent
	// CtrlMasked: no observable effect (including runs whose chosen warp
	// never reached a qualifying site, which stay uncorrupted).
	CtrlMasked
	numCtrlOutcomes
)

var ctrlOutcomeNames = [...]string{"detected", "crashed", "hung", "silent", "masked"}

func (o CtrlOutcome) String() string {
	if int(o) < len(ctrlOutcomeNames) {
		return ctrlOutcomeNames[o]
	}
	return fmt.Sprintf("ctrl-outcome(%d)", int(o))
}

// NumCtrlOutcomes is the number of control-campaign outcome categories.
const NumCtrlOutcomes = int(numCtrlOutcomes)

// ControlCampaign configures a control-state corruption study on one
// workload. The flow mirrors Campaign: golden run, one shared instrumented
// program, a profiling run enumerating the per-class qualifying site
// spaces (which doubles as the zero-false-positive check), then Injections
// armed runs with outcome classification.
type ControlCampaign struct {
	Spec    *workloads.Spec
	Dataset string
	// Injections is the number of injection runs.
	Injections int
	// Seed drives class and site selection.
	Seed uint64
	// Config is the device model; the watchdog is recalibrated from the
	// profiling run automatically (corrupted control state loves to spin).
	Config sim.Config
	// Classes restricts the corruption classes; nil means every class with
	// at least one qualifying site on this workload.
	Classes []handlers.CtrlClass
	// Workers is the number of concurrent injection executions. Every run
	// derives its RNG from (Seed, run index), so outcomes are identical at
	// any worker count. Zero means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, shares the compiled instrumented program across
	// campaigns.
	Cache *sassi.CompileCache
}

// ControlResult aggregates a control campaign per corruption class.
type ControlResult struct {
	Workload string
	Dataset  string
	// Counts[class][outcome] over the injection runs.
	Counts [handlers.NumCtrlClasses][numCtrlOutcomes]int
	// ClassTotals[class] is the number of runs drawn for the class.
	ClassTotals [handlers.NumCtrlClasses]int
	// Sites[class] is the qualifying-dispatch count from the profiling run.
	Sites [handlers.NumCtrlClasses]uint64
	// Total is the number of injection runs.
	Total int
	// FalsePositives counts CFI violations reported on the uncorrupted
	// profiling run — the contract is that this is zero.
	FalsePositives int
}

// Fraction returns an outcome's share of one class's runs.
func (r *ControlResult) Fraction(class handlers.CtrlClass, o CtrlOutcome) float64 {
	if r.ClassTotals[class] == 0 {
		return 0
	}
	return float64(r.Counts[class][o]) / float64(r.ClassTotals[class])
}

// DetectionRate returns the detected share of one class's runs.
func (r *ControlResult) DetectionRate(class handlers.CtrlClass) float64 {
	return r.Fraction(class, CtrlDetected)
}

// Run executes the full control campaign.
func (c *ControlCampaign) Run() (*ControlResult, error) {
	if c.Injections <= 0 {
		c.Injections = 100
	}
	res := &ControlResult{Workload: c.Spec.Name, Dataset: c.Dataset}

	cache := c.Cache
	if cache == nil {
		cache = sassi.NewCompileCache()
	}

	// (0) Golden reference run, uninstrumented.
	goldenProg, err := c.Spec.CompileCached(cache, ptxas.Options{})
	if err != nil {
		return nil, err
	}
	golden, err := c.Spec.Run(cuda.NewContext(c.Config), goldenProg, c.Dataset)
	if err != nil {
		return nil, fmt.Errorf("faults: golden run failed: %w", err)
	}
	if golden.VerifyErr != nil {
		return nil, fmt.Errorf("faults: golden run does not verify: %w", golden.VerifyErr)
	}

	// One instrumented program serves the profiling run and every injection
	// run; per-run behavior comes entirely from the registered handler.
	instProg, err := c.instrumentedProg(cache)
	if err != nil {
		return nil, err
	}

	// (1) Profiling run: enumerate each class's qualifying dispatch space
	// per warp per launch, with the checker composed in as the
	// zero-false-positive gate on the uncorrupted workload.
	profilers := make([]*handlers.CtrlProfiler, handlers.NumCtrlClasses)
	for cl := range profilers {
		profilers[cl] = handlers.NewCtrlProfiler(handlers.CtrlClass(cl))
	}
	chk := handlers.NewCFIChecker()
	if err := chk.Prepare(instProg); err != nil {
		return nil, err
	}
	profCtx := cuda.NewContext(c.Config)
	rt := sassi.NewRuntime(instProg)
	rt.MustRegister(&sassi.Handler{
		Name:       handlers.CFIHandlerSymbol,
		Sequential: true,
		NewFn: func() sassi.HandlerFunc {
			fns := make([]sassi.HandlerFunc, 0, len(profilers)+1)
			for _, p := range profilers {
				fns = append(fns, p.DispatchFn())
			}
			fns = append(fns, chk.DispatchFn())
			return func(ctx *device.Ctx, args sassi.HandlerArgs) {
				for _, fn := range fns {
					fn(ctx, args)
				}
			}
		},
	})
	rt.Attach(profCtx.Device())
	kernelOf := map[int]string{}
	var maxWarpInstrs uint64
	profCtx.Subscribe(cuda.LaunchCallbacks{
		PreLaunch: func(kernel string, idx int) {
			kernelOf[idx] = kernel
			for _, p := range profilers {
				p.SetInvocation(idx)
			}
		},
		PostLaunch: func(kernel string, idx int, stats *sim.KernelStats, err error) {
			if stats != nil && stats.MaxWarpInstrs > maxWarpInstrs {
				maxWarpInstrs = stats.MaxWarpInstrs
			}
		},
	})
	profRes, err := c.Spec.Run(profCtx, instProg, c.Dataset)
	if err != nil {
		return nil, fmt.Errorf("faults: profiling run failed: %w", err)
	}
	if profRes.VerifyErr != nil {
		return nil, fmt.Errorf("faults: profiling run does not verify: %w", profRes.VerifyErr)
	}
	res.FalsePositives = len(chk.Violations()) + chk.Dropped
	for cl := range profilers {
		res.Sites[cl] = profilers[cl].Total()
	}

	// Candidate classes: requested (or all), kept only when the workload
	// offers at least one qualifying site.
	classes := c.Classes
	if classes == nil {
		for cl := handlers.CtrlClass(0); cl < handlers.NumCtrlClasses; cl++ {
			classes = append(classes, cl)
		}
	}
	var usable []handlers.CtrlClass
	for _, cl := range classes {
		if res.Sites[cl] > 0 {
			usable = append(usable, cl)
		}
	}
	if len(usable) == 0 {
		return nil, fmt.Errorf("faults: workload %s has no qualifying control-state sites", c.Spec.Name)
	}

	// (2) Injection runs over a worker pool; each run is a pure function of
	// (Seed, run index).
	injCfg := c.Config
	injCfg.WatchdogWarpInstrs = 20*maxWarpInstrs + 100_000
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.Injections {
		workers = c.Injections
	}
	type runPlan struct {
		class handlers.CtrlClass
		inj   *handlers.CtrlInjector
	}
	plan := func(run int) runPlan {
		rng := newRNG(runSeed(c.Seed, run))
		class := usable[rng.next()%uint64(len(usable))]
		p := profilers[class]
		key, nth, _ := p.Pick(rng.next() % p.Total())
		kernelLen := 0
		if k, ok := instProg.Kernel(kernelOf[key.Invocation]); ok {
			kernelLen = len(k.Instrs)
		}
		return runPlan{
			class: class,
			inj:   handlers.NewCtrlInjector(class, key, nth, rng.next(), rng.next(), kernelLen),
		}
	}
	outcomes := make([]CtrlOutcome, c.Injections)
	classOf := make([]handlers.CtrlClass, c.Injections)
	errs := make([]error, c.Injections)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				run := int(next.Add(1)) - 1
				if run >= c.Injections {
					return
				}
				p := plan(run)
				classOf[run] = p.class
				outcomes[run], errs[run] = c.injectOnce(instProg, p.inj, injCfg, golden)
			}
		}()
	}
	wg.Wait()
	for run, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("faults: control injection run %d: %w", run, err)
		}
	}
	for run, o := range outcomes {
		res.Counts[classOf[run]][o]++
		res.ClassTotals[classOf[run]]++
		res.Total++
	}
	return res, nil
}

// instrumentedProg builds (or fetches) the single CFI-instrumented program
// shared by the profiling run and every injection run.
func (c *ControlCampaign) instrumentedProg(cache *sassi.CompileCache) (*sass.Program, error) {
	instOpts := handlers.NewCFIChecker().Options()
	instKey, ok := instOpts.CacheKey()
	build := func() (*sass.Program, error) {
		prog, err := c.Spec.Compile(ptxas.Options{})
		if err != nil {
			return nil, err
		}
		if err := sassi.Instrument(prog, instOpts); err != nil {
			return nil, err
		}
		return prog, nil
	}
	if !ok {
		return build()
	}
	return cache.Get(c.Spec.InstrumentedKey(ptxas.Options{}, instKey), build)
}

// injectOnce performs one armed run on a private device: the injector
// corrupts the chosen warp's control state ahead of the checker's audit in
// the same dispatch, and the outcome is classified with detection taking
// priority over downstream symptoms.
func (c *ControlCampaign) injectOnce(prog *sass.Program, inj *handlers.CtrlInjector, cfg sim.Config, golden *workloads.Result) (CtrlOutcome, error) {
	chk := handlers.NewCFIChecker()
	if err := chk.Prepare(prog); err != nil {
		return CtrlMasked, err
	}
	ctx := cuda.NewContext(cfg)
	// Lenient heap bounds, as in the register campaigns: corrupted control
	// flow may compute wild addresses that still land in mapped memory.
	ctx.Device().Global.SetStrictBounds(false)
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(&sassi.Handler{
		Name:       handlers.CFIHandlerSymbol,
		Sequential: true,
		NewFn: func() sassi.HandlerFunc {
			jf := inj.DispatchFn()
			cf := chk.DispatchFn()
			return func(dctx *device.Ctx, args sassi.HandlerArgs) {
				jf(dctx, args)
				cf(dctx, args)
			}
		},
	})
	rt.Attach(ctx.Device())
	ctx.Subscribe(cuda.LaunchCallbacks{PreLaunch: func(kernel string, idx int) {
		inj.SetInvocation(idx)
	}})

	result, err := c.Spec.Run(ctx, prog, c.Dataset)
	if len(chk.Violations()) > 0 {
		return CtrlDetected, nil
	}
	if err != nil {
		var ke *sim.KernelError
		if asKernelError(err, &ke) && ke.Kind == sim.ErrHang {
			return CtrlHang, nil
		}
		return CtrlCrash, nil
	}
	if fired, _ := inj.Injected(); !fired {
		return CtrlMasked, nil
	}
	if !c.Spec.OutputsMatch(result.Output, golden.Output) || result.Stdout != golden.Stdout {
		return CtrlSilent, nil
	}
	return CtrlMasked, nil
}
