package faults_test

import (
	"testing"

	"sassi/internal/faults"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// TestOutcomeDistributionShape checks the paper's Figure 10 headline shape
// on a masking-friendly workload: masked injections are the large majority
// and crashes a minority. kmeans masks heavily because only the final
// membership decision reaches the output.
func TestOutcomeDistributionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second campaign")
	}
	spec, _ := workloads.Get("rodinia.kmeans")
	c := &faults.Campaign{
		Spec: spec, Dataset: spec.DefaultDataset(),
		Injections: 30, Seed: 11, Config: sim.MiniGPU(),
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	t.Logf("masked=%d crash=%d hang=%d symptom=%d stdout=%d output=%d",
		res.Counts[faults.Masked], res.Counts[faults.Crash], res.Counts[faults.Hang],
		res.Counts[faults.FailureSymptom], res.Counts[faults.StdoutOnlyDiff],
		res.Counts[faults.OutputDiff])
	if got := res.Fraction(faults.Masked); got < 0.5 {
		t.Errorf("masked fraction = %.2f, want the majority (paper: ~0.79)", got)
	}
	if got := res.Fraction(faults.Crash) + res.Fraction(faults.Hang); got > 0.4 {
		t.Errorf("crash+hang fraction = %.2f, want a minority (paper: ~0.10)", got)
	}
}
