package faults_test

import (
	"testing"

	"sassi/internal/faults"
	"sassi/internal/handlers"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// TestControlCampaignCallTree runs a control-state corruption campaign on
// the call-tree demo and pins the CFI contract: zero false positives on
// the uncorrupted profiling run, every run classified, and the
// return-address class detected at >= 95%.
func TestControlCampaignCallTree(t *testing.T) {
	spec, ok := workloads.Get("demo.calltree")
	if !ok {
		t.Fatal("demo.calltree not registered")
	}
	cfg := sim.MiniGPU()
	cfg.SequentialSMs = true
	c := &faults.ControlCampaign{
		Spec: spec, Dataset: "small",
		Injections: 40, Seed: 11, Config: cfg,
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if res.FalsePositives != 0 {
		t.Errorf("false positives on the uncorrupted run: %d", res.FalsePositives)
	}
	if res.Total != 40 {
		t.Fatalf("total = %d, want 40", res.Total)
	}
	sum := 0
	for cl := 0; cl < int(handlers.NumCtrlClasses); cl++ {
		class := handlers.CtrlClass(cl)
		for o := 0; o < faults.NumCtrlOutcomes; o++ {
			sum += res.Counts[cl][o]
		}
		t.Logf("%-12s sites=%-4d runs=%-3d detected=%.0f%%",
			class, res.Sites[cl], res.ClassTotals[cl], 100*res.DetectionRate(class))
	}
	if sum != res.Total {
		t.Fatalf("outcome counts sum %d != total %d", sum, res.Total)
	}
	// The call tree qualifies every class (calls, divergence, any-site).
	for cl := 0; cl < int(handlers.NumCtrlClasses); cl++ {
		if res.Sites[cl] == 0 {
			t.Errorf("class %s profiled no qualifying sites", handlers.CtrlClass(cl))
		}
	}
	if n := res.ClassTotals[handlers.CtrlRetBitFlip]; n > 0 {
		if rate := res.DetectionRate(handlers.CtrlRetBitFlip); rate < 0.95 {
			t.Errorf("ret-addr detection %.0f%% < 95%%", 100*rate)
		}
	} else {
		t.Error("no ret-addr runs drawn across 40 injections")
	}
}

// TestControlCampaignWorkerInvariance: outcome counts must be identical at
// any worker count (per-run RNGs derive from (seed, run index)).
func TestControlCampaignWorkerInvariance(t *testing.T) {
	spec, ok := workloads.Get("demo.calltree")
	if !ok {
		t.Fatal("demo.calltree not registered")
	}
	cfg := sim.MiniGPU()
	cfg.SequentialSMs = true
	run := func(workers int) *faults.ControlResult {
		c := &faults.ControlCampaign{
			Spec: spec, Dataset: "small",
			Injections: 12, Seed: 3, Config: cfg, Workers: workers,
		}
		res, err := c.Run()
		if err != nil {
			t.Fatalf("campaign (workers=%d): %v", workers, err)
		}
		return res
	}
	a, b := run(1), run(4)
	if a.Counts != b.Counts {
		t.Errorf("outcome counts differ across worker counts:\n 1: %v\n 4: %v", a.Counts, b.Counts)
	}
}

// TestControlCampaignNoSites: a workload with no call tree still qualifies
// the forged-call class (any site), but restricting the campaign to
// call-stack classes must fail cleanly.
func TestControlCampaignNoSites(t *testing.T) {
	spec, ok := workloads.Get("demo.vecadd")
	if !ok {
		t.Fatal("demo.vecadd not registered")
	}
	c := &faults.ControlCampaign{
		Spec: spec, Dataset: "small",
		Injections: 2, Seed: 1, Config: sim.MiniGPU(),
		Classes: []handlers.CtrlClass{handlers.CtrlRetBitFlip},
	}
	if _, err := c.Run(); err == nil {
		t.Error("expected an error for a class with no qualifying sites")
	}
}
