package faults_test

import (
	"testing"

	"sassi/internal/faults"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// TestCampaignVecAdd runs a small injection campaign and sanity-checks the
// outcome distribution: every run classified, and the masked fraction is
// the plurality (the paper's headline shape: ~79% masked).
func TestCampaignVecAdd(t *testing.T) {
	spec, ok := workloads.Get("demo.vecadd")
	if !ok {
		t.Fatal("vecadd not registered")
	}
	c := &faults.Campaign{
		Spec: spec, Dataset: "small",
		Injections: 30, Seed: 7, Config: sim.MiniGPU(),
	}
	res, err := c.Run()
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if res.Total != 30 {
		t.Fatalf("total = %d, want 30", res.Total)
	}
	sum := 0
	for o := 0; o < faults.NumOutcomes; o++ {
		sum += res.Counts[o]
	}
	if sum != res.Total {
		t.Fatalf("outcome counts sum %d != total %d", sum, res.Total)
	}
	if res.SitesTotal == 0 {
		t.Fatal("no injectable sites profiled")
	}
	t.Logf("sites=%d outcomes: masked=%d crash=%d hang=%d symptom=%d stdout=%d output=%d",
		res.SitesTotal,
		res.Counts[faults.Masked], res.Counts[faults.Crash], res.Counts[faults.Hang],
		res.Counts[faults.FailureSymptom], res.Counts[faults.StdoutOnlyDiff],
		res.Counts[faults.OutputDiff])
	if res.Counts[faults.Masked] == 0 {
		t.Error("expected at least some masked injections")
	}
	nonMasked := res.Total - res.Counts[faults.Masked]
	if nonMasked == 0 {
		t.Error("expected at least some visible corruption across 30 injections")
	}
}

// TestCampaignWorkerInvariance is the campaign-level determinism contract:
// the same campaign run with 1, 4, and 8 workers must produce identical
// outcome counts — per-run RNGs derive from (seed, run index), so site
// selection never depends on scheduling.
func TestCampaignWorkerInvariance(t *testing.T) {
	spec, ok := workloads.Get("demo.vecadd")
	if !ok {
		t.Fatal("vecadd not registered")
	}
	var want *faults.Result
	for _, workers := range []int{1, 4, 8} {
		c := &faults.Campaign{
			Spec: spec, Dataset: "small",
			Injections: 16, Seed: 99, Config: sim.MiniGPU(),
			Workers: workers,
		}
		res, err := c.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = res
			t.Logf("outcomes: %v (sites=%d)", res.Counts, res.SitesTotal)
			continue
		}
		if res.Counts != want.Counts || res.SitesTotal != want.SitesTotal {
			t.Errorf("workers=%d: counts %v (sites %d) != workers=1 counts %v (sites %d)",
				workers, res.Counts, res.SitesTotal, want.Counts, want.SitesTotal)
		}
	}
}
