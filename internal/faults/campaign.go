// Package faults drives Case Study IV's error-injection campaigns (§8):
// profile the injection site space with one SASSI handler, stochastically
// select sites, inject single-bit flips with a second handler, and classify
// each run's outcome against a golden reference execution.
package faults

import (
	"fmt"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/ptxas"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// Outcome classifies one injection run, following Figure 10's categories.
type Outcome int

// Outcomes, ordered as in the paper's stacked bars.
const (
	Masked Outcome = iota
	Crash
	Hang
	FailureSymptom
	StdoutOnlyDiff
	OutputDiff
	numOutcomes
)

var outcomeNames = [...]string{
	"masked", "crash", "hang", "failure-symptom", "stdout-only-diff", "output-file-diff",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// NumOutcomes is the number of outcome categories.
const NumOutcomes = int(numOutcomes)

// Campaign configures a fault-injection study on one workload.
type Campaign struct {
	Spec    *workloads.Spec
	Dataset string
	// Injections is the number of injection runs (the paper uses 1000).
	Injections int
	// Seed drives site selection.
	Seed uint64
	// Config is the device model; the watchdog is recalibrated from the
	// profiling run automatically.
	Config sim.Config
	// Targets weights the state classes; zero value means the paper's mix
	// (GPRs dominate, predicates and CC for compare instructions).
	Targets []handlers.InjectTarget
}

// launchProfile records one launch's per-thread qualifying site counts.
type launchProfile struct {
	kernel string
	counts []uint64
	total  uint64
}

// Result aggregates a campaign.
type Result struct {
	Workload   string
	Dataset    string
	Counts     [numOutcomes]int
	Total      int
	SitesTotal uint64
}

// Fraction returns an outcome's share of the campaign.
func (r *Result) Fraction(o Outcome) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(r.Total)
}

// Run executes the full campaign: golden run, profiling run, then
// Injections armed runs with outcome classification.
func (c *Campaign) Run() (*Result, error) {
	if c.Injections <= 0 {
		c.Injections = 100
	}
	if len(c.Targets) == 0 {
		c.Targets = []handlers.InjectTarget{
			handlers.TargetGPR, handlers.TargetGPR, handlers.TargetGPR,
			handlers.TargetGPR, handlers.TargetGPR, handlers.TargetGPR,
			handlers.TargetPred, handlers.TargetCC,
		}
	}
	res := &Result{Workload: c.Spec.Name, Dataset: c.Dataset}

	// (0) Golden reference run, uninstrumented.
	goldenProg, err := c.Spec.Compile(ptxas.Options{})
	if err != nil {
		return nil, err
	}
	goldenCtx := cuda.NewContext(c.Config)
	golden, err := c.Spec.Run(goldenCtx, goldenProg, c.Dataset)
	if err != nil {
		return nil, fmt.Errorf("faults: golden run failed: %w", err)
	}
	if golden.VerifyErr != nil {
		return nil, fmt.Errorf("faults: golden run does not verify: %w", golden.VerifyErr)
	}

	// (1) Profiling run: count qualifying dynamic instructions per thread
	// per launch.
	profProg, err := c.Spec.Compile(ptxas.Options{})
	if err != nil {
		return nil, err
	}
	profCtx := cuda.NewContext(c.Config)
	maxThreads := maxLaunchThreads(goldenCtx)
	prof := handlers.NewInjProfiler(profCtx, maxThreads)
	if err := sassi.Instrument(profProg, prof.Options()); err != nil {
		return nil, err
	}
	rt := sassi.NewRuntime(profProg)
	if err := rt.Register(prof.Handler()); err != nil {
		return nil, err
	}
	rt.Attach(profCtx.Device())

	var profiles []launchProfile
	var maxWarpInstrs uint64
	profCtx.Subscribe(cuda.LaunchCallbacks{
		PostLaunch: func(kernel string, idx int, stats *sim.KernelStats, err error) {
			counts, rerr := prof.Counts()
			if rerr != nil || err != nil {
				return
			}
			lp := launchProfile{kernel: kernel, counts: counts}
			for _, v := range counts {
				lp.total += v
			}
			profiles = append(profiles, lp)
			if stats != nil && stats.MaxWarpInstrs > maxWarpInstrs {
				maxWarpInstrs = stats.MaxWarpInstrs
			}
			// Reset for the next launch.
			zero := make([]byte, 8*maxThreads)
			_ = profCtx.MemcpyHtoD(profPtr(prof), zero)
		},
	})
	if _, err := c.Spec.Run(profCtx, profProg, c.Dataset); err != nil {
		return nil, fmt.Errorf("faults: profiling run failed: %w", err)
	}
	var totalSites uint64
	for _, lp := range profiles {
		totalSites += lp.total
	}
	res.SitesTotal = totalSites
	if totalSites == 0 {
		return nil, fmt.Errorf("faults: workload %s has no injectable sites", c.Spec.Name)
	}

	// (2) Injection runs.
	injCfg := c.Config
	injCfg.WatchdogWarpInstrs = 20*maxWarpInstrs + 100_000
	rng := newRNG(c.Seed)
	for run := 0; run < c.Injections; run++ {
		site := c.selectSite(profiles, rng)
		outcome, err := c.injectOnce(site, injCfg, golden)
		if err != nil {
			return nil, fmt.Errorf("faults: injection run %d: %w", run, err)
		}
		res.Counts[outcome]++
		res.Total++
	}
	return res, nil
}

// selectSite samples a (launch, thread, dynamic-instruction) tuple
// uniformly over the profiled site space, plus random seeds.
func (c *Campaign) selectSite(profiles []launchProfile, rng *prng) handlers.InjectionSite {
	var total uint64
	for _, lp := range profiles {
		total += lp.total
	}
	pick := rng.next() % total
	for li, lp := range profiles {
		if pick >= lp.total {
			pick -= lp.total
			continue
		}
		for t, cnt := range lp.counts {
			if pick >= cnt {
				pick -= cnt
				continue
			}
			return handlers.InjectionSite{
				Kernel:     lp.kernel,
				Invocation: li,
				ThreadID:   uint64(t),
				InstrIndex: pick,
				DstSeed:    uint32(rng.next()),
				BitSeed:    uint32(rng.next()),
				Target:     c.Targets[rng.next()%uint64(len(c.Targets))],
			}
		}
	}
	// Unreachable with a correct total.
	return handlers.InjectionSite{}
}

// injectOnce performs one armed run and classifies its outcome.
func (c *Campaign) injectOnce(site handlers.InjectionSite, cfg sim.Config, golden *workloads.Result) (Outcome, error) {
	prog, err := c.Spec.Compile(ptxas.Options{})
	if err != nil {
		return Masked, err
	}
	inj := handlers.NewInjector(site)
	if err := sassi.Instrument(prog, inj.Options()); err != nil {
		return Masked, err
	}
	ctx := cuda.NewContext(cfg)
	// Lenient heap bounds: corrupted pointers land in mapped memory unless
	// they leave the heap entirely, as on hardware.
	ctx.Device().Global.SetStrictBounds(false)
	rt := sassi.NewRuntime(prog)
	if err := rt.Register(inj.Handler()); err != nil {
		return Masked, err
	}
	rt.Attach(ctx.Device())
	ctx.Subscribe(cuda.LaunchCallbacks{
		PreLaunch: func(kernel string, idx int) {
			if idx == site.Invocation {
				inj.Arm()
			}
		},
		PostLaunch: func(kernel string, idx int, stats *sim.KernelStats, err error) {
			if idx == site.Invocation {
				inj.Armed = false
			}
		},
	})

	result, err := c.Spec.Run(ctx, prog, c.Dataset)
	if err != nil {
		var ke *sim.KernelError
		if asKernelError(err, &ke) {
			switch ke.Kind {
			case sim.ErrMemFault:
				return Crash, nil
			case sim.ErrHang:
				return Hang, nil
			default:
				return FailureSymptom, nil
			}
		}
		// Host-side failure (bad sizes, download errors): an explicit
		// error message — a failure symptom.
		return FailureSymptom, nil
	}
	// Output comparison uses the workload's own comparator — Parboil and
	// Rodinia ship tolerance-based compare tools, so a low-order mantissa
	// flip that stays within tolerance counts as matching output. The
	// stdout comparison is exact, so such a flip that changes the printed
	// summary classifies as "stdout only different", the paper's category.
	if !c.Spec.OutputsMatch(result.Output, golden.Output) {
		return OutputDiff, nil
	}
	if result.Stdout != golden.Stdout {
		return StdoutOnlyDiff, nil
	}
	return Masked, nil
}

func asKernelError(err error, out **sim.KernelError) bool {
	for err != nil {
		if ke, ok := err.(*sim.KernelError); ok {
			*out = ke
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// maxLaunchThreads returns the largest grid size the golden run launched
// (sizing the per-thread profile array).
func maxLaunchThreads(ctx *cuda.Context) int {
	// Context aggregates don't keep per-launch geometry; use a generous
	// upper bound derived from total warp instrs if unavailable. The
	// profile array is cheap, so default to 1<<16 threads.
	return 1 << 16
}

// profPtr exposes the profiler's device array for host-side reset.
func profPtr(p *handlers.InjProfiler) cuda.DevPtr { return p.DevPtr() }

// prng is a local xorshift64* generator.
type prng struct{ s uint64 }

func newRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &prng{s: seed}
}

func (r *prng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}
