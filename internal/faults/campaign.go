// Package faults drives Case Study IV's error-injection campaigns (§8):
// profile the injection site space with one SASSI handler, stochastically
// select sites, inject single-bit flips with a second handler, and classify
// each run's outcome against a golden reference execution.
package faults

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/obs"
	"sassi/internal/obs/pcsamp"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// Outcome classifies one injection run, following Figure 10's categories.
type Outcome int

// Outcomes, ordered as in the paper's stacked bars.
const (
	Masked Outcome = iota
	Crash
	Hang
	FailureSymptom
	StdoutOnlyDiff
	OutputDiff
	numOutcomes
)

var outcomeNames = [...]string{
	"masked", "crash", "hang", "failure-symptom", "stdout-only-diff", "output-file-diff",
}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", int(o))
}

// NumOutcomes is the number of outcome categories.
const NumOutcomes = int(numOutcomes)

// Campaign configures a fault-injection study on one workload.
type Campaign struct {
	Spec    *workloads.Spec
	Dataset string
	// Injections is the number of injection runs (the paper uses 1000).
	Injections int
	// Seed drives site selection.
	Seed uint64
	// Config is the device model; the watchdog is recalibrated from the
	// profiling run automatically.
	Config sim.Config
	// Targets weights the state classes; zero value means the paper's mix
	// (GPRs dominate, predicates and CC for compare instructions).
	Targets []handlers.InjectTarget

	// Workers is the number of injection executions run concurrently, each
	// on its own simulated device. Every run derives its RNG from (Seed,
	// run index), so the outcome distribution is identical at any worker
	// count. Zero means GOMAXPROCS; 1 runs serially.
	Workers int

	// Cache, when non-nil, is a shared compile cache; campaigns compile
	// the workload exactly twice (uninstrumented golden + one instrumented
	// program shared by the profiling run and every injection run), and a
	// shared cache extends that sharing across campaigns. Nil uses a
	// campaign-private cache.
	Cache *sassi.CompileCache

	// Metrics, when non-nil, receives campaign progress: faults.runs,
	// faults.runs_failed, faults.workers, faults.sites_total, and one
	// faults.outcome.<name> counter per category.
	Metrics *obs.Registry
	// Trace, when non-nil, records the golden and profiling phases on the
	// host lane and one wall-clock lane per injection worker (PidCampaign),
	// with a span per run carrying its outcome.
	Trace *obs.Tracer
	// PCSamp, when non-nil, PC-samples the golden run (only: the profiling
	// and injection runs execute instrumented code whose PCs would not
	// line up with the uninstrumented profile).
	PCSamp *pcsamp.Sampler
}

// launchProfile records one launch's per-thread qualifying site counts.
type launchProfile struct {
	kernel string
	counts []uint64
	total  uint64
}

// Result aggregates a campaign.
type Result struct {
	Workload   string
	Dataset    string
	Counts     [numOutcomes]int
	Total      int
	SitesTotal uint64
}

// Fraction returns an outcome's share of the campaign.
func (r *Result) Fraction(o Outcome) float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Counts[o]) / float64(r.Total)
}

// Run executes the full campaign: golden run, profiling run, then
// Injections armed runs with outcome classification.
func (c *Campaign) Run() (*Result, error) {
	if c.Injections <= 0 {
		c.Injections = 100
	}
	if len(c.Targets) == 0 {
		c.Targets = []handlers.InjectTarget{
			handlers.TargetGPR, handlers.TargetGPR, handlers.TargetGPR,
			handlers.TargetGPR, handlers.TargetGPR, handlers.TargetGPR,
			handlers.TargetPred, handlers.TargetCC,
		}
	}
	res := &Result{Workload: c.Spec.Name, Dataset: c.Dataset}

	cache := c.Cache
	if cache == nil {
		cache = sassi.NewCompileCache()
		cache.Metrics = c.Metrics
		cache.Trace = c.Trace
	}

	// (0) Golden reference run, uninstrumented.
	goldenProg, err := c.Spec.CompileCached(cache, ptxas.Options{})
	if err != nil {
		return nil, err
	}
	goldenCtx := cuda.NewContext(c.Config)
	goldenCtx.Device().PCSamp = c.PCSamp
	var golden *workloads.Result
	c.Trace.HostSpan(obs.TidHostMain, "golden:"+c.Spec.Name, func() {
		golden, err = c.Spec.Run(goldenCtx, goldenProg, c.Dataset)
	})
	if err != nil {
		return nil, fmt.Errorf("faults: golden run failed: %w", err)
	}
	if golden.VerifyErr != nil {
		return nil, fmt.Errorf("faults: golden run does not verify: %w", golden.VerifyErr)
	}

	// The profiling handler and the injector share one instrumentation
	// descriptor (site selection is site-independent: "after register
	// writes"), so a single instrumented program serves the profiling run
	// and all N injection runs. Instrumentation happens inside the build
	// closure — cached programs are shared read-only.
	instProg, err := c.instrumentedProg(cache)
	if err != nil {
		return nil, err
	}

	// (1) Profiling run: count qualifying dynamic instructions per thread
	// per launch.
	profCtx := cuda.NewContext(c.Config)
	maxThreads := maxLaunchThreads(goldenCtx)
	prof := handlers.NewInjProfiler(profCtx, maxThreads)
	rt := sassi.NewRuntime(instProg)
	if err := rt.Register(prof.Handler()); err != nil {
		return nil, err
	}
	rt.Attach(profCtx.Device())

	var profiles []launchProfile
	var maxWarpInstrs uint64
	profCtx.Subscribe(cuda.LaunchCallbacks{
		PostLaunch: func(kernel string, idx int, stats *sim.KernelStats, err error) {
			counts, rerr := prof.Counts()
			if rerr != nil || err != nil {
				return
			}
			lp := launchProfile{kernel: kernel, counts: counts}
			for _, v := range counts {
				lp.total += v
			}
			profiles = append(profiles, lp)
			if stats != nil && stats.MaxWarpInstrs > maxWarpInstrs {
				maxWarpInstrs = stats.MaxWarpInstrs
			}
			// Reset for the next launch.
			zero := make([]byte, 8*maxThreads)
			_ = profCtx.MemcpyHtoD(profPtr(prof), zero)
		},
	})
	var profErr error
	c.Trace.HostSpan(obs.TidHostMain, "profile:"+c.Spec.Name, func() {
		_, profErr = c.Spec.Run(profCtx, instProg, c.Dataset)
	})
	if profErr != nil {
		return nil, fmt.Errorf("faults: profiling run failed: %w", profErr)
	}
	var totalSites uint64
	for _, lp := range profiles {
		totalSites += lp.total
	}
	res.SitesTotal = totalSites
	if totalSites == 0 {
		return nil, fmt.Errorf("faults: workload %s has no injectable sites", c.Spec.Name)
	}

	// (2) Injection runs, fanned out over a worker pool. Each run seeds its
	// own RNG from (campaign seed, run index) and simulates on a private
	// device, so site selection and outcome are a pure function of the run
	// index: the per-run outcomes — not just the histogram — are identical
	// at any worker count.
	injCfg := c.Config
	injCfg.WatchdogWarpInstrs = 20*maxWarpInstrs + 100_000
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.Injections {
		workers = c.Injections
	}
	c.Metrics.Gauge(obs.MFaultsWorkers).Set(uint64(workers))
	c.Metrics.Gauge(obs.MFaultsSitesTotal).Set(totalSites)
	if c.Trace != nil {
		c.Trace.NameProcess(obs.PidCampaign, "fault campaign (wall µs)")
		for w := 0; w < workers; w++ {
			c.Trace.NameThread(obs.PidCampaign, w, fmt.Sprintf("worker %d", w))
		}
	}
	runsCtr := c.Metrics.Counter(obs.MFaultsRuns)
	failedCtr := c.Metrics.Counter(obs.MFaultsRunsFailed)
	outcomes := make([]Outcome, c.Injections)
	errs := make([]error, c.Injections)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				run := int(next.Add(1)) - 1
				if run >= c.Injections {
					return
				}
				rng := newRNG(runSeed(c.Seed, run))
				site := c.selectSite(profiles, rng)
				ts := c.Trace.Now()
				outcomes[run], errs[run] = c.injectOnce(instProg, site, injCfg, golden)
				runsCtr.Inc()
				if errs[run] != nil {
					failedCtr.Inc()
				}
				if c.Trace != nil {
					c.Trace.Span(obs.PidCampaign, w, fmt.Sprintf("run %d", run),
						ts, c.Trace.Now()-ts,
						map[string]any{"outcome": outcomes[run].String()})
				}
			}
		}(w)
	}
	wg.Wait()
	for run, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("faults: injection run %d: %w", run, err)
		}
	}
	for _, o := range outcomes {
		res.Counts[o]++
		res.Total++
	}
	if reg := c.Metrics; reg != nil {
		for o := 0; o < NumOutcomes; o++ {
			reg.Counter(obs.MFaultsOutcomePref + Outcome(o).String()).Add(uint64(res.Counts[o]))
		}
	}
	return res, nil
}

// instrumentedProg builds (or fetches) the campaign's single instrumented
// program. The injection descriptor is site-independent ("after register
// writes", register info, sassi_errorinj_handler), so the profiling run and
// every injection run share it; per-run behavior comes entirely from the
// registered handler's state.
func (c *Campaign) instrumentedProg(cache *sassi.CompileCache) (*sass.Program, error) {
	instOpts := (&handlers.Injector{}).Options()
	instKey, ok := instOpts.CacheKey()
	build := func() (*sass.Program, error) {
		prog, err := c.Spec.Compile(ptxas.Options{})
		if err != nil {
			return nil, err
		}
		if err := sassi.Instrument(prog, instOpts); err != nil {
			return nil, err
		}
		return prog, nil
	}
	if !ok {
		// Unreachable today (injWhere carries no Select closure), but keep
		// the uncacheable path honest.
		return build()
	}
	return cache.Get(c.Spec.InstrumentedKey(ptxas.Options{}, instKey), build)
}

// runSeed derives the RNG seed for one injection run from the campaign seed
// and the run index (splitmix64 finalizer), decorrelating runs while keeping
// each a pure function of (Seed, run).
func runSeed(seed uint64, run int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(run+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// selectSite samples a (launch, thread, dynamic-instruction) tuple
// uniformly over the profiled site space, plus random seeds.
func (c *Campaign) selectSite(profiles []launchProfile, rng *prng) handlers.InjectionSite {
	var total uint64
	for _, lp := range profiles {
		total += lp.total
	}
	pick := rng.next() % total
	for li, lp := range profiles {
		if pick >= lp.total {
			pick -= lp.total
			continue
		}
		for t, cnt := range lp.counts {
			if pick >= cnt {
				pick -= cnt
				continue
			}
			return handlers.InjectionSite{
				Kernel:     lp.kernel,
				Invocation: li,
				ThreadID:   uint64(t),
				InstrIndex: pick,
				DstSeed:    uint32(rng.next()),
				BitSeed:    uint32(rng.next()),
				Target:     c.Targets[rng.next()%uint64(len(c.Targets))],
			}
		}
	}
	// Unreachable with a correct total.
	return handlers.InjectionSite{}
}

// injectOnce performs one armed run on its own device and classifies the
// outcome. prog is the shared instrumented program (read-only).
func (c *Campaign) injectOnce(prog *sass.Program, site handlers.InjectionSite, cfg sim.Config, golden *workloads.Result) (Outcome, error) {
	inj := handlers.NewInjector(site)
	ctx := cuda.NewContext(cfg)
	// Lenient heap bounds: corrupted pointers land in mapped memory unless
	// they leave the heap entirely, as on hardware.
	ctx.Device().Global.SetStrictBounds(false)
	rt := sassi.NewRuntime(prog)
	if err := rt.Register(inj.Handler()); err != nil {
		return Masked, err
	}
	rt.Attach(ctx.Device())
	ctx.Subscribe(cuda.LaunchCallbacks{
		PreLaunch: func(kernel string, idx int) {
			if idx == site.Invocation {
				inj.Arm()
			}
		},
		PostLaunch: func(kernel string, idx int, stats *sim.KernelStats, err error) {
			if idx == site.Invocation {
				inj.Disarm()
			}
		},
	})

	result, err := c.Spec.Run(ctx, prog, c.Dataset)
	if err != nil {
		var ke *sim.KernelError
		if asKernelError(err, &ke) {
			switch ke.Kind {
			case sim.ErrMemFault:
				return Crash, nil
			case sim.ErrHang:
				return Hang, nil
			default:
				return FailureSymptom, nil
			}
		}
		// Host-side failure (bad sizes, download errors): an explicit
		// error message — a failure symptom.
		return FailureSymptom, nil
	}
	// Output comparison uses the workload's own comparator — Parboil and
	// Rodinia ship tolerance-based compare tools, so a low-order mantissa
	// flip that stays within tolerance counts as matching output. The
	// stdout comparison is exact, so such a flip that changes the printed
	// summary classifies as "stdout only different", the paper's category.
	if !c.Spec.OutputsMatch(result.Output, golden.Output) {
		return OutputDiff, nil
	}
	if result.Stdout != golden.Stdout {
		return StdoutOnlyDiff, nil
	}
	return Masked, nil
}

func asKernelError(err error, out **sim.KernelError) bool {
	for err != nil {
		if ke, ok := err.(*sim.KernelError); ok {
			*out = ke
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// maxLaunchThreads returns the largest grid size the golden run launched
// (sizing the per-thread profile array).
func maxLaunchThreads(ctx *cuda.Context) int {
	// Context aggregates don't keep per-launch geometry; use a generous
	// upper bound derived from total warp instrs if unavailable. The
	// profile array is cheap, so default to 1<<16 threads.
	return 1 << 16
}

// profPtr exposes the profiler's device array for host-side reset.
func profPtr(p *handlers.InjProfiler) cuda.DevPtr { return p.DevPtr() }

// prng is a local xorshift64* generator.
type prng struct{ s uint64 }

func newRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x853c49e6748fea9b
	}
	return &prng{s: seed}
}

func (r *prng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}
