// Package trace implements the paper's §9.4 extension: SASSI-collected
// low-level event traces that drive separate tools. A MemTracer observes
// every coalesced global-memory transaction the simulator issues and
// records a compact trace; a downstream consumer (here, a standalone cache
// simulator) replays it — "a memory trace collected by SASSI can be used
// to drive a memory hierarchy simulator".
package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"sassi/internal/mem"
	"sassi/internal/sim"
)

// Event is one warp-level memory transaction set. SM and Warp identify the
// issuing streaming multiprocessor and launch-global warp, so the trace
// can be correlated with per-SM timelines (the obs tracer's lanes) and
// replayed per SM.
type Event struct {
	PC    int32
	SM    int32
	Warp  int32
	Store bool
	Lines []uint64
}

// MemTracer records coalesced global accesses from a device.
type MemTracer struct {
	Events []Event
	// MaxEvents caps the trace length (0 = unlimited).
	MaxEvents int
}

// Attach hooks the tracer into a device's memory watch point.
func (t *MemTracer) Attach(dev *sim.Device) {
	dev.MemWatch = func(ev sim.MemAccess) {
		if t.MaxEvents > 0 && len(t.Events) >= t.MaxEvents {
			return
		}
		lines := append([]uint64(nil), ev.Res.Lines...)
		t.Events = append(t.Events, Event{
			PC: int32(ev.PC), SM: int32(ev.SM), Warp: int32(ev.Warp),
			Store: ev.Store, Lines: lines,
		})
	}
}

// Detach removes the hook.
func (t *MemTracer) Detach(dev *sim.Device) { dev.MemWatch = nil }

// Binary format magics. Version 2 adds per-event SM and Warp words so
// memory traces correlate with per-SM timelines; version 1 (no identity
// words) remains readable.
const (
	magicV1 = "SASSITR1"
	magicV2 = "SASSITR2"
)

// Write serializes the trace in the compact version-2 binary format:
// magic, event count, then per event PC(u32) flags(u32) SM(u32) Warp(u32)
// followed by the line addresses (u64 each). flags bit 0 is Store; the
// remaining bits carry the line count.
func (t *MemTracer) Write(w io.Writer) error {
	var hdr [8]byte
	copy(hdr[:], magicV2)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(t.Events)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	for _, e := range t.Events {
		binary.LittleEndian.PutUint32(buf[:4], uint32(e.PC))
		flags := uint32(len(e.Lines)) << 1
		if e.Store {
			flags |= 1
		}
		binary.LittleEndian.PutUint32(buf[4:], flags)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(e.SM))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.Warp))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
		for _, l := range e.Lines {
			binary.LittleEndian.PutUint64(buf[:], l)
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Read deserializes a trace written by Write: both the current version-2
// format and legacy version-1 traces (whose events decode with SM and Warp
// zero) are accepted.
func Read(r io.Reader) (*MemTracer, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	var version int
	switch string(hdr[:]) {
	case magicV1:
		version = 1
	case magicV2:
		version = 2
	default:
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(buf[:])
	t := &MemTracer{Events: make([]Event, 0, n)}
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		e := Event{PC: int32(binary.LittleEndian.Uint32(buf[:4]))}
		flags := binary.LittleEndian.Uint32(buf[4:])
		e.Store = flags&1 != 0
		count := int(flags >> 1)
		if version >= 2 {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, err
			}
			e.SM = int32(binary.LittleEndian.Uint32(buf[:4]))
			e.Warp = int32(binary.LittleEndian.Uint32(buf[4:]))
		}
		e.Lines = make([]uint64, count)
		for j := 0; j < count; j++ {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, err
			}
			e.Lines[j] = binary.LittleEndian.Uint64(buf[:])
		}
		t.Events = append(t.Events, e)
	}
	return t, nil
}

// CacheSimResult summarizes a trace replay through a standalone cache.
type CacheSimResult struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// HitRate returns hits/accesses.
func (r CacheSimResult) HitRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accesses)
}

// ReplayCache drives a fresh cache model with the trace — the downstream
// "other simulator" of §9.4.
func ReplayCache(t *MemTracer, sizeBytes, lineBytes uint64, ways int) CacheSimResult {
	c := mem.NewCache("replay", sizeBytes, lineBytes, ways)
	for _, e := range t.Events {
		for _, l := range e.Lines {
			c.Access(l, e.Store)
		}
	}
	return CacheSimResult{
		Accesses: c.Stats.Accesses,
		Hits:     c.Stats.Hits,
		Misses:   c.Stats.Misses,
	}
}
