package trace_test

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"sassi/internal/cuda"
	"sassi/internal/mem"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sim"
	"sassi/internal/trace"
)

func TestTraceCapturesAccesses(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	i := b.GlobalTidX()
	v := b.LdGlobalU32(b.Index(out, i, 2), 0)
	b.StGlobalU32(b.Index(out, i, 2), 0, b.AddI(v, 1))
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(sim.MiniGPU())
	tr := &trace.MemTracer{}
	tr.Attach(ctx.Device())
	buf := ctx.Malloc(4*64, "out")
	if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
		Grid: sim.D1(2), Block: sim.D1(32), Args: []uint64{uint64(buf)},
	}); err != nil {
		t.Fatal(err)
	}
	// 2 warps x (1 load + 1 store) = 4 events.
	if len(tr.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(tr.Events))
	}
	loads, stores := 0, 0
	for _, e := range tr.Events {
		if e.Store {
			stores++
		} else {
			loads++
		}
		if len(e.Lines) == 0 {
			t.Error("event with no lines")
		}
	}
	if loads != 2 || stores != 2 {
		t.Errorf("loads=%d stores=%d", loads, stores)
	}
	tr.Detach(ctx.Device())
}

func TestTraceMaxEvents(t *testing.T) {
	tr := &trace.MemTracer{MaxEvents: 2}
	dev := sim.NewDevice(sim.MiniGPU())
	tr.Attach(dev)
	for i := 0; i < 5; i++ {
		dev.MemWatch(sim.MemAccess{Res: mem.Result{Lines: []uint64{1}, NumActive: 1}})
	}
	if len(tr.Events) != 2 {
		t.Errorf("events = %d, want cap 2", len(tr.Events))
	}
}

func TestTraceSerializationRoundtripQuick(t *testing.T) {
	f := func(pcs []int32, stores []bool, lineSeed uint16) bool {
		tr := &trace.MemTracer{}
		n := len(pcs)
		if n > 40 {
			n = 40
		}
		for i := 0; i < n; i++ {
			store := i < len(stores) && stores[i]
			lines := make([]uint64, int(lineSeed)%5)
			for j := range lines {
				lines[j] = uint64(lineSeed) + uint64(j)*32
			}
			tr.Events = append(tr.Events, trace.Event{PC: pcs[i], Store: store, Lines: lines,
				SM: int32(i % 4), Warp: int32(i)})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		back, err := trace.Read(&buf)
		if err != nil {
			return false
		}
		if len(back.Events) != len(tr.Events) {
			return false
		}
		for i := range back.Events {
			a, b := back.Events[i], tr.Events[i]
			if a.PC != b.PC || a.Store != b.Store || a.SM != b.SM || a.Warp != b.Warp {
				return false
			}
			if len(a.Lines) != len(b.Lines) {
				return false
			}
			if len(a.Lines) > 0 && !reflect.DeepEqual(a.Lines, b.Lines) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceEventsCarrySMAndWarp: events recorded from a live device carry
// the issuing SM and a launch-global warp id, so the memory trace can be
// correlated with per-SM timelines.
func TestTraceEventsCarrySMAndWarp(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	i := b.GlobalTidX()
	b.StGlobalU32(b.Index(out, i, 2), 0, i)
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(sim.MiniGPU()) // 2 SMs
	tr := &trace.MemTracer{}
	tr.Attach(ctx.Device())
	buf := ctx.Malloc(4*64*4, "out")
	// 4 CTAs of 2 warps each: CTAs round-robin across both SMs.
	if _, err := ctx.LaunchKernel(prog, "k", sim.LaunchParams{
		Grid: sim.D1(4), Block: sim.D1(64), Args: []uint64{uint64(buf)},
	}); err != nil {
		t.Fatal(err)
	}
	sms := map[int32]bool{}
	warps := map[int32]bool{}
	for _, e := range tr.Events {
		sms[e.SM] = true
		warps[e.Warp] = true
	}
	if len(sms) != 2 {
		t.Errorf("events cover %d SMs, want 2 (%v)", len(sms), sms)
	}
	// 4 CTAs x 2 warps = 8 distinct global warp ids.
	if len(warps) != 8 {
		t.Errorf("events cover %d warps, want 8 (%v)", len(warps), warps)
	}
	for w := range warps {
		if w < 0 || w >= 8 {
			t.Errorf("warp id %d outside [0,8)", w)
		}
	}
}

// TestReadDecodesLegacyV1 pins backward compatibility: a version-1 trace
// (pre SM/Warp fields) still decodes, with zero identity fields.
func TestReadDecodesLegacyV1(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("SASSITR1")
	w64 := func(v uint64) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		buf.Write(b[:])
	}
	w32pair := func(a, b uint32) { w64(uint64(a) | uint64(b)<<32) }
	w64(2)                // two events
	w32pair(7, 2<<1|1)    // pc=7, store, 2 lines
	w64(0x100)            // line 0
	w64(0x180)            // line 1
	w32pair(9, 1<<1)      // pc=9, load, 1 line
	w64(0x200)            // line 0
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Event{
		{PC: 7, Store: true, Lines: []uint64{0x100, 0x180}},
		{PC: 9, Store: false, Lines: []uint64{0x200}},
	}
	if !reflect.DeepEqual(back.Events, want) {
		t.Fatalf("v1 decode = %+v, want %+v", back.Events, want)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := trace.Read(bytes.NewReader([]byte("NOTATRACE16BYTE!"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReplayCacheMonotoneInSize(t *testing.T) {
	tr := &trace.MemTracer{}
	// Working set of 64 lines, accessed twice.
	for round := 0; round < 2; round++ {
		for i := 0; i < 64; i++ {
			tr.Events = append(tr.Events, trace.Event{Lines: []uint64{uint64(i) * 128}})
		}
	}
	small := trace.ReplayCache(tr, 2<<10, 128, 4)
	big := trace.ReplayCache(tr, 64<<10, 128, 4)
	if big.HitRate() <= small.HitRate() {
		t.Errorf("bigger cache not better: %f vs %f", big.HitRate(), small.HitRate())
	}
	if big.Accesses != 128 {
		t.Errorf("accesses = %d", big.Accesses)
	}
	// Second round should hit fully in the big cache: 64 misses, 64 hits.
	if big.Hits != 64 || big.Misses != 64 {
		t.Errorf("big cache hits=%d misses=%d", big.Hits, big.Misses)
	}
}
