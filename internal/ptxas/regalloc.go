// Package ptxas is the backend compiler: it lowers PTX (internal/ptx) to
// SASS machine code (internal/sass), allocating physical registers with a
// liveness-driven linear scan. SASSI instrumentation runs after this
// compiler has finished, so injection never perturbs allocation or code
// ordering — the property the paper gets by making SASSI the final ptxas
// pass.
package ptxas

import (
	"fmt"
	"sort"

	"sassi/internal/ptx"
	"sassi/internal/sass"
)

// interval is a virtual register's live range over the linear instruction
// order, with loop back-edges already folded in by the dataflow pass.
type interval struct {
	v          int32
	t          ptx.Type
	start, end int
}

// liveAnalysis computes per-vreg live intervals for a PTX function.
func liveAnalysis(f *ptx.Func) ([]interval, error) {
	n := len(f.Instrs)
	// Label positions.
	labelPos := make(map[string]int, 8)
	for i := range f.Instrs {
		if f.Instrs[i].Op == ptx.OpLabel {
			labelPos[f.Instrs[i].Label] = i
		}
	}
	// Block leaders.
	lead := make([]bool, n+1)
	if n > 0 {
		lead[0] = true
	}
	for i := range f.Instrs {
		in := &f.Instrs[i]
		switch in.Op {
		case ptx.OpLabel:
			lead[i] = true
		case ptx.OpBra, ptx.OpSSY:
			if p, ok := labelPos[in.Label]; ok {
				lead[p] = true
			}
			lead[i+1] = true
		case ptx.OpExit, ptx.OpSync:
			lead[i+1] = true
		}
	}
	// Successor edges per instruction-ending-a-block.
	succs := func(i int) []int {
		in := &f.Instrs[i]
		switch in.Op {
		case ptx.OpExit:
			return nil
		case ptx.OpBra:
			t := labelPos[in.Label]
			if in.Guard.Valid() {
				return []int{t, i + 1}
			}
			return []int{t}
		case ptx.OpSSY:
			// Deferred paths resume at the reconvergence point.
			return []int{labelPos[in.Label], i + 1}
		default:
			return []int{i + 1}
		}
	}
	uses := func(in *ptx.Instr) []ptx.Value {
		var out []ptx.Value
		for _, v := range []ptx.Value{in.A, in.B, in.C, in.Guard} {
			if v.Valid() {
				out = append(out, v)
			}
		}
		return out
	}

	// Backward dataflow over instructions (bitset per position would be
	// faster; a map-set is fine at workload kernel sizes).
	liveIn := make([]map[int32]bool, n+1)
	for i := range liveIn {
		liveIn[i] = map[int32]bool{}
	}
	vid := func(v ptx.Value) int32 { return v.ID() }
	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			in := &f.Instrs[i]
			out := map[int32]bool{}
			for _, s := range succs(i) {
				if s <= n {
					for v := range liveIn[s] {
						out[v] = true
					}
				}
			}
			// transfer: live = (out - def) + use. A guarded def merges.
			if in.Dst.Valid() && !in.Guard.Valid() {
				delete(out, vid(in.Dst))
			}
			for _, u := range uses(in) {
				out[vid(u)] = true
			}
			if in.Dst.Valid() && in.Guard.Valid() {
				out[vid(in.Dst)] = true
			}
			if len(out) != len(liveIn[i]) {
				liveIn[i] = out
				changed = true
				continue
			}
			for v := range out {
				if !liveIn[i][v] {
					liveIn[i] = out
					changed = true
					break
				}
			}
		}
	}

	// Intervals.
	starts := map[int32]int{}
	ends := map[int32]int{}
	types := map[int32]ptx.Type{}
	note := func(v ptx.Value, pos int) {
		id := vid(v)
		if _, ok := starts[id]; !ok {
			starts[id] = pos
		}
		if pos > ends[id] {
			ends[id] = pos
		}
		types[id] = f.TypeOf(v)
	}
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.Dst.Valid() {
			note(in.Dst, i)
		}
		for _, u := range uses(in) {
			note(u, i)
		}
		for v := range liveIn[i] {
			if _, ok := starts[v]; !ok {
				starts[v] = i
			}
			if i > ends[v] {
				ends[v] = i
			}
		}
	}
	out := make([]interval, 0, len(starts))
	for v, s := range starts {
		out = append(out, interval{v: v, t: types[v], start: s, end: ends[v]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].v < out[j].v
	})
	return out, nil
}

// allocation maps virtual registers to physical SASS registers.
type allocation struct {
	reg     map[int32]uint8 // GPR number (pair base for u64)
	pred    map[int32]uint8 // predicate number
	numRegs int
	numPred int
}

// allocate runs linear scan over the intervals.
//
// R1 is reserved as the ABI stack pointer. 64-bit values take an aligned
// even/odd register pair.
func allocate(ivs []interval, maxRegs int) (*allocation, error) {
	if maxRegs <= 0 || maxRegs > sass.NumGPR {
		maxRegs = sass.NumGPR
	}
	a := &allocation{reg: map[int32]uint8{}, pred: map[int32]uint8{}}
	inUse := make([]int32, maxRegs) // -1 free, else vreg id
	for i := range inUse {
		inUse[i] = -1
	}
	inUse[sass.SP] = -2 // reserved
	predUse := make([]int32, sass.NumPred)
	for i := range predUse {
		predUse[i] = -1
	}
	type active struct {
		end  int
		v    int32
		pred bool
	}
	var act []active

	expire := func(pos int) {
		keep := act[:0]
		for _, e := range act {
			if e.end < pos {
				if e.pred {
					predUse[a.pred[e.v]] = -1
				} else {
					r := a.reg[e.v]
					inUse[r] = -1
					if int(r)+1 < len(inUse) && inUse[r+1] == e.v {
						inUse[r+1] = -1
					}
				}
				continue
			}
			keep = append(keep, e)
		}
		act = keep
	}

	for _, iv := range ivs {
		expire(iv.start)
		if iv.t == ptx.TPred {
			got := -1
			for p := 0; p < sass.NumPred; p++ {
				if predUse[p] == -1 {
					got = p
					break
				}
			}
			if got == -1 {
				return nil, fmt.Errorf("ptxas: out of predicate registers (7) — restructure the kernel")
			}
			predUse[got] = iv.v
			a.pred[iv.v] = uint8(got)
			if got+1 > a.numPred {
				a.numPred = got + 1
			}
			act = append(act, active{end: iv.end, v: iv.v, pred: true})
			continue
		}
		need := 1
		if iv.t == ptx.TU64 {
			need = 2
		}
		got := -1
		for r := 0; r+need <= len(inUse); r++ {
			if need == 2 && r%2 != 0 {
				continue
			}
			ok := true
			for j := 0; j < need; j++ {
				if inUse[r+j] != -1 {
					ok = false
					break
				}
			}
			if ok {
				got = r
				break
			}
		}
		if got == -1 {
			return nil, fmt.Errorf("ptxas: out of registers (cap %d): kernel needs spilling, which this backend does not implement — raise -maxrregcount", maxRegs)
		}
		for j := 0; j < need; j++ {
			inUse[got+j] = iv.v
		}
		a.reg[iv.v] = uint8(got)
		if got+need > a.numRegs {
			a.numRegs = got + need
		}
		act = append(act, active{end: iv.end, v: iv.v})
	}
	if a.numRegs < 2 {
		a.numRegs = 2 // SP exists even in trivial kernels
	}
	return a, nil
}
