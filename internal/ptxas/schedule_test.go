package ptxas_test

import (
	"testing"

	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

// stallKernel builds a kernel with deliberately bad source order: each
// loaded value is consumed immediately, though independent loads could
// overlap the latency.
func stallKernel() *ptx.Builder {
	b := ptx.NewKernel("stall")
	out := b.ParamU64("out")
	a0 := b.LdGlobalU32(b.Index(out, b.TidX(), 2), 0)
	s0 := b.MulI(a0, 3) // use right behind the load
	a1 := b.LdGlobalU32(b.Index(out, b.AddI(b.TidX(), 32), 2), 0)
	s1 := b.MulI(a1, 5)
	a2 := b.LdGlobalU32(b.Index(out, b.AddI(b.TidX(), 64), 2), 0)
	s2 := b.MulI(a2, 7)
	b.StGlobalU32(b.Index(out, b.TidX(), 2), 1024, b.Add(b.Add(s0, s1), s2))
	return b
}

// runStats launches the kernel and returns (stats, 32 output words after
// the 1 KiB store window base).
func runStats(t *testing.T, k *sass.Kernel) (*sim.KernelStats, [32]uint32) {
	t.Helper()
	prog := sass.NewProgram()
	prog.AddKernel(k)
	dev := sim.NewDevice(sim.MiniGPU())
	out := dev.Alloc(8192, "out")
	stats, err := dev.Launch(prog, k.Name, sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{out},
	})
	if err != nil {
		t.Fatal(err)
	}
	var words [32]uint32
	for i := range words {
		words[i], _ = dev.Global.Read32(out + 1024 + uint64(4*i))
	}
	return stats, words
}

// The scheduler must emit a verified permutation (the schedule check runs
// inside Compile under go test), preserve results bit-exactly, and reduce
// the scoreboard stalls the simulator charges for the back-to-back
// load-use chains.
func TestScheduleReducesStallsBitEqual(t *testing.T) {
	base := compileOne(t, stallKernel(), ptxas.Options{})
	sched := compileOne(t, stallKernel(), ptxas.Options{Schedule: true})

	if sched.SchedOrig == nil {
		t.Fatal("scheduled kernel carries no SchedOrig provenance")
	}
	if len(sched.SchedOrig) != len(sched.Instrs) {
		t.Fatalf("SchedOrig len %d, instrs %d", len(sched.SchedOrig), len(sched.Instrs))
	}
	if base.SchedOrig != nil {
		t.Fatal("unscheduled kernel carries SchedOrig")
	}

	bStats, bWords := runStats(t, base)
	sStats, sWords := runStats(t, sched)
	if bWords != sWords {
		t.Fatalf("scheduled output diverges: %v vs %v", bWords, sWords)
	}
	if sStats.ScoreboardStalls >= bStats.ScoreboardStalls {
		t.Errorf("scheduling did not reduce stalls: %d -> %d",
			bStats.ScoreboardStalls, sStats.ScoreboardStalls)
	}
	if sStats.Cycles >= bStats.Cycles {
		t.Errorf("scheduling did not reduce cycles: %d -> %d",
			bStats.Cycles, sStats.Cycles)
	}
	// Instruction mix untouched: scheduling permutes, never rewrites.
	if bStats.WarpInstrs != sStats.WarpInstrs || bStats.ThreadInstrs != sStats.ThreadInstrs {
		t.Errorf("instruction counts changed: warp %d->%d thread %d->%d",
			bStats.WarpInstrs, sStats.WarpInstrs, bStats.ThreadInstrs, sStats.ThreadInstrs)
	}
}

// Every autotuning seed yields a legal (compile-time verified) schedule
// with bit-identical results.
func TestScheduleSeedSweepBitEqual(t *testing.T) {
	_, want := runStats(t, compileOne(t, stallKernel(), ptxas.Options{}))
	for seed := uint64(0); seed < 8; seed++ {
		k := compileOne(t, stallKernel(), ptxas.Options{Schedule: true, SchedSeed: seed})
		_, got := runStats(t, k)
		if got != want {
			t.Fatalf("seed %d output diverges: %v vs %v", seed, got, want)
		}
	}
}

// Scheduling a kernel with control flow stays block-local; branches and
// reconvergence still verify and execute.
func TestScheduleControlFlow(t *testing.T) {
	build := func() *ptx.Builder {
		b := ptx.NewKernel("cf")
		out := b.ParamU64("out")
		v := b.Var(b.ImmU32(0))
		b.If(b.SetpI(sass.CmpLT, b.TidX(), 16), func() {
			x := b.LdGlobalU32(b.Index(out, b.TidX(), 2), 0)
			b.Assign(v, b.MulI(x, 3))
		})
		b.ForRange(b.ImmU32(0), b.ImmU32(4), func(i ptx.Value) {
			b.Assign(v, b.Add(v, i))
		})
		b.StGlobalU32(b.Index(out, b.TidX(), 2), 1024, v)
		return b
	}
	_, want := runStats(t, compileOne(t, build(), ptxas.Options{}))
	k := compileOne(t, build(), ptxas.Options{Schedule: true})
	_, got := runStats(t, k)
	if got != want {
		t.Fatalf("scheduled control-flow kernel diverges: %v vs %v", got, want)
	}
}
