package ptxas

import (
	"fmt"

	"sassi/internal/ptx"
	"sassi/internal/sass"
)

// lowerer translates one allocated PTX function into SASS.
type lowerer struct {
	f *ptx.Func
	a *allocation
	k *sass.Kernel
}

func (lo *lowerer) gpr(v ptx.Value) uint8 {
	r, ok := lo.a.reg[v.ID()]
	if !ok {
		panic(fmt.Sprintf("ptxas: vreg %s has no GPR allocation", v))
	}
	return r
}

func (lo *lowerer) pr(v ptx.Value) uint8 {
	p, ok := lo.a.pred[v.ID()]
	if !ok {
		panic(fmt.Sprintf("ptxas: vreg %s has no predicate allocation", v))
	}
	return p
}

func (lo *lowerer) guardOf(in *ptx.Instr) sass.PredGuard {
	if !in.Guard.Valid() {
		return sass.Always
	}
	return sass.PredGuard{Reg: lo.pr(in.Guard), Neg: in.GuardNeg}
}

func (lo *lowerer) emit(in sass.Instruction) {
	lo.k.Instrs = append(lo.k.Instrs, in)
}

// srcB resolves the B operand (register or immediate).
func (lo *lowerer) srcB(in *ptx.Instr) sass.Operand {
	if in.HasImm {
		return sass.Imm(in.Imm)
	}
	return sass.R(lo.gpr(in.B))
}

func widthOf(bytes int) sass.Width {
	switch bytes {
	case 1:
		return sass.W8
	case 2:
		return sass.W16
	case 8:
		return sass.W64
	case 16:
		return sass.W128
	default:
		return sass.W32
	}
}

// lower translates the function body. Labels are recorded by name and
// resolved afterwards.
func (lo *lowerer) lower() error {
	lo.k.Labels = map[string]int{}
	for i := range lo.f.Instrs {
		if err := lo.lowerInstr(&lo.f.Instrs[i]); err != nil {
			return fmt.Errorf("ptxas: %s@%d (%s): %w", lo.f.Name, i, lo.f.Instrs[i].String(), err)
		}
	}
	return nil
}

func (lo *lowerer) lowerInstr(in *ptx.Instr) error {
	g := lo.guardOf(in)
	unsigned := in.Type == ptx.TU32 || in.Type == ptx.TU64
	emit := func(op sass.Opcode, mods sass.Mods, dsts, srcs []sass.Operand) {
		i := sass.Instruction{Guard: g, Op: op, Mods: mods, Dsts: dsts, Srcs: srcs}
		lo.emit(i)
	}

	switch in.Op {
	case ptx.OpNop:
		return nil

	case ptx.OpLabel:
		lo.k.Labels[in.Label] = len(lo.k.Instrs)
		return nil

	case ptx.OpBra:
		emit(sass.OpBRA, sass.Mods{}, nil, []sass.Operand{sass.Label(in.Label)})
		return nil

	case ptx.OpSSY:
		emit(sass.OpSSY, sass.Mods{}, nil, []sass.Operand{sass.Label(in.Label)})
		return nil

	case ptx.OpSync:
		emit(sass.OpSYNC, sass.Mods{}, nil, nil)
		return nil

	case ptx.OpExit:
		emit(sass.OpEXIT, sass.Mods{}, nil, nil)
		return nil

	case ptx.OpBar:
		emit(sass.OpBAR, sass.Mods{}, nil, nil)
		return nil

	case ptx.OpTrap:
		// Store through a null generic pointer: guaranteed fault.
		emit(sass.OpST, sass.Mods{Width: sass.W32}, nil,
			[]sass.Operand{sass.Mem(sass.RZ, 0), sass.R(sass.RZ)})
		return nil

	case ptx.OpLdParam:
		off, ok := lo.k.ParamOffset(in.Param)
		if !ok {
			return fmt.Errorf("unknown param %q", in.Param)
		}
		d := lo.gpr(in.Dst)
		emit(sass.OpMOV, sass.Mods{}, []sass.Operand{sass.R(d)},
			[]sass.Operand{sass.CMem(0, int64(off))})
		if in.Type == ptx.TU64 {
			emit(sass.OpMOV, sass.Mods{}, []sass.Operand{sass.R(d + 1)},
				[]sass.Operand{sass.CMem(0, int64(off+4))})
		}
		return nil

	case ptx.OpMov:
		if in.Type == ptx.TPred {
			// Predicate copy via PSETP Pd = Pa AND PT.
			emit(sass.OpPSETP, sass.Mods{Logic: sass.LogicAND},
				[]sass.Operand{sass.P(lo.pr(in.Dst))},
				[]sass.Operand{sass.P(lo.pr(in.A)), sass.P(sass.PT)})
			return nil
		}
		d := lo.gpr(in.Dst)
		if in.HasImm {
			emit(sass.OpMOV32, sass.Mods{}, []sass.Operand{sass.R(d)},
				[]sass.Operand{sass.Imm(int64(int32(in.Imm)))})
			if in.Type == ptx.TU64 {
				emit(sass.OpMOV32, sass.Mods{}, []sass.Operand{sass.R(d + 1)},
					[]sass.Operand{sass.Imm(in.Imm >> 32)})
			}
			return nil
		}
		s := lo.gpr(in.A)
		emit(sass.OpMOV, sass.Mods{}, []sass.Operand{sass.R(d)}, []sass.Operand{sass.R(s)})
		if in.Type == ptx.TU64 {
			emit(sass.OpMOV, sass.Mods{}, []sass.Operand{sass.R(d + 1)}, []sass.Operand{sass.R(s + 1)})
		}
		return nil

	case ptx.OpSreg:
		emit(sass.OpS2R, sass.Mods{}, []sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.SReg(in.SR)})
		return nil

	case ptx.OpAdd, ptx.OpSub:
		negB := in.Op == ptx.OpSub
		if in.Type == ptx.TF32 {
			emit(sass.OpFADD, sass.Mods{NegB: negB},
				[]sass.Operand{sass.R(lo.gpr(in.Dst))},
				[]sass.Operand{sass.R(lo.gpr(in.A)), lo.srcB(in)})
			return nil
		}
		if in.Type == ptx.TU64 {
			if negB {
				return fmt.Errorf("64-bit subtraction is not supported")
			}
			d, a := lo.gpr(in.Dst), lo.gpr(in.A)
			var bLo, bHi sass.Operand
			if in.HasImm {
				bLo = sass.Imm(int64(int32(in.Imm)))
				bHi = sass.Imm(in.Imm >> 32)
			} else {
				b := lo.gpr(in.B)
				bLo, bHi = sass.R(b), sass.R(b+1)
			}
			emit(sass.OpIADD, sass.Mods{SetCC: true},
				[]sass.Operand{sass.R(d)}, []sass.Operand{sass.R(a), bLo})
			emit(sass.OpIADD, sass.Mods{X: true},
				[]sass.Operand{sass.R(d + 1)}, []sass.Operand{sass.R(a + 1), bHi})
			return nil
		}
		b := lo.srcB(in)
		if negB && in.HasImm {
			b = sass.Imm(-in.Imm)
			negB = false
		}
		emit(sass.OpIADD, sass.Mods{NegB: negB},
			[]sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), b})
		return nil

	case ptx.OpMul:
		if in.Type == ptx.TF32 {
			emit(sass.OpFMUL, sass.Mods{}, []sass.Operand{sass.R(lo.gpr(in.Dst))},
				[]sass.Operand{sass.R(lo.gpr(in.A)), lo.srcB(in)})
			return nil
		}
		if in.Type == ptx.TU64 {
			return fmt.Errorf("64-bit multiply is not supported")
		}
		emit(sass.OpIMUL, sass.Mods{}, []sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), lo.srcB(in)})
		return nil

	case ptx.OpMad:
		if in.Type == ptx.TF32 {
			emit(sass.OpFFMA, sass.Mods{}, []sass.Operand{sass.R(lo.gpr(in.Dst))},
				[]sass.Operand{sass.R(lo.gpr(in.A)), sass.R(lo.gpr(in.B)), sass.R(lo.gpr(in.C))})
			return nil
		}
		emit(sass.OpIMAD, sass.Mods{}, []sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), sass.R(lo.gpr(in.B)), sass.R(lo.gpr(in.C))})
		return nil

	case ptx.OpFma:
		emit(sass.OpFFMA, sass.Mods{}, []sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), sass.R(lo.gpr(in.B)), sass.R(lo.gpr(in.C))})
		return nil

	case ptx.OpMin, ptx.OpMax:
		sel := sass.P(sass.PT)
		if in.Op == ptx.OpMax {
			sel = sass.NotP(sass.PT)
		}
		op := sass.OpIMNMX
		if in.Type == ptx.TF32 {
			op = sass.OpFMNMX
		}
		emit(op, sass.Mods{Unsigned: unsigned}, []sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), lo.srcB(in), sel})
		return nil

	case ptx.OpAnd, ptx.OpOr, ptx.OpXor, ptx.OpNot:
		if in.Type == ptx.TU64 {
			return fmt.Errorf("64-bit logic is not supported")
		}
		var logic sass.LogicOp
		srcs := []sass.Operand{sass.R(lo.gpr(in.A)), lo.srcB(in)}
		switch in.Op {
		case ptx.OpAnd:
			logic = sass.LogicAND
		case ptx.OpOr:
			logic = sass.LogicOR
		case ptx.OpXor:
			logic = sass.LogicXOR
		case ptx.OpNot:
			logic = sass.LogicNOT
			srcs = []sass.Operand{sass.R(sass.RZ), sass.R(lo.gpr(in.A))}
		}
		emit(sass.OpLOP, sass.Mods{Logic: logic},
			[]sass.Operand{sass.R(lo.gpr(in.Dst))}, srcs)
		return nil

	case ptx.OpShl:
		emit(sass.OpSHL, sass.Mods{}, []sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), lo.srcB(in)})
		return nil

	case ptx.OpShr:
		emit(sass.OpSHR, sass.Mods{Unsigned: in.Type != ptx.TS32},
			[]sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), lo.srcB(in)})
		return nil

	case ptx.OpSetp:
		op := sass.OpISETP
		if in.Type == ptx.TF32 {
			op = sass.OpFSETP
		}
		if in.Type == ptx.TU64 {
			return fmt.Errorf("64-bit compare is not supported")
		}
		emit(op, sass.Mods{Cmp: in.Cmp, Unsigned: in.Type == ptx.TU32, Logic: sass.LogicAND},
			[]sass.Operand{sass.P(lo.pr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), lo.srcB(in), sass.P(sass.PT)})
		return nil

	case ptx.OpPAnd, ptx.OpPOr:
		logic := sass.LogicAND
		if in.Op == ptx.OpPOr {
			logic = sass.LogicOR
		}
		emit(sass.OpPSETP, sass.Mods{Logic: logic},
			[]sass.Operand{sass.P(lo.pr(in.Dst))},
			[]sass.Operand{sass.P(lo.pr(in.A)), sass.P(lo.pr(in.B))})
		return nil

	case ptx.OpPNot:
		emit(sass.OpPSETP, sass.Mods{Logic: sass.LogicAND},
			[]sass.Operand{sass.P(lo.pr(in.Dst))},
			[]sass.Operand{sass.NotP(lo.pr(in.A)), sass.P(sass.PT)})
		return nil

	case ptx.OpSel:
		emit(sass.OpSEL, sass.Mods{}, []sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), sass.R(lo.gpr(in.B)), sass.P(lo.pr(in.C))})
		return nil

	case ptx.OpCvt:
		return lo.lowerCvt(in, g)

	case ptx.OpMufu:
		emit(sass.OpMUFU, sass.Mods{Mufu: in.Mufu},
			[]sass.Operand{sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A))})
		return nil

	case ptx.OpLd, ptx.OpSt:
		return lo.lowerMem(in, g)

	case ptx.OpAtom:
		return lo.lowerAtom(in, g)

	case ptx.OpVote:
		d := in.Dst
		var dst sass.Operand
		if in.Vote == sass.VoteBALLOT {
			dst = sass.R(lo.gpr(d))
		} else {
			dst = sass.P(lo.pr(d))
		}
		emit(sass.OpVOTE, sass.Mods{Vote: in.Vote}, []sass.Operand{dst},
			[]sass.Operand{sass.P(lo.pr(in.A))})
		return nil

	case ptx.OpShfl:
		emit(sass.OpSHFL, sass.Mods{Shfl: sass.ShflIDX},
			[]sass.Operand{sass.P(sass.PT), sass.R(lo.gpr(in.Dst))},
			[]sass.Operand{sass.R(lo.gpr(in.A)), lo.srcB(in)})
		return nil
	}
	return fmt.Errorf("cannot lower %s", in.Op)
}

func (lo *lowerer) lowerCvt(in *ptx.Instr, g sass.PredGuard) error {
	d := lo.gpr(in.Dst)
	a := lo.gpr(in.A)
	emit := func(op sass.Opcode, mods sass.Mods, dsts, srcs []sass.Operand) {
		lo.emit(sass.Instruction{Guard: g, Op: op, Mods: mods, Dsts: dsts, Srcs: srcs})
	}
	switch {
	case in.Type == ptx.TU64:
		emit(sass.OpMOV, sass.Mods{}, []sass.Operand{sass.R(d)}, []sass.Operand{sass.R(a)})
		if in.SrcType == ptx.TS32 {
			// Sign extend.
			emit(sass.OpSHR, sass.Mods{}, []sass.Operand{sass.R(d + 1)},
				[]sass.Operand{sass.R(a), sass.Imm(31)})
		} else {
			emit(sass.OpMOV32, sass.Mods{}, []sass.Operand{sass.R(d + 1)},
				[]sass.Operand{sass.Imm(0)})
		}
		return nil
	case in.Type == ptx.TF32:
		emit(sass.OpI2F, sass.Mods{Unsigned: in.SrcType == ptx.TU32},
			[]sass.Operand{sass.R(d)}, []sass.Operand{sass.R(a)})
		return nil
	case in.Type == ptx.TS32 && in.SrcType == ptx.TF32:
		emit(sass.OpF2I, sass.Mods{}, []sass.Operand{sass.R(d)}, []sass.Operand{sass.R(a)})
		return nil
	}
	return fmt.Errorf("unsupported conversion %s -> %s", in.SrcType, in.Type)
}

func (lo *lowerer) lowerMem(in *ptx.Instr, g sass.PredGuard) error {
	w := widthOf(in.Width)
	var op sass.Opcode
	var e bool
	switch in.Space {
	case ptx.SpGlobal:
		e = true
		if in.Op == ptx.OpLd {
			op = sass.OpLDG
		} else {
			op = sass.OpSTG
		}
	case ptx.SpGeneric:
		e = true
		if in.Op == ptx.OpLd {
			op = sass.OpLD
		} else {
			op = sass.OpST
		}
	case ptx.SpShared:
		if in.Op == ptx.OpLd {
			op = sass.OpLDS
		} else {
			op = sass.OpSTS
		}
	case ptx.SpLocal:
		if in.Op == ptx.OpLd {
			op = sass.OpLDL
		} else {
			op = sass.OpSTL
		}
	}
	ref := sass.Mem(lo.gpr(in.A), in.Imm)
	mods := sass.Mods{Width: w, E: e}
	if in.Op == ptx.OpLd {
		lo.emit(sass.Instruction{Guard: g, Op: op, Mods: mods,
			Dsts: []sass.Operand{sass.R(lo.gpr(in.Dst))},
			Srcs: []sass.Operand{ref}})
	} else {
		lo.emit(sass.Instruction{Guard: g, Op: op, Mods: mods,
			Srcs: []sass.Operand{ref, sass.R(lo.gpr(in.B))}})
	}
	return nil
}

func (lo *lowerer) lowerAtom(in *ptx.Instr, g sass.PredGuard) error {
	ref := sass.Mem(lo.gpr(in.A), in.Imm)
	srcs := []sass.Operand{ref, sass.R(lo.gpr(in.B))}
	if in.C.Valid() {
		srcs = append(srcs, sass.R(lo.gpr(in.C)))
	}
	var dsts []sass.Operand
	if in.Dst.Valid() {
		dsts = []sass.Operand{sass.R(lo.gpr(in.Dst))}
	}
	op := sass.OpATOM
	e := true
	if in.Space == ptx.SpShared {
		op = sass.OpATOMS
		e = false
	}
	lo.emit(sass.Instruction{Guard: g, Op: op,
		Mods: sass.Mods{Atom: in.Atom, Width: widthOf(in.Width), E: e,
			Unsigned: in.Type == ptx.TU32},
		Dsts: dsts, Srcs: srcs})
	return nil
}
