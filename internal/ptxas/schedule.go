package ptxas

import (
	"sassi/internal/analysis"
	"sassi/internal/analysis/deps"
	"sassi/internal/sass"
)

// Post-RA list scheduler. Each basic block's instructions are reordered
// into a topological order of the dependence DAG (internal/analysis/deps)
// that greedily minimizes scoreboard stalls under the shared latency
// model (sass.IssueCost / sass.ResultLatency) — the exact cost the
// simulator's per-warp scoreboard charges, so the schedule optimizes what
// the cycle counter measures.
//
// Tie-breaking among equally-stalled candidates is by critical-path
// priority, then — when seed is non-zero — by a per-instruction splitmix
// jitter. The autotuner (internal/experiments, cmd/sassi-sched) sweeps
// seeds to explore the plateau of greedy-equivalent schedules; seed 0 is
// the deterministic baseline heuristic.
//
// The permutation is recorded in Kernel.SchedOrig, which downstream
// verification (the `schedule` check) uses to re-derive and certify
// legality against the reconstructed original stream.

// ScheduleKernel applies the list scheduler to an already-compiled
// kernel, recording provenance in SchedOrig. Exported for SASS-authored
// programs (workloads.Spec.BuildProgram) that bypass CompileFunc; callers
// should re-run analysis.Verify afterwards to certify the permutation.
func ScheduleKernel(k *sass.Kernel, seed uint64) { scheduleKernel(k, seed) }

// scheduleKernel reorders k in place. The kernel must have resolved
// labels. Scheduling is block-local: labels target block leaders and
// control transfers are DAG fences pinned to their positions, so the CFG
// partition and every branch target survive unchanged.
func scheduleKernel(k *sass.Kernel, seed uint64) {
	cfg, err := sass.BuildCFG(k)
	if err != nil {
		return // leave the kernel unscheduled; Validate will judge it
	}
	g := deps.Build(cfg)
	order := make([]int, 0, len(k.Instrs))
	for _, bd := range g.Blocks {
		order = append(order, scheduleBlock(k, bd, seed)...)
	}
	instrs := make([]sass.Instruction, len(k.Instrs))
	for p, o := range order {
		instrs[p] = k.Instrs[o]
	}
	k.Instrs = instrs
	k.SchedOrig = order
}

// scheduleBlock returns the block's instructions as original indices in
// scheduled order.
func scheduleBlock(k *sass.Kernel, bd *deps.BlockDAG, seed uint64) []int {
	n := bd.N()
	out := make([]int, 0, n)
	if n <= 1 {
		for i := 0; i < n; i++ {
			out = append(out, bd.Start+i)
		}
		return out
	}
	succs, indeg := bd.LocalAdj()

	// Critical-path priority: longest latency chain from each node to the
	// block exit, under the same model the stall simulation uses.
	prio := make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		in := &k.Instrs[bd.Start+i]
		w := int64(sass.IssueCost(in) + sass.ResultLatency(in))
		best := int64(0)
		for _, s := range succs[i] {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[i] = w + best
	}

	var jitter []uint64
	if seed != 0 {
		jitter = make([]uint64, n)
		for i := range jitter {
			jitter[i] = splitmix(seed, uint64(bd.Start+i))
		}
	}

	// Greedy simulation mirroring sim.Warp.scoreboard: readyAt per regspace
	// slot, plus a per-node floor from scheduled mem/fence predecessors.
	readyAt := make([]uint64, analysis.CCBit()+1)
	nodeFloor := make([]uint64, n)
	clock := uint64(0)

	issueAt := func(i int) uint64 {
		in := &k.Instrs[bd.Start+i]
		ready := nodeFloor[i]
		consider := func(slot int) {
			if r := readyAt[slot]; r > ready {
				ready = r
			}
		}
		var buf [24]uint8
		for _, r := range in.AppendGPRSrcs(buf[:0]) {
			consider(analysis.GPRBit(r))
		}
		for _, r := range in.AppendGPRDsts(buf[:0]) {
			consider(analysis.GPRBit(r)) // WAW stall, as the sim charges it
		}
		for _, p := range in.PredSrcs() {
			consider(analysis.PredBit(p))
		}
		if in.Mods.X || in.Mods.SetCC {
			consider(analysis.CCBit())
		}
		if ready < clock {
			ready = clock
		}
		return ready
	}

	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		// Pick the candidate issuing earliest; break ties by critical path,
		// jitter, then original order.
		bestIdx := 0
		bestIssue := issueAt(ready[0])
		for c := 1; c < len(ready); c++ {
			is := issueAt(ready[c])
			i, b := ready[c], ready[bestIdx]
			better := false
			switch {
			case is != bestIssue:
				better = is < bestIssue
			case prio[i] != prio[b]:
				better = prio[i] > prio[b]
			case jitter != nil && jitter[i] != jitter[b]:
				better = jitter[i] > jitter[b]
			default:
				better = i < b
			}
			if better {
				bestIdx, bestIssue = c, is
			}
		}
		i := ready[bestIdx]
		ready = append(ready[:bestIdx], ready[bestIdx+1:]...)

		in := &k.Instrs[bd.Start+i]
		clock = bestIssue + uint64(sass.IssueCost(in))
		retire := clock + uint64(sass.ResultLatency(in))
		var buf [24]uint8
		for _, d := range in.AppendGPRDsts(buf[:0]) {
			readyAt[analysis.GPRBit(d)] = retire
		}
		for _, p := range in.PredDsts() {
			readyAt[analysis.PredBit(p)] = retire
		}
		if in.Mods.SetCC {
			readyAt[analysis.CCBit()] = retire
		}
		for _, s := range succs[i] {
			if nodeFloor[s] < clock {
				nodeFloor[s] = clock
			}
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
		out = append(out, bd.Start+i)
	}
	return out
}

// splitmix scrambles (seed, site) into an independent jitter word — the
// same construction the fault-campaign and difftest worker pools use, so
// candidate schedules are a pure function of the seed.
func splitmix(seed, site uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(site+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
