package ptxas

import (
	"testing"

	"sassi/internal/ptx"
	"sassi/internal/sass"
)

// deadAtomicFunc builds a kernel with two global atomic adds: one whose
// fetched old value is stored (live fetch) and one whose result is never
// read (dead fetch).
func deadAtomicFunc(t *testing.T) *ptx.Func {
	t.Helper()
	b := ptx.NewKernel("k")
	acc := b.ParamU64("acc")
	out := b.ParamU64("out")
	old := b.AtomAddGlobal(acc, 0, b.TidX()) // live: old value stored below
	b.AtomAddGlobal(acc, 4, b.TidX())        // dead: fetch never read
	b.StGlobalU32(out, 0, old)
	return b.MustDone()
}

func countAtomDsts(f *ptx.Func) (withDst, without int) {
	for i := range f.Instrs {
		if f.Instrs[i].Op != ptx.OpAtom {
			continue
		}
		if f.Instrs[i].Dst.Valid() {
			withDst++
		} else {
			without++
		}
	}
	return
}

// TestReduceDeadAtomics pins the determinism fix the differential oracle
// forced: an atomic's fetched old value is whatever the hardware sequenced
// at that instant, so a dead fetch register carries scheduler-dependent
// bits to kernel exit. Dead-fetch atomics must lose their destination
// (becoming no-return reductions); live fetches must keep theirs.
func TestReduceDeadAtomics(t *testing.T) {
	f := deadAtomicFunc(t)
	reduceDeadAtomics(f)
	withDst, without := countAtomDsts(f)
	if withDst != 1 || without != 1 {
		t.Fatalf("after reduceDeadAtomics: %d atomics keep a dst, %d dropped; want 1 and 1",
			withDst, without)
	}
}

// TestReduceDeadAtomicsKeepsCAS: compare-and-swap keeps its destination
// even when unread — its result feeds retry loops and the no-return form
// does not exist for CAS.
func TestReduceDeadAtomicsKeepsCAS(t *testing.T) {
	f := deadAtomicFunc(t)
	for i := range f.Instrs {
		if f.Instrs[i].Op == ptx.OpAtom {
			f.Instrs[i].Atom = sass.AtomCAS
		}
	}
	reduceDeadAtomics(f)
	withDst, without := countAtomDsts(f)
	if withDst != 2 || without != 0 {
		t.Fatalf("after reduceDeadAtomics on CAS: %d keep a dst, %d dropped; want 2 and 0",
			withDst, without)
	}
}

// TestCompileLowersDeadAtomicWithoutDst checks the end-to-end effect: the
// compiled SASS for a dead-fetch atomic carries no destination register,
// while the live-fetch atomic keeps one.
func TestCompileLowersDeadAtomicWithoutDst(t *testing.T) {
	m := ptx.NewModule()
	m.Add(deadAtomicFunc(t))
	prog, err := Compile(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var withDst, without int
	for i := range prog.Kernels[0].Instrs {
		in := &prog.Kernels[0].Instrs[i]
		if in.Op != sass.OpATOM && in.Op != sass.OpATOMS && in.Op != sass.OpRED {
			continue
		}
		if len(in.Dsts) > 0 {
			withDst++
		} else {
			without++
		}
	}
	if withDst != 1 || without != 1 {
		t.Fatalf("compiled kernel: %d atomics with dst, %d without; want 1 and 1", withDst, without)
	}
}
