package ptxas

import (
	"fmt"

	"sassi/internal/analysis"
	"sassi/internal/ptx"
	"sassi/internal/sass"
)

// Options configure the backend.
type Options struct {
	// MaxRegs caps per-thread register use (nvcc -maxrregcount). Zero
	// means the hardware limit. The backend has no spiller; exceeding the
	// cap is a compile error.
	MaxRegs int

	// NoIfConvert disables predication of short branches (ablation knob).
	NoIfConvert bool

	// NoCoalesceMov disables the copy-elimination peephole.
	NoCoalesceMov bool

	// NoCopyProp disables PTX-level copy propagation and dead code
	// elimination (ablation knob).
	NoCopyProp bool

	// Schedule enables the post-RA list scheduler (schedule.go): each
	// block is reordered into a stall-minimizing topological order of the
	// dependence DAG, with provenance recorded in Kernel.SchedOrig for the
	// `schedule` verifier check to certify.
	Schedule bool

	// SchedSeed perturbs the scheduler's tie-breaking (0 = deterministic
	// baseline heuristic). The autotuner sweeps seeds to explore
	// greedy-equivalent schedules. Ignored unless Schedule is set.
	SchedSeed uint64

	// Verify controls the static-verification post-pass over the emitted
	// SASS (internal/analysis). The zero value runs it under `go test`
	// only; see analysis.VerifyMode.
	Verify analysis.VerifyMode
}

// CacheKey returns a string uniquely identifying these options, for use as
// part of a compile-cache key.
func (o Options) CacheKey() string {
	return fmt.Sprintf("maxregs=%d ifcvt=%t movcoal=%t copyprop=%t sched=%t schedseed=%d verify=%t",
		o.MaxRegs, !o.NoIfConvert, !o.NoCoalesceMov, !o.NoCopyProp,
		o.Schedule, o.SchedSeed, o.Verify.Enabled())
}

// Compile lowers a verified PTX module into a SASS program.
func Compile(m *ptx.Module, opts Options) (*sass.Program, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("ptxas: %w", err)
	}
	prog := sass.NewProgram()
	for _, f := range m.Funcs {
		k, err := CompileFunc(f, opts)
		if err != nil {
			return nil, err
		}
		prog.AddKernel(k)
	}
	if opts.Verify.Enabled() {
		if diags := analysis.Verify(prog); analysis.HasErrors(diags) {
			return nil, fmt.Errorf("ptxas: emitted SASS failed verification: %w",
				&analysis.VerifyError{Diags: diags})
		}
	}
	return prog, nil
}

// CompileFunc lowers a single kernel.
func CompileFunc(f *ptx.Func, opts Options) (*sass.Kernel, error) {
	if !opts.NoCopyProp {
		copyPropagate(f)
		deadCodeEliminate(f)
		reduceDeadAtomics(f)
	}
	ivs, err := liveAnalysis(f)
	if err != nil {
		return nil, fmt.Errorf("ptxas: %s: %w", f.Name, err)
	}
	alloc, err := allocate(ivs, opts.MaxRegs)
	if err != nil {
		return nil, fmt.Errorf("ptxas: %s: %w", f.Name, err)
	}
	k := &sass.Kernel{Name: f.Name, SharedBytes: f.SharedBytes, BlockDim: f.ReqBlock}
	for _, p := range f.Params {
		k.AddParam(p.Name, p.Size)
	}
	lo := &lowerer{f: f, a: alloc, k: k}
	if err := lo.lower(); err != nil {
		return nil, err
	}
	if !opts.NoCoalesceMov {
		coalesceMovs(k)
	}
	if !opts.NoIfConvert {
		ifConvert(k)
	}
	if err := k.ResolveLabels(); err != nil {
		return nil, fmt.Errorf("ptxas: %w", err)
	}
	k.NumRegs = alloc.numRegs
	k.NumPreds = alloc.numPred
	if opts.Schedule {
		scheduleKernel(k, opts.SchedSeed)
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("ptxas: %w", err)
	}
	return k, nil
}

// coalesceMovs removes MOV Rd, Rd no-ops that register allocation created
// by assigning a copy's source and destination the same register.
func coalesceMovs(k *sass.Kernel) {
	keep := make([]sass.Instruction, 0, len(k.Instrs))
	// oldIdx -> newIdx mapping for label fixup.
	remap := make([]int, len(k.Instrs)+1)
	for i := range k.Instrs {
		remap[i] = len(keep)
		in := &k.Instrs[i]
		if in.Op == sass.OpMOV &&
			len(in.Dsts) == 1 && len(in.Srcs) == 1 &&
			in.Dsts[0].Kind == sass.OpdReg && in.Srcs[0].Kind == sass.OpdReg &&
			in.Dsts[0].Reg == in.Srcs[0].Reg {
			continue
		}
		keep = append(keep, *in)
	}
	remap[len(k.Instrs)] = len(keep)
	k.Instrs = keep
	for name, idx := range k.Labels {
		k.Labels[name] = remap[idx]
	}
}

// ifConvert predicates short, side-exit-free branch bodies, eliminating the
// SSY/BRA/SYNC overhead — producing the "@P0 ST.E" style guarded
// instructions seen in the paper's Figure 2. The pattern matched is exactly
// what the ptx.Builder emits for If with a small body:
//
//	SSY Lreconv
//	@[!]P BRA Lsync
//	<= maxIfConvert unguarded, non-control instructions
//	Lsync: SYNC
//	Lreconv:
const maxIfConvert = 8

func ifConvert(k *sass.Kernel) {
	changed := true
	for changed {
		changed = false
		for i := 0; i+2 < len(k.Instrs); i++ {
			if k.Instrs[i].Op != sass.OpSSY {
				continue
			}
			ssyTarget, _ := k.Instrs[i].BranchTarget()
			br := &k.Instrs[i+1]
			if br.Op != sass.OpBRA || br.Guard.IsAlways() {
				continue
			}
			brTarget, _ := br.BranchTarget()
			syncPos, ok := k.Labels[brTarget.Name]
			if !ok {
				continue
			}
			reconvPos, ok := k.Labels[ssyTarget.Name]
			if !ok || reconvPos != syncPos+1 {
				continue
			}
			body := syncPos - (i + 2)
			if body < 0 || body > maxIfConvert {
				continue
			}
			if syncPos >= len(k.Instrs) || k.Instrs[syncPos].Op != sass.OpSYNC {
				continue
			}
			ok = true
			for j := i + 2; j < syncPos; j++ {
				in := &k.Instrs[j]
				if !in.Guard.IsAlways() || in.Op.IsControlXfer() || in.Op.IsSync() ||
					in.Op == sass.OpEXIT || in.Op == sass.OpBAR {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// No other instruction may target the two labels.
			if labelRefCount(k, brTarget.Name) != 1 || labelRefCount(k, ssyTarget.Name) != 1 {
				continue
			}
			// Predicate the body with the inverse of the branch guard
			// (the branch skipped the body when the guard held).
			bodyGuard := sass.PredGuard{Reg: br.Guard.Reg, Neg: !br.Guard.Neg}
			for j := i + 2; j < syncPos; j++ {
				k.Instrs[j].Guard = bodyGuard
			}
			removeInstrs(k, []int{i, i + 1, syncPos})
			delete(k.Labels, brTarget.Name)
			delete(k.Labels, ssyTarget.Name)
			changed = true
			break
		}
	}
}

// labelRefCount counts instructions referencing a label by name.
func labelRefCount(k *sass.Kernel, name string) int {
	n := 0
	for i := range k.Instrs {
		for _, s := range k.Instrs[i].Srcs {
			if s.Kind == sass.OpdLabel && s.Name == name {
				n++
			}
		}
	}
	return n
}

// removeInstrs deletes the given (sorted ascending) instruction indices and
// remaps labels.
func removeInstrs(k *sass.Kernel, drop []int) {
	dropSet := map[int]bool{}
	for _, d := range drop {
		dropSet[d] = true
	}
	remap := make([]int, len(k.Instrs)+1)
	keep := make([]sass.Instruction, 0, len(k.Instrs))
	for i := range k.Instrs {
		remap[i] = len(keep)
		if dropSet[i] {
			continue
		}
		keep = append(keep, k.Instrs[i])
	}
	remap[len(k.Instrs)] = len(keep)
	k.Instrs = keep
	for name, idx := range k.Labels {
		k.Labels[name] = remap[idx]
	}
}
