package ptxas_test

import (
	"strings"
	"testing"

	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
)

// buildGuardedStore returns a kernel with a short guarded store, the
// canonical if-conversion candidate.
func buildGuardedStore(t *testing.T, opts ptxas.Options) *sass.Kernel {
	t.Helper()
	b := ptx.NewKernel("k")
	p := b.ParamU64("p")
	i := b.GlobalTidX()
	cond := b.SetpI(sass.CmpLT, i, 10)
	b.If(cond, func() {
		b.StGlobalU32(b.Index(p, i, 2), 0, i)
	})
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Kernels[0]
}

// TestIfConvertPredicatesShortBranches: the backend turns a short If into
// predicated instructions (the paper's "@P0 ST.E" idiom), removing the
// SSY/BRA/SYNC triple.
func TestIfConvertPredicatesShortBranches(t *testing.T) {
	k := buildGuardedStore(t, ptxas.Options{})
	dis := k.Disassemble()
	if strings.Contains(dis, "SSY") || strings.Contains(dis, "SYNC") {
		t.Errorf("if-conversion did not fire:\n%s", dis)
	}
	guarded := 0
	for i := range k.Instrs {
		if !k.Instrs[i].Guard.IsAlways() {
			guarded++
		}
	}
	if guarded == 0 {
		t.Error("no predicated instructions after if-conversion")
	}
}

// TestNoIfConvertKeepsBranch: the ablation knob preserves the divergence
// idiom.
func TestNoIfConvertKeepsBranch(t *testing.T) {
	k := buildGuardedStore(t, ptxas.Options{NoIfConvert: true})
	dis := k.Disassemble()
	if !strings.Contains(dis, "SSY") || !strings.Contains(dis, "SYNC") {
		t.Errorf("expected SSY/SYNC with if-conversion disabled:\n%s", dis)
	}
}

// TestCopyPropShrinksCode: copy propagation + DCE must strictly reduce the
// instruction count of builder-generated code, and if-conversion must
// shrink it further.
func TestCopyPropShrinksCode(t *testing.T) {
	with := len(buildGuardedStore(t, ptxas.Options{}).Instrs)
	without := len(buildGuardedStore(t, ptxas.Options{NoCopyProp: true, NoIfConvert: true}).Instrs)
	withNoCvt := len(buildGuardedStore(t, ptxas.Options{NoIfConvert: true}).Instrs)
	if withNoCvt >= without {
		t.Errorf("copy-prop did not shrink code: %d -> %d", without, withNoCvt)
	}
	if with >= withNoCvt {
		t.Errorf("if-conversion did not shrink code further: %d -> %d", withNoCvt, with)
	}
}
