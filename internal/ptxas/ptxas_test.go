package ptxas_test

import (
	"testing"

	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

// compileOne compiles a single builder kernel.
func compileOne(t *testing.T, b *ptx.Builder, opts ptxas.Options) *sass.Kernel {
	t.Helper()
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Kernels[0]
}

// runKernel executes a compiled kernel with one warp and returns the
// device + an output buffer written by the kernel.
func runKernel(t *testing.T, k *sass.Kernel, threads int) (*sim.Device, uint64) {
	t.Helper()
	prog := sass.NewProgram()
	prog.AddKernel(k)
	dev := sim.NewDevice(sim.MiniGPU())
	out := dev.Alloc(4096, "out")
	if _, err := dev.Launch(prog, k.Name, sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(threads), Args: []uint64{out},
	}); err != nil {
		t.Fatal(err)
	}
	return dev, out
}

func TestRegisterPairAlignment(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	// Several live u64s at once force pair allocations.
	a1 := b.Index(out, b.TidX(), 2)
	a2 := b.Index(out, b.AddI(b.TidX(), 32), 2)
	b.StGlobalU32(a1, 0, b.TidX())
	b.StGlobalU32(a2, 0, b.TidX())
	k := compileOne(t, b, ptxas.Options{})
	// Verify every .E memory base register is even.
	for i := range k.Instrs {
		in := &k.Instrs[i]
		if !in.Mods.E {
			continue
		}
		for _, s := range in.Srcs {
			if s.Kind == sass.OpdMem && s.Reg != sass.RZ && s.Reg%2 != 0 {
				t.Errorf("odd base register R%d for 64-bit ref in %s", s.Reg, in.String())
			}
		}
	}
	dev, out2 := runKernel(t, k, 32)
	for lane := 0; lane < 32; lane++ {
		v, _ := dev.Global.Read32(out2 + uint64(4*lane))
		if v != uint32(lane) {
			t.Fatalf("lane %d value %d", lane, v)
		}
		v2, _ := dev.Global.Read32(out2 + uint64(4*(lane+32)))
		if v2 != uint32(lane) {
			t.Fatalf("lane %d second value %d", lane, v2)
		}
	}
}

func TestSPIsNeverAllocated(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	// Create many simultaneously live values to pressure the allocator.
	var vals []ptx.Value
	for i := 0; i < 40; i++ {
		vals = append(vals, b.AddI(b.TidX(), int64(i)))
	}
	sum := b.Var(b.ImmU32(0))
	for _, v := range vals {
		b.Assign(sum, b.Add(sum, v))
	}
	b.StGlobalU32(out, 0, sum)
	k := compileOne(t, b, ptxas.Options{})
	for i := range k.Instrs {
		for _, d := range k.Instrs[i].Dsts {
			if d.Kind == sass.OpdReg && d.Reg == sass.SP {
				t.Fatalf("allocator handed out the stack pointer: %s", k.Instrs[i].String())
			}
		}
	}
}

func TestMaxRegsExceededIsError(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	var vals []ptx.Value
	for i := 0; i < 30; i++ {
		vals = append(vals, b.AddI(b.TidX(), int64(i)))
	}
	sum := b.Var(b.ImmU32(0))
	for _, v := range vals {
		b.Assign(sum, b.Add(sum, v))
	}
	b.StGlobalU32(out, 0, sum)
	m := ptx.NewModule()
	m.Add(b.MustDone())
	if _, err := ptxas.Compile(m, ptxas.Options{MaxRegs: 8}); err == nil {
		t.Error("register cap exceeded without error")
	}
}

func TestPredicateExhaustionIsError(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	// 8 simultaneously live predicates exceed the 7 allocatable.
	var preds []ptx.Value
	for i := 0; i < 8; i++ {
		preds = append(preds, b.SetpI(sass.CmpLT, b.TidX(), int64(i)))
	}
	acc := b.Var(b.ImmU32(0))
	for _, p := range preds {
		acc = b.Sel(p, b.AddI(acc, 1), acc)
	}
	b.StGlobalU32(out, 0, acc)
	m := ptx.NewModule()
	m.Add(b.MustDone())
	if _, err := ptxas.Compile(m, ptxas.Options{}); err == nil {
		t.Error("predicate exhaustion not reported")
	}
}

func TestLoopCarriedValueSurvivesRegalloc(t *testing.T) {
	// A value defined before a loop, used after it, must not be clobbered
	// by loop-local values.
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	precious := b.MulI(b.TidX(), 1000)
	i := b.Var(b.ImmU32(0))
	acc := b.Var(b.ImmU32(0))
	b.While(func() ptx.Value { return b.SetpI(sass.CmpLT, i, 5) }, func() {
		b.Assign(acc, b.Add(acc, i))
		b.Assign(i, b.AddI(i, 1))
	})
	b.StGlobalU32(b.Index(out, b.TidX(), 2), 0, b.Add(precious, acc))
	k := compileOne(t, b, ptxas.Options{})
	dev, buf := runKernel(t, k, 32)
	for lane := 0; lane < 32; lane++ {
		v, _ := dev.Global.Read32(buf + uint64(4*lane))
		want := uint32(lane*1000 + 10)
		if v != want {
			t.Fatalf("lane %d = %d, want %d", lane, v, want)
		}
	}
}

func TestSubtractionForms(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	x := b.TidX()
	r1 := b.Sub(b.ImmU32(100), x) // reg-reg
	r2 := b.SubI(x, 1)            // reg-imm
	b.StGlobalU32(b.Index(out, x, 2), 0, b.Add(r1, r2))
	k := compileOne(t, b, ptxas.Options{})
	dev, buf := runKernel(t, k, 32)
	for lane := 0; lane < 32; lane++ {
		v, _ := dev.Global.Read32(buf + uint64(4*lane))
		want := uint32(100-lane) + uint32(lane-1)
		if v != want {
			t.Fatalf("lane %d = %d, want %d", lane, v, want)
		}
	}
}

func TestSignedCvt64SignExtends(t *testing.T) {
	// CvtU64 of a signed -4 must sign-extend, so out+68 + sext(-4) lands
	// at out+64.
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	minusFour := b.AsS32(b.SubI(b.ImmU32(0), 4))
	wide := b.CvtU64(minusFour)
	addr := b.Add(b.AddI(out, 68), wide)
	b.StGlobalU32(addr, 0, b.ImmU32(7))
	k := compileOne(t, b, ptxas.Options{})
	dev, buf := runKernel(t, k, 1)
	if v, _ := dev.Global.Read32(buf + 64); v != 7 {
		t.Fatalf("store landed elsewhere; out[64] = %d (sign extension broken)", v)
	}
}

// DCE must not delete memory operations.
func TestDCEKeepsLoads(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	v := b.LdGlobalU32(out, 0) // result unused, but a load may fault
	_ = v
	b.StGlobalU32(out, 0, b.TidX())
	k := compileOne(t, b, ptxas.Options{})
	loads := 0
	for i := range k.Instrs {
		if k.Instrs[i].Op == sass.OpLDG {
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("DCE removed (or duplicated) a load: %d", loads)
	}
}

// Copy propagation must not touch mutable Vars.
func TestCopyPropPreservesMutableVars(t *testing.T) {
	b := ptx.NewKernel("k")
	out := b.ParamU64("out")
	v := b.Var(b.ImmU32(1))
	cpy := b.Var(v) // snapshot before mutation
	b.Assign(v, b.ImmU32(2))
	b.StGlobalU32(out, 0, b.Add(v, cpy)) // must be 2+1=3
	k := compileOne(t, b, ptxas.Options{})
	dev, buf := runKernel(t, k, 1)
	got, _ := dev.Global.Read32(buf)
	if got != 3 {
		t.Fatalf("got %d, want 3 (copy-prop broke Var snapshot)", got)
	}
}
