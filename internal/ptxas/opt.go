package ptxas

import (
	"sassi/internal/ptx"
	"sassi/internal/sass"
)

// PTX-level cleanup passes. The Builder API emits straightforward code
// with many value copies (type reinterpretation, Var initialization);
// these passes remove them before register allocation, exactly where a
// production backend would, so that SASSI later instruments optimized code
// (the paper: injection happens after all compile-time optimization).

// valueStats counts definitions and uses of every virtual register.
type valueStats struct {
	defs map[int32]int
	uses map[int32]int
}

func collectStats(f *ptx.Func) valueStats {
	s := valueStats{defs: map[int32]int{}, uses: map[int32]int{}}
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.Dst.Valid() {
			s.defs[in.Dst.ID()]++
		}
		for _, v := range []ptx.Value{in.A, in.B, in.C, in.Guard} {
			if v.Valid() {
				s.uses[v.ID()]++
			}
		}
	}
	return s
}

// copyPropagate replaces uses of single-definition copies with their
// sources. Only unguarded `mov d, a` instructions where both d and a are
// defined exactly once qualify: single-def values cannot be invalidated by
// later redefinition, and d's definition dominates its uses in a verified
// program, so global replacement is sound.
func copyPropagate(f *ptx.Func) {
	st := collectStats(f)
	repl := map[int32]ptx.Value{}
	resolve := func(v ptx.Value) ptx.Value {
		for {
			r, ok := repl[v.ID()]
			if !ok {
				return v
			}
			v = r
		}
	}
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.Op != ptx.OpMov || in.Guard.Valid() || in.HasImm || !in.A.Valid() {
			continue
		}
		if st.defs[in.Dst.ID()] != 1 || st.defs[in.A.ID()] != 1 {
			continue
		}
		repl[in.Dst.ID()] = resolve(in.A)
	}
	if len(repl) == 0 {
		return
	}
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.A.Valid() {
			in.A = resolve(in.A)
		}
		if in.B.Valid() {
			in.B = resolve(in.B)
		}
		if in.C.Valid() {
			in.C = resolve(in.C)
		}
		if in.Guard.Valid() {
			in.Guard = resolve(in.Guard)
		}
	}
}

// pureOp reports whether an instruction can be deleted when its result is
// unused. Memory operations stay: a dead load may still fault, and stores
// and atomics have effects.
func pureOp(op ptx.Op) bool {
	switch op {
	case ptx.OpMov, ptx.OpAdd, ptx.OpSub, ptx.OpMul, ptx.OpMad, ptx.OpMin,
		ptx.OpMax, ptx.OpAnd, ptx.OpOr, ptx.OpXor, ptx.OpNot, ptx.OpShl,
		ptx.OpShr, ptx.OpSetp, ptx.OpPAnd, ptx.OpPOr, ptx.OpPNot, ptx.OpSel,
		ptx.OpCvt, ptx.OpFma, ptx.OpMufu, ptx.OpSreg, ptx.OpLdParam:
		return true
	}
	return false
}

// reduceDeadAtomics drops the destination of atomics whose fetched old
// value is never read, turning ATOM into a no-return reduction (the RED
// form real ptxas emits). Beyond saving a register, this matters for
// determinism: an atomic's return value is whatever happened to be in
// memory when the hardware sequenced it, so a dead fetch register would
// carry scheduler-dependent bits to kernel exit — the difftest oracle's
// engine-axis comparison flagged exactly that. CAS keeps its destination:
// its result feeds retry loops and dropping it changes the idiom's shape.
func reduceDeadAtomics(f *ptx.Func) {
	st := collectStats(f)
	for i := range f.Instrs {
		in := &f.Instrs[i]
		if in.Op == ptx.OpAtom && in.Atom != sass.AtomCAS &&
			in.Dst.Valid() && st.uses[in.Dst.ID()] == 0 {
			in.Dst = ptx.Value{}
		}
	}
}

// deadCodeEliminate deletes pure instructions whose destinations are never
// read, iterating to a fixed point (removals can orphan feeders).
func deadCodeEliminate(f *ptx.Func) {
	for {
		st := collectStats(f)
		keep := f.Instrs[:0]
		removed := false
		for i := range f.Instrs {
			in := f.Instrs[i]
			if in.Dst.Valid() && st.uses[in.Dst.ID()] == 0 && pureOp(in.Op) && !in.Guard.Valid() {
				removed = true
				continue
			}
			keep = append(keep, in)
		}
		f.Instrs = keep
		if !removed {
			return
		}
	}
}
