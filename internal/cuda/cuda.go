// Package cuda is the host-side runtime analog: contexts, device memory
// management, host<->device copies, and kernel launches against the
// simulator. Workload host drivers are written against this API the way
// the paper's benchmarks are written against the CUDA runtime.
package cuda

import (
	"encoding/binary"
	"fmt"
	"math"

	"sassi/internal/sass"
	"sassi/internal/sim"
)

// DevPtr is a device (global) memory address.
type DevPtr uint64

// LaunchCallbacks observe kernel boundaries; the CUPTI layer subscribes
// through these hooks (the paper's §3.3 init/collect protocol).
type LaunchCallbacks struct {
	// PreLaunch runs before the kernel starts.
	PreLaunch func(kernel string, launchIdx int)
	// PostLaunch runs after the kernel completes (or fails).
	PostLaunch func(kernel string, launchIdx int, stats *sim.KernelStats, err error)
}

// MemcpyDir distinguishes copy directions for memcpy observers.
type MemcpyDir int

// Memcpy directions.
const (
	MemcpyHtoD MemcpyDir = iota
	MemcpyDtoH
)

func (d MemcpyDir) String() string {
	if d == MemcpyHtoD {
		return "HtoD"
	}
	return "DtoH"
}

// Context owns a device and tracks launch statistics. Kernel launches are
// serialized, which (as the paper notes for cudaMemcpy-separated launches)
// keeps callback-managed counters race-free.
type Context struct {
	dev *sim.Device

	callbacks []LaunchCallbacks
	memcpyCbs []func(dir MemcpyDir, bytes uint64)
	launches  int

	// Aggregate per-context statistics (nvprof analog).
	TotalKernelCycles        uint64
	TotalWarpInstrs          uint64
	TotalInjectedWarpInstrs  uint64
	TotalHandlerCalls        uint64
	TotalScoreboardStalls    uint64
	PerKernel                map[string]*KernelAgg
}

// KernelAgg accumulates per-kernel-name totals across launches.
type KernelAgg struct {
	Launches   int
	Cycles     uint64
	WarpInstrs uint64
}

// NewContext creates a context on a fresh device.
func NewContext(cfg sim.Config) *Context {
	return &Context{dev: sim.NewDevice(cfg), PerKernel: make(map[string]*KernelAgg)}
}

// Device exposes the underlying simulated GPU.
func (c *Context) Device() *sim.Device { return c.dev }

// Subscribe registers launch callbacks.
func (c *Context) Subscribe(cb LaunchCallbacks) { c.callbacks = append(c.callbacks, cb) }

// SubscribeMemcpy registers an observer fired after every successful
// host<->device copy (the CUPTI memcpy-activity hook).
func (c *Context) SubscribeMemcpy(cb func(dir MemcpyDir, bytes uint64)) {
	c.memcpyCbs = append(c.memcpyCbs, cb)
}

func (c *Context) notifyMemcpy(dir MemcpyDir, bytes uint64) {
	for _, cb := range c.memcpyCbs {
		cb(dir, bytes)
	}
}

// Malloc allocates device memory.
func (c *Context) Malloc(n uint64, name string) DevPtr {
	return DevPtr(c.dev.Alloc(n, name))
}

// MemcpyHtoD copies host bytes to the device.
func (c *Context) MemcpyHtoD(dst DevPtr, src []byte) error {
	if err := c.dev.Global.Write(uint64(dst), src); err != nil {
		return err
	}
	c.notifyMemcpy(MemcpyHtoD, uint64(len(src)))
	return nil
}

// MemcpyDtoH copies device bytes to the host.
func (c *Context) MemcpyDtoH(dst []byte, src DevPtr) error {
	if err := c.dev.Global.Read(uint64(src), dst); err != nil {
		return err
	}
	c.notifyMemcpy(MemcpyDtoH, uint64(len(dst)))
	return nil
}

// Memset32 fills count 32-bit words with v.
func (c *Context) Memset32(dst DevPtr, v uint32, count int) error {
	buf := make([]byte, 4*count)
	for i := 0; i < count; i++ {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	return c.MemcpyHtoD(dst, buf)
}

// AllocF32 uploads a float slice, returning its device pointer.
func (c *Context) AllocF32(name string, host []float32) DevPtr {
	p := c.Malloc(uint64(4*len(host)), name)
	buf := make([]byte, 4*len(host))
	for i, f := range host {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
	}
	if err := c.MemcpyHtoD(p, buf); err != nil {
		panic(fmt.Sprintf("cuda: upload %s: %v", name, err))
	}
	return p
}

// AllocU32 uploads a uint32 slice.
func (c *Context) AllocU32(name string, host []uint32) DevPtr {
	p := c.Malloc(uint64(4*len(host)), name)
	buf := make([]byte, 4*len(host))
	for i, v := range host {
		binary.LittleEndian.PutUint32(buf[4*i:], v)
	}
	if err := c.MemcpyHtoD(p, buf); err != nil {
		panic(fmt.Sprintf("cuda: upload %s: %v", name, err))
	}
	return p
}

// ReadF32 downloads count floats from the device.
func (c *Context) ReadF32(src DevPtr, count int) ([]float32, error) {
	buf := make([]byte, 4*count)
	if err := c.MemcpyDtoH(buf, src); err != nil {
		return nil, err
	}
	out := make([]float32, count)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// ReadU32 downloads count uint32s from the device.
func (c *Context) ReadU32(src DevPtr, count int) ([]uint32, error) {
	buf := make([]byte, 4*count)
	if err := c.MemcpyDtoH(buf, src); err != nil {
		return nil, err
	}
	out := make([]uint32, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return out, nil
}

// ReadU64 downloads count uint64s from the device.
func (c *Context) ReadU64(src DevPtr, count int) ([]uint64, error) {
	buf := make([]byte, 8*count)
	if err := c.MemcpyDtoH(buf, src); err != nil {
		return nil, err
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return out, nil
}

// LaunchKernel runs a kernel synchronously, firing launch callbacks.
func (c *Context) LaunchKernel(prog *sass.Program, kernel string, p sim.LaunchParams) (*sim.KernelStats, error) {
	idx := c.launches
	c.launches++
	for _, cb := range c.callbacks {
		if cb.PreLaunch != nil {
			cb.PreLaunch(kernel, idx)
		}
	}
	stats, err := c.dev.Launch(prog, kernel, p)
	if stats != nil {
		c.TotalKernelCycles += stats.Cycles
		c.TotalWarpInstrs += stats.WarpInstrs
		c.TotalInjectedWarpInstrs += stats.InjectedWarpInstrs
		c.TotalHandlerCalls += stats.HandlerCalls
		c.TotalScoreboardStalls += stats.ScoreboardStalls
		agg := c.PerKernel[kernel]
		if agg == nil {
			agg = &KernelAgg{}
			c.PerKernel[kernel] = agg
		}
		agg.Launches++
		agg.Cycles += stats.Cycles
		agg.WarpInstrs += stats.WarpInstrs
	}
	for _, cb := range c.callbacks {
		if cb.PostLaunch != nil {
			cb.PostLaunch(kernel, idx, stats, err)
		}
	}
	return stats, err
}

// Launches returns the number of kernel launches so far.
func (c *Context) Launches() int { return c.launches }
