package cuda_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/device"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	isassi "sassi/internal/sassi"
	"sassi/internal/sim"
)

func jitBuild() (*ptx.Module, error) {
	b := ptx.NewKernel("store_tid")
	out := b.ParamU64("out")
	i := b.GlobalTidX()
	b.StGlobalU32(b.Index(out, i, 2), 0, i)
	f, err := b.Done()
	if err != nil {
		return nil, err
	}
	m := ptx.NewModule()
	m.Add(f)
	return m, nil
}

// TestJITCachesCompiles: repeated launches reuse one compile; changing the
// instrumentation recompiles (the driver-embedded SASSI flow of Figure 1).
func TestJITCachesCompiles(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	j := cuda.NewJITModule(jitBuild, ptxas.Options{})
	out := ctx.Malloc(4*32, "out")
	params := sim.LaunchParams{Grid: sim.D1(1), Block: sim.D1(32), Args: []uint64{uint64(out)}}

	for i := 0; i < 3; i++ {
		if _, err := ctx.LaunchJIT(j, "store_tid", params); err != nil {
			t.Fatal(err)
		}
	}
	if j.Compiles() != 1 {
		t.Errorf("compiles = %d, want 1 (cached)", j.Compiles())
	}

	// Turn instrumentation on mid-application.
	calls := 0
	j.SetInstrumentation(func(prog *sass.Program) error {
		if err := isassi.Instrument(prog, isassi.Options{
			Where: isassi.BeforeMem, BeforeHandler: "h",
		}); err != nil {
			return err
		}
		rt := isassi.NewRuntime(prog)
		rt.MustRegister(&isassi.Handler{Name: "h", Sequential: true,
			Fn: func(c *device.Ctx, args isassi.HandlerArgs) { calls++ }})
		rt.Attach(ctx.Device())
		return nil
	})
	stats, err := ctx.LaunchJIT(j, "store_tid", params)
	if err != nil {
		t.Fatal(err)
	}
	if j.Compiles() != 2 {
		t.Errorf("compiles = %d, want 2 after option change", j.Compiles())
	}
	if calls == 0 || stats.HandlerCalls == 0 {
		t.Error("JIT-applied instrumentation did not run")
	}
	// Results still correct.
	vals, _ := ctx.ReadU32(out, 32)
	for i, v := range vals {
		if v != uint32(i) {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}

	// Removing instrumentation recompiles clean.
	j.SetInstrumentation(nil)
	stats, err = ctx.LaunchJIT(j, "store_tid", params)
	if err != nil {
		t.Fatal(err)
	}
	if stats.HandlerCalls != 0 || stats.InjectedWarpInstrs != 0 {
		t.Error("instrumentation survived removal")
	}
}
