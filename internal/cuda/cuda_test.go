package cuda_test

import (
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

func vecProg(t *testing.T) *sass.Program {
	t.Helper()
	b := ptx.NewKernel("store_tid")
	out := b.ParamU64("out")
	i := b.GlobalTidX()
	b.StGlobalU32(b.Index(out, i, 2), 0, i)
	m := ptx.NewModule()
	m.Add(b.MustDone())
	prog, err := ptxas.Compile(m, ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestMemcpyRoundtrips(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	f := []float32{1.5, -2.25, 3}
	df := ctx.AllocF32("f", f)
	back, err := ctx.ReadF32(df, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if back[i] != f[i] {
			t.Errorf("f[%d] = %v", i, back[i])
		}
	}
	u := []uint32{7, 8, 9}
	du := ctx.AllocU32("u", u)
	ub, err := ctx.ReadU32(du, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range u {
		if ub[i] != u[i] {
			t.Errorf("u[%d] = %v", i, ub[i])
		}
	}
	raw := ctx.Malloc(16, "raw")
	if err := ctx.Memset32(raw, 0xDEAD, 4); err != nil {
		t.Fatal(err)
	}
	rb, _ := ctx.ReadU32(raw, 4)
	for _, v := range rb {
		if v != 0xDEAD {
			t.Errorf("memset value %#x", v)
		}
	}
	u64s, err := ctx.ReadU64(raw, 2)
	if err != nil || u64s[0] != 0x0000DEAD0000DEAD {
		t.Errorf("ReadU64 = %#x, %v", u64s, err)
	}
}

func TestLaunchCallbacksOrderAndStats(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	prog := vecProg(t)
	var events []string
	ctx.Subscribe(cuda.LaunchCallbacks{
		PreLaunch: func(kernel string, idx int) {
			events = append(events, "pre")
		},
		PostLaunch: func(kernel string, idx int, stats *sim.KernelStats, err error) {
			if stats == nil || err != nil {
				t.Errorf("post callback stats=%v err=%v", stats, err)
			}
			events = append(events, "post")
		},
	})
	out := ctx.Malloc(4*64, "out")
	for i := 0; i < 2; i++ {
		if _, err := ctx.LaunchKernel(prog, "store_tid", sim.LaunchParams{
			Grid: sim.D1(2), Block: sim.D1(32), Args: []uint64{uint64(out)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(events) != 4 || events[0] != "pre" || events[1] != "post" {
		t.Errorf("events = %v", events)
	}
	if ctx.Launches() != 2 {
		t.Errorf("launches = %d", ctx.Launches())
	}
	if ctx.TotalKernelCycles == 0 || ctx.TotalWarpInstrs == 0 {
		t.Error("aggregate stats empty")
	}
	agg := ctx.PerKernel["store_tid"]
	if agg == nil || agg.Launches != 2 || agg.Cycles == 0 {
		t.Errorf("per-kernel agg = %+v", agg)
	}
}

func TestLaunchBadArgsCount(t *testing.T) {
	ctx := cuda.NewContext(sim.MiniGPU())
	prog := vecProg(t)
	if _, err := ctx.LaunchKernel(prog, "store_tid", sim.LaunchParams{
		Grid: sim.D1(1), Block: sim.D1(32), Args: nil,
	}); err == nil {
		t.Error("missing args accepted")
	}
	if _, err := ctx.LaunchKernel(prog, "ghost", sim.LaunchParams{}); err == nil {
		t.Error("unknown kernel accepted")
	}
}
