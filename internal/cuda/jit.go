package cuda

import (
	"fmt"
	"sync"

	"sassi/internal/ptx"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sim"
)

// JITModule is the paper's Figure 1 dotted path: instead of ahead-of-time
// instrumentation through ptxas, the "display driver" keeps the PTX and
// JIT-compiles it — running SASSI as the final pass — on first launch.
// Instrumentation options can be changed between kernel launches without
// recompiling the application; the compiled program is cached until the
// options change.
type JITModule struct {
	mu       sync.Mutex
	build    func() (*ptx.Module, error)
	copts    ptxas.Options
	instr    func(*sass.Program) error
	cached   *sass.Program
	compiles int
}

// NewJITModule wraps a PTX module constructor for JIT compilation.
func NewJITModule(build func() (*ptx.Module, error), copts ptxas.Options) *JITModule {
	return &JITModule{build: build, copts: copts}
}

// SetInstrumentation installs (or replaces) the instrumentation applied at
// the next compile; passing nil removes instrumentation. The cached
// program is invalidated.
func (j *JITModule) SetInstrumentation(instr func(*sass.Program) error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.instr = instr
	j.cached = nil
}

// Program JIT-compiles (and instruments) the module, reusing the cache.
func (j *JITModule) Program() (*sass.Program, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cached != nil {
		return j.cached, nil
	}
	m, err := j.build()
	if err != nil {
		return nil, fmt.Errorf("cuda: jit build: %w", err)
	}
	prog, err := ptxas.Compile(m, j.copts)
	if err != nil {
		return nil, fmt.Errorf("cuda: jit compile: %w", err)
	}
	if j.instr != nil {
		if err := j.instr(prog); err != nil {
			return nil, fmt.Errorf("cuda: jit instrumentation: %w", err)
		}
	}
	j.cached = prog
	j.compiles++
	return prog, nil
}

// Compiles reports how many times the module was actually compiled
// (cache misses).
func (j *JITModule) Compiles() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compiles
}

// LaunchJIT launches a kernel from a JIT module on this context.
func (c *Context) LaunchJIT(j *JITModule, kernel string, p sim.LaunchParams) (*sim.KernelStats, error) {
	prog, err := j.Program()
	if err != nil {
		return nil, err
	}
	return c.LaunchKernel(prog, kernel, p)
}
