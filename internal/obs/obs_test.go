package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(3)
	r.Counter("a.first").Inc()
	r.Gauge("m.middle").Set(7)
	r.Histogram("h.hist").Observe(5)
	r.Sharded("s.shard", 2).AddShard(1, 9)
	snap := r.Snapshot()
	var names []string
	for _, m := range snap {
		names = append(names, m.Name)
	}
	want := []string{"a.first", "h.hist", "m.middle", "s.shard", "z.last"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("snapshot order %v, want %v", names, want)
	}
}

func TestNilRegistryAndMetricsAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Sharded("x", 4).AddShard(0, 1)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v", got)
	}
	if r.Flat("sm") != nil {
		t.Fatal("nil registry Flat should be nil")
	}
	var tr *Tracer
	tr.Span(PidDevice, 0, "x", 0, 1, nil)
	tr.NameThread(PidDevice, 0, "SM 0")
	ran := false
	tr.HostSpan(0, "f", func() { ran = true })
	if !ran {
		t.Fatal("nil tracer HostSpan must still run fn")
	}
}

func TestShardedCounterOrderIndependentMerge(t *testing.T) {
	r := NewRegistry()
	s := r.Sharded("c", 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.AddShard(shard, uint64(shard))
			}
		}(i)
	}
	wg.Wait()
	want := uint64(0)
	for i := 0; i < 8; i++ {
		want += uint64(i) * 1000
	}
	if s.Value() != want {
		t.Fatalf("sharded total = %d, want %d", s.Value(), want)
	}
	if s.ShardValue(3) != 3000 {
		t.Fatalf("shard 3 = %d, want 3000", s.ShardValue(3))
	}
}

func TestShardedCounterWidens(t *testing.T) {
	r := NewRegistry()
	s := r.Sharded("w", 2)
	s.AddShard(1, 5)
	s2 := r.Sharded("w", 4)
	if s2 != s {
		t.Fatal("widening must preserve identity")
	}
	if s.NumShards() != 4 || s.ShardValue(1) != 5 {
		t.Fatalf("widened counter lost state: shards=%d v1=%d", s.NumShards(), s.ShardValue(1))
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 3, 8, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1013 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	bks := h.Buckets()
	total := uint64(0)
	for _, b := range bks {
		total += b.Count
	}
	if total != 6 {
		t.Fatalf("bucket counts sum to %d, want 6", total)
	}
}

func TestTracerWriteJSONDeterministic(t *testing.T) {
	mk := func(order []int) []byte {
		tr := NewTracer()
		tr.NameProcess(PidDevice, "device")
		for _, i := range order {
			tr.NameThread(PidDevice, i, "SM "+itoa(i))
			tr.Span(PidDevice, i, "cta", float64(10*i), 5, nil)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := mk([]int{0, 1, 2, 3})
	b := mk([]int{3, 1, 0, 2})
	if !bytes.Equal(a, b) {
		t.Fatalf("trace bytes depend on recording order:\n%s\nvs\n%s", a, b)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no events")
	}
}

func TestTracerCapCountsDropped(t *testing.T) {
	tr := NewTracer()
	tr.MaxEvents = 2
	for i := 0; i < 5; i++ {
		tr.Span(PidDevice, 0, "s", float64(i), 1, nil)
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", tr.Len(), tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace_dropped") {
		t.Fatal("dropped count not surfaced in trace metadata")
	}
}

func TestStatsJSONSortedKeys(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.Sharded("c.three", 2).AddShard(0, 3)
	s := NewStats(r)
	s.Workload = "demo"
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia, ib, ic := strings.Index(out, `"a.one"`), strings.Index(out, `"b.two"`), strings.Index(out, `"c.three"`)
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Fatalf("metric keys not sorted: a=%d b=%d c=%d in\n%s", ia, ib, ic, out)
	}
	if !strings.Contains(out, `"c.three.sm0": 3`) {
		t.Fatalf("sharded flattening missing:\n%s", out)
	}
	if si, wi := strings.Index(out, `"schema"`), strings.Index(out, `"workload"`); !(si >= 0 && si < wi) {
		t.Fatalf("fixed field order violated:\n%s", out)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.issue.warp_instrs").Add(42)
	r.Histogram("handlers.dispatch_active_lanes").Observe(32)
	r.Sharded("sim.cycles", 2).AddShard(1, 7)
	h := Handler(r, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE sim_issue_warp_instrs counter",
		"sim_issue_warp_instrs 42",
		`sim_cycles{sm="1"} 7`,
		"handlers_dispatch_active_lanes_count 1",
		`handlers_dispatch_active_lanes_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats.json", nil))
	var s map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("/stats.json not JSON: %v", err)
	}
	if s["schema"] != StatsSchema {
		t.Fatalf("schema = %v", s["schema"])
	}
}

func TestHandlerMounts(t *testing.T) {
	r := NewRegistry()
	custom := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("profile-bytes"))
	})
	h := Handler(r, nil,
		Mount{Pattern: "/debug/sassiprof/profile", Handler: custom},
		Mount{Pattern: "/debug/nil", Handler: nil}) // nil mounts are skipped, not panics

	// The Go runtime profiler is mounted for free on every -http server.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d, want 200", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/sassiprof/profile", nil))
	if rec.Code != 200 || rec.Body.String() != "profile-bytes" {
		t.Errorf("custom mount = %d %q, want the mounted handler's output", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/nil", nil))
	if rec.Code != 404 {
		t.Errorf("nil mount status = %d, want 404", rec.Code)
	}

	// The index page advertises the debug endpoints.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rec.Body.String(), "/debug/pprof/") {
		t.Errorf("index does not mention /debug/pprof/:\n%s", rec.Body.String())
	}
}
