// Package obs is the observability layer: a lock-cheap metrics registry
// (counters, gauges, histograms, with per-SM sharding), a span tracer that
// emits Chrome trace-event JSON loadable in Perfetto, an ordered stats-JSON
// writer, and a Prometheus-text HTTP endpoint. It is the substrate the
// CUPTI-analog Activity API and the overhead reports are built on.
//
// Design rules:
//
//   - Disabled observability costs nothing on hot paths: every consumer
//     guards with a nil check, and the simulator's warp-issue path keeps
//     its counters in plain per-SM shard fields that are published to the
//     registry only at kernel exit (BenchmarkObsOverhead pins 0 allocs/op).
//   - All mutation is either atomic (counters, gauges, histogram buckets)
//     or single-goroutine (per-SM shard cells), so concurrently-recorded
//     metrics merge order-independently and parallel-vs-sequential
//     simulations stay bit-equal.
//   - Snapshot output is sorted by metric name, so serialized forms are
//     deterministic and diffable.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and nil-receiver safe (a nil counter silently discards).
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric.
type Gauge struct {
	v atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(n uint64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into power-of-two buckets: bucket i counts
// values v with 2^(i-1) <= v < 2^i (bucket 0 counts v == 0). Fixed shape
// keeps observation allocation-free and the merged counts order-independent.
type Histogram struct {
	buckets [maxHistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

const maxHistBuckets = 32

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// histBucket maps a value to its bucket index.
func histBucket(v uint64) int {
	i := 0
	for v > 0 && i < maxHistBuckets-1 {
		v >>= 1
		i++
	}
	return i
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the non-zero bucket counts as (upper-bound, count) pairs;
// the upper bound of bucket i is 2^i - 1 interpreted inclusively.
func (h *Histogram) Buckets() []HistBucket {
	if h == nil {
		return nil
	}
	var out []HistBucket
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			ub := uint64(0)
			if i > 0 {
				ub = uint64(1)<<uint(i) - 1
			}
			out = append(out, HistBucket{UpperBound: ub, Count: n})
		}
	}
	return out
}

// HistBucket is one histogram bucket in a snapshot.
type HistBucket struct {
	UpperBound uint64
	Count      uint64
}

// shardCell is one shard of a ShardedCounter, padded to its own cache line
// so concurrent SM goroutines don't false-share.
type shardCell struct {
	v uint64
	_ [7]uint64 // pad to 64 bytes
}

// ShardedCounter is a counter split into per-shard cells (one per SM).
// Each shard is owned by exactly one goroutine during a simulation, so
// increments are plain stores; Value sums the cells, which is
// order-independent regardless of how the owners interleaved.
type ShardedCounter struct {
	cells []shardCell
}

// AddShard adds n to one shard's cell. The caller must own the shard (one
// writer per shard); there is no internal synchronization.
func (s *ShardedCounter) AddShard(shard int, n uint64) {
	if s != nil {
		s.cells[shard].v += n
	}
}

// ShardValue returns one shard's count.
func (s *ShardedCounter) ShardValue(shard int) uint64 {
	if s == nil {
		return 0
	}
	return s.cells[shard].v
}

// NumShards returns the shard count (0 for nil).
func (s *ShardedCounter) NumShards() int {
	if s == nil {
		return 0
	}
	return len(s.cells)
}

// Value sums all shards.
func (s *ShardedCounter) Value() uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for i := range s.cells {
		t += s.cells[i].v
	}
	return t
}

// Registry holds named metrics. Registration takes a mutex; the returned
// handles are then mutated lock-free. A nil *Registry is a valid "disabled"
// registry: every lookup returns nil, and nil metric handles discard.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sharded  map[string]*ShardedCounter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		sharded:  make(map[string]*ShardedCounter),
	}
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Sharded returns (registering on first use) the named sharded counter with
// at least shards cells. An existing counter is widened if needed.
func (r *Registry) Sharded(name string, shards int) *ShardedCounter {
	if r == nil {
		return nil
	}
	if shards < 1 {
		shards = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.sharded[name]
	if s == nil {
		s = &ShardedCounter{cells: make([]shardCell, shards)}
		r.sharded[name] = s
	} else if len(s.cells) < shards {
		cells := make([]shardCell, shards)
		copy(cells, s.cells)
		s.cells = cells
	}
	return s
}

// Metric is one named value in a snapshot.
type Metric struct {
	Name string
	Kind MetricKind
	// Value is the counter/gauge value, the histogram count, or the
	// sharded-counter total.
	Value uint64
	// Sum and Buckets are set for histograms only.
	Sum     uint64
	Buckets []HistBucket
	// Shards holds per-shard values for sharded counters.
	Shards []uint64
}

// MetricKind tags a snapshot entry.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
	KindSharded
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindSharded:
		return "counter" // a sharded counter is still a counter externally
	}
	return "unknown"
}

// Snapshot returns every metric, sorted by name. Histogram entries carry
// their buckets; sharded entries carry per-shard values.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.sharded))
	for n, c := range r.counters {
		out = append(out, Metric{Name: n, Kind: KindCounter, Value: c.Value()})
	}
	for n, g := range r.gauges {
		out = append(out, Metric{Name: n, Kind: KindGauge, Value: g.Value()})
	}
	for n, h := range r.hists {
		out = append(out, Metric{Name: n, Kind: KindHistogram,
			Value: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()})
	}
	for n, s := range r.sharded {
		m := Metric{Name: n, Kind: KindSharded, Value: s.Value()}
		m.Shards = make([]uint64, len(s.cells))
		for i := range s.cells {
			m.Shards[i] = s.cells[i].v
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Flat returns the snapshot flattened to sorted name→value pairs: plain
// metrics appear under their name, histograms add .sum, and sharded
// counters add one .<shard-prefix><i> entry per shard. This is the shape
// -stats-json and the determinism tests consume.
func (r *Registry) Flat(shardPrefix string) map[string]uint64 {
	if r == nil {
		return nil
	}
	flat := make(map[string]uint64)
	for _, m := range r.Snapshot() {
		flat[m.Name] = m.Value
		switch m.Kind {
		case KindHistogram:
			flat[m.Name+".sum"] = m.Sum
		case KindSharded:
			for i, v := range m.Shards {
				flat[m.Name+"."+shardPrefix+itoa(i)] = v
			}
		}
	}
	return flat
}

// itoa is a tiny strconv.Itoa for non-negative ints (avoids pulling fmt
// into the hot-ish snapshot path).
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
