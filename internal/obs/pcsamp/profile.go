package pcsamp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"sassi/internal/sass"
)

// Loc identifies one sampled location: kernel, leaf PC, stall reason, and
// the warp's call stack (return addresses, outermost first, truncated to
// the innermost MaxStack frames).
type Loc struct {
	Kernel string
	PC     int32
	Reason Reason
	Depth  uint8
	Stack  [MaxStack]int32
}

// Counts is the aggregate at one location. Samples is period-weighted, so
// Samples*Period estimates cycles spent there; Lanes is the same weight
// multiplied by the active-lane count, so Lanes/Samples is the mean warp
// occupancy at that location.
type Counts struct {
	Samples uint64
	Lanes   uint64
}

// Profile is a merged, immutable-by-convention sampling profile.
type Profile struct {
	// Period is the sampling cadence in modeled cycles; one sample unit
	// represents Period cycles.
	Period uint64
	// Launches counts kernel launches folded into the profile.
	Launches uint64
	// TruncatedStacks counts samples whose call stack exceeded MaxStack.
	TruncatedStacks uint64
	// Locs maps each sampled location to its aggregate.
	Locs map[Loc]Counts

	// kernels backs symbolization (name -> SASS, read-only).
	kernels map[string]*sass.Kernel
}

func newProfile(period uint64) *Profile {
	return &Profile{
		Period:  period,
		Locs:    make(map[Loc]Counts),
		kernels: make(map[string]*sass.Kernel),
	}
}

// Clone deep-copies the location map (kernel pointers are shared; SASS is
// read-only after compilation).
func (p *Profile) Clone() *Profile {
	q := newProfile(p.Period)
	q.Launches = p.Launches
	q.TruncatedStacks = p.TruncatedStacks
	for l, c := range p.Locs {
		q.Locs[l] = c
	}
	for n, k := range p.kernels {
		q.kernels[n] = k
	}
	return q
}

// Sub returns the delta profile p-base: what accumulated after base was
// snapshotted. Counts saturate at zero, so a stale base cannot underflow.
func (p *Profile) Sub(base *Profile) *Profile {
	q := p.Clone()
	if base == nil {
		return q
	}
	if base.Launches < q.Launches {
		q.Launches -= base.Launches
	} else {
		q.Launches = 0
	}
	if base.TruncatedStacks < q.TruncatedStacks {
		q.TruncatedStacks -= base.TruncatedStacks
	} else {
		q.TruncatedStacks = 0
	}
	for l, bc := range base.Locs {
		c, ok := q.Locs[l]
		if !ok {
			continue
		}
		if c.Samples > bc.Samples {
			c.Samples -= bc.Samples
		} else {
			c.Samples = 0
		}
		if c.Lanes > bc.Lanes {
			c.Lanes -= bc.Lanes
		} else {
			c.Lanes = 0
		}
		if c.Samples == 0 && c.Lanes == 0 {
			delete(q.Locs, l)
		} else {
			q.Locs[l] = c
		}
	}
	return q
}

// TotalSamples sums the period-weighted sample count.
func (p *Profile) TotalSamples() uint64 {
	var n uint64
	for _, c := range p.Locs {
		n += c.Samples
	}
	return n
}

// Cycles estimates the total cycles the profile attributes.
func (p *Profile) Cycles() uint64 { return p.TotalSamples() * p.Period }

// PCKey identifies one static instruction across the profile's kernels.
type PCKey struct {
	Kernel string
	PC     int32
}

// PCCycles flattens the profile to estimated cycles per static
// instruction, summing over stall reasons and call stacks. At period 1
// the estimate is exact.
func (p *Profile) PCCycles() map[PCKey]uint64 {
	out := make(map[PCKey]uint64)
	for l, c := range p.Locs {
		out[PCKey{l.Kernel, l.PC}] += c.Samples * p.Period
	}
	return out
}

// StallCycles estimates cycles attributed to each stall reason.
func (p *Profile) StallCycles() [NumReasons]uint64 {
	var out [NumReasons]uint64
	for l, c := range p.Locs {
		out[l.Reason] += c.Samples * p.Period
	}
	return out
}

// sortedLocs returns the locations in a canonical order so every export
// is byte-deterministic.
func (p *Profile) sortedLocs() []Loc {
	locs := make([]Loc, 0, len(p.Locs))
	for l := range p.Locs {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool {
		a, b := &locs[i], &locs[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Reason != b.Reason {
			return a.Reason < b.Reason
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		return a.Stack != b.Stack && less(a.Stack, b.Stack)
	})
	return locs
}

func less(a, b [MaxStack]int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// symbolizer resolves profile locations to human frames via the kernels'
// SASS and control-flow graphs (built lazily, one per kernel).
type symbolizer struct {
	kernels map[string]*sass.Kernel
	cfgs    map[string]*sass.CFG
}

func newSymbolizer(kernels map[string]*sass.Kernel) *symbolizer {
	return &symbolizer{kernels: kernels, cfgs: make(map[string]*sass.CFG)}
}

func (s *symbolizer) cfg(kernel string) *sass.CFG {
	if c, ok := s.cfgs[kernel]; ok {
		return c
	}
	var c *sass.CFG
	if k := s.kernels[kernel]; k != nil {
		c, _ = sass.BuildCFG(k) // nil on malformed SASS: frames lose bb tags only
	}
	s.cfgs[kernel] = c
	return c
}

// frames renders a location root-first: kernel, one frame per call-stack
// entry, then the leaf instruction (basic block, offset, opcode).
func (s *symbolizer) frames(l Loc) []string {
	k := s.kernels[l.Kernel]
	out := make([]string, 0, int(l.Depth)+2)
	out = append(out, l.Kernel)
	for i := 0; i < int(l.Depth); i++ {
		out = append(out, callFrame(k, int(l.Stack[i])))
	}
	out = append(out, s.leafFrame(k, l))
	return out
}

// callFrame names the function a return address points back out of: the
// CAL immediately before the return address names the callee's entry
// label. Unresolvable frames degrade to the raw return offset.
func callFrame(k *sass.Kernel, ra int) string {
	if k != nil && ra >= 1 && ra-1 < len(k.Instrs) {
		in := &k.Instrs[ra-1]
		if in.Op == sass.OpCAL {
			if t, ok := in.BranchTarget(); ok {
				ti := int(t.Imm)
				if names := k.LabelAt(ti); len(names) > 0 {
					return names[0]
				}
				return fmt.Sprintf("fn_%04x", uint32(sass.InsOffset(ti)))
			}
		}
	}
	return fmt.Sprintf("ret_%04x", uint32(sass.InsOffset(ra)))
}

func (s *symbolizer) leafFrame(k *sass.Kernel, l Loc) string {
	pc := int(l.PC)
	if k == nil || pc < 0 || pc >= len(k.Instrs) {
		return fmt.Sprintf("pc_%04x", uint32(sass.InsOffset(pc)))
	}
	op := k.Instrs[pc].Op.String()
	if cfg := s.cfg(l.Kernel); cfg != nil {
		if b := cfg.BlockOf(pc); b != nil {
			return fmt.Sprintf("bb%d:0x%04x:%s", b.ID, uint32(sass.InsOffset(pc)), op)
		}
	}
	return fmt.Sprintf("0x%04x:%s", uint32(sass.InsOffset(pc)), op)
}

// WriteFolded writes the profile in Brendan Gregg's folded-stack format:
// one "frame;frame;...;leaf count" line per stack, semicolon-separated
// root-first, sorted, with counts in period-weighted samples. Stalled
// locations grow a final "stall:<reason>" frame so flamegraphs attribute
// wait time visually. Pipe into flamegraph.pl (or any folded-stack
// consumer) for an SVG.
func (p *Profile) WriteFolded(w io.Writer) error {
	sym := newSymbolizer(p.kernels)
	lines := make(map[string]uint64, len(p.Locs))
	for _, l := range p.sortedLocs() {
		frames := sym.frames(l)
		if l.Reason != ReasonNone {
			frames = append(frames, "stall:"+l.Reason.String())
		}
		lines[strings.Join(frames, ";")] += p.Locs[l].Samples
	}
	keys := make([]string, 0, len(lines))
	for k := range lines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		fmt.Fprintf(bw, "%s %d\n", k, lines[k])
	}
	return bw.Flush()
}
