// Package pcsamp is the simulator's always-on PC-sampling profiler: a
// deterministic cycle-cadence sampler over the warp-issue path, the
// low-overhead alternative to exact SASSI instrumentation (whose per-
// dispatch handlers cost 54-98% in the §9.1 reproduction).
//
// The cadence is modeled device cycles, not host time: each SM keeps a
// next-sample threshold, and the instruction whose issue+stall window
// crosses one or more multiples of the sampling period records a sample
// weighted by the number of boundaries crossed. Because per-SM cycle
// counts are deterministic (they never depend on goroutine interleaving),
// the profile is a pure function of the program and period — and period 1
// degenerates to exact per-instruction cycle attribution, which is what
// the accuracy experiment (experiments -run pcsamp) validates against.
//
// Samples land in per-SM single-writer ring buffers (64-byte cells, zero
// allocations on the hot path) that fold into per-SM aggregation maps
// when full, and merge order-independently into the global profile at
// launch end: sequential and concurrent engines produce bit-identical
// profiles. A sample carries (PC, launch-global warp id, active-lane
// count, stall reason, shadow call stack), so the merged profile exports
// as Brendan Gregg folded stacks (flamegraph.pl) or a pprof
// profile.proto that `go tool pprof` renders natively.
package pcsamp

import (
	"sync"
	"time"

	"sassi/internal/obs"
	"sassi/internal/sass"
)

// Reason classifies what the sampled instruction was doing when the SM's
// cycle counter crossed the sampling boundary.
type Reason uint8

// Stall reasons, in classification priority order: a scoreboard stall
// wins over the instruction's class, a barrier or memory instruction wins
// over divergence.
const (
	ReasonNone       Reason = iota // plain issue, no stall attributed
	ReasonScoreboard               // register RAW/WAW hazard stall cycles
	ReasonBarrier                  // BAR.SYNC issue (warp about to wait)
	ReasonDivergence               // branch that split the active mask
	ReasonMemory                   // memory-class instruction (latency-bound)
	NumReasons
)

func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonScoreboard:
		return "scoreboard"
	case ReasonBarrier:
		return "barrier"
	case ReasonDivergence:
		return "divergence"
	case ReasonMemory:
		return "memory"
	}
	return "unknown"
}

// DefaultPeriod is the sampling cadence in modeled cycles when none is
// configured. At typical issue costs (~4-10 cycles per warp instruction)
// it samples roughly one instruction in twenty, which keeps overhead well
// under the 10% budget while resolving hotspots on the suite's kernels.
const DefaultPeriod = 100

// MaxStack is the number of call-stack frames a sample preserves. Deeper
// stacks keep the innermost frames and count toward TruncatedStacks.
const MaxStack = 12

// DefaultRingSize is the per-SM ring capacity in samples.
const DefaultRingSize = 1024

// Sample is one ring-buffer cell: exactly 64 bytes, so consecutive cells
// never share a cache line with a cell another writer owns (the same
// padding discipline as the metrics registry's sharded counters; each
// ring has a single writer, its SM goroutine).
type Sample struct {
	PC     int32           // instruction index in the kernel
	Warp   int32           // launch-global warp id (CTA*warpsPerCTA + idInCTA)
	Weight uint32          // period boundaries this issue window crossed
	Active uint16          // active-lane count at issue
	Reason Reason          // stall classification
	Depth  uint8           // live frames in Stack
	Stack  [MaxStack]int32 // return addresses, outermost first
}

// smKey collapses a sample to its aggregation identity within one kernel:
// everything but the warp id and lane count, which aggregate as values.
type smKey struct {
	pc     int32
	reason Reason
	depth  uint8
	stack  [MaxStack]int32
}

// counts is the per-key aggregate.
type counts struct {
	samples uint64 // sum of Weight
	lanes   uint64 // sum of Weight*Active (for mean-occupancy attribution)
}

// SMBuf is one SM's private sample buffer: a fixed ring the engine's hot
// path appends to with zero allocations, plus a fold-target map consulted
// only when the ring fills and at launch end. Exactly one goroutine (the
// owning SM's) writes between LaunchBegin and LaunchEnd.
type SMBuf struct {
	ring      []Sample
	n         int
	recorded  uint64
	truncated uint64
	agg       map[smKey]counts
}

func newSMBuf(ringSize int) *SMBuf {
	return &SMBuf{
		ring: make([]Sample, ringSize),
		agg:  make(map[smKey]counts, 64),
	}
}

// Record appends one sample. It allocates nothing: the ring cell is
// reused, and when the ring is full it folds into the aggregation map
// first (map writes to existing keys do not allocate, so steady-state
// sampling of a kernel's finite location set stays allocation-free).
func (b *SMBuf) Record(pc, warp int32, active uint16, reason Reason, weight uint32, stack []int) {
	if b.n == len(b.ring) {
		b.fold()
	}
	s := &b.ring[b.n]
	b.n++
	b.recorded++
	s.PC, s.Warp, s.Weight, s.Active, s.Reason = pc, warp, weight, active, reason
	d := len(stack)
	if d > MaxStack {
		b.truncated++
		stack = stack[d-MaxStack:] // keep the innermost frames
		d = MaxStack
	}
	s.Depth = uint8(d)
	for i := 0; i < d; i++ {
		s.Stack[i] = int32(stack[i])
	}
	// Cells are reused after a fold; clear stale frames so they cannot
	// leak into the aggregation key.
	for i := d; i < MaxStack; i++ {
		s.Stack[i] = 0
	}
}

// fold drains the ring into the aggregation map.
func (b *SMBuf) fold() {
	for i := 0; i < b.n; i++ {
		s := &b.ring[i]
		k := smKey{pc: s.PC, reason: s.Reason, depth: s.Depth, stack: s.Stack}
		c := b.agg[k]
		c.samples += uint64(s.Weight)
		c.lanes += uint64(s.Weight) * uint64(s.Active)
		b.agg[k] = c
	}
	b.n = 0
}

// reset clears the buffer for reuse by a later launch.
func (b *SMBuf) reset() {
	b.n = 0
	b.recorded = 0
	b.truncated = 0
	for k := range b.agg {
		delete(b.agg, k)
	}
}

// LaunchSamples is the per-launch attachment: one SMBuf per SM, bound to
// the launched kernel for symbolization. Each concurrent launch gets its
// own set, so a Sampler may serve overlapping launches (e.g. campaign
// workers) — the merge in LaunchEnd is commutative, keeping the final
// profile independent of completion order.
type LaunchSamples struct {
	kernel *sass.Kernel
	// SMs holds one single-writer buffer per SM; the engine stores
	// SMs[i] in SM i's shard.
	SMs []*SMBuf
}

// Sampler owns the merged profile across launches. The zero value is not
// usable; construct with New.
type Sampler struct {
	period   uint64
	ringSize int

	// Metrics, when non-nil, receives the pcsamp.* counters at each
	// launch end (never on the sampling hot path).
	Metrics *obs.Registry

	mu   sync.Mutex
	cond *sync.Cond
	prof *Profile
	free []*LaunchSamples
}

// New returns a sampler with the given cycle period (0 = DefaultPeriod).
func New(period uint64) *Sampler { return NewWithRing(period, DefaultRingSize) }

// NewWithRing is New with an explicit per-SM ring capacity, exposed so
// tests can force ring-full folds cheaply.
func NewWithRing(period uint64, ringSize int) *Sampler {
	if period == 0 {
		period = DefaultPeriod
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	s := &Sampler{period: period, ringSize: ringSize, prof: newProfile(period)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Period returns the sampling cadence in modeled cycles.
func (s *Sampler) Period() uint64 { return s.period }

// LaunchBegin hands out per-SM buffers for one launch of k, reusing a
// pooled set when the SM count matches.
func (s *Sampler) LaunchBegin(k *sass.Kernel, numSMs int) *LaunchSamples {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ls *LaunchSamples
	for i, f := range s.free {
		if len(f.SMs) == numSMs {
			ls = f
			s.free = append(s.free[:i], s.free[i+1:]...)
			break
		}
	}
	if ls == nil {
		ls = &LaunchSamples{SMs: make([]*SMBuf, numSMs)}
		for i := range ls.SMs {
			ls.SMs[i] = newSMBuf(s.ringSize)
		}
	}
	ls.kernel = k
	s.prof.kernels[k.Name] = k
	return ls
}

// LaunchEnd folds every SM buffer of a completed launch into the global
// profile. The per-location merge is a commutative sum, so the profile is
// identical no matter how SM goroutines interleaved or in which order
// concurrent launches finish.
func (s *Sampler) LaunchEnd(ls *LaunchSamples) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var weighted, trunc uint64
	for _, b := range ls.SMs {
		b.fold()
		for k, c := range b.agg {
			loc := Loc{Kernel: ls.kernel.Name, PC: k.pc, Reason: k.reason, Depth: k.depth, Stack: k.stack}
			agg := s.prof.Locs[loc]
			agg.Samples += c.samples
			agg.Lanes += c.lanes
			s.prof.Locs[loc] = agg
			weighted += c.samples
		}
		trunc += b.truncated
		b.reset()
	}
	s.prof.Launches++
	s.prof.TruncatedStacks += trunc
	s.free = append(s.free, ls)
	if m := s.Metrics; m != nil {
		m.Counter(obs.MPCSampSamples).Add(weighted)
		m.Counter(obs.MPCSampLaunches).Inc()
		if trunc > 0 {
			m.Counter(obs.MPCSampTruncated).Add(trunc)
		}
	}
	s.cond.Broadcast()
}

// Profile returns a snapshot of the merged profile.
func (s *Sampler) Profile() *Profile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prof.Clone()
}

// Launches returns how many launches have completed into the profile.
func (s *Sampler) Launches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prof.Launches
}

// WaitLaunches blocks until n more launches complete (or the timeout
// elapses), reporting whether the target was reached. It powers the
// ?launches=N continuous-profiling endpoint.
func (s *Sampler) WaitLaunches(n uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	// The timer only wakes the cond loop; the loop itself re-checks the
	// deadline, so a spurious broadcast cannot end the wait early.
	t := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.prof.Launches + n
	for s.prof.Launches < target && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	return s.prof.Launches >= target
}
