package pcsamp

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
	"unsafe"

	"sassi/internal/obs"
	"sassi/internal/sass"
)

// testKernel builds a small straight-line kernel for symbolization.
func testKernel(t *testing.T, name string) *sass.Kernel {
	t.Helper()
	k := &sass.Kernel{Name: name, NumRegs: 8, Labels: map[string]int{}}
	k.Instrs = []sass.Instruction{
		sass.New(sass.OpMOV, []sass.Operand{sass.R(0)}, []sass.Operand{sass.Imm(1)}),
		sass.New(sass.OpIADD, []sass.Operand{sass.R(0)}, []sass.Operand{sass.R(0), sass.R(0)}),
		sass.New(sass.OpEXIT, nil, nil),
	}
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSampleCellSize(t *testing.T) {
	// The ring layout contract: one sample per 64-byte cell, so adjacent
	// cells never share a cache line across SM writers.
	if got := unsafe.Sizeof(Sample{}); got != 64 {
		t.Errorf("Sample size = %d bytes, want 64", got)
	}
}

// TestRecordFoldsOnFullRing drives more samples than the ring holds and
// checks nothing is lost across the implicit folds.
func TestRecordFoldsOnFullRing(t *testing.T) {
	s := NewWithRing(1, 8)
	k := testKernel(t, "spin")
	ls := s.LaunchBegin(k, 1)
	const n = 100
	for i := 0; i < n; i++ {
		ls.SMs[0].Record(int32(i%3), 0, 32, ReasonNone, 2, nil)
	}
	s.LaunchEnd(ls)
	prof := s.Profile()
	if got := prof.TotalSamples(); got != 2*n {
		t.Errorf("TotalSamples = %d, want %d", got, 2*n)
	}
	if len(prof.Locs) != 3 {
		t.Errorf("distinct locations = %d, want 3", len(prof.Locs))
	}
	for l, c := range prof.Locs {
		if want := uint64(2 * n / 3 * 32); c.Lanes-uint64(2*32) > want {
			t.Errorf("loc %v lanes = %d, implausible", l, c.Lanes)
		}
	}
}

// TestStackTruncation checks deep stacks keep the innermost frames and are
// counted.
func TestStackTruncation(t *testing.T) {
	s := NewWithRing(1, 8)
	k := testKernel(t, "deep")
	ls := s.LaunchBegin(k, 1)
	stack := make([]int, MaxStack+4)
	for i := range stack {
		stack[i] = i + 1
	}
	ls.SMs[0].Record(0, 0, 32, ReasonNone, 1, stack)
	s.LaunchEnd(ls)
	prof := s.Profile()
	if prof.TruncatedStacks != 1 {
		t.Errorf("TruncatedStacks = %d, want 1", prof.TruncatedStacks)
	}
	for l := range prof.Locs {
		if l.Depth != MaxStack {
			t.Errorf("Depth = %d, want %d", l.Depth, MaxStack)
		}
		// Innermost frames survive: the last stack entry is the deepest.
		if got, want := l.Stack[MaxStack-1], int32(stack[len(stack)-1]); got != want {
			t.Errorf("innermost frame = %d, want %d", got, want)
		}
		if got, want := l.Stack[0], int32(stack[4]); got != want {
			t.Errorf("outermost kept frame = %d, want %d", got, want)
		}
	}
}

// TestPooledReuseIsClean checks a second launch reusing pooled buffers
// starts from zero.
func TestPooledReuseIsClean(t *testing.T) {
	s := NewWithRing(1, 8)
	k := testKernel(t, "spin")
	ls := s.LaunchBegin(k, 2)
	ls.SMs[0].Record(0, 0, 32, ReasonNone, 5, nil)
	ls.SMs[1].Record(1, 0, 32, ReasonMemory, 7, nil)
	s.LaunchEnd(ls)
	ls2 := s.LaunchBegin(k, 2)
	if ls2 != ls {
		t.Fatal("expected pooled LaunchSamples reuse for matching SM count")
	}
	ls2.SMs[0].Record(0, 0, 32, ReasonNone, 1, nil)
	s.LaunchEnd(ls2)
	prof := s.Profile()
	if got := prof.TotalSamples(); got != 5+7+1 {
		t.Errorf("TotalSamples = %d, want 13 (reused buffers must start clean)", got)
	}
	if prof.Launches != 2 {
		t.Errorf("Launches = %d, want 2", prof.Launches)
	}
}

// TestMergeOrderIndependence folds the same two launches in both orders
// and requires bit-identical profiles — the property that makes sequential
// and concurrent engines agree.
func TestMergeOrderIndependence(t *testing.T) {
	build := func(order []int) *Profile {
		s := NewWithRing(1, 8)
		k := testKernel(t, "spin")
		a := s.LaunchBegin(k, 1)
		a.SMs[0].Record(0, 0, 32, ReasonNone, 3, nil)
		a.SMs[0].Record(1, 1, 16, ReasonScoreboard, 2, []int{2})
		b := s.LaunchBegin(k, 1)
		b.SMs[0].Record(1, 0, 16, ReasonScoreboard, 4, []int{2})
		b.SMs[0].Record(2, 2, 8, ReasonMemory, 1, nil)
		both := []*LaunchSamples{a, b}
		for _, i := range order {
			s.LaunchEnd(both[i])
		}
		return s.Profile()
	}
	p1, p2 := build([]int{0, 1}), build([]int{1, 0})
	var w1, w2 bytes.Buffer
	if err := p1.WriteProto(&w1); err != nil {
		t.Fatal(err)
	}
	if err := p2.WriteProto(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Error("profiles differ under launch completion order")
	}
}

func TestCloneSub(t *testing.T) {
	s := NewWithRing(1, 8)
	k := testKernel(t, "spin")
	ls := s.LaunchBegin(k, 1)
	ls.SMs[0].Record(0, 0, 32, ReasonNone, 10, nil)
	s.LaunchEnd(ls)
	base := s.Profile()
	ls = s.LaunchBegin(k, 1)
	ls.SMs[0].Record(0, 0, 32, ReasonNone, 4, nil)
	ls.SMs[0].Record(1, 0, 32, ReasonMemory, 6, nil)
	s.LaunchEnd(ls)
	delta := s.Profile().Sub(base)
	if got := delta.TotalSamples(); got != 10 {
		t.Errorf("delta TotalSamples = %d, want 10", got)
	}
	if delta.Launches != 1 {
		t.Errorf("delta Launches = %d, want 1", delta.Launches)
	}
	// The unchanged part of the base must have been dropped entirely when
	// zero, never negative.
	if got := delta.Sub(delta).TotalSamples(); got != 0 {
		t.Errorf("self-subtraction leaves %d samples, want 0", got)
	}
	// Mutating the clone must not affect the sampler's internal profile.
	for l := range base.Locs {
		delete(base.Locs, l)
	}
	if got := s.Profile().TotalSamples(); got != 20 {
		t.Errorf("sampler profile corrupted by clone mutation: %d samples, want 20", got)
	}
}

func TestWaitLaunches(t *testing.T) {
	s := NewWithRing(1, 8)
	k := testKernel(t, "spin")
	if s.WaitLaunches(1, 20*time.Millisecond) {
		t.Error("WaitLaunches reported success with no launches")
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.LaunchEnd(s.LaunchBegin(k, 1))
	}()
	if !s.WaitLaunches(1, 5*time.Second) {
		t.Error("WaitLaunches timed out despite a completing launch")
	}
}

func TestLaunchEndPublishesMetrics(t *testing.T) {
	s := NewWithRing(1, 8)
	s.Metrics = obs.NewRegistry()
	k := testKernel(t, "spin")
	ls := s.LaunchBegin(k, 1)
	ls.SMs[0].Record(0, 0, 32, ReasonNone, 3, nil)
	s.LaunchEnd(ls)
	flat := s.Metrics.Flat("sm")
	if flat[obs.MPCSampSamples] != 3 {
		t.Errorf("%s = %d, want 3", obs.MPCSampSamples, flat[obs.MPCSampSamples])
	}
	if flat[obs.MPCSampLaunches] != 1 {
		t.Errorf("%s = %d, want 1", obs.MPCSampLaunches, flat[obs.MPCSampLaunches])
	}
}

func TestWriteFolded(t *testing.T) {
	s := NewWithRing(1, 8)
	k := testKernel(t, "spin")
	ls := s.LaunchBegin(k, 1)
	ls.SMs[0].Record(1, 0, 32, ReasonScoreboard, 5, nil)
	ls.SMs[0].Record(0, 0, 32, ReasonNone, 2, nil)
	s.LaunchEnd(ls)
	var b strings.Builder
	if err := s.Profile().WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("folded lines = %d, want 2:\n%s", len(lines), b.String())
	}
	// Sorted output, root frame is the kernel, stalled location grows a
	// stall frame, counts are period-weighted samples.
	for _, l := range lines {
		if !strings.HasPrefix(l, "spin;") {
			t.Errorf("line %q does not start with the kernel frame", l)
		}
	}
	var sawStall bool
	for _, l := range lines {
		if strings.Contains(l, ";stall:scoreboard ") && strings.HasSuffix(l, " 5") {
			sawStall = true
		}
		if f := strings.Fields(l); len(f) != 2 {
			t.Errorf("line %q has embedded spaces in frames", l)
		}
	}
	if !sawStall {
		t.Errorf("no stall:scoreboard frame with count 5 in:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "IADD") {
		t.Errorf("leaf frame lost the opcode:\n%s", b.String())
	}
}

// protoFields walks the top-level fields of an encoded proto message.
func protoFields(t *testing.T, b []byte) map[int][][]byte {
	t.Helper()
	out := map[int][][]byte{}
	for len(b) > 0 {
		key, n := uvarint(b)
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, n := uvarint(b)
			b = b[n:]
			var enc [10]byte
			m := putUvarint(enc[:], v)
			out[field] = append(out[field], append([]byte(nil), enc[:m]...))
		case 2:
			l, n := uvarint(b)
			b = b[n:]
			out[field] = append(out[field], append([]byte(nil), b[:l]...))
			b = b[l:]
		default:
			t.Fatalf("unexpected wire type %d for field %d", wire, field)
		}
	}
	return out
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; ; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
}

func putUvarint(b []byte, v uint64) int {
	i := 0
	for v >= 0x80 {
		b[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	b[i] = byte(v)
	return i + 1
}

// TestProtoShape decodes the top level of the profile.proto output and
// checks the invariants pprof relies on.
func TestProtoShape(t *testing.T) {
	s := NewWithRing(100, 8)
	k := testKernel(t, "spin")
	ls := s.LaunchBegin(k, 1)
	ls.SMs[0].Record(0, 0, 32, ReasonNone, 2, nil)
	ls.SMs[0].Record(1, 0, 32, ReasonMemory, 3, nil)
	s.LaunchEnd(ls)
	prof := s.Profile()
	fields := protoFields(t, prof.proto())
	if n := len(fields[1]); n != 2 {
		t.Errorf("sample_type count = %d, want 2 (samples, cycles)", n)
	}
	if n := len(fields[2]); n != 2 {
		t.Errorf("sample count = %d, want 2", n)
	}
	if n := len(fields[3]); n != 1 {
		t.Errorf("mapping count = %d, want 1", n)
	}
	if len(fields[4]) == 0 || len(fields[5]) == 0 {
		t.Error("missing locations or functions")
	}
	var strs []string
	for _, b := range fields[6] {
		strs = append(strs, string(b))
	}
	if strs[0] != "" {
		t.Errorf("string table index 0 = %q, want empty", strs[0])
	}
	joined := strings.Join(strs, "\x00")
	for _, want := range []string{"spin", "cycles", "samples", "reason", "memory", "[sassi-sim]"} {
		if !strings.Contains(joined, want) {
			t.Errorf("string table missing %q", want)
		}
	}
	if len(fields[12]) == 0 {
		t.Error("missing period")
	} else if v, _ := uvarint(fields[12][0]); v != 100 {
		t.Errorf("period = %d, want 100", v)
	}
	// Deterministic bytes: re-encoding an identical profile matches.
	if !bytes.Equal(prof.proto(), s.Profile().proto()) {
		t.Error("proto encoding is not deterministic")
	}
}

func TestProfileHandler(t *testing.T) {
	var nilSampler *Sampler
	rec := httptest.NewRecorder()
	nilSampler.ProfileHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/sassiprof/profile", nil))
	if rec.Code != 404 {
		t.Errorf("nil sampler status = %d, want 404", rec.Code)
	}

	s := NewWithRing(1, 8)
	k := testKernel(t, "spin")
	ls := s.LaunchBegin(k, 1)
	ls.SMs[0].Record(0, 0, 32, ReasonNone, 2, nil)
	s.LaunchEnd(ls)

	rec = httptest.NewRecorder()
	s.ProfileHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/profile?format=folded", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "spin;") {
		t.Errorf("folded response = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ProfileHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/profile", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof response status = %d", rec.Code)
	}
	gz, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatalf("pprof response is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	var prof Profile
	prof.Period = 1
	if fields := protoFields(t, raw); len(fields[2]) != 1 {
		t.Errorf("pprof response sample count = %d, want 1", len(fields[2]))
	}

	rec = httptest.NewRecorder()
	s.ProfileHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/profile?format=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bogus format status = %d, want 400", rec.Code)
	}

	// launches=N with a short timeout serves the partial (empty) delta.
	rec = httptest.NewRecorder()
	s.ProfileHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/profile?launches=1&seconds=0.01&format=folded", nil))
	if rec.Code != 200 {
		t.Errorf("delta timeout status = %d, want 200 (best-effort partial)", rec.Code)
	}
	if body := strings.TrimSpace(rec.Body.String()); body != "" {
		t.Errorf("delta with no new launches = %q, want empty", body)
	}
}
