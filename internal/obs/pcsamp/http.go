package pcsamp

import (
	"net/http"
	"strconv"
	"time"
)

// ProfileHandler serves the continuous-profiling endpoint (mounted at
// /debug/sassiprof/profile by the CLIs' -http flag):
//
//	?launches=N   wait for N more kernel launches and serve only their
//	              delta profile (0 = snapshot of everything so far)
//	?seconds=S    bound the wait (default 30); on timeout the partial
//	              delta is served rather than an error, matching pprof's
//	              best-effort convention
//	?format=      "pprof" (default, gzipped profile.proto) or "folded"
//	              (flamegraph.pl text)
//
// The handler is nil-receiver safe so it can be mounted unconditionally.
func (s *Sampler) ProfileHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, "pc sampling disabled (no sampler attached)", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		n, err := strconv.ParseUint(q.Get("launches"), 10, 64)
		if q.Get("launches") != "" && err != nil {
			http.Error(w, "bad launches parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		timeout := 30 * time.Second
		if v := q.Get("seconds"); v != "" {
			secs, err := strconv.ParseFloat(v, 64)
			if err != nil || secs <= 0 {
				http.Error(w, "bad seconds parameter", http.StatusBadRequest)
				return
			}
			timeout = time.Duration(secs * float64(time.Second))
		}
		var base *Profile
		if n > 0 {
			base = s.Profile()
			s.WaitLaunches(n, timeout)
		}
		prof := s.Profile()
		if base != nil {
			prof = prof.Sub(base)
		}
		switch q.Get("format") {
		case "folded":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = prof.WriteFolded(w)
		case "", "pprof":
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="sassiprof.pb.gz"`)
			_ = prof.WritePprof(w)
		default:
			http.Error(w, "bad format parameter (want pprof or folded)", http.StatusBadRequest)
		}
	})
}
