package pcsamp

// Accessor and symbolization coverage: the profile's aggregate views, the
// call-frame naming rules, and the gzipped pprof writer.

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"sassi/internal/sass"
)

func TestProfileAccessors(t *testing.T) {
	s := NewWithRing(10, 8)
	k := testKernel(t, "spin")
	ls := s.LaunchBegin(k, 1)
	ls.SMs[0].Record(0, 0, 32, ReasonNone, 2, nil)
	ls.SMs[0].Record(1, 0, 16, ReasonMemory, 3, nil)
	s.LaunchEnd(ls)
	if got := s.Launches(); got != 1 {
		t.Errorf("Sampler.Launches = %d, want 1", got)
	}
	prof := s.Profile()
	if got := prof.Cycles(); got != 50 {
		t.Errorf("Cycles = %d, want 50 (5 samples x period 10)", got)
	}
	pcs := prof.PCCycles()
	if pcs[PCKey{"spin", 0}] != 20 || pcs[PCKey{"spin", 1}] != 30 {
		t.Errorf("PCCycles = %v, want spin:0=20 spin:1=30", pcs)
	}
	stalls := prof.StallCycles()
	if stalls[ReasonNone] != 20 || stalls[ReasonMemory] != 30 {
		t.Errorf("StallCycles = %v, want none=20 memory=30", stalls)
	}
}

// callKernel builds a kernel with a CAL so return addresses symbolize to
// the callee's label.
func callKernel(t *testing.T) *sass.Kernel {
	t.Helper()
	k := &sass.Kernel{Name: "caller", NumRegs: 8, Labels: map[string]int{}}
	k.Instrs = []sass.Instruction{
		sass.New(sass.OpCAL, nil, []sass.Operand{sass.Label("fn")}),
		sass.New(sass.OpEXIT, nil, nil),
		sass.New(sass.OpMOV, []sass.Operand{sass.R(0)}, []sass.Operand{sass.Imm(1)}), // fn:
		sass.New(sass.OpRET, nil, nil),
	}
	k.Labels["fn"] = 2
	if err := k.ResolveLabels(); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCallStackSymbolization(t *testing.T) {
	s := NewWithRing(1, 8)
	k := callKernel(t)
	ls := s.LaunchBegin(k, 1)
	// Leaf inside fn with return address 1 (the instruction after the CAL):
	// the frame must be named after the callee label.
	ls.SMs[0].Record(2, 0, 32, ReasonNone, 4, []int{1})
	// A return address whose predecessor is not a CAL degrades to ret_...
	ls.SMs[0].Record(2, 0, 32, ReasonNone, 1, []int{3})
	s.LaunchEnd(ls)
	var b strings.Builder
	if err := s.Profile().WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "caller;fn;") {
		t.Errorf("CAL return address did not symbolize to the callee label:\n%s", out)
	}
	if !strings.Contains(out, ";ret_") {
		t.Errorf("non-CAL return address did not degrade to a ret_ frame:\n%s", out)
	}
}

// TestWritePprof round-trips the gzipped export and checks it contains the
// same message WriteProto emits.
func TestWritePprof(t *testing.T) {
	s := NewWithRing(1, 8)
	k := testKernel(t, "spin")
	ls := s.LaunchBegin(k, 1)
	ls.SMs[0].Record(0, 0, 32, ReasonScoreboard, 7, nil)
	s.LaunchEnd(ls)
	prof := s.Profile()
	var gz bytes.Buffer
	if err := prof.WritePprof(&gz); err != nil {
		t.Fatal(err)
	}
	r, err := gzip.NewReader(&gz)
	if err != nil {
		t.Fatalf("WritePprof output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := prof.WriteProto(&plain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, plain.Bytes()) {
		t.Error("gunzipped WritePprof bytes differ from WriteProto")
	}
}
