package pcsamp_test

// Golden-file pins for the two export formats on a real workload
// (parboil.sgemm on the mini device). Sampling is deterministic, the
// exporters are byte-deterministic, so the files must match exactly;
// regenerate deliberately with:
//
//	go test ./internal/obs/pcsamp -run TestGolden -update

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/obs/pcsamp"
	"sassi/internal/ptxas"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

func sgemmProfile(t *testing.T) *pcsamp.Profile {
	t.Helper()
	spec, ok := workloads.Get("parboil.sgemm")
	if !ok {
		t.Fatal("parboil.sgemm not registered")
	}
	prog, err := spec.Compile(ptxas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := cuda.NewContext(sim.MiniGPU())
	s := pcsamp.New(pcsamp.DefaultPeriod)
	ctx.Device().PCSamp = s
	res, err := spec.Run(ctx, prog, spec.DefaultDataset())
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	return s.Profile()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (%d bytes vs %d); inspect and rerun with -update if intended",
			name, len(got), len(want))
	}
}

func TestGoldenFolded(t *testing.T) {
	var b bytes.Buffer
	if err := sgemmProfile(t).WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sgemm_folded.txt", b.Bytes())
}

func TestGoldenProto(t *testing.T) {
	var b bytes.Buffer
	if err := sgemmProfile(t).WriteProto(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sgemm_profile.pb", b.Bytes())
}

// TestPprofToolReadsProfile feeds the gzipped export to the real
// `go tool pprof` and requires it to symbolize the hottest frames —
// the compatibility claim, checked against the actual consumer.
func TestPprofToolReadsProfile(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not on PATH")
	}
	if testing.Short() {
		t.Skip("skipping external pprof invocation in -short")
	}
	path := filepath.Join(t.TempDir(), "sgemm.pb.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sgemmProfile(t).WritePprof(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "tool", "pprof", "-top", "-nodecount=5", path)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof failed: %v\n%s", err, out)
	}
	// The kernel root frame has zero flat time, so -top shows the
	// symbolized leaf frames (bbN:0xOFFS:OP) in the cycles unit.
	if !bytes.Contains(out, []byte("Type: cycles")) || !bytes.Contains(out, []byte("bb")) {
		t.Errorf("pprof -top did not symbolize leaf frames:\n%s", out)
	}
}
