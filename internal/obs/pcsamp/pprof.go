package pcsamp

import (
	"compress/gzip"
	"io"

	"sassi/internal/sass"
)

// pprof profile.proto export. The message set is small and stable
// (github.com/google/pprof/proto/profile.proto), so the encoder below
// writes the wire format directly — varint and length-delimited fields
// only — instead of pulling in a protobuf dependency. IDs and the string
// table are assigned in sorted-location order, and no timestamps are
// recorded, so the serialized bytes are deterministic (the golden test
// pins them).

// pbuf is a minimal proto3 wire-format writer.
type pbuf struct{ b []byte }

func (p *pbuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) key(field, wire int) { p.uvarint(uint64(field)<<3 | uint64(wire)) }

// varint emits a varint-typed field, skipping proto3 zero defaults.
func (p *pbuf) varint(field int, v uint64) {
	if v == 0 {
		return
	}
	p.key(field, 0)
	p.uvarint(v)
}

func (p *pbuf) bytes(field int, b []byte) {
	p.key(field, 2)
	p.uvarint(uint64(len(b)))
	p.b = append(p.b, b...)
}

// packed emits a packed repeated varint field.
func (p *pbuf) packed(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var sub pbuf
	for _, v := range vs {
		sub.uvarint(v)
	}
	p.bytes(field, sub.b)
}

// strtab interns strings; index 0 is "" as profile.proto requires.
type strtab struct {
	idx map[string]uint64
	tab []string
}

func newStrtab() *strtab {
	return &strtab{idx: map[string]uint64{"": 0}, tab: []string{""}}
}

func (s *strtab) id(v string) uint64 {
	if i, ok := s.idx[v]; ok {
		return i
	}
	i := uint64(len(s.tab))
	s.idx[v] = i
	s.tab = append(s.tab, v)
	return i
}

// valueType encodes a ValueType{type, unit} message.
func valueType(st *strtab, typ, unit string) []byte {
	var b pbuf
	b.varint(1, st.id(typ))
	b.varint(2, st.id(unit))
	return b.b
}

// proto serializes the profile as an uncompressed profile.proto message.
// Sample values are [samples, cycles] with cycles = samples*Period; the
// stall reason rides along as a "reason" string label on each sample.
func (p *Profile) proto() []byte {
	st := newStrtab()
	sym := newSymbolizer(p.kernels)

	type fnKey struct{ name, filename string }
	fnIDs := make(map[fnKey]uint64)
	var fnMsgs [][]byte
	function := func(name, filename string) uint64 {
		k := fnKey{name, filename}
		if id, ok := fnIDs[k]; ok {
			return id
		}
		id := uint64(len(fnMsgs) + 1)
		fnIDs[k] = id
		var b pbuf
		b.varint(1, id)              // id
		b.varint(2, st.id(name))     // name
		b.varint(3, st.id(name))     // system_name
		b.varint(4, st.id(filename)) // filename
		fnMsgs = append(fnMsgs, b.b)
		return id
	}

	type locKey struct {
		fn   uint64
		addr uint64
	}
	locIDs := make(map[locKey]uint64)
	var locMsgs [][]byte
	location := func(fn, addr uint64) uint64 {
		k := locKey{fn, addr}
		if id, ok := locIDs[k]; ok {
			return id
		}
		id := uint64(len(locMsgs) + 1)
		locIDs[k] = id
		var line pbuf
		line.varint(1, fn) // function_id
		var b pbuf
		b.varint(1, id)   // id
		b.varint(2, 1)    // mapping_id
		b.varint(3, addr) // address
		b.bytes(4, line.b)
		locMsgs = append(locMsgs, b.b)
		return id
	}

	var sampleMsgs [][]byte
	reasonKey := st.id("reason")
	for _, l := range p.sortedLocs() {
		frames := sym.frames(l)
		ids := make([]uint64, 0, len(frames))
		for i := len(frames) - 1; i >= 0; i-- { // pprof wants leaf first
			addr := uint64(0)
			if i == len(frames)-1 {
				addr = uint64(uint32(sass.InsOffset(int(l.PC))))
			}
			ids = append(ids, location(function(frames[i], l.Kernel), addr))
		}
		c := p.Locs[l]
		var label pbuf
		label.varint(1, reasonKey)
		label.varint(2, st.id(l.Reason.String()))
		var b pbuf
		b.packed(1, ids)
		b.packed(2, []uint64{c.Samples, c.Samples * p.Period})
		b.bytes(3, label.b)
		sampleMsgs = append(sampleMsgs, b.b)
	}

	var mapping pbuf
	mapping.varint(1, 1) // id
	mapping.varint(5, st.id("[sassi-sim]"))

	// Intern every remaining string before the table is emitted.
	sampleTypes := [][]byte{valueType(st, "samples", "count"), valueType(st, "cycles", "cycles")}
	periodType := valueType(st, "cycles", "cycles")
	defaultType := st.id("cycles")

	var out pbuf
	for _, m := range sampleTypes {
		out.bytes(1, m)
	}
	for _, m := range sampleMsgs {
		out.bytes(2, m)
	}
	out.bytes(3, mapping.b)
	for _, m := range locMsgs {
		out.bytes(4, m)
	}
	for _, m := range fnMsgs {
		out.bytes(5, m)
	}
	for _, s := range st.tab {
		out.bytes(6, []byte(s))
	}
	out.bytes(11, periodType)   // period_type
	out.varint(12, p.Period)    // period
	out.varint(14, defaultType) // default_sample_type
	return out.b
}

// WriteProto writes the uncompressed profile.proto bytes (the golden test
// compares these; `go tool pprof` accepts them too).
func (p *Profile) WriteProto(w io.Writer) error {
	_, err := w.Write(p.proto())
	return err
}

// WritePprof writes the gzipped profile.proto that `go tool pprof`
// conventionally consumes.
func (p *Profile) WritePprof(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if _, err := gz.Write(p.proto()); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}
