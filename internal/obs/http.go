package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Mount attaches an extra handler to the observability endpoint. The obs
// package stays dependency-light: producers that cannot be imported here
// (e.g. the PC-sampling profiler, which itself imports obs) hand their
// handlers in through Mounts instead.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// Handler serves the registry over HTTP:
//
//	/metrics       Prometheus text exposition (counters, gauges, histograms)
//	/stats.json    expvar-style JSON: the flattened registry, sorted keys
//	/debug/pprof/  net/http/pprof host-side profiling (CPU, heap, goroutine
//	               — the simulator profiling itself during long campaigns)
//
// stats, when non-nil, is called per /stats.json request to refresh
// run-level fields around the metrics map. mounts add caller endpoints,
// e.g. the PC-sampling /debug/sassiprof/profile handler.
func Handler(reg *Registry, stats func() *Stats, mounts ...Mount) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range mounts {
		if m.Handler != nil {
			mux.Handle(m.Pattern, m.Handler)
		}
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		WritePrometheus(w, reg)
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s := NewStats(reg)
		if stats != nil {
			s = stats()
		}
		_ = s.WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "sassi observability: /metrics (Prometheus text), /stats.json, /debug/pprof/ (host), /debug/sassiprof/profile (device PC sampling, when enabled)")
	})
	return mux
}

// Serve starts an HTTP server for the registry on addr in a background
// goroutine, returning immediately. Errors (e.g. port in use) are reported
// through errf since the caller has usually moved on.
func Serve(addr string, reg *Registry, stats func() *Stats, errf func(error), mounts ...Mount) {
	srv := &http.Server{Addr: addr, Handler: Handler(reg, stats, mounts...)}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed && errf != nil {
			errf(err)
		}
	}()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, sorted by metric name. Dots in registry names become underscores
// (Prometheus identifiers), sharded counters emit one sample per shard with
// an sm label plus the total, and histograms emit cumulative _bucket
// samples with le labels plus _sum and _count.
func WritePrometheus(w interface{ Write([]byte) (int, error) }, reg *Registry) {
	for _, m := range reg.Snapshot() {
		name := promName(m.Name)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, m.Kind)
		switch m.Kind {
		case KindHistogram:
			cum := uint64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperBound, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, m.Value)
			fmt.Fprintf(w, "%s_sum %d\n", name, m.Sum)
			fmt.Fprintf(w, "%s_count %d\n", name, m.Value)
		case KindSharded:
			for i, v := range m.Shards {
				fmt.Fprintf(w, "%s{sm=\"%d\"} %d\n", name, i, v)
			}
			fmt.Fprintf(w, "%s %d\n", name, m.Value)
		default:
			fmt.Fprintf(w, "%s %d\n", name, m.Value)
		}
	}
}

// promName maps a registry name to a Prometheus identifier.
func promName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
