package obs_test

// Chrome-trace schema validation against a real instrumented run: this is
// the test CI's trace artifact step leans on. It runs rodinia.bfs under the
// branch profiler with a live Tracer, serializes the timeline, and checks
// every event against the trace-event JSON schema Perfetto loads.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"sassi/internal/cuda"
	"sassi/internal/handlers"
	"sassi/internal/obs"
	"sassi/internal/ptxas"
	"sassi/internal/sass"
	"sassi/internal/sassi"
	"sassi/internal/sim"
	"sassi/internal/workloads"
)

// traceDoc mirrors the JSON-object form of the Chrome trace-event format.
type traceDoc struct {
	TraceEvents     []traceEv `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

type traceEv struct {
	Ph   string         `json:"ph"`
	Pid  *int           `json:"pid"`
	Tid  *int           `json:"tid"`
	Name string         `json:"name"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

// tracedBFSRun executes an instrumented rodinia.bfs with tracing on and
// returns the serialized trace JSON.
func tracedBFSRun(t *testing.T) []byte {
	t.Helper()
	spec, ok := workloads.Get("rodinia.bfs")
	if !ok {
		t.Fatal("rodinia.bfs not registered")
	}
	tr := obs.NewTracer()
	tr.NameProcess(obs.PidHost, "host (wall µs)")
	tr.NameThread(obs.PidHost, obs.TidHostMain, "main")
	tr.NameThread(obs.PidHost, obs.TidHostCompile, "compile+instrument")

	ctx := cuda.NewContext(sim.MiniGPU())
	ctx.Device().Trace = tr

	var prog *sass.Program
	var err error
	tr.HostSpan(obs.TidHostCompile, "compile:"+spec.Name, func() {
		prog, err = spec.Compile(ptxas.Options{})
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	bp := handlers.NewBranchProfiler(ctx)
	opts := bp.Options()
	opts.Trace = tr
	if err := sassi.Instrument(prog, opts); err != nil {
		t.Fatalf("instrument: %v", err)
	}
	rt := sassi.NewRuntime(prog)
	rt.MustRegister(bp.SequentialHandler())
	rt.Attach(ctx.Device())

	var res *workloads.Result
	tr.HostSpan(obs.TidHostMain, "run:"+spec.Name, func() {
		res, err = spec.Run(ctx, prog, spec.DefaultDataset())
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.VerifyErr != nil {
		t.Fatalf("verification: %v", res.VerifyErr)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	return buf.Bytes()
}

// TestTraceJSONSchema validates the emitted trace against the trace-event
// schema: well-formed JSON, known phase codes, required per-phase fields,
// and the process/thread lane layout the tracer promises.
func TestTraceJSONSchema(t *testing.T) {
	raw := tracedBFSRun(t)
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	if err := validateTraceEvents(doc.TraceEvents); err != nil {
		t.Error(err)
	}

	// Lane layout: the device process names one lane per SM, and the run
	// produced compile, instrument, kernel, and handler spans.
	smLanes := map[int]bool{}
	var sawCompile, sawInstrument, sawKernel, sawHandler, sawRun bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && *ev.Pid == obs.PidDevice {
			smLanes[*ev.Tid] = true
		}
		switch {
		case strings.HasPrefix(ev.Name, "compile:"):
			sawCompile = true
		case strings.HasPrefix(ev.Name, "instrument:"):
			sawInstrument = true
		case strings.HasPrefix(ev.Name, "kernel:"):
			sawKernel = true
		case strings.HasPrefix(ev.Name, "handler:"):
			sawHandler = true
		case strings.HasPrefix(ev.Name, "run:"):
			sawRun = true
		}
	}
	cfg := sim.MiniGPU()
	for sm := 0; sm < cfg.NumSMs; sm++ {
		if !smLanes[sm] {
			t.Errorf("no device spans on SM %d lane", sm)
		}
	}
	for name, saw := range map[string]bool{
		"compile": sawCompile, "instrument": sawInstrument,
		"kernel": sawKernel, "handler": sawHandler, "run": sawRun,
	} {
		if !saw {
			t.Errorf("no %s:* span in trace", name)
		}
	}
}

// validateTraceEvents is the schema check proper, shared with nothing but
// written standalone so CI failures print one violation per event.
func validateTraceEvents(evs []traceEv) error {
	var errs []string
	for i, ev := range evs {
		fail := func(msg string) { errs = append(errs, fmt.Sprintf("event %d (%s %q): %s", i, ev.Ph, ev.Name, msg)) }
		switch ev.Ph {
		case "X":
			if ev.Pid == nil || ev.Tid == nil {
				fail("complete event missing pid/tid")
			}
			if ev.Ts == nil || *ev.Ts < 0 {
				fail("complete event missing ts or ts < 0")
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				fail("complete event missing dur or dur < 0")
			}
			if ev.Name == "" {
				fail("complete event missing name")
			}
		case "C":
			if ev.Pid == nil || ev.Ts == nil || ev.Name == "" || len(ev.Args) == 0 {
				fail("counter event needs pid, ts, name, args")
			}
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				fail("unknown metadata record")
			}
			if v, ok := ev.Args["name"].(string); !ok || v == "" {
				fail("metadata missing args.name")
			}
		default:
			fail("unknown phase code")
		}
		if len(errs) > 20 {
			errs = append(errs, "... (truncated)")
			break
		}
	}
	if errs != nil {
		return fmt.Errorf("trace schema violations:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}
